// Package cryptoid is the membership service provider (MSP) substrate: a
// minimal X.509-free certificate authority per organization built on
// ed25519. Fabric's trust model — every endorsement carries a signature
// verifiable against an organization CA — is preserved; the ASN.1/X.509
// envelope is replaced by a deterministic JSON certificate.
package cryptoid

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by identity operations.
var (
	ErrUnknownMSP   = errors.New("cryptoid: unknown MSP")
	ErrBadCert      = errors.New("cryptoid: certificate verification failed")
	ErrBadSignature = errors.New("cryptoid: signature verification failed")
)

// Identity is a public identity: a named member of an organization whose
// public key is certified by the organization's CA.
type Identity struct {
	MSPID     string            `json:"mspID"`
	Name      string            `json:"name"`
	PublicKey ed25519.PublicKey `json:"publicKey"`
	// CertSig is the CA's signature over the (MSPID, Name, PublicKey)
	// tuple.
	CertSig []byte `json:"certSig"`
}

// certPayload returns the byte string the CA signs.
func (id Identity) certPayload() []byte {
	return []byte("cert\x00" + id.MSPID + "\x00" + id.Name + "\x00" + string(id.PublicKey))
}

// Marshal serializes the identity.
func (id Identity) Marshal() ([]byte, error) { return json.Marshal(id) }

// UnmarshalIdentity parses Marshal output.
func UnmarshalIdentity(data []byte) (Identity, error) {
	var id Identity
	if err := json.Unmarshal(data, &id); err != nil {
		return Identity{}, fmt.Errorf("cryptoid: decoding identity: %w", err)
	}
	return id, nil
}

// Signer is a private identity capable of signing.
type Signer struct {
	Identity
	priv ed25519.PrivateKey
}

// Sign signs msg with the identity's private key.
func (s *Signer) Sign(msg []byte) []byte {
	return ed25519.Sign(s.priv, msg)
}

// Verify checks sig over msg against the identity's public key.
func Verify(id Identity, msg, sig []byte) error {
	if len(id.PublicKey) != ed25519.PublicKeySize || !ed25519.Verify(id.PublicKey, msg, sig) {
		return fmt.Errorf("%w: identity %s/%s", ErrBadSignature, id.MSPID, id.Name)
	}
	return nil
}

// CA is an organization's certificate authority.
type CA struct {
	mspID string
	pub   ed25519.PublicKey
	priv  ed25519.PrivateKey
}

// NewCA creates a CA with a fresh keypair for the given MSP ID.
func NewCA(mspID string) (*CA, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("cryptoid: generating CA key: %w", err)
	}
	return &CA{mspID: mspID, pub: pub, priv: priv}, nil
}

// NewDeterministicCA derives the CA keypair from sha256(seed, mspID)
// instead of fresh randomness, so SEPARATE OS PROCESSES sharing a seed
// string derive identical organization roots — the multi-process demo's
// substitute for distributing real cert files. Member keys issued by the
// CA stay random; only the root is deterministic. Demo and test topologies
// only: a production deployment distributes roots, never seeds.
func NewDeterministicCA(mspID, seed string) *CA {
	sum := sha256.Sum256([]byte("fabriccrdt/deterministic-ca\x00" + mspID + "\x00" + seed))
	priv := ed25519.NewKeyFromSeed(sum[:])
	return &CA{mspID: mspID, pub: priv.Public().(ed25519.PublicKey), priv: priv}
}

// MSPID returns the organization identifier the CA certifies for.
func (ca *CA) MSPID() string { return ca.mspID }

// PublicKey returns the CA root public key.
func (ca *CA) PublicKey() ed25519.PublicKey { return ca.pub }

// Issue creates and certifies a new member identity.
func (ca *CA) Issue(name string) (*Signer, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("cryptoid: generating member key: %w", err)
	}
	id := Identity{MSPID: ca.mspID, Name: name, PublicKey: pub}
	id.CertSig = ed25519.Sign(ca.priv, id.certPayload())
	return &Signer{Identity: id, priv: priv}, nil
}

// MSP is the verifier side: the set of trusted organization CA roots.
// The zero value is ready to use. MSP is safe for concurrent use.
type MSP struct {
	mu    sync.RWMutex
	roots map[string]ed25519.PublicKey
}

// NewMSP returns an empty MSP.
func NewMSP() *MSP {
	return &MSP{roots: make(map[string]ed25519.PublicKey)}
}

// AddOrg trusts an organization's CA root.
func (m *MSP) AddOrg(mspID string, root ed25519.PublicKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.roots == nil {
		m.roots = make(map[string]ed25519.PublicKey)
	}
	m.roots[mspID] = root
}

// Orgs returns the trusted MSP IDs.
func (m *MSP) Orgs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.roots))
	for id := range m.roots {
		out = append(out, id)
	}
	return out
}

// VerifyIdentity checks that the identity's certificate chains to a trusted
// organization root.
func (m *MSP) VerifyIdentity(id Identity) error {
	m.mu.RLock()
	root, ok := m.roots[id.MSPID]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMSP, id.MSPID)
	}
	if !ed25519.Verify(root, id.certPayload(), id.CertSig) {
		return fmt.Errorf("%w: identity %s/%s", ErrBadCert, id.MSPID, id.Name)
	}
	return nil
}

// VerifySignature checks both the certificate chain and a signature by the
// identity over msg.
func (m *MSP) VerifySignature(id Identity, msg, sig []byte) error {
	if err := m.VerifyIdentity(id); err != nil {
		return err
	}
	return Verify(id, msg, sig)
}
