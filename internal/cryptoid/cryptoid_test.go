package cryptoid

import (
	"testing"
)

func newTestCA(t *testing.T, mspID string) *CA {
	t.Helper()
	ca, err := NewCA(mspID)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueAndVerify(t *testing.T) {
	ca := newTestCA(t, "Org1")
	signer, err := ca.Issue("peer0")
	if err != nil {
		t.Fatal(err)
	}
	msp := NewMSP()
	msp.AddOrg("Org1", ca.PublicKey())
	if err := msp.VerifyIdentity(signer.Identity); err != nil {
		t.Fatalf("VerifyIdentity: %v", err)
	}
	msg := []byte("endorse this")
	sig := signer.Sign(msg)
	if err := msp.VerifySignature(signer.Identity, msg, sig); err != nil {
		t.Fatalf("VerifySignature: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	ca := newTestCA(t, "Org1")
	signer, err := ca.Issue("peer0")
	if err != nil {
		t.Fatal(err)
	}
	sig := signer.Sign([]byte("original"))
	if err := Verify(signer.Identity, []byte("tampered"), sig); err == nil {
		t.Fatal("tampered message must fail verification")
	}
}

func TestVerifyRejectsForeignCA(t *testing.T) {
	ca1 := newTestCA(t, "Org1")
	ca2 := newTestCA(t, "Org1") // same MSP ID, different root
	signer, err := ca1.Issue("peer0")
	if err != nil {
		t.Fatal(err)
	}
	msp := NewMSP()
	msp.AddOrg("Org1", ca2.PublicKey())
	if err := msp.VerifyIdentity(signer.Identity); err == nil {
		t.Fatal("identity from untrusted CA must fail")
	}
}

func TestVerifyRejectsUnknownMSP(t *testing.T) {
	ca := newTestCA(t, "OrgX")
	signer, err := ca.Issue("peer0")
	if err != nil {
		t.Fatal(err)
	}
	msp := NewMSP()
	if err := msp.VerifyIdentity(signer.Identity); err == nil {
		t.Fatal("unknown MSP must fail")
	}
}

func TestVerifyRejectsForgedCert(t *testing.T) {
	ca := newTestCA(t, "Org1")
	signer, err := ca.Issue("peer0")
	if err != nil {
		t.Fatal(err)
	}
	msp := NewMSP()
	msp.AddOrg("Org1", ca.PublicKey())
	forged := signer.Identity
	forged.Name = "peer1" // cert signed for peer0
	if err := msp.VerifyIdentity(forged); err == nil {
		t.Fatal("renamed identity must fail cert check")
	}
}

func TestIdentityMarshalRoundTrip(t *testing.T) {
	ca := newTestCA(t, "Org1")
	signer, err := ca.Issue("client0")
	if err != nil {
		t.Fatal(err)
	}
	data, err := signer.Identity.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalIdentity(data)
	if err != nil {
		t.Fatal(err)
	}
	msp := NewMSP()
	msp.AddOrg("Org1", ca.PublicKey())
	if err := msp.VerifyIdentity(back); err != nil {
		t.Fatalf("round-tripped identity failed verification: %v", err)
	}
	if back.Name != "client0" || back.MSPID != "Org1" {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

func TestUnmarshalIdentityError(t *testing.T) {
	if _, err := UnmarshalIdentity([]byte("{bad")); err == nil {
		t.Fatal("want error")
	}
}

func TestVerifyBadKeyLength(t *testing.T) {
	id := Identity{MSPID: "Org1", Name: "x", PublicKey: []byte("short")}
	if err := Verify(id, []byte("m"), []byte("sig")); err == nil {
		t.Fatal("short key must fail")
	}
}

func TestMSPOrgs(t *testing.T) {
	msp := NewMSP()
	ca1 := newTestCA(t, "Org1")
	ca2 := newTestCA(t, "Org2")
	msp.AddOrg("Org1", ca1.PublicKey())
	msp.AddOrg("Org2", ca2.PublicKey())
	if got := msp.Orgs(); len(got) != 2 {
		t.Fatalf("Orgs = %v", got)
	}
}

func BenchmarkSignVerify(b *testing.B) {
	ca, err := NewCA("Org1")
	if err != nil {
		b.Fatal(err)
	}
	signer, err := ca.Issue("peer0")
	if err != nil {
		b.Fatal(err)
	}
	msp := NewMSP()
	msp.AddOrg("Org1", ca.PublicKey())
	msg := []byte("payload-to-endorse")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := signer.Sign(msg)
		if err := msp.VerifySignature(signer.Identity, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
