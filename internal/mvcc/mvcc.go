// Package mvcc implements Fabric's multi-version concurrency control
// validation (paper §3): a committer sequentially compares each
// transaction's read-set versions against the world state — as already
// modified by preceding valid transactions in the same block — and
// invalidates any transaction that read a stale version.
package mvcc

import (
	"time"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/parallel"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// Validator validates blocks against a world state.
type Validator struct {
	db *statedb.DB
}

// New returns a validator reading committed versions from db.
func New(db *statedb.DB) *Validator {
	return &Validator{db: db}
}

// Result is the outcome of validating one block.
type Result struct {
	// Codes holds one validation code per transaction. Transactions whose
	// code was already decided (non-zero), e.g. FabricCRDT-merged or
	// endorsement-failed ones, are left untouched and their writes do not
	// participate in intra-block version accounting.
	Codes []ledger.ValidationCode
}

// ValidateBlock runs MVCC validation over the block's transactions.
// codes[i] != CodeNotValidated marks transaction i as pre-decided: it is
// skipped (its code kept). Valid transactions' writes immediately shadow the
// committed state for subsequent transactions in the block, which is what
// fails the paper's §3 example transactions T2 and T3.
//
// The block number is needed to stamp intra-block versions: a write by
// transaction t of block b commits at version (b, t).
func (v *Validator) ValidateBlock(blockNum uint64, txs []*ledger.Transaction, codes []ledger.ValidationCode) Result {
	if codes == nil {
		codes = make([]ledger.ValidationCode, len(txs))
	}
	// pendingWrites maps keys written by preceding valid transactions of
	// this block to their new versions.
	pendingWrites := make(map[string]rwset.Version)
	pendingDeletes := make(map[string]struct{})
	for i, tx := range txs {
		if codes[i] != ledger.CodeNotValidated {
			continue
		}
		if v.conflicts(tx.RWSet.Reads, pendingWrites, pendingDeletes) {
			codes[i] = ledger.CodeMVCCConflict
			continue
		}
		codes[i] = ledger.CodeValid
		newVersion := rwset.Version{BlockNum: blockNum, TxNum: uint64(i)}
		for _, w := range tx.RWSet.Writes {
			if w.IsCRDT {
				// CRDT writes are committed by the merge engine and do
				// not participate in MVCC version accounting.
				continue
			}
			if w.IsDelete {
				pendingDeletes[w.Key] = struct{}{}
				delete(pendingWrites, w.Key)
				continue
			}
			pendingWrites[w.Key] = newVersion
			delete(pendingDeletes, w.Key)
		}
	}
	return Result{Codes: codes}
}

// ValidateScheduled is ValidateBlock over a dependency-wavefront schedule
// (internal/txgraph): waves list transaction indices such that no two
// members of one wave conflict and every dependency sits in a strictly
// earlier wave. Each wave's members validate concurrently over up to
// workers goroutines — they write disjoint codes[i] slots and only read the
// pending maps — then the wave's valid writes are applied to the pending
// maps serially, in ascending index order, before the next wave starts.
// Because writers of one key are totally ordered across waves and a wave
// boundary separates every reader from every writer it conflicts with, each
// transaction observes exactly the pending state the serial loop would have
// shown it: validation codes are identical at every worker count
// (DESIGN.md §9).
//
// Transactions not listed in any wave are untouched — the scheduler already
// routed them elsewhere (pre-decided codes, CRDT merge path).
//
// onWave, when non-nil, observes each wave's size and wall time (the
// committer's per-wavefront timings).
func (v *Validator) ValidateScheduled(blockNum uint64, txs []*ledger.Transaction, codes []ledger.ValidationCode, waves [][]int, workers int, onWave func(txCount int, d time.Duration)) Result {
	pendingWrites := make(map[string]rwset.Version)
	pendingDeletes := make(map[string]struct{})
	for _, wave := range waves {
		//lint:ignore determinism per-wave timing only; durations feed metrics, never committed state
		start := time.Now()
		parallel.ForEach(workers, wave, func(i int) {
			// Wave members share no written key, so the pending maps are
			// read-only for the whole wave and each member writes only its
			// own codes slot: race-free.
			if v.conflicts(txs[i].RWSet.Reads, pendingWrites, pendingDeletes) {
				codes[i] = ledger.CodeMVCCConflict
			} else {
				codes[i] = ledger.CodeValid
			}
		})
		// Barrier: fold the wave's valid writes into the pending maps in
		// index order — the same trajectory the serial loop walks.
		for _, i := range wave {
			if codes[i] != ledger.CodeValid {
				continue
			}
			newVersion := rwset.Version{BlockNum: blockNum, TxNum: uint64(i)}
			for _, w := range txs[i].RWSet.Writes {
				if w.IsCRDT {
					continue
				}
				if w.IsDelete {
					pendingDeletes[w.Key] = struct{}{}
					delete(pendingWrites, w.Key)
					continue
				}
				pendingWrites[w.Key] = newVersion
				delete(pendingDeletes, w.Key)
			}
		}
		if onWave != nil {
			onWave(len(wave), time.Since(start))
		}
	}
	return Result{Codes: codes}
}

// conflicts reports whether any read's version is stale with respect to the
// committed state plus the block's pending writes.
func (v *Validator) conflicts(reads []rwset.Read, pendingWrites map[string]rwset.Version, pendingDeletes map[string]struct{}) bool {
	for _, r := range reads {
		if _, deleted := pendingDeletes[r.Key]; deleted {
			// The key was deleted earlier in this block; any read version
			// (even "absent") no longer matches a concurrent deletion.
			return true
		}
		effective, hasPending := pendingWrites[r.Key]
		if !hasPending {
			effective = v.db.Version(r.Key)
		}
		if effective != r.Version {
			return true
		}
	}
	return false
}

// BuildCommitBatch turns the block's validated transactions into a state
// update batch: the write sets of committed transactions are applied in
// order, each write stamped (blockNum, txNum). CRDT writes are included —
// by the time the committer calls this, the FabricCRDT merge engine has
// already rewritten their values to the converged documents (Algorithm 1,
// lines 16-22).
func BuildCommitBatch(blockNum uint64, txs []*ledger.Transaction, codes []ledger.ValidationCode) *statedb.UpdateBatch {
	batch := statedb.NewUpdateBatch()
	for i, tx := range txs {
		if !codes[i].Committed() {
			continue
		}
		version := rwset.Version{BlockNum: blockNum, TxNum: uint64(i)}
		for _, w := range tx.RWSet.Writes {
			if w.IsDelete {
				batch.Delete(w.Key, version)
				continue
			}
			batch.Put(w.Key, w.Value, version)
		}
	}
	return batch
}
