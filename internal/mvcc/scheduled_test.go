package mvcc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
	"fabriccrdt/internal/txgraph"
)

// TestValidateScheduledMatchesSerial drives randomized blocks — stale and
// fresh reads, deletes, overlapping write sets — through the serial
// validator and the wavefront-scheduled one at several worker counts:
// codes must be identical in every case.
func TestValidateScheduledMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 40; round++ {
		// A committed state of 10 keys at assorted versions.
		db := statedb.New()
		batch := statedb.NewUpdateBatch()
		versions := make(map[string]rwset.Version)
		for k := 0; k < 10; k++ {
			key := fmt.Sprintf("K%d", k)
			v := rwset.Version{BlockNum: uint64(1 + rng.Intn(4)), TxNum: uint64(rng.Intn(3))}
			batch.Put(key, []byte("v"), v)
			versions[key] = v
		}
		db.Apply(batch, rwset.Version{BlockNum: 4})

		n := 1 + rng.Intn(60)
		txs := make([]*ledger.Transaction, n)
		codes := make([]ledger.ValidationCode, n)
		for i := range txs {
			var rw rwset.ReadWriteSet
			for r := 0; r < rng.Intn(3); r++ {
				key := fmt.Sprintf("K%d", rng.Intn(10))
				v := versions[key]
				if rng.Intn(4) == 0 {
					v.TxNum++ // stale read
				}
				rw.Reads = append(rw.Reads, rwset.Read{Key: key, Version: v})
			}
			for w := 0; w < rng.Intn(3); w++ {
				rw.Writes = append(rw.Writes, rwset.Write{
					Key:      fmt.Sprintf("K%d", rng.Intn(10)),
					Value:    []byte("v2"),
					IsDelete: rng.Intn(5) == 0,
				})
			}
			txs[i] = &ledger.Transaction{RWSet: rw}
			if rng.Intn(8) == 0 {
				codes[i] = ledger.CodeEndorsementFailure // pre-decided
			}
		}

		serial := append([]ledger.ValidationCode(nil), codes...)
		New(db).ValidateBlock(5, txs, serial)

		plan := txgraph.Build(txs, codes, true)
		for _, workers := range []int{1, 2, 4, 8} {
			scheduled := append([]ledger.ValidationCode(nil), codes...)
			New(db).ValidateScheduled(5, txs, scheduled, plan.MVCCWaves, workers, nil)
			if !reflect.DeepEqual(serial, scheduled) {
				t.Fatalf("round %d workers %d: scheduled codes diverge\nserial:    %v\nscheduled: %v",
					round, workers, serial, scheduled)
			}
		}
	}
}

// TestValidateScheduledReportsWaves checks the per-wave observer fires once
// per wave with the wave's size, and that the schedule reproduces the
// serial outcome on a conflicting chain (only the first writer commits).
func TestValidateScheduledReportsWaves(t *testing.T) {
	db := seedDB(t)
	v2 := rwset.Version{BlockNum: 2, TxNum: 0}
	txs := []*ledger.Transaction{
		tx([]rwset.Read{{Key: "K2", Version: v2}}, []rwset.Write{{Key: "K2", Value: []byte("a")}}),
		tx([]rwset.Read{{Key: "K2", Version: v2}}, []rwset.Write{{Key: "K2", Value: []byte("b")}}),
		tx(nil, []rwset.Write{{Key: "other", Value: []byte("c")}}),
	}
	plan := txgraph.Build(txs, nil, true)
	var sizes []int
	codes := make([]ledger.ValidationCode, len(txs))
	New(db).ValidateScheduled(6, txs, codes, plan.MVCCWaves, 4, func(n int, _ time.Duration) {
		sizes = append(sizes, n)
	})
	if !reflect.DeepEqual(sizes, []int{2, 1}) {
		t.Fatalf("wave sizes = %v, want [2 1]", sizes)
	}
	want := []ledger.ValidationCode{ledger.CodeValid, ledger.CodeMVCCConflict, ledger.CodeValid}
	if !reflect.DeepEqual(codes, want) {
		t.Fatalf("codes = %v, want %v", codes, want)
	}
}
