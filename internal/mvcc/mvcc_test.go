package mvcc

import (
	"testing"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// seedDB populates the world state with the paper's §3 scenario:
// three keys committed in earlier blocks.
func seedDB(t *testing.T) *statedb.DB {
	t.Helper()
	db := statedb.New()
	b := statedb.NewUpdateBatch()
	b.Put("K1", []byte("VL1"), rwset.Version{BlockNum: 1, TxNum: 0})
	b.Put("K2", []byte("VL2"), rwset.Version{BlockNum: 2, TxNum: 0})
	b.Put("K3", []byte("VL3"), rwset.Version{BlockNum: 3, TxNum: 0})
	db.Apply(b, rwset.Version{BlockNum: 3})
	return db
}

func tx(reads []rwset.Read, writes []rwset.Write) *ledger.Transaction {
	return &ledger.Transaction{RWSet: rwset.ReadWriteSet{Reads: reads, Writes: writes}}
}

// TestPaperSection3Example reproduces the worked MVCC example of paper §3:
// five transactions in one block; T1, T4 and T5 commit, T2 and T3 fail with
// an MVCC conflict because T1's write bumps K2's version.
func TestPaperSection3Example(t *testing.T) {
	db := seedDB(t)
	v := New(db)
	vn1 := rwset.Version{BlockNum: 1, TxNum: 0}
	vn2 := rwset.Version{BlockNum: 2, TxNum: 0}
	vn3 := rwset.Version{BlockNum: 3, TxNum: 0}
	txs := []*ledger.Transaction{
		// T1: reads K2, writes K2.
		tx([]rwset.Read{{Key: "K2", Version: vn2}}, []rwset.Write{{Key: "K2", Value: []byte("VL1")}}),
		// T2: reads K1 and K2, writes K3.
		tx([]rwset.Read{{Key: "K1", Version: vn1}, {Key: "K2", Version: vn2}}, []rwset.Write{{Key: "K3", Value: []byte("VL3")}}),
		// T3: reads K2, writes K3.
		tx([]rwset.Read{{Key: "K2", Version: vn2}}, []rwset.Write{{Key: "K3", Value: []byte("VL1")}}),
		// T4: reads K3, writes K2.
		tx([]rwset.Read{{Key: "K3", Version: vn3}}, []rwset.Write{{Key: "K2", Value: []byte("VL1")}}),
		// T5: empty read set, writes K3 (a blind write never conflicts).
		tx(nil, []rwset.Write{{Key: "K3", Value: []byte("VL2")}}),
	}
	res := v.ValidateBlock(6, txs, nil)
	want := []ledger.ValidationCode{
		ledger.CodeValid,        // T1
		ledger.CodeMVCCConflict, // T2
		ledger.CodeMVCCConflict, // T3
		ledger.CodeValid,        // T4
		ledger.CodeValid,        // T5
	}
	for i, code := range res.Codes {
		if code != want[i] {
			t.Errorf("T%d = %v, want %v", i+1, code, want[i])
		}
	}
	// Commit and check final state: T4's K2 write and T5's K3 write win.
	batch := BuildCommitBatch(6, txs, res.Codes)
	db.Apply(batch, rwset.Version{BlockNum: 6})
	k2, _ := db.Get("K2")
	if k2.Version != (rwset.Version{BlockNum: 6, TxNum: 3}) {
		t.Errorf("K2 version = %v, want 6:3 (T4)", k2.Version)
	}
	k3, _ := db.Get("K3")
	if string(k3.Value) != "VL2" || k3.Version != (rwset.Version{BlockNum: 6, TxNum: 4}) {
		t.Errorf("K3 = %q @ %v, want VL2 @ 6:4 (T5)", k3.Value, k3.Version)
	}
}

func TestStaleReadAcrossBlocksFails(t *testing.T) {
	db := seedDB(t)
	v := New(db)
	stale := rwset.Version{BlockNum: 1, TxNum: 5} // K2 is at 2:0
	res := v.ValidateBlock(6, []*ledger.Transaction{
		tx([]rwset.Read{{Key: "K2", Version: stale}}, []rwset.Write{{Key: "K2", Value: []byte("x")}}),
	}, nil)
	if res.Codes[0] != ledger.CodeMVCCConflict {
		t.Fatalf("code = %v, want MVCC conflict", res.Codes[0])
	}
}

func TestReadOfMissingKeyWithZeroVersionIsValid(t *testing.T) {
	db := statedb.New()
	v := New(db)
	res := v.ValidateBlock(1, []*ledger.Transaction{
		tx([]rwset.Read{{Key: "new", Version: rwset.Version{}}}, []rwset.Write{{Key: "new", Value: []byte("x")}}),
	}, nil)
	if res.Codes[0] != ledger.CodeValid {
		t.Fatalf("code = %v, want valid (absent key read at zero version)", res.Codes[0])
	}
}

func TestIntraBlockDeleteInvalidatesReaders(t *testing.T) {
	db := seedDB(t)
	v := New(db)
	vn2 := rwset.Version{BlockNum: 2, TxNum: 0}
	res := v.ValidateBlock(6, []*ledger.Transaction{
		tx([]rwset.Read{{Key: "K2", Version: vn2}}, []rwset.Write{{Key: "K2", IsDelete: true}}),
		tx([]rwset.Read{{Key: "K2", Version: vn2}}, []rwset.Write{{Key: "K1", Value: []byte("y")}}),
	}, nil)
	if res.Codes[0] != ledger.CodeValid {
		t.Fatalf("deleter = %v, want valid", res.Codes[0])
	}
	if res.Codes[1] != ledger.CodeMVCCConflict {
		t.Fatalf("reader after delete = %v, want conflict", res.Codes[1])
	}
}

func TestPreDecidedCodesAreSkipped(t *testing.T) {
	db := seedDB(t)
	v := New(db)
	vn2 := rwset.Version{BlockNum: 2, TxNum: 0}
	txs := []*ledger.Transaction{
		// Endorsement-failed transaction writing K2: must NOT shadow state.
		tx([]rwset.Read{{Key: "K2", Version: vn2}}, []rwset.Write{{Key: "K2", Value: []byte("evil")}}),
		// Honest transaction reading the same version: still valid because
		// the failed transaction's write never counted.
		tx([]rwset.Read{{Key: "K2", Version: vn2}}, []rwset.Write{{Key: "K1", Value: []byte("y")}}),
	}
	codes := []ledger.ValidationCode{ledger.CodeEndorsementFailure, ledger.CodeNotValidated}
	res := v.ValidateBlock(6, txs, codes)
	if res.Codes[0] != ledger.CodeEndorsementFailure {
		t.Fatalf("pre-decided code overwritten: %v", res.Codes[0])
	}
	if res.Codes[1] != ledger.CodeValid {
		t.Fatalf("honest tx = %v, want valid", res.Codes[1])
	}
}

func TestCRDTWritesDoNotShadowMVCC(t *testing.T) {
	db := seedDB(t)
	v := New(db)
	vn2 := rwset.Version{BlockNum: 2, TxNum: 0}
	txs := []*ledger.Transaction{
		// A valid transaction with a CRDT write on K2.
		tx([]rwset.Read{{Key: "K2", Version: vn2}}, []rwset.Write{{Key: "K2", Value: []byte("crdt"), IsCRDT: true}}),
		// A second reader of K2 at the same version: the CRDT write must
		// not have bumped the version.
		tx([]rwset.Read{{Key: "K2", Version: vn2}}, []rwset.Write{{Key: "K1", Value: []byte("y")}}),
	}
	res := v.ValidateBlock(6, txs, nil)
	if res.Codes[0] != ledger.CodeValid || res.Codes[1] != ledger.CodeValid {
		t.Fatalf("codes = %v, want both valid", res.Codes)
	}
}

func TestBuildCommitBatchSkipsFailedTx(t *testing.T) {
	txs := []*ledger.Transaction{
		tx(nil, []rwset.Write{{Key: "a", Value: []byte("1")}}),
		tx(nil, []rwset.Write{{Key: "b", Value: []byte("2")}}),
	}
	codes := []ledger.ValidationCode{ledger.CodeMVCCConflict, ledger.CodeValid}
	batch := BuildCommitBatch(9, txs, codes)
	if batch.Len() != 1 {
		t.Fatalf("batch len = %d, want 1", batch.Len())
	}
	db := statedb.New()
	db.Apply(batch, rwset.Version{BlockNum: 9})
	if _, ok := db.Get("a"); ok {
		t.Fatal("failed tx write committed")
	}
	if vv, ok := db.Get("b"); !ok || vv.Version != (rwset.Version{BlockNum: 9, TxNum: 1}) {
		t.Fatalf("b = %+v, %v", vv, ok)
	}
}

func TestBuildCommitBatchAppliesDeletes(t *testing.T) {
	db := seedDB(t)
	txs := []*ledger.Transaction{
		tx(nil, []rwset.Write{{Key: "K1", IsDelete: true}}),
	}
	batch := BuildCommitBatch(7, txs, []ledger.ValidationCode{ledger.CodeValid})
	db.Apply(batch, rwset.Version{BlockNum: 7})
	if _, ok := db.Get("K1"); ok {
		t.Fatal("K1 not deleted")
	}
}

// TestAllConflictingOnlyFirstSucceeds models the paper's worst-case
// workload: every transaction reads and writes the same key at the same
// snapshot version; only the first in the block commits.
func TestAllConflictingOnlyFirstSucceeds(t *testing.T) {
	db := seedDB(t)
	v := New(db)
	vn2 := rwset.Version{BlockNum: 2, TxNum: 0}
	const n = 100
	txs := make([]*ledger.Transaction, n)
	for i := range txs {
		txs[i] = tx([]rwset.Read{{Key: "K2", Version: vn2}}, []rwset.Write{{Key: "K2", Value: []byte("v")}})
	}
	res := v.ValidateBlock(6, txs, nil)
	valid := 0
	for _, c := range res.Codes {
		if c == ledger.CodeValid {
			valid++
		}
	}
	if valid != 1 || res.Codes[0] != ledger.CodeValid {
		t.Fatalf("valid count = %d (first=%v), want exactly the first", valid, res.Codes[0])
	}
}

func BenchmarkValidateBlockAllConflicting(b *testing.B) {
	db := statedb.New()
	batch := statedb.NewUpdateBatch()
	batch.Put("K", []byte("v"), rwset.Version{BlockNum: 1})
	db.Apply(batch, rwset.Version{BlockNum: 1})
	v := New(db)
	txs := make([]*ledger.Transaction, 400)
	for i := range txs {
		txs[i] = tx(
			[]rwset.Read{{Key: "K", Version: rwset.Version{BlockNum: 1}}},
			[]rwset.Write{{Key: "K", Value: []byte("v2")}},
		)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.ValidateBlock(2, txs, make([]ledger.ValidationCode, len(txs)))
	}
}
