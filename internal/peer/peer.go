// Package peer implements a Fabric peer: the endorser that simulates
// chaincode against the local world state during the execution phase, and
// the committer that validates delivered blocks and applies them to the
// ledger (paper §2.1). With CRDT support enabled the committer routes
// CRDT-flagged transactions through the FabricCRDT merge engine instead of
// MVCC validation (paper §5.1, Figure 2).
//
// The world state lives behind a configurable statedb backend
// (CommitterConfig.Backend): in-memory (single-lock or sharded) or the
// persistent disk backend. A peer reopening a disk backend's data
// directory restarts at the recorded block height — Height reports it, and
// CommitBlock fast-forwards re-delivered blocks at or below it instead of
// re-validating them (DESIGN.md §4).
package peer

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/core"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/metrics"
	"fabriccrdt/internal/mvcc"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// Proposal is a client's request to simulate a chaincode invocation.
type Proposal struct {
	TxID      string
	ChannelID string
	Chaincode string
	Args      [][]byte
	// Creator is the serialized identity of the submitting client.
	Creator []byte
}

// ProposalResponse is one endorser's signed simulation result.
type ProposalResponse struct {
	// Endorser is the serialized identity of the endorsing peer.
	Endorser []byte
	// RWSet is the simulated read/write set.
	RWSet rwset.ReadWriteSet
	// Signature signs the would-be transaction's endorsement payload.
	Signature []byte
}

// CommitEvent notifies a listener of one transaction's commit outcome.
type CommitEvent struct {
	TxID     string
	BlockNum uint64
	Code     ledger.ValidationCode
}

// CommitResult summarizes one committed block.
type CommitResult struct {
	BlockNum   uint64
	Codes      []ledger.ValidationCode
	MergedKeys []string
	// CommittedTx counts transactions whose writes reached the state.
	CommittedTx int
	// FastForwarded reports that the block's writes were already in the
	// world state (a restarted peer re-receiving history it durably
	// committed), so validation, merge and state apply were skipped and
	// the block was only recorded in the chain.
	FastForwarded bool
}

// Config configures a peer.
type Config struct {
	Name      string
	MSPID     string
	ChannelID string
	// EnableCRDT turns the peer into a FabricCRDT peer; disabled it
	// behaves exactly like stock Fabric (CRDT-flagged writes validate and
	// commit as ordinary writes).
	EnableCRDT bool
	// EngineOptions tunes the merge engine (ablation switches). A zero
	// EngineOptions.Workers inherits Committer.Workers.
	EngineOptions core.Options
	// Committer tunes the staged commit pipeline (see pipeline.go).
	Committer CommitterConfig
}

// Peer errors.
var (
	ErrUnknownChaincode = errors.New("peer: chaincode not installed")
	ErrChaincodeFailed  = errors.New("peer: chaincode invocation failed")
	ErrBadCreator       = errors.New("peer: creator identity rejected")
)

// installedCC pairs a chaincode with its endorsement policy.
type installedCC struct {
	cc     chaincode.Chaincode
	policy *endorse.Policy
}

// Peer is one peer node. Endorsement (Endorse) may run concurrently with
// commits; commits are serialized by the committer mutex, mirroring
// Fabric's single commit pipeline per channel.
type Peer struct {
	cfg    Config
	signer *cryptoid.Signer
	msp    *cryptoid.MSP

	db        *statedb.DB
	chain     *ledger.Chain
	validator *mvcc.Validator
	engine    *core.Engine

	ccMu       sync.RWMutex
	chaincodes map[string]installedCC

	commitMu     sync.Mutex
	committedIDs map[string]struct{}

	timings *metrics.StageTimings

	eventMu   sync.RWMutex
	listeners []chan CommitEvent
}

// New creates a peer with its own world state and chain, signing with the
// given identity and trusting the given MSP roots. It fails when the
// configured state backend is unknown or cannot be opened (the disk
// backend needs a usable Committer.DataDir).
//
// With the disk backend, a peer constructed over a previously used DataDir
// resumes from the persisted state: Height reports the last durably
// committed block, and CommitBlock fast-forwards re-delivered blocks up to
// that height instead of re-validating them.
func New(cfg Config, signer *cryptoid.Signer, msp *cryptoid.MSP) (*Peer, error) {
	db, err := newStateDB(cfg.Committer)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", cfg.Name, err)
	}
	if cfg.EngineOptions.Workers == 0 {
		cfg.EngineOptions.Workers = cfg.Committer.Workers
	}
	// A durable state that already committed blocks carries a chain
	// checkpoint (last block number + header hash): resume the chain from
	// it, so newly delivered blocks are hash-verified against the recorded
	// history instead of restarting at genesis. A store with height but no
	// matching checkpoint is damaged — refuse it rather than start a
	// genesis chain whose fast-forward would silently swallow new blocks
	// numbered at or below the stale height.
	chain := ledger.NewChain(cfg.ChannelID)
	if h := db.Height().BlockNum; h > 0 {
		num, hash, ok := loadCheckpoint(db)
		if !ok || num != h {
			db.Close()
			return nil, fmt.Errorf("peer %s: durable state at height %d has no matching chain checkpoint (found %d): store is damaged or from an incompatible version", cfg.Name, h, num)
		}
		chain = ledger.NewChainCheckpointed(num, hash)
	}
	return &Peer{
		cfg:          cfg,
		signer:       signer,
		msp:          msp,
		db:           db,
		chain:        chain,
		validator:    mvcc.New(db),
		engine:       core.NewEngine(db, cfg.EngineOptions),
		chaincodes:   make(map[string]installedCC),
		committedIDs: make(map[string]struct{}),
		timings:      metrics.NewStageTimings(),
	}, nil
}

// checkpointMetaKey is the statedb metadata key holding the last committed
// block's chain checkpoint. It lives in the metadata space (like persisted
// CRDT documents under "crdt/") and is written atomically with the block's
// own state writes, so a durable backend always records a height and a
// checkpoint from the same block.
const checkpointMetaKey = "sys/checkpoint"

// chainCheckpoint is the persisted (number, header hash) of the last
// committed block — what a restarted peer's chain and the rebuilt ordering
// service chain onto.
type chainCheckpoint struct {
	Number uint64 `json:"number"`
	Hash   []byte `json:"hash"`
}

// txSeenMetaKey is the statedb metadata key marking a transaction ID as
// seen, making duplicate screening survive restarts (real Fabric consults
// its persisted block index for this).
func txSeenMetaKey(txID string) string { return "sys/tx/" + txID }

// stageTxSeen adds every transaction ID of the block to its commit batch,
// durably extending the duplicate-screening set in the same atomic apply
// as the block's writes.
func stageTxSeen(batch *statedb.UpdateBatch, txs []*ledger.Transaction) {
	for _, tx := range txs {
		batch.PutMeta(txSeenMetaKey(tx.ID), []byte{1})
	}
}

// stageCheckpoint adds the block's chain checkpoint to its commit batch.
func stageCheckpoint(batch *statedb.UpdateBatch, b *ledger.Block) error {
	data, err := json.Marshal(chainCheckpoint{Number: b.Header.Number, Hash: b.HeaderHash()})
	if err != nil {
		return err
	}
	batch.PutMeta(checkpointMetaKey, data)
	return nil
}

// loadCheckpoint reads the persisted chain checkpoint, if any.
func loadCheckpoint(db *statedb.DB) (number uint64, hash []byte, ok bool) {
	raw := db.GetMeta(checkpointMetaKey)
	if raw == nil {
		return 0, nil, false
	}
	var cp chainCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return 0, nil, false
	}
	return cp.Number, cp.Hash, true
}

// newStateDB builds the world state named by the committer configuration.
func newStateDB(c CommitterConfig) (*statedb.DB, error) {
	switch c.Backend {
	case "":
		if c.StateShards > 1 {
			return statedb.NewSharded(c.StateShards), nil
		}
		return statedb.New(), nil
	case BackendMemory:
		return statedb.New(), nil
	case BackendSharded:
		return statedb.NewSharded(c.StateShards), nil
	case BackendDisk:
		if c.DataDir == "" {
			return nil, errors.New("disk state backend requires CommitterConfig.DataDir")
		}
		return statedb.NewDisk(c.DataDir)
	default:
		return nil, fmt.Errorf("unknown state backend %q (want %s, %s or %s)",
			c.Backend, BackendMemory, BackendSharded, BackendDisk)
	}
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.cfg.Name }

// MSPID returns the peer's organization.
func (p *Peer) MSPID() string { return p.cfg.MSPID }

// CRDTEnabled reports whether the FabricCRDT merge path is active.
func (p *Peer) CRDTEnabled() bool { return p.cfg.EnableCRDT }

// DB exposes the peer's world state (read-side: examples, experiments).
func (p *Peer) DB() *statedb.DB { return p.db }

// Height returns the number of the last block whose writes reached the
// world state — with the disk backend, the last durably committed block,
// which survives restarts. Deliver loops can use it to resume at
// Height()+1; CommitBlock itself fast-forwards any block at or below it.
func (p *Peer) Height() uint64 { return p.db.Height().BlockNum }

// Close releases the peer's world state backend (a no-op for in-memory
// backends). With the disk backend it flushes the log and surfaces any
// deferred write error; the peer must not commit afterwards.
func (p *Peer) Close() error { return p.db.Close() }

// Chain exposes the peer's blockchain.
func (p *Peer) Chain() *ledger.Chain { return p.chain }

// Genesis returns the channel genesis block the peer chains from. It
// panics on a peer restored from a durable state checkpoint, whose chain
// no longer stores the genesis body — use Chain().LastRef for the resume
// point instead.
func (p *Peer) Genesis() *ledger.Block {
	g, err := p.chain.Get(0)
	if err != nil {
		panic("peer: chain without genesis: " + err.Error())
	}
	return g
}

// InstallChaincode installs a chaincode with its endorsement policy.
func (p *Peer) InstallChaincode(name string, cc chaincode.Chaincode, policy *endorse.Policy) {
	p.ccMu.Lock()
	defer p.ccMu.Unlock()
	p.chaincodes[name] = installedCC{cc: cc, policy: policy}
}

// lookupChaincode returns the installed chaincode entry.
func (p *Peer) lookupChaincode(name string) (installedCC, error) {
	p.ccMu.RLock()
	defer p.ccMu.RUnlock()
	entry, ok := p.chaincodes[name]
	if !ok {
		return installedCC{}, fmt.Errorf("%w: %q on peer %s", ErrUnknownChaincode, name, p.cfg.Name)
	}
	return entry, nil
}

// Endorse simulates the proposal against the local committed state and
// returns the signed read/write set (execution + endorsement phase). The
// world state is not modified (paper: "peers simulate the transaction
// proposal").
func (p *Peer) Endorse(prop Proposal) (ProposalResponse, error) {
	creator, err := cryptoid.UnmarshalIdentity(prop.Creator)
	if err != nil {
		return ProposalResponse{}, fmt.Errorf("%w: %v", ErrBadCreator, err)
	}
	if err := p.msp.VerifyIdentity(creator); err != nil {
		return ProposalResponse{}, fmt.Errorf("%w: %v", ErrBadCreator, err)
	}
	entry, err := p.lookupChaincode(prop.Chaincode)
	if err != nil {
		return ProposalResponse{}, err
	}
	stub := chaincode.NewSimStub(prop.TxID, prop.Args, p.db)
	if err := entry.cc.Invoke(stub); err != nil {
		return ProposalResponse{}, fmt.Errorf("%w: %v", ErrChaincodeFailed, err)
	}
	rw := stub.Result()
	if !p.cfg.EnableCRDT {
		// A stock Fabric peer has no notion of CRDT writes: the flags are
		// dropped and the writes validate/commit as ordinary ones.
		for i := range rw.Writes {
			rw.Writes[i].IsCRDT = false
			rw.Writes[i].CRDTType = ""
		}
	}
	payload, err := endorsementPayload(prop, rw)
	if err != nil {
		return ProposalResponse{}, err
	}
	endorser, err := p.signer.Identity.Marshal()
	if err != nil {
		return ProposalResponse{}, err
	}
	return ProposalResponse{
		Endorser:  endorser,
		RWSet:     rw,
		Signature: p.signer.Sign(payload),
	}, nil
}

// endorsementPayload derives the signed payload from a proposal + rwset,
// matching Transaction.EndorsementPayload for the assembled transaction.
func endorsementPayload(prop Proposal, rw rwset.ReadWriteSet) ([]byte, error) {
	tx := ledger.Transaction{
		ID:        prop.TxID,
		ChannelID: prop.ChannelID,
		Chaincode: prop.Chaincode,
		RWSet:     rw,
	}
	return tx.EndorsementPayload()
}

// Events returns a channel receiving one CommitEvent per transaction in
// every block this peer commits from the time of the call.
func (p *Peer) Events() <-chan CommitEvent {
	p.eventMu.Lock()
	defer p.eventMu.Unlock()
	ch := make(chan CommitEvent, 1024)
	p.listeners = append(p.listeners, ch)
	return ch
}

// CloseEvents closes all event listener channels; call once no more blocks
// will be committed.
func (p *Peer) CloseEvents() {
	p.eventMu.Lock()
	defer p.eventMu.Unlock()
	for _, ch := range p.listeners {
		close(ch)
	}
	p.listeners = nil
}

func (p *Peer) emit(ev CommitEvent) {
	p.eventMu.RLock()
	defer p.eventMu.RUnlock()
	for _, ch := range p.listeners {
		ch <- ev
	}
}

// validateEndorsements checks the signatures and endorsement policy of one
// transaction, returning CodeNotValidated when it passes (the decision then
// falls to the merge engine or MVCC validation).
func (p *Peer) validateEndorsements(tx *ledger.Transaction) ledger.ValidationCode {
	entry, err := p.lookupChaincode(tx.Chaincode)
	if err != nil {
		return ledger.CodeEndorsementFailure
	}
	payload, err := tx.EndorsementPayload()
	if err != nil {
		return ledger.CodeBadSignature
	}
	var orgs []string
	for _, end := range tx.Endorsements {
		id, err := cryptoid.UnmarshalIdentity(end.Endorser)
		if err != nil {
			return ledger.CodeBadSignature
		}
		if err := p.msp.VerifySignature(id, payload, end.Signature); err != nil {
			return ledger.CodeBadSignature
		}
		orgs = append(orgs, id.MSPID)
	}
	if !entry.policy.Satisfied(orgs) {
		return ledger.CodeEndorsementFailure
	}
	return ledger.CodeNotValidated
}

// SyncFrom catches this peer up to a source peer by fetching and committing
// every block this peer is missing — the state-transfer path a freshly
// joined or restarted peer runs before serving endorsements. Blocks are
// re-validated from scratch (endorsements, merge, MVCC), so a lying source
// cannot inject invalid state; only the hash-chained block contents are
// trusted as delivered.
func (p *Peer) SyncFrom(source *Peer) error {
	for {
		next := p.chain.Height()
		if next >= source.Chain().Height() {
			return nil
		}
		block, err := source.Chain().Get(next)
		if err != nil {
			return fmt.Errorf("peer %s: fetching block %d from %s: %w", p.cfg.Name, next, source.Name(), err)
		}
		if _, err := p.CommitBlock(block); err != nil {
			return fmt.Errorf("peer %s: syncing block %d: %w", p.cfg.Name, next, err)
		}
	}
}

// RebuildState replays the blockchain into a fresh world state — the
// recovery path a peer runs after a crash (paper §2.1: "executing all valid
// transactions included in the blockchain starting from the genesis block
// results in the current state"). The committed blocks already carry their
// validation codes, so replay applies exactly the recorded outcomes.
//
// A peer restored from a durable state checkpoint cannot rebuild: the
// pre-checkpoint block bodies are not stored locally. Its recovery path is
// the inverse — the durable state IS the replay result, and CommitBlock
// fast-forwards any re-delivered history.
func (p *Peer) RebuildState() error {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	if p.chain.FirstNumber() > 0 {
		return fmt.Errorf("peer %s: cannot rebuild state from a chain checkpointed at block %d: pre-checkpoint blocks are not stored locally", p.cfg.Name, p.chain.FirstNumber()-1)
	}
	p.db.Reset()
	p.committedIDs = make(map[string]struct{})
	for _, block := range p.chain.Blocks() {
		if block.Header.Number == 0 {
			continue
		}
		// Re-run the merge so CRDT write rewrites are reconstructed; the
		// recorded codes say which transactions were merged vs failed.
		raw, err := block.Marshal()
		if err != nil {
			return err
		}
		view, err := ledger.UnmarshalBlock(raw)
		if err != nil {
			return err
		}
		codes := make([]ledger.ValidationCode, len(view.Transactions))
		copy(codes, block.Metadata.ValidationCodes)
		var mergeRes core.Result
		if p.cfg.EnableCRDT {
			// Reset merged markers so the engine re-merges them.
			for i := range codes {
				if codes[i] == ledger.CodeCRDTMerged {
					codes[i] = ledger.CodeNotValidated
				}
			}
			mergeRes, err = p.engine.MergeBlock(view, codes)
			if err != nil {
				return fmt.Errorf("peer %s: replaying block %d: %w", p.cfg.Name, view.Header.Number, err)
			}
		}
		batch := mvcc.BuildCommitBatch(view.Header.Number, view.Transactions, block.Metadata.ValidationCodes)
		core.StageDocStates(batch, mergeRes)
		stageTxSeen(batch, view.Transactions)
		if err := stageCheckpoint(batch, block); err != nil {
			return err
		}
		p.db.Apply(batch, rwset.Version{BlockNum: view.Header.Number})
		for _, tx := range view.Transactions {
			p.committedIDs[tx.ID] = struct{}{}
		}
	}
	return nil
}
