// Package peer implements a Fabric peer: the endorser that simulates
// chaincode against the local world state during the execution phase, and
// the committer that validates delivered blocks and applies them to the
// ledger (paper §2.1). With CRDT support enabled the committer routes
// CRDT-flagged transactions through the FabricCRDT merge engine instead of
// MVCC validation (paper §5.1, Figure 2).
//
// A peer joins one or more channels (Config.Channels). Each channel gets
// its own commit runtime (internal/channel.Runtime): world state, hash
// chain, block numbering, duplicate screening, MVCC version space and
// crash-restart resume are all channel-private, so N channels commit fully
// in parallel — CommitBlockOn serializes commits per channel, never across
// channels. The single-channel API (CommitBlock, DB, Chain, Height,
// Genesis) operates on the peer's default channel, the first configured.
//
// Each channel's world state lives behind a configurable statedb backend
// (CommitterConfig.Backend): in-memory (single-lock or sharded) or the
// persistent disk backend, stored under DataDir/<channel-ID>. A peer
// reopening a disk backend's data directory restarts every channel at its
// own recorded block height — HeightOn reports it, and CommitBlockOn
// fast-forwards re-delivered blocks at or below it instead of
// re-validating them (DESIGN.md §4, §6).
//
// Alongside the state store, the disk backend keeps a durable block store
// by default (CommitterConfig.PersistBlocks, internal/blockstore): every
// committed block body is appended in the finalize stage just before the
// state apply, so the ledger — not the state snapshot — is the recovery
// root. A restarted peer serves its full history to syncing peers
// (SyncFrom) and can rebuild its world state from block 0 (RebuildState),
// reproducing the pre-restart state byte for byte (DESIGN.md §8).
package peer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/channel"
	"fabriccrdt/internal/core"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/metrics"
	"fabriccrdt/internal/obs"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// Proposal is a client's request to simulate a chaincode invocation.
type Proposal struct {
	TxID string
	// ChannelID routes the simulation to one of the peer's channels; empty
	// means the default channel.
	ChannelID string
	Chaincode string
	Args      [][]byte
	// Creator is the serialized identity of the submitting client.
	Creator []byte
	// TraceID carries the client's obs trace ID (empty when tracing is
	// off) so the endorsing hop records a span under the same trace.
	TraceID string
}

// ProposalResponse is one endorser's signed simulation result.
type ProposalResponse struct {
	// Endorser is the serialized identity of the endorsing peer.
	Endorser []byte
	// ChannelID echoes the channel the proposal resolved to — the ID the
	// signature covers and the assembled transaction must carry (a
	// default-channel proposal with an empty ChannelID learns the real
	// name here; committers reject transactions naming any other channel).
	ChannelID string
	// RWSet is the simulated read/write set.
	RWSet rwset.ReadWriteSet
	// Signature signs the would-be transaction's endorsement payload.
	Signature []byte
}

// CommitEvent notifies a listener of one transaction's commit outcome.
type CommitEvent struct {
	TxID string
	// ChannelID names the channel the transaction committed on.
	ChannelID string
	BlockNum  uint64
	Code      ledger.ValidationCode
}

// CommitResult summarizes one committed block.
type CommitResult struct {
	// ChannelID names the channel the block was committed on.
	ChannelID  string
	BlockNum   uint64
	Codes      []ledger.ValidationCode
	MergedKeys []string
	// CommittedTx counts transactions whose writes reached the state.
	CommittedTx int
	// FastForwarded reports that the block's writes were already in the
	// world state (a restarted peer re-receiving history it durably
	// committed), so validation, merge and state apply were skipped and
	// the block was only recorded in the chain.
	FastForwarded bool
}

// Config configures a peer.
type Config struct {
	Name  string
	MSPID string
	// ChannelID is the single-channel convenience knob: with Channels
	// empty, the peer joins just this channel (or channel.DefaultChannel
	// when both are empty).
	ChannelID string
	// Channels lists every channel the peer joins; the first is the
	// default channel the single-channel API binds to. Overrides
	// ChannelID when set. Names must be unique and non-empty.
	Channels []string
	// EnableCRDT turns the peer into a FabricCRDT peer; disabled it
	// behaves exactly like stock Fabric (CRDT-flagged writes validate and
	// commit as ordinary writes).
	EnableCRDT bool
	// EngineOptions tunes the merge engine (ablation switches). A zero
	// EngineOptions.Workers inherits the resolved Committer.Workers.
	EngineOptions core.Options
	// Committer tunes the staged commit pipeline of every channel (see
	// pipeline.go). A zero Committer.Workers is resolved adaptively:
	// runtime.NumCPU() divided across the peer's channels.
	Committer CommitterConfig
}

// Peer errors.
var (
	ErrUnknownChaincode = errors.New("peer: chaincode not installed")
	ErrChaincodeFailed  = errors.New("peer: chaincode invocation failed")
	ErrBadCreator       = errors.New("peer: creator identity rejected")
	ErrUnknownChannel   = errors.New("peer: channel not joined")
)

// Peer is one peer node. Endorsement (Endorse) may run concurrently with
// commits; commits are serialized per channel by each channel runtime's
// commit mutex, mirroring Fabric's single commit pipeline per channel —
// distinct channels commit in parallel.
type Peer struct {
	cfg    Config
	signer *cryptoid.Signer
	msp    *cryptoid.MSP

	// channelIDs is the joined channel list in configuration order;
	// channelIDs[0] is the default channel. channels maps each ID to its
	// private commit runtime.
	channelIDs []string
	channels   map[string]*channel.Runtime

	// reg is the peer's metrics registry: per-(channel,stage) commit
	// histograms, block/transaction counters, height, store and
	// event-queue gauges — everything the -metrics-addr endpoint serves
	// for this peer, and the single source CommitTimings reads from. Each
	// peer owns its registry so multi-peer processes (fabricnet, tests)
	// keep their series apart; serve them merged via obs.Render.
	reg *obs.Registry
	// cm holds each channel's registered instruments; read-only after New,
	// so the commit hot path observes without locks.
	cm map[string]*channelMetrics
	// sched aggregates the dependency scheduler's conflict-structure
	// counters across all channels (pipeline.go); mirrored into reg as
	// scrape-time counter callbacks.
	sched *metrics.Counters

	eventMu   sync.RWMutex
	listeners []*eventSub
}

// channelMetrics is one channel's registered commit instruments.
type channelMetrics struct {
	// stages maps stage name → latency histogram (the commitStages set,
	// built once at New).
	stages map[string]*obs.Histogram
	// blocks counts committed blocks; txOK/txRejected count transactions
	// by commit outcome.
	blocks     *obs.Counter
	txOK       *obs.Counter
	txRejected *obs.Counter
}

// observe records one stage latency.
func (cm *channelMetrics) observe(stage string, d time.Duration) {
	if cm == nil {
		return
	}
	cm.stages[stage].Observe(d)
}

// time runs fn and records its wall clock under stage.
func (cm *channelMetrics) time(stage string, fn func()) {
	if cm == nil {
		fn()
		return
	}
	//lint:ignore determinism stage timing only; durations feed metrics, never committed state
	start := time.Now()
	fn()
	cm.stages[stage].Observe(time.Since(start))
}

// New creates a peer with its own world state and chain per joined
// channel, signing with the given identity and trusting the given MSP
// roots. It fails when the channel list is invalid (empty or duplicate
// names), the configured state backend is unknown, or a channel store
// cannot be opened (the disk backend needs a usable Committer.DataDir;
// each channel persists under DataDir/<channel-ID>).
//
// With the disk backend, a peer constructed over a previously used DataDir
// resumes every channel from its persisted state: HeightOn reports the
// last durably committed block per channel, and CommitBlockOn
// fast-forwards re-delivered blocks up to that height instead of
// re-validating them.
func New(cfg Config, signer *cryptoid.Signer, msp *cryptoid.MSP) (*Peer, error) {
	ids := cfg.Channels
	if len(ids) == 0 {
		id := cfg.ChannelID
		if id == "" {
			id = channel.DefaultChannel
		}
		ids = []string{id}
	}
	if err := channel.ValidateIDs(ids); err != nil {
		return nil, fmt.Errorf("peer %s: %w", cfg.Name, err)
	}
	// Adaptive worker sizing (DESIGN.md §6): an unset worker knob shares
	// the host's CPUs evenly across the peer's channels instead of
	// defaulting to serial — channels commit in parallel, so each one
	// sizing its pools for the whole machine would oversubscribe it.
	if cfg.Committer.Workers == 0 {
		cfg.Committer.Workers = channel.AdaptiveWorkers(len(ids))
	}
	if cfg.EngineOptions.Workers == 0 {
		cfg.EngineOptions.Workers = cfg.Committer.Workers
	}
	// The finalize stage's internal parallelism follows the per-channel
	// worker pool unless pinned; 1 keeps the legacy fully serial finalize.
	if cfg.Committer.FinalizeWorkers == 0 {
		cfg.Committer.FinalizeWorkers = cfg.Committer.Workers
	}
	if cfg.Committer.FinalizeWorkers < 1 {
		cfg.Committer.FinalizeWorkers = 1
	}
	p := &Peer{
		cfg:        cfg,
		signer:     signer,
		msp:        msp,
		channelIDs: append([]string(nil), ids...),
		channels:   make(map[string]*channel.Runtime, len(ids)),
		reg:        obs.NewRegistry(),
		cm:         make(map[string]*channelMetrics, len(ids)),
		sched:      metrics.NewCounters(),
	}
	for _, id := range ids {
		rt, err := channel.NewRuntime(id, cfg.Committer, cfg.EngineOptions)
		if err != nil {
			p.closeRuntimes()
			return nil, fmt.Errorf("peer %s: %w", cfg.Name, err)
		}
		p.channels[id] = rt
	}
	p.registerMetrics()
	return p, nil
}

// registerMetrics builds the peer's registry: stage histograms and commit
// counters per channel, scrape-time gauges over live state (heights, key
// counts, store sizes, event-queue depth), and counter mirrors of the
// scheduler tallies. Registration happens once here; afterwards the
// registry is only read (scrapes) or updated through atomics.
func (p *Peer) registerMetrics() {
	name := p.cfg.Name
	for _, id := range p.channelIDs {
		rt := p.channels[id]
		cm := &channelMetrics{
			stages:     make(map[string]*obs.Histogram, len(commitStages)),
			blocks:     p.reg.Counter(obs.MetricPeerBlocksCommitted, "peer", name, "channel", id),
			txOK:       p.reg.Counter(obs.MetricPeerTxsCommitted, "peer", name, "channel", id, "result", "committed"),
			txRejected: p.reg.Counter(obs.MetricPeerTxsCommitted, "peer", name, "channel", id, "result", "rejected"),
		}
		for _, stage := range commitStages {
			cm.stages[stage] = p.reg.Histogram(obs.MetricCommitStageSeconds,
				"peer", name, "channel", id, "stage", stage)
		}
		p.cm[id] = cm
		p.reg.GaugeFunc(obs.MetricPeerBlockHeight,
			func() float64 { return float64(rt.Height()) }, "peer", name, "channel", id)
		p.reg.GaugeFunc(obs.MetricStatedbKeys,
			func() float64 { return float64(rt.DB().KeyCount()) }, "peer", name, "channel", id)
		if _, durable := rt.DB().Stats(); durable {
			p.reg.GaugeFunc(obs.MetricStatedbLogBytes, func() float64 {
				st, _ := rt.DB().Stats()
				return float64(st.LogBytes)
			}, "peer", name, "channel", id)
			p.reg.CounterFunc(obs.MetricStatedbAppends, func() float64 {
				st, _ := rt.DB().Stats()
				return float64(st.Appends)
			}, "peer", name, "channel", id)
			p.reg.CounterFunc(obs.MetricStatedbFsyncs, func() float64 {
				st, _ := rt.DB().Stats()
				return float64(st.Fsyncs)
			}, "peer", name, "channel", id)
			p.reg.CounterFunc(obs.MetricStatedbCompactions, func() float64 {
				st, _ := rt.DB().Stats()
				return float64(st.Compactions)
			}, "peer", name, "channel", id)
			// LSM-only series (always zero on the disk backend, which has
			// no memtable flushes, sorted runs or block cache).
			p.reg.CounterFunc(obs.MetricStatedbFlushes, func() float64 {
				st, _ := rt.DB().Stats()
				return float64(st.Flushes)
			}, "peer", name, "channel", id)
			p.reg.GaugeFunc(obs.MetricStatedbRuns, func() float64 {
				st, _ := rt.DB().Stats()
				return float64(st.Runs)
			}, "peer", name, "channel", id)
			p.reg.CounterFunc(obs.MetricStatedbCacheHits, func() float64 {
				st, _ := rt.DB().Stats()
				return float64(st.CacheHits)
			}, "peer", name, "channel", id)
			p.reg.CounterFunc(obs.MetricStatedbCacheMisses, func() float64 {
				st, _ := rt.DB().Stats()
				return float64(st.CacheMisses)
			}, "peer", name, "channel", id)
		}
		if bs := rt.Blocks(); bs != nil {
			p.reg.GaugeFunc(obs.MetricBlockstoreHeight,
				func() float64 { return float64(bs.Height()) }, "peer", name, "channel", id)
			p.reg.GaugeFunc(obs.MetricBlockstoreLogBytes,
				func() float64 { return float64(bs.Stats().LogBytes) }, "peer", name, "channel", id)
			p.reg.CounterFunc(obs.MetricBlockstoreAppends,
				func() float64 { return float64(bs.Stats().Appends) }, "peer", name, "channel", id)
			p.reg.CounterFunc(obs.MetricBlockstoreFsyncs,
				func() float64 { return float64(bs.Stats().Fsyncs) }, "peer", name, "channel", id)
		}
	}
	p.reg.GaugeFunc(obs.MetricPeerEventQueueDepth,
		func() float64 { return float64(p.EventBacklog()) }, "peer", name)
	p.reg.GaugeFunc(obs.MetricPeerEventListeners, func() float64 {
		p.eventMu.RLock()
		defer p.eventMu.RUnlock()
		return float64(len(p.listeners))
	}, "peer", name)
	//lint:sorted metric registration only; exposition sorts names, nothing feeds committed state
	for counter, metric := range map[string]string{
		CounterSchedBlocks:     obs.MetricSchedBlocks,
		CounterSchedTxs:        obs.MetricSchedTxs,
		CounterSchedGroups:     obs.MetricSchedGroups,
		CounterSchedConflicted: obs.MetricSchedConflicted,
		CounterSchedEdges:      obs.MetricSchedEdges,
		CounterSchedWaves:      obs.MetricSchedWaves,
	} {
		counter := counter
		p.reg.CounterFunc(metric,
			func() float64 { return float64(p.sched.Get(counter)) }, "peer", name)
	}
}

// Metrics returns the peer's registry, for serving (merged with the
// process Default registry) behind -metrics-addr and for test and
// benchmark readouts.
func (p *Peer) Metrics() *obs.Registry { return p.reg }

// EventBacklog returns the total number of commit events queued across
// all listeners' handoff queues — the scrape-time depth of the peer's
// unbounded event fan-out.
func (p *Peer) EventBacklog() int {
	p.eventMu.RLock()
	defer p.eventMu.RUnlock()
	total := 0
	for _, s := range p.listeners {
		s.mu.Lock()
		total += len(s.queue)
		s.mu.Unlock()
	}
	return total
}

// closeRuntimes closes every opened channel runtime, keeping the first
// error.
func (p *Peer) closeRuntimes() error {
	var first error
	for _, id := range p.channelIDs {
		rt, ok := p.channels[id]
		if !ok {
			continue
		}
		if err := rt.Close(); err != nil && first == nil {
			first = fmt.Errorf("channel %s: %w", id, err)
		}
	}
	return first
}

// runtime resolves a channel ID to its commit runtime; empty means the
// default channel.
func (p *Peer) runtime(channelID string) (*channel.Runtime, error) {
	if channelID == "" {
		channelID = p.channelIDs[0]
	}
	rt, ok := p.channels[channelID]
	if !ok {
		return nil, fmt.Errorf("%w: %q on peer %s (joined: %v)", ErrUnknownChannel, channelID, p.cfg.Name, p.channelIDs)
	}
	return rt, nil
}

// channelMetricsFor resolves a channel ID (empty means default) to its
// registry-backed stage metrics; nil for unknown channels, which every
// channelMetrics method tolerates.
func (p *Peer) channelMetricsFor(channelID string) *channelMetrics {
	if channelID == "" {
		channelID = p.channelIDs[0]
	}
	return p.cm[channelID]
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.cfg.Name }

// MSPID returns the peer's organization.
func (p *Peer) MSPID() string { return p.cfg.MSPID }

// CRDTEnabled reports whether the FabricCRDT merge path is active.
func (p *Peer) CRDTEnabled() bool { return p.cfg.EnableCRDT }

// Channels returns the joined channel IDs in configuration order; the
// first is the default channel.
func (p *Peer) Channels() []string { return append([]string(nil), p.channelIDs...) }

// DefaultChannel returns the channel the single-channel convenience API
// (DB, Chain, Height, CommitBlock, Genesis) binds to.
func (p *Peer) DefaultChannel() string { return p.channelIDs[0] }

// Workers returns the resolved commit-pipeline worker count per channel —
// the configured CommitterConfig.Workers, or the adaptive derivation
// (NumCPU spread across channels) when it was left zero.
func (p *Peer) Workers() int { return p.cfg.Committer.Workers }

// FinalizeWorkers returns the resolved parallelism of the serialized
// finalize stage: the configured CommitterConfig.FinalizeWorkers, or the
// resolved Workers when it was left zero. 1 means the legacy serial
// finalize; above 1 the committer dependency-schedules each block
// (DESIGN.md §9).
func (p *Peer) FinalizeWorkers() int { return p.cfg.Committer.FinalizeWorkers }

// DB exposes the default channel's world state (read-side: examples,
// experiments).
func (p *Peer) DB() *statedb.DB { return p.channels[p.channelIDs[0]].DB() }

// DBOn exposes one channel's world state.
func (p *Peer) DBOn(channelID string) (*statedb.DB, error) {
	rt, err := p.runtime(channelID)
	if err != nil {
		return nil, err
	}
	return rt.DB(), nil
}

// Height returns the number of the last block whose writes reached the
// default channel's world state — with the disk backend, the last durably
// committed block, which survives restarts. Deliver loops can use it to
// resume at Height()+1; CommitBlock itself fast-forwards any block at or
// below it.
func (p *Peer) Height() uint64 { return p.channels[p.channelIDs[0]].Height() }

// HeightOn returns one channel's committed state height.
func (p *Peer) HeightOn(channelID string) (uint64, error) {
	rt, err := p.runtime(channelID)
	if err != nil {
		return 0, err
	}
	return rt.Height(), nil
}

// Close releases every channel's state backend (a no-op for in-memory
// backends). With the disk backend it flushes each channel's log and
// surfaces the first deferred write error; the peer must not commit
// afterwards.
func (p *Peer) Close() error {
	if err := p.closeRuntimes(); err != nil {
		return fmt.Errorf("peer %s: %w", p.cfg.Name, err)
	}
	return nil
}

// Chain exposes the default channel's blockchain.
func (p *Peer) Chain() *ledger.Chain { return p.channels[p.channelIDs[0]].Chain() }

// ChainOn exposes one channel's blockchain.
func (p *Peer) ChainOn(channelID string) (*ledger.Chain, error) {
	rt, err := p.runtime(channelID)
	if err != nil {
		return nil, err
	}
	return rt.Chain(), nil
}

// Genesis returns the default channel's genesis block. It panics on a peer
// restored from a durable state checkpoint without a block store (block
// persistence off), whose chain no longer holds the genesis body — use
// Chain().LastRef for the resume point instead. With block persistence on
// (the disk-backend default) the genesis stays retrievable across
// restarts.
func (p *Peer) Genesis() *ledger.Block {
	g, err := p.Chain().Get(0)
	if err != nil {
		panic("peer: chain without genesis: " + err.Error())
	}
	return g
}

// InstallChaincode installs a chaincode with its endorsement policy on
// EVERY channel the peer joined — the install-everywhere convenience the
// network assembly uses. Installation itself is per channel (each channel
// runtime keeps its own registry, as Fabric deploys chaincode to channels);
// use InstallChaincodeOn to install on a single channel, leaving invokes on
// the others rejected.
func (p *Peer) InstallChaincode(name string, cc chaincode.Chaincode, policy *endorse.Policy) {
	for _, id := range p.channelIDs {
		p.channels[id].InstallChaincode(name, cc, policy)
	}
}

// InstallChaincodeOn installs a chaincode on one channel only. Proposals
// and committed transactions naming this chaincode on any other channel
// fail (ErrUnknownChaincode at endorsement, CodeEndorsementFailure at
// commit) — a transaction endorsed against one channel's chaincode cannot
// cross into another.
func (p *Peer) InstallChaincodeOn(channelID, name string, cc chaincode.Chaincode, policy *endorse.Policy) error {
	rt, err := p.runtime(channelID)
	if err != nil {
		return err
	}
	rt.InstallChaincode(name, cc, policy)
	return nil
}

// lookupChaincode returns the chaincode installed on one channel.
func (p *Peer) lookupChaincode(rt *channel.Runtime, name string) (channel.InstalledChaincode, error) {
	entry, ok := rt.Chaincode(name)
	if !ok {
		return channel.InstalledChaincode{}, fmt.Errorf("%w: %q on peer %s channel %s", ErrUnknownChaincode, name, p.cfg.Name, rt.ID())
	}
	return entry, nil
}

// Endorse simulates the proposal against the committed state of the
// proposal's channel and returns the signed read/write set (execution +
// endorsement phase). The world state is not modified (paper: "peers
// simulate the transaction proposal").
func (p *Peer) Endorse(prop Proposal) (ProposalResponse, error) {
	//lint:ignore determinism endorse timing only; durations feed metrics, never committed state
	start := time.Now()
	rt, err := p.runtime(prop.ChannelID)
	if err != nil {
		return ProposalResponse{}, err
	}
	// Normalize an empty (default-channel) proposal to the resolved
	// channel: the endorsement payload signs the channel ID, and the
	// committer rejects transactions whose ChannelID does not name the
	// channel they are delivered on — so the assembled transaction must
	// carry the resolved ID, never "".
	prop.ChannelID = rt.ID()
	creator, err := cryptoid.UnmarshalIdentity(prop.Creator)
	if err != nil {
		return ProposalResponse{}, fmt.Errorf("%w: %v", ErrBadCreator, err)
	}
	if err := p.msp.VerifyIdentity(creator); err != nil {
		return ProposalResponse{}, fmt.Errorf("%w: %v", ErrBadCreator, err)
	}
	entry, err := p.lookupChaincode(rt, prop.Chaincode)
	if err != nil {
		return ProposalResponse{}, err
	}
	stub := chaincode.NewSimStub(prop.TxID, prop.Args, rt.DB())
	if err := entry.Chaincode.Invoke(stub); err != nil {
		return ProposalResponse{}, fmt.Errorf("%w: %v", ErrChaincodeFailed, err)
	}
	rw := stub.Result()
	if !p.cfg.EnableCRDT {
		// A stock Fabric peer has no notion of CRDT writes: the flags are
		// dropped and the writes validate/commit as ordinary ones.
		for i := range rw.Writes {
			rw.Writes[i].IsCRDT = false
			rw.Writes[i].CRDTType = ""
		}
	}
	payload, err := endorsementPayload(prop, rw)
	if err != nil {
		return ProposalResponse{}, err
	}
	endorser, err := p.signer.Identity.Marshal()
	if err != nil {
		return ProposalResponse{}, err
	}
	obs.Trace(prop.TraceID, "peer.endorse", start,
		"peer", p.cfg.Name, "txID", prop.TxID, "channel", prop.ChannelID)
	return ProposalResponse{
		Endorser:  endorser,
		ChannelID: prop.ChannelID,
		RWSet:     rw,
		Signature: p.signer.Sign(payload),
	}, nil
}

// endorsementPayload derives the signed payload from a proposal + rwset,
// matching Transaction.EndorsementPayload for the assembled transaction.
func endorsementPayload(prop Proposal, rw rwset.ReadWriteSet) ([]byte, error) {
	tx := ledger.Transaction{
		ID:        prop.TxID,
		ChannelID: prop.ChannelID,
		Chaincode: prop.Chaincode,
		RWSet:     rw,
	}
	return tx.EndorsementPayload()
}

// eventSub is one listener's commit-event feed: an unbounded handoff queue
// drained into the listener's channel by a dedicated forwarder goroutine
// (the same shape as the orderer's deliver subscriptions). The committer's
// push only appends under the subscription's own lock — it never blocks on
// the listener — so a slow (or absent) consumer can never stall the commit
// path; its backlog just accumulates in the queue.
type eventSub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []CommitEvent
	closed bool
	out    chan CommitEvent
}

func newEventSub() *eventSub {
	s := &eventSub{out: make(chan CommitEvent, 64)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push enqueues one event and returns the queue depth; never blocks.
func (s *eventSub) push(ev CommitEvent) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	s.queue = append(s.queue, ev)
	s.cond.Signal()
	return len(s.queue)
}

// close stops the feed; the forwarder drains what is queued, then closes
// the listener's channel.
func (s *eventSub) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Signal()
}

// forward drains the queue into the out channel until closed and empty.
func (s *eventSub) forward() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		batch := s.queue
		s.queue = nil
		closed := s.closed
		s.mu.Unlock()
		for _, ev := range batch {
			s.out <- ev
		}
		if closed {
			close(s.out)
			return
		}
	}
}

// Events returns a channel receiving one CommitEvent per transaction in
// every block this peer commits — on any of its channels — from the time
// of the call. Listeners interested in a single channel filter on
// CommitEvent.ChannelID. Delivery is off the commit path: events are
// handed to a per-listener forwarder through an unbounded queue, so a
// listener that stops reading delays only itself, never a commit
// (DESIGN.md §9).
func (p *Peer) Events() <-chan CommitEvent {
	p.eventMu.Lock()
	defer p.eventMu.Unlock()
	s := newEventSub()
	p.listeners = append(p.listeners, s)
	go s.forward()
	return s.out
}

// CloseEvents stops all event feeds; call once no more blocks will be
// committed. Each listener's channel closes after its queued events have
// been delivered.
func (p *Peer) CloseEvents() {
	p.eventMu.Lock()
	defer p.eventMu.Unlock()
	for _, s := range p.listeners {
		s.close()
	}
	p.listeners = nil
}

func (p *Peer) emit(ev CommitEvent) {
	p.eventMu.RLock()
	defer p.eventMu.RUnlock()
	for _, s := range p.listeners {
		obs.WarnQueueDepth("peer_events", p.cfg.Name, s.push(ev))
	}
}

// validateEndorsements checks the signatures and endorsement policy of one
// transaction against one channel's chaincode registry, returning
// CodeNotValidated when it passes (the decision then falls to the merge
// engine or MVCC validation). A chaincode not installed on the committing
// channel — even if installed on another channel of this peer — is an
// endorsement failure: invokes do not cross channels.
func (p *Peer) validateEndorsements(rt *channel.Runtime, tx *ledger.Transaction) ledger.ValidationCode {
	entry, err := p.lookupChaincode(rt, tx.Chaincode)
	if err != nil {
		return ledger.CodeEndorsementFailure
	}
	payload, err := tx.EndorsementPayload()
	if err != nil {
		return ledger.CodeBadSignature
	}
	var orgs []string
	for _, end := range tx.Endorsements {
		id, err := cryptoid.UnmarshalIdentity(end.Endorser)
		if err != nil {
			return ledger.CodeBadSignature
		}
		if err := p.msp.VerifySignature(id, payload, end.Signature); err != nil {
			return ledger.CodeBadSignature
		}
		orgs = append(orgs, id.MSPID)
	}
	if !entry.Policy.Satisfied(orgs) {
		return ledger.CodeEndorsementFailure
	}
	return ledger.CodeNotValidated
}

// SyncFrom catches this peer up to a source peer by fetching and
// committing, channel by channel, every block this peer is missing — the
// state-transfer path a freshly joined or restarted peer runs before
// serving endorsements. The source must have every channel this peer
// joined; a restarted disk-backed source serves its pre-restart history
// from its durable block store (its checkpointed chains answer Get for
// the whole range [0, height)), so syncing from block 0 works across the
// source's restarts. Blocks are re-validated from scratch (endorsements,
// merge, MVCC), so a lying source cannot inject invalid state; only the
// hash-chained block contents are trusted as delivered.
func (p *Peer) SyncFrom(source *Peer) error {
	for _, id := range p.channelIDs {
		rt := p.channels[id]
		srcChain, err := source.ChainOn(id)
		if err != nil {
			return fmt.Errorf("peer %s: syncing channel %s from %s: %w", p.cfg.Name, id, source.Name(), err)
		}
		for {
			next := rt.Chain().Height()
			if next >= srcChain.Height() {
				break
			}
			block, err := srcChain.Get(next)
			if err != nil {
				return fmt.Errorf("peer %s: fetching block %d of channel %s from %s: %w", p.cfg.Name, next, id, source.Name(), err)
			}
			if _, err := p.CommitBlockOn(id, block); err != nil {
				return fmt.Errorf("peer %s: syncing block %d of channel %s: %w", p.cfg.Name, next, id, err)
			}
		}
	}
	return nil
}

// RebuildState replays each channel's blockchain into a fresh world state
// — the recovery path a peer runs after a crash (paper §2.1: "executing
// all valid transactions included in the blockchain starting from the
// genesis block results in the current state"). The committed blocks
// already carry their validation codes, so replay applies exactly the
// recorded outcomes and reproduces the live state byte for byte
// (channel.Runtime.ReplayBlock). Channels rebuild independently.
//
// With block persistence on (the disk-backend default), the durable block
// store covers the full history even across restarts, so a restarted peer
// rebuilds from block 0. A checkpointed channel WITHOUT a block store
// (CommitterConfig.PersistBlocks off) cannot rebuild — the pre-checkpoint
// bodies are gone; its recovery path is the inverse: the durable state IS
// the replay result, and CommitBlockOn fast-forwards re-delivered history.
func (p *Peer) RebuildState() error {
	for _, id := range p.channelIDs {
		if err := p.rebuildChannel(p.channels[id]); err != nil {
			return err
		}
	}
	return nil
}

func (p *Peer) rebuildChannel(rt *channel.Runtime) error {
	rt.Lock()
	defer rt.Unlock()
	if bs := rt.Blocks(); bs != nil {
		// The persisted chain covers [0, height): replay it from scratch.
		// Each iterated block is a fresh private decode, so the owned
		// (copy-free) replay applies.
		rt.DB().Reset()
		rt.ResetCommitted()
		if err := bs.Iterate(1, rt.ReplayOwnedBlock); err != nil {
			return fmt.Errorf("peer %s: rebuilding channel %s from its block store: %w", p.cfg.Name, rt.ID(), err)
		}
		return nil
	}
	if num, _, ok := rt.Chain().Checkpoint(); ok {
		return fmt.Errorf("peer %s: cannot rebuild channel %s from a chain checkpointed at block %d: pre-checkpoint blocks are not stored locally (block persistence is off); enable CommitterConfig.PersistBlocks or SyncFrom a peer holding the history", p.cfg.Name, rt.ID(), num)
	}
	rt.DB().Reset()
	rt.ResetCommitted()
	for _, block := range rt.Chain().Blocks() {
		if err := rt.ReplayBlock(block); err != nil {
			return fmt.Errorf("peer %s: replaying block %d of channel %s: %w", p.cfg.Name, block.Header.Number, rt.ID(), err)
		}
	}
	return nil
}
