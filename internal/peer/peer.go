// Package peer implements a Fabric peer: the endorser that simulates
// chaincode against the local world state during the execution phase, and
// the committer that validates delivered blocks and applies them to the
// ledger (paper §2.1). With CRDT support enabled the committer routes
// CRDT-flagged transactions through the FabricCRDT merge engine instead of
// MVCC validation (paper §5.1, Figure 2).
package peer

import (
	"errors"
	"fmt"
	"sync"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/core"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/metrics"
	"fabriccrdt/internal/mvcc"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// Proposal is a client's request to simulate a chaincode invocation.
type Proposal struct {
	TxID      string
	ChannelID string
	Chaincode string
	Args      [][]byte
	// Creator is the serialized identity of the submitting client.
	Creator []byte
}

// ProposalResponse is one endorser's signed simulation result.
type ProposalResponse struct {
	// Endorser is the serialized identity of the endorsing peer.
	Endorser []byte
	// RWSet is the simulated read/write set.
	RWSet rwset.ReadWriteSet
	// Signature signs the would-be transaction's endorsement payload.
	Signature []byte
}

// CommitEvent notifies a listener of one transaction's commit outcome.
type CommitEvent struct {
	TxID     string
	BlockNum uint64
	Code     ledger.ValidationCode
}

// CommitResult summarizes one committed block.
type CommitResult struct {
	BlockNum   uint64
	Codes      []ledger.ValidationCode
	MergedKeys []string
	// CommittedTx counts transactions whose writes reached the state.
	CommittedTx int
}

// Config configures a peer.
type Config struct {
	Name      string
	MSPID     string
	ChannelID string
	// EnableCRDT turns the peer into a FabricCRDT peer; disabled it
	// behaves exactly like stock Fabric (CRDT-flagged writes validate and
	// commit as ordinary writes).
	EnableCRDT bool
	// EngineOptions tunes the merge engine (ablation switches). A zero
	// EngineOptions.Workers inherits Committer.Workers.
	EngineOptions core.Options
	// Committer tunes the staged commit pipeline (see pipeline.go).
	Committer CommitterConfig
}

// Peer errors.
var (
	ErrUnknownChaincode = errors.New("peer: chaincode not installed")
	ErrChaincodeFailed  = errors.New("peer: chaincode invocation failed")
	ErrBadCreator       = errors.New("peer: creator identity rejected")
)

// installedCC pairs a chaincode with its endorsement policy.
type installedCC struct {
	cc     chaincode.Chaincode
	policy *endorse.Policy
}

// Peer is one peer node. Endorsement (Endorse) may run concurrently with
// commits; commits are serialized by the committer mutex, mirroring
// Fabric's single commit pipeline per channel.
type Peer struct {
	cfg    Config
	signer *cryptoid.Signer
	msp    *cryptoid.MSP

	db        *statedb.DB
	chain     *ledger.Chain
	validator *mvcc.Validator
	engine    *core.Engine

	ccMu       sync.RWMutex
	chaincodes map[string]installedCC

	commitMu     sync.Mutex
	committedIDs map[string]struct{}

	timings *metrics.StageTimings

	eventMu   sync.RWMutex
	listeners []chan CommitEvent
}

// New creates a peer with its own world state and chain, signing with the
// given identity and trusting the given MSP roots.
func New(cfg Config, signer *cryptoid.Signer, msp *cryptoid.MSP) *Peer {
	var db *statedb.DB
	if cfg.Committer.StateShards > 1 {
		db = statedb.NewSharded(cfg.Committer.StateShards)
	} else {
		db = statedb.New()
	}
	if cfg.EngineOptions.Workers == 0 {
		cfg.EngineOptions.Workers = cfg.Committer.Workers
	}
	return &Peer{
		cfg:          cfg,
		signer:       signer,
		msp:          msp,
		db:           db,
		chain:        ledger.NewChain(cfg.ChannelID),
		validator:    mvcc.New(db),
		engine:       core.NewEngine(db, cfg.EngineOptions),
		chaincodes:   make(map[string]installedCC),
		committedIDs: make(map[string]struct{}),
		timings:      metrics.NewStageTimings(),
	}
}

// Name returns the peer's name.
func (p *Peer) Name() string { return p.cfg.Name }

// MSPID returns the peer's organization.
func (p *Peer) MSPID() string { return p.cfg.MSPID }

// CRDTEnabled reports whether the FabricCRDT merge path is active.
func (p *Peer) CRDTEnabled() bool { return p.cfg.EnableCRDT }

// DB exposes the peer's world state (read-side: examples, experiments).
func (p *Peer) DB() *statedb.DB { return p.db }

// Chain exposes the peer's blockchain.
func (p *Peer) Chain() *ledger.Chain { return p.chain }

// Genesis returns the channel genesis block the peer chains from.
func (p *Peer) Genesis() *ledger.Block {
	g, err := p.chain.Get(0)
	if err != nil {
		panic("peer: chain without genesis: " + err.Error()) // unreachable
	}
	return g
}

// InstallChaincode installs a chaincode with its endorsement policy.
func (p *Peer) InstallChaincode(name string, cc chaincode.Chaincode, policy *endorse.Policy) {
	p.ccMu.Lock()
	defer p.ccMu.Unlock()
	p.chaincodes[name] = installedCC{cc: cc, policy: policy}
}

// lookupChaincode returns the installed chaincode entry.
func (p *Peer) lookupChaincode(name string) (installedCC, error) {
	p.ccMu.RLock()
	defer p.ccMu.RUnlock()
	entry, ok := p.chaincodes[name]
	if !ok {
		return installedCC{}, fmt.Errorf("%w: %q on peer %s", ErrUnknownChaincode, name, p.cfg.Name)
	}
	return entry, nil
}

// Endorse simulates the proposal against the local committed state and
// returns the signed read/write set (execution + endorsement phase). The
// world state is not modified (paper: "peers simulate the transaction
// proposal").
func (p *Peer) Endorse(prop Proposal) (ProposalResponse, error) {
	creator, err := cryptoid.UnmarshalIdentity(prop.Creator)
	if err != nil {
		return ProposalResponse{}, fmt.Errorf("%w: %v", ErrBadCreator, err)
	}
	if err := p.msp.VerifyIdentity(creator); err != nil {
		return ProposalResponse{}, fmt.Errorf("%w: %v", ErrBadCreator, err)
	}
	entry, err := p.lookupChaincode(prop.Chaincode)
	if err != nil {
		return ProposalResponse{}, err
	}
	stub := chaincode.NewSimStub(prop.TxID, prop.Args, p.db)
	if err := entry.cc.Invoke(stub); err != nil {
		return ProposalResponse{}, fmt.Errorf("%w: %v", ErrChaincodeFailed, err)
	}
	rw := stub.Result()
	if !p.cfg.EnableCRDT {
		// A stock Fabric peer has no notion of CRDT writes: the flags are
		// dropped and the writes validate/commit as ordinary ones.
		for i := range rw.Writes {
			rw.Writes[i].IsCRDT = false
			rw.Writes[i].CRDTType = ""
		}
	}
	payload, err := endorsementPayload(prop, rw)
	if err != nil {
		return ProposalResponse{}, err
	}
	endorser, err := p.signer.Identity.Marshal()
	if err != nil {
		return ProposalResponse{}, err
	}
	return ProposalResponse{
		Endorser:  endorser,
		RWSet:     rw,
		Signature: p.signer.Sign(payload),
	}, nil
}

// endorsementPayload derives the signed payload from a proposal + rwset,
// matching Transaction.EndorsementPayload for the assembled transaction.
func endorsementPayload(prop Proposal, rw rwset.ReadWriteSet) ([]byte, error) {
	tx := ledger.Transaction{
		ID:        prop.TxID,
		ChannelID: prop.ChannelID,
		Chaincode: prop.Chaincode,
		RWSet:     rw,
	}
	return tx.EndorsementPayload()
}

// Events returns a channel receiving one CommitEvent per transaction in
// every block this peer commits from the time of the call.
func (p *Peer) Events() <-chan CommitEvent {
	p.eventMu.Lock()
	defer p.eventMu.Unlock()
	ch := make(chan CommitEvent, 1024)
	p.listeners = append(p.listeners, ch)
	return ch
}

// CloseEvents closes all event listener channels; call once no more blocks
// will be committed.
func (p *Peer) CloseEvents() {
	p.eventMu.Lock()
	defer p.eventMu.Unlock()
	for _, ch := range p.listeners {
		close(ch)
	}
	p.listeners = nil
}

func (p *Peer) emit(ev CommitEvent) {
	p.eventMu.RLock()
	defer p.eventMu.RUnlock()
	for _, ch := range p.listeners {
		ch <- ev
	}
}

// validateEndorsements checks the signatures and endorsement policy of one
// transaction, returning CodeNotValidated when it passes (the decision then
// falls to the merge engine or MVCC validation).
func (p *Peer) validateEndorsements(tx *ledger.Transaction) ledger.ValidationCode {
	entry, err := p.lookupChaincode(tx.Chaincode)
	if err != nil {
		return ledger.CodeEndorsementFailure
	}
	payload, err := tx.EndorsementPayload()
	if err != nil {
		return ledger.CodeBadSignature
	}
	var orgs []string
	for _, end := range tx.Endorsements {
		id, err := cryptoid.UnmarshalIdentity(end.Endorser)
		if err != nil {
			return ledger.CodeBadSignature
		}
		if err := p.msp.VerifySignature(id, payload, end.Signature); err != nil {
			return ledger.CodeBadSignature
		}
		orgs = append(orgs, id.MSPID)
	}
	if !entry.policy.Satisfied(orgs) {
		return ledger.CodeEndorsementFailure
	}
	return ledger.CodeNotValidated
}

// SyncFrom catches this peer up to a source peer by fetching and committing
// every block this peer is missing — the state-transfer path a freshly
// joined or restarted peer runs before serving endorsements. Blocks are
// re-validated from scratch (endorsements, merge, MVCC), so a lying source
// cannot inject invalid state; only the hash-chained block contents are
// trusted as delivered.
func (p *Peer) SyncFrom(source *Peer) error {
	for {
		next := p.chain.Height()
		if next >= source.Chain().Height() {
			return nil
		}
		block, err := source.Chain().Get(next)
		if err != nil {
			return fmt.Errorf("peer %s: fetching block %d from %s: %w", p.cfg.Name, next, source.Name(), err)
		}
		if _, err := p.CommitBlock(block); err != nil {
			return fmt.Errorf("peer %s: syncing block %d: %w", p.cfg.Name, next, err)
		}
	}
}

// RebuildState replays the blockchain into a fresh world state — the
// recovery path a peer runs after a crash (paper §2.1: "executing all valid
// transactions included in the blockchain starting from the genesis block
// results in the current state"). The committed blocks already carry their
// validation codes, so replay applies exactly the recorded outcomes.
func (p *Peer) RebuildState() error {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	p.db.Reset()
	p.committedIDs = make(map[string]struct{})
	for _, block := range p.chain.Blocks() {
		if block.Header.Number == 0 {
			continue
		}
		// Re-run the merge so CRDT write rewrites are reconstructed; the
		// recorded codes say which transactions were merged vs failed.
		raw, err := block.Marshal()
		if err != nil {
			return err
		}
		view, err := ledger.UnmarshalBlock(raw)
		if err != nil {
			return err
		}
		codes := make([]ledger.ValidationCode, len(view.Transactions))
		copy(codes, block.Metadata.ValidationCodes)
		var mergeRes core.Result
		if p.cfg.EnableCRDT {
			// Reset merged markers so the engine re-merges them.
			for i := range codes {
				if codes[i] == ledger.CodeCRDTMerged {
					codes[i] = ledger.CodeNotValidated
				}
			}
			mergeRes, err = p.engine.MergeBlock(view, codes)
			if err != nil {
				return fmt.Errorf("peer %s: replaying block %d: %w", p.cfg.Name, view.Header.Number, err)
			}
		}
		batch := mvcc.BuildCommitBatch(view.Header.Number, view.Transactions, block.Metadata.ValidationCodes)
		core.StageDocStates(batch, mergeRes)
		p.db.Apply(batch, rwset.Version{BlockNum: view.Header.Number})
		for _, tx := range view.Transactions {
			p.committedIDs[tx.ID] = struct{}{}
		}
	}
	return nil
}
