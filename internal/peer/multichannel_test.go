package peer

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fabriccrdt/internal/channel"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/ledger"
)

// newTwoChannelEnv wires one peer joined to ch1 and ch2.
func newTwoChannelEnv(t *testing.T, enableCRDT bool, committer CommitterConfig) *testEnv {
	t.Helper()
	return newEnvChannels(t, enableCRDT, committer, "ch1", "ch2")
}

func TestNewRejectsBadChannelList(t *testing.T) {
	ca, err := cryptoid.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := ca.Issue("Org1.peer0")
	if err != nil {
		t.Fatal(err)
	}
	for name, channels := range map[string][]string{
		"duplicate": {"ch1", "ch1"},
		"empty":     {"ch1", ""},
		"unsafe":    {"ch/1"},
	} {
		if _, err := New(Config{
			Name: "Org1.peer0", MSPID: "Org1", Channels: channels,
		}, signer, cryptoid.NewMSP()); err == nil {
			t.Errorf("%s: channel list %q accepted", name, channels)
		}
	}
}

// TestChannelQualifiedAccessors covers the channel-routing surface:
// default-channel conveniences bind to the first channel, qualified
// variants resolve every joined channel, unknown channels error.
func TestChannelQualifiedAccessors(t *testing.T) {
	env := newTwoChannelEnv(t, true, CommitterConfig{})
	p := env.peer
	if got := p.DefaultChannel(); got != "ch1" {
		t.Fatalf("DefaultChannel = %q, want ch1", got)
	}
	if got := p.Channels(); !reflect.DeepEqual(got, []string{"ch1", "ch2"}) {
		t.Fatalf("Channels = %v", got)
	}
	if db1, err := p.DBOn("ch1"); err != nil || db1 != p.DB() {
		t.Fatalf("DBOn(ch1) != DB(): %v", err)
	}
	db2, err := p.DBOn("ch2")
	if err != nil {
		t.Fatal(err)
	}
	if db2 == p.DB() {
		t.Fatal("channels share a world state")
	}
	c2, err := p.ChainOn("ch2")
	if err != nil {
		t.Fatal(err)
	}
	if c2 == p.Chain() {
		t.Fatal("channels share a chain")
	}
	if _, err := p.DBOn("nope"); err == nil {
		t.Fatal("unknown channel resolved")
	}
	if _, err := p.HeightOn("nope"); err == nil {
		t.Fatal("unknown channel height resolved")
	}
	if _, err := p.CommitBlockOn("nope", makeBlock(t, p, nil)); err == nil {
		t.Fatal("commit on unknown channel accepted")
	}
	if _, err := p.Endorse(Proposal{TxID: "t", ChannelID: "nope", Chaincode: "iot"}); err == nil {
		t.Fatal("endorsement on unknown channel accepted")
	}
}

// TestSameTxIDAcrossChannelsNotDeduplicated is the paper-faithful channel
// semantics: channels are independent ledgers, so duplicate screening is
// channel-local — the same transaction ID on two channels is two distinct
// transactions and both commit.
func TestSameTxIDAcrossChannelsNotDeduplicated(t *testing.T) {
	env := newTwoChannelEnv(t, true, CommitterConfig{})
	env.install(t, "iot", iotChaincode())

	tx1 := env.endorseTxOn(t, "ch1", "tx-shared", "iot", "record", "dev1", "11")
	res1, err := env.peer.CommitBlockOn("ch1", makeBlockOn(t, env.peer, "ch1", []*ledger.Transaction{tx1}))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Codes[0] != ledger.CodeCRDTMerged {
		t.Fatalf("ch1 code = %v", res1.Codes[0])
	}

	tx2 := env.endorseTxOn(t, "ch2", "tx-shared", "iot", "record", "dev1", "22")
	res2, err := env.peer.CommitBlockOn("ch2", makeBlockOn(t, env.peer, "ch2", []*ledger.Transaction{tx2}))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Codes[0] != ledger.CodeCRDTMerged {
		t.Fatalf("same txID on ch2 = %v, want CRDT_MERGED (dedup must be channel-local)", res2.Codes[0])
	}

	// And a genuine duplicate on the SAME channel still fails.
	dup := env.endorseTxOn(t, "ch1", "tx-shared", "iot", "record", "dev1", "33")
	res3, err := env.peer.CommitBlockOn("ch1", makeBlockOn(t, env.peer, "ch1", []*ledger.Transaction{dup}))
	if err != nil {
		t.Fatal(err)
	}
	if res3.Codes[0] != ledger.CodeDuplicate {
		t.Fatalf("same-channel duplicate code = %v, want DUPLICATE_TXID", res3.Codes[0])
	}
}

// TestCrossChannelReplayRejected: a validly endorsed envelope for one
// channel injected into another channel's block stream must fail with
// WRONG_CHANNEL — its endorsements cover its own ChannelID, so every
// later check would otherwise pass against the wrong channel's state.
func TestCrossChannelReplayRejected(t *testing.T) {
	env := newTwoChannelEnv(t, true, CommitterConfig{})
	env.install(t, "iot", iotChaincode())
	tx := env.endorseTxOn(t, "ch1", "replay", "iot", "record", "dev1", "11")

	// Replay onto ch2: rejected, and nothing reaches ch2's state.
	res, err := env.peer.CommitBlockOn("ch2", makeBlockOn(t, env.peer, "ch2", []*ledger.Transaction{tx}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeWrongChannel {
		t.Fatalf("replayed tx code = %v, want WRONG_CHANNEL", res.Codes[0])
	}
	db2, err := env.peer.DBOn("ch2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db2.Get("dev1"); ok {
		t.Fatal("cross-channel replay reached the state")
	}

	// The genuine channel still accepts it (the replay must not have
	// poisoned duplicate screening anywhere).
	res, err = env.peer.CommitBlockOn("ch1", makeBlockOn(t, env.peer, "ch1", []*ledger.Transaction{tx}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeCRDTMerged {
		t.Fatalf("genuine-channel commit code = %v", res.Codes[0])
	}

	// A replay that is ALSO a dedup hit (same ID already committed on the
	// delivering channel) still reports the channel mismatch — the more
	// fundamental rejection is not relabeled as a duplicate.
	tx2 := env.endorseTxOn(t, "ch2", "replay", "iot", "record", "dev1", "33")
	res, err = env.peer.CommitBlockOn("ch1", makeBlockOn(t, env.peer, "ch1", []*ledger.Transaction{tx2}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeWrongChannel {
		t.Fatalf("replayed duplicate code = %v, want WRONG_CHANNEL", res.Codes[0])
	}
}

// TestEndorseNormalizesEmptyChannel: a proposal with an empty ChannelID
// endorses against the default channel AND signs the resolved channel ID,
// so a transaction assembled with that ID commits cleanly — the empty
// string must never leak into a signed payload the committer would reject.
func TestEndorseNormalizesEmptyChannel(t *testing.T) {
	env := newTwoChannelEnv(t, true, CommitterConfig{})
	env.install(t, "iot", iotChaincode())
	creator, err := env.client.Identity.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	args := [][]byte{[]byte("record"), []byte("dev1"), []byte("21")}
	resp, err := env.peer.Endorse(Proposal{
		TxID: "default-ch", ChannelID: "", Chaincode: "iot", Args: args, Creator: creator,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The response echoes the resolved channel — what the caller must put
	// into the envelope for the signature to verify and the commit to land.
	if resp.ChannelID != env.peer.DefaultChannel() {
		t.Fatalf("resolved channel = %q, want %q", resp.ChannelID, env.peer.DefaultChannel())
	}
	tx := &ledger.Transaction{
		ID: "default-ch", ChannelID: resp.ChannelID, Chaincode: "iot",
		Creator: creator, Args: args, RWSet: resp.RWSet,
		Endorsements: []ledger.Endorsement{{Endorser: resp.Endorser, Signature: resp.Signature}},
	}
	res, err := env.peer.CommitBlock(makeBlock(t, env.peer, []*ledger.Transaction{tx}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeCRDTMerged {
		t.Fatalf("default-channel endorsement committed with %v, want CRDT_MERGED", res.Codes[0])
	}
}

// TestMVCCConflictsIsolatedPerChannel: a version conflict on one channel
// must never invalidate a transaction on another — channels have
// independent MVCC version spaces even for identical key names.
func TestMVCCConflictsIsolatedPerChannel(t *testing.T) {
	env := newTwoChannelEnv(t, false, CommitterConfig{}) // stock Fabric: MVCC path
	env.install(t, "iot", iotChaincode())

	// ch1: two conflicting writes of dev1 in one block — the second fails.
	txsA := []*ledger.Transaction{
		env.endorseTxOn(t, "ch1", "a1", "iot", "record", "dev1", "10"),
		env.endorseTxOn(t, "ch1", "a2", "iot", "record", "dev1", "20"),
	}
	resA, err := env.peer.CommitBlockOn("ch1", makeBlockOn(t, env.peer, "ch1", txsA))
	if err != nil {
		t.Fatal(err)
	}
	want := []ledger.ValidationCode{ledger.CodeValid, ledger.CodeMVCCConflict}
	if !reflect.DeepEqual(resA.Codes, want) {
		t.Fatalf("ch1 codes = %v, want %v", resA.Codes, want)
	}

	// ch2: a single write of the same key name, endorsed BEFORE ch1's
	// commit would have bumped any shared version — it must commit VALID.
	txB := env.endorseTxOn(t, "ch2", "b1", "iot", "record", "dev1", "30")
	resB, err := env.peer.CommitBlockOn("ch2", makeBlockOn(t, env.peer, "ch2", []*ledger.Transaction{txB}))
	if err != nil {
		t.Fatal(err)
	}
	if resB.Codes[0] != ledger.CodeValid {
		t.Fatalf("ch2 code = %v, want VALID (ch1's conflict leaked)", resB.Codes[0])
	}
}

// TestTwoChannelRestartResumesOwnHeights is the multi-channel crash-restart
// acceptance test: a disk-backed peer with channels at different heights
// must resume each channel at its own height with byte-identical state.
func TestTwoChannelRestartResumesOwnHeights(t *testing.T) {
	dir := t.TempDir()
	committer := CommitterConfig{Backend: BackendDisk, DataDir: dir}

	env := newTwoChannelEnv(t, true, committer)
	env.install(t, "iot", iotChaincode())
	// ch1 commits 3 blocks, ch2 only 1 — heights diverge.
	for b := 0; b < 3; b++ {
		tx := env.endorseTxOn(t, "ch1", fmt.Sprintf("c1-%d", b), "iot", "record", "dev1", fmt.Sprintf("%d", b))
		if _, err := env.peer.CommitBlockOn("ch1", makeBlockOn(t, env.peer, "ch1", []*ledger.Transaction{tx})); err != nil {
			t.Fatal(err)
		}
	}
	tx := env.endorseTxOn(t, "ch2", "c2-0", "iot", "record", "dev1", "99")
	if _, err := env.peer.CommitBlockOn("ch2", makeBlockOn(t, env.peer, "ch2", []*ledger.Transaction{tx})); err != nil {
		t.Fatal(err)
	}
	before := map[string]map[string]string{
		"ch1": snapshotStateOn(t, env.peer, "ch1", "crdt/dev1"),
		"ch2": snapshotStateOn(t, env.peer, "ch2", "crdt/dev1"),
	}
	if err := env.peer.Close(); err != nil {
		t.Fatal(err)
	}

	restarted := newTwoChannelEnv(t, true, committer)
	restarted.install(t, "iot", iotChaincode())
	p := restarted.peer
	defer p.Close()
	for id, wantHeight := range map[string]uint64{"ch1": 3, "ch2": 1} {
		got, err := p.HeightOn(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != wantHeight {
			t.Fatalf("channel %s resumed at height %d, want %d", id, got, wantHeight)
		}
		if after := snapshotStateOn(t, p, id, "crdt/dev1"); !reflect.DeepEqual(before[id], after) {
			t.Fatalf("channel %s state diverged across restart:\nbefore %v\nafter  %v", id, before[id], after)
		}
	}

	// Both channels keep committing from their own resume points.
	tx1 := restarted.endorseTxOn(t, "ch1", "c1-new", "iot", "record", "dev1", "41")
	res1, err := p.CommitBlockOn("ch1", makeBlockOn(t, p, "ch1", []*ledger.Transaction{tx1}))
	if err != nil {
		t.Fatal(err)
	}
	if res1.BlockNum != 4 || res1.FastForwarded {
		t.Fatalf("ch1 post-restart commit: %+v, want fresh block 4", res1)
	}
	tx2 := restarted.endorseTxOn(t, "ch2", "c2-new", "iot", "record", "dev1", "42")
	res2, err := p.CommitBlockOn("ch2", makeBlockOn(t, p, "ch2", []*ledger.Transaction{tx2}))
	if err != nil {
		t.Fatal(err)
	}
	if res2.BlockNum != 2 || res2.FastForwarded {
		t.Fatalf("ch2 post-restart commit: %+v, want fresh block 2", res2)
	}
	// Per-channel duplicate screening also survived the restart.
	dup := restarted.endorseTxOn(t, "ch2", "c2-0", "iot", "record", "dev1", "43")
	resDup, err := p.CommitBlockOn("ch2", makeBlockOn(t, p, "ch2", []*ledger.Transaction{dup}))
	if err != nil {
		t.Fatal(err)
	}
	if resDup.Codes[0] != ledger.CodeDuplicate {
		t.Fatalf("pre-restart ch2 txID recommitted with %v", resDup.Codes[0])
	}
}

// snapshotStateOn is snapshotState against an explicit channel.
func snapshotStateOn(t *testing.T, p *Peer, channelID string, keys ...string) map[string]string {
	t.Helper()
	db, err := p.DBOn(channelID)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, kv := range db.GetRange("", "") {
		out["data/"+kv.Key] = fmt.Sprintf("%s@%v", kv.Value, kv.VersionedValue.Version)
	}
	for _, key := range keys {
		out["meta/"+key] = string(db.GetMeta(key))
	}
	out["meta/"+channel.MetaCheckpoint] = string(db.GetMeta(channel.MetaCheckpoint))
	return out
}

// TestChannelsCommitConcurrently drives commits on both channels from
// concurrent goroutines (run under -race in CI): per-channel serialization
// must suffice — no cross-channel lock is needed for correctness.
func TestChannelsCommitConcurrently(t *testing.T) {
	env := newTwoChannelEnv(t, true, CommitterConfig{Workers: 2})
	env.install(t, "iot", iotChaincode())
	// Endorse every transaction up front (endorsement reads committed
	// state, which is empty either way), then pre-build each channel's
	// hash chain of blocks.
	const blocks = 5
	endorsed := map[string][]*ledger.Block{}
	for _, id := range []string{"ch1", "ch2"} {
		chain, err := env.peer.ChainOn(id)
		if err != nil {
			t.Fatal(err)
		}
		num, hash := chain.LastRef()
		for b := 0; b < blocks; b++ {
			tx := env.endorseTxOn(t, id, fmt.Sprintf("%s-%d", id, b), "iot", "record", "dev1", fmt.Sprintf("%d", b))
			blk := makeBlockAt(t, num, hash, []*ledger.Transaction{tx})
			endorsed[id] = append(endorsed[id], blk)
			num, hash = blk.Header.Number, blk.HeaderHash()
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*blocks)
	for _, id := range []string{"ch1", "ch2"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for _, blk := range endorsed[id] {
				if _, err := env.peer.CommitBlockOn(id, blk); err != nil {
					errs <- err
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, id := range []string{"ch1", "ch2"} {
		h, err := env.peer.HeightOn(id)
		if err != nil {
			t.Fatal(err)
		}
		if h != blocks {
			t.Fatalf("channel %s height = %d, want %d", id, h, blocks)
		}
		chain, err := env.peer.ChainOn(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := chain.Verify(); err != nil {
			t.Fatalf("channel %s chain: %v", id, err)
		}
	}
}

// TestAdaptiveWorkerSizing: a zero Workers knob resolves to NumCPU spread
// across the peer's channels (ROADMAP adaptive-worker item, DESIGN.md §6).
func TestAdaptiveWorkerSizing(t *testing.T) {
	one := newEnv(t, true)
	if got, want := one.peer.Workers(), channel.AdaptiveWorkers(1); got != want {
		t.Fatalf("1-channel adaptive workers = %d, want %d", got, want)
	}
	two := newTwoChannelEnv(t, true, CommitterConfig{})
	if got, want := two.peer.Workers(), channel.AdaptiveWorkers(2); got != want {
		t.Fatalf("2-channel adaptive workers = %d, want %d", got, want)
	}
	explicit := newEnvWithCommitter(t, true, CommitterConfig{Workers: 3})
	if got := explicit.peer.Workers(); got != 3 {
		t.Fatalf("explicit workers = %d, want 3 (adaptive must not override)", got)
	}
}
