package peer

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fabriccrdt/internal/channel"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/orderer"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// makeBlockAt assembles a block chaining onto an explicit (number, hash)
// resume point — what the rebuilt ordering service does after a restart,
// when no block body is available to chain from.
func makeBlockAt(t *testing.T, afterNum uint64, afterHash []byte, txs []*ledger.Transaction) *ledger.Block {
	t.Helper()
	a := orderer.NewAssemblerAt(afterNum, afterHash)
	block, err := a.Assemble(orderer.Batch{Transactions: txs, Reason: orderer.CutMaxMessages})
	if err != nil {
		t.Fatal(err)
	}
	return block
}

// snapshotState captures everything observable about a peer's world state:
// the full key range and the CRDT/checkpoint metadata entries.
func snapshotState(p *Peer, keys ...string) map[string]string {
	out := make(map[string]string)
	for _, kv := range p.DB().GetRange("", "") {
		out["data/"+kv.Key] = fmt.Sprintf("%s@%v", kv.Value, kv.VersionedValue.Version)
	}
	for _, key := range keys {
		out["meta/"+key] = string(p.DB().GetMeta(key))
	}
	out["meta/"+channel.MetaCheckpoint] = string(p.DB().GetMeta(channel.MetaCheckpoint))
	return out
}

// commitReadingBlocks endorses and commits n single-device blocks, returning
// the pristine delivered blocks (as the orderer would re-deliver them).
func commitReadingBlocks(t *testing.T, env *testEnv, n int, startBlock uint64) []*ledger.Block {
	t.Helper()
	var blocks []*ledger.Block
	for b := uint64(0); b < uint64(n); b++ {
		var txs []*ledger.Transaction
		for i := 0; i < 3; i++ {
			id := fmt.Sprintf("tx-%d-%d", startBlock+b, i)
			txs = append(txs, env.endorseTx(t, id, "iot", "record", "dev1", fmt.Sprintf("%d", 10*int(startBlock+b)+i)))
		}
		block := makeBlock(t, env.peer, txs)
		if _, err := env.peer.CommitBlock(block); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, block)
	}
	return blocks
}

// TestDiskPeerCrashRestart is the crash-restart acceptance test: commit N
// blocks on a disk-backed peer, drop the peer (only its data directory
// survives), rebuild it, and require byte-identical state, the recorded
// resume height, and fast-forward (no re-validation, no state mutation) of
// re-delivered history.
func TestDiskPeerCrashRestart(t *testing.T) {
	dir := t.TempDir()
	committer := CommitterConfig{Backend: BackendDisk, DataDir: dir}

	env := newEnvWithCommitter(t, true, committer)
	env.install(t, "iot", iotChaincode())
	const n = 3
	blocks := commitReadingBlocks(t, env, n, 1)
	before := snapshotState(env.peer, "crdt/dev1")
	if err := env.peer.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// "Restart": a fresh peer over the same data directory. Same CA/MSP,
	// new process state.
	restarted := newEnvWithCommitter(t, true, committer)
	restarted.install(t, "iot", iotChaincode())
	p := restarted.peer
	defer p.Close()

	if got := p.Height(); got != n {
		t.Fatalf("resumed height = %d, want %d", got, n)
	}
	if got := p.Chain().Height(); got != n+1 {
		t.Fatalf("resumed chain height = %d, want %d (checkpointed chain)", got, n+1)
	}
	after := snapshotState(p, "crdt/dev1")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("state diverged across restart:\nbefore %v\nafter  %v", before, after)
	}

	// Re-delivered history (e.g. a deliver stream replaying from an
	// earlier position) fast-forwards: no validation, no state change.
	for _, block := range blocks {
		res, err := p.CommitBlock(block)
		if err != nil {
			t.Fatalf("re-delivering block %d: %v", block.Header.Number, err)
		}
		if !res.FastForwarded {
			t.Fatalf("block %d was re-validated instead of fast-forwarded", block.Header.Number)
		}
	}
	if got := snapshotState(p, "crdt/dev1"); !reflect.DeepEqual(before, got) {
		t.Fatalf("fast-forward mutated state:\nbefore %v\nafter  %v", before, got)
	}
	for _, s := range p.CommitTimings() {
		if s.Stage == StageEndorse || s.Stage == StageMerge || s.Stage == StageApply {
			if s.Count > 0 {
				t.Fatalf("fast-forward ran the %s stage %d times", s.Stage, s.Count)
			}
		}
	}

	// The peer keeps committing: block N+1 extends both the chain and the
	// CRDT document seeded from the persisted metadata space.
	commitReadingBlocks(t, restarted, 1, n+1)
	if got := p.Height(); got != n+1 {
		t.Fatalf("height after new commit = %d, want %d", got, n+1)
	}
	vv, ok := p.DB().Get("dev1")
	if !ok {
		t.Fatal("dev1 missing after restart commit")
	}
	if len(vv.Value) <= len(before["data/dev1"]) {
		t.Fatal("new readings did not extend the restored CRDT document")
	}
	if err := p.Chain().Verify(); err != nil {
		t.Fatalf("chain verify after restart: %v", err)
	}

	// Duplicate screening covers transactions seen since the restart.
	dup := restarted.endorseTx(t, fmt.Sprintf("tx-%d-0", n+1), "iot", "record", "dev1", "99")
	res, err := p.CommitBlock(makeBlock(t, p, []*ledger.Transaction{dup}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeDuplicate {
		t.Fatalf("post-restart duplicate code = %v", res.Codes[0])
	}
}

// TestLSMPeerCrashRestart runs the crash-restart acceptance path on the
// LSM backend: commit N blocks, drop the peer (only its data directory
// survives — WAL, sorted runs, manifest, block log), rebuild it, and
// require byte-identical state, the recorded resume height and
// fast-forward of re-delivered history. This is the end-to-end pin that
// the backend-selection wiring (channel.newStateDB, the durability hook
// ordering against the block store) works for BackendLSM, not just that
// the statedb-level unit tests pass.
func TestLSMPeerCrashRestart(t *testing.T) {
	dir := t.TempDir()
	committer := CommitterConfig{Backend: BackendLSM, DataDir: dir, StateCacheBytes: 1 << 20}

	env := newEnvWithCommitter(t, true, committer)
	env.install(t, "iot", iotChaincode())
	const n = 3
	blocks := commitReadingBlocks(t, env, n, 1)
	before := snapshotState(env.peer, "crdt/dev1")
	if err := env.peer.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The LSM store (not the disk backend's log) is what persisted.
	if _, err := os.Stat(filepath.Join(dir, "ch1", "wal.log")); err != nil {
		t.Fatalf("no LSM write-ahead log under the channel directory: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ch1", "state.log")); !os.IsNotExist(err) {
		t.Fatalf("BackendLSM wrote a disk-backend state.log: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ch1", "blocks", "blocks.log")); err != nil {
		t.Fatalf("block persistence is not on by default with the LSM backend: %v", err)
	}

	restarted := newEnvWithCommitter(t, true, committer)
	restarted.install(t, "iot", iotChaincode())
	p := restarted.peer
	defer p.Close()

	if got := p.Height(); got != n {
		t.Fatalf("resumed height = %d, want %d", got, n)
	}
	after := snapshotState(p, "crdt/dev1")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("state diverged across restart:\nbefore %v\nafter  %v", before, after)
	}
	for _, block := range blocks {
		res, err := p.CommitBlock(block)
		if err != nil {
			t.Fatalf("re-delivering block %d: %v", block.Header.Number, err)
		}
		if !res.FastForwarded {
			t.Fatalf("block %d was re-validated instead of fast-forwarded", block.Header.Number)
		}
	}
	// The peer keeps committing on the restored store.
	commitReadingBlocks(t, restarted, 1, n+1)
	if got := p.Height(); got != n+1 {
		t.Fatalf("height after new commit = %d, want %d", got, n+1)
	}
	if err := p.Chain().Verify(); err != nil {
		t.Fatalf("chain verify after restart: %v", err)
	}
}

// TestDiskPeerRestartWithoutRedelivery models the fabricnet restart: the
// rebuilt peer never sees old blocks again — the ordering service resumes
// numbering after the checkpoint — and must commit fresh blocks directly.
// Block persistence is explicitly OFF: this is the state-checkpoint-only
// fallback, where the restarted peer resumes committing but holds no
// pre-restart bodies (the block-store path is covered by
// blockstore_restart_test.go).
func TestDiskPeerRestartWithoutRedelivery(t *testing.T) {
	dir := t.TempDir()
	committer := CommitterConfig{Backend: BackendDisk, DataDir: dir, PersistBlocks: PersistBlocksOff}

	env := newEnvWithCommitter(t, true, committer)
	env.install(t, "iot", iotChaincode())
	commitReadingBlocks(t, env, 2, 1)
	if err := env.peer.Close(); err != nil {
		t.Fatal(err)
	}

	restarted := newEnvWithCommitter(t, true, committer)
	restarted.install(t, "iot", iotChaincode())
	defer restarted.peer.Close()

	// makeBlock assembles after Chain().Last()... which is nil on a
	// checkpointed chain; endorse + assemble against the resume point.
	num, hash := restarted.peer.Chain().LastRef()
	if num != 2 {
		t.Fatalf("resume point = %d, want 2", num)
	}
	tx := restarted.endorseTx(t, "tx-fresh", "iot", "record", "dev1", "77")
	block := makeBlockAt(t, num, hash, []*ledger.Transaction{tx})
	res, err := restarted.peer.CommitBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if res.FastForwarded || res.Codes[0] != ledger.CodeCRDTMerged {
		t.Fatalf("fresh block after restart: %+v", res)
	}
	if got := restarted.peer.Height(); got != 3 {
		t.Fatalf("height = %d, want 3", got)
	}
	// Duplicate screening survives the restart: a transaction reusing an
	// ID committed before the restart fails as a duplicate even though the
	// old blocks were never re-delivered.
	oldID := "tx-1-0"
	dup := restarted.endorseTx(t, oldID, "iot", "record", "dev1", "13")
	num, hash = restarted.peer.Chain().LastRef()
	dupRes, err := restarted.peer.CommitBlock(makeBlockAt(t, num, hash, []*ledger.Transaction{dup}))
	if err != nil {
		t.Fatal(err)
	}
	if dupRes.Codes[0] != ledger.CodeDuplicate {
		t.Fatalf("pre-restart tx ID recommitted with code %v, want DUPLICATE_TXID", dupRes.Codes[0])
	}

	// RebuildState is the full-chain recovery path; with block persistence
	// off, a checkpointed peer must refuse it rather than wipe durable
	// state it cannot re-derive — and the refusal must name the real
	// checkpoint height, not a derivation that can drift from it.
	err = restarted.peer.RebuildState()
	if err == nil {
		t.Fatal("RebuildState succeeded on a checkpointed chain without a block store")
	}
	cpNum, _, ok := restarted.peer.Chain().Checkpoint()
	if !ok {
		t.Fatal("restarted chain is not checkpointed")
	}
	if want := fmt.Sprintf("checkpointed at block %d", cpNum); !strings.Contains(err.Error(), want) {
		t.Fatalf("refusal does not name the checkpoint height (%q): %v", want, err)
	}
}

// TestFastForwardRejectsForgedBlocks: a block numbered at or below the
// state height is only fast-forwarded when it matches the locally recorded
// history — a forged "old" block must fail loudly, never silently succeed
// (it would otherwise poison duplicate screening and masquerade as
// committed history).
func TestFastForwardRejectsForgedBlocks(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	commitReadingBlocks(t, env, 2, 1)

	// Forge block 2: correct number and prev-hash, different transactions.
	b1, err := env.peer.Chain().Get(1)
	if err != nil {
		t.Fatal(err)
	}
	forged := makeBlockAt(t, 1, b1.HeaderHash(),
		[]*ledger.Transaction{env.endorseTx(t, "forged", "iot", "record", "dev1", "666")})
	if _, err := env.peer.CommitBlock(forged); err == nil {
		t.Fatal("forged re-delivered block accepted")
	}
	rt, err := env.peer.runtime("")
	if err != nil {
		t.Fatal(err)
	}
	rt.Lock()
	seen := rt.WasCommitted("forged")
	rt.Unlock()
	if seen {
		t.Fatal("forged block's tx ID entered duplicate screening")
	}

	// Same attack against a restarted peer's checkpoint block.
	dir := t.TempDir()
	committer := CommitterConfig{Backend: BackendDisk, DataDir: dir}
	denv := newEnvWithCommitter(t, true, committer)
	denv.install(t, "iot", iotChaincode())
	blocks := commitReadingBlocks(t, denv, 2, 1)
	if err := denv.peer.Close(); err != nil {
		t.Fatal(err)
	}
	restarted := newEnvWithCommitter(t, true, committer)
	restarted.install(t, "iot", iotChaincode())
	defer restarted.peer.Close()
	forgedCp := makeBlockAt(t, 1, blocks[0].HeaderHash(),
		[]*ledger.Transaction{restarted.endorseTx(t, "forged-cp", "iot", "record", "dev1", "666")})
	if _, err := restarted.peer.CommitBlock(forgedCp); err == nil {
		t.Fatal("forged checkpoint block accepted after restart")
	}
	// The genuine checkpoint block still fast-forwards.
	if res, err := restarted.peer.CommitBlock(blocks[1]); err != nil || !res.FastForwarded {
		t.Fatalf("genuine checkpoint block: res=%+v err=%v", res, err)
	}
}

// TestNewRejectsDamagedStore writes a durable store with height but no
// chain checkpoint (damage, or a store from an incompatible version): New
// must refuse it — a genesis chain over a non-zero height would make
// fast-forward silently swallow every new block up to that height.
func TestNewRejectsDamagedStore(t *testing.T) {
	dir := t.TempDir()
	// The peer opens each channel's store under DataDir/<channel-ID>;
	// damage the store where channel "ch1" will look for it.
	db, err := statedb.NewDisk(filepath.Join(dir, "ch1"))
	if err != nil {
		t.Fatal(err)
	}
	batch := statedb.NewUpdateBatch()
	batch.Put("k", []byte("v"), rwset.Version{BlockNum: 3})
	db.Apply(batch, rwset.Version{BlockNum: 3})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	ca, err := cryptoid.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := ca.Issue("Org1.peer0")
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Name: "Org1.peer0", MSPID: "Org1", ChannelID: "ch1",
		Committer: CommitterConfig{Backend: BackendDisk, DataDir: dir},
	}, signer, cryptoid.NewMSP())
	if err == nil {
		t.Fatal("New accepted a durable store with height but no checkpoint")
	}
}

// TestNewRejectsBadBackendConfig covers the selection plumbing end to end:
// unknown backend names and a disk backend without a data directory must
// fail peer construction (the per-backend matrix itself is unit-tested in
// internal/channel).
func TestNewRejectsBadBackendConfig(t *testing.T) {
	ca, err := cryptoid.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := ca.Issue("Org1.peer0")
	if err != nil {
		t.Fatal(err)
	}
	newPeer := func(committer CommitterConfig) (*Peer, error) {
		return New(Config{
			Name: "Org1.peer0", MSPID: "Org1", ChannelID: "ch1",
			Committer: committer,
		}, signer, cryptoid.NewMSP())
	}
	cases := map[string]CommitterConfig{
		"unknown-backend":  {Backend: "couchdb"},
		"disk-no-datadir":  {Backend: BackendDisk},
		"misspelled-entry": {Backend: "Memory"},
	}
	for name, committer := range cases {
		if _, err := newPeer(committer); err == nil {
			t.Errorf("%s: New accepted %+v", name, committer)
		}
	}
	for _, committer := range []CommitterConfig{
		{},
		{Backend: BackendMemory},
		{Backend: BackendSharded, StateShards: 4},
		{StateShards: 8},
		{Backend: BackendDisk, DataDir: t.TempDir()},
	} {
		p, err := newPeer(committer)
		if err != nil {
			t.Errorf("New(%+v): %v", committer, err)
			continue
		}
		p.Close()
	}
}
