package peer

import (
	"bytes"
	"fmt"
	"strconv"
	"time"

	"fabriccrdt/internal/channel"
	"fabriccrdt/internal/core"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/metrics"
	"fabriccrdt/internal/obs"
	"fabriccrdt/internal/parallel"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
	"fabriccrdt/internal/txgraph"
)

// State backend names for CommitterConfig.Backend (aliases of the channel
// subsystem's constants, kept here so existing peer-level call sites read
// naturally).
const (
	// BackendMemory is the trivial single-lock in-memory map.
	BackendMemory = channel.BackendMemory
	// BackendSharded is the in-memory backend with per-shard locks
	// (StateShards many).
	BackendSharded = channel.BackendSharded
	// BackendDisk is the persistent append-only-log backend; requires
	// DataDir. A peer reopening the same DataDir resumes every channel
	// from its last committed block instead of replaying the chain.
	BackendDisk = channel.BackendDisk
	// BackendLSM is the log-structured persistent backend (memtable +
	// sorted runs + bloom filters + block cache, docs/STATEDB.md);
	// requires DataDir. Resumes like BackendDisk, but never rebuilds a
	// full in-memory index on open, so world state can outgrow RAM.
	BackendLSM = channel.BackendLSM
)

// Block-body persistence modes for CommitterConfig.PersistBlocks (aliases
// of the channel subsystem's constants). With the block store on — the
// default for the disk backend — the ledger is the recovery root: a
// restarted peer serves its full history (SyncFrom) and can rebuild its
// world state from block 0 (RebuildState). DESIGN.md §8.
const (
	// PersistBlocksAuto enables the block store iff the backend is
	// durable (BackendDisk or BackendLSM).
	PersistBlocksAuto = channel.PersistBlocksAuto
	// PersistBlocksOn requires the block store (durable backends only).
	PersistBlocksOn = channel.PersistBlocksOn
	// PersistBlocksOff keeps the state-checkpoint-only durability.
	PersistBlocksOff = channel.PersistBlocksOff
)

// CommitterConfig tunes the staged commit pipeline and the world-state
// backend behind it (DESIGN.md §4, §5). It is the channel subsystem's
// configuration type: one CommitterConfig applies to each channel the
// peer joins, and each channel gets its own backend instance.
type CommitterConfig = channel.CommitterConfig

// Commit pipeline stage names, as reported by CommitTimings. Decode and
// endorse form the stateless prepare stage (PrepareBlockOn); the rest run
// serialized per channel in the finalize stage (FinalizeBlockOn). The
// overlap pseudo-stage is recorded only by the async delivery pipeline
// (CommitPipeline): it measures how much of a block's prepare work ran
// hidden behind the previous block's finalize.
//
// Each work stage reports its own wall clock. Under pipelining (depth > 1)
// and parallel finalize (FinalizeWorkers > 1) the stages overlap — prepare
// of block N+1 runs behind finalize of N, and merge runs beside mvcc — so
// summing stage totals OVERSTATES elapsed time (it approximates CPU time
// instead). The prepare and finalize wrapper stages measure the two
// pipeline halves' true wall clock, and CommitAggregate reports both views
// without double counting.
const (
	StageDecode   = "decode"    // serialize + re-parse the delivered block
	StageDedup    = "dedup"     // duplicate transaction-ID screening
	StageEndorse  = "endorse"   // signature + endorsement-policy checks (parallel)
	StageSchedule = "schedule"  // dependency-graph + wavefront construction (FinalizeWorkers > 1)
	StageMerge    = "merge"     // CRDT merge engine (parallel per key-group)
	StageMVCC     = "mvcc"      // MVCC validation (wavefront-parallel when scheduled)
	StageMVCCWave = "mvcc_wave" // one MVCC wavefront (contained in mvcc; per-wave latencies)
	StageApply    = "apply"     // batched world-state apply
	StageAppend   = "append"    // ledger append + commit events
	StagePrepare  = "prepare"   // wall clock of the whole stateless prepare half
	StageFinalize = "finalize"  // wall clock of the whole serialized finalize half
	StageOverlap  = "overlap"   // prepare time hidden behind the previous finalize
)

// commitStages is the canonical stage order: every stage gets a registry
// histogram per channel at New, and CommitTimings reports in this order.
var commitStages = []string{
	StageDecode, StageEndorse, StagePrepare,
	StageDedup, StageSchedule, StageMerge, StageMVCC, StageMVCCWave,
	StageApply, StageAppend, StageFinalize, StageOverlap,
}

// CommitTimings returns per-stage latency aggregates over every block this
// peer has committed — on all channels — in pipeline order, read from the
// same registry histograms the -metrics-addr endpoint serves (one source
// of truth; the old side-band stage accumulator is gone). Every entry is
// wall clock of that stage alone; see CommitAggregate for totals that are
// safe to add up. Stages with no observations are omitted.
func (p *Peer) CommitTimings() []metrics.StageSummary {
	out := make([]metrics.StageSummary, 0, len(commitStages))
	for _, stage := range commitStages {
		var count int64
		var total, max time.Duration
		for _, id := range p.channelIDs {
			h := p.cm[id].stages[stage]
			count += h.Count()
			total += h.Sum()
			if m := h.Max(); m > max {
				max = m
			}
		}
		if count == 0 {
			continue
		}
		out = append(out, metrics.StageSummary{
			Stage: stage,
			Count: int(count),
			Total: total,
			Avg:   total / time.Duration(count),
			Max:   max,
		})
	}
	return out
}

// CommitAggregate is the double-counting-free rollup of CommitTimings.
type CommitAggregate struct {
	// Wall is the pipeline's true elapsed commit time: prepare + finalize
	// wall clock, minus the prepare time the async pipeline hid behind an
	// earlier block's finalize (the overlap pseudo-stage). Without it,
	// summing stage totals counts overlapped prepare work twice.
	Wall time.Duration
	// CPU approximates total busy time: the sum of every work stage's own
	// wall clock (decode, dedup, endorse, schedule, merge, mvcc, apply,
	// append). With internal concurrency — merge beside mvcc, parallel
	// wavefronts — CPU exceeds Wall; the ratio is the pipeline's effective
	// parallelism.
	CPU time.Duration
}

// aggregateCPUStages are the non-overlapping work stages whose totals sum
// to the CPU aggregate. The wrapper stages (prepare, finalize), the overlap
// pseudo-stage and the per-wave sub-timings (contained in mvcc) are
// excluded — each would double-count work another stage already reports.
var aggregateCPUStages = map[string]bool{
	StageDecode: true, StageDedup: true, StageEndorse: true,
	StageSchedule: true, StageMerge: true, StageMVCC: true,
	StageApply: true, StageAppend: true,
}

// CommitAggregate rolls CommitTimings up into wall-clock and CPU-time
// totals that are safe to compare: Wall is what a wall clock saw, CPU is
// what the stages worked.
func (p *Peer) CommitAggregate() CommitAggregate {
	var agg CommitAggregate
	for _, s := range p.CommitTimings() {
		switch {
		case s.Stage == StagePrepare || s.Stage == StageFinalize:
			agg.Wall += s.Total
		case s.Stage == StageOverlap:
			agg.Wall -= s.Total
		case aggregateCPUStages[s.Stage]:
			agg.CPU += s.Total
		}
	}
	if agg.Wall < 0 {
		agg.Wall = 0
	}
	return agg
}

// Scheduler counter names, as reported by SchedulerCounters. One sample of
// each per block that went through the dependency scheduler
// (FinalizeWorkers > 1).
const (
	// CounterSchedBlocks counts dependency-scheduled blocks.
	CounterSchedBlocks = "sched_blocks"
	// CounterSchedTxs counts transactions entering the scheduler (still
	// undecided after dedup).
	CounterSchedTxs = "sched_txs"
	// CounterSchedGroups counts independent conflict groups (connected
	// components) across scheduled blocks.
	CounterSchedGroups = "sched_groups"
	// CounterSchedConflicted counts scheduled transactions that conflicted
	// with at least one other; divided by CounterSchedTxs it is the
	// observed conflict rate.
	CounterSchedConflicted = "sched_conflicted_txs"
	// CounterSchedEdges counts dependency edges.
	CounterSchedEdges = "sched_edges"
	// CounterSchedWaves counts MVCC wavefronts executed.
	CounterSchedWaves = "sched_mvcc_waves"
)

// SchedulerCounters returns the dependency scheduler's cumulative conflict
// structure counters — group counts, conflict tallies, wavefront counts —
// across every scheduled block on all channels, in first-observed order.
func (p *Peer) SchedulerCounters() []metrics.Counter {
	return p.sched.Snapshot()
}

// CommitBlock runs the commit pipeline on the peer's default channel — the
// single-channel convenience wrapper around CommitBlockOn.
func (p *Peer) CommitBlock(block *ledger.Block) (CommitResult, error) {
	return p.CommitBlockOn(p.channelIDs[0], block)
}

// CommitBlockOn runs the validation + commit phase on a block delivered
// for one channel as an explicit staged pipeline: decode, duplicate
// screening, endorsement-policy validation (parallel per transaction), the
// FabricCRDT merge for CRDT transactions (when enabled; parallel per
// key-group), MVCC validation for the rest, then an atomic state update
// and ledger append (paper §2.1 step 3, §5.1). Per-stage latencies are
// recorded for CommitTimings.
//
// The pipeline is split in two (DESIGN.md §7): PrepareBlockOn is the
// stateless half (decode + endorsement validation — it reads no world
// state, so an async deliver loop may prepare block N+1 while block N is
// still committing), and FinalizeBlockOn is the serialized half (dedup,
// merge, MVCC, apply, append) under the channel's commit mutex.
// CommitBlockOn composes the two back to back — the synchronous path, and
// the definition of correctness the async pipeline must match
// byte-for-byte at every depth.
//
// Commits are serialized per channel (the channel runtime's commit mutex);
// distinct channels commit fully in parallel — they share no state, no
// lock and no block numbering.
func (p *Peer) CommitBlockOn(channelID string, block *ledger.Block) (CommitResult, error) {
	prep, err := p.PrepareBlockOn(channelID, block)
	if err != nil {
		return CommitResult{}, err
	}
	return p.FinalizeBlockOn(prep)
}

// PreparedBlock is the output of the stateless prepare stage: the decoded
// block copies plus the per-transaction endorsement verdicts, ready for
// FinalizeBlockOn. A prepared block is bound to the (peer, channel)
// runtime it was prepared on.
type PreparedBlock struct {
	rt           *channel.Runtime
	stored, view *ledger.Block
	// endorseCodes holds the signature/policy verdict of every
	// transaction that passed the stateless pre-screen (CodeNotValidated
	// = passed; statelessly screened transactions keep their screen
	// code, which finalize recomputes and never reads from here).
	// Finalize adopts these verdicts only for transactions its
	// authoritative dedup stage leaves undecided, preserving the
	// synchronous pipeline's code precedence.
	endorseCodes []ledger.ValidationCode
	// prepDur is the prepare stage's wall time, used by CommitPipeline's
	// overlap accounting.
	prepDur time.Duration
}

// PrepareBlockOn runs the stateless half of the commit pipeline on a block
// delivered for one channel: decode (serialize + re-parse) and
// endorsement-policy validation of every transaction. Neither touches the
// channel's world state, chain, or duplicate-screening set, so prepare
// needs no commit mutex and may run for block N+1 while block N is still
// inside FinalizeBlockOn — the cross-block overlap the async delivery
// pipeline exploits (DESIGN.md §7).
//
// The block is serialized and re-parsed here: the committer works on the
// peer's own copy (a real peer receives bytes from the deliver service),
// and the pristine copy is what the hash-chained ledger stores — the merge
// engine's write-set rewriting never invalidates the orderer's data hash.
func (p *Peer) PrepareBlockOn(channelID string, block *ledger.Block) (*PreparedBlock, error) {
	//lint:ignore determinism prepare timing only; durations feed metrics, never committed state
	start := time.Now()
	rt, err := p.runtime(channelID)
	if err != nil {
		return nil, err
	}
	cm := p.cm[rt.ID()]
	var stored, view *ledger.Block
	cm.time(StageDecode, func() {
		stored, view, err = decodeBlock(block)
	})
	if err != nil {
		return nil, err
	}
	endorseCodes := make([]ledger.ValidationCode, len(view.Transactions))
	// A block already at or below the channel's committed height will be
	// fast-forwarded by finalize — don't re-validate its endorsements
	// here (re-delivered history must cost no validation work). The
	// unlocked height read is safe because height only grows: a block
	// this check sees as committed is still committed when finalize
	// re-checks under the commit mutex; the reverse race merely prepares
	// a block that finalize then fast-forwards, wasting nothing but work.
	if num := view.Header.Number; num == 0 || num > rt.Height() {
		cm.time(StageEndorse, func() {
			// The stateless pre-screen: transactions endorsed for a
			// different channel or duplicated within this block never
			// reach signature verification in the synchronous pipeline
			// either. Both checks are pure functions of the block, so
			// finalize's authoritative dedup stage recomputes the same
			// screens (and never reads endorseCodes for screened
			// transactions); only cross-history duplicates — invisible
			// without the dedup set — still cost a wasted verification.
			markWrongChannel(rt.ID(), view, endorseCodes)
			markInBlockDuplicates(view, endorseCodes)
			p.validateEndorsementsStage(rt, view, endorseCodes)
		})
	}
	prepDur := time.Since(start)
	cm.observe(StagePrepare, prepDur)
	return &PreparedBlock{
		rt:           rt,
		stored:       stored,
		view:         view,
		endorseCodes: endorseCodes,
		prepDur:      prepDur,
	}, nil
}

// FinalizeBlockOn runs the serialized half of the commit pipeline on a
// prepared block, under the channel's commit mutex: fast-forward check,
// duplicate screening (which must see every earlier block's committed IDs,
// so it cannot run ahead), the CRDT merge, MVCC validation, the atomic
// state apply and the ledger append. Prepared blocks of one channel must
// be finalized in delivery order — the hash chain rejects anything else.
//
// Dedup precedence matches the synchronous pipeline exactly: a
// wrong-channel or duplicate transaction keeps that code even if the
// prepare stage found its endorsements invalid, because the synchronous
// pipeline never endorse-validated screened transactions at all.
func (p *Peer) FinalizeBlockOn(prep *PreparedBlock) (CommitResult, error) {
	rt, stored, view := prep.rt, prep.stored, prep.view
	var err error

	rt.Lock()
	defer rt.Unlock()

	// A block at or below the state height was already committed — its
	// writes are in the (durable) world state. Fast-forward: record it
	// without re-validating or re-applying, so a restarted disk-backed
	// peer resumes from height+1 instead of replaying the chain.
	if num := view.Header.Number; num > 0 && num <= rt.Height() {
		return p.fastForward(rt, stored)
	}

	// Pre-flight the chain link before anything touches the state: the
	// append stage re-verifies at the end of the commit, but by then the
	// block's writes and its chain checkpoint would already be (durably)
	// applied — a chain-invalid block rejected only at append would
	// leave a restarted peer resuming from a checkpoint the true chain
	// never produced.
	if err := rt.Chain().CheckNext(stored); err != nil {
		return CommitResult{}, fmt.Errorf("peer %s: committing block %d on %s: %w", p.cfg.Name, view.Header.Number, rt.ID(), err)
	}

	//lint:ignore determinism finalize timing only; durations feed metrics, never committed state
	finStart := time.Now()
	cm := p.cm[rt.ID()]
	codes := make([]ledger.ValidationCode, len(view.Transactions))
	cm.time(StageDedup, func() {
		markWrongChannel(rt.ID(), view, codes)
		p.markDuplicates(rt, view, codes)
		// Adopt the prepared endorsement verdicts for every transaction
		// the screening left undecided.
		for i := range codes {
			if codes[i] == ledger.CodeNotValidated {
				codes[i] = prep.endorseCodes[i]
			}
		}
	})

	// Validation: the CRDT merge path (Algorithm 1) and MVCC decide the
	// block's remaining transactions — serially in delivery order, or
	// dependency-scheduled over the finalize worker pool (DESIGN.md §9).
	// Both orderings produce byte-identical codes, write sets and documents.
	var mergeRes core.Result
	if p.cfg.Committer.FinalizeWorkers > 1 {
		mergeRes, err = p.validateScheduled(rt, view, codes)
	} else {
		mergeRes, err = p.validateSerial(rt, view, codes)
	}
	if err != nil {
		return CommitResult{}, fmt.Errorf("peer %s: merging block %d on %s: %w", p.cfg.Name, view.Header.Number, rt.ID(), err)
	}

	// Atomic commit: the pristine block body (now carrying its validation
	// codes) goes to the durable block store FIRST, then the state writes +
	// CRDT document states + the chain checkpoint a restarted peer resumes
	// from. The order is the recovery invariant: the block log is never
	// behind the durable state, so a crash between the two leaves a
	// log-ahead gap the next open replays (DESIGN.md §8) — the reverse
	// order could checkpoint state whose block body is lost forever.
	cm.time(StageApply, func() {
		stored.Metadata.ValidationCodes = codes
		if bs := rt.Blocks(); bs != nil {
			if err = bs.Append(stored); err != nil {
				return
			}
		}
		var batch *statedb.UpdateBatch
		if batch, err = rt.StageCommit(view, stored, mergeRes, codes); err != nil {
			return
		}
		rt.DB().Apply(batch, rwset.Version{BlockNum: view.Header.Number})
	})
	if err != nil {
		return CommitResult{}, fmt.Errorf("peer %s: committing block %d on %s: %w", p.cfg.Name, view.Header.Number, rt.ID(), err)
	}

	committed := 0
	cm.time(StageAppend, func() {
		if err = rt.Chain().Append(stored); err != nil {
			return
		}
		tracing := obs.TracingEnabled()
		for i, tx := range view.Transactions {
			if codes[i].Committed() {
				committed++
				cm.txOK.Inc()
			} else {
				cm.txRejected.Inc()
			}
			rt.MarkCommitted(tx.ID)
			if tracing && tx.TraceID != "" {
				// The commit span starts at finalize entry, so within this
				// process it nests inside any span that observed the whole
				// submit→commit round trip (e.g. gateway.submit).
				obs.Trace(tx.TraceID, "peer.commit", finStart,
					"peer", p.cfg.Name, "channel", rt.ID(), "txID", tx.ID,
					"block", strconv.FormatUint(view.Header.Number, 10),
					"code", codes[i].String())
			}
			p.emit(CommitEvent{TxID: tx.ID, ChannelID: rt.ID(), BlockNum: view.Header.Number, Code: codes[i]})
		}
	})
	if err != nil {
		return CommitResult{}, fmt.Errorf("peer %s: appending block %d on %s: %w", p.cfg.Name, view.Header.Number, rt.ID(), err)
	}
	cm.blocks.Inc()
	cm.observe(StageFinalize, time.Since(finStart))
	return CommitResult{
		ChannelID:   rt.ID(),
		BlockNum:    view.Header.Number,
		Codes:       codes,
		MergedKeys:  mergeRes.MergedKeys,
		CommittedTx: committed,
	}, nil
}

// validateSerial is the legacy finalize validation (FinalizeWorkers == 1):
// the CRDT merge decides every candidate first, then MVCC walks the rest in
// delivery order — the committer's definition of correctness, which the
// scheduled path must match byte for byte.
func (p *Peer) validateSerial(rt *channel.Runtime, view *ledger.Block, codes []ledger.ValidationCode) (core.Result, error) {
	cm := p.cm[rt.ID()]
	var mergeRes core.Result
	var err error
	if p.cfg.EnableCRDT {
		cm.time(StageMerge, func() {
			mergeRes, err = rt.Engine().MergeBlock(view, codes)
		})
		if err != nil {
			return core.Result{}, err
		}
	}
	cm.time(StageMVCC, func() {
		rt.Validator().ValidateBlock(view.Header.Number, view.Transactions, codes)
	})
	return mergeRes, nil
}

// validateScheduled is the dependency-scheduled finalize validation
// (FinalizeWorkers > 1). The txgraph plan splits the undecided transactions
// into the merge-path candidates and the MVCC wavefronts; the two families
// are independent by construction — in the serial path the merge decides
// every candidate BEFORE ValidateBlock runs, so no candidate's write ever
// enters MVCC's pending-version accounting — which lets the merge engine
// and the wavefront validator run concurrently over disjoint codes slots
// and disjoint transaction footprints. Within every chain, block-delivery
// order is preserved (per-key merge order in the engine, wave order in the
// validator), so codes, rewritten write sets and document bytes are
// byte-identical to validateSerial at any worker count (DESIGN.md §9).
func (p *Peer) validateScheduled(rt *channel.Runtime, view *ledger.Block, codes []ledger.ValidationCode) (core.Result, error) {
	cm := p.cm[rt.ID()]
	workers := p.cfg.Committer.FinalizeWorkers
	var plan *txgraph.Plan
	cm.time(StageSchedule, func() {
		plan = txgraph.Build(view.Transactions, codes, p.cfg.EnableCRDT)
	})
	st := plan.Stats
	p.sched.Add(CounterSchedBlocks, 1)
	p.sched.Add(CounterSchedTxs, int64(st.Scheduled))
	p.sched.Add(CounterSchedGroups, int64(st.Groups))
	p.sched.Add(CounterSchedConflicted, int64(st.Conflicted))
	p.sched.Add(CounterSchedEdges, int64(st.Edges))
	p.sched.Add(CounterSchedWaves, int64(st.Waves))

	// The merge branch runs beside the MVCC branch: MergeCandidates touches
	// codes only at candidate indices, the wavefront validator only at
	// plain indices, and neither reads the other's slots.
	var mergeRes core.Result
	var mergeErr error
	mergeDone := make(chan struct{})
	if len(plan.CRDTTxs) > 0 {
		go func() {
			defer close(mergeDone)
			cm.time(StageMerge, func() {
				mergeRes, mergeErr = rt.Engine().MergeCandidates(view, codes, plan.CRDTTxs, workers)
			})
		}()
	} else {
		close(mergeDone)
	}
	cm.time(StageMVCC, func() {
		rt.Validator().ValidateScheduled(view.Header.Number, view.Transactions, codes, plan.MVCCWaves, workers,
			func(_ int, d time.Duration) { cm.observe(StageMVCCWave, d) })
	})
	<-mergeDone
	if mergeErr != nil {
		return core.Result{}, mergeErr
	}
	return mergeRes, nil
}

// fastForward records an already-committed block (state height at or above
// its number) without re-running validation or touching the state: the
// block is appended to the channel's chain if missing, and its transaction
// IDs are registered for duplicate screening. The block's metadata codes
// are kept as delivered — a block re-delivered by the orderer carries
// none; the authoritative codes live with peers that validated it and in
// the durable state itself. No commit events are emitted (listeners
// attached after a restart should not see historical commits replayed).
//
// A re-delivered block is never accepted unverified where a local hash
// exists: a block the chain stores (or the checkpoint block itself) must
// match it header-for-header, so a forged "old" block cannot poison the
// duplicate-screening set or masquerade as committed history. Blocks from
// before the checkpoint have no local hash; they are acknowledged without
// registering anything.
func (p *Peer) fastForward(rt *channel.Runtime, stored *ledger.Block) (CommitResult, error) {
	num := stored.Header.Number
	switch {
	case num >= rt.Chain().Height():
		// Missing from the chain (e.g. a checkpointed chain receiving the
		// block right after its checkpoint): Append hash-verifies it. Keep
		// the block store in step so it stays a contiguous [0, height)
		// image of the chain.
		if err := rt.Chain().Append(stored); err != nil {
			return CommitResult{}, fmt.Errorf("peer %s: fast-forwarding block %d on %s: %w", p.cfg.Name, num, rt.ID(), err)
		}
		if bs := rt.Blocks(); bs != nil && bs.Height() == num {
			if err := bs.Append(stored); err != nil {
				return CommitResult{}, fmt.Errorf("peer %s: fast-forwarding block %d on %s: %w", p.cfg.Name, num, rt.ID(), err)
			}
		}
	case num >= rt.Chain().FirstNumber():
		// Locally stored: the re-delivered copy must be the same block.
		local, err := rt.Chain().Get(num)
		if err != nil {
			return CommitResult{}, fmt.Errorf("peer %s: fast-forwarding block %d on %s: %w", p.cfg.Name, num, rt.ID(), err)
		}
		if !bytes.Equal(local.HeaderHash(), stored.HeaderHash()) {
			return CommitResult{}, fmt.Errorf("peer %s: re-delivered block %d on %s does not match the committed block", p.cfg.Name, num, rt.ID())
		}
	default:
		// Pre-checkpoint history. The checkpoint block itself is still
		// verifiable against the recorded hash; anything earlier is not —
		// acknowledge it without trusting its contents (the durable state
		// already reflects the true history).
		if cpNum, cpHash, ok := rt.Chain().Checkpoint(); ok && num == cpNum {
			if !bytes.Equal(stored.HeaderHash(), cpHash) {
				return CommitResult{}, fmt.Errorf("peer %s: re-delivered block %d on %s does not match the chain checkpoint", p.cfg.Name, num, rt.ID())
			}
			break
		}
		return CommitResult{ChannelID: rt.ID(), BlockNum: num, FastForwarded: true}, nil
	}
	for _, tx := range stored.Transactions {
		rt.MarkCommitted(tx.ID)
	}
	return CommitResult{
		ChannelID:     rt.ID(),
		BlockNum:      num,
		Codes:         stored.Metadata.ValidationCodes,
		FastForwarded: true,
	}, nil
}

// decodeBlock serializes and re-parses the delivered block into the
// pristine copy the ledger stores and the working view the committer
// mutates.
func decodeBlock(block *ledger.Block) (stored, view *ledger.Block, err error) {
	raw, err := block.Marshal()
	if err != nil {
		return nil, nil, err
	}
	stored, err = ledger.UnmarshalBlock(raw)
	if err != nil {
		return nil, nil, err
	}
	view, err = ledger.UnmarshalBlock(raw)
	if err != nil {
		return nil, nil, err
	}
	return stored, view, nil
}

// markWrongChannel fails transactions endorsed for a different channel
// than the one this block is being committed on. Endorsement signatures
// cover the transaction's own ChannelID, so a valid envelope for ch1
// replayed into ch2's block stream would otherwise pass every later check
// (duplicate screening is deliberately channel-local, and MVCC would
// validate its reads against the wrong channel's versions). An empty
// ChannelID is also rejected: every endorsed envelope names its channel.
func markWrongChannel(channelID string, view *ledger.Block, codes []ledger.ValidationCode) {
	for i, tx := range view.Transactions {
		if codes[i] == ledger.CodeNotValidated && tx.ChannelID != channelID {
			codes[i] = ledger.CodeWrongChannel
		}
	}
}

// markDuplicates fails transactions whose ID was already committed on this
// channel or appeared earlier in the same block (the paper's system model
// relies on peers to identify duplicates; first occurrence wins). Besides
// the in-memory set, the channel's durable seen-transaction markers are
// consulted, so screening covers history committed before a restart.
// Screening is channel-local: the same ID on another channel is a
// different transaction (Fabric's ledgers are independent per channel).
func (p *Peer) markDuplicates(rt *channel.Runtime, view *ledger.Block, codes []ledger.ValidationCode) {
	for i, tx := range view.Transactions {
		// Only still-undecided transactions: a WRONG_CHANNEL rejection
		// must not be relabeled as a dedup hit.
		if codes[i] == ledger.CodeNotValidated && rt.WasCommitted(tx.ID) {
			codes[i] = ledger.CodeDuplicate
		}
	}
	markInBlockDuplicates(view, codes)
}

// markInBlockDuplicates fails repeats of a transaction ID within the same
// block (first occurrence wins). Unlike the cross-history half of the
// screening it is a pure function of the block, so the prepare stage also
// runs it to skip endorsement validation of in-block repeats.
func markInBlockDuplicates(view *ledger.Block, codes []ledger.ValidationCode) {
	seenInBlock := make(map[string]int, len(view.Transactions))
	for i, tx := range view.Transactions {
		if codes[i] != ledger.CodeNotValidated {
			continue
		}
		if _, dup := seenInBlock[tx.ID]; dup {
			codes[i] = ledger.CodeDuplicate
			continue
		}
		seenInBlock[tx.ID] = i
	}
}

// validateEndorsementsStage checks signatures and endorsement policies of
// every still-undecided transaction. Transactions are independent here
// (each check touches only codes[i]), so the stage fans out over a bounded
// worker pool when CommitterConfig.Workers > 1 — the parallelization Fabric
// itself applies to this, the most CPU-bound, stage.
func (p *Peer) validateEndorsementsStage(rt *channel.Runtime, view *ledger.Block, codes []ledger.ValidationCode) {
	var pending []int
	for i := range view.Transactions {
		if codes[i] == ledger.CodeNotValidated {
			pending = append(pending, i)
		}
	}
	parallel.ForEach(p.cfg.Committer.Workers, pending, func(i int) {
		// Distinct items write distinct codes[i]: race-free.
		codes[i] = p.validateEndorsements(rt, view.Transactions[i])
	})
}
