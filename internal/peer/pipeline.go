package peer

import (
	"bytes"
	"fmt"

	"fabriccrdt/internal/core"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/metrics"
	"fabriccrdt/internal/mvcc"
	"fabriccrdt/internal/parallel"
	"fabriccrdt/internal/rwset"
)

// State backend names for CommitterConfig.Backend.
const (
	// BackendMemory is the trivial single-lock in-memory map.
	BackendMemory = "memory"
	// BackendSharded is the in-memory backend with per-shard locks
	// (StateShards many).
	BackendSharded = "sharded"
	// BackendDisk is the persistent append-only-log backend; requires
	// DataDir. A peer reopening the same DataDir resumes from the last
	// committed block instead of replaying the chain.
	BackendDisk = "disk"
)

// CommitterConfig tunes the staged commit pipeline and the world-state
// backend behind it (DESIGN.md §4, §5).
type CommitterConfig struct {
	// Workers bounds the endorsement-validation worker pool and, unless
	// EngineOptions.Workers overrides it, the merge engine's key-group
	// parallelism. 0 or 1 = serial. Validation codes, world state and
	// persisted CRDT documents are identical at every setting.
	Workers int
	// StateShards selects the sharded statedb backend with that many
	// independently locked shards; 0 or 1 keeps the trivial single-lock
	// map backend. Ignored unless Backend is "" or BackendSharded.
	StateShards int
	// Backend names the statedb backend: BackendMemory, BackendSharded or
	// BackendDisk. Empty keeps the historical behavior (sharded when
	// StateShards > 1, memory otherwise). Unknown names fail New.
	Backend string
	// DataDir is the disk backend's data directory (required for
	// BackendDisk, unused otherwise). Each peer needs its own directory;
	// fabricnet derives per-peer subdirectories automatically.
	DataDir string
}

// Commit pipeline stage names, as reported by CommitTimings.
const (
	StageDecode  = "decode"  // serialize + re-parse the delivered block
	StageDedup   = "dedup"   // duplicate transaction-ID screening
	StageEndorse = "endorse" // signature + endorsement-policy checks (parallel)
	StageMerge   = "merge"   // CRDT merge engine (parallel per key-group)
	StageMVCC    = "mvcc"    // stock MVCC validation (serial)
	StageApply   = "apply"   // batched world-state apply
	StageAppend  = "append"  // ledger append + commit events
)

// CommitTimings returns per-stage latency aggregates over every block this
// peer has committed, in pipeline order.
func (p *Peer) CommitTimings() []metrics.StageSummary {
	return p.timings.Summaries()
}

// CommitBlock runs the validation + commit phase on a delivered block as an
// explicit staged pipeline: decode, duplicate screening, endorsement-policy
// validation (parallel per transaction), the FabricCRDT merge for CRDT
// transactions (when enabled; parallel per key-group), MVCC validation for
// the rest, then an atomic state update and ledger append (paper §2.1
// step 3, §5.1). Per-stage latencies are recorded for CommitTimings.
//
// The block is serialized and re-parsed first: the committer works on the
// peer's own copy (a real peer receives bytes from the deliver service),
// and the pristine copy is what the hash-chained ledger stores — the merge
// engine's write-set rewriting never invalidates the orderer's data hash.
func (p *Peer) CommitBlock(block *ledger.Block) (CommitResult, error) {
	var stored, view *ledger.Block
	var err error
	p.timings.Time(StageDecode, func() {
		stored, view, err = decodeBlock(block)
	})
	if err != nil {
		return CommitResult{}, err
	}

	p.commitMu.Lock()
	defer p.commitMu.Unlock()

	// A block at or below the state height was already committed — its
	// writes are in the (durable) world state. Fast-forward: record it
	// without re-validating or re-applying, so a restarted disk-backed
	// peer resumes from height+1 instead of replaying the chain.
	if num := view.Header.Number; num > 0 && num <= p.db.Height().BlockNum {
		return p.fastForward(stored)
	}

	codes := make([]ledger.ValidationCode, len(view.Transactions))
	p.timings.Time(StageDedup, func() {
		p.markDuplicates(view, codes)
	})
	p.timings.Time(StageEndorse, func() {
		p.validateEndorsementsStage(view, codes)
	})

	// FabricCRDT merge path (Algorithm 1) for CRDT transactions.
	var mergeRes core.Result
	if p.cfg.EnableCRDT {
		p.timings.Time(StageMerge, func() {
			mergeRes, err = p.engine.MergeBlock(view, codes)
		})
		if err != nil {
			return CommitResult{}, fmt.Errorf("peer %s: merging block %d: %w", p.cfg.Name, view.Header.Number, err)
		}
	}

	// Stock MVCC validation for everything still undecided.
	p.timings.Time(StageMVCC, func() {
		p.validator.ValidateBlock(view.Header.Number, view.Transactions, codes)
	})

	// Atomic commit: state writes + CRDT document states + the chain
	// checkpoint a restarted peer resumes from, then the ledger append of
	// the pristine block carrying the validation codes.
	p.timings.Time(StageApply, func() {
		batch := mvcc.BuildCommitBatch(view.Header.Number, view.Transactions, codes)
		core.StageDocStates(batch, mergeRes)
		stageTxSeen(batch, view.Transactions)
		if err = stageCheckpoint(batch, stored); err != nil {
			return
		}
		p.db.Apply(batch, rwset.Version{BlockNum: view.Header.Number})
	})
	if err != nil {
		return CommitResult{}, fmt.Errorf("peer %s: committing block %d: %w", p.cfg.Name, view.Header.Number, err)
	}

	committed := 0
	p.timings.Time(StageAppend, func() {
		stored.Metadata.ValidationCodes = codes
		if err = p.chain.Append(stored); err != nil {
			return
		}
		for i, tx := range view.Transactions {
			if codes[i].Committed() {
				committed++
			}
			p.committedIDs[tx.ID] = struct{}{}
			p.emit(CommitEvent{TxID: tx.ID, BlockNum: view.Header.Number, Code: codes[i]})
		}
	})
	if err != nil {
		return CommitResult{}, fmt.Errorf("peer %s: appending block %d: %w", p.cfg.Name, view.Header.Number, err)
	}
	return CommitResult{
		BlockNum:    view.Header.Number,
		Codes:       codes,
		MergedKeys:  mergeRes.MergedKeys,
		CommittedTx: committed,
	}, nil
}

// fastForward records an already-committed block (state height at or above
// its number) without re-running validation or touching the state: the
// block is appended to the chain if missing, and its transaction IDs are
// registered for duplicate screening. The block's metadata codes are kept
// as delivered — a block re-delivered by the orderer carries none; the
// authoritative codes live with peers that validated it and in the durable
// state itself. No commit events are emitted (listeners attached after a
// restart should not see historical commits replayed).
//
// A re-delivered block is never accepted unverified where a local hash
// exists: a block the chain stores (or the checkpoint block itself) must
// match it header-for-header, so a forged "old" block cannot poison the
// duplicate-screening set or masquerade as committed history. Blocks from
// before the checkpoint have no local hash; they are acknowledged without
// registering anything.
func (p *Peer) fastForward(stored *ledger.Block) (CommitResult, error) {
	num := stored.Header.Number
	switch {
	case num >= p.chain.Height():
		// Missing from the chain (e.g. a checkpointed chain receiving the
		// block right after its checkpoint): Append hash-verifies it.
		if err := p.chain.Append(stored); err != nil {
			return CommitResult{}, fmt.Errorf("peer %s: fast-forwarding block %d: %w", p.cfg.Name, num, err)
		}
	case num >= p.chain.FirstNumber():
		// Locally stored: the re-delivered copy must be the same block.
		local, err := p.chain.Get(num)
		if err != nil {
			return CommitResult{}, fmt.Errorf("peer %s: fast-forwarding block %d: %w", p.cfg.Name, num, err)
		}
		if !bytes.Equal(local.HeaderHash(), stored.HeaderHash()) {
			return CommitResult{}, fmt.Errorf("peer %s: re-delivered block %d does not match the committed block", p.cfg.Name, num)
		}
	default:
		// Pre-checkpoint history. The checkpoint block itself is still
		// verifiable against the recorded hash; anything earlier is not —
		// acknowledge it without trusting its contents (the durable state
		// already reflects the true history).
		if cpNum, cpHash, ok := p.chain.Checkpoint(); ok && num == cpNum {
			if !bytes.Equal(stored.HeaderHash(), cpHash) {
				return CommitResult{}, fmt.Errorf("peer %s: re-delivered block %d does not match the chain checkpoint", p.cfg.Name, num)
			}
			break
		}
		return CommitResult{BlockNum: num, FastForwarded: true}, nil
	}
	for _, tx := range stored.Transactions {
		p.committedIDs[tx.ID] = struct{}{}
	}
	return CommitResult{
		BlockNum:      num,
		Codes:         stored.Metadata.ValidationCodes,
		FastForwarded: true,
	}, nil
}

// decodeBlock serializes and re-parses the delivered block into the
// pristine copy the ledger stores and the working view the committer
// mutates.
func decodeBlock(block *ledger.Block) (stored, view *ledger.Block, err error) {
	raw, err := block.Marshal()
	if err != nil {
		return nil, nil, err
	}
	stored, err = ledger.UnmarshalBlock(raw)
	if err != nil {
		return nil, nil, err
	}
	view, err = ledger.UnmarshalBlock(raw)
	if err != nil {
		return nil, nil, err
	}
	return stored, view, nil
}

// markDuplicates fails transactions whose ID was already committed or
// appeared earlier in the same block (the paper's system model relies on
// peers to identify duplicates; first occurrence wins). Besides the
// in-memory set, the durable seen-transaction markers are consulted, so
// screening covers history committed before a restart.
func (p *Peer) markDuplicates(view *ledger.Block, codes []ledger.ValidationCode) {
	for i, tx := range view.Transactions {
		if _, seen := p.committedIDs[tx.ID]; seen || p.db.GetMeta(txSeenMetaKey(tx.ID)) != nil {
			codes[i] = ledger.CodeDuplicate
		}
	}
	seenInBlock := make(map[string]int, len(view.Transactions))
	for i, tx := range view.Transactions {
		if codes[i] != ledger.CodeNotValidated {
			continue
		}
		if _, dup := seenInBlock[tx.ID]; dup {
			codes[i] = ledger.CodeDuplicate
			continue
		}
		seenInBlock[tx.ID] = i
	}
}

// validateEndorsementsStage checks signatures and endorsement policies of
// every still-undecided transaction. Transactions are independent here
// (each check touches only codes[i]), so the stage fans out over a bounded
// worker pool when CommitterConfig.Workers > 1 — the parallelization Fabric
// itself applies to this, the most CPU-bound, stage.
func (p *Peer) validateEndorsementsStage(view *ledger.Block, codes []ledger.ValidationCode) {
	var pending []int
	for i := range view.Transactions {
		if codes[i] == ledger.CodeNotValidated {
			pending = append(pending, i)
		}
	}
	parallel.ForEach(p.cfg.Committer.Workers, pending, func(i int) {
		// Distinct items write distinct codes[i]: race-free.
		codes[i] = p.validateEndorsements(view.Transactions[i])
	})
}
