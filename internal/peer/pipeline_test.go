package peer

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/core"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
)

// pipelineEnv wires one CA/MSP and a set of committer peers with different
// pipeline configurations, all trusting the same roots so one endorsed
// transaction set commits everywhere.
type pipelineEnv struct {
	msp    *cryptoid.MSP
	client *cryptoid.Signer
	// baseline endorses and commits serially; variants replay its blocks.
	baseline *Peer
	variants []*Peer
}

func newPipelineEnv(t *testing.T, variants []CommitterConfig) *pipelineEnv {
	t.Helper()
	ca, err := cryptoid.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	msp := cryptoid.NewMSP()
	msp.AddOrg("Org1", ca.PublicKey())
	clientSigner, err := ca.Issue("client0")
	if err != nil {
		t.Fatal(err)
	}
	env := &pipelineEnv{msp: msp, client: clientSigner}
	mkPeer := func(name string, committer CommitterConfig) *Peer {
		signer, err := ca.Issue(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{
			Name: name, MSPID: "Org1", ChannelID: "ch1",
			EnableCRDT: true, Committer: committer,
		}, signer, msp)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	env.baseline = mkPeer("Org1.baseline", CommitterConfig{})
	for i, cc := range variants {
		env.variants = append(env.variants, mkPeer(fmt.Sprintf("Org1.variant%d", i), cc))
	}
	return env
}

func (e *pipelineEnv) peers() []*Peer {
	return append([]*Peer{e.baseline}, e.variants...)
}

func (e *pipelineEnv) install(t *testing.T, name string, cc chaincode.Chaincode) {
	t.Helper()
	policy := endorse.MustParse("'Org1.member'")
	for _, p := range e.peers() {
		p.InstallChaincode(name, cc, policy)
	}
}

// endorseTx simulates on the baseline peer and assembles the envelope.
func (e *pipelineEnv) endorseTx(t *testing.T, txID, ccName string, args ...string) *ledger.Transaction {
	t.Helper()
	creator, err := e.client.Identity.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rawArgs := make([][]byte, len(args))
	for i, a := range args {
		rawArgs[i] = []byte(a)
	}
	resp, err := e.baseline.Endorse(Proposal{
		TxID: txID, ChannelID: "ch1", Chaincode: ccName, Args: rawArgs, Creator: creator,
	})
	if err != nil {
		t.Fatalf("endorse %s: %v", txID, err)
	}
	return &ledger.Transaction{
		ID:           txID,
		ChannelID:    "ch1",
		Chaincode:    ccName,
		Creator:      creator,
		Args:         rawArgs,
		RWSet:        resp.RWSet,
		Endorsements: []ledger.Endorsement{{Endorser: resp.Endorser, Signature: resp.Signature}},
	}
}

// multiKeyCRDTChaincode appends a reading to two device documents per call,
// exercising multi-key transactions across key-groups.
func multiKeyCRDTChaincode() chaincode.Chaincode {
	return chaincode.Func(func(stub chaincode.Stub) error {
		_, params := stub.Function()
		devA, devB, reading := params[0], params[1], params[2]
		delta := []byte(`{"readings":[{"t":"` + reading + `"}]}`)
		if err := stub.PutCRDT(devA, delta); err != nil {
			return err
		}
		return stub.PutCRDT(devB, delta)
	})
}

// plainChaincode writes an ordinary (MVCC-validated) key.
func plainChaincode() chaincode.Chaincode {
	return chaincode.Func(func(stub chaincode.Stub) error {
		_, params := stub.Function()
		if _, err := stub.GetState(params[0]); err != nil {
			return err
		}
		return stub.PutState(params[0], []byte(params[1]))
	})
}

// badCRDTChaincode endorses an unparseable CRDT delta (fails at merge time
// with CodeInvalidCRDT, after a valid write to another key).
func badCRDTChaincode() chaincode.Chaincode {
	return chaincode.Func(func(stub chaincode.Stub) error {
		_, params := stub.Function()
		if err := stub.PutCRDT(params[0], []byte(`{"ok":["x"]}`)); err != nil {
			return err
		}
		return stub.PutCRDT(params[1], []byte(`not json`))
	})
}

// TestCommitPipelineDeterminism is the refactor's core guarantee: identical
// block sequences commit to byte-identical world state, versions and
// validation codes at every Workers / StateShards setting.
func TestCommitPipelineDeterminism(t *testing.T) {
	env := newPipelineEnv(t, []CommitterConfig{
		{Workers: 1, StateShards: 1},
		{Workers: 4, StateShards: 2},
		{Workers: 8, StateShards: 16},
	})
	env.install(t, "iot", multiKeyCRDTChaincode())
	env.install(t, "plain", plainChaincode())
	env.install(t, "bad", badCRDTChaincode())

	// Block 1: 20 conflicting CRDT txs over 4 device keys, plain txs (one
	// MVCC winner per key), an invalid CRDT delta, a tampered signature
	// and an in-block duplicate ID.
	var b1txs []*ledger.Transaction
	for i := 0; i < 20; i++ {
		devA := fmt.Sprintf("dev%d", i%4)
		devB := fmt.Sprintf("dev%d", (i+1)%4)
		b1txs = append(b1txs, env.endorseTx(t, fmt.Sprintf("crdt-%d", i), "iot", "append", devA, devB, fmt.Sprintf("%d", i)))
	}
	b1txs = append(b1txs,
		env.endorseTx(t, "plain-1", "plain", "put", "acct", "100"),
		env.endorseTx(t, "plain-2", "plain", "put", "acct", "200"), // same snapshot: MVCC conflict
		env.endorseTx(t, "bad-1", "bad", "poison", "ok-key", "dev0"),
	)
	forged := env.endorseTx(t, "forged", "plain", "put", "other", "1")
	forged.Endorsements[0].Signature[0] ^= 0xff
	b1txs = append(b1txs, forged, b1txs[0]) // duplicate ID in-block

	commitAll := func(txs []*ledger.Transaction) map[*Peer]CommitResult {
		t.Helper()
		block := makeBlock(t, env.baseline, txs)
		out := make(map[*Peer]CommitResult)
		for _, p := range env.peers() {
			res, err := p.CommitBlock(block)
			if err != nil {
				t.Fatalf("peer %s: %v", p.Name(), err)
			}
			out[p] = res
		}
		return out
	}
	res1 := commitAll(b1txs)

	// Block 2: more conflicting appends on the same keys (cross-block
	// seeding) plus a cross-block duplicate.
	var b2txs []*ledger.Transaction
	for i := 0; i < 10; i++ {
		devA := fmt.Sprintf("dev%d", i%4)
		devB := fmt.Sprintf("dev%d", (i+2)%4)
		b2txs = append(b2txs, env.endorseTx(t, fmt.Sprintf("crdt2-%d", i), "iot", "append", devA, devB, fmt.Sprintf("b2-%d", i)))
	}
	b2txs = append(b2txs, env.endorseTx(t, "crdt-0", "iot", "append", "dev0", "dev1", "dup"))
	res2 := commitAll(b2txs)

	for _, p := range env.variants {
		for blockIdx, res := range []map[*Peer]CommitResult{res1, res2} {
			want, got := res[env.baseline], res[p]
			if !reflect.DeepEqual(want.Codes, got.Codes) {
				t.Errorf("block %d: %s codes = %v, baseline %v", blockIdx+1, p.Name(), got.Codes, want.Codes)
			}
			if !reflect.DeepEqual(want.MergedKeys, got.MergedKeys) {
				t.Errorf("block %d: %s merged keys = %v, baseline %v", blockIdx+1, p.Name(), got.MergedKeys, want.MergedKeys)
			}
			if want.CommittedTx != got.CommittedTx {
				t.Errorf("block %d: %s committed %d, baseline %d", blockIdx+1, p.Name(), got.CommittedTx, want.CommittedTx)
			}
		}
		assertSameWorldState(t, env.baseline, p)
	}

	// The expected mix actually occurred (the workload isn't degenerate).
	codes := res1[env.baseline].Codes
	count := make(map[ledger.ValidationCode]int)
	for _, c := range codes {
		count[c]++
	}
	if count[ledger.CodeCRDTMerged] == 0 || count[ledger.CodeValid] == 0 ||
		count[ledger.CodeMVCCConflict] == 0 || count[ledger.CodeInvalidCRDT] == 0 ||
		count[ledger.CodeBadSignature] == 0 || count[ledger.CodeDuplicate] == 0 {
		t.Fatalf("workload degenerate, code mix = %v", count)
	}
}

// assertSameWorldState compares full world state, versions and persisted
// CRDT documents between two peers.
func assertSameWorldState(t *testing.T, a, b *Peer) {
	t.Helper()
	av, bv := a.DB().GetRange("", ""), b.DB().GetRange("", "")
	if len(av) != len(bv) {
		t.Fatalf("%s has %d keys, %s has %d", a.Name(), len(av), b.Name(), len(bv))
	}
	for i := range av {
		if av[i].Key != bv[i].Key || !bytes.Equal(av[i].Value, bv[i].Value) || av[i].Version != bv[i].Version {
			t.Errorf("state diverged at %q: %s=%q@%v %s=%q@%v",
				av[i].Key, a.Name(), av[i].Value, av[i].Version, b.Name(), bv[i].Value, bv[i].Version)
		}
		metaA := a.DB().GetMeta(core.MetaPrefix + av[i].Key)
		metaB := b.DB().GetMeta(core.MetaPrefix + bv[i].Key)
		if !bytes.Equal(metaA, metaB) {
			t.Errorf("persisted document diverged at %q", av[i].Key)
		}
	}
	if a.DB().Height() != b.DB().Height() {
		t.Errorf("heights diverged: %v vs %v", a.DB().Height(), b.DB().Height())
	}
}

// TestCommitTimingsRecorded checks every pipeline stage reports latencies.
func TestCommitTimingsRecorded(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	tx := env.endorseTx(t, "tx1", "iot", "record", "dev1", "15")
	if _, err := env.peer.CommitBlock(makeBlock(t, env.peer, []*ledger.Transaction{tx})); err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for _, s := range env.peer.CommitTimings() {
		got[s.Stage] = s.Count
	}
	for _, stage := range []string{StageDecode, StageDedup, StageEndorse, StageMerge, StageMVCC, StageApply, StageAppend} {
		if got[stage] != 1 {
			t.Errorf("stage %q observed %d times, want 1 (all: %v)", stage, got[stage], got)
		}
	}
}

// TestParallelCommitMatchesKnownResults re-runs the seed's serial commit
// scenarios through a fully parallel pipeline.
func TestParallelCommitMatchesKnownResults(t *testing.T) {
	env := newPipelineEnv(t, []CommitterConfig{{Workers: 8, StateShards: 8}})
	env.install(t, "plain", plainChaincode())
	p := env.variants[0]
	txs := []*ledger.Transaction{
		env.endorseTx(t, "t1", "plain", "put", "k", "1"),
		env.endorseTx(t, "t2", "plain", "put", "k", "2"),
		env.endorseTx(t, "t3", "plain", "put", "k", "3"),
	}
	res, err := p.CommitBlock(makeBlock(t, env.baseline, txs))
	if err != nil {
		t.Fatal(err)
	}
	want := []ledger.ValidationCode{ledger.CodeValid, ledger.CodeMVCCConflict, ledger.CodeMVCCConflict}
	if !reflect.DeepEqual(res.Codes, want) {
		t.Fatalf("codes = %v, want %v", res.Codes, want)
	}
}
