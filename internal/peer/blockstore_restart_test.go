package peer

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
)

// newPeerSharing issues a new peer under the env's CA/MSP, so blocks
// endorsed in this env re-validate on it — what SyncFrom requires.
func (e *testEnv) newPeerSharing(t *testing.T, name string, committer CommitterConfig) *Peer {
	t.Helper()
	signer, err := e.ca.Issue(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Name: name, MSPID: "Org1", Channels: []string{"ch1"},
		EnableCRDT: true, Committer: committer,
	}, signer, e.msp)
	if err != nil {
		t.Fatal(err)
	}
	p.InstallChaincode("iot", iotChaincode(), endorse.MustParse("'Org1.member'"))
	return p
}

// TestRestartedPeerServesSyncFrom is the acceptance test for the durable
// block store's history-serving half: kill + restart a disk-backed peer,
// then have a FRESH peer catch up from it starting at block 0 — the
// pre-restart bodies come off the restarted peer's disk, and the fresh
// peer re-validates everything, ending byte-identical.
func TestRestartedPeerServesSyncFrom(t *testing.T) {
	dir := t.TempDir()
	committer := CommitterConfig{Backend: BackendDisk, DataDir: dir}
	env := newEnvWithCommitter(t, true, committer)
	env.install(t, "iot", iotChaincode())
	const n = 3
	blocks := commitReadingBlocks(t, env, n, 1)
	before := snapshotState(env.peer, "crdt/dev1")
	if err := env.peer.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new peer over the same data directory, under the same
	// CA/MSP so its history stays verifiable by others.
	restarted := env.newPeerSharing(t, "Org1.peer0", committer)
	defer restarted.Close()

	// The restarted peer's chain is checkpointed but backed by the block
	// store: the full pre-restart history, genesis included, is servable.
	if got := restarted.Chain().FirstNumber(); got != 0 {
		t.Fatalf("restarted FirstNumber = %d, want 0 (block-store-backed chain)", got)
	}
	if g := restarted.Genesis(); g == nil || g.Header.Number != 0 {
		t.Fatal("restarted peer cannot serve its genesis block")
	}
	for _, want := range blocks {
		got, err := restarted.Chain().Get(want.Header.Number)
		if err != nil {
			t.Fatalf("restarted peer cannot serve block %d: %v", want.Header.Number, err)
		}
		if !bytes.Equal(got.HeaderHash(), want.HeaderHash()) {
			t.Fatalf("block %d served with a different header", want.Header.Number)
		}
		if len(got.Metadata.ValidationCodes) != len(want.Transactions) {
			t.Fatalf("block %d served without its validation codes", want.Header.Number)
		}
	}

	// A fresh (in-memory) peer syncs the whole chain from the restarted
	// one, re-validating every block, and converges to the same state.
	fresh := env.newPeerSharing(t, "Org1.peer1", CommitterConfig{})
	defer fresh.Close()
	if err := fresh.SyncFrom(restarted); err != nil {
		t.Fatalf("SyncFrom(restarted): %v", err)
	}
	if got, want := fresh.Chain().Height(), restarted.Chain().Height(); got != want {
		t.Fatalf("synced chain height = %d, want %d", got, want)
	}
	if err := fresh.Chain().Verify(); err != nil {
		t.Fatalf("synced chain verify: %v", err)
	}
	after := snapshotState(fresh, "crdt/dev1")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("synced state diverged from the pre-restart source:\nbefore %v\nafter  %v", before, after)
	}
}

// mixedChaincode writes one good CRDT delta to dev1 and one unparseable
// delta to dev2: the transaction fails with INVALID_CRDT, but its intact
// dev1 delta still extends that key's document (DESIGN.md §5) — the
// recovery paths must reproduce exactly that.
func mixedChaincode() chaincode.Chaincode {
	return chaincode.Func(func(stub chaincode.Stub) error {
		_, params := stub.Function()
		good := []byte(`{"tempReadings":[{"temperature":"` + params[0] + `"}]}`)
		if err := stub.PutCRDT("dev1", good); err != nil {
			return err
		}
		return stub.PutCRDT("dev2", []byte(`}{ not a delta`))
	})
}

// commitMixedHistory commits one INVALID_CRDT block followed by clean
// reading blocks, returning the expected code of the first transaction.
func commitMixedHistory(t *testing.T, env *testEnv) {
	t.Helper()
	env.install(t, "mixed", mixedChaincode())
	tx := env.endorseTx(t, "tx-mixed", "mixed", "record", "7")
	res, err := env.peer.CommitBlock(makeBlock(t, env.peer, []*ledger.Transaction{tx}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeInvalidCRDT {
		t.Fatalf("mixed tx code = %v, want INVALID_CRDT", res.Codes[0])
	}
	// The next clean block's merge seeds from the grown dev1 document, so
	// the failed transaction's good delta reaches the committed value.
	commitReadingBlocks(t, env, 2, env.peer.Height()+1)
}

// TestRestartedPeerRebuildStateByteIdentical is the acceptance test for
// the replay half: after kill + restart, RebuildState replays the full
// persisted chain — including an INVALID_CRDT transaction whose good
// delta must still extend its key's document — and reproduces the live
// pre-restart world state byte for byte.
func TestRestartedPeerRebuildStateByteIdentical(t *testing.T) {
	dir := t.TempDir()
	committer := CommitterConfig{Backend: BackendDisk, DataDir: dir}
	env := newEnvWithCommitter(t, true, committer)
	env.install(t, "iot", iotChaincode())
	commitReadingBlocks(t, env, 2, 1)
	commitMixedHistory(t, env)
	before := snapshotState(env.peer, "crdt/dev1", "crdt/dev2")
	height := env.peer.Height()
	if err := env.peer.Close(); err != nil {
		t.Fatal(err)
	}

	restarted := newEnvWithCommitter(t, true, committer)
	restarted.install(t, "iot", iotChaincode())
	p := restarted.peer
	defer p.Close()
	if got := p.Height(); got != height {
		t.Fatalf("resumed height = %d, want %d", got, height)
	}
	if err := p.RebuildState(); err != nil {
		t.Fatalf("RebuildState after restart: %v", err)
	}
	if got := p.Height(); got != height {
		t.Fatalf("rebuilt height = %d, want %d", got, height)
	}
	after := snapshotState(p, "crdt/dev1", "crdt/dev2")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("rebuilt state diverged from the live pre-restart state:\nbefore %v\nafter  %v", before, after)
	}
	// Duplicate screening was rebuilt along with the state.
	dup := restarted.endorseTx(t, "tx-mixed", "iot", "record", "dev1", "0")
	num, hash := p.Chain().LastRef()
	res, err := p.CommitBlock(makeBlockAt(t, num, hash, []*ledger.Transaction{dup}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeDuplicate {
		t.Fatalf("replayed tx ID recommitted with code %v, want DUPLICATE_TXID", res.Codes[0])
	}
}

// TestRebuildStateReproducesInvalidCRDTHistory pins the same determinism
// on the in-memory chain path (no restart involved): replay used to skip
// INVALID_CRDT transactions entirely, silently dropping their intact
// deltas from the rebuilt documents.
func TestRebuildStateReproducesInvalidCRDTHistory(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	commitReadingBlocks(t, env, 1, 1)
	commitMixedHistory(t, env)
	before := snapshotState(env.peer, "crdt/dev1", "crdt/dev2")
	if err := env.peer.RebuildState(); err != nil {
		t.Fatal(err)
	}
	after := snapshotState(env.peer, "crdt/dev1", "crdt/dev2")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("rebuilt state diverged:\nbefore %v\nafter  %v", before, after)
	}
}

// TestBlockLogGapReplayedOnOpen crashes "between" the block append and the
// state apply — simulated in the extreme by wiping the state store
// entirely — and requires opening to replay the gap from the block log:
// the ledger is the recovery root, the world state a rebuildable cache.
func TestBlockLogGapReplayedOnOpen(t *testing.T) {
	dir := t.TempDir()
	committer := CommitterConfig{Backend: BackendDisk, DataDir: dir}
	env := newEnvWithCommitter(t, true, committer)
	env.install(t, "iot", iotChaincode())
	const n = 3
	blocks := commitReadingBlocks(t, env, n, 1)
	before := snapshotState(env.peer, "crdt/dev1")
	if err := env.peer.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"state.log", "state.snap"} {
		if err := os.Remove(filepath.Join(dir, "ch1", name)); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}

	restarted := newEnvWithCommitter(t, true, committer)
	restarted.install(t, "iot", iotChaincode())
	p := restarted.peer
	defer p.Close()
	if got := p.Height(); got != n {
		t.Fatalf("replayed height = %d, want %d", got, n)
	}
	after := snapshotState(p, "crdt/dev1")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("gap replay diverged from the committed state:\nbefore %v\nafter  %v", before, after)
	}
	// Re-delivered history fast-forwards, and fresh blocks commit.
	for _, b := range blocks {
		res, err := p.CommitBlock(b)
		if err != nil || !res.FastForwarded {
			t.Fatalf("re-delivering block %d: res=%+v err=%v", b.Header.Number, res, err)
		}
	}
	commitReadingBlocks(t, restarted, 1, n+1)
	if got := p.Height(); got != n+1 {
		t.Fatalf("height after post-replay commit = %d, want %d", got, n+1)
	}
}

// truncateLastFrame removes the final CRC frame from a framed log file by
// walking the length prefixes.
func truncateLastFrame(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var off, prev int64
	for off < int64(len(data)) {
		prev = off
		length := binary.LittleEndian.Uint32(data[off : off+4])
		off += 8 + int64(length)
	}
	if err := os.Truncate(path, prev); err != nil {
		t.Fatal(err)
	}
}

// TestNewRefusesBlockLogBehindState covers the two unrecoverable shapes —
// durably committed bodies that are gone cannot be re-derived, so opening
// must refuse loudly (with PersistBlocksOff as the documented escape
// hatch) rather than continue with a hole in the ledger.
func TestNewRefusesBlockLogBehindState(t *testing.T) {
	newDiskEnv := func(t *testing.T) (string, CommitterConfig) {
		dir := t.TempDir()
		committer := CommitterConfig{Backend: BackendDisk, DataDir: dir}
		env := newEnvWithCommitter(t, true, committer)
		env.install(t, "iot", iotChaincode())
		commitReadingBlocks(t, env, 2, 1)
		if err := env.peer.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, committer
	}
	newPeer := func(committer CommitterConfig) (*Peer, error) {
		ca, err := cryptoid.NewCA("Org1")
		if err != nil {
			t.Fatal(err)
		}
		signer, err := ca.Issue("Org1.peer0")
		if err != nil {
			t.Fatal(err)
		}
		return New(Config{
			Name: "Org1.peer0", MSPID: "Org1", Channels: []string{"ch1"},
			EnableCRDT: true, Committer: committer,
		}, signer, cryptoid.NewMSP())
	}

	t.Run("missing-block-log", func(t *testing.T) {
		dir, committer := newDiskEnv(t)
		if err := os.RemoveAll(filepath.Join(dir, "ch1", "blocks")); err != nil {
			t.Fatal(err)
		}
		// Explicitly requested block persistence cannot be satisfied: the
		// committed bodies are gone for good.
		committer.PersistBlocks = PersistBlocksOn
		_, err := newPeer(committer)
		if err == nil {
			t.Fatal("New accepted PersistBlocksOn over a checkpointed state with no block log")
		}
		if !strings.Contains(err.Error(), "PersistBlocksOff") {
			t.Fatalf("refusal does not name the escape hatch: %v", err)
		}
		// Auto mode adopts the store's existing shape instead: a state
		// without a block log predates block persistence (the upgrade
		// path), so the peer resumes checkpoint-only like before.
		committer.PersistBlocks = PersistBlocksAuto
		p, err := newPeer(committer)
		if err != nil {
			t.Fatalf("Auto adoption of a pre-block-store datadir: %v", err)
		}
		defer p.Close()
		if got := p.Height(); got != 2 {
			t.Fatalf("adopted store resumed height = %d, want 2", got)
		}
		if got := p.Chain().FirstNumber(); got != 3 {
			t.Fatalf("adopted store FirstNumber = %d, want 3 (bare checkpointed chain)", got)
		}
		// The explicit Off spelling works too.
		committer.PersistBlocks = PersistBlocksOff
		p2, err := newPeer(committer)
		if err != nil {
			t.Fatalf("PersistBlocksOff fallback: %v", err)
		}
		p2.Close()
	})

	t.Run("truncated-block-log", func(t *testing.T) {
		dir, committer := newDiskEnv(t)
		truncateLastFrame(t, filepath.Join(dir, "ch1", "blocks", "blocks.log"))
		if err := os.Remove(filepath.Join(dir, "ch1", "blocks", "blocks.idx")); err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
		if _, err := newPeer(committer); err == nil {
			t.Fatal("New accepted a block log truncated below the state checkpoint")
		}
	})
}
