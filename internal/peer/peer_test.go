package peer

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/orderer"
)

// testEnv wires one org CA, an MSP, one peer and a client signer.
type testEnv struct {
	ca     *cryptoid.CA
	msp    *cryptoid.MSP
	peer   *Peer
	client *cryptoid.Signer
}

func newEnv(t *testing.T, enableCRDT bool) *testEnv {
	t.Helper()
	return newEnvWithCommitter(t, enableCRDT, CommitterConfig{})
}

// newEnvWithCommitter is newEnv with an explicit committer configuration
// (backend selection, worker pool).
func newEnvWithCommitter(t *testing.T, enableCRDT bool, committer CommitterConfig) *testEnv {
	t.Helper()
	return newEnvChannels(t, enableCRDT, committer, "ch1")
}

// newEnvChannels is newEnvWithCommitter with the peer joining an explicit
// channel list (the first is the default channel).
func newEnvChannels(t *testing.T, enableCRDT bool, committer CommitterConfig, channels ...string) *testEnv {
	t.Helper()
	ca, err := cryptoid.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	msp := cryptoid.NewMSP()
	msp.AddOrg("Org1", ca.PublicKey())
	peerSigner, err := ca.Issue("Org1.peer0")
	if err != nil {
		t.Fatal(err)
	}
	clientSigner, err := ca.Issue("client0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Name:       "Org1.peer0",
		MSPID:      "Org1",
		Channels:   channels,
		EnableCRDT: enableCRDT,
		Committer:  committer,
	}, peerSigner, msp)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{ca: ca, msp: msp, peer: p, client: clientSigner}
}

// iotChaincode reads a device key and appends a reading via PutCRDT.
func iotChaincode() chaincode.Chaincode {
	return chaincode.Func(func(stub chaincode.Stub) error {
		_, params := stub.Function()
		device, reading := params[0], params[1]
		if _, err := stub.GetState(device); err != nil {
			return err
		}
		delta, err := json.Marshal(map[string]any{
			"tempReadings": []any{map[string]any{"temperature": reading}},
		})
		if err != nil {
			return err
		}
		return stub.PutCRDT(device, delta)
	})
}

func (e *testEnv) install(t *testing.T, name string, cc chaincode.Chaincode) {
	t.Helper()
	e.peer.InstallChaincode(name, cc, endorse.MustParse("'Org1.member'"))
}

// endorseTx simulates one proposal on the peer and assembles the envelope.
func (e *testEnv) endorseTx(t *testing.T, txID, ccName string, args ...string) *ledger.Transaction {
	t.Helper()
	return e.endorseTxOn(t, "ch1", txID, ccName, args...)
}

// endorseTxOn is endorseTx against an explicit channel.
func (e *testEnv) endorseTxOn(t *testing.T, channelID, txID, ccName string, args ...string) *ledger.Transaction {
	t.Helper()
	creator, err := e.client.Identity.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rawArgs := make([][]byte, len(args))
	for i, a := range args {
		rawArgs[i] = []byte(a)
	}
	resp, err := e.peer.Endorse(Proposal{
		TxID: txID, ChannelID: channelID, Chaincode: ccName, Args: rawArgs, Creator: creator,
	})
	if err != nil {
		t.Fatalf("endorse %s on %s: %v", txID, channelID, err)
	}
	return &ledger.Transaction{
		ID:           txID,
		ChannelID:    channelID,
		Chaincode:    ccName,
		Creator:      creator,
		Args:         rawArgs,
		RWSet:        resp.RWSet,
		Endorsements: []ledger.Endorsement{{Endorser: resp.Endorser, Signature: resp.Signature}},
	}
}

// makeBlock assembles a hash-chained block after the peer's default
// channel's chain resume point (its last block, or its checkpoint when
// restored from disk).
func makeBlock(t *testing.T, p *Peer, txs []*ledger.Transaction) *ledger.Block {
	t.Helper()
	return makeBlockOn(t, p, "", txs)
}

// makeBlockOn is makeBlock against an explicit channel.
func makeBlockOn(t *testing.T, p *Peer, channelID string, txs []*ledger.Transaction) *ledger.Block {
	t.Helper()
	chain := p.Chain()
	if channelID != "" {
		var err error
		chain, err = p.ChainOn(channelID)
		if err != nil {
			t.Fatal(err)
		}
	}
	num, hash := chain.LastRef()
	a := orderer.NewAssemblerAt(num, hash)
	block, err := a.Assemble(orderer.Batch{Transactions: txs, Reason: orderer.CutMaxMessages})
	if err != nil {
		t.Fatal(err)
	}
	return block
}

func TestEndorseDoesNotTouchState(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	env.endorseTx(t, "tx1", "iot", "record", "dev1", "21")
	if env.peer.DB().KeyCount() != 0 {
		t.Fatal("endorsement modified world state")
	}
}

func TestEndorseRejectsUnknownChaincode(t *testing.T) {
	env := newEnv(t, true)
	creator, _ := env.client.Identity.Marshal()
	_, err := env.peer.Endorse(Proposal{TxID: "t", Chaincode: "nope", Creator: creator})
	if err == nil {
		t.Fatal("unknown chaincode endorsed")
	}
}

func TestEndorseRejectsBadCreator(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	if _, err := env.peer.Endorse(Proposal{TxID: "t", Chaincode: "iot", Creator: []byte("junk")}); err == nil {
		t.Fatal("junk creator endorsed")
	}
	// An identity from an untrusted CA must also fail.
	foreignCA, err := cryptoid.NewCA("Mallory")
	if err != nil {
		t.Fatal(err)
	}
	mallory, err := foreignCA.Issue("m")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := mallory.Identity.Marshal()
	if _, err := env.peer.Endorse(Proposal{TxID: "t", Chaincode: "iot", Creator: raw}); err == nil {
		t.Fatal("untrusted creator endorsed")
	}
}

func TestEndorseFailsWhenChaincodeErrors(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "bad", chaincode.Func(func(chaincode.Stub) error {
		return fmt.Errorf("boom")
	}))
	creator, _ := env.client.Identity.Marshal()
	if _, err := env.peer.Endorse(Proposal{TxID: "t", Chaincode: "bad", Creator: creator}); err == nil {
		t.Fatal("failing chaincode endorsed")
	}
}

func TestStockPeerDropsCRDTFlag(t *testing.T) {
	env := newEnv(t, false) // stock Fabric
	env.install(t, "iot", iotChaincode())
	tx := env.endorseTx(t, "tx1", "iot", "record", "dev1", "21")
	if tx.RWSet.HasCRDTWrites() {
		t.Fatal("stock peer kept the CRDT flag")
	}
}

func TestCommitCRDTBlockMergesAll(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	// Three conflicting txs (same key, same snapshot) in one block.
	txs := []*ledger.Transaction{
		env.endorseTx(t, "tx1", "iot", "record", "dev1", "15"),
		env.endorseTx(t, "tx2", "iot", "record", "dev1", "20"),
		env.endorseTx(t, "tx3", "iot", "record", "dev1", "25"),
	}
	block := makeBlock(t, env.peer, txs)
	res, err := env.peer.CommitBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	for i, code := range res.Codes {
		if code != ledger.CodeCRDTMerged {
			t.Fatalf("tx%d code = %v, want CRDT_MERGED", i+1, code)
		}
	}
	vv, ok := env.peer.DB().Get("dev1")
	if !ok {
		t.Fatal("dev1 not committed")
	}
	var doc map[string]any
	if err := json.Unmarshal(vv.Value, &doc); err != nil {
		t.Fatal(err)
	}
	want := []any{
		map[string]any{"temperature": "15"},
		map[string]any{"temperature": "20"},
		map[string]any{"temperature": "25"},
	}
	if !reflect.DeepEqual(doc["tempReadings"], want) {
		t.Fatalf("merged doc = %v, want %v", doc["tempReadings"], want)
	}
}

func TestCommitStockBlockFailsConflicts(t *testing.T) {
	env := newEnv(t, false)
	env.install(t, "iot", iotChaincode())
	txs := []*ledger.Transaction{
		env.endorseTx(t, "tx1", "iot", "record", "dev1", "15"),
		env.endorseTx(t, "tx2", "iot", "record", "dev1", "20"),
		env.endorseTx(t, "tx3", "iot", "record", "dev1", "25"),
	}
	block := makeBlock(t, env.peer, txs)
	res, err := env.peer.CommitBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	want := []ledger.ValidationCode{ledger.CodeValid, ledger.CodeMVCCConflict, ledger.CodeMVCCConflict}
	if !reflect.DeepEqual(res.Codes, want) {
		t.Fatalf("codes = %v, want %v (only the first conflicting tx commits on Fabric)", res.Codes, want)
	}
	if res.CommittedTx != 1 {
		t.Fatalf("committed = %d, want 1", res.CommittedTx)
	}
}

func TestCommitRejectsBadEndorsementSignature(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	tx := env.endorseTx(t, "tx1", "iot", "record", "dev1", "15")
	tx.Endorsements[0].Signature[0] ^= 0xff
	block := makeBlock(t, env.peer, []*ledger.Transaction{tx})
	res, err := env.peer.CommitBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeBadSignature {
		t.Fatalf("code = %v, want BAD_SIGNATURE", res.Codes[0])
	}
	if env.peer.DB().KeyCount() != 0 {
		t.Fatal("forged tx reached the state")
	}
}

func TestCommitRejectsTamperedRWSet(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	tx := env.endorseTx(t, "tx1", "iot", "record", "dev1", "15")
	// The client tampers with the endorsed write set.
	tx.RWSet.Writes[0].Value = []byte(`{"tempReadings":[{"temperature":"999"}]}`)
	block := makeBlock(t, env.peer, []*ledger.Transaction{tx})
	res, err := env.peer.CommitBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeBadSignature {
		t.Fatalf("code = %v, want BAD_SIGNATURE (payload no longer matches)", res.Codes[0])
	}
}

func TestCommitRejectsUnsatisfiedPolicy(t *testing.T) {
	env := newEnv(t, true)
	// Policy demands Org2, which never endorses.
	env.peer.InstallChaincode("iot", iotChaincode(), endorse.MustParse("'Org2.member'"))
	tx := env.endorseTx(t, "tx1", "iot", "record", "dev1", "15")
	block := makeBlock(t, env.peer, []*ledger.Transaction{tx})
	res, err := env.peer.CommitBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeEndorsementFailure {
		t.Fatalf("code = %v, want ENDORSEMENT_POLICY_FAILURE", res.Codes[0])
	}
}

func TestCommitMarksDuplicates(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	tx := env.endorseTx(t, "dup", "iot", "record", "dev1", "15")
	// Same tx twice in one block.
	b1 := makeBlock(t, env.peer, []*ledger.Transaction{tx, tx})
	res, err := env.peer.CommitBlock(b1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeCRDTMerged || res.Codes[1] != ledger.CodeDuplicate {
		t.Fatalf("codes = %v", res.Codes)
	}
	// Same ID again in a later block.
	tx2 := env.endorseTx(t, "dup", "iot", "record", "dev1", "20")
	b2 := makeBlock(t, env.peer, []*ledger.Transaction{tx2})
	res2, err := env.peer.CommitBlock(b2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Codes[0] != ledger.CodeDuplicate {
		t.Fatalf("cross-block duplicate code = %v", res2.Codes[0])
	}
}

func TestChainStoresPristineBlocks(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	txs := []*ledger.Transaction{
		env.endorseTx(t, "tx1", "iot", "record", "dev1", "15"),
		env.endorseTx(t, "tx2", "iot", "record", "dev1", "20"),
	}
	block := makeBlock(t, env.peer, txs)
	if _, err := env.peer.CommitBlock(block); err != nil {
		t.Fatal(err)
	}
	// The chain must verify end-to-end: merge rewriting must not have
	// corrupted the stored blocks' data hashes.
	if err := env.peer.Chain().Verify(); err != nil {
		t.Fatalf("chain verify after CRDT commit: %v", err)
	}
	stored, err := env.peer.Chain().Get(1)
	if err != nil {
		t.Fatal(err)
	}
	// Stored block carries the ORIGINAL delta, not the converged doc.
	var delta map[string]any
	if err := json.Unmarshal(stored.Transactions[0].RWSet.Writes[0].Value, &delta); err != nil {
		t.Fatal(err)
	}
	if n := len(delta["tempReadings"].([]any)); n != 1 {
		t.Fatalf("stored delta has %d readings, want 1 (pristine)", n)
	}
	if stored.Metadata.ValidationCodes[0] != ledger.CodeCRDTMerged {
		t.Fatalf("stored codes = %v", stored.Metadata.ValidationCodes)
	}
}

func TestRebuildStateReproducesWorldState(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	// Commit three blocks of readings.
	for b := 0; b < 3; b++ {
		var txs []*ledger.Transaction
		for i := 0; i < 4; i++ {
			id := fmt.Sprintf("tx-%d-%d", b, i)
			txs = append(txs, env.endorseTx(t, id, "iot", "record", "dev1", fmt.Sprintf("%d", 10*b+i)))
		}
		if _, err := env.peer.CommitBlock(makeBlock(t, env.peer, txs)); err != nil {
			t.Fatal(err)
		}
	}
	before, ok := env.peer.DB().Get("dev1")
	if !ok {
		t.Fatal("dev1 missing")
	}
	if err := env.peer.RebuildState(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	after, ok := env.peer.DB().Get("dev1")
	if !ok {
		t.Fatal("dev1 missing after rebuild")
	}
	if string(before.Value) != string(after.Value) || before.Version != after.Version {
		t.Fatalf("rebuild diverged:\nbefore %s @ %v\nafter  %s @ %v",
			before.Value, before.Version, after.Value, after.Version)
	}
}

func TestCommitEvents(t *testing.T) {
	env := newEnv(t, true)
	env.install(t, "iot", iotChaincode())
	events := env.peer.Events()
	tx := env.endorseTx(t, "tx1", "iot", "record", "dev1", "15")
	if _, err := env.peer.CommitBlock(makeBlock(t, env.peer, []*ledger.Transaction{tx})); err != nil {
		t.Fatal(err)
	}
	ev := <-events
	if ev.TxID != "tx1" || ev.Code != ledger.CodeCRDTMerged || ev.BlockNum != 1 {
		t.Fatalf("event = %+v", ev)
	}
	env.peer.CloseEvents()
	if _, ok := <-events; ok {
		t.Fatal("events channel not closed")
	}
}
