package peer

import (
	"errors"
	"sync/atomic"
	"time"

	"fabriccrdt/internal/ledger"
)

// CommitPipeline drives one channel's deliver stream through the peer's
// two-stage commit pipeline until the stream closes, and returns the first
// commit error (nil on a clean run). It is the committer loop fabricnet
// runs per (peer, channel) pair; tests and embedders can feed it any
// ordered block channel.
//
// With depth <= 0 the pipeline is synchronous: each block is prepared and
// finalized back to back (exactly CommitBlockOn). With depth >= 1 the two
// stages run in separate goroutines connected by a bounded queue of
// `depth` prepared blocks: while block N is in the serialized finalize
// stage (dedup/merge/mvcc/apply/append), blocks N+1..N+depth are decoded
// and endorsement-validated ahead of it. The prepare stage reads no world
// state and finalize consumes prepared blocks strictly in delivery order,
// so commit outcomes — validation codes, world state, hash chain — are
// byte-identical at every depth (proven by TestCommitPipelineDepthDeterminism
// under -race). Each successfully overlapped block records a StageOverlap
// observation: the share of its prepare time hidden behind earlier
// finalize work.
//
// Error handling: the first failure (prepare or finalize) poisons the
// pipeline — every subsequent block is received and DISCARDED until the
// deliver channel closes. Draining is load-bearing, not cosmetic: an
// abandoned subscription must never apply permanent backpressure to the
// block source (the regression behind DESIGN.md §7's deadlock
// post-mortem). Blocks after a failure are undeliverable anyway: the hash
// chain rejects a block whose predecessor never committed.
func (p *Peer) CommitPipeline(channelID string, deliver <-chan *ledger.Block, depth int) error {
	if depth <= 0 {
		var firstErr error
		for block := range deliver {
			if firstErr != nil {
				continue // drain: see above
			}
			if _, err := p.CommitBlockOn(channelID, block); err != nil {
				firstErr = err
			}
		}
		return firstErr
	}

	cm := p.channelMetricsFor(channelID)
	prepared := make(chan *PreparedBlock, depth)
	var failed atomic.Bool
	var finalizeErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		// dead is the finalizer's OWN failure, distinct from the shared
		// flag: a prepare-stage failure on block N must not make the
		// finalizer discard blocks 1..N-1 already sitting in the queue —
		// they are valid predecessors the synchronous path would commit,
		// and dropping them would break depth-determinism (the committed
		// height, and with a durable backend the restart-resume point,
		// would depend on the depth and on scheduling).
		var dead bool
		for {
			//lint:ignore determinism stall timing only; durations feed metrics, never committed state
			idle := time.Now()
			prep, ok := <-prepared
			if !ok {
				return
			}
			stalled := time.Since(idle)
			if dead {
				continue
			}
			// The part of this block's prepare the finalizer did NOT
			// have to wait for ran hidden behind earlier blocks' commit
			// work — the pipelining payoff, visible in CommitTimings.
			if hidden := prep.prepDur - stalled; hidden > 0 {
				cm.observe(StageOverlap, hidden)
			}
			if _, err := p.FinalizeBlockOn(prep); err != nil {
				finalizeErr = err
				dead = true
				failed.Store(true)
			}
		}
	}()

	var prepareErr error
	for block := range deliver {
		if failed.Load() {
			continue // drain
		}
		prep, err := p.PrepareBlockOn(channelID, block)
		if err != nil {
			prepareErr = err
			failed.Store(true)
			continue
		}
		prepared <- prep
	}
	close(prepared)
	<-done
	return errors.Join(prepareErr, finalizeErr)
}
