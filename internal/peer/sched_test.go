package peer

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
)

// readOnlyChaincode reads a key and writes nothing.
func readOnlyChaincode() chaincode.Chaincode {
	return chaincode.Func(func(stub chaincode.Stub) error {
		_, params := stub.Function()
		_, err := stub.GetState(params[0])
		return err
	})
}

// assertSameChain compares the two peers' full chains byte for byte —
// header hashes and marshaled block bodies, validation-code metadata
// included.
func assertSameChain(t *testing.T, a, b *Peer) {
	t.Helper()
	if ah, bh := a.Chain().Height(), b.Chain().Height(); ah != bh {
		t.Fatalf("chain heights diverged: %s=%d %s=%d", a.Name(), ah, b.Name(), bh)
	}
	for n := uint64(0); n < a.Chain().Height(); n++ {
		ba, err := a.Chain().Get(n)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.Chain().Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.HeaderHash(), bb.HeaderHash()) {
			t.Errorf("block %d header hash diverged between %s and %s", n, a.Name(), b.Name())
		}
		rawA, err := ba.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		rawB, err := bb.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rawA, rawB) {
			t.Errorf("block %d bytes diverged between %s and %s", n, a.Name(), b.Name())
		}
	}
}

// TestScheduledFinalizeDeterminism is the tentpole's guarantee: the
// dependency-scheduled finalize produces byte-identical state, validation
// codes and block hashes at every worker count, across randomized conflict
// mixes — CRDT chains, MVCC winners and losers, read-only transactions,
// invalid deltas, duplicates and forged signatures. The serial variant
// (FinalizeWorkers 1) pins the legacy path as the reference next to the
// baseline. Runs under -race via `make race` / CI, which is what makes the
// merge-beside-MVCC concurrency claim trustworthy.
func TestScheduledFinalizeDeterminism(t *testing.T) {
	env := newPipelineEnv(t, []CommitterConfig{
		{Workers: 4, FinalizeWorkers: 1}, // legacy serial finalize
		{Workers: 4, FinalizeWorkers: 2},
		{Workers: 4, FinalizeWorkers: 4},
		{Workers: 8, FinalizeWorkers: 8},
	})
	env.install(t, "iot", multiKeyCRDTChaincode())
	env.install(t, "plain", plainChaincode())
	env.install(t, "bad", badCRDTChaincode())
	env.install(t, "reader", readOnlyChaincode())

	rng := rand.New(rand.NewSource(99))
	txNo := 0
	makeTxs := func(n int) []*ledger.Transaction {
		var txs []*ledger.Transaction
		for i := 0; i < n; i++ {
			txNo++
			id := fmt.Sprintf("tx-%d", txNo)
			switch r := rng.Intn(10); {
			case r < 4: // CRDT chain appends over a small device pool
				devA := fmt.Sprintf("dev%d", rng.Intn(3))
				devB := fmt.Sprintf("dev%d", rng.Intn(3))
				txs = append(txs, env.endorseTx(t, id, "iot", "append", devA, devB, id))
			case r < 7: // plain writes over a small key pool: MVCC conflicts
				key := fmt.Sprintf("k%d", rng.Intn(4))
				txs = append(txs, env.endorseTx(t, id, "plain", "put", key, id))
			case r < 8: // read-only
				txs = append(txs, env.endorseTx(t, id, "reader", "get", fmt.Sprintf("k%d", rng.Intn(4))))
			case r < 9: // invalid CRDT delta inside a device chain
				txs = append(txs, env.endorseTx(t, id, "bad", "poison", fmt.Sprintf("dev%d", rng.Intn(3)), "junk"))
			default: // forged signature
				forged := env.endorseTx(t, id, "plain", "put", fmt.Sprintf("k%d", rng.Intn(4)), id)
				forged.Endorsements[0].Signature[0] ^= 0xff
				txs = append(txs, forged)
			}
		}
		if len(txs) > 1 && rng.Intn(2) == 0 {
			txs = append(txs, txs[rng.Intn(len(txs))]) // in-block duplicate
		}
		return txs
	}

	for blockRound := 0; blockRound < 4; blockRound++ {
		txs := makeTxs(12 + rng.Intn(24))
		block := makeBlock(t, env.baseline, txs)
		want, err := env.baseline.CommitBlock(block)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range env.variants {
			got, err := p.CommitBlock(block)
			if err != nil {
				t.Fatalf("peer %s: %v", p.Name(), err)
			}
			if !reflect.DeepEqual(want.Codes, got.Codes) {
				t.Errorf("block %d: %s codes = %v, baseline %v", blockRound, p.Name(), got.Codes, want.Codes)
			}
			if !reflect.DeepEqual(want.MergedKeys, got.MergedKeys) {
				t.Errorf("block %d: %s merged keys = %v, baseline %v", blockRound, p.Name(), got.MergedKeys, want.MergedKeys)
			}
			if want.CommittedTx != got.CommittedTx {
				t.Errorf("block %d: %s committed %d, baseline %d", blockRound, p.Name(), got.CommittedTx, want.CommittedTx)
			}
		}
	}
	for _, p := range env.variants {
		assertSameWorldState(t, env.baseline, p)
		assertSameChain(t, env.baseline, p)
	}
}

// commitEverywhere commits one block on the baseline and every variant and
// asserts identical results all around, returning the baseline's result.
func commitEverywhere(t *testing.T, env *pipelineEnv, txs []*ledger.Transaction) CommitResult {
	t.Helper()
	block := makeBlock(t, env.baseline, txs)
	want, err := env.baseline.CommitBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range env.variants {
		got, err := p.CommitBlock(block)
		if err != nil {
			t.Fatalf("peer %s: %v", p.Name(), err)
		}
		if !reflect.DeepEqual(want.Codes, got.Codes) {
			t.Errorf("%s codes = %v, baseline %v", p.Name(), got.Codes, want.Codes)
		}
		assertSameWorldState(t, env.baseline, p)
	}
	return want
}

// TestScheduledFinalizeAllConflicting: every transaction writes the same
// plain key — the schedule degenerates to one transaction per wave (fully
// serial) and must neither deadlock nor change the single-winner outcome.
func TestScheduledFinalizeAllConflicting(t *testing.T) {
	env := newPipelineEnv(t, []CommitterConfig{{Workers: 4, FinalizeWorkers: 4}})
	env.install(t, "plain", plainChaincode())
	var txs []*ledger.Transaction
	for i := 0; i < 20; i++ {
		txs = append(txs, env.endorseTx(t, fmt.Sprintf("hot-%d", i), "plain", "put", "hot", fmt.Sprintf("%d", i)))
	}
	res := commitEverywhere(t, env, txs)
	valid := 0
	for _, c := range res.Codes {
		if c == ledger.CodeValid {
			valid++
		}
	}
	if valid != 1 || res.Codes[0] != ledger.CodeValid {
		t.Fatalf("valid = %d (first=%v), want exactly the first writer", valid, res.Codes[0])
	}
}

// TestScheduledFinalizeAllIndependent: disjoint keys — one wave, every
// transaction commits.
func TestScheduledFinalizeAllIndependent(t *testing.T) {
	env := newPipelineEnv(t, []CommitterConfig{{Workers: 4, FinalizeWorkers: 4}})
	env.install(t, "plain", plainChaincode())
	var txs []*ledger.Transaction
	for i := 0; i < 20; i++ {
		txs = append(txs, env.endorseTx(t, fmt.Sprintf("ind-%d", i), "plain", "put", fmt.Sprintf("k%d", i), "v"))
	}
	res := commitEverywhere(t, env, txs)
	if res.CommittedTx != 20 {
		t.Fatalf("committed = %d, want all 20", res.CommittedTx)
	}
}

// TestScheduledFinalizeReadOnly: read-only transactions commit as valid and
// order correctly around a writer of the same key.
func TestScheduledFinalizeReadOnly(t *testing.T) {
	env := newPipelineEnv(t, []CommitterConfig{{Workers: 4, FinalizeWorkers: 4}})
	env.install(t, "plain", plainChaincode())
	env.install(t, "reader", readOnlyChaincode())
	// Seed the key, then a block of readers around a writer: the readers
	// endorsed against the same snapshot as the writer conflict once its
	// write lands first in the block.
	commitEverywhere(t, env, []*ledger.Transaction{env.endorseTx(t, "seed", "plain", "put", "acct", "1")})
	txs := []*ledger.Transaction{
		env.endorseTx(t, "w", "plain", "put", "acct", "2"),
		env.endorseTx(t, "r1", "reader", "get", "acct"),
		env.endorseTx(t, "r2", "reader", "get", "acct"),
		env.endorseTx(t, "r3", "reader", "get", "other"), // independent: absent key
	}
	res := commitEverywhere(t, env, txs)
	want := []ledger.ValidationCode{ledger.CodeValid, ledger.CodeMVCCConflict, ledger.CodeMVCCConflict, ledger.CodeValid}
	if !reflect.DeepEqual(res.Codes, want) {
		t.Fatalf("codes = %v, want %v", res.Codes, want)
	}
}

// TestScheduledInvalidCRDTInChain: an INVALID_CRDT transaction in the
// middle of a document chain fails, but its intact delta still extends the
// document (the PR 5 replay semantics) — under the scheduled finalize too.
func TestScheduledInvalidCRDTInChain(t *testing.T) {
	env := newPipelineEnv(t, []CommitterConfig{{Workers: 4, FinalizeWorkers: 4}})
	env.install(t, "iot", multiKeyCRDTChaincode())
	env.install(t, "bad", badCRDTChaincode())
	txs := []*ledger.Transaction{
		env.endorseTx(t, "good-1", "iot", "append", "dev0", "dev1", "before"),
		// Intact delta to dev0, unparseable delta to junk: the tx fails,
		// the dev0 chain keeps its contribution.
		env.endorseTx(t, "bad-1", "bad", "poison", "dev0", "junk"),
		env.endorseTx(t, "good-2", "iot", "append", "dev0", "dev2", "after"),
	}
	res := commitEverywhere(t, env, txs)
	want := []ledger.ValidationCode{ledger.CodeCRDTMerged, ledger.CodeInvalidCRDT, ledger.CodeCRDTMerged}
	if !reflect.DeepEqual(res.Codes, want) {
		t.Fatalf("codes = %v, want %v", res.Codes, want)
	}
	for _, p := range append([]*Peer{env.baseline}, env.variants...) {
		vv, ok := p.DB().Get("dev0")
		if !ok {
			t.Fatalf("%s: dev0 missing", p.Name())
		}
		// The converged document carries the failed transaction's intact
		// "ok" field alongside both good appends.
		if doc := string(vv.Value); !strings.Contains(doc, `"ok"`) ||
			!strings.Contains(doc, "before") || !strings.Contains(doc, "after") {
			t.Fatalf("%s: dev0 doc lost a chain contribution: %s", p.Name(), doc)
		}
	}
}

// TestCrossChannelInvokeRejected is the per-channel installation
// regression test: a chaincode installed on one channel is unknown on the
// peer's other channels, at endorsement and at commit.
func TestCrossChannelInvokeRejected(t *testing.T) {
	// The endorser peer has the chaincode everywhere and produces a valid
	// ch1 transaction.
	env := newEnvChannels(t, true, CommitterConfig{}, "ch1", "ch2")
	env.install(t, "iot", iotChaincode())

	// The committer peer installs it on ch2 ONLY.
	signer, err := env.ca.Issue("Org1.peer1")
	if err != nil {
		t.Fatal(err)
	}
	committer, err := New(Config{
		Name: "Org1.peer1", MSPID: "Org1", Channels: []string{"ch1", "ch2"},
		EnableCRDT: true,
	}, signer, env.msp)
	if err != nil {
		t.Fatal(err)
	}
	if err := committer.InstallChaincodeOn("ch2", "iot", iotChaincode(), endorse.MustParse("'Org1.member'")); err != nil {
		t.Fatal(err)
	}
	if err := committer.InstallChaincodeOn("nope", "iot", iotChaincode(), endorse.MustParse("'Org1.member'")); !errors.Is(err, ErrUnknownChannel) {
		t.Fatalf("install on unjoined channel: err = %v, want ErrUnknownChannel", err)
	}

	// Endorsement on the channel without the chaincode is refused.
	creator, err := env.client.Identity.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := committer.Endorse(Proposal{
		TxID: "p1", ChannelID: "ch1", Chaincode: "iot",
		Args: [][]byte{[]byte("record"), []byte("dev1"), []byte("20")}, Creator: creator,
	}); !errors.Is(err, ErrUnknownChaincode) {
		t.Fatalf("endorse on ch1: err = %v, want ErrUnknownChaincode", err)
	}

	// A validly endorsed ch1 transaction fails endorsement validation on
	// the committer, whose ch1 has no such chaincode...
	tx1 := env.endorseTxOn(t, "ch1", "tx1", "iot", "record", "dev1", "20")
	res, err := committer.CommitBlockOn("ch1", makeBlockOn(t, committer, "ch1", []*ledger.Transaction{tx1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeEndorsementFailure {
		t.Fatalf("ch1 commit code = %v, want CodeEndorsementFailure", res.Codes[0])
	}
	// ...while the same chaincode on ch2 — where it IS installed — merges.
	tx2 := env.endorseTxOn(t, "ch2", "tx2", "iot", "record", "dev1", "20")
	res, err = committer.CommitBlockOn("ch2", makeBlockOn(t, committer, "ch2", []*ledger.Transaction{tx2}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Codes[0] != ledger.CodeCRDTMerged {
		t.Fatalf("ch2 commit code = %v, want CodeCRDTMerged", res.Codes[0])
	}
}

// TestSlowEventSubscriberNeverBlocksCommit: the commit-side emit hands
// events to per-listener unbounded queues — a subscriber that never reads
// cannot stall it, and an attentive subscriber still sees every event in
// order.
func TestSlowEventSubscriberNeverBlocksCommit(t *testing.T) {
	env := newEnv(t, true)
	stuck := env.peer.Events() // not read until the very end
	reader := env.peer.Events()

	const n = 10000 // far beyond any fixed channel buffer
	emitted := make(chan struct{})
	go func() {
		defer close(emitted)
		for i := 0; i < n; i++ {
			env.peer.emit(CommitEvent{TxID: fmt.Sprintf("t%d", i)})
		}
	}()
	select {
	case <-emitted:
	case <-time.After(30 * time.Second):
		t.Fatal("emit blocked on an unread subscriber")
	}
	env.peer.CloseEvents()

	i := 0
	for ev := range reader {
		if want := fmt.Sprintf("t%d", i); ev.TxID != want {
			t.Fatalf("event %d = %q, want %q (order lost)", i, ev.TxID, want)
		}
		i++
	}
	if i != n {
		t.Fatalf("reader saw %d events, want %d", i, n)
	}
	got := 0
	for range stuck {
		got++
	}
	if got != n {
		t.Fatalf("stuck subscriber drained %d events, want %d", got, n)
	}
}

// TestCommitAggregateAndSchedulerCounters: the skew-free timing rollup and
// the scheduler's conflict counters are populated by a scheduled commit.
func TestCommitAggregateAndSchedulerCounters(t *testing.T) {
	env := newEnvWithCommitter(t, true, CommitterConfig{Workers: 2, FinalizeWorkers: 2})
	env.install(t, "plain", plainChaincode())
	txs := []*ledger.Transaction{
		env.endorseTx(t, "a", "plain", "put", "k1", "1"),
		env.endorseTx(t, "b", "plain", "put", "k2", "2"),
	}
	if _, err := env.peer.CommitBlock(makeBlock(t, env.peer, txs)); err != nil {
		t.Fatal(err)
	}
	agg := env.peer.CommitAggregate()
	if agg.Wall <= 0 || agg.CPU <= 0 {
		t.Fatalf("aggregate = %+v, want positive wall and cpu", agg)
	}
	counters := make(map[string]int64)
	for _, c := range env.peer.SchedulerCounters() {
		counters[c.Name] = c.Value
	}
	if counters[CounterSchedBlocks] != 1 || counters[CounterSchedTxs] != 2 ||
		counters[CounterSchedGroups] != 2 || counters[CounterSchedConflicted] != 0 ||
		counters[CounterSchedWaves] != 1 {
		t.Fatalf("scheduler counters = %v, want 1 block, 2 txs, 2 groups, 0 conflicted, 1 wave", counters)
	}
}
