package peer

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/orderer"
)

// buildStream assembles a chained multi-block stream with a rich code mix:
// conflicting CRDT merges, MVCC winners and losers, a tampered signature,
// an in-block duplicate, and — the case that separates the two pipeline
// shapes — a cross-block duplicate whose signature is ALSO tampered. The
// synchronous pipeline never endorse-validates a screened duplicate, so
// its code is DUPLICATE; the async pipeline endorse-validates it ahead of
// time (finding the bad signature) and must still report DUPLICATE.
func buildStream(t *testing.T, env *pipelineEnv, nBlocks int) []*ledger.Block {
	t.Helper()
	chain := env.baseline.Chain()
	num, hash := chain.LastRef()
	a := orderer.NewAssemblerAt(num, hash)
	var blocks []*ledger.Block
	for b := 0; b < nBlocks; b++ {
		var txs []*ledger.Transaction
		for i := 0; i < 6; i++ {
			devA := fmt.Sprintf("dev%d", i%3)
			devB := fmt.Sprintf("dev%d", (i+1)%3)
			txs = append(txs, env.endorseTx(t, fmt.Sprintf("crdt-%d-%d", b, i), "iot", "append", devA, devB, fmt.Sprintf("r%d-%d", b, i)))
		}
		txs = append(txs, env.endorseTx(t, fmt.Sprintf("plain-%d", b), "plain", "put", "acct", fmt.Sprintf("%d", b)))
		switch b {
		case 1:
			forged := env.endorseTx(t, "forged-sig", "plain", "put", "other", "x")
			forged.Endorsements[0].Signature[0] ^= 0xff
			txs = append(txs, forged, txs[0]) // bad signature + in-block duplicate
		case 3:
			// Cross-block duplicate of a block-0 transaction, with a
			// tampered signature on top: dedup precedence must win.
			dup := env.endorseTx(t, "crdt-0-0", "iot", "append", "dev0", "dev1", "dup")
			dup.Endorsements[0].Signature[0] ^= 0xff
			txs = append(txs, dup)
		}
		block, err := a.Assemble(orderer.Batch{Transactions: txs, Reason: orderer.CutMaxMessages})
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, block)
	}
	return blocks
}

// feed returns a closed channel pre-loaded with the whole stream.
func feed(blocks []*ledger.Block) <-chan *ledger.Block {
	ch := make(chan *ledger.Block, len(blocks))
	for _, b := range blocks {
		ch <- b
	}
	close(ch)
	return ch
}

// TestCommitPipelineDepthDeterminism is the async pipeline's acceptance
// guarantee: the same delivered stream commits to byte-identical validation
// codes, world state, versions, CRDT documents and hash chain at every
// pipeline depth. Run with -race in CI (the depth >= 1 variants exercise
// the prepare/finalize handoff concurrently).
func TestCommitPipelineDepthDeterminism(t *testing.T) {
	env := newPipelineEnv(t, []CommitterConfig{
		{Workers: 2, Pipeline: 0},
		{Workers: 2, Pipeline: 1},
		{Workers: 2, Pipeline: 2},
		{Workers: 2, Pipeline: 4},
	})
	env.install(t, "iot", multiKeyCRDTChaincode())
	env.install(t, "plain", plainChaincode())
	blocks := buildStream(t, env, 5)

	// Baseline: the synchronous per-block API.
	for _, b := range blocks {
		if _, err := env.baseline.CommitBlock(b); err != nil {
			t.Fatalf("baseline block %d: %v", b.Header.Number, err)
		}
	}
	// The dedup-overrides-endorse case actually occurred.
	b3, err := env.baseline.Chain().Get(4)
	if err != nil {
		t.Fatal(err)
	}
	lastCode := b3.Metadata.ValidationCodes[len(b3.Metadata.ValidationCodes)-1]
	if lastCode != ledger.CodeDuplicate {
		t.Fatalf("cross-block dup with tampered signature = %v, want DUPLICATE", lastCode)
	}

	for _, p := range env.variants {
		depth := p.cfg.Committer.Pipeline
		if err := p.CommitPipeline("ch1", feed(blocks), depth); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		// Chain: same height, same header hashes, same recorded codes.
		if got, want := p.Chain().Height(), env.baseline.Chain().Height(); got != want {
			t.Fatalf("depth %d: chain height %d, want %d", depth, got, want)
		}
		for _, want := range env.baseline.Chain().Blocks() {
			got, err := p.Chain().Get(want.Header.Number)
			if err != nil {
				t.Fatalf("depth %d: block %d: %v", depth, want.Header.Number, err)
			}
			if !bytes.Equal(got.HeaderHash(), want.HeaderHash()) {
				t.Errorf("depth %d: block %d header hash diverged", depth, want.Header.Number)
			}
			if !reflect.DeepEqual(got.Metadata.ValidationCodes, want.Metadata.ValidationCodes) {
				t.Errorf("depth %d: block %d codes = %v, want %v", depth, want.Header.Number, got.Metadata.ValidationCodes, want.Metadata.ValidationCodes)
			}
		}
		assertSameWorldState(t, env.baseline, p)
	}
}

// TestCommitPipelineDrainsAfterPrepareFailure: a prepare-stage failure
// (here: the whole pipeline bound to a channel the peer never joined)
// must surface as the returned error and still drain the stream to its
// end, with nothing committed.
func TestCommitPipelineDrainsAfterPrepareFailure(t *testing.T) {
	for _, depth := range []int{0, 2} {
		env := newPipelineEnv(t, []CommitterConfig{{Workers: 1}})
		env.install(t, "iot", multiKeyCRDTChaincode())
		env.install(t, "plain", plainChaincode())
		blocks := buildStream(t, env, 4)
		p := env.variants[0]
		deliver := feed(blocks)
		err := p.CommitPipeline("not-joined", deliver, depth)
		if !errors.Is(err, ErrUnknownChannel) {
			t.Fatalf("depth %d: err = %v, want ErrUnknownChannel", depth, err)
		}
		if _, open := <-deliver; open {
			t.Errorf("depth %d: deliver channel not fully drained after prepare failure", depth)
		}
		if got := p.Height(); got != 0 {
			t.Errorf("depth %d: height = %d, want 0", depth, got)
		}
	}
}

// TestCommitPipelineDrainsAfterFailure: a mid-stream commit failure must
// surface as the pipeline's return error AND the pipeline must keep
// consuming the stream to its end — an abandoned subscription that stops
// reading is exactly the backpressure bug the async pipeline exists to
// prevent. Verified at every depth.
func TestCommitPipelineDrainsAfterFailure(t *testing.T) {
	for _, depth := range []int{0, 1, 3} {
		env := newPipelineEnv(t, []CommitterConfig{{Workers: 1, Pipeline: depth}})
		env.install(t, "iot", multiKeyCRDTChaincode())
		env.install(t, "plain", plainChaincode())
		blocks := buildStream(t, env, 6)
		// Corrupt the chain link of block 3: its finalize fails at append.
		bad := *blocks[2]
		bad.Header.PrevHash = []byte("severed")
		blocks[2] = &bad

		p := env.variants[0]
		deliver := feed(blocks)
		err := p.CommitPipeline("ch1", deliver, depth)
		if err == nil {
			t.Fatalf("depth %d: pipeline returned nil for a severed chain", depth)
		}
		if !strings.Contains(err.Error(), "block 3") {
			t.Errorf("depth %d: err = %v, want the block-3 failure", depth, err)
		}
		if _, open := <-deliver; open {
			t.Errorf("depth %d: deliver channel not fully drained after failure", depth)
		}
		// The chain holds exactly the blocks before the failure (genesis
		// plus blocks 1-2) and nothing after it was committed at any
		// depth. The state too: the severed block is rejected by the
		// pre-apply chain check, so its writes never reach the (durable)
		// world state — a restarted peer would resume from block 2's
		// checkpoint, not a poisoned one.
		if got := p.Chain().Height(); got != 3 {
			t.Errorf("depth %d: chain height = %d, want 3 (genesis + 2 blocks)", depth, got)
		}
		if got := p.Height(); got != 2 {
			t.Errorf("depth %d: state height = %d, want 2 (severed block must not apply)", depth, got)
		}
	}
}
