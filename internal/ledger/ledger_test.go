package ledger

import (
	"testing"

	"fabriccrdt/internal/rwset"
)

func makeTx(id string) *Transaction {
	b := rwset.NewBuilder()
	b.AddRead(id+"-key", rwset.Version{BlockNum: 1})
	b.AddWrite(rwset.Write{Key: id + "-key", Value: []byte("v-" + id)})
	return &Transaction{
		ID:        id,
		ChannelID: "ch1",
		Chaincode: "iot",
		RWSet:     b.Build(),
	}
}

// nextBlock builds a block chained onto c's last block.
func nextBlock(t *testing.T, c *Chain, txs []*Transaction) *Block {
	t.Helper()
	last := c.Last()
	dataHash, err := ComputeDataHash(txs)
	if err != nil {
		t.Fatal(err)
	}
	return &Block{
		Header: BlockHeader{
			Number:   last.Header.Number + 1,
			PrevHash: last.HeaderHash(),
			DataHash: dataHash,
		},
		Transactions: txs,
		Metadata:     BlockMetadata{ValidationCodes: make([]ValidationCode, len(txs))},
	}
}

func TestChainAppendAndVerify(t *testing.T) {
	c := NewChain("ch1")
	if c.Height() != 1 {
		t.Fatalf("genesis height = %d", c.Height())
	}
	for i := 0; i < 5; i++ {
		b := nextBlock(t, c, []*Transaction{makeTx("tx" + string(rune('0'+i)))})
		if err := c.Append(b); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if c.Height() != 6 {
		t.Fatalf("height = %d, want 6", c.Height())
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	got, err := c.Get(3)
	if err != nil || got.Header.Number != 3 {
		t.Fatalf("Get(3) = %+v, %v", got, err)
	}
	if len(c.Blocks()) != 6 {
		t.Fatal("Blocks() length wrong")
	}
}

func TestAppendRejectsBadNumber(t *testing.T) {
	c := NewChain("ch1")
	b := nextBlock(t, c, []*Transaction{makeTx("a")})
	b.Header.Number = 7
	if err := c.Append(b); err == nil {
		t.Fatal("out-of-sequence block accepted")
	}
}

func TestAppendRejectsBadPrevHash(t *testing.T) {
	c := NewChain("ch1")
	b := nextBlock(t, c, []*Transaction{makeTx("a")})
	b.Header.PrevHash = []byte("forged")
	if err := c.Append(b); err == nil {
		t.Fatal("forged prev-hash accepted")
	}
}

func TestAppendRejectsTamperedData(t *testing.T) {
	c := NewChain("ch1")
	b := nextBlock(t, c, []*Transaction{makeTx("a")})
	b.Transactions[0].Args = [][]byte{[]byte("injected")} // data no longer matches DataHash
	if err := c.Append(b); err == nil {
		t.Fatal("tampered block accepted")
	}
}

func TestVerifyDetectsRetroactiveTampering(t *testing.T) {
	c := NewChain("ch1")
	b := nextBlock(t, c, []*Transaction{makeTx("a")})
	if err := c.Append(b); err != nil {
		t.Fatal(err)
	}
	// Tamper after append.
	b.Transactions[0].Chaincode = "evil"
	if err := c.Verify(); err == nil {
		t.Fatal("retroactive tampering not detected")
	}
}

func TestGetOutOfRange(t *testing.T) {
	c := NewChain("ch1")
	if _, err := c.Get(9); err == nil {
		t.Fatal("want error for missing block")
	}
}

func TestTransactionMarshalRoundTrip(t *testing.T) {
	tx := makeTx("t1")
	tx.Endorsements = []Endorsement{{Endorser: []byte("id"), Signature: []byte("sig")}}
	tx.SubmitUnixNano = 12345
	data, err := tx.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTransaction(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != tx.ID || back.Chaincode != tx.Chaincode || back.SubmitUnixNano != 12345 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if !back.RWSet.Equal(tx.RWSet) {
		t.Fatal("rwset lost in round trip")
	}
}

func TestBlockMarshalRoundTrip(t *testing.T) {
	c := NewChain("ch1")
	b := nextBlock(t, c, []*Transaction{makeTx("a"), makeTx("b")})
	b.Metadata.ValidationCodes = []ValidationCode{CodeValid, CodeMVCCConflict}
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.Number != b.Header.Number || len(back.Transactions) != 2 {
		t.Fatalf("round trip: %+v", back.Header)
	}
	if back.Metadata.ValidationCodes[1] != CodeMVCCConflict {
		t.Fatal("validation codes lost")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalTransaction([]byte("{")); err == nil {
		t.Fatal("want tx decode error")
	}
	if _, err := UnmarshalBlock([]byte("{")); err == nil {
		t.Fatal("want block decode error")
	}
}

func TestEndorsementPayloadIsStable(t *testing.T) {
	tx := makeTx("t1")
	p1, err := tx.EndorsementPayload()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := tx.EndorsementPayload()
	if err != nil {
		t.Fatal(err)
	}
	if string(p1) != string(p2) {
		t.Fatal("payload not deterministic")
	}
	// Payload must change when the rwset changes.
	tx.RWSet.Writes[0].Value = []byte("other")
	p3, err := tx.EndorsementPayload()
	if err != nil {
		t.Fatal(err)
	}
	if string(p1) == string(p3) {
		t.Fatal("payload insensitive to rwset")
	}
}

func TestValidationCodeStrings(t *testing.T) {
	cases := map[ValidationCode]string{
		CodeNotValidated:       "NOT_VALIDATED",
		CodeValid:              "VALID",
		CodeMVCCConflict:       "MVCC_CONFLICT",
		CodeEndorsementFailure: "ENDORSEMENT_POLICY_FAILURE",
		CodeBadSignature:       "BAD_SIGNATURE",
		CodeDuplicate:          "DUPLICATE_TXID",
		CodeCRDTMerged:         "CRDT_MERGED",
	}
	for code, want := range cases {
		if code.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(code), code.String(), want)
		}
	}
	if !CodeValid.Committed() || !CodeCRDTMerged.Committed() {
		t.Fatal("valid codes must report Committed")
	}
	if CodeMVCCConflict.Committed() || CodeNotValidated.Committed() {
		t.Fatal("failure codes must not report Committed")
	}
}

func TestTxSize(t *testing.T) {
	tx := makeTx("t1")
	if tx.Size() <= 0 {
		t.Fatal("size must be positive")
	}
}

func BenchmarkComputeDataHash(b *testing.B) {
	txs := make([]*Transaction, 100)
	for i := range txs {
		txs[i] = makeTx("tx")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeDataHash(txs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestChainCheckNext(t *testing.T) {
	c := NewChain("ch1")
	good := nextBlock(t, c, []*Transaction{makeTx("a")})

	// Pre-flight of a valid next block passes and does not append.
	if err := c.CheckNext(good); err != nil {
		t.Fatalf("CheckNext(valid) = %v", err)
	}
	if c.Height() != 1 {
		t.Fatalf("CheckNext appended: height = %d", c.Height())
	}
	// The memo path: appending the pre-flighted block still works.
	if err := c.Append(good); err != nil {
		t.Fatalf("Append after CheckNext: %v", err)
	}

	// Wrong number (replays the same block) is rejected.
	if err := c.CheckNext(good); err == nil {
		t.Fatal("CheckNext accepted an already-appended number")
	}
	// Severed prev-hash is rejected.
	bad := nextBlock(t, c, []*Transaction{makeTx("b")})
	bad.Header.PrevHash = []byte("severed")
	if err := c.CheckNext(bad); err == nil {
		t.Fatal("CheckNext accepted a severed prev-hash")
	}
	// Data-hash mismatch is rejected, and a rejected block is not
	// memoized: Append must fail too.
	forged := nextBlock(t, c, []*Transaction{makeTx("c")})
	forged.Header.DataHash = []byte("forged")
	if err := c.CheckNext(forged); err == nil {
		t.Fatal("CheckNext accepted a forged data hash")
	}
	if err := c.Append(forged); err == nil {
		t.Fatal("Append accepted a forged data hash")
	}
}
