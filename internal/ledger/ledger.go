// Package ledger implements a Fabric peer's ledger: transaction envelopes,
// blocks with a SHA-256 hash chain, per-transaction validation flags, and an
// append-only block chain (paper §2.1: "the peer's ledger consists of an
// append-only blockchain and a world state database").
//
// A Chain normally grows from the channel genesis block. A peer restored
// from a durable state checkpoint instead resumes an empty chain after a
// recorded (block number, header hash) pair (NewChainCheckpointed), with
// every later append still hash-verified against it; when the peer also
// kept a durable block store (internal/blockstore), the checkpointed chain
// is backed by it (NewChainCheckpointedWithSource) and keeps answering
// Get(n) for the pre-checkpoint history — so a restarted peer serves old
// blocks to syncing peers and can replay its ledger from block 0.
package ledger

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"fabriccrdt/internal/rwset"
)

// ValidationCode is the outcome a committer assigns to a transaction.
// Fabric appends both valid and invalid transactions to the chain, marking
// each with its code.
type ValidationCode int

const (
	// CodeNotValidated is the zero state before commit-time validation.
	CodeNotValidated ValidationCode = iota
	// CodeValid marks a successfully committed transaction.
	CodeValid
	// CodeMVCCConflict marks a read-set version mismatch (paper §3).
	CodeMVCCConflict
	// CodeEndorsementFailure marks an endorsement policy violation.
	CodeEndorsementFailure
	// CodeBadSignature marks an invalid endorsement or creator signature.
	CodeBadSignature
	// CodeDuplicate marks a transaction whose ID was already committed.
	CodeDuplicate
	// CodeCRDTMerged marks a CRDT transaction committed through the
	// FabricCRDT merge path instead of MVCC validation.
	CodeCRDTMerged
	// CodeInvalidCRDT marks a CRDT transaction whose flagged value could
	// not be parsed as a JSON object delta.
	CodeInvalidCRDT
	// CodeWrongChannel marks a transaction delivered on a channel other
	// than the one it was endorsed for (its ChannelID). Channels are
	// independent ledgers: an envelope endorsed against one channel's
	// state must never commit on another (Fabric's BAD_CHANNEL_HEADER).
	CodeWrongChannel
)

// String implements fmt.Stringer.
func (c ValidationCode) String() string {
	switch c {
	case CodeNotValidated:
		return "NOT_VALIDATED"
	case CodeValid:
		return "VALID"
	case CodeMVCCConflict:
		return "MVCC_CONFLICT"
	case CodeEndorsementFailure:
		return "ENDORSEMENT_POLICY_FAILURE"
	case CodeBadSignature:
		return "BAD_SIGNATURE"
	case CodeDuplicate:
		return "DUPLICATE_TXID"
	case CodeCRDTMerged:
		return "CRDT_MERGED"
	case CodeInvalidCRDT:
		return "INVALID_CRDT_VALUE"
	case CodeWrongChannel:
		return "WRONG_CHANNEL"
	default:
		return fmt.Sprintf("ValidationCode(%d)", int(c))
	}
}

// Committed reports whether the code means the transaction's writes reached
// the world state.
func (c ValidationCode) Committed() bool {
	return c == CodeValid || c == CodeCRDTMerged
}

// Endorsement is one peer's signature over a proposal response.
type Endorsement struct {
	// Endorser is the serialized cryptoid.Identity of the endorsing peer.
	Endorser []byte `json:"endorser"`
	// Signature signs the transaction's endorsement payload.
	Signature []byte `json:"signature"`
}

// Transaction is the envelope a client submits for ordering after
// collecting endorsements.
type Transaction struct {
	ID        string `json:"id"`
	ChannelID string `json:"channel"`
	Chaincode string `json:"chaincode"`
	// Creator is the serialized identity of the submitting client.
	Creator []byte `json:"creator"`
	// Args is the invocation payload (function + arguments).
	Args [][]byte `json:"args,omitempty"`
	// RWSet is the simulated read/write set agreed by the endorsers.
	RWSet rwset.ReadWriteSet `json:"rwset"`
	// Endorsements carries the endorsing peers' signatures.
	Endorsements []Endorsement `json:"endorsements,omitempty"`
	// SubmitUnixNano is the client submission time used by the metrics
	// pipeline (Caliper measures latency from submission to commit).
	SubmitUnixNano int64 `json:"submitUnixNano,omitempty"`
	// TraceID joins this transaction's spans across processes (obs
	// tracing); minted at client.Prepare when tracing is enabled, empty
	// otherwise. Deliberately outside EndorsementPayload: the trace
	// annotation is not part of what endorsers attest to.
	TraceID string `json:"traceID,omitempty"`
}

// EndorsementPayload returns the byte string endorsers sign: everything the
// committer must be able to pin to the endorsement, i.e. the proposal
// identity and the simulated read/write set.
func (tx *Transaction) EndorsementPayload() ([]byte, error) {
	rw, err := tx.RWSet.Marshal()
	if err != nil {
		return nil, err
	}
	payload := struct {
		ID        string `json:"id"`
		ChannelID string `json:"channel"`
		Chaincode string `json:"chaincode"`
		RWSet     string `json:"rwset"`
	}{tx.ID, tx.ChannelID, tx.Chaincode, string(rw)}
	return json.Marshal(payload)
}

// Marshal serializes the transaction.
func (tx *Transaction) Marshal() ([]byte, error) { return json.Marshal(tx) }

// UnmarshalTransaction parses Marshal output.
func UnmarshalTransaction(data []byte) (*Transaction, error) {
	var tx Transaction
	if err := json.Unmarshal(data, &tx); err != nil {
		return nil, fmt.Errorf("ledger: decoding transaction: %w", err)
	}
	return &tx, nil
}

// Size returns the serialized size in bytes, the quantity the orderer's
// byte-based block cutting limits apply to.
func (tx *Transaction) Size() int {
	data, err := tx.Marshal()
	if err != nil {
		return 0
	}
	return len(data)
}

// BlockHeader chains a block to its predecessor.
type BlockHeader struct {
	Number   uint64 `json:"number"`
	PrevHash []byte `json:"prevHash"`
	DataHash []byte `json:"dataHash"`
}

// BlockMetadata carries commit-time annotations.
type BlockMetadata struct {
	// ValidationCodes holds one code per transaction, filled by the
	// committer.
	ValidationCodes []ValidationCode `json:"validationCodes,omitempty"`
	// CutReason records why the orderer cut the block (size/bytes/timeout).
	CutReason string `json:"cutReason,omitempty"`
	// TraceIDs mirrors the transactions' trace IDs (one entry per
	// transaction, empty strings for untraced ones) so tooling can follow
	// traces without decoding transaction bodies. Only set when at least
	// one transaction in the block is traced.
	TraceIDs []string `json:"traceIDs,omitempty"`
}

// Block is an ordered batch of transactions.
type Block struct {
	Header       BlockHeader    `json:"header"`
	Transactions []*Transaction `json:"transactions"`
	Metadata     BlockMetadata  `json:"metadata"`
}

// ComputeDataHash hashes the block's transactions canonically.
func ComputeDataHash(txs []*Transaction) ([]byte, error) {
	h := sha256.New()
	for _, tx := range txs {
		data, err := tx.Marshal()
		if err != nil {
			return nil, err
		}
		var lenBuf [8]byte
		n := len(data)
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write(data)
	}
	return h.Sum(nil), nil
}

// HeaderHash returns the hash that the next block's PrevHash must carry.
func (b *Block) HeaderHash() []byte {
	data, _ := json.Marshal(b.Header)
	sum := sha256.Sum256(data)
	return sum[:]
}

// Marshal serializes the block.
func (b *Block) Marshal() ([]byte, error) { return json.Marshal(b) }

// UnmarshalBlock parses Marshal output.
func UnmarshalBlock(data []byte) (*Block, error) {
	var b Block
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("ledger: decoding block: %w", err)
	}
	return &b, nil
}

// Chain errors.
var (
	ErrBadPrevHash   = errors.New("ledger: block prev-hash mismatch")
	ErrBadDataHash   = errors.New("ledger: block data-hash mismatch")
	ErrBadNumber     = errors.New("ledger: block number out of sequence")
	ErrBlockNotFound = errors.New("ledger: block not found")
)

// BlockSource serves committed block bodies by number — the read side of
// a durable block store backing a checkpointed chain. A source must cover
// the contiguous range [0, Height()) and be safe for concurrent use.
type BlockSource interface {
	// Get returns block n, or an error wrapping ErrBlockNotFound when the
	// source does not hold it.
	Get(n uint64) (*Block, error)
	// Height returns the number of stored blocks.
	Height() uint64
}

// Chain is an append-only block chain with hash-chain verification on
// append. It is safe for concurrent use.
//
// A chain normally starts at the genesis block. A chain restored from a
// checkpoint (NewChainCheckpointed) starts empty after a known (number,
// header hash) pair instead: block bodies before the checkpoint are not
// held in memory — the durable world state already reflects them — but
// every later append is still hash-verified against the checkpoint. A
// checkpointed chain constructed with a BlockSource
// (NewChainCheckpointedWithSource) additionally serves the pre-checkpoint
// bodies from that source, so Get works over the full history.
type Chain struct {
	mu     sync.RWMutex
	blocks []*Block
	// base is the number of blocks[0] (0 for a genesis chain).
	base uint64
	// nextNumber/nextPrevHash are what the next appended block must carry.
	nextNumber   uint64
	nextPrevHash []byte
	// checkpointHash is the header hash of block base-1 when the chain was
	// restored from a checkpoint (checkpointed true).
	checkpointHash []byte
	checkpointed   bool
	// source serves pre-checkpoint block bodies (numbers below base) when
	// the peer kept a durable block store; nil otherwise.
	source BlockSource
	// verifiedNext is the block pointer that passed the most recent
	// CheckNext, letting a subsequent Append of the same (unmodified)
	// block skip recomputing the data hash — the expensive half of the
	// verification. Cleared whenever the chain advances.
	verifiedNext *Block
}

// NewChain returns a chain containing only the genesis block for the given
// channel.
func NewChain(channelID string) *Chain {
	genesis := &Block{
		Header: BlockHeader{Number: 0, PrevHash: nil},
		Transactions: []*Transaction{{
			ID:        "genesis-" + channelID,
			ChannelID: channelID,
			Chaincode: "_config",
		}},
		Metadata: BlockMetadata{ValidationCodes: []ValidationCode{CodeValid}},
	}
	genesis.Header.DataHash, _ = ComputeDataHash(genesis.Transactions)
	return &Chain{
		blocks:       []*Block{genesis},
		nextNumber:   1,
		nextPrevHash: genesis.HeaderHash(),
	}
}

// NewChainCheckpointed returns a chain resuming after block lastNumber,
// whose header hash the next block's PrevHash must match. It holds no
// block bodies for the pre-checkpoint history.
func NewChainCheckpointed(lastNumber uint64, lastHash []byte) *Chain {
	return &Chain{
		base:           lastNumber + 1,
		nextNumber:     lastNumber + 1,
		nextPrevHash:   lastHash,
		checkpointHash: lastHash,
		checkpointed:   true,
	}
}

// NewChainCheckpointedWithSource is NewChainCheckpointed over a peer that
// kept its block bodies: src must cover [0, lastNumber], and the chain
// serves Get for the whole history — pre-checkpoint numbers from src,
// later ones from memory. FirstNumber reports 0.
func NewChainCheckpointedWithSource(lastNumber uint64, lastHash []byte, src BlockSource) *Chain {
	c := NewChainCheckpointed(lastNumber, lastHash)
	c.source = src
	return c
}

// Checkpoint returns the (number, header hash) the chain was restored
// from, if it was created by NewChainCheckpointed.
func (c *Chain) Checkpoint() (number uint64, headerHash []byte, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.checkpointed {
		return 0, nil, false
	}
	return c.base - 1, c.checkpointHash, true
}

// Height returns the number of blocks committed to the chain, genesis and
// any pre-checkpoint history included — i.e. the next expected block
// number.
func (c *Chain) Height() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nextNumber
}

// FirstNumber returns the number of the earliest locally retrievable
// block: 0 for a genesis chain or a checkpointed chain backed by a block
// source, the checkpoint successor for a bare checkpointed chain.
func (c *Chain) FirstNumber() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.source != nil {
		return 0
	}
	return c.base
}

// Last returns the most recent block, or nil for a checkpointed chain that
// has not appended any block yet.
func (c *Chain) Last() *Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.blocks) == 0 {
		return nil
	}
	return c.blocks[len(c.blocks)-1]
}

// LastRef returns the (number, header hash) pair the next appended block
// must chain onto. Unlike Last it works on an empty checkpointed chain,
// where it returns the checkpoint itself.
func (c *Chain) LastRef() (number uint64, headerHash []byte) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nextNumber - 1, c.nextPrevHash
}

// Get returns block number n. On a checkpointed chain, numbers before the
// checkpoint are served from the backing block source when one exists;
// without a source they report ErrBlockNotFound.
func (c *Chain) Get(n uint64) (*Block, error) {
	c.mu.RLock()
	base, next, src := c.base, c.nextNumber, c.source
	var b *Block
	if n >= base && n < next {
		b = c.blocks[n-base]
	}
	c.mu.RUnlock()
	if b != nil {
		return b, nil
	}
	if n < base && src != nil {
		// Outside the chain lock: the source does its own disk I/O and
		// synchronization, and a history read must not stall appenders
		// (base and source never change after construction).
		return src.Get(n)
	}
	return nil, fmt.Errorf("%w: %d (stored range [%d, %d))", ErrBlockNotFound, n, base, next)
}

// Append verifies the hash chain and appends the block.
func (c *Chain) Append(b *Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkNextLocked(b); err != nil {
		return err
	}
	c.blocks = append(c.blocks, b)
	c.nextNumber++
	c.nextPrevHash = b.HeaderHash()
	c.verifiedNext = nil
	return nil
}

// CheckNext verifies that b is the block this chain expects next — the
// right number, prev-hash linkage and data hash — without appending it.
// Committers run it before applying the block's writes: Append re-verifies
// at the end of the commit, but by then the writes (and, on a durable
// backend, the chain checkpoint) would already be applied — a
// chain-invalid block must be rejected while the state is still untouched.
//
// A block that passes is remembered by pointer: appending that same block
// — unmodified, transactions included — skips the data-hash recompute
// (the number and prev-hash linkage are still re-checked, which also
// guards the memo against the chain having advanced in between).
func (c *Chain) CheckNext(b *Block) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkNextLocked(b); err != nil {
		return err
	}
	c.verifiedNext = b
	return nil
}

func (c *Chain) checkNextLocked(b *Block) error {
	if b.Header.Number != c.nextNumber {
		return fmt.Errorf("%w: got %d, want %d", ErrBadNumber, b.Header.Number, c.nextNumber)
	}
	if !hashEqual(b.Header.PrevHash, c.nextPrevHash) {
		return fmt.Errorf("%w: block %d", ErrBadPrevHash, b.Header.Number)
	}
	if b == c.verifiedNext {
		return nil
	}
	dataHash, err := ComputeDataHash(b.Transactions)
	if err != nil {
		return err
	}
	if !hashEqual(b.Header.DataHash, dataHash) {
		return fmt.Errorf("%w: block %d", ErrBadDataHash, b.Header.Number)
	}
	return nil
}

// Verify re-checks the whole locally stored hash chain — including the
// first stored block's number and, on a checkpointed chain, its linkage to
// the recorded checkpoint hash — returning the first inconsistency.
// Pre-checkpoint history is not re-checkable (it is not stored) but every
// stored block was append-time-verified against the checkpoint.
func (c *Chain) Verify() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.blocks) > 0 {
		first := c.blocks[0]
		if first.Header.Number != c.base {
			return fmt.Errorf("%w: first stored block is %d, want %d", ErrBadNumber, first.Header.Number, c.base)
		}
		if c.checkpointed && !hashEqual(first.Header.PrevHash, c.checkpointHash) {
			return fmt.Errorf("%w: block %d does not chain onto the checkpoint", ErrBadPrevHash, first.Header.Number)
		}
		dataHash, err := ComputeDataHash(first.Transactions)
		if err != nil {
			return err
		}
		if !hashEqual(first.Header.DataHash, dataHash) {
			return fmt.Errorf("%w: block %d", ErrBadDataHash, first.Header.Number)
		}
	}
	for i := 1; i < len(c.blocks); i++ {
		b, prev := c.blocks[i], c.blocks[i-1]
		if b.Header.Number != prev.Header.Number+1 {
			return fmt.Errorf("%w: index %d", ErrBadNumber, i)
		}
		if !hashEqual(b.Header.PrevHash, prev.HeaderHash()) {
			return fmt.Errorf("%w: block %d", ErrBadPrevHash, b.Header.Number)
		}
		dataHash, err := ComputeDataHash(b.Transactions)
		if err != nil {
			return err
		}
		if !hashEqual(b.Header.DataHash, dataHash) {
			return fmt.Errorf("%w: block %d", ErrBadDataHash, b.Header.Number)
		}
	}
	return nil
}

// Blocks returns a snapshot of all in-memory blocks in order (genesis
// first, unless the chain was restored from a checkpoint — a backing block
// source's pre-checkpoint history is not included; iterate the source for
// that); the slice is fresh, the block pointers are shared.
func (c *Chain) Blocks() []*Block {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Block, len(c.blocks))
	copy(out, c.blocks)
	return out
}

func hashEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
