package metrics

import "time"

// StageSummary is the aggregate of one pipeline stage's latency
// observations, as reported by Peer.CommitTimings. Since the telemetry
// layer (internal/obs) became the single source of stage timings, this is
// a pure report type: the numbers are read out of the same registry
// histograms the /metrics endpoint serves.
type StageSummary struct {
	Stage string
	Count int
	Total time.Duration
	Avg   time.Duration
	Max   time.Duration
}
