package metrics

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// StageTimings accumulates per-stage latencies of a staged pipeline (the
// peer's commit pipeline records one observation per stage per block).
// Safe for concurrent use; stages are reported in first-observed order.
type StageTimings struct {
	mu    sync.Mutex
	order []string
	agg   map[string]*stageAgg
}

type stageAgg struct {
	count int
	total time.Duration
	max   time.Duration
}

// NewStageTimings returns an empty accumulator.
func NewStageTimings() *StageTimings {
	return &StageTimings{agg: make(map[string]*stageAgg)}
}

// Observe records one run of a stage.
func (t *StageTimings) Observe(stage string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.agg[stage]
	if !ok {
		a = &stageAgg{}
		t.agg[stage] = a
		t.order = append(t.order, stage)
	}
	a.count++
	a.total += d
	if d > a.max {
		a.max = d
	}
}

// Time runs fn and records its wall-clock duration under stage.
func (t *StageTimings) Time(stage string, fn func()) {
	start := time.Now()
	fn()
	t.Observe(stage, time.Since(start))
}

// StageSummary is the aggregate of one stage's observations.
type StageSummary struct {
	Stage string
	Count int
	Total time.Duration
	Avg   time.Duration
	Max   time.Duration
}

// Summaries returns one summary per stage in first-observed order.
func (t *StageTimings) Summaries() []StageSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageSummary, 0, len(t.order))
	for _, stage := range t.order {
		a := t.agg[stage]
		s := StageSummary{Stage: stage, Count: a.count, Total: a.total, Max: a.max}
		if a.count > 0 {
			s.Avg = a.total / time.Duration(a.count)
		}
		out = append(out, s)
	}
	return out
}

// String renders the summaries in one line, e.g. for benchmark logs.
func (t *StageTimings) String() string {
	var b strings.Builder
	for i, s := range t.Summaries() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%v(n=%d)", s.Stage, s.Avg, s.Count)
	}
	return b.String()
}
