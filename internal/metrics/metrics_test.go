package metrics

import (
	"strings"
	"testing"
	"time"

	"fabriccrdt/internal/ledger"
)

func TestSummaryBasics(t *testing.T) {
	var c Collector
	c.Submitted(0)
	c.Submitted(time.Second)
	c.Submitted(2 * time.Second)
	c.Committed(0, 2*time.Second, ledger.CodeValid)
	c.Committed(time.Second, 4*time.Second, ledger.CodeCRDTMerged)
	c.Committed(2*time.Second, 5*time.Second, ledger.CodeMVCCConflict)
	c.BlockCommitted()
	c.BlockCommitted()
	s := c.Summarize()
	if s.Submitted != 3 || s.Successful != 2 || s.Failed != 1 || s.Blocks != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Duration != 5*time.Second {
		t.Fatalf("duration = %v", s.Duration)
	}
	if want := 2.0 / 5.0; s.Throughput != want {
		t.Fatalf("throughput = %f, want %f", s.Throughput, want)
	}
	// Latencies: 2s and 3s -> avg 2.5s, max 3s.
	if s.AvgLatency != 2500*time.Millisecond || s.Max != 3*time.Second {
		t.Fatalf("avg = %v, max = %v", s.AvgLatency, s.Max)
	}
	if s.Codes["VALID"] != 1 || s.Codes["CRDT_MERGED"] != 1 || s.Codes["MVCC_CONFLICT"] != 1 {
		t.Fatalf("codes = %v", s.Codes)
	}
}

func TestEmptyCollector(t *testing.T) {
	var c Collector
	s := c.Summarize()
	if s.Submitted != 0 || s.Successful != 0 || s.Throughput != 0 || s.AvgLatency != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPercentiles(t *testing.T) {
	var c Collector
	c.Submitted(0)
	for i := 1; i <= 100; i++ {
		c.Committed(0, time.Duration(i)*time.Second, ledger.CodeValid)
	}
	s := c.Summarize()
	if s.P50 != 51*time.Second {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P95 != 96*time.Second {
		t.Fatalf("p95 = %v", s.P95)
	}
	if s.Max != 100*time.Second {
		t.Fatalf("max = %v", s.Max)
	}
}

func TestOnlyFailures(t *testing.T) {
	var c Collector
	c.Submitted(0)
	c.Committed(0, time.Second, ledger.CodeMVCCConflict)
	s := c.Summarize()
	if s.Successful != 0 || s.Failed != 1 || s.AvgLatency != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestStringContainsMetrics(t *testing.T) {
	var c Collector
	c.Submitted(0)
	c.Committed(0, time.Second, ledger.CodeValid)
	out := c.Summarize().String()
	for _, frag := range []string{"submitted=1", "successful=1", "tput="} {
		if !strings.Contains(out, frag) {
			t.Fatalf("summary string %q missing %q", out, frag)
		}
	}
}
