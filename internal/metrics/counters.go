package metrics

import "sync"

// Counters is a small set of named monotonic counters (the commit
// scheduler's group counts and conflict tallies). Safe for concurrent use;
// counters report in first-observed order.
type Counters struct {
	mu    sync.Mutex
	order []string
	vals  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int64)}
}

// Add increments a counter by delta, creating it at zero first.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.vals[name]; !ok {
		c.order = append(c.order, name)
	}
	c.vals[name] += delta
}

// Counter is one named counter's value.
type Counter struct {
	Name  string
	Value int64
}

// Snapshot returns every counter in first-observed order.
func (c *Counters) Snapshot() []Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Counter, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, Counter{Name: name, Value: c.vals[name]})
	}
	return out
}

// Get returns one counter's value (zero when never added).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}
