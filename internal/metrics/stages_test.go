package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageTimingsAggregates(t *testing.T) {
	st := NewStageTimings()
	st.Observe("endorse", 10*time.Millisecond)
	st.Observe("merge", 30*time.Millisecond)
	st.Observe("endorse", 20*time.Millisecond)
	got := st.Summaries()
	if len(got) != 2 {
		t.Fatalf("summaries = %+v", got)
	}
	if got[0].Stage != "endorse" || got[1].Stage != "merge" {
		t.Fatalf("order = %q, %q (want first-observed)", got[0].Stage, got[1].Stage)
	}
	e := got[0]
	if e.Count != 2 || e.Total != 30*time.Millisecond || e.Avg != 15*time.Millisecond || e.Max != 20*time.Millisecond {
		t.Fatalf("endorse summary = %+v", e)
	}
}

func TestStageTimingsTime(t *testing.T) {
	st := NewStageTimings()
	st.Time("apply", func() { time.Sleep(time.Millisecond) })
	s := st.Summaries()
	if len(s) != 1 || s[0].Count != 1 || s[0].Total < time.Millisecond {
		t.Fatalf("summaries = %+v", s)
	}
	if !strings.Contains(st.String(), "apply=") {
		t.Fatalf("String() = %q", st.String())
	}
}

func TestStageTimingsConcurrent(t *testing.T) {
	st := NewStageTimings()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				st.Observe("endorse", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if s := st.Summaries(); s[0].Count != 800 {
		t.Fatalf("count = %d, want 800", s[0].Count)
	}
}
