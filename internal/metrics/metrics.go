// Package metrics collects and summarizes the three quantities the paper
// reports for every experiment (Figures 3–7): throughput of successful
// transactions, average latency of successful transactions, and the number
// of successful transactions — the same metrics Hyperledger Caliper emits.
package metrics

import (
	"fmt"
	"sort"
	"time"

	"fabriccrdt/internal/ledger"
)

// Collector accumulates per-transaction outcomes. The zero value is ready
// to use. Not safe for concurrent use (the DES is single-threaded; live-mode
// callers wrap it).
type Collector struct {
	submitted int
	latencies []time.Duration
	codes     map[ledger.ValidationCode]int

	haveFirst   bool
	firstSubmit time.Duration
	lastCommit  time.Duration
	blocks      int
}

// Submitted records a transaction submission at virtual time t.
func (c *Collector) Submitted(t time.Duration) {
	if !c.haveFirst || t < c.firstSubmit {
		c.firstSubmit = t
		c.haveFirst = true
	}
	c.submitted++
}

// Committed records a transaction outcome: its submission and commit times
// and validation code. Latency is tracked for successful codes only, as in
// the paper ("average latency of successful transactions").
func (c *Collector) Committed(submit, commit time.Duration, code ledger.ValidationCode) {
	if c.codes == nil {
		c.codes = make(map[ledger.ValidationCode]int)
	}
	c.codes[code]++
	if commit > c.lastCommit {
		c.lastCommit = commit
	}
	if code.Committed() {
		c.latencies = append(c.latencies, commit-submit)
	}
}

// BlockCommitted counts one committed block.
func (c *Collector) BlockCommitted() { c.blocks++ }

// Summary is the aggregated result of one experiment run.
type Summary struct {
	Submitted  int
	Successful int
	Failed     int
	Blocks     int
	// Duration spans first submission to last commit.
	Duration time.Duration
	// Throughput is successful transactions per second of Duration.
	Throughput float64
	// AvgLatency, P50, P95 and Max are over successful transactions.
	AvgLatency time.Duration
	P50        time.Duration
	P95        time.Duration
	Max        time.Duration
	// Codes counts transactions per validation code string.
	Codes map[string]int
}

// Summarize computes the summary.
func (c *Collector) Summarize() Summary {
	s := Summary{
		Submitted:  c.submitted,
		Successful: len(c.latencies),
		Blocks:     c.blocks,
		Codes:      make(map[string]int, len(c.codes)),
	}
	total := 0
	for code, n := range c.codes {
		s.Codes[code.String()] = n
		total += n
	}
	s.Failed = total - s.Successful
	if c.haveFirst && c.lastCommit > c.firstSubmit {
		s.Duration = c.lastCommit - c.firstSubmit
	}
	if s.Duration > 0 {
		s.Throughput = float64(s.Successful) / s.Duration.Seconds()
	}
	if len(c.latencies) > 0 {
		sorted := make([]time.Duration, len(c.latencies))
		copy(sorted, c.latencies)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, l := range sorted {
			sum += l
		}
		s.AvgLatency = sum / time.Duration(len(sorted))
		s.P50 = sorted[len(sorted)/2]
		s.P95 = sorted[(len(sorted)*95)/100]
		s.Max = sorted[len(sorted)-1]
	}
	return s
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("submitted=%d successful=%d failed=%d blocks=%d tput=%.1f tx/s avgLat=%.2fs p95=%.2fs",
		s.Submitted, s.Successful, s.Failed, s.Blocks, s.Throughput,
		s.AvgLatency.Seconds(), s.P95.Seconds())
}
