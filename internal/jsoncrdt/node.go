package jsoncrdt

import (
	"fabriccrdt/internal/lamport"
)

// idSet is a set of operation identifiers.
type idSet map[lamport.ID]struct{}

func (s idSet) add(id lamport.ID)      { s[id] = struct{}{} }
func (s idSet) has(id lamport.ID) bool { _, ok := s[id]; return ok }

// entry holds the CRDT state of one map key or one list element: its
// presence set (the operations keeping it alive), a multi-value register for
// scalar content, and optional map/list branches. Kleppmann & Beresford let
// the three branches coexist so that concurrent type-conflicting updates all
// survive; presentation resolves deterministically (see json.go).
type entry struct {
	pres idSet
	reg  map[lamport.ID]Value
	mapN *mapNode
	list *listNode
}

func newEntry() *entry {
	return &entry{pres: make(idSet)}
}

// visible reports whether any live operation keeps the entry alive.
func (e *entry) visible() bool { return len(e.pres) > 0 }

// ensureMap returns the entry's map branch, creating it if absent.
func (e *entry) ensureMap() *mapNode {
	if e.mapN == nil {
		e.mapN = newMapNode()
	}
	return e.mapN
}

// ensureList returns the entry's list branch, creating it if absent.
func (e *entry) ensureList() *listNode {
	if e.list == nil {
		e.list = newListNode()
	}
	return e.list
}

// clear removes every identifier in deps from the entry's presence set and
// register, recursing through both container branches. Operations not in
// deps — i.e. concurrent with the clearing operation — survive, which gives
// the datatype its add-wins character.
func (e *entry) clear(deps idSet) {
	//lint:sorted deleting an id set from maps is order-independent
	for id := range deps {
		delete(e.pres, id)
		delete(e.reg, id)
	}
	if e.mapN != nil {
		//lint:sorted clear recursion is per-child-independent; order is invisible
		for _, child := range e.mapN.entries {
			child.clear(deps)
		}
	}
	if e.list != nil {
		for el := e.list.head.next; el != nil; el = el.next {
			el.ent.clear(deps)
		}
	}
}

// liveIDs appends every identifier currently present anywhere in the entry's
// subtree to dst. Local operations use this to compute the set an assign or
// delete must clear.
func (e *entry) liveIDs(dst idSet) {
	//lint:sorted id-set union is order-independent
	for id := range e.pres {
		dst.add(id)
	}
	//lint:sorted id-set union is order-independent
	for id := range e.reg {
		dst.add(id)
	}
	if e.mapN != nil {
		//lint:sorted per-child set union; order is invisible
		for _, child := range e.mapN.entries {
			child.liveIDs(dst)
		}
	}
	if e.list != nil {
		for el := e.list.head.next; el != nil; el = el.next {
			el.ent.liveIDs(dst)
		}
	}
}

// mapNode is a JSON object node.
type mapNode struct {
	entries map[string]*entry
}

func newMapNode() *mapNode {
	return &mapNode{entries: make(map[string]*entry)}
}

// child returns the entry for key, creating it if create is set.
func (m *mapNode) child(key string, create bool) *entry {
	e, ok := m.entries[key]
	if !ok && create {
		e = newEntry()
		m.entries[key] = e
	}
	return e
}

// listElem is one element of a list node, identified by the operation that
// inserted it. Elements are never physically removed (tombstones keep the
// ordering stable); visibility is governed by the entry's presence set.
type listElem struct {
	id   lamport.ID
	ent  *entry
	next *listElem
}

// listNode is a JSON array node: a singly linked list with a sentinel head,
// plus an index for O(1) element lookup by insertion ID.
type listNode struct {
	head  *listElem // sentinel; head.next is the first element
	index map[lamport.ID]*listElem
}

func newListNode() *listNode {
	return &listNode{
		head:  &listElem{},
		index: make(map[lamport.ID]*listElem),
	}
}

// find returns the element inserted by id, or nil.
func (l *listNode) find(id lamport.ID) *listElem {
	return l.index[id]
}

// last returns the final element in list order (tombstoned or not), or nil
// if the list is empty. The block-order append path of the merge engine
// inserts after this element.
func (l *listNode) last() *listElem {
	el := l.head
	for el.next != nil {
		el = el.next
	}
	if el == l.head {
		return nil
	}
	return el
}

// insertAfter places a new element with the given id after ref (the sentinel
// head when ref is nil), following the RGA rule: skip over any existing
// elements whose insertion ID is greater than id, so that concurrent inserts
// at the same position converge to the same order on every replica.
func (l *listNode) insertAfter(ref *listElem, id lamport.ID) *listElem {
	if ref == nil {
		ref = l.head
	}
	pos := ref
	for pos.next != nil && id.Less(pos.next.id) {
		pos = pos.next
	}
	el := &listElem{id: id, ent: newEntry(), next: pos.next}
	pos.next = el
	l.index[id] = el
	return el
}

// length returns the number of visible elements.
func (l *listNode) length() int {
	n := 0
	for el := l.head.next; el != nil; el = el.next {
		if el.ent.visible() {
			n++
		}
	}
	return n
}
