package jsoncrdt

import (
	"encoding/json"
	"reflect"
	"testing"

	"fabriccrdt/internal/lamport"
)

func TestTypeConflictPrecedence(t *testing.T) {
	// Concurrent writes of different TYPES to the same key: both survive
	// internally; presentation precedence is register > map > list.
	a := NewDoc("a", WithOpLog())
	b := NewDoc("b", WithOpLog())
	if _, err := a.Assign("scalar", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append("item", "k"); err != nil {
		t.Fatal(err)
	}
	opsA, opsB := a.TakeOps(), b.TakeOps()
	for _, op := range opsB {
		if err := a.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range opsA {
		if err := b.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	va, _ := a.Get("k")
	vb, _ := b.Get("k")
	if !reflect.DeepEqual(va, vb) {
		t.Fatalf("type-conflicted key diverged: %v vs %v", va, vb)
	}
	if va != "scalar" {
		t.Fatalf("precedence: got %v, want the register value", va)
	}
}

func TestDeepNestingMergeAndRoundTrip(t *testing.T) {
	// Build a 12-level nested object and check merge + persistence.
	inner := any("leaf")
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			inner = []any{inner}
		} else {
			inner = map[string]any{"level": inner}
		}
	}
	obj := map[string]any{"deep": inner}
	doc := NewDoc("p")
	if err := doc.MergeJSON(obj); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc.ToJSON(), obj) {
		t.Fatalf("deep round trip:\n got %v\nwant %v", doc.ToJSON(), obj)
	}
	data, err := doc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back := NewDoc("q")
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.ToJSON(), obj) {
		t.Fatal("deep state round trip diverged")
	}
}

func TestMarshalJSONMatchesToJSON(t *testing.T) {
	doc := NewDoc("p")
	if err := doc.MergeJSON(mustJSON(t, `{"b":2,"a":[{"x":"y"}]}`)); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var viaDoc, viaPlain map[string]any
	if err := json.Unmarshal(data, &viaDoc); err != nil {
		t.Fatal(err)
	}
	plain, err := json.Marshal(doc.ToJSON())
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(plain, &viaPlain); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaDoc, viaPlain) {
		t.Fatalf("MarshalJSON != ToJSON: %v vs %v", viaDoc, viaPlain)
	}
}

func TestPendingOpsSurviveStateRoundTrip(t *testing.T) {
	src := NewDoc("src", WithOpLog())
	if _, err := src.Append("a", "l"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Append("b", "l"); err != nil {
		t.Fatal(err)
	}
	ops := src.TakeOps()

	dst := NewDoc("dst")
	// Deliver only the dependent op; it parks in the pending queue.
	if err := dst.ApplyOp(ops[1]); err != nil {
		t.Fatal(err)
	}
	if dst.PendingCount() != 1 {
		t.Fatalf("pending = %d", dst.PendingCount())
	}
	data, err := dst.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewDoc("x")
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.PendingCount() != 1 {
		t.Fatalf("restored pending = %d", restored.PendingCount())
	}
	// The missing dependency arrives after restore; the parked op drains.
	if err := restored.ApplyOp(ops[0]); err != nil {
		t.Fatal(err)
	}
	got, _ := restored.Get("l")
	if !reflect.DeepEqual(got, []any{"a", "b"}) {
		t.Fatalf("list after restore+drain = %v", got)
	}
	if restored.PendingCount() != 0 {
		t.Fatal("pending not drained after restore")
	}
}

func TestConflictsAtEdgeCases(t *testing.T) {
	doc := NewDoc("p")
	if doc.ConflictsAt("missing") != nil {
		t.Fatal("missing path must have no conflicts")
	}
	if _, err := doc.Assign("v", "k"); err != nil {
		t.Fatal(err)
	}
	if doc.ConflictsAt("k") != nil {
		t.Fatal("single-writer register must have no conflicts")
	}
}

func TestGetAndLenEdgeCases(t *testing.T) {
	doc := NewDoc("p")
	if _, ok := doc.Get("nope"); ok {
		t.Fatal("missing key Get ok")
	}
	if v, ok := doc.Get(); !ok || len(v.(map[string]any)) != 0 {
		t.Fatal("empty-path Get must return the root object")
	}
	if doc.Len("nope") != -1 {
		t.Fatal("Len of missing list must be -1")
	}
	if _, err := doc.Assign("scalar", "k"); err != nil {
		t.Fatal(err)
	}
	if doc.Len("k") != -1 {
		t.Fatal("Len of scalar must be -1")
	}
}

func TestPathCursorErrors(t *testing.T) {
	doc := NewDoc("p")
	if _, err := doc.Append("a", "l"); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"missing"},
		{"l", "notanumber"},
		{"l", "5"},
		{"l", "-1"},
		{"l", "0", "deeper"}, // descends into a scalar
	}
	for _, path := range cases {
		if _, err := doc.PathCursor(path...); err == nil {
			t.Errorf("PathCursor(%v) succeeded", path)
		}
	}
}

func TestOperationValidateCases(t *testing.T) {
	valid := Operation{
		ID:     mustID(t, "1@p"),
		Cursor: Cursor{MapKey("k")},
		Mut:    Mutation{Kind: MutAssign, Value: StringValue("v")},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid op rejected: %v", err)
	}
	bad := []Operation{
		{},
		{ID: mustID(t, "1@p"), Mut: Mutation{Kind: MutAssign, Value: StringValue("v")}},                                         // empty cursor
		{ID: mustID(t, "1@p"), Cursor: Cursor{MapKey("k")}, Mut: Mutation{Kind: MutAssign, Value: Value{Kind: ValueKind(99)}}},  // bad value kind
		{ID: mustID(t, "1@p"), Cursor: Cursor{MapKey("k")}, Mut: Mutation{Kind: MutationKind(42)}},                              // bad mutation
		{ID: mustID(t, "1@p"), Cursor: Cursor{{Kind: CursorListElem}}, Mut: Mutation{Kind: MutAssign, Value: StringValue("v")}}, // zero list elem
		{ID: mustID(t, "1@p"), Cursor: Cursor{{Kind: CursorKind(9), Key: "k"}}, Mut: Mutation{Kind: MutDelete}},                 // bad cursor kind
	}
	for i, op := range bad {
		if err := op.Validate(); err == nil {
			t.Errorf("bad op %d accepted", i)
		}
	}
}

func mustID(t *testing.T, s string) lamport.ID {
	t.Helper()
	id, err := lamport.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return id
}
