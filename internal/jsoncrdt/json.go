package jsoncrdt

import (
	"encoding/json"
	"fmt"
	"sort"

	"fabriccrdt/internal/lamport"
)

// ToJSON returns the document as a plain Go value (map[string]any /
// []any / scalars) with every piece of CRDT metadata stripped — the paper's
// "ConvertCRDTToDataType" (Algorithm 1 line 20).
//
// Determinism rules, identical on every replica:
//
//   - an entry is present iff its presence set is non-empty;
//   - a multi-value register renders the value written by the greatest
//     operation ID (ConflictsAt exposes all concurrent values);
//   - when concurrent type-conflicting updates leave several branches
//     populated, registers win over maps, maps over lists;
//   - list elements appear in list order, skipping tombstones.
func (d *Doc) ToJSON() map[string]any {
	return mapToJSON(d.root)
}

// MarshalJSON renders ToJSON with encoding/json, keys sorted.
func (d *Doc) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.ToJSON())
}

func mapToJSON(m *mapNode) map[string]any {
	out := make(map[string]any, len(m.entries))
	//lint:sorted map-to-map projection; encoding/json emits keys sorted
	for key, e := range m.entries {
		if !e.visible() {
			continue
		}
		if v, ok := entryToJSON(e); ok {
			out[key] = v
		}
	}
	return out
}

func listToJSON(l *listNode) []any {
	out := make([]any, 0, len(l.index))
	for el := l.head.next; el != nil; el = el.next {
		if !el.ent.visible() {
			continue
		}
		if v, ok := entryToJSON(el.ent); ok {
			out = append(out, v)
		}
	}
	return out
}

// entryToJSON converts one entry to its plain value; ok is false when the
// entry carries no renderable content (e.g. fully cleared register).
func entryToJSON(e *entry) (any, bool) {
	if len(e.reg) > 0 {
		return resolveRegister(e.reg).Interface(), true
	}
	if e.mapN != nil {
		return mapToJSON(e.mapN), true
	}
	if e.list != nil {
		return listToJSON(e.list), true
	}
	return nil, false
}

// resolveRegister picks the register value written by the greatest operation
// ID — the deterministic "last writer in Lamport order wins" presentation.
func resolveRegister(reg map[lamport.ID]Value) Value {
	var (
		best   lamport.ID
		bestV  Value
		picked bool
	)
	//lint:sorted running max over totally-ordered Lamport IDs; order-independent
	for id, v := range reg {
		if !picked || best.Less(id) {
			best, bestV, picked = id, v, true
		}
	}
	return bestV
}

// Conflict is one concurrently written register value.
type Conflict struct {
	// ID identifies the operation that wrote the value.
	ID lamport.ID
	// Value is the scalar that was written.
	Value any
}

// ConflictsAt returns every concurrently-live scalar value registered at the
// given path (see PathCursor for path syntax), ordered by operation ID with
// the winning (rendered) value last. It returns nil when the path holds no
// register or at most one value.
func (d *Doc) ConflictsAt(path ...string) []Conflict {
	cursor, err := d.PathCursor(path...)
	if err != nil {
		return nil
	}
	e := d.lookup(cursor)
	if e == nil || len(e.reg) < 2 {
		return nil
	}
	out := make([]Conflict, 0, len(e.reg))
	//lint:sorted collected conflicts are sorted by ID below
	for id, v := range e.reg {
		out = append(out, Conflict{ID: id, Value: v.Interface()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// PathCursor resolves a path of map keys and decimal list indexes (e.g.
// "readings", "0", "temperature") against the current document state,
// returning the cursor addressing it. List indexes count visible elements.
func (d *Doc) PathCursor(path ...string) (Cursor, error) {
	cursor := Cursor{}
	var (
		curMap  = d.root
		curList *listNode
		e       *entry
	)
	for i, seg := range path {
		switch {
		case curMap != nil:
			e = curMap.child(seg, false)
			if e == nil {
				return nil, fmt.Errorf("jsoncrdt: path %v: no key %q", path[:i+1], seg)
			}
			cursor = cursor.Extend(MapKey(seg))
		case curList != nil:
			idx := 0
			if _, err := fmt.Sscanf(seg, "%d", &idx); err != nil {
				return nil, fmt.Errorf("jsoncrdt: path %v: %q is not a list index", path[:i+1], seg)
			}
			el, err := visibleElem(curList, idx)
			if err != nil {
				return nil, fmt.Errorf("jsoncrdt: path %v: %w", path[:i+1], err)
			}
			e = el.ent
			cursor = cursor.Extend(ListElem(el.id))
		default:
			return nil, fmt.Errorf("jsoncrdt: path %v: %q descends into a scalar", path[:i+1], seg)
		}
		curMap, curList = nil, nil
		if i+1 < len(path) {
			curMap, curList = e.mapN, e.list
		}
	}
	return cursor, nil
}

// visibleElem returns the idx-th visible element of l.
func visibleElem(l *listNode, idx int) (*listElem, error) {
	if idx < 0 {
		return nil, fmt.Errorf("negative index %d", idx)
	}
	n := 0
	for el := l.head.next; el != nil; el = el.next {
		if !el.ent.visible() {
			continue
		}
		if n == idx {
			return el, nil
		}
		n++
	}
	return nil, fmt.Errorf("index %d out of range (%d visible)", idx, n)
}
