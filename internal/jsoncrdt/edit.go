package jsoncrdt

import (
	"fmt"

	"fabriccrdt/internal/lamport"
)

// The path-based editing API below is the library-user surface (the paper's
// §5.2 notes the raw operational API is "cumbersome to use"; FabricCRDT
// hides it behind the peer-side merge, and this file hides it behind paths
// for applications such as collaborative document editing).

// Assign writes a scalar (string, float64, bool, nil) or an empty container
// at the map key addressed by path, replacing whatever is currently visible
// there. It returns the generated operation for replication.
func (d *Doc) Assign(value any, path ...string) (Operation, error) {
	if len(path) == 0 {
		return Operation{}, fmt.Errorf("jsoncrdt: assign requires a non-empty path")
	}
	cursor, err := d.editCursor(path)
	if err != nil {
		return Operation{}, err
	}
	val, err := editValue(value)
	if err != nil {
		return Operation{}, err
	}
	deps := d.liveIDsAt(cursor)
	return d.newLocalOp(cursor, Mutation{Kind: MutAssign, Value: val}, deps)
}

// InsertAt inserts a value into the list addressed by path so that it
// becomes the element at the given visible index (0 inserts at the head,
// list length appends). Containers are inserted empty; extend them with
// further Assign/InsertAt calls on paths through the new element.
func (d *Doc) InsertAt(index int, value any, path ...string) (Operation, error) {
	cursor, err := d.editCursor(path)
	if err != nil {
		return Operation{}, err
	}
	val, err := editValue(value)
	if err != nil {
		return Operation{}, err
	}
	var after lamport.ID
	if index > 0 {
		e := d.lookup(cursor)
		if e == nil || e.list == nil {
			return Operation{}, fmt.Errorf("%w at %v", ErrNotAList, path)
		}
		el, err := visibleElem(e.list, index-1)
		if err != nil {
			return Operation{}, fmt.Errorf("jsoncrdt: insert at %v: %w", path, err)
		}
		after = el.id
	}
	return d.newLocalOp(cursor, Mutation{Kind: MutInsert, Value: val, After: after}, nil)
}

// Append inserts a value after the current tail of the list at path.
func (d *Doc) Append(value any, path ...string) (Operation, error) {
	cursor, err := d.editCursor(path)
	if err != nil {
		return Operation{}, err
	}
	val, err := editValue(value)
	if err != nil {
		return Operation{}, err
	}
	return d.newLocalOp(cursor, Mutation{Kind: MutInsert, Value: val, After: d.listTailID(cursor)}, nil)
}

// Delete clears the value at path (a map key or a list element addressed by
// its visible index). Content written concurrently with this delete
// survives (add-wins).
func (d *Doc) Delete(path ...string) (Operation, error) {
	if len(path) == 0 {
		return Operation{}, fmt.Errorf("jsoncrdt: delete requires a non-empty path")
	}
	cursor, err := d.PathCursor(path...)
	if err != nil {
		return Operation{}, err
	}
	deps := d.liveIDsAt(cursor)
	return d.newLocalOp(cursor, Mutation{Kind: MutDelete}, deps)
}

// Get returns the plain value at path, with ok reporting presence.
func (d *Doc) Get(path ...string) (any, bool) {
	if len(path) == 0 {
		return d.ToJSON(), true
	}
	cursor, err := d.PathCursor(path...)
	if err != nil {
		return nil, false
	}
	e := d.lookup(cursor)
	if e == nil || !e.visible() {
		return nil, false
	}
	v, ok := entryToJSON(e)
	return v, ok
}

// Len returns the number of visible elements of the list at path, or -1 if
// the path does not hold a list.
func (d *Doc) Len(path ...string) int {
	cursor, err := d.PathCursor(path...)
	if err != nil {
		return -1
	}
	e := d.lookup(cursor)
	if e == nil || e.list == nil {
		return -1
	}
	return e.list.length()
}

// editCursor resolves a path for writing: existing segments resolve as in
// PathCursor, and a final missing map key is allowed (it will be created by
// the operation itself).
func (d *Doc) editCursor(path []string) (Cursor, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("jsoncrdt: empty path")
	}
	if len(path) == 1 {
		return Cursor{MapKey(path[0])}, nil
	}
	parent, err := d.PathCursor(path[:len(path)-1]...)
	if err != nil {
		return nil, err
	}
	// The final segment: a list index must resolve against an existing
	// element; a map key may be new.
	e := d.lookup(parent)
	if e != nil && e.list != nil {
		full, err := d.PathCursor(path...)
		if err != nil {
			return nil, err
		}
		return full, nil
	}
	return parent.Extend(MapKey(path[len(path)-1])), nil
}

// EmptyMap and EmptyList are sentinels accepted by Assign/InsertAt/Append to
// create container nodes.
type containerSentinel int

const (
	// EmptyMap creates an empty JSON object node.
	EmptyMap containerSentinel = iota + 1
	// EmptyList creates an empty JSON array node.
	EmptyList
)

// editValue converts an API-level value into a mutation Value.
func editValue(v any) (Value, error) {
	switch tv := v.(type) {
	case containerSentinel:
		if tv == EmptyMap {
			return Value{Kind: ValEmptyMap}, nil
		}
		return Value{Kind: ValEmptyList}, nil
	case string, float64, float32, int, int64, bool, nil:
		return scalarValue(tv), nil
	default:
		return Value{}, fmt.Errorf("%w: %T (use EmptyMap/EmptyList for containers)", ErrUnsupportedType, v)
	}
}
