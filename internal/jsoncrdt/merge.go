package jsoncrdt

import (
	"fmt"
	"sort"

	"fabriccrdt/internal/lamport"
)

// MergeJSON implements the paper's Algorithm 2 ("Merge a JSON object with
// JSON CRDT"): it converts a plain JSON value — as produced by
// encoding/json.Unmarshal: map[string]any, []any, string, float64, bool,
// nil — into JSON CRDT operations against this document and applies them.
//
// Semantics follow the paper exactly:
//
//   - a scalar value becomes an assign (insert mutation in the paper's
//     wording) at the cursor extended by its key;
//   - a list value appends each item, recursing for nested containers —
//     lists accumulate, which is what merges the two temperature readings of
//     Listings 1–2 into one two-element list;
//   - a map value recurses per key, extending the cursor with the map key.
//
// Every generated operation ticks the document's Lamport clock and carries
// the dependency list accumulated so far for its top-level key (Algorithm 2
// lines 3–4 reset cursor and dependencies per key), plus the operation IDs
// visible at the assign target so that a later scalar write deterministically
// replaces an earlier one.
//
// The value must be a JSON object (the document root is a map). Map keys are
// processed in sorted order so that every replica generates identical
// operation identifiers for identical inputs.
func (d *Doc) MergeJSON(v any) error {
	obj, ok := v.(map[string]any)
	if !ok {
		return fmt.Errorf("%w: got %T", ErrRootNotObject, v)
	}
	for _, key := range sortedKeys(obj) {
		// Algorithm 2 lines 3-4: fresh cursor and dependency set per key.
		deps := make(idSet)
		if err := d.mergeValue(Cursor{}, key, obj[key], deps); err != nil {
			return fmt.Errorf("jsoncrdt: merging key %q: %w", key, err)
		}
	}
	return nil
}

// mergeValue merges one key/value pair located under parent into the
// document, accumulating the generated operation IDs into deps.
func (d *Doc) mergeValue(parent Cursor, key string, val any, deps idSet) error {
	cursor := parent.Extend(MapKey(key))
	switch tv := val.(type) {
	case string, float64, bool, nil, int, int64, float32:
		// Algorithm 2 lines 6-11: assign the scalar. Clearing the
		// currently visible content makes the later of two same-key scalar
		// writes win deterministically (peers share block order).
		clear := d.liveIDsAt(cursor)
		//lint:sorted id-set union is order-independent
		for id := range deps {
			clear.add(id)
		}
		op, err := d.newLocalOp(cursor, Mutation{Kind: MutAssign, Value: scalarValue(tv)}, clear)
		if err != nil {
			return err
		}
		deps.add(op.ID)
		return nil
	case []any:
		// Algorithm 2 lines 13-16: append every item to the list,
		// recursing for nested containers. Existing elements are never
		// cleared: concurrent transactions' items accumulate.
		for _, item := range tv {
			if err := d.mergeListItem(cursor, item, deps); err != nil {
				return err
			}
		}
		return nil
	case map[string]any:
		// Algorithm 2 lines 18-21: recurse per map key.
		for _, k := range sortedKeys(tv) {
			if err := d.mergeValue(cursor, k, tv[k], deps); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: %T", ErrUnsupportedType, val)
	}
}

// mergeListItem appends one item to the list held by the entry at cursor.
func (d *Doc) mergeListItem(cursor Cursor, item any, deps idSet) error {
	after := d.listTailID(cursor)
	switch tv := item.(type) {
	case string, float64, bool, nil, int, int64, float32:
		op, err := d.newLocalOp(cursor, Mutation{Kind: MutInsert, Value: scalarValue(tv), After: after}, deps)
		if err != nil {
			return err
		}
		deps.add(op.ID)
		return nil
	case map[string]any:
		op, err := d.newLocalOp(cursor, Mutation{Kind: MutInsert, Value: Value{Kind: ValEmptyMap}, After: after}, deps)
		if err != nil {
			return err
		}
		deps.add(op.ID)
		elemCursor := cursor.Extend(ListElem(op.ID))
		for _, k := range sortedKeys(tv) {
			if err := d.mergeValue(elemCursor, k, tv[k], deps); err != nil {
				return err
			}
		}
		return nil
	case []any:
		op, err := d.newLocalOp(cursor, Mutation{Kind: MutInsert, Value: Value{Kind: ValEmptyList}, After: after}, deps)
		if err != nil {
			return err
		}
		deps.add(op.ID)
		elemCursor := cursor.Extend(ListElem(op.ID))
		for _, nested := range tv {
			if err := d.mergeListItem(elemCursor, nested, deps); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: %T", ErrUnsupportedType, item)
	}
}

// listTailID returns the insertion ID of the final element (tombstoned or
// live) of the list at cursor, or the zero ID if the list is empty or does
// not exist yet. Appending after the absolute tail keeps block order.
func (d *Doc) listTailID(cursor Cursor) lamport.ID {
	e := d.lookup(cursor)
	if e == nil || e.list == nil {
		return lamport.ID{}
	}
	tail := e.list.last()
	if tail == nil {
		return lamport.ID{}
	}
	return tail.id
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	//lint:sorted collected keys are sorted below before anything observes them
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// scalarValue converts a Go scalar into a mutation Value.
func scalarValue(v any) Value {
	switch tv := v.(type) {
	case string:
		return StringValue(tv)
	case float64:
		return NumberValue(tv)
	case float32:
		return NumberValue(float64(tv))
	case int:
		return NumberValue(float64(tv))
	case int64:
		return NumberValue(float64(tv))
	case bool:
		return BoolValue(tv)
	case nil:
		return NullValue()
	default:
		// Callers switch on the same type set before calling.
		return NullValue()
	}
}
