// Package jsoncrdt implements the conflict-free replicated JSON datatype of
// Kleppmann & Beresford (IEEE TPDS 2017) as used by FabricCRDT
// (Middleware '19, §5.2).
//
// A Doc is a replicated JSON document. Local edits — and, centrally for
// FabricCRDT, whole JSON objects merged via MergeJSON (the paper's
// Algorithm 2) — generate Operations stamped with Lamport identifiers.
// Operations commute: replicas that apply the same set of operations, in any
// order consistent with the operations' dependencies, converge to the same
// document. ToJSON strips all CRDT metadata and returns the plain value.
package jsoncrdt

import (
	"errors"
	"fmt"
	"sort"

	"fabriccrdt/internal/lamport"
)

// Errors returned by document operations.
var (
	ErrMissingListElem = errors.New("jsoncrdt: cursor references unknown list element")
	ErrNotAList        = errors.New("jsoncrdt: insert target holds no list")
	ErrRootNotObject   = errors.New("jsoncrdt: merged value must be a JSON object")
	ErrUnsupportedType = errors.New("jsoncrdt: unsupported Go value in JSON merge")
)

// Doc is a replicated JSON document. The zero value is unusable; construct
// with NewDoc. Doc is not safe for concurrent use; FabricCRDT's committer
// drives each document from a single goroutine, mirroring Fabric's
// sequential block validation.
type Doc struct {
	clock   *lamport.Clock
	root    *mapNode
	applied idSet
	pending []Operation

	// log accumulates locally generated operations when retention is
	// enabled, so library users can replicate a document by shipping ops.
	log       []Operation
	retainLog bool
}

// Option configures a Doc.
type Option func(*Doc)

// WithOpLog makes the document retain every locally generated operation for
// later retrieval through TakeOps (used to replicate documents op-by-op).
func WithOpLog() Option {
	return func(d *Doc) { d.retainLog = true }
}

// NewDoc returns an empty document whose operations are stamped with the
// given replica identifier.
func NewDoc(replica string, opts ...Option) *Doc {
	d := &Doc{
		clock:   lamport.NewClock(replica),
		root:    newMapNode(),
		applied: make(idSet),
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Replica returns the replica identifier of the document's clock.
func (d *Doc) Replica() string { return d.clock.Replica() }

// Clock returns the identifier of the most recently issued operation.
func (d *Doc) Clock() lamport.ID { return d.clock.Now() }

// AppliedCount returns the number of operations applied so far.
func (d *Doc) AppliedCount() int { return len(d.applied) }

// PendingCount returns the number of operations buffered while waiting for
// their dependencies.
func (d *Doc) PendingCount() int { return len(d.pending) }

// TakeOps returns and clears the locally generated operation log. It returns
// nil unless the document was created with WithOpLog.
func (d *Doc) TakeOps() []Operation {
	ops := d.log
	d.log = nil
	return ops
}

// Applied reports whether the operation with the given ID has been applied.
func (d *Doc) Applied(id lamport.ID) bool { return d.applied.has(id) }

// errWaiting signals that an operation references state (a dependency or a
// list element) that has not arrived yet; the caller buffers the operation.
var errWaiting = errors.New("jsoncrdt: operation waiting for dependency")

// ApplyOp applies a (typically remote) operation. Application is idempotent:
// re-applying an operation is a no-op. If any dependency has not yet been
// applied the operation is buffered and retried automatically once its
// dependencies arrive; buffering is not an error.
//
// Paper §5.2: "if some of the operations are missing, we queue the operation
// until all dependencies are applied."
func (d *Doc) ApplyOp(op Operation) error {
	if err := op.Validate(); err != nil {
		return err
	}
	if d.applied.has(op.ID) {
		return nil
	}
	err := d.tryApply(op)
	if errors.Is(err, errWaiting) {
		d.pending = append(d.pending, op)
		return nil
	}
	if err != nil {
		return err
	}
	return d.drainPending()
}

// tryApply applies op unless a dependency is missing, in which case it
// returns errWaiting without having modified the document.
func (d *Doc) tryApply(op Operation) error {
	if !d.depsSatisfied(op) {
		return errWaiting
	}
	if err := d.precheck(op); err != nil {
		return err
	}
	return d.apply(op)
}

// depsSatisfied reports whether every dependency of op has been applied.
func (d *Doc) depsSatisfied(op Operation) bool {
	for _, dep := range op.Deps {
		if !d.applied.has(dep) {
			return false
		}
	}
	return true
}

// drainPending repeatedly applies buffered operations whose dependencies
// have become satisfied, until a fixpoint.
func (d *Doc) drainPending() error {
	for progress := true; progress && len(d.pending) > 0; {
		progress = false
		queue := d.pending
		var remaining []Operation
		for _, op := range queue {
			if d.applied.has(op.ID) {
				continue // duplicate buffered twice; drop
			}
			err := d.tryApply(op)
			switch {
			case errors.Is(err, errWaiting):
				remaining = append(remaining, op)
			case err != nil:
				return err
			default:
				progress = true
			}
		}
		d.pending = remaining
	}
	return nil
}

// precheck verifies, without modifying the document, that every list element
// the operation references (cursor steps and the insert anchor) exists. A
// missing element means the operation that creates it has not arrived; the
// caller buffers the operation. Missing map keys are fine: apply creates
// them.
func (d *Doc) precheck(op Operation) error {
	var (
		curMap  = d.root
		curList *listNode
		e       *entry
	)
	for i, step := range op.Cursor {
		switch step.Kind {
		case CursorMapKey:
			if curMap == nil {
				// Branch not materialized yet: acceptable only if no later
				// step (or the insert anchor) needs an existing element.
				if cursorNeedsElems(op, i) {
					return errWaiting
				}
				return nil
			}
			e = curMap.child(step.Key, false)
		case CursorListElem:
			if curList == nil {
				return errWaiting
			}
			el := curList.find(step.Elem)
			if el == nil {
				return errWaiting
			}
			e = el.ent
		}
		if e == nil {
			if cursorNeedsElems(op, i) {
				return errWaiting
			}
			return nil
		}
		curMap, curList = nil, nil
		if i+1 < len(op.Cursor) {
			switch op.Cursor[i+1].Kind {
			case CursorMapKey:
				curMap = e.mapN
			case CursorListElem:
				curList = e.list
			}
		}
	}
	if op.Mut.Kind == MutInsert && !op.Mut.After.IsZero() {
		if e == nil || e.list == nil || e.list.find(op.Mut.After) == nil {
			return errWaiting
		}
	}
	return nil
}

// cursorNeedsElems reports whether any cursor step at or after index i
// addresses a list element, or the mutation anchors an insert on one — the
// cases where an unmaterialized path means a missing dependency rather than
// a key that apply can create.
func cursorNeedsElems(op Operation, i int) bool {
	for _, step := range op.Cursor[i+1:] {
		if step.Kind == CursorListElem {
			return true
		}
	}
	return op.Mut.Kind == MutInsert && !op.Mut.After.IsZero()
}

// apply performs the mutation of op against the tree. The caller has already
// checked idempotence, dependencies and (via precheck) list-element
// existence.
func (d *Doc) apply(op Operation) error {
	target, err := d.resolve(op)
	if err != nil {
		return err
	}
	deps := make(idSet, len(op.Deps))
	for _, dep := range op.Deps {
		deps.add(dep)
	}
	switch op.Mut.Kind {
	case MutAssign:
		target.clear(deps)
		target.pres.add(op.ID)
		d.applyValue(target, op.ID, op.Mut.Value)
	case MutInsert:
		l := target.ensureList()
		var ref *listElem
		if !op.Mut.After.IsZero() {
			ref = l.find(op.Mut.After)
			if ref == nil {
				return fmt.Errorf("%w: insert anchor %s", ErrMissingListElem, op.Mut.After)
			}
		}
		el := l.insertAfter(ref, op.ID)
		el.ent.pres.add(op.ID)
		d.applyValue(el.ent, op.ID, op.Mut.Value)
	case MutDelete:
		target.clear(deps)
	default:
		return fmt.Errorf("%w: kind %d", ErrBadMutation, int(op.Mut.Kind))
	}
	d.applied.add(op.ID)
	d.clock.Witness(op.ID)
	return nil
}

// applyValue writes a mutation payload into an entry.
func (d *Doc) applyValue(e *entry, id lamport.ID, v Value) {
	switch v.Kind {
	case ValEmptyMap:
		e.ensureMap()
	case ValEmptyList:
		e.ensureList()
	default:
		if e.reg == nil {
			e.reg = make(map[lamport.ID]Value)
		}
		e.reg[id] = v
	}
}

// resolve walks the cursor from the root, creating map entries and container
// branches as needed and stamping op.ID into the presence set of every entry
// along the path (so that a concurrent delete higher up does not erase this
// operation's effect). It returns the entry the mutation targets.
func (d *Doc) resolve(op Operation) (*entry, error) {
	var (
		curMap  = d.root
		curList *listNode
		target  *entry
	)
	for i, step := range op.Cursor {
		switch step.Kind {
		case CursorMapKey:
			if curMap == nil {
				return nil, fmt.Errorf("%w: map step %q inside non-map at %s", ErrTypeConflict, step.Key, Cursor(op.Cursor[:i]))
			}
			target = curMap.child(step.Key, true)
		case CursorListElem:
			if curList == nil {
				return nil, fmt.Errorf("%w: list step at %s", ErrTypeConflict, Cursor(op.Cursor[:i]))
			}
			el := curList.find(step.Elem)
			if el == nil {
				return nil, fmt.Errorf("%w: %s", ErrMissingListElem, step.Elem)
			}
			target = el.ent
		default:
			return nil, fmt.Errorf("%w: step kind %d", ErrBadCursor, int(step.Kind))
		}
		target.pres.add(op.ID)
		curMap, curList = nil, nil
		if i+1 < len(op.Cursor) {
			// Descend into the branch matching the next step's kind.
			switch op.Cursor[i+1].Kind {
			case CursorMapKey:
				curMap = target.ensureMap()
			case CursorListElem:
				curList = target.ensureList()
			}
		}
	}
	return target, nil
}

// --- Local edit API -------------------------------------------------------

// newLocalOp stamps a fresh operation and applies it locally.
func (d *Doc) newLocalOp(cursor Cursor, mut Mutation, deps idSet) (Operation, error) {
	ids := make([]lamport.ID, 0, len(deps))
	//lint:sorted collected dep IDs are sorted below before stamping the op
	for id := range deps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	op := Operation{
		ID:     d.clock.Tick(),
		Deps:   ids,
		Cursor: cursor,
		Mut:    mut,
	}
	if err := op.Validate(); err != nil {
		return Operation{}, err
	}
	if err := d.apply(op); err != nil {
		return Operation{}, err
	}
	if d.retainLog {
		d.log = append(d.log, op)
	}
	return op, nil
}

// liveIDsAt returns the set of operation IDs visible in the subtree the
// cursor addresses; an assign or delete there must clear exactly this set so
// that causally prior content vanishes while concurrent content survives.
func (d *Doc) liveIDsAt(cursor Cursor) idSet {
	deps := make(idSet)
	e := d.lookup(cursor)
	if e != nil {
		e.liveIDs(deps)
	}
	return deps
}

// lookup walks the cursor without creating or stamping anything, returning
// nil if the path does not exist.
func (d *Doc) lookup(cursor Cursor) *entry {
	var (
		curMap  = d.root
		curList *listNode
		target  *entry
	)
	for i, step := range cursor {
		switch step.Kind {
		case CursorMapKey:
			if curMap == nil {
				return nil
			}
			target = curMap.child(step.Key, false)
		case CursorListElem:
			if curList == nil {
				return nil
			}
			el := curList.find(step.Elem)
			if el == nil {
				return nil
			}
			target = el.ent
		}
		if target == nil {
			return nil
		}
		curMap, curList = nil, nil
		if i+1 < len(cursor) {
			switch cursor[i+1].Kind {
			case CursorMapKey:
				curMap = target.mapN
			case CursorListElem:
				curList = target.list
			}
		}
	}
	return target
}
