package jsoncrdt

import (
	"encoding/json"
	"fmt"
	"sort"

	"fabriccrdt/internal/lamport"
)

// FabricCRDT persists each ledger key's JSON CRDT document between blocks so
// that deltas from later blocks merge against the full operation history
// (DESIGN.md §3). The wire format is deterministic JSON: identical documents
// marshal to identical bytes on every peer.

type docState struct {
	Replica string      `json:"replica"`
	Counter uint64      `json:"counter"`
	Applied []string    `json:"applied,omitempty"`
	Pending []Operation `json:"pending,omitempty"`
	Root    *mapState   `json:"root"`
}

type mapState struct {
	Entries map[string]*entryState `json:"entries,omitempty"`
}

type entryState struct {
	Pres []string    `json:"pres,omitempty"`
	Reg  []regState  `json:"reg,omitempty"`
	Map  *mapState   `json:"map,omitempty"`
	List []elemState `json:"list,omitempty"`
}

type regState struct {
	ID    string `json:"id"`
	Value Value  `json:"value"`
}

type elemState struct {
	ID    string      `json:"id"`
	Entry *entryState `json:"entry"`
}

// MarshalBinary serializes the full document state — tree, clock, applied
// set and pending queue — deterministically.
func (d *Doc) MarshalBinary() ([]byte, error) {
	st := docState{
		Replica: d.clock.Replica(),
		Counter: d.clock.Counter(),
		Applied: sortedIDStrings(d.applied),
		Pending: append([]Operation(nil), d.pending...),
		Root:    marshalMap(d.root),
	}
	return json.Marshal(st)
}

// UnmarshalBinary restores a document serialized by MarshalBinary,
// replacing the receiver's entire state.
func (d *Doc) UnmarshalBinary(data []byte) error {
	var st docState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("jsoncrdt: decoding document state: %w", err)
	}
	clock := lamport.NewClock(st.Replica)
	clock.Restore(st.Counter)
	applied := make(idSet, len(st.Applied))
	for _, s := range st.Applied {
		id, err := lamport.Parse(s)
		if err != nil {
			return fmt.Errorf("jsoncrdt: decoding applied set: %w", err)
		}
		applied.add(id)
	}
	root, err := unmarshalMap(st.Root)
	if err != nil {
		return err
	}
	d.clock = clock
	d.applied = applied
	d.pending = st.Pending
	d.root = root
	d.log = nil
	return nil
}

// Clone returns a deep copy of the document.
func (d *Doc) Clone() (*Doc, error) {
	data, err := d.MarshalBinary()
	if err != nil {
		return nil, err
	}
	out := NewDoc(d.Replica())
	if err := out.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	out.retainLog = d.retainLog
	return out, nil
}

func marshalMap(m *mapNode) *mapState {
	if m == nil {
		return nil
	}
	st := &mapState{Entries: make(map[string]*entryState, len(m.entries))}
	//lint:sorted map-to-map projection; encoding/json emits keys sorted
	for k, e := range m.entries {
		st.Entries[k] = marshalEntry(e)
	}
	return st
}

func marshalEntry(e *entry) *entryState {
	st := &entryState{
		Pres: sortedIDStrings(e.pres),
		Map:  marshalMap(e.mapN),
	}
	if len(e.reg) > 0 {
		st.Reg = make([]regState, 0, len(e.reg))
		//lint:sorted collected register states are sorted by ID below
		for id, v := range e.reg {
			st.Reg = append(st.Reg, regState{ID: id.String(), Value: v})
		}
		sort.Slice(st.Reg, func(i, j int) bool { return st.Reg[i].ID < st.Reg[j].ID })
	}
	if e.list != nil {
		st.List = make([]elemState, 0, len(e.list.index))
		for el := e.list.head.next; el != nil; el = el.next {
			st.List = append(st.List, elemState{ID: el.id.String(), Entry: marshalEntry(el.ent)})
		}
	}
	return st
}

func unmarshalMap(st *mapState) (*mapNode, error) {
	m := newMapNode()
	if st == nil {
		return m, nil
	}
	//lint:sorted rebuilding a map from a map; insertion order is invisible
	for k, es := range st.Entries {
		e, err := unmarshalEntry(es)
		if err != nil {
			return nil, err
		}
		m.entries[k] = e
	}
	return m, nil
}

func unmarshalEntry(st *entryState) (*entry, error) {
	e := newEntry()
	for _, s := range st.Pres {
		id, err := lamport.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("jsoncrdt: decoding presence set: %w", err)
		}
		e.pres.add(id)
	}
	if len(st.Reg) > 0 {
		e.reg = make(map[lamport.ID]Value, len(st.Reg))
		for _, r := range st.Reg {
			id, err := lamport.Parse(r.ID)
			if err != nil {
				return nil, fmt.Errorf("jsoncrdt: decoding register: %w", err)
			}
			e.reg[id] = r.Value
		}
	}
	if st.Map != nil {
		m, err := unmarshalMap(st.Map)
		if err != nil {
			return nil, err
		}
		e.mapN = m
	}
	if st.List != nil {
		l := newListNode()
		tail := l.head
		for _, es := range st.List {
			id, err := lamport.Parse(es.ID)
			if err != nil {
				return nil, fmt.Errorf("jsoncrdt: decoding list element: %w", err)
			}
			child, err := unmarshalEntry(es.Entry)
			if err != nil {
				return nil, err
			}
			el := &listElem{id: id, ent: child}
			tail.next = el
			tail = el
			l.index[id] = el
		}
		e.list = l
	}
	return e, nil
}

func sortedIDStrings(s idSet) []string {
	if len(s) == 0 {
		return nil
	}
	ids := make([]lamport.ID, 0, len(s))
	//lint:sorted collected IDs are sorted below before anything observes them
	for id := range s {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id.String()
	}
	return out
}
