package jsoncrdt

import (
	"errors"
	"fmt"

	"fabriccrdt/internal/lamport"
)

// ValueKind enumerates the primitive and container kinds a mutation can
// carry. Containers are created empty and filled by subsequent operations,
// exactly as in Kleppmann & Beresford's operational model.
type ValueKind int

const (
	// ValNull is the JSON null scalar.
	ValNull ValueKind = iota + 1
	// ValString is a JSON string scalar.
	ValString
	// ValNumber is a JSON number scalar (decoded as float64).
	ValNumber
	// ValBool is a JSON boolean scalar.
	ValBool
	// ValEmptyMap creates an empty JSON object node.
	ValEmptyMap
	// ValEmptyList creates an empty JSON array node.
	ValEmptyList
)

func (k ValueKind) String() string {
	switch k {
	case ValNull:
		return "null"
	case ValString:
		return "string"
	case ValNumber:
		return "number"
	case ValBool:
		return "bool"
	case ValEmptyMap:
		return "map"
	case ValEmptyList:
		return "list"
	default:
		return fmt.Sprintf("ValueKind(%d)", int(k))
	}
}

// Value is the payload of an assign or insert mutation.
type Value struct {
	Kind ValueKind `json:"kind"`
	Str  string    `json:"str,omitempty"`
	Num  float64   `json:"num,omitempty"`
	Bool bool      `json:"bool,omitempty"`
}

// StringValue returns a string-scalar Value.
func StringValue(s string) Value { return Value{Kind: ValString, Str: s} }

// NumberValue returns a number-scalar Value.
func NumberValue(f float64) Value { return Value{Kind: ValNumber, Num: f} }

// BoolValue returns a boolean-scalar Value.
func BoolValue(b bool) Value { return Value{Kind: ValBool, Bool: b} }

// NullValue returns the JSON null Value.
func NullValue() Value { return Value{Kind: ValNull} }

// IsScalar reports whether the value is a primitive (not a container).
func (v Value) IsScalar() bool {
	switch v.Kind {
	case ValNull, ValString, ValNumber, ValBool:
		return true
	}
	return false
}

// Interface returns the plain Go representation of a scalar value.
// Containers return nil.
func (v Value) Interface() any {
	switch v.Kind {
	case ValString:
		return v.Str
	case ValNumber:
		return v.Num
	case ValBool:
		return v.Bool
	default:
		return nil
	}
}

// CursorKind distinguishes the two ways a cursor step addresses a child.
type CursorKind int

const (
	// CursorMapKey addresses a map entry by its string key.
	CursorMapKey CursorKind = iota + 1
	// CursorListElem addresses a list element by its insertion ID.
	CursorListElem
)

// CursorElem is one step of a cursor path.
type CursorElem struct {
	Kind CursorKind `json:"kind"`
	Key  string     `json:"key,omitempty"`
	Elem lamport.ID `json:"elem,omitempty"`
}

// MapKey returns a cursor step addressing map key k.
func MapKey(k string) CursorElem { return CursorElem{Kind: CursorMapKey, Key: k} }

// ListElem returns a cursor step addressing the list element inserted by id.
func ListElem(id lamport.ID) CursorElem {
	return CursorElem{Kind: CursorListElem, Elem: id}
}

// Cursor is the path from the document root to the node a mutation targets
// (paper §5.2: "the cursor defines the path from the head of the JSON CRDT
// to the node where the mutation happens").
type Cursor []CursorElem

// Extend returns a new cursor with elem appended; the receiver is unchanged.
func (c Cursor) Extend(elem CursorElem) Cursor {
	out := make(Cursor, len(c)+1)
	copy(out, c)
	out[len(c)] = elem
	return out
}

// String renders the cursor as a /-separated path for diagnostics.
func (c Cursor) String() string {
	if len(c) == 0 {
		return "/"
	}
	s := ""
	for _, e := range c {
		switch e.Kind {
		case CursorMapKey:
			s += "/" + e.Key
		case CursorListElem:
			s += "/[" + e.Elem.String() + "]"
		}
	}
	return s
}

// MutationKind enumerates the operations of the JSON CRDT.
type MutationKind int

const (
	// MutAssign writes a value at the cursor target, clearing causally
	// prior content (concurrent content survives: add-wins).
	MutAssign MutationKind = iota + 1
	// MutInsert inserts a new list element after the element identified by
	// Mutation.After (zero ID inserts at the head). The cursor target is
	// the entry holding the list.
	MutInsert
	// MutDelete clears the cursor target's causally prior content.
	MutDelete
)

func (k MutationKind) String() string {
	switch k {
	case MutAssign:
		return "assign"
	case MutInsert:
		return "insert"
	case MutDelete:
		return "delete"
	default:
		return fmt.Sprintf("MutationKind(%d)", int(k))
	}
}

// Mutation is the modification applied at the cursor target.
type Mutation struct {
	Kind  MutationKind `json:"kind"`
	Value Value        `json:"value,omitempty"`
	// After identifies the list element the insert lands after; the zero
	// ID means "insert at list head". Only meaningful for MutInsert.
	After lamport.ID `json:"after,omitempty"`
}

// Operation is one JSON CRDT update: a globally unique identifier, the set
// of operations that must precede it (and that an assign/delete clears), the
// cursor locating its target, and the mutation itself.
type Operation struct {
	ID     lamport.ID   `json:"id"`
	Deps   []lamport.ID `json:"deps,omitempty"`
	Cursor Cursor       `json:"cursor,omitempty"`
	Mut    Mutation     `json:"mut"`
}

// Validation errors for operations.
var (
	ErrZeroOpID     = errors.New("jsoncrdt: operation has zero ID")
	ErrBadMutation  = errors.New("jsoncrdt: malformed mutation")
	ErrBadCursor    = errors.New("jsoncrdt: malformed cursor")
	ErrTypeConflict = errors.New("jsoncrdt: cursor step does not match node type")
)

// Validate performs structural checks on the operation.
func (op Operation) Validate() error {
	if op.ID.IsZero() {
		return ErrZeroOpID
	}
	switch op.Mut.Kind {
	case MutAssign, MutInsert:
		switch op.Mut.Value.Kind {
		case ValNull, ValString, ValNumber, ValBool, ValEmptyMap, ValEmptyList:
		default:
			return fmt.Errorf("%w: %s with value kind %d", ErrBadMutation, op.Mut.Kind, int(op.Mut.Value.Kind))
		}
	case MutDelete:
	default:
		return fmt.Errorf("%w: kind %d", ErrBadMutation, int(op.Mut.Kind))
	}
	if len(op.Cursor) == 0 {
		// The document root is a map, so every mutation targets the entry
		// of at least one map key.
		return fmt.Errorf("%w: %s requires a non-empty cursor", ErrBadCursor, op.Mut.Kind)
	}
	for _, e := range op.Cursor {
		switch e.Kind {
		case CursorMapKey:
		case CursorListElem:
			if e.Elem.IsZero() {
				return fmt.Errorf("%w: list step with zero element ID", ErrBadCursor)
			}
		default:
			return fmt.Errorf("%w: step kind %d", ErrBadCursor, int(e.Kind))
		}
	}
	return nil
}
