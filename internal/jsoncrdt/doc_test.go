package jsoncrdt

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fabriccrdt/internal/lamport"
)

func TestEditAssignAndGet(t *testing.T) {
	doc := NewDoc("p0")
	if _, err := doc.Assign("e23df70a", "deviceID"); err != nil {
		t.Fatal(err)
	}
	got, ok := doc.Get("deviceID")
	if !ok || got != "e23df70a" {
		t.Fatalf("Get(deviceID) = %v, %v", got, ok)
	}
}

func TestEditAppendAndLen(t *testing.T) {
	doc := NewDoc("p0")
	if _, err := doc.Append("a", "tags"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Append("b", "tags"); err != nil {
		t.Fatal(err)
	}
	if n := doc.Len("tags"); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	got, _ := doc.Get("tags")
	if !reflect.DeepEqual(got, []any{"a", "b"}) {
		t.Fatalf("tags = %v", got)
	}
}

func TestEditInsertAtHeadAndMiddle(t *testing.T) {
	doc := NewDoc("p0")
	for _, s := range []string{"b", "d"} {
		if _, err := doc.Append(s, "l"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := doc.InsertAt(0, "a", "l"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.InsertAt(2, "c", "l"); err != nil {
		t.Fatal(err)
	}
	got, _ := doc.Get("l")
	if !reflect.DeepEqual(got, []any{"a", "b", "c", "d"}) {
		t.Fatalf("list = %v, want [a b c d]", got)
	}
}

func TestEditDeleteMapKey(t *testing.T) {
	doc := NewDoc("p0")
	if _, err := doc.Assign("x", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Get("k"); ok {
		t.Fatal("k still visible after delete")
	}
	if _, ok := doc.ToJSON()["k"]; ok {
		t.Fatal("k still rendered after delete")
	}
}

func TestEditDeleteListElement(t *testing.T) {
	doc := NewDoc("p0")
	for _, s := range []string{"a", "b", "c"} {
		if _, err := doc.Append(s, "l"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := doc.Delete("l", "1"); err != nil {
		t.Fatal(err)
	}
	got, _ := doc.Get("l")
	if !reflect.DeepEqual(got, []any{"a", "c"}) {
		t.Fatalf("after delete: %v, want [a c]", got)
	}
	// Tombstone must keep ordering stable for later inserts.
	if _, err := doc.InsertAt(1, "B", "l"); err != nil {
		t.Fatal(err)
	}
	got, _ = doc.Get("l")
	if !reflect.DeepEqual(got, []any{"a", "B", "c"}) {
		t.Fatalf("after reinsert: %v, want [a B c]", got)
	}
}

func TestEditNestedContainers(t *testing.T) {
	doc := NewDoc("p0")
	if _, err := doc.Assign(EmptyMap, "device"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Assign("dev-1", "device", "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Assign(EmptyList, "device", "readings"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Append(21.5, "device", "readings"); err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"device": map[string]any{"id": "dev-1", "readings": []any{21.5}}}
	if got := doc.ToJSON(); !reflect.DeepEqual(got, want) {
		t.Fatalf("doc = %v, want %v", got, want)
	}
}

func TestEditAssignOverwritesContainer(t *testing.T) {
	doc := NewDoc("p0")
	if _, err := doc.Append("x", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Assign("scalar-now", "k"); err != nil {
		t.Fatal(err)
	}
	got, _ := doc.Get("k")
	if got != "scalar-now" {
		t.Fatalf("k = %v, want scalar-now", got)
	}
}

func TestEditErrors(t *testing.T) {
	doc := NewDoc("p0")
	if _, err := doc.Assign("v"); err == nil {
		t.Error("Assign with empty path must fail")
	}
	if _, err := doc.Delete(); err == nil {
		t.Error("Delete with empty path must fail")
	}
	if _, err := doc.InsertAt(3, "v", "nosuch"); err == nil {
		t.Error("InsertAt beyond missing list must fail")
	}
	if _, err := doc.Assign(struct{}{}, "k"); err == nil {
		t.Error("Assign with unsupported type must fail")
	}
	if _, err := doc.Delete("nosuch"); err == nil {
		t.Error("Delete of missing key must fail")
	}
}

func TestApplyOpIdempotent(t *testing.T) {
	doc := NewDoc("p0", WithOpLog())
	if _, err := doc.Assign("v", "k"); err != nil {
		t.Fatal(err)
	}
	ops := doc.TakeOps()
	if len(ops) != 1 {
		t.Fatalf("op log has %d entries, want 1", len(ops))
	}
	before := doc.AppliedCount()
	if err := doc.ApplyOp(ops[0]); err != nil {
		t.Fatal(err)
	}
	if doc.AppliedCount() != before {
		t.Fatal("re-applying an op changed the document")
	}
}

func TestApplyOpValidation(t *testing.T) {
	doc := NewDoc("p0")
	if err := doc.ApplyOp(Operation{}); err == nil {
		t.Fatal("zero op must be rejected")
	}
	op := Operation{
		ID:     lamport.ID{Counter: 1, Replica: "x"},
		Cursor: Cursor{MapKey("k")},
		Mut:    Mutation{Kind: MutationKind(99)},
	}
	if err := doc.ApplyOp(op); err == nil {
		t.Fatal("bad mutation kind must be rejected")
	}
}

func TestPendingOpWaitsForDependency(t *testing.T) {
	src := NewDoc("src", WithOpLog())
	if _, err := src.Append("a", "l"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Append("b", "l"); err != nil {
		t.Fatal(err)
	}
	ops := src.TakeOps()
	dst := NewDoc("dst")
	// Apply the second op first: it inserts after the first op's element,
	// which does not exist yet, so it must be buffered.
	if err := dst.ApplyOp(ops[1]); err != nil {
		t.Fatal(err)
	}
	if dst.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", dst.PendingCount())
	}
	if err := dst.ApplyOp(ops[0]); err != nil {
		t.Fatal(err)
	}
	if dst.PendingCount() != 0 {
		t.Fatalf("pending = %d after dependency arrived, want 0", dst.PendingCount())
	}
	got, _ := dst.Get("l")
	if !reflect.DeepEqual(got, []any{"a", "b"}) {
		t.Fatalf("list = %v, want [a b]", got)
	}
}

func TestConcurrentAssignConflictResolution(t *testing.T) {
	a := NewDoc("a", WithOpLog())
	b := NewDoc("b", WithOpLog())
	if _, err := a.Assign("from-a", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Assign("from-b", "k"); err != nil {
		t.Fatal(err)
	}
	opsA, opsB := a.TakeOps(), b.TakeOps()
	for _, op := range opsB {
		if err := a.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range opsA {
		if err := b.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	va, _ := a.Get("k")
	vb, _ := b.Get("k")
	if va != vb {
		t.Fatalf("replicas disagree: %v vs %v", va, vb)
	}
	// Both concurrent values must be observable.
	conflicts := a.ConflictsAt("k")
	if len(conflicts) != 2 {
		t.Fatalf("conflicts = %v, want 2 values", conflicts)
	}
	// Same counter (1) on both; replica "b" sorts above "a", so b's write
	// renders.
	if va != "from-b" {
		t.Fatalf("rendered value = %v, want from-b (greater Lamport ID)", va)
	}
}

func TestAddWinsDeleteVsConcurrentInsert(t *testing.T) {
	// Replica A deletes the list; concurrently replica B appends. After
	// exchange, B's element must survive (add-wins).
	a := NewDoc("a", WithOpLog())
	b := NewDoc("b", WithOpLog())
	if _, err := a.Append("old", "l"); err != nil {
		t.Fatal(err)
	}
	for _, op := range a.TakeOps() {
		if err := b.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Delete("l"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Append("new", "l"); err != nil {
		t.Fatal(err)
	}
	opsA, opsB := a.TakeOps(), b.TakeOps()
	for _, op := range opsB {
		if err := a.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range opsA {
		if err := b.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	ga, _ := a.Get("l")
	gb, _ := b.Get("l")
	if !reflect.DeepEqual(ga, gb) {
		t.Fatalf("replicas diverged: %v vs %v", ga, gb)
	}
	if !reflect.DeepEqual(ga, []any{"new"}) {
		t.Fatalf("list = %v, want [new] (delete clears old, concurrent add survives)", ga)
	}
}

// TestConvergenceUnderPermutedDelivery is the core CRDT property: replicas
// applying the same operations in different (dependency-respecting) orders
// converge. Delivery order is shuffled; the pending queue handles gaps.
func TestConvergenceUnderPermutedDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		src := NewDoc("src", WithOpLog())
		nops := 2 + rng.Intn(20)
		for i := 0; i < nops; i++ {
			var err error
			switch rng.Intn(4) {
			case 0:
				_, err = src.Assign(string(rune('a'+rng.Intn(26))), "key"+string(rune('0'+rng.Intn(3))))
			case 1:
				_, err = src.Append(float64(rng.Intn(100)), "list"+string(rune('0'+rng.Intn(2))))
			case 2:
				if src.Len("list0") > 0 {
					_, err = src.Delete("list0", "0")
				} else {
					_, err = src.Append("seed", "list0")
				}
			case 3:
				_, err = src.Assign(EmptyMap, "m")
				if err == nil {
					_, err = src.Assign(float64(trial), "m", "inner")
				}
			}
			if err != nil {
				t.Fatalf("trial %d op %d: %v", trial, i, err)
			}
		}
		ops := src.TakeOps()
		perm := rng.Perm(len(ops))
		dst := NewDoc("dst")
		for _, idx := range perm {
			if err := dst.ApplyOp(ops[idx]); err != nil {
				t.Fatalf("trial %d: apply shuffled op: %v", trial, err)
			}
		}
		if dst.PendingCount() != 0 {
			t.Fatalf("trial %d: %d ops stuck pending", trial, dst.PendingCount())
		}
		if !reflect.DeepEqual(src.ToJSON(), dst.ToJSON()) {
			t.Fatalf("trial %d: divergence\nsrc=%v\ndst=%v\norder=%v", trial, src.ToJSON(), dst.ToJSON(), perm)
		}
	}
}

// Property test: merging arbitrary JSON-shaped maps never errors and the
// result is reproducible on a second replica.
func TestMergeJSONDeterminismProperty(t *testing.T) {
	gen := func(seed int64) map[string]any {
		rng := rand.New(rand.NewSource(seed))
		return randomJSONObject(rng, 3)
	}
	f := func(seed int64) bool {
		obj := gen(seed)
		a, b := NewDoc("r"), NewDoc("r")
		if err := a.MergeJSON(obj); err != nil {
			return false
		}
		if err := b.MergeJSON(obj); err != nil {
			return false
		}
		return reflect.DeepEqual(a.ToJSON(), b.ToJSON())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomJSONObject builds a random JSON-shaped object with bounded depth.
func randomJSONObject(rng *rand.Rand, depth int) map[string]any {
	n := 1 + rng.Intn(4)
	obj := make(map[string]any, n)
	for i := 0; i < n; i++ {
		key := "k" + string(rune('a'+rng.Intn(8)))
		obj[key] = randomJSONValue(rng, depth)
	}
	return obj
}

func randomJSONValue(rng *rand.Rand, depth int) any {
	if depth <= 0 {
		return float64(rng.Intn(1000))
	}
	switch rng.Intn(5) {
	case 0:
		return "s" + string(rune('a'+rng.Intn(26)))
	case 1:
		return float64(rng.Intn(1000))
	case 2:
		return rng.Intn(2) == 0
	case 3:
		n := rng.Intn(3)
		l := make([]any, n)
		for i := range l {
			l[i] = randomJSONValue(rng, depth-1)
		}
		return l
	default:
		return randomJSONObject(rng, depth-1)
	}
}

func TestRGAConcurrentInsertConvergence(t *testing.T) {
	// Two replicas concurrently insert at the head of the same list; after
	// exchanging ops both must order the elements identically.
	seed := NewDoc("seed", WithOpLog())
	if _, err := seed.Append("base", "l"); err != nil {
		t.Fatal(err)
	}
	seedOps := seed.TakeOps()

	a := NewDoc("a", WithOpLog())
	b := NewDoc("b", WithOpLog())
	for _, op := range seedOps {
		if err := a.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
		if err := b.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.InsertAt(0, "from-a", "l"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.InsertAt(0, "from-b", "l"); err != nil {
		t.Fatal(err)
	}
	opsA, opsB := a.TakeOps(), b.TakeOps()
	for _, op := range opsB {
		if err := a.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range opsA {
		if err := b.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	ga, _ := a.Get("l")
	gb, _ := b.Get("l")
	if !reflect.DeepEqual(ga, gb) {
		t.Fatalf("replicas diverged: %v vs %v", ga, gb)
	}
	if len(ga.([]any)) != 3 {
		t.Fatalf("list = %v, want 3 elements", ga)
	}
}

func TestStateRoundTrip(t *testing.T) {
	doc := NewDoc("p0")
	deltas := []string{
		`{"deviceID": "e23df70a", "temperatureReadings": [{"temperature": 25}]}`,
		`{"temperatureReadings": [{"temperature": 30}, {"temperature": 15}]}`,
	}
	for _, ds := range deltas {
		if err := doc.MergeJSON(mustJSON(t, ds)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := doc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back := NewDoc("other")
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc.ToJSON(), back.ToJSON()) {
		t.Fatalf("state round trip diverged:\n%v\n%v", doc.ToJSON(), back.ToJSON())
	}
	if back.Replica() != "p0" {
		t.Fatalf("replica = %q, want p0", back.Replica())
	}
	// The restored clock must continue past the persisted counter.
	if err := back.MergeJSON(mustJSON(t, `{"x": "y"}`)); err != nil {
		t.Fatal(err)
	}
	data2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) == string(data) {
		t.Fatal("state did not change after further merge")
	}
}

func TestStateRoundTripDeterministic(t *testing.T) {
	doc := NewDoc("p0")
	if err := doc.MergeJSON(mustJSON(t, `{"a": ["x"], "b": {"c": 1}}`)); err != nil {
		t.Fatal(err)
	}
	d1, err := doc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := doc.Clone()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := clone.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Fatalf("clone serialization differs:\n%s\n%s", d1, d2)
	}
}

func TestUnmarshalBinaryErrors(t *testing.T) {
	doc := NewDoc("p0")
	for _, bad := range []string{"", "{", `{"applied": ["notanid"], "root": {}}`} {
		if err := doc.UnmarshalBinary([]byte(bad)); err == nil {
			t.Errorf("UnmarshalBinary(%q) succeeded, want error", bad)
		}
	}
}

func TestCursorString(t *testing.T) {
	c := Cursor{MapKey("a"), ListElem(lamport.ID{Counter: 3, Replica: "p"}), MapKey("b")}
	if got := c.String(); got != "/a/[3@p]/b" {
		t.Fatalf("cursor string = %q", got)
	}
	if got := (Cursor{}).String(); got != "/" {
		t.Fatalf("empty cursor string = %q", got)
	}
}

func BenchmarkMergeJSONSmallDelta(b *testing.B) {
	delta := map[string]any{
		"tempReadings": []any{map[string]any{"temperature": "21"}},
	}
	b.ReportAllocs()
	doc := NewDoc("p0")
	for i := 0; i < b.N; i++ {
		if err := doc.MergeJSON(delta); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkToJSONGrownDoc(b *testing.B) {
	doc := NewDoc("p0")
	delta := map[string]any{
		"tempReadings": []any{map[string]any{"temperature": "21"}},
	}
	for i := 0; i < 1000; i++ {
		if err := doc.MergeJSON(delta); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = doc.ToJSON()
	}
}

func BenchmarkStateRoundTrip(b *testing.B) {
	doc := NewDoc("p0")
	delta := map[string]any{
		"tempReadings": []any{map[string]any{"temperature": "21"}},
	}
	for i := 0; i < 100; i++ {
		if err := doc.MergeJSON(delta); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := doc.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		back := NewDoc("x")
		if err := back.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}
