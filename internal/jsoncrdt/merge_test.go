package jsoncrdt

import (
	"encoding/json"
	"reflect"
	"testing"
)

func mustJSON(t *testing.T, s string) map[string]any {
	t.Helper()
	var v map[string]any
	if err := json.Unmarshal([]byte(s), &v); err != nil {
		t.Fatalf("bad test JSON %q: %v", s, err)
	}
	return v
}

// TestPaperListing1Merge reproduces the paper's Listings 1 and 2: two
// transactions write JSON objects with key "Device1", each carrying one
// temperature reading; the merged document holds both readings in block
// order.
func TestPaperListing1Merge(t *testing.T) {
	doc := NewDoc("peer0")
	tx1 := mustJSON(t, `{"tempReadings": [{"temperature": "15"}]}`)
	tx2 := mustJSON(t, `{"tempReadings": [{"temperature": "20"}]}`)
	if err := doc.MergeJSON(tx1); err != nil {
		t.Fatalf("merge tx1: %v", err)
	}
	if err := doc.MergeJSON(tx2); err != nil {
		t.Fatalf("merge tx2: %v", err)
	}
	want := mustJSON(t, `{"tempReadings": [{"temperature": "15"}, {"temperature": "20"}]}`)
	if got := doc.ToJSON(); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged document = %v, want %v", got, want)
	}
}

func TestMergeScalarLastWriteWins(t *testing.T) {
	doc := NewDoc("peer0")
	if err := doc.MergeJSON(mustJSON(t, `{"deviceID": "aaa"}`)); err != nil {
		t.Fatal(err)
	}
	if err := doc.MergeJSON(mustJSON(t, `{"deviceID": "bbb"}`)); err != nil {
		t.Fatal(err)
	}
	got := doc.ToJSON()
	if got["deviceID"] != "bbb" {
		t.Fatalf("deviceID = %v, want bbb (later merge wins)", got["deviceID"])
	}
}

func TestMergeNumberAndBoolScalars(t *testing.T) {
	doc := NewDoc("peer0")
	if err := doc.MergeJSON(mustJSON(t, `{"n": 42, "b": true, "z": null}`)); err != nil {
		t.Fatal(err)
	}
	got := doc.ToJSON()
	if got["n"] != float64(42) {
		t.Errorf("n = %v (%T), want 42", got["n"], got["n"])
	}
	if got["b"] != true {
		t.Errorf("b = %v, want true", got["b"])
	}
	if v, ok := got["z"]; !ok || v != nil {
		t.Errorf("z = %v, present=%v, want present nil", v, ok)
	}
}

func TestMergeListsAccumulateAcrossManyMerges(t *testing.T) {
	doc := NewDoc("peer0")
	const n = 25
	for i := 0; i < n; i++ {
		delta := map[string]any{"readings": []any{map[string]any{"t": float64(i)}}}
		if err := doc.MergeJSON(delta); err != nil {
			t.Fatalf("merge %d: %v", i, err)
		}
	}
	got := doc.ToJSON()["readings"].([]any)
	if len(got) != n {
		t.Fatalf("len(readings) = %d, want %d", len(got), n)
	}
	// Block-order append: readings must appear in merge order.
	for i, item := range got {
		if item.(map[string]any)["t"] != float64(i) {
			t.Fatalf("readings[%d] = %v, want t=%d", i, item, i)
		}
	}
}

func TestMergeNestedComplexObject(t *testing.T) {
	// The paper's Listing 4: "3-3 complexity" object.
	doc := NewDoc("peer0")
	obj := mustJSON(t, `{
		"temperatureRoom1": [{"temperatureReading": [{"temperatureValue": 10}]}],
		"temperatureRoom2": [{"temperatureReading": [{"temperatureValue": 20}]}],
		"temperatureRoom3": [{"temperatureReading": [{"temperatureValue": 15}]}]
	}`)
	if err := doc.MergeJSON(obj); err != nil {
		t.Fatal(err)
	}
	if got := doc.ToJSON(); !reflect.DeepEqual(got, obj) {
		t.Fatalf("round trip:\n got %v\nwant %v", got, obj)
	}
	// Merging a second reading for room1 appends inside the nested list.
	delta := mustJSON(t, `{"temperatureRoom1": [{"temperatureReading": [{"temperatureValue": 11}]}]}`)
	if err := doc.MergeJSON(delta); err != nil {
		t.Fatal(err)
	}
	room1 := doc.ToJSON()["temperatureRoom1"].([]any)
	if len(room1) != 2 {
		t.Fatalf("room1 has %d items, want 2", len(room1))
	}
}

func TestMergeNestedLists(t *testing.T) {
	doc := NewDoc("peer0")
	if err := doc.MergeJSON(mustJSON(t, `{"matrix": [["a", "b"], ["c"]]}`)); err != nil {
		t.Fatal(err)
	}
	want := mustJSON(t, `{"matrix": [["a", "b"], ["c"]]}`)
	if got := doc.ToJSON(); !reflect.DeepEqual(got, want) {
		t.Fatalf("nested lists: got %v want %v", got, want)
	}
}

func TestMergeRejectsNonObjectRoot(t *testing.T) {
	doc := NewDoc("peer0")
	for _, v := range []any{"str", float64(3), []any{"x"}, true, nil} {
		if err := doc.MergeJSON(v); err == nil {
			t.Errorf("MergeJSON(%v) succeeded, want error", v)
		}
	}
}

func TestMergeRejectsUnsupportedValue(t *testing.T) {
	doc := NewDoc("peer0")
	err := doc.MergeJSON(map[string]any{"bad": make(chan int)})
	if err == nil {
		t.Fatal("want error for unsupported value type")
	}
}

func TestMergeEmptyObjectIsNoop(t *testing.T) {
	doc := NewDoc("peer0")
	if err := doc.MergeJSON(map[string]any{}); err != nil {
		t.Fatal(err)
	}
	if got := doc.ToJSON(); len(got) != 0 {
		t.Fatalf("empty merge produced %v", got)
	}
	if doc.AppliedCount() != 0 {
		t.Fatalf("empty merge applied %d ops", doc.AppliedCount())
	}
}

func TestMergeDeterministicAcrossReplicas(t *testing.T) {
	// Two peers observing the same deltas in the same (block) order must
	// produce byte-identical state.
	deltas := []string{
		`{"deviceID": "e23df70a", "temperatureReadings": [{"temperature": 25}, {"temperature": 30}]}`,
		`{"temperatureReadings": [{"temperature": 15}]}`,
		`{"deviceID": "ffff0000", "status": "ok"}`,
	}
	a, b := NewDoc("shared"), NewDoc("shared")
	for _, ds := range deltas {
		if err := a.MergeJSON(mustJSON(t, ds)); err != nil {
			t.Fatal(err)
		}
		if err := b.MergeJSON(mustJSON(t, ds)); err != nil {
			t.Fatal(err)
		}
	}
	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(bb) {
		t.Fatalf("replicas diverged:\n%s\n%s", ab, bb)
	}
}

func TestMergeIntAndFloat32Scalars(t *testing.T) {
	doc := NewDoc("peer0")
	if err := doc.MergeJSON(map[string]any{"i": 7, "i64": int64(8), "f32": float32(1.5)}); err != nil {
		t.Fatal(err)
	}
	got := doc.ToJSON()
	if got["i"] != float64(7) || got["i64"] != float64(8) || got["f32"] != float64(1.5) {
		t.Fatalf("numeric normalization: %v", got)
	}
}
