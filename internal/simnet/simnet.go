// Package simnet reproduces the paper's experimental pipeline under virtual
// time: clients submitting at a configured rate, endorsement against the
// committed state, block cutting by size and timeout, and a single-server
// commit queue — all driving the REAL chaincode-simulation, merge-engine and
// MVCC-validation code. CPU measured in the commit path is scaled into
// virtual time, and network/storage hops are charged from a calibrated
// latency model, so the figures' shapes (MVCC failure arithmetic, merge-cost
// growth, queueing saturation) emerge from the actual implementation rather
// than from closed-form formulas (DESIGN.md S18, §3).
package simnet

import (
	"fmt"
	"strconv"
	"time"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/core"
	"fabriccrdt/internal/des"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/metrics"
	"fabriccrdt/internal/mvcc"
	"fabriccrdt/internal/orderer"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
	"fabriccrdt/internal/workload"
)

// Mode selects the system under test.
type Mode int

const (
	// ModeFabric is stock Fabric: CRDT flags dropped, MVCC for everyone.
	ModeFabric Mode = iota + 1
	// ModeFabricCRDT enables the merge engine.
	ModeFabricCRDT
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeFabric:
		return "Fabric"
	case ModeFabricCRDT:
		return "FabricCRDT"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// LatencyModel carries the calibrated constants standing in for the paper's
// cluster (CouchDB, Kafka, Kubernetes networking). Values are documented
// and justified in EXPERIMENTS.md §Calibration.
type LatencyModel struct {
	// Endorse is the client→endorser→client round trip including proposal
	// signing and simulation scheduling.
	Endorse time.Duration
	// Ordering is broadcast→block-inclusion→delivery overhead, excluding
	// batching wait (which the cutter/timeout model produces).
	Ordering time.Duration
	// CommitPerBlock is the fixed per-block commit overhead.
	CommitPerBlock time.Duration
	// CommitPerTx covers per-transaction validation work outside the
	// measured code: endorsement signature checks, (de)serialization.
	CommitPerTx time.Duration
	// StateReadPerKey is the CouchDB version-lookup cost per read-set key
	// during MVCC validation.
	StateReadPerKey time.Duration
	// StateWritePerKey is the CouchDB write cost per committed key.
	StateWritePerKey time.Duration
	// CPUScale multiplies CPU time measured in the real merge/validation
	// code into virtual time (their Kubernetes VMs and rdoc-based merge
	// versus this repo's native Go on bare hardware).
	CPUScale float64
}

// DefaultLatencyModel returns the calibration used for EXPERIMENTS.md:
// constants anchored so that the paper's two block-size extremes (≈267 tx/s
// at 25 txs/block, ≈20 tx/s at 1000) reproduce, with everything in between
// emerging from the measured merge CPU.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{
		Endorse:          10 * time.Millisecond,
		Ordering:         50 * time.Millisecond,
		CommitPerBlock:   20 * time.Millisecond,
		CommitPerTx:      500 * time.Microsecond,
		StateReadPerKey:  400 * time.Microsecond,
		StateWritePerKey: time.Millisecond,
		CPUScale:         65,
	}
}

// Config is one simulation run.
type Config struct {
	Mode Mode
	// BlockSize is the orderer's MaxMessageCount.
	BlockSize int
	// BatchTimeout is the orderer's block timeout (paper: 2 s).
	BatchTimeout time.Duration
	// Rate is the aggregate client submission rate in tx/s (paper: 300,
	// from 4 Caliper clients).
	Rate float64
	// TotalTx is the number of transactions submitted (paper: 10,000).
	TotalTx int
	// Workload parameterizes the IoT generator.
	Workload workload.IoTParams
	// Latency is the calibrated constant model; zero value uses defaults.
	Latency *LatencyModel
	// Engine tunes the merge engine (ablations).
	Engine core.Options
}

func (c Config) normalized() (Config, error) {
	if c.Mode != ModeFabric && c.Mode != ModeFabricCRDT {
		return c, fmt.Errorf("simnet: invalid mode %d", int(c.Mode))
	}
	if c.BlockSize <= 0 {
		return c, fmt.Errorf("simnet: block size %d", c.BlockSize)
	}
	if c.Rate <= 0 {
		return c, fmt.Errorf("simnet: rate %f", c.Rate)
	}
	if c.TotalTx <= 0 {
		return c, fmt.Errorf("simnet: total tx %d", c.TotalTx)
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 2 * time.Second
	}
	if c.Latency == nil {
		m := DefaultLatencyModel()
		c.Latency = &m
	}
	return c, nil
}

// Result is a run's metrics summary plus the real CPU it took to produce.
type Result struct {
	metrics.Summary
	// Wall is the real time the simulation took.
	Wall time.Duration
	// MergedKeys is the number of distinct keys ever merged (CRDT mode).
	MergedKeys int
}

// runner holds one simulation's state.
type runner struct {
	cfg Config
	lm  LatencyModel
	sim *des.Sim

	gen   *workload.IoTGenerator
	cc    chaincode.Chaincode
	db    *statedb.DB
	val   *mvcc.Validator
	eng   *core.Engine
	cut   *orderer.Cutter
	asm   *orderer.Assembler
	stats *metrics.Collector

	// submitTimes maps tx ID to virtual submission time.
	submitTimes map[string]time.Duration

	// committer single-server queue.
	queue []*ledger.Block
	busy  bool

	// timeout management: epoch invalidates timers armed before the last
	// cut; timerArmed dedupes arming (Fabric starts the batch timer when
	// the first transaction enters an empty batch and cancels it on cut —
	// it does NOT restart per transaction).
	epoch      int64
	timerArmed bool

	mergedKeys map[string]struct{}
	err        error
}

// Run executes one simulation.
func Run(cfg Config) (Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	db := statedb.New()
	gen := workload.NewIoT(cfg.Workload)
	r := &runner{
		cfg:         cfg,
		lm:          *cfg.Latency,
		sim:         &des.Sim{},
		gen:         gen,
		cc:          gen.Chaincode(),
		db:          db,
		val:         mvcc.New(db),
		eng:         core.NewEngine(db, cfg.Engine),
		cut:         orderer.NewCutter(orderer.Config{MaxMessageCount: cfg.BlockSize, BatchTimeout: cfg.BatchTimeout}),
		stats:       &metrics.Collector{},
		submitTimes: make(map[string]time.Duration, cfg.TotalTx),
		mergedKeys:  make(map[string]struct{}),
	}
	r.asm = orderer.NewAssembler(ledger.NewChain("sim").Last())
	r.populate()

	// Schedule all submissions: TotalTx transactions at the aggregate
	// rate, evenly spaced (the paper's Caliper clients submit at a fixed
	// send rate).
	interTx := time.Duration(float64(time.Second) / cfg.Rate)
	for i := 0; i < cfg.TotalTx; i++ {
		idx := i
		r.sim.ScheduleAt(time.Duration(idx)*interTx, func() { r.submit(idx) })
	}
	r.sim.Run()
	if r.err != nil {
		return Result{}, r.err
	}
	res := Result{
		Summary:    r.stats.Summarize(),
		Wall:       time.Since(start),
		MergedKeys: len(r.mergedKeys),
	}
	return res, nil
}

// populate seeds the hot keys (paper §7.2) at version (0, j).
func (r *runner) populate() {
	batch := statedb.NewUpdateBatch()
	for j, key := range r.gen.HotKeys() {
		batch.Put(key, workload.InitialValue(), rwset.Version{BlockNum: 0, TxNum: uint64(j + 1)})
	}
	r.db.Apply(batch, rwset.Version{BlockNum: 0})
}

// fail aborts the simulation at the current event.
func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// submit is the client-side submission event: simulate (endorse) against
// the current committed state, then forward to the orderer.
func (r *runner) submit(i int) {
	if r.err != nil {
		return
	}
	now := r.sim.Now()
	r.stats.Submitted(now)
	txID := "tx-" + strconv.Itoa(i)
	stub := chaincode.NewSimStub(txID, workload.SpecArgs(i), r.db)
	if err := r.cc.Invoke(stub); err != nil {
		r.fail(fmt.Errorf("simnet: chaincode for tx %d: %w", i, err))
		return
	}
	rw := stub.Result()
	if r.cfg.Mode == ModeFabric {
		for wi := range rw.Writes {
			rw.Writes[wi].IsCRDT = false
			rw.Writes[wi].CRDTType = ""
		}
	}
	tx := &ledger.Transaction{
		ID:             txID,
		ChannelID:      "sim",
		Chaincode:      "iot",
		Args:           workload.SpecArgs(i),
		RWSet:          rw,
		SubmitUnixNano: int64(now),
	}
	r.submitTimes[txID] = now
	r.sim.Schedule(r.lm.Endorse, func() { r.ordered(tx) })
}

// ordered is the orderer-side arrival event.
func (r *runner) ordered(tx *ledger.Transaction) {
	if r.err != nil {
		return
	}
	batches, err := r.cut.Ordered(tx)
	if err != nil {
		r.fail(fmt.Errorf("simnet: ordering %s: %w", tx.ID, err))
		return
	}
	if len(batches) > 0 {
		// A cut cancels the armed batch timer.
		r.epoch++
		r.timerArmed = false
		for _, b := range batches {
			r.emit(b)
		}
	}
	r.armTimeout()
}

// armTimeout schedules a batch-timeout cut when transactions are pending
// and no timer is outstanding. The epoch check drops timers invalidated by
// an intervening cut.
func (r *runner) armTimeout() {
	if r.cut.Pending() == 0 || r.timerArmed {
		return
	}
	r.timerArmed = true
	snapshot := r.epoch
	r.sim.Schedule(r.cfg.BatchTimeout, func() {
		if r.err != nil || snapshot != r.epoch {
			return // superseded by a cut; a newer timer may be armed
		}
		r.timerArmed = false
		if r.cut.Pending() == 0 {
			return
		}
		batch := r.cut.Cut(orderer.CutTimeout)
		r.epoch++
		r.emit(batch)
	})
}

// emit assembles a batch and schedules its delivery to the committer.
func (r *runner) emit(batch orderer.Batch) {
	if len(batch.Transactions) == 0 {
		return
	}
	block, err := r.asm.Assemble(batch)
	if err != nil {
		r.fail(fmt.Errorf("simnet: assembling block: %w", err))
		return
	}
	r.sim.Schedule(r.lm.Ordering, func() { r.delivered(block) })
}

// delivered enqueues the block at the committer.
func (r *runner) delivered(block *ledger.Block) {
	if r.err != nil {
		return
	}
	r.queue = append(r.queue, block)
	if !r.busy {
		r.startNext()
	}
}

// startNext begins committing the next queued block: the real validation
// and merge code runs NOW (so it reads the state as of commit start), its
// measured CPU plus the modeled constants become the virtual commit
// duration, and the state mutation lands at commit finish.
func (r *runner) startNext() {
	if len(r.queue) == 0 {
		r.busy = false
		return
	}
	r.busy = true
	block := r.queue[0]
	r.queue = r.queue[1:]

	t0 := time.Now()
	txs := block.Transactions
	codes := make([]ledger.ValidationCode, len(txs))
	var mergeRes core.Result
	if r.cfg.Mode == ModeFabricCRDT {
		var err error
		mergeRes, err = r.eng.MergeBlock(block, codes)
		if err != nil {
			r.fail(fmt.Errorf("simnet: merging block %d: %w", block.Header.Number, err))
			return
		}
	}
	r.val.ValidateBlock(block.Header.Number, txs, codes)
	batch := mvcc.BuildCommitBatch(block.Header.Number, txs, codes)
	core.StageDocStates(batch, mergeRes)
	cpu := time.Since(t0)

	reads := 0
	for _, tx := range txs {
		reads += len(tx.RWSet.Reads)
	}
	writes := batch.Len()
	duration := r.lm.CommitPerBlock +
		time.Duration(len(txs))*r.lm.CommitPerTx +
		time.Duration(reads)*r.lm.StateReadPerKey +
		time.Duration(writes)*r.lm.StateWritePerKey +
		time.Duration(float64(cpu)*r.lm.CPUScale)

	for _, k := range mergeRes.MergedKeys {
		r.mergedKeys[k] = struct{}{}
	}
	r.sim.Schedule(duration, func() { r.finish(block, codes, batch) })
}

// finish applies the block's state updates and records metrics.
func (r *runner) finish(block *ledger.Block, codes []ledger.ValidationCode, batch *statedb.UpdateBatch) {
	now := r.sim.Now()
	r.db.Apply(batch, rwset.Version{BlockNum: block.Header.Number})
	r.stats.BlockCommitted()
	for i, tx := range block.Transactions {
		submit, ok := r.submitTimes[tx.ID]
		if !ok {
			r.fail(fmt.Errorf("simnet: unknown tx %s in block %d", tx.ID, block.Header.Number))
			return
		}
		delete(r.submitTimes, tx.ID)
		r.stats.Committed(submit, now, codes[i])
	}
	r.startNext()
}
