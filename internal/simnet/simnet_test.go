package simnet

import (
	"reflect"
	"testing"
	"time"

	"fabriccrdt/internal/core"
	"fabriccrdt/internal/workload"
)

// fastModel keeps virtual costs small so tests run instantly; shape
// assertions don't depend on the calibrated constants.
func fastModel() *LatencyModel {
	return &LatencyModel{
		Endorse:          5 * time.Millisecond,
		Ordering:         10 * time.Millisecond,
		CommitPerBlock:   10 * time.Millisecond,
		CommitPerTx:      200 * time.Microsecond,
		StateReadPerKey:  100 * time.Microsecond,
		StateWritePerKey: 200 * time.Microsecond,
		CPUScale:         10,
	}
}

func crdtConfig(total int) Config {
	return Config{
		Mode:      ModeFabricCRDT,
		BlockSize: 20,
		Rate:      300,
		TotalTx:   total,
		Workload:  workload.IoTParams{ReadKeys: 1, WriteKeys: 1, JSONKeys: 2, ConflictPct: 100},
		Latency:   fastModel(),
		Engine:    core.Options{FreshDocPerBlock: true},
	}
}

func TestCRDTModeCommitsEverything(t *testing.T) {
	res, err := Run(crdtConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	if res.Successful != 500 || res.Failed != 0 {
		t.Fatalf("successful=%d failed=%d, want 500/0 (no-failure requirement)", res.Successful, res.Failed)
	}
	if res.Codes["CRDT_MERGED"] != 500 {
		t.Fatalf("codes = %v", res.Codes)
	}
	if res.MergedKeys != 1 {
		t.Fatalf("merged keys = %d, want 1 hot key", res.MergedKeys)
	}
	if res.Throughput <= 0 || res.AvgLatency <= 0 {
		t.Fatalf("degenerate metrics: %+v", res.Summary)
	}
}

func TestFabricModeFailsMostConflicting(t *testing.T) {
	cfg := crdtConfig(500)
	cfg.Mode = ModeFabric
	cfg.BlockSize = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Successful+res.Failed != 500 {
		t.Fatalf("accounting: %d + %d != 500", res.Successful, res.Failed)
	}
	if res.Successful == 0 {
		t.Fatal("even stock Fabric commits at least one per block")
	}
	if res.Successful >= 100 {
		t.Fatalf("successful = %d; all-conflicting workload must fail most", res.Successful)
	}
	if res.Codes["MVCC_CONFLICT"] == 0 {
		t.Fatalf("codes = %v", res.Codes)
	}
}

func TestNonConflictingWorkloadAllSucceedInBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeFabric, ModeFabricCRDT} {
		cfg := crdtConfig(300)
		cfg.Mode = mode
		cfg.Workload.ConflictPct = 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Successful != 300 {
			t.Fatalf("%v: successful = %d, want 300", mode, res.Successful)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	r1, err := Run(crdtConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(crdtConfig(400))
	if err != nil {
		t.Fatal(err)
	}
	// Wall time differs; virtual metrics must not. CPU-derived commit
	// durations differ per run, so only count-based metrics are exactly
	// reproducible.
	if r1.Successful != r2.Successful || r1.Blocks != r2.Blocks ||
		!reflect.DeepEqual(r1.Codes, r2.Codes) {
		t.Fatalf("runs diverged:\n%+v\n%+v", r1.Summary, r2.Summary)
	}
}

func TestThroughputDeclinesWithBlockSize(t *testing.T) {
	small := crdtConfig(1500)
	small.BlockSize = 25
	big := crdtConfig(1500)
	big.BlockSize = 500
	rSmall, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if rSmall.Throughput <= rBig.Throughput {
		t.Fatalf("Figure 3 shape violated: tput(25)=%.1f <= tput(500)=%.1f",
			rSmall.Throughput, rBig.Throughput)
	}
	if rSmall.AvgLatency >= rBig.AvgLatency {
		t.Fatalf("latency shape violated: lat(25)=%v >= lat(500)=%v",
			rSmall.AvgLatency, rBig.AvgLatency)
	}
}

func TestBatchTimeoutBoundsBlockSize(t *testing.T) {
	cfg := crdtConfig(600)
	cfg.BlockSize = 10000 // never reached at 300 tx/s
	cfg.BatchTimeout = time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 600 txs at 300/s = 2s of submissions; the 1s timeout must cut at
	// least 2 blocks.
	if res.Blocks < 2 {
		t.Fatalf("blocks = %d, want >= 2 (timeout cuts)", res.Blocks)
	}
	if res.Successful != 600 {
		t.Fatalf("successful = %d", res.Successful)
	}
}

func TestSeededEngineAccumulatesAcrossBlocks(t *testing.T) {
	fresh := crdtConfig(300)
	seeded := crdtConfig(300)
	seeded.Engine = core.Options{} // cross-block seeding on
	rFresh, err := Run(fresh)
	if err != nil {
		t.Fatal(err)
	}
	rSeeded, err := Run(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if rSeeded.Successful != 300 || rFresh.Successful != 300 {
		t.Fatal("both engine modes must commit everything")
	}
	// Seeded mode re-merges the whole history each block: strictly more
	// work, so its run must be at least as slow in virtual time.
	if rSeeded.Duration < rFresh.Duration {
		t.Fatalf("seeded (%v) faster than fresh (%v)", rSeeded.Duration, rFresh.Duration)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Mode: ModeFabric, BlockSize: 0, Rate: 1, TotalTx: 1},
		{Mode: ModeFabric, BlockSize: 1, Rate: 0, TotalTx: 1},
		{Mode: ModeFabric, BlockSize: 1, Rate: 1, TotalTx: 0},
		{Mode: Mode(99), BlockSize: 1, Rate: 1, TotalTx: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeFabric.String() != "Fabric" || ModeFabricCRDT.String() != "FabricCRDT" {
		t.Fatal("mode strings wrong")
	}
}
