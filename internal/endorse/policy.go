// Package endorse implements Fabric's endorsement policy language: boolean
// expressions over organization principals, e.g.
//
//	AND('Org1.member', OR('Org2.member', 'Org3.member'))
//	OutOf(2, 'Org1.member', 'Org2.member', 'Org3.member')
//
// A policy decides which set of endorsing organizations satisfies a
// chaincode's requirements (paper §2.1: "an endorsement policy specifies
// which peers from which organizations are required to execute and sign the
// proposal"). Satisfaction uses set semantics: one valid endorsement from an
// organization satisfies every leaf naming that organization.
package endorse

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Policy is a parsed endorsement policy.
type Policy struct {
	root node
	src  string
}

// node is one expression tree node.
type node interface {
	satisfied(orgs map[string]bool) bool
	fmt.Stringer
}

// Principal is a leaf: an organization (and role, which the simulation
// accepts but does not further restrict).
type Principal struct {
	MSPID string
	Role  string
}

func (p Principal) satisfied(orgs map[string]bool) bool { return orgs[p.MSPID] }

func (p Principal) String() string {
	if p.Role == "" {
		return "'" + p.MSPID + "'"
	}
	return "'" + p.MSPID + "." + p.Role + "'"
}

// outOf requires at least N of its children to be satisfied; AND and OR are
// the n-of-n and 1-of-n special cases.
type outOf struct {
	n        int
	children []node
	label    string
}

func (o outOf) satisfied(orgs map[string]bool) bool {
	count := 0
	for _, c := range o.children {
		if c.satisfied(orgs) {
			count++
			if count >= o.n {
				return true
			}
		}
	}
	return false
}

func (o outOf) String() string {
	parts := make([]string, len(o.children))
	for i, c := range o.children {
		parts[i] = c.String()
	}
	switch o.label {
	case "AND", "OR":
		return o.label + "(" + strings.Join(parts, ", ") + ")"
	default:
		return "OutOf(" + strconv.Itoa(o.n) + ", " + strings.Join(parts, ", ") + ")"
	}
}

// ErrParse reports a malformed policy expression.
var ErrParse = errors.New("endorse: policy parse error")

// Parse parses a policy expression.
func Parse(src string) (*Policy, error) {
	p := &parser{src: src}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("%w: trailing input at offset %d in %q", ErrParse, p.pos, src)
	}
	return &Policy{root: root, src: src}, nil
}

// MustParse parses a policy known to be valid, panicking otherwise; for
// static configuration only.
func MustParse(src string) *Policy {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the canonical rendering of the policy.
func (p *Policy) String() string { return p.root.String() }

// Source returns the original expression text.
func (p *Policy) Source() string { return p.src }

// Satisfied reports whether endorsements from the given organizations meet
// the policy.
func (p *Policy) Satisfied(mspIDs []string) bool {
	orgs := make(map[string]bool, len(mspIDs))
	for _, id := range mspIDs {
		orgs[id] = true
	}
	return p.root.satisfied(orgs)
}

// Organizations returns the distinct organizations the policy mentions, in
// first-appearance order; clients use this to pick endorsement targets.
func (p *Policy) Organizations() []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(n node)
	walk = func(n node) {
		switch t := n.(type) {
		case Principal:
			if !seen[t.MSPID] {
				seen[t.MSPID] = true
				out = append(out, t.MSPID)
			}
		case outOf:
			for _, c := range t.children {
				walk(c)
			}
		}
	}
	walk(p.root)
	return out
}

// parser is a recursive-descent parser over the policy grammar:
//
//	expr      := "AND" "(" exprList ")"
//	           | "OR" "(" exprList ")"
//	           | "OutOf" "(" int "," exprList ")"
//	           | principal
//	exprList  := expr { "," expr }
//	principal := "'" MSPID [ "." role ] "'"
type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) expect(b byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != b {
		return fmt.Errorf("%w: expected %q at offset %d in %q", ErrParse, string(b), p.pos, p.src)
	}
	p.pos++
	return nil
}

func (p *parser) peek(b byte) bool {
	p.skipSpace()
	return p.pos < len(p.src) && p.src[p.pos] == b
}

func (p *parser) parseExpr() (node, error) {
	p.skipSpace()
	switch {
	case p.hasKeyword("AND"):
		children, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return outOf{n: len(children), children: children, label: "AND"}, nil
	case p.hasKeyword("OR"):
		children, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return outOf{n: 1, children: children, label: "OR"}, nil
	case p.hasKeyword("OutOf"):
		return p.parseOutOf()
	case p.peek('\''):
		return p.parsePrincipal()
	default:
		return nil, fmt.Errorf("%w: unexpected input at offset %d in %q", ErrParse, p.pos, p.src)
	}
}

// hasKeyword consumes the keyword if it is next (followed by '(').
func (p *parser) hasKeyword(kw string) bool {
	p.skipSpace()
	end := p.pos + len(kw)
	if end > len(p.src) || p.src[p.pos:end] != kw {
		return false
	}
	// Must be followed by '(' (possibly after spaces).
	rest := end
	for rest < len(p.src) && p.src[rest] == ' ' {
		rest++
	}
	if rest >= len(p.src) || p.src[rest] != '(' {
		return false
	}
	p.pos = end
	return true
}

func (p *parser) parseArgs() ([]node, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var children []node
	for {
		child, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		children = append(children, child)
		if p.peek(',') {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if len(children) == 0 {
		return nil, fmt.Errorf("%w: empty argument list", ErrParse)
	}
	return children, nil
}

func (p *parser) parseOutOf() (node, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if start == p.pos {
		return nil, fmt.Errorf("%w: OutOf requires a count at offset %d", ErrParse, p.pos)
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	if err := p.expect(','); err != nil {
		return nil, err
	}
	var children []node
	for {
		child, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		children = append(children, child)
		if p.peek(',') {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if n < 1 || n > len(children) {
		return nil, fmt.Errorf("%w: OutOf(%d) with %d children", ErrParse, n, len(children))
	}
	return outOf{n: n, children: children, label: "OutOf"}, nil
}

func (p *parser) parsePrincipal() (node, error) {
	if err := p.expect('\''); err != nil {
		return nil, err
	}
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '\'' {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("%w: unterminated principal at offset %d", ErrParse, start)
	}
	raw := p.src[start:p.pos]
	p.pos++ // consume closing quote
	if raw == "" {
		return nil, fmt.Errorf("%w: empty principal", ErrParse)
	}
	msp, role := raw, ""
	if dot := strings.LastIndexByte(raw, '.'); dot > 0 {
		msp, role = raw[:dot], raw[dot+1:]
		switch role {
		case "member", "peer", "admin", "client":
		default:
			return nil, fmt.Errorf("%w: unknown role %q in principal %q", ErrParse, role, raw)
		}
	}
	return Principal{MSPID: msp, Role: role}, nil
}
