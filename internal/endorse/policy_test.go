package endorse

import (
	"reflect"
	"testing"
)

func TestParseAndEvaluate(t *testing.T) {
	cases := []struct {
		src     string
		signers []string
		want    bool
	}{
		{"'Org1.member'", []string{"Org1"}, true},
		{"'Org1.member'", []string{"Org2"}, false},
		{"'Org1'", []string{"Org1"}, true},
		{"AND('Org1.member','Org2.member')", []string{"Org1", "Org2"}, true},
		{"AND('Org1.member','Org2.member')", []string{"Org1"}, false},
		{"OR('Org1.member','Org2.member')", []string{"Org2"}, true},
		{"OR('Org1.member','Org2.member')", nil, false},
		{"OutOf(2,'Org1.member','Org2.member','Org3.member')", []string{"Org1", "Org3"}, true},
		{"OutOf(2,'Org1.member','Org2.member','Org3.member')", []string{"Org3"}, false},
		{"AND('Org1.member', OR('Org2.member','Org3.member'))", []string{"Org1", "Org3"}, true},
		{"AND('Org1.member', OR('Org2.member','Org3.member'))", []string{"Org2", "Org3"}, false},
		{"OutOf(1, AND('Org1.member','Org2.member'), 'Org3.admin')", []string{"Org3"}, true},
		{"  OR ( 'Org1.peer' ,  'Org2.client' ) ", []string{"Org2"}, true},
	}
	for _, tc := range cases {
		p, err := Parse(tc.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.src, err)
			continue
		}
		if got := p.Satisfied(tc.signers); got != tc.want {
			t.Errorf("%q.Satisfied(%v) = %v, want %v", tc.src, tc.signers, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"AND()",
		"AND('Org1.member'",
		"AND('Org1.member',)",
		"'unterminated",
		"''",
		"OutOf('Org1.member')",
		"OutOf(0,'Org1.member')",
		"OutOf(3,'Org1.member','Org2.member')",
		"XOR('Org1.member')",
		"'Org1.member' trailing",
		"'Org1.banana'",
		"AND 'Org1.member'",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad input")
		}
	}()
	MustParse("AND(")
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"AND('Org1.member', 'Org2.member')",
		"OR('Org1.member', AND('Org2.member', 'Org3.member'))",
		"OutOf(2, 'Org1.member', 'Org2.member', 'Org3.member')",
	}
	for _, src := range srcs {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		// Canonical rendering must itself parse to the same rendering.
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse(%q): %v", p.String(), err)
		}
		if p.String() != p2.String() {
			t.Errorf("unstable rendering: %q vs %q", p.String(), p2.String())
		}
	}
}

func TestOrganizations(t *testing.T) {
	p := MustParse("AND('Org2.member', OR('Org1.member', 'Org2.member'), 'Org3.member')")
	got := p.Organizations()
	want := []string{"Org2", "Org1", "Org3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Organizations = %v, want %v", got, want)
	}
	if p.Source() == "" {
		t.Fatal("Source empty")
	}
}

func TestDuplicateSignersCountOnce(t *testing.T) {
	p := MustParse("AND('Org1.member', 'Org2.member')")
	if p.Satisfied([]string{"Org1", "Org1"}) {
		t.Fatal("duplicate Org1 endorsements must not satisfy AND over two orgs")
	}
}

func BenchmarkEvaluate(b *testing.B) {
	p := MustParse("OutOf(2, 'Org1.member', 'Org2.member', 'Org3.member')")
	signers := []string{"Org1", "Org3"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Satisfied(signers) {
			b.Fatal("unexpected unsatisfied")
		}
	}
}
