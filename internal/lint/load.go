package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks the module from source using nothing but the
// stdlib: `go list -test -deps -export -json` names every package, its
// build-tag-filtered file lists and the gc export data the toolchain
// already produced for its dependencies; go/parser parses the project's
// own files with comments; go/types checks them against that export data
// via go/importer's gc mode. No golang.org/x/tools.

// A Unit is one type-checked package: its production files plus its
// in-package test files, or an external (_test suffixed) test package.
type Unit struct {
	Path  string // import path ("fabriccrdt/internal/peer", "fabriccrdt/internal/wire_test")
	Name  string // package name
	Dir   string
	Files []*ast.File
	// TestFile marks files whose name ends in _test.go (and every file of
	// an external test package). Checks about the commit path skip these.
	TestFile map[*ast.File]bool
	Pkg      *types.Package
	Info     *types.Info
}

// Program is the loaded module plus shared position and directive state.
type Program struct {
	Fset  *token.FileSet
	Units []*Unit
	// TypeErrors carries type-check failures as findings (pseudo-check
	// "typecheck"): a package the suite cannot analyze must fail the
	// gate, not silently pass it.
	TypeErrors []Finding
	// WholeProgram is set when the load covered the entire module
	// ("./..."), enabling rules that need to see every call site (the
	// metricnames every-name-referenced rule). Package-subset loads
	// leave it false.
	WholeProgram bool

	dirs map[string]map[int]directive
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	Standard     bool
	DepOnly      bool
	ForTest      string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// goList runs `go list -test -deps -export -json` in dir for the given
// patterns and decodes the JSON stream.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := []string{
		"list", "-test", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,ForTest,GoFiles,TestGoFiles,XTestGoFiles",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to gc export data files. test maps a
// base import path to the export of its "[foo.test]" variant; an external
// test package must see that variant so in-package test declarations (the
// export_test.go idiom) resolve.
type exportLookup struct {
	plain map[string]string
	test  map[string]string
}

// lookup opens export data for path, preferring the test variant when
// preferTest is set.
func (e *exportLookup) lookup(path string, preferTest bool) (io.ReadCloser, error) {
	if preferTest {
		if f, ok := e.test[path]; ok {
			return os.Open(f)
		}
	}
	if f, ok := e.plain[path]; ok {
		return os.Open(f)
	}
	return nil, fmt.Errorf("lint: no export data for %q", path)
}

// Load type-checks the packages matching patterns (e.g. "./...") rooted
// at dir. Every project (non-stdlib) package becomes one Unit holding its
// production and in-package test files; external _test packages become
// their own Units.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exp := &exportLookup{plain: make(map[string]string), test: make(map[string]string)}
	var project []listPkg
	for _, p := range pkgs {
		switch {
		case p.ForTest != "":
			if p.Export != "" && p.ImportPath == p.ForTest+" ["+p.ForTest+".test]" {
				exp.test[p.ForTest] = p.Export
			}
		case strings.HasSuffix(p.ImportPath, ".test"):
			// Synthetic test-main package; nothing to analyze.
		default:
			if p.Export != "" {
				exp.plain[p.ImportPath] = p.Export
			}
			if !p.Standard {
				project = append(project, p)
			}
		}
	}
	sort.Slice(project, func(i, j int) bool { return project[i].ImportPath < project[j].ImportPath })

	prog := &Program{Fset: token.NewFileSet()}
	for _, pat := range patterns {
		if pat == "./..." || pat == "all" {
			prog.WholeProgram = true
		}
	}
	// One shared gc importer for every ordinary unit (type identity and
	// export data reads are amortized across packages); external test
	// packages get a fresh importer each so their base package can
	// resolve to its test variant without poisoning the shared cache.
	shared := importer.ForCompiler(prog.Fset, "gc", func(p string) (io.ReadCloser, error) {
		return exp.lookup(p, false)
	})
	for _, p := range project {
		// go list reports Test/XTestGoFiles for dependency-only packages
		// too, but -test only builds test variants (and their extra
		// dependencies' export data) for the named roots — so deps
		// contribute production files only.
		files := append([]string(nil), p.GoFiles...)
		if !p.DepOnly {
			files = append(files, p.TestGoFiles...)
		}
		if len(files) > 0 {
			u, err := prog.check(p.ImportPath, p.Name, p.Dir, files, shared, false)
			if err != nil {
				return nil, err
			}
			prog.Units = append(prog.Units, u)
		}
		if !p.DepOnly && len(p.XTestGoFiles) > 0 {
			ximp := importer.ForCompiler(prog.Fset, "gc", func(p string) (io.ReadCloser, error) {
				return exp.lookup(p, true)
			})
			u, err := prog.check(p.ImportPath+"_test", p.Name+"_test", p.Dir, p.XTestGoFiles, ximp, true)
			if err != nil {
				return nil, err
			}
			prog.Units = append(prog.Units, u)
		}
	}
	return prog, nil
}

// check parses and type-checks one unit. Parse failures are hard errors
// (the build gate would fail anyway); type errors become TypeErrors
// findings and the partial type information is kept.
func (prog *Program) check(path, name, dir string, fileNames []string, imp types.Importer, xtest bool) (*Unit, error) {
	u := &Unit{Path: path, Name: name, Dir: dir, TestFile: make(map[*ast.File]bool)}
	for _, fn := range fileNames {
		full := filepath.Join(dir, fn)
		f, err := parser.ParseFile(prog.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", full, err)
		}
		u.Files = append(u.Files, f)
		u.TestFile[f] = xtest || strings.HasSuffix(fn, "_test.go")
	}
	u.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			te, ok := err.(types.Error)
			if !ok || te.Soft {
				return
			}
			prog.TypeErrors = append(prog.TypeErrors, Finding{
				Check:   "typecheck",
				Pos:     te.Fset.Position(te.Pos),
				Message: te.Msg,
			})
		},
	}
	// The returned error repeats what the Error callback already
	// captured; partial information is still usable.
	u.Pkg, _ = conf.Check(path, prog.Fset, u.Files, u.Info)
	return u, nil
}

// LoadDirs loads fixture packages for the golden-file tests: each import
// path maps to root/<path>, imports between fixture packages resolve from
// source, and everything else (stdlib) resolves through gc export data
// from one `go list -export` over the externally-imported set. This keeps
// analyzer fixtures out of the module build graph (testdata/ is invisible
// to go list ./...) while still giving them full type information.
func LoadDirs(root string, paths ...string) (*Program, error) {
	// Fixtures are self-contained worlds: whole-program rules apply.
	prog := &Program{Fset: token.NewFileSet(), WholeProgram: true}
	// Parse everything first to discover the external import set.
	type fixture struct {
		path  string
		dir   string
		name  string
		files []string
	}
	var fixtures []fixture
	seen := make(map[string]bool)
	queue := append([]string(nil), paths...)
	external := make(map[string]bool)
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if seen[path] {
			continue
		}
		seen[path] = true
		dir := filepath.Join(root, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: fixture %s: %v", path, err)
		}
		fx := fixture{path: path, dir: dir}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			fx.files = append(fx.files, e.Name())
			f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			fx.name = f.Name.Name
			for _, spec := range f.Imports {
				ip := strings.Trim(spec.Path.Value, `"`)
				if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(ip))); err == nil {
					queue = append(queue, ip)
				} else {
					external[ip] = true
				}
			}
		}
		fixtures = append(fixtures, fx)
	}

	exp := &exportLookup{plain: make(map[string]string), test: make(map[string]string)}
	if len(external) > 0 {
		var pats []string
		for ip := range external {
			pats = append(pats, ip)
		}
		sort.Strings(pats)
		pkgs, err := goList(root, pats)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" && p.ForTest == "" {
				exp.plain[p.ImportPath] = p.Export
			}
		}
	}

	// Type-check fixtures in dependency order: a tiny source importer
	// with memoization (fixture imports form a DAG by construction).
	units := make(map[string]*Unit)
	var load func(path string) (*Unit, error)
	imp := &fixtureImporter{
		gc: importer.ForCompiler(prog.Fset, "gc", func(p string) (io.ReadCloser, error) {
			return exp.lookup(p, false)
		}),
		load: func(p string) (*Unit, error) { return load(p) },
	}
	load = func(path string) (*Unit, error) {
		if u, ok := units[path]; ok {
			return u, nil
		}
		var fx *fixture
		for i := range fixtures {
			if fixtures[i].path == path {
				fx = &fixtures[i]
			}
		}
		if fx == nil {
			return nil, fmt.Errorf("lint: unknown fixture %q", path)
		}
		u := &Unit{Path: path, Name: fx.name, Dir: fx.dir, TestFile: make(map[*ast.File]bool)}
		for _, fn := range fx.files {
			f, err := parser.ParseFile(prog.Fset, filepath.Join(fx.dir, fn), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			u.Files = append(u.Files, f)
			u.TestFile[f] = strings.HasSuffix(fn, "_test.go")
		}
		u.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp, Error: func(err error) {
			te, ok := err.(types.Error)
			if !ok || te.Soft {
				return
			}
			prog.TypeErrors = append(prog.TypeErrors, Finding{Check: "typecheck", Pos: te.Fset.Position(te.Pos), Message: te.Msg})
		}}
		u.Pkg, _ = conf.Check(path, prog.Fset, u.Files, u.Info)
		units[path] = u
		return u, nil
	}
	for _, path := range paths {
		u, err := load(path)
		if err != nil {
			return nil, err
		}
		prog.Units = append(prog.Units, u)
	}
	return prog, nil
}

// fixtureImporter resolves fixture-local import paths from source and
// delegates the rest to gc export data.
type fixtureImporter struct {
	load func(path string) (*Unit, error)
	gc   types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if u, err := fi.load(path); err == nil {
		return u.Pkg, nil
	}
	return fi.gc.Import(path)
}
