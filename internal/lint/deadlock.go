package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// The deadlock check enforces the DESIGN.md §7 post-mortem discipline:
// never perform a potentially-unbounded blocking operation — a channel
// send, sync.WaitGroup.Wait, or network I/O — while a sync.Mutex or
// sync.RWMutex is held in the same function body. The PR 4 orderer
// deadlock was exactly this shape: Service.emit sent blocks into bounded
// subscriber channels while holding the service mutex, so one stalled
// consumer wedged every producer that needed the lock.
//
// The analysis is per function body and intentionally conservative in
// what it claims: it tracks Lock/RLock … Unlock/RUnlock pairs on the
// same receiver expression textually within one body, treats `defer
// x.Unlock()` as holding for the rest of the body (it does — the mutex
// is held until return), gives nested function literals a fresh lock
// state (a spawned goroutine does not inherit the parent's locks), and
// does not follow calls into other functions. Branch handling: an
// if/else arm's lock-state changes propagate past the statement only if
// every fall-through path agrees; loop and switch bodies are scanned for
// violations but their state changes do not escape (a 0-iteration loop
// must not unlock the outer view).
func runDeadlock(p *Program) []Finding {
	var findings []Finding
	for _, u := range p.Units {
		for _, f := range u.Files {
			if u.TestFile[f] {
				continue
			}
			for _, body := range funcBodies(f) {
				s := &deadlockScan{prog: p, unit: u}
				s.block(body.List, newHeldSet())
				findings = append(findings, s.findings...)
			}
		}
	}
	return findings
}

// heldSet maps a mutex receiver expression (rendered source text, e.g.
// "s.mu") to the position where it was locked.
type heldSet map[string]ast.Node

func newHeldSet() heldSet { return make(heldSet) }

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only mutexes held in both sets.
func (h heldSet) intersect(o heldSet) heldSet {
	c := make(heldSet)
	for k, v := range h {
		if _, ok := o[k]; ok {
			c[k] = v
		}
	}
	return c
}

func (h heldSet) any() (string, bool) {
	for k := range h {
		return k, true
	}
	return "", false
}

type deadlockScan struct {
	prog     *Program
	unit     *Unit
	findings []Finding
}

func (s *deadlockScan) report(n ast.Node, format string, args ...any) {
	s.findings = append(s.findings, Finding{
		Check:   "deadlock",
		Pos:     s.prog.Fset.Position(n.Pos()),
		Message: fmt.Sprintf(format, args...),
	})
}

// block scans a statement list sequentially, mutating held as locks are
// taken and released, and returns the resulting state.
func (s *deadlockScan) block(stmts []ast.Stmt, held heldSet) heldSet {
	for _, st := range stmts {
		held = s.stmt(st, held)
	}
	return held
}

// stmt scans one statement under the current lock state and returns the
// state after it.
func (s *deadlockScan) stmt(st ast.Stmt, held heldSet) heldSet {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if recv, kind, ok := s.mutexOp(call); ok {
				switch kind {
				case "Lock", "RLock":
					held[recv] = st
				case "Unlock":
					delete(held, recv)
				case "RUnlock":
					delete(held, recv)
				}
				return held
			}
		}
		s.expr(st.X, held)
	case *ast.SendStmt:
		if mu, ok := held.any(); ok {
			s.report(st, "channel send while %q is locked — a stalled receiver wedges every goroutine that needs the lock (DESIGN.md §7)", mu)
		}
		s.expr(st.Chan, held)
		s.expr(st.Value, held)
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the mutex held for the remainder of the
		// body; any other deferred call runs after the body and is not
		// scanned under the current state.
		if _, _, ok := s.mutexOp(st.Call); ok {
			return held
		}
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
	case *ast.GoStmt:
		// The spawned goroutine does not hold our locks; its body is
		// scanned as its own function body with a fresh state. Arguments
		// are evaluated here, though.
		for _, a := range st.Call.Args {
			s.expr(a, held)
		}
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e, held)
		}
		for _, e := range st.Lhs {
			s.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		s.expr(st.Cond, held)
		then := s.block(st.Body.List, held.clone())
		switch els := st.Else.(type) {
		case nil:
			// No else: the fall-through path around the body keeps held;
			// changes inside the body survive only if the body falls
			// through and agrees (early `mu.Unlock(); return` arms must
			// not unlock the main path's view).
			if !terminates(st.Body.List) {
				held = held.intersect(then)
			}
		case *ast.BlockStmt:
			elseHeld := s.block(els.List, held.clone())
			held = mergeBranches(held, [2]heldSet{then, elseHeld}, [2]bool{terminates(st.Body.List), terminates(els.List)})
		case *ast.IfStmt:
			elseHeld := s.stmt(els, held.clone())
			held = mergeBranches(held, [2]heldSet{then, elseHeld}, [2]bool{terminates(st.Body.List), false})
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			s.expr(st.Cond, held)
		}
		s.block(st.Body.List, held.clone()) // findings only; state does not escape
	case *ast.RangeStmt:
		s.expr(st.X, held)
		s.block(st.Body.List, held.clone())
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					s.expr(e, held)
				}
				s.block(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		blocking := true
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false // has a default clause: non-blocking
			}
		}
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && blocking {
				if mu, locked := held.any(); locked {
					s.report(send, "channel send in blocking select while %q is locked (DESIGN.md §7)", mu)
				}
			}
			s.block(cc.Body, held.clone())
		}
	case *ast.BlockStmt:
		held = s.block(st.List, held)
	case *ast.LabeledStmt:
		held = s.stmt(st.Stmt, held)
	}
	return held
}

// expr scans an expression for blocking calls made under held locks. It
// does not descend into function literals — those are separate bodies.
func (s *deadlockScan) expr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		mu, isHeld := held.any()
		if !isHeld {
			return true
		}
		if s.isWaitGroupWait(call) {
			s.report(call, "sync.WaitGroup.Wait while %q is locked — waiting on goroutines that may need the lock (DESIGN.md §7)", mu)
		} else if pkg, name, ok := s.netCall(call); ok {
			s.report(call, "blocking %s.%s call while %q is locked (DESIGN.md §7)", pkg, name, mu)
		}
		return true
	})
}

// mutexOp reports whether call is x.Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex (directly or through an embedded field),
// returning the receiver's source text and the operation name.
func (s *deadlockScan) mutexOp(call *ast.CallExpr) (recv string, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	kind = sel.Sel.Name
	switch kind {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	obj, isFunc := s.unit.Info.Uses[sel.Sel].(*types.Func)
	if !isFunc {
		return "", "", false
	}
	recvVar := obj.Type().(*types.Signature).Recv()
	if recvVar == nil || !isSyncMutex(recvVar.Type()) {
		return "", "", false
	}
	return exprText(sel.X), kind, true
}

// isWaitGroupWait reports whether call is (*sync.WaitGroup).Wait.
func (s *deadlockScan) isWaitGroupWait(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	obj, ok := s.unit.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return isNamedIn(recv.Type(), "sync", "WaitGroup")
}

// blockingNetNames are the net / net/http calls that can block on a
// remote party. Deadline setters, address accessors and Close are not in
// the class: they complete locally.
var blockingNetNames = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"Accept": true, "AcceptTCP": true, "Dial": true, "DialTimeout": true,
	"DialTCP": true, "DialUDP": true, "DialIP": true, "DialUnix": true,
	"Do": true, "Get": true, "Head": true, "Post": true, "PostForm": true,
}

// netCall reports whether call resolves to a blocking function or method
// of package net or net/http — the I/O class the deadlock discipline
// bans under locks (file I/O under a commit mutex is a deliberate WAL
// pattern and is not flagged).
func (s *deadlockScan) netCall(call *ast.CallExpr) (pkg, name string, ok bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = s.unit.Info.Uses[fun.Sel]
	case *ast.Ident:
		obj = s.unit.Info.Uses[fun]
	default:
		return "", "", false
	}
	fn, isFunc := obj.(*types.Func)
	if !isFunc || !blockingNetNames[fn.Name()] {
		return "", "", false
	}
	// Package-level function from net / net/http.
	if p := fn.Pkg(); p != nil && (p.Path() == "net" || p.Path() == "net/http") {
		if recv := fn.Type().(*types.Signature).Recv(); recv == nil {
			return p.Path(), fn.Name(), true
		}
	}
	// Method on a type declared in net / net/http (net.Conn.Read,
	// net.Listener.Accept, http.Client.Do, ... including interfaces).
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			if p := named.Obj().Pkg(); p != nil && (p.Path() == "net" || p.Path() == "net/http") {
				return p.Path(), named.Obj().Name() + "." + fn.Name(), true
			}
		}
	}
	return "", "", false
}

// mergeBranches combines lock state after an if/else: a branch that
// terminates (returns/panics) contributes nothing to the fall-through
// state; otherwise a mutex stays held only if every fall-through path
// holds it.
func mergeBranches(before heldSet, branches [2]heldSet, term [2]bool) heldSet {
	switch {
	case term[0] && term[1]:
		return before
	case term[0]:
		return branches[1]
	case term[1]:
		return branches[0]
	default:
		return branches[0].intersect(branches[1])
	}
}

// terminates reports whether a statement list always transfers control
// away (return, panic, goto, break, continue, os.Exit-like not modeled).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}
