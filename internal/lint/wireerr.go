package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// runWireErr enforces the transport error discipline (DESIGN.md's
// retryable-vs-fatal split):
//
//   - a transport.Error composite literal must set Op — an error that
//     cannot name its failing operation is undiagnosable in the field
//     (transport.Errorf sets it by construction; literals must too);
//   - comparisons against sentinel errors (package-level error values
//     like transport.ErrClosed or io.EOF) must use errors.Is, never
//     == or != — wrapped causes make direct comparison silently false.
//
// Both rules apply to test files as well: a test asserting with == is
// one wrap away from passing vacuously.
func runWireErr(p *Program) []Finding {
	var findings []Finding
	errType := types.Universe.Lookup("error").Type()
	for _, u := range p.Units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					tv, ok := u.Info.Types[n]
					if !ok || !isTransportError(tv.Type) {
						return true
					}
					if !literalSetsOp(n) {
						findings = append(findings, Finding{Check: "wireerr", Pos: p.Fset.Position(n.Pos()),
							Message: "transport.Error literal without Op — every transport error must name its failing operation"})
					}
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					for _, side := range [2]ast.Expr{n.X, n.Y} {
						if name, ok := sentinelError(u.Info, side, errType); ok {
							findings = append(findings, Finding{Check: "wireerr", Pos: p.Fset.Position(n.Pos()),
								Message: fmt.Sprintf("comparing against sentinel error %s with %s — use errors.Is, a wrapped cause makes this silently false", name, n.Op)})
							break
						}
					}
				}
				return true
			})
		}
	}
	return findings
}

// isTransportError reports whether t (possibly behind a pointer) is the
// Error type of a package named transport.
func isTransportError(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Error" && obj.Pkg() != nil && lastPathElement(obj.Pkg().Path()) == "transport"
}

// literalSetsOp reports whether a transport.Error composite literal
// provides the Op field — by key, or positionally (field 0).
func literalSetsOp(lit *ast.CompositeLit) bool {
	if len(lit.Elts) == 0 {
		return false
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
		return true // positional: first element is Op
	}
	for _, e := range lit.Elts {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Op" {
				return true
			}
		}
	}
	return false
}

// sentinelError reports whether expr resolves to a package-level
// variable of type error — the sentinel pattern (io.EOF,
// transport.ErrClosed, sql.ErrNoRows, ...). Returns the qualified name.
func sentinelError(info *types.Info, expr ast.Expr, errType types.Type) (string, bool) {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !types.Identical(v.Type(), errType) {
		return "", false
	}
	return v.Pkg().Name() + "." + v.Name(), true
}
