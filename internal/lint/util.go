package lint

import (
	"go/ast"
	"go/types"
	"path"
)

// exprText renders an expression as source text — the key under which a
// locked mutex is tracked ("mu", "s.mu", ...).
func exprText(e ast.Expr) string {
	return types.ExprString(e)
}

// isSyncMutex reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	return isNamedIn(t, "sync", "Mutex") || isNamedIn(t, "sync", "RWMutex")
}

// isNamedIn reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isNamedIn(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// lastPathElement returns the final element of an import path
// ("fabriccrdt/internal/peer" → "peer").
func lastPathElement(importPath string) string {
	return path.Base(importPath)
}
