// Package obs is the metricnames-check fixture catalog (names.go in a
// package named obs).
package obs

const (
	// MetricGood is well-shaped, unique and referenced — silent.
	MetricGood = "fabriccrdt_good_total"
	// MetricBadShape — finding (uppercase and dash violate the shape).
	MetricBadShape = "fabriccrdt_Bad-Shape"
	// MetricDuplicate — finding (same name as MetricGood).
	MetricDuplicate = "fabriccrdt_good_total"
	// MetricOrphan — finding (never referenced outside names.go).
	MetricOrphan = "fabriccrdt_orphan_total"
)
