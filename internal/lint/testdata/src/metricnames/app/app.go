// Package app references catalog constants and carries one stray
// metric-name literal.
package app

import "metricnames/obs"

// Names references the catalog constants (so only MetricOrphan is
// unreferenced).
func Names() []string {
	return []string{obs.MetricGood, obs.MetricBadShape, obs.MetricDuplicate}
}

// stray — finding (metric-name literal outside the obs catalog).
const stray = "fabriccrdt_stray_total"
