// Package util proves determinism scoping: not a commit-path package, so
// wall clock and map ranges are allowed here.
package util

import "time"

// Uptime may read the wall clock — util is not on the commit path.
func Uptime(start time.Time) time.Duration { return time.Since(time.Now().Add(-time.Second)) }

// Sum may range a map — util is not on the commit path.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
