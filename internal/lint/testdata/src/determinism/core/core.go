// Package core is the determinism-check fixture for a commit-path
// package (final import-path element "core").
package core

import (
	"math/rand"
	"sort"
	"time"
)

// now — finding (wall clock in the commit path).
func now() int64 { return time.Now().UnixNano() }

// roll uses the flagged math/rand import.
func roll() int { return rand.Int() }

// unsortedRange — finding (unordered map iteration, no annotation).
func unsortedRange(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// sortedRange — silent: carries a //lint:sorted annotation.
func sortedRange(m map[string]int) []string {
	var keys []string
	//lint:sorted collected keys are sorted below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sliceRange — silent: ranging over a slice is ordered.
func sliceRange(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
