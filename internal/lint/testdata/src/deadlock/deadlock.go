// Package deadlock is the deadlock-check fixture. Functions marked
// "finding" must be flagged; the rest must stay silent. The emit method
// reproduces the PR 4 orderer fan-out deadlock shape from DESIGN.md §7:
// sends into bounded subscriber channels while holding the service
// mutex, so one stalled consumer wedges every producer needing the lock.
package deadlock

import (
	"net"
	"sync"
)

type service struct {
	mu   sync.Mutex
	subs []chan int
}

// emit is the PR 4 regression shape — finding (send under s.mu).
func (s *service) emit(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.subs {
		ch <- v
	}
}

// waitUnderLock — finding (WaitGroup.Wait under mu).
func waitUnderLock(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	wg.Wait()
	mu.Unlock()
}

// netUnderLock — finding (blocking net write under mu).
func netUnderLock(mu *sync.Mutex, c net.Conn, buf []byte) error {
	mu.Lock()
	defer mu.Unlock()
	_, err := c.Write(buf)
	return err
}

// rlockSend — finding (read locks block writers just the same).
func rlockSend(mu *sync.RWMutex, ch chan int) {
	mu.RLock()
	defer mu.RUnlock()
	ch <- 1
}

// selectBlocking — finding (no default clause: the select blocks).
func selectBlocking(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	select {
	case ch <- 1:
	}
}

type embedded struct{ sync.Mutex }

// embeddedSend — finding (Lock through an embedded sync.Mutex).
func embeddedSend(e *embedded, ch chan int) {
	e.Lock()
	ch <- 1
	e.Unlock()
}

// heldAfterEarlyReturn — finding (the early-unlock arm returns, so the
// fall-through path still holds the lock at the send).
func heldAfterEarlyReturn(mu *sync.Mutex, ch chan int, empty bool) {
	mu.Lock()
	if empty {
		mu.Unlock()
		return
	}
	ch <- 1
	mu.Unlock()
}

// okUnlockFirst — silent: the lock is released before the send.
func okUnlockFirst(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	mu.Unlock()
	ch <- 1
}

// okGoroutine — silent: the spawned goroutine does not hold our lock.
func okGoroutine(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	go func() { ch <- 1 }()
}

// okSelectDefault — silent: a select with default never blocks.
func okSelectDefault(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// okBranchesUnlock — silent: every fall-through path unlocked.
func okBranchesUnlock(mu *sync.Mutex, ch chan int, fast bool) {
	mu.Lock()
	if fast {
		mu.Unlock()
	} else {
		mu.Unlock()
	}
	ch <- 1
}

// okDeadlineSetter — silent: deadline setters complete locally.
func okDeadlineSetter(mu *sync.Mutex, c net.Conn) error {
	mu.Lock()
	defer mu.Unlock()
	return c.Close()
}

// okSuppressed — silent: carries a reasoned suppression.
func okSuppressed(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	//lint:ignore deadlock fixture demonstrates a reasoned suppression
	ch <- 1
}
