// Package directives is the suppression-syntax fixture: malformed
// //lint: annotations must themselves be findings.
package directives

// missingReason — finding (no reason given).
//
//lint:ignore deadlock
func missingReason() {}

// unknownCheck — finding (no such check).
//
//lint:ignore nosuchcheck because reasons
func unknownCheck() {}

// unknownDirective — finding (only ignore and sorted exist).
//
//lint:frobnicate all the things
func unknownDirective() {}

// wellFormed — silent (well-formed directives parse even when nothing is
// suppressed by them).
//
//lint:ignore wireerr demonstrating a well-formed directive
func wellFormed() {}
