// Package transport is the wireerr-check fixture's stand-in for
// internal/transport: a package named transport declaring an Error type
// and a sentinel.
package transport

import "errors"

// ErrClosed is a sentinel error.
var ErrClosed = errors.New("transport: closed")

// Error mirrors the real transport.Error shape.
type Error struct {
	Op        string
	Retryable bool
	Err       error
}

func (e *Error) Error() string { return e.Op }

// Unwrap exposes the cause to errors.Is.
func (e *Error) Unwrap() error { return e.Err }
