// Package app is the wireerr-check fixture: Error literals with and
// without Op, and sentinel comparisons with == / != / errors.Is.
package app

import (
	"errors"
	"io"

	"wireerr/transport"
)

// missingOp — finding (keyed literal without Op).
func missingOp(err error) error {
	return &transport.Error{Retryable: true, Err: err}
}

// keyedOp — silent: Op is set.
func keyedOp(err error) error {
	return &transport.Error{Op: "deliver", Err: err}
}

// positionalOp — silent: field 0 is Op.
func positionalOp(err error) error {
	return &transport.Error{"deliver", false, err}
}

// compareSentinel — finding (== against a sentinel).
func compareSentinel(err error) bool {
	return err == transport.ErrClosed
}

// compareEOF — finding (!= against io.EOF).
func compareEOF(err error) bool {
	return err != io.EOF
}

// compareIs — silent: errors.Is is the discipline.
func compareIs(err error) bool {
	return errors.Is(err, transport.ErrClosed)
}

// compareNil — silent: nil is not a sentinel.
func compareNil(err error) bool {
	return err == nil
}

// suppressed — silent: carries a reasoned suppression.
func suppressed(err error) bool {
	//lint:ignore wireerr fixture demonstrates a reasoned suppression
	return err == io.EOF
}
