package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// commitPathPackages are the packages (by final import-path element)
// whose output feeds committed state: world state, validation codes, the
// hash chain, persisted CRDT documents. Anything non-deterministic here —
// wall-clock reads, randomness, unordered map iteration — breaks the
// paper's core claim of byte-identical commits at any worker count.
var commitPathPackages = map[string]bool{
	"core":     true,
	"mvcc":     true,
	"txgraph":  true,
	"crdt":     true,
	"jsoncrdt": true,
	"peer":     true,
	"channel":  true,
	"ledger":   true,
}

// runDeterminism flags, in commit-path packages (production files only):
//
//   - time.Now calls — wall-clock values must never reach committed
//     state (Lamport timestamps carry logical time);
//   - math/rand and math/rand/v2 imports — commit outcomes must be pure
//     functions of the block;
//   - range over a map type without a //lint:sorted annotation —
//     Go map iteration order is deliberately randomized, so an
//     unannotated loop is a byte-identical-replay bug waiting to
//     surface. The annotation asserts the loop's effect is
//     iteration-order independent or explicitly sorted afterwards.
func runDeterminism(p *Program) []Finding {
	var findings []Finding
	for _, u := range p.Units {
		if !commitPathPackages[lastPathElement(u.Path)] {
			continue
		}
		for _, f := range u.Files {
			if u.TestFile[f] {
				continue
			}
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == "math/rand" || ip == "math/rand/v2" {
					findings = append(findings, Finding{
						Check:   "determinism",
						Pos:     p.Fset.Position(imp.Pos()),
						Message: fmt.Sprintf("import of %s in commit-path package %s — commit outcomes must be pure functions of the block", ip, u.Name),
					})
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
						if fn, ok := u.Info.Uses[sel.Sel].(*types.Func); ok &&
							fn.Name() == "Now" && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
							findings = append(findings, Finding{
								Check:   "determinism",
								Pos:     p.Fset.Position(n.Pos()),
								Message: "time.Now in commit-path package — wall-clock values must not feed committed state",
							})
						}
					}
				case *ast.RangeStmt:
					tv, ok := u.Info.Types[n.X]
					if !ok {
						return true
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
						return true
					}
					pos := p.Fset.Position(n.Pos())
					if sortedAnnotated(p.dirs, pos) {
						return true
					}
					findings = append(findings, Finding{
						Check:   "determinism",
						Pos:     pos,
						Message: fmt.Sprintf("range over map %s in commit-path package — unordered iteration feeding committed state breaks byte-identical replay; sort the keys or annotate //lint:sorted <reason>", exprText(n.X)),
					})
				}
				return true
			})
		}
	}
	return findings
}
