// Package lint is fabriccrdt-lint: a dependency-free analyzer suite for
// the project invariants no compiler checks. It is built on stdlib
// go/parser, go/ast and go/types only (no golang.org/x/tools — the module
// stays zero-dep) and runs four checks:
//
//   - deadlock:    no channel send, WaitGroup.Wait or blocking network
//     I/O while a sync.Mutex/RWMutex is held in the same
//     function body (the DESIGN.md §7 orderer post-mortem).
//   - determinism: no time.Now, math/rand or unordered map iteration in
//     commit-path packages — unordered iteration feeding
//     committed state breaks byte-identical replay.
//   - metricnames: internal/obs/names.go is the single metric-name
//     catalog (shape, uniqueness, no stray literals, every
//     name referenced) — the former scripts/check_metrics.sh.
//   - wireerr:     transport.Error construction sets Op; sentinel error
//     comparisons use errors.Is, never == / !=.
//
// Findings can be suppressed with a reasoned annotation on the offending
// line or the line above it:
//
//	//lint:ignore <check> <reason>
//
// The reason is mandatory. The determinism check additionally honors
//
//	//lint:sorted <reason>
//
// on a range-over-map statement, asserting the loop's effect is
// iteration-order independent (or explicitly sorted). See
// docs/ANALYZERS.md for the full catalog and how to add a check.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Finding is one analyzer hit.
type Finding struct {
	Check   string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// A Check is one analyzer: a name, a one-line doc string, and a Run
// function over the loaded program. Run returns raw findings;
// suppression filtering happens in Program.Run.
type Check struct {
	Name string
	Doc  string
	Run  func(p *Program) []Finding
}

// Checks is the registry, in the order they run and are documented.
func Checks() []Check {
	return []Check{
		{Name: "deadlock", Doc: "no channel send, WaitGroup.Wait or blocking net I/O while a sync mutex is held in the same function body", Run: runDeadlock},
		{Name: "determinism", Doc: "no time.Now, math/rand or unannotated range-over-map in commit-path packages", Run: runDeterminism},
		{Name: "metricnames", Doc: "obs names.go is the single fabriccrdt_ metric catalog: shape, uniqueness, no stray literals, every name referenced", Run: runMetricNames},
		{Name: "wireerr", Doc: "transport.Error literals set Op; sentinel error comparisons use errors.Is, not == / !=", Run: runWireErr},
	}
}

// CheckByName returns the named check.
func CheckByName(name string) (Check, bool) {
	for _, c := range Checks() {
		if c.Name == name {
			return c, true
		}
	}
	return Check{}, false
}

// directiveKind distinguishes the two annotation forms.
const (
	dirIgnore = "ignore"
	dirSorted = "sorted"
)

// directive is one parsed //lint:... annotation.
type directive struct {
	kind   string // dirIgnore or dirSorted
	check  string // for ignore: the check name it suppresses
	reason string
	pos    token.Position
}

// directives returns every //lint: annotation in the program, keyed by
// file name then line, plus findings for malformed ones (missing reason,
// unknown check). A directive on line L applies to findings on line L
// (trailing comment) or line L+1 (comment above the statement).
func (p *Program) directives() (map[string]map[int]directive, []Finding) {
	byFile := make(map[string]map[int]directive)
	var bad []Finding
	known := make(map[string]bool)
	for _, c := range Checks() {
		known[c.Name] = true
	}
	for _, u := range p.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) == 0 {
						bad = append(bad, Finding{Check: "lint", Pos: pos, Message: "malformed //lint: directive: want //lint:ignore <check> <reason> or //lint:sorted <reason>"})
						continue
					}
					d := directive{kind: fields[0], pos: pos}
					switch d.kind {
					case dirIgnore:
						if len(fields) < 3 {
							bad = append(bad, Finding{Check: "lint", Pos: pos, Message: "//lint:ignore needs a check name and a reason: //lint:ignore <check> <reason>"})
							continue
						}
						d.check = fields[1]
						d.reason = strings.Join(fields[2:], " ")
						if !known[d.check] {
							bad = append(bad, Finding{Check: "lint", Pos: pos, Message: fmt.Sprintf("//lint:ignore names unknown check %q", d.check)})
							continue
						}
					case dirSorted:
						d.reason = strings.Join(fields[1:], " ")
					default:
						bad = append(bad, Finding{Check: "lint", Pos: pos, Message: fmt.Sprintf("unknown //lint: directive %q (want ignore or sorted)", d.kind)})
						continue
					}
					m := byFile[pos.Filename]
					if m == nil {
						m = make(map[int]directive)
						byFile[pos.Filename] = m
					}
					m[pos.Line] = d
				}
			}
		}
	}
	return byFile, bad
}

// suppressed reports whether a finding at pos is covered by an ignore
// directive for the given check on the same line or the line above.
func suppressed(dirs map[string]map[int]directive, check string, pos token.Position) bool {
	m := dirs[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if d, ok := m[line]; ok && d.kind == dirIgnore && d.check == check {
			return true
		}
	}
	return false
}

// sortedAnnotated reports whether a range statement at pos carries a
// //lint:sorted annotation (same line or the line above).
func sortedAnnotated(dirs map[string]map[int]directive, pos token.Position) bool {
	m := dirs[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if d, ok := m[line]; ok && d.kind == dirSorted {
			return true
		}
	}
	return false
}

// Run executes the given checks over the program, applies suppression
// directives, and returns findings sorted by position. Type-check errors
// recorded by the loader surface as findings of the pseudo-check
// "typecheck" so a package the suite could not analyze fails loudly
// instead of passing silently.
func (p *Program) Run(checks []Check) []Finding {
	dirs, bad := p.directives()
	p.dirs = dirs // determinism reads //lint:sorted annotations from here
	findings := append([]Finding(nil), bad...)
	findings = append(findings, p.TypeErrors...)
	for _, c := range checks {
		for _, f := range c.Run(p) {
			if !suppressed(dirs, f.Check, f.Pos) {
				findings = append(findings, f)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return findings
}

// Format renders findings one per line, with file paths relative to rel
// when possible, and returns the rendered block. An empty slice renders
// to the empty string.
func Format(findings []Finding, rel string) string {
	var b strings.Builder
	for _, f := range findings {
		pos := f.Pos
		if rel != "" {
			if r, ok := strings.CutPrefix(pos.Filename, rel+"/"); ok {
				pos.Filename = r
			}
		}
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, f.Check, f.Message)
	}
	return b.String()
}

// funcBodies yields every function body in the file — FuncDecl bodies and
// FuncLit bodies — exactly once each. Checks that reason per function
// body (deadlock) iterate these and must not descend into nested FuncLits
// themselves: a literal's body is its own entry (a goroutine or callback
// does not inherit the enclosing function's lock state).
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}
