package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// golden drives one check over its fixture packages under testdata/src
// and compares the formatted findings to testdata/<name>.golden. The
// pseudo-check name "lint" runs no analyzer: the findings are the
// malformed-directive diagnostics Program.Run emits on its own.
func golden(t *testing.T, name string, paths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := LoadDirs(root, paths...)
	if err != nil {
		t.Fatalf("LoadDirs(%v): %v", paths, err)
	}
	var checks []Check
	if name != "lint" {
		c, ok := CheckByName(name)
		if !ok {
			t.Fatalf("no check named %q", name)
		}
		checks = []Check{c}
	}
	got := Format(prog.Run(checks), root)

	goldenFile := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(goldenFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("findings differ from %s (re-run with -update after verifying):\ngot:\n%swant:\n%s", goldenFile, got, want)
	}
}

// TestDeadlockGolden includes the PR 4 regression shape from DESIGN.md
// §7: channel sends into bounded subscriber channels while holding the
// service mutex. The fixture's emit method must always be flagged.
func TestDeadlockGolden(t *testing.T) {
	golden(t, "deadlock", "deadlock")
}

func TestDeterminismGolden(t *testing.T) {
	golden(t, "determinism", "determinism/core", "determinism/util")
}

func TestMetricNamesGolden(t *testing.T) {
	golden(t, "metricnames", "metricnames/obs", "metricnames/app")
}

func TestWireErrGolden(t *testing.T) {
	golden(t, "wireerr", "wireerr/app")
}

// TestDirectivesGolden checks that malformed //lint: annotations are
// findings in their own right, under the pseudo-check "lint".
func TestDirectivesGolden(t *testing.T) {
	golden(t, "lint", "directives")
}

// TestDeadlockFlagsPR4Shape pins the regression independently of golden
// formatting: the emit method's send-under-mutex must produce a deadlock
// finding whatever else the fixture grows.
func TestDeadlockFlagsPR4Shape(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := LoadDirs(root, "deadlock")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := CheckByName("deadlock")
	for _, f := range prog.Run([]Check{c}) {
		if f.Check == "deadlock" && strings.Contains(f.Message, `"s.mu"`) {
			return
		}
	}
	t.Fatal("deadlock check did not flag the PR 4 send-under-mutex shape (emit method, s.mu held)")
}

// TestLoadModule smoke-tests the go-list-backed loader against the real
// module (the lint package itself — stdlib deps only, so it stays fast).
func TestLoadModule(t *testing.T) {
	moduleRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(moduleRoot, "./internal/lint")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.TypeErrors) > 0 {
		t.Fatalf("type errors loading internal/lint: %v", prog.TypeErrors)
	}
	found := false
	for _, u := range prog.Units {
		if strings.HasSuffix(u.Path, "internal/lint") && u.Pkg != nil {
			found = true
		}
	}
	if !found {
		t.Fatalf("internal/lint unit missing from %d loaded units", len(prog.Units))
	}
}

func TestFormatRelativizes(t *testing.T) {
	f := Finding{Check: "wireerr", Message: "m"}
	f.Pos.Filename = "/a/b/c.go"
	f.Pos.Line, f.Pos.Column = 3, 7
	if got, want := Format([]Finding{f}, "/a/b"), "c.go:3:7: [wireerr] m\n"; got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
}
