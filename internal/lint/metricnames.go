package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
)

// metricNameShape is the required shape of every registry metric name.
var metricNameShape = regexp.MustCompile(`^fabriccrdt_[a-z0-9_]+$`)

// runMetricNames enforces the single-catalog metric-name discipline that
// scripts/check_metrics.sh used to shell-script, plus one rule the
// script could not express:
//
//  1. every Metric* constant in the obs package's names.go matches
//     ^fabriccrdt_[a-z0-9_]+$;
//  2. no two constants declare the same name;
//  3. no .go file outside the obs package contains a "fabriccrdt_..."
//     string literal — call sites must reference the obs.Metric*
//     constants (the obs package's own tests exercise the registry with
//     literal names, so the whole package is exempt);
//  4. every declared constant is referenced somewhere outside names.go —
//     a catalog entry nothing emits is a stale name on a dashboard. This
//     rule is whole-program by nature, so it only runs on whole-module
//     loads (./...): a package-subset load cannot see all call sites and
//     would report every constant as orphaned.
func runMetricNames(p *Program) []Finding {
	var findings []Finding

	// Locate the catalog: names.go in a package named "obs".
	type metricConst struct {
		name  string // constant identifier (MetricPeerBlockHeight)
		value string // metric name ("fabriccrdt_peer_block_height")
		pos   ast.Node
	}
	var (
		catalog     []metricConst
		catalogUnit *Unit
		catalogFile *ast.File
	)
	for _, u := range p.Units {
		if u.Name != "obs" {
			continue
		}
		for _, f := range u.Files {
			if filepath.Base(p.Fset.Position(f.Pos()).Filename) != "names.go" {
				continue
			}
			catalogUnit, catalogFile = u, f
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, id := range vs.Names {
						c, ok := u.Info.Defs[id].(*types.Const)
						if !ok || !strings.HasPrefix(id.Name, "Metric") {
							continue
						}
						if c.Val().Kind() != constant.String {
							continue
						}
						catalog = append(catalog, metricConst{name: id.Name, value: constant.StringVal(c.Val()), pos: id})
					}
				}
			}
		}
	}
	if catalogFile == nil {
		// No obs catalog in the loaded program (e.g. a partial load):
		// nothing to enforce.
		return nil
	}

	// 1+2: shape and uniqueness.
	byValue := make(map[string]string)
	for _, mc := range catalog {
		if !metricNameShape.MatchString(mc.value) {
			findings = append(findings, Finding{Check: "metricnames", Pos: p.Fset.Position(mc.pos.Pos()),
				Message: fmt.Sprintf("metric name %q violates ^fabriccrdt_[a-z0-9_]+$", mc.value)})
		}
		if prev, dup := byValue[mc.value]; dup {
			findings = append(findings, Finding{Check: "metricnames", Pos: p.Fset.Position(mc.pos.Pos()),
				Message: fmt.Sprintf("metric name %q already declared as %s", mc.value, prev)})
		} else {
			byValue[mc.value] = mc.name
		}
	}

	// 3: no fabriccrdt_ string literals outside the obs package.
	// 4: every catalog constant referenced outside names.go.
	referenced := make(map[string]bool)
	catalogPkg := catalogUnit.Path
	for _, u := range p.Units {
		inObs := u.Name == "obs" || u.Name == "obs_test"
		for _, f := range u.Files {
			isCatalog := f == catalogFile
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BasicLit:
					//lint:ignore metricnames this literal is the check's own needle, not a metric name
					if !inObs && n.Kind == token.STRING && strings.HasPrefix(strings.Trim(n.Value, "`\""), "fabriccrdt_") {
						findings = append(findings, Finding{Check: "metricnames", Pos: p.Fset.Position(n.Pos()),
							Message: "metric-name literal outside the obs catalog — reference the obs.Metric* constants (internal/obs/names.go)"})
					}
				case *ast.Ident:
					if isCatalog {
						return true
					}
					if c, ok := u.Info.Uses[n].(*types.Const); ok && c.Pkg() != nil &&
						c.Pkg().Path() == catalogPkg && strings.HasPrefix(c.Name(), "Metric") {
						referenced[c.Name()] = true
					}
				}
				return true
			})
		}
	}
	if p.WholeProgram {
		for _, mc := range catalog {
			if !referenced[mc.name] {
				findings = append(findings, Finding{Check: "metricnames", Pos: p.Fset.Position(mc.pos.Pos()),
					Message: fmt.Sprintf("catalog constant %s (%q) is never referenced — emit it or delete the entry", mc.name, mc.value)})
			}
		}
	}
	return findings
}
