// Package des is a deterministic discrete-event simulator: an event queue
// ordered by virtual time with FIFO tie-breaking. The experiment harness
// drives the real Fabric/FabricCRDT commit-path code under virtual time so
// that the paper's hour-long, cluster-scale runs regenerate in seconds of
// CPU (DESIGN.md S17).
package des

import (
	"container/heap"
	"time"
)

// Sim is a discrete-event simulation. The zero value is ready to use.
// Sim is not safe for concurrent use: all events run on the caller's
// goroutine, which is what makes runs deterministic.
type Sim struct {
	now   time.Duration
	queue eventHeap
	seq   uint64
	// processed counts executed events (diagnostics).
	processed uint64
}

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventHeap orders events by (time, insertion sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() event   { return h[0] }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Schedule queues fn to run after delay (clamped to >= 0) of virtual time.
func (s *Sim) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt queues fn at an absolute virtual time (clamped to now).
func (s *Sim) ScheduleAt(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.queue, event{at: at, seq: s.seq, fn: fn})
}

// Step executes the next event, returning false when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(event)
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// Run executes events until the queue drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time <= deadline; the clock stops at the
// deadline (or earlier if the queue drains).
func (s *Sim) RunUntil(deadline time.Duration) {
	for len(s.queue) > 0 && s.queue.Peek().at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}
