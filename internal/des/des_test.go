package des

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var s Sim
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("now = %v", s.Now())
	}
	if s.Processed() != 3 {
		t.Fatalf("processed = %d", s.Processed())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-break violated FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var s Sim
	var times []time.Duration
	s.Schedule(10*time.Millisecond, func() {
		times = append(times, s.Now())
		s.Schedule(5*time.Millisecond, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 10*time.Millisecond || times[1] != 15*time.Millisecond {
		t.Fatalf("times = %v", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	var s Sim
	s.Schedule(10*time.Millisecond, func() {
		s.Schedule(-5*time.Millisecond, func() {
			if s.Now() != 10*time.Millisecond {
				t.Errorf("negative delay ran at %v", s.Now())
			}
		})
	})
	s.Run()
}

func TestScheduleAtPastClamped(t *testing.T) {
	var s Sim
	fired := false
	s.Schedule(10*time.Millisecond, func() {
		s.ScheduleAt(time.Millisecond, func() { fired = true })
	})
	s.Run()
	if !fired {
		t.Fatal("past-scheduled event dropped")
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	var fired []int
	s.Schedule(10*time.Millisecond, func() { fired = append(fired, 1) })
	s.Schedule(30*time.Millisecond, func() { fired = append(fired, 2) })
	s.RunUntil(20 * time.Millisecond)
	if len(fired) != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("now = %v after RunUntil", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run()
	if len(fired) != 2 || s.Now() != 30*time.Millisecond {
		t.Fatalf("fired = %v, now = %v", fired, s.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	var s Sim
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s Sim
		for j := 0; j < 100; j++ {
			s.Schedule(time.Duration(j)*time.Microsecond, func() {})
		}
		s.Run()
	}
}
