// Package parallel provides the bounded fan-out primitive the commit
// pipeline's parallel stages share. Callers guarantee their per-item work
// touches disjoint state; ForEach then makes the schedule irrelevant to
// the result.
package parallel

import "sync"

// ForEach runs fn over every item, spreading items across at most workers
// goroutines. workers <= 1 (or fewer items than workers would need) runs
// serially in slice order with no goroutines. ForEach returns when every
// item has been processed.
func ForEach[T any](workers int, items []T, fn func(T)) {
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for _, item := range items {
			fn(item)
		}
		return
	}
	work := make(chan T)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range work {
				fn(item)
			}
		}()
	}
	for _, item := range items {
		work <- item
	}
	close(work)
	wg.Wait()
}
