package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachProcessesEveryItem(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 8, 100} {
		items := make([]int, 37)
		for i := range items {
			items[i] = i
		}
		var hits [37]atomic.Int32
		ForEach(workers, items, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: item %d processed %d times", workers, i, n)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(8, nil, func(int) { t.Fatal("called on empty input") })
}

func TestForEachSerialPreservesOrder(t *testing.T) {
	var got []int
	ForEach(1, []int{3, 1, 4, 1, 5}, func(v int) { got = append(got, v) })
	want := []int{3, 1, 4, 1, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestForEachLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ForEach(4, []int{1, 2, 3, 4, 5, 6, 7, 8}, func(int) {})
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew %d -> %d", before, after)
	}
}
