// Package client implements the application SDK: it drives the
// execute-order-validate lifecycle on behalf of an application (paper §2.1,
// Figure 1) — creating proposals, collecting and cross-checking
// endorsements, assembling the transaction envelope, submitting it for
// ordering, and waiting for the commit event.
package client

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/obs"
	"fabriccrdt/internal/peer"
	"fabriccrdt/internal/rwset"
)

// Endorser is the peer surface the client needs for the execution phase.
type Endorser interface {
	Endorse(prop peer.Proposal) (peer.ProposalResponse, error)
	MSPID() string
	Name() string
}

// Broadcaster is the ordering service surface the client needs.
type Broadcaster interface {
	Broadcast(tx *ledger.Transaction) error
}

// Client errors.
var (
	ErrNoEndorsers        = errors.New("client: no endorsers configured")
	ErrEndorseMismatch    = errors.New("client: endorsers returned different read/write sets")
	ErrCommitTimeout      = errors.New("client: timed out waiting for commit")
	ErrTxFailed           = errors.New("client: transaction failed validation")
	ErrListenerNotStarted = errors.New("client: commit listener not started")
)

// Client submits transactions on behalf of one identity.
type Client struct {
	signer    *cryptoid.Signer
	channelID string
	endorsers []Endorser
	orderer   Broadcaster

	nonce atomic.Uint64
	// txSalt makes transaction IDs unique per client *instance*: two
	// processes (or one restarted process) recreating a client with the
	// same identity must not re-derive the IDs of already-committed
	// transactions — peers durably screen duplicates. Mirrors the random
	// nonce Fabric clients put into every proposal.
	txSalt string

	mu      sync.Mutex
	waiters map[string]chan peer.CommitEvent
	started bool
	done    chan struct{}
}

// New creates a client for the given channel submitting through the given
// endorsers and orderer.
func New(signer *cryptoid.Signer, channelID string, endorsers []Endorser, orderer Broadcaster) *Client {
	var salt [8]byte
	if _, err := rand.Read(salt[:]); err != nil {
		// crypto/rand is effectively infallible; fall back to a timestamp
		// rather than silently reusing a fixed salt.
		binary.LittleEndian.PutUint64(salt[:], uint64(time.Now().UnixNano()))
	}
	return &Client{
		signer:    signer,
		channelID: channelID,
		endorsers: endorsers,
		orderer:   orderer,
		txSalt:    hex.EncodeToString(salt[:]),
		waiters:   make(map[string]chan peer.CommitEvent),
	}
}

// ChannelID returns the channel this client submits on.
func (c *Client) ChannelID() string { return c.channelID }

// StartCommitListener consumes commit events (from one peer's Events
// channel) and completes pending waits. Call once before SubmitAndWait.
// Events from other channels are skipped: a multi-channel peer emits one
// stream for all its channels, and this client only ever waits on its own.
func (c *Client) StartCommitListener(events <-chan peer.CommitEvent) {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.done = make(chan struct{})
	c.mu.Unlock()
	go func() {
		defer close(c.done)
		for ev := range events {
			// A client constructed with an empty channel ID submits on the
			// endorsers' default channel (prepare adopts the resolved ID),
			// so it cannot filter by name — waiters are keyed by txID,
			// which is unique per client instance either way.
			if ev.ChannelID != "" && c.channelID != "" && ev.ChannelID != c.channelID {
				continue
			}
			c.mu.Lock()
			ch, ok := c.waiters[ev.TxID]
			if ok {
				delete(c.waiters, ev.TxID)
			}
			c.mu.Unlock()
			if ok {
				ch <- ev
			}
		}
	}()
}

// WaitListenerDone blocks until the commit-listener goroutine exits (after
// the peer closes its event channel).
func (c *Client) WaitListenerDone() {
	c.mu.Lock()
	done := c.done
	c.mu.Unlock()
	if done != nil {
		<-done
	}
}

// NewTxID derives a unique transaction ID from the client identity, the
// instance salt and a monotonic nonce, as Fabric does from (creator,
// random nonce).
func (c *Client) NewTxID() string {
	n := c.nonce.Add(1)
	h := sha256.Sum256([]byte(fmt.Sprintf("%s/%s/%s/%d", c.signer.MSPID, c.signer.Name, c.txSalt, n)))
	return hex.EncodeToString(h[:16])
}

// Prepare runs the execution phase only: it endorses one invocation across
// the client's endorsers and assembles the signed, submission-stamped
// envelope WITHOUT broadcasting it. Callers hand the envelope to whatever
// ordering path they use — the local orderer, or a gateway's Submit stream
// (transport.Transport.Submit), which broadcasts and waits for the commit
// event server-side.
func (c *Client) Prepare(chaincodeName string, args ...[]byte) (*ledger.Transaction, error) {
	tx, err := c.prepare(chaincodeName, args)
	if err != nil {
		return nil, err
	}
	tx.SubmitUnixNano = time.Now().UnixNano()
	return tx, nil
}

// Submit runs execution + ordering for one invocation and returns the
// transaction ID once the envelope is accepted for ordering. It does not
// wait for commit.
func (c *Client) Submit(chaincodeName string, args ...[]byte) (string, error) {
	tx, err := c.prepare(chaincodeName, args)
	if err != nil {
		return "", err
	}
	tx.SubmitUnixNano = time.Now().UnixNano()
	if err := c.orderer.Broadcast(tx); err != nil {
		return "", err
	}
	return tx.ID, nil
}

// SubmitAndWait submits and blocks until the commit event arrives (or
// timeout). It returns the validation code; a non-committed code is also an
// ErrTxFailed error.
func (c *Client) SubmitAndWait(timeout time.Duration, chaincodeName string, args ...[]byte) (ledger.ValidationCode, error) {
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if !started {
		return ledger.CodeNotValidated, ErrListenerNotStarted
	}
	tx, err := c.prepare(chaincodeName, args)
	if err != nil {
		return ledger.CodeNotValidated, err
	}
	wait := make(chan peer.CommitEvent, 1)
	c.mu.Lock()
	c.waiters[tx.ID] = wait
	c.mu.Unlock()
	tx.SubmitUnixNano = time.Now().UnixNano()
	if err := c.orderer.Broadcast(tx); err != nil {
		c.mu.Lock()
		delete(c.waiters, tx.ID)
		c.mu.Unlock()
		return ledger.CodeNotValidated, err
	}
	select {
	case ev := <-wait:
		if !ev.Code.Committed() {
			return ev.Code, fmt.Errorf("%w: %s (%s)", ErrTxFailed, tx.ID, ev.Code)
		}
		return ev.Code, nil
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.waiters, tx.ID)
		c.mu.Unlock()
		return ledger.CodeNotValidated, fmt.Errorf("%w: %s", ErrCommitTimeout, tx.ID)
	}
}

// prepare runs the execution/endorsement phase and assembles the envelope.
func (c *Client) prepare(chaincodeName string, args [][]byte) (*ledger.Transaction, error) {
	if len(c.endorsers) == 0 {
		return nil, ErrNoEndorsers
	}
	creator, err := c.signer.Identity.Marshal()
	if err != nil {
		return nil, err
	}
	// Tracing: the client mints the trace ID here, at the very start of the
	// transaction lifecycle; it rides the proposal to endorsers and the
	// envelope through ordering to every committing peer. Zero cost when
	// tracing is off — no ID is minted and every downstream span site
	// no-ops on the empty string.
	var traceID string
	start := time.Now()
	if obs.TracingEnabled() {
		traceID = obs.NewTraceID()
	}
	prop := peer.Proposal{
		TxID:      c.NewTxID(),
		ChannelID: c.channelID,
		Chaincode: chaincodeName,
		Args:      args,
		Creator:   creator,
		TraceID:   traceID,
	}

	// Execution phase: submit the proposal to all endorsers in parallel
	// (paper Figure 1, step 1) and collect signed responses (step 2).
	type outcome struct {
		resp peer.ProposalResponse
		err  error
	}
	results := make([]outcome, len(c.endorsers))
	var wg sync.WaitGroup
	for i, e := range c.endorsers {
		wg.Add(1)
		go func(i int, e Endorser) {
			defer wg.Done()
			resp, err := e.Endorse(prop)
			results[i] = outcome{resp: resp, err: err}
		}(i, e)
	}
	wg.Wait()

	var (
		responses []peer.ProposalResponse
		firstErr  error
	)
	for i, r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("endorser %s: %w", c.endorsers[i].Name(), r.err)
			}
			continue
		}
		responses = append(responses, r.resp)
	}
	if len(responses) == 0 {
		return nil, fmt.Errorf("client: all endorsements failed: %w", firstErr)
	}

	// All endorsers must agree on the simulation result; a mismatch means
	// non-deterministic chaincode or divergent state. They must also agree
	// on the resolved channel: endorsers normalize an empty proposal
	// ChannelID to their default channel and sign over the resolved ID, so
	// the envelope must carry it — a transaction naming any other channel
	// (empty included) is rejected at commit (WRONG_CHANNEL).
	var agreed rwset.ReadWriteSet
	channelID := prop.ChannelID
	for i, resp := range responses {
		if i == 0 {
			agreed = resp.RWSet
		} else if !agreed.Equal(resp.RWSet) {
			return nil, ErrEndorseMismatch
		}
		switch {
		case resp.ChannelID == "":
			// An endorser that does not echo a channel (test fakes) adds
			// no constraint.
		case channelID == "":
			channelID = resp.ChannelID
		case resp.ChannelID != channelID:
			return nil, ErrEndorseMismatch
		}
	}

	tx := &ledger.Transaction{
		ID:        prop.TxID,
		ChannelID: channelID,
		Chaincode: prop.Chaincode,
		Creator:   creator,
		Args:      args,
		RWSet:     agreed,
		TraceID:   traceID,
	}
	for _, resp := range responses {
		tx.Endorsements = append(tx.Endorsements, ledger.Endorsement{
			Endorser:  resp.Endorser,
			Signature: resp.Signature,
		})
	}
	obs.Trace(traceID, "client.prepare", start,
		"client", c.signer.Name, "txID", tx.ID, "channel", channelID,
		"chaincode", chaincodeName)
	return tx, nil
}
