package client

import (
	"testing"

	"fabriccrdt/internal/rwset"
)

func TestNewMultiClientValidation(t *testing.T) {
	if _, err := NewMultiClient(); err == nil {
		t.Fatal("empty multi-client accepted")
	}
	signer := testSigner(t)
	a := New(signer, "ch1", nil, &fakeOrderer{})
	b := New(signer, "ch1", nil, &fakeOrderer{})
	if _, err := NewMultiClient(a, b); err == nil {
		t.Fatal("two clients on one channel accepted")
	}
}

func TestMultiClientRoutesByChannel(t *testing.T) {
	signer := testSigner(t)
	orderers := map[string]*fakeOrderer{"ch1": {}, "ch2": {}}
	endorser := &fakeEndorser{name: "p0", resp: respWith(rwset.ReadWriteSet{})}
	m, err := NewMultiClient(
		New(signer, "ch1", []Endorser{endorser}, orderers["ch1"]),
		New(signer, "ch2", []Endorser{endorser}, orderers["ch2"]),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Channels(); len(got) != 2 || got[0] != "ch1" || got[1] != "ch2" {
		t.Fatalf("Channels = %v", got)
	}
	if _, err := m.Submit("ch2", "cc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if len(orderers["ch2"].txs) != 1 || len(orderers["ch1"].txs) != 0 {
		t.Fatalf("named submit landed on the wrong orderer: ch1=%d ch2=%d", len(orderers["ch1"].txs), len(orderers["ch2"].txs))
	}
	if orderers["ch2"].txs[0].ChannelID != "ch2" {
		t.Fatalf("tx channel = %q", orderers["ch2"].txs[0].ChannelID)
	}
	if _, err := m.Submit("nope", "cc"); err == nil {
		t.Fatal("unknown channel accepted")
	}

	// Round-robin alternates channels deterministically.
	seen := make(map[string]int)
	for i := 0; i < 6; i++ {
		ch, _, err := m.SubmitRoundRobin("cc", []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		seen[ch]++
	}
	if seen["ch1"] != 3 || seen["ch2"] != 3 {
		t.Fatalf("round-robin split = %v, want 3/3", seen)
	}
}
