package client

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"fabriccrdt/internal/ledger"
)

// MultiClient errors.
var (
	ErrNoClients      = errors.New("client: multi-client needs at least one client")
	ErrUnknownChannel = errors.New("client: channel not configured on this multi-client")
)

// MultiClient bundles one Client per channel under a single application
// identity: submit to a named channel, or let the round-robin helpers
// spread independent transactions across every channel — the
// multi-channel sharding pattern where aggregate throughput scales with
// the channel count because channels commit in parallel.
//
// All methods are safe for concurrent use (each underlying Client already
// is; the rotation cursor is atomic).
type MultiClient struct {
	order     []string
	byChannel map[string]*Client
	next      atomic.Uint64
}

// NewMultiClient bundles the given per-channel clients. Each client's
// bound channel becomes its key; two clients on the same channel are an
// error, as is an empty list.
func NewMultiClient(clients ...*Client) (*MultiClient, error) {
	if len(clients) == 0 {
		return nil, ErrNoClients
	}
	m := &MultiClient{byChannel: make(map[string]*Client, len(clients))}
	for _, c := range clients {
		id := c.ChannelID()
		if _, dup := m.byChannel[id]; dup {
			return nil, fmt.Errorf("client: two clients bound to channel %q", id)
		}
		m.byChannel[id] = c
		m.order = append(m.order, id)
	}
	return m, nil
}

// Channels returns the configured channel IDs in registration order.
func (m *MultiClient) Channels() []string { return append([]string(nil), m.order...) }

// On returns the client bound to one channel.
func (m *MultiClient) On(channelID string) (*Client, error) {
	c, ok := m.byChannel[channelID]
	if !ok {
		return nil, fmt.Errorf("%w: %q (configured: %v)", ErrUnknownChannel, channelID, m.order)
	}
	return c, nil
}

// Submit runs execution + ordering for one invocation on the named channel
// and returns the transaction ID once accepted for ordering (no commit
// wait).
func (m *MultiClient) Submit(channelID, chaincodeName string, args ...[]byte) (string, error) {
	c, err := m.On(channelID)
	if err != nil {
		return "", err
	}
	return c.Submit(chaincodeName, args...)
}

// SubmitAndWait submits on the named channel and blocks until the commit
// event arrives (or timeout).
func (m *MultiClient) SubmitAndWait(timeout time.Duration, channelID, chaincodeName string, args ...[]byte) (ledger.ValidationCode, error) {
	c, err := m.On(channelID)
	if err != nil {
		return ledger.CodeNotValidated, err
	}
	return c.SubmitAndWait(timeout, chaincodeName, args...)
}

// rotate returns the next channel in round-robin order.
func (m *MultiClient) rotate() *Client {
	id := m.order[(m.next.Add(1)-1)%uint64(len(m.order))]
	return m.byChannel[id]
}

// SubmitRoundRobin submits on the next channel in rotation — the sharding
// helper for workloads whose transactions are independent of each other —
// returning the chosen channel and the transaction ID.
func (m *MultiClient) SubmitRoundRobin(chaincodeName string, args ...[]byte) (channelID, txID string, err error) {
	c := m.rotate()
	txID, err = c.Submit(chaincodeName, args...)
	return c.ChannelID(), txID, err
}

// SubmitAndWaitRoundRobin is SubmitRoundRobin with a commit wait.
func (m *MultiClient) SubmitAndWaitRoundRobin(timeout time.Duration, chaincodeName string, args ...[]byte) (channelID string, code ledger.ValidationCode, err error) {
	c := m.rotate()
	code, err = c.SubmitAndWait(timeout, chaincodeName, args...)
	return c.ChannelID(), code, err
}
