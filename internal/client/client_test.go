package client

import (
	"errors"
	"sync"
	"testing"
	"time"

	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/peer"
	"fabriccrdt/internal/rwset"
)

// fakeEndorser returns a canned response or error.
type fakeEndorser struct {
	name string
	resp peer.ProposalResponse
	err  error
}

func (f *fakeEndorser) Endorse(peer.Proposal) (peer.ProposalResponse, error) {
	return f.resp, f.err
}
func (f *fakeEndorser) MSPID() string { return "Org1" }
func (f *fakeEndorser) Name() string  { return f.name }

// fakeOrderer records broadcast transactions.
type fakeOrderer struct {
	mu  sync.Mutex
	txs []*ledger.Transaction
	err error
}

func (f *fakeOrderer) Broadcast(tx *ledger.Transaction) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return f.err
	}
	f.txs = append(f.txs, tx)
	return nil
}

func testSigner(t *testing.T) *cryptoid.Signer {
	t.Helper()
	ca, err := cryptoid.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	s, err := ca.Issue("client0")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func respWith(rw rwset.ReadWriteSet) peer.ProposalResponse {
	return peer.ProposalResponse{Endorser: []byte("e"), RWSet: rw, Signature: []byte("s")}
}

func TestNewTxIDUnique(t *testing.T) {
	c := New(testSigner(t), "ch", nil, &fakeOrderer{})
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := c.NewTxID()
		if seen[id] {
			t.Fatalf("duplicate tx ID %s", id)
		}
		seen[id] = true
	}
}

func TestSubmitNoEndorsers(t *testing.T) {
	c := New(testSigner(t), "ch", nil, &fakeOrderer{})
	if _, err := c.Submit("cc"); !errors.Is(err, ErrNoEndorsers) {
		t.Fatalf("err = %v, want ErrNoEndorsers", err)
	}
}

func TestSubmitBroadcasts(t *testing.T) {
	ord := &fakeOrderer{}
	rw := rwset.ReadWriteSet{Writes: []rwset.Write{{Key: "k", Value: []byte("v")}}}
	c := New(testSigner(t), "ch", []Endorser{&fakeEndorser{name: "p0", resp: respWith(rw)}}, ord)
	id, err := c.Submit("cc", []byte("arg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ord.txs) != 1 || ord.txs[0].ID != id {
		t.Fatalf("broadcast txs = %v", ord.txs)
	}
	if ord.txs[0].SubmitUnixNano == 0 {
		t.Fatal("submit time not stamped")
	}
	if len(ord.txs[0].Endorsements) != 1 {
		t.Fatal("endorsement missing")
	}
}

func TestSubmitEndorserMismatch(t *testing.T) {
	rw1 := rwset.ReadWriteSet{Writes: []rwset.Write{{Key: "k", Value: []byte("v1")}}}
	rw2 := rwset.ReadWriteSet{Writes: []rwset.Write{{Key: "k", Value: []byte("v2")}}}
	c := New(testSigner(t), "ch", []Endorser{
		&fakeEndorser{name: "p0", resp: respWith(rw1)},
		&fakeEndorser{name: "p1", resp: respWith(rw2)},
	}, &fakeOrderer{})
	if _, err := c.Submit("cc"); !errors.Is(err, ErrEndorseMismatch) {
		t.Fatalf("err = %v, want ErrEndorseMismatch", err)
	}
}

func TestSubmitToleratesPartialEndorserFailure(t *testing.T) {
	rw := rwset.ReadWriteSet{Writes: []rwset.Write{{Key: "k", Value: []byte("v")}}}
	c := New(testSigner(t), "ch", []Endorser{
		&fakeEndorser{name: "p0", err: errors.New("down")},
		&fakeEndorser{name: "p1", resp: respWith(rw)},
	}, &fakeOrderer{})
	if _, err := c.Submit("cc"); err != nil {
		t.Fatalf("submit with one healthy endorser: %v", err)
	}
}

func TestSubmitAllEndorsersFail(t *testing.T) {
	c := New(testSigner(t), "ch", []Endorser{
		&fakeEndorser{name: "p0", err: errors.New("down")},
	}, &fakeOrderer{})
	if _, err := c.Submit("cc"); err == nil {
		t.Fatal("want error when all endorsers fail")
	}
}

func TestSubmitAndWaitRequiresListener(t *testing.T) {
	rw := rwset.ReadWriteSet{}
	c := New(testSigner(t), "ch", []Endorser{&fakeEndorser{name: "p", resp: respWith(rw)}}, &fakeOrderer{})
	if _, err := c.SubmitAndWait(time.Second, "cc"); !errors.Is(err, ErrListenerNotStarted) {
		t.Fatalf("err = %v, want ErrListenerNotStarted", err)
	}
}

func TestSubmitAndWaitTimeout(t *testing.T) {
	rw := rwset.ReadWriteSet{}
	events := make(chan peer.CommitEvent)
	c := New(testSigner(t), "ch", []Endorser{&fakeEndorser{name: "p", resp: respWith(rw)}}, &fakeOrderer{})
	c.StartCommitListener(events)
	_, err := c.SubmitAndWait(20*time.Millisecond, "cc")
	if !errors.Is(err, ErrCommitTimeout) {
		t.Fatalf("err = %v, want ErrCommitTimeout", err)
	}
	close(events)
	c.WaitListenerDone()
}

func TestSubmitAndWaitFailureCode(t *testing.T) {
	rw := rwset.ReadWriteSet{}
	ord := &fakeOrderer{}
	events := make(chan peer.CommitEvent, 1)
	c := New(testSigner(t), "ch", []Endorser{&fakeEndorser{name: "p", resp: respWith(rw)}}, ord)
	c.StartCommitListener(events)
	done := make(chan struct{})
	var (
		code ledger.ValidationCode
		err  error
	)
	go func() {
		defer close(done)
		code, err = c.SubmitAndWait(5*time.Second, "cc")
	}()
	// Wait for the broadcast, then emit a failure event for that tx.
	for {
		ord.mu.Lock()
		n := len(ord.txs)
		ord.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	events <- peer.CommitEvent{TxID: ord.txs[0].ID, Code: ledger.CodeMVCCConflict, BlockNum: 1}
	<-done
	if !errors.Is(err, ErrTxFailed) || code != ledger.CodeMVCCConflict {
		t.Fatalf("code = %v, err = %v", code, err)
	}
	close(events)
	c.WaitListenerDone()
}

func TestSubmitBroadcastError(t *testing.T) {
	rw := rwset.ReadWriteSet{}
	c := New(testSigner(t), "ch", []Endorser{&fakeEndorser{name: "p", resp: respWith(rw)}}, &fakeOrderer{err: errors.New("stopped")})
	if _, err := c.Submit("cc"); err == nil {
		t.Fatal("broadcast error swallowed")
	}
}

// TestDefaultChannelClientAdoptsResolvedChannel: a client constructed with
// an empty channel ID must assemble its transactions with the channel the
// endorsers resolved (ProposalResponse.ChannelID) — an empty ChannelID in
// the envelope is rejected at commit.
func TestDefaultChannelClientAdoptsResolvedChannel(t *testing.T) {
	ord := &fakeOrderer{}
	resp := respWith(rwset.ReadWriteSet{})
	resp.ChannelID = "channel1"
	c := New(testSigner(t), "", []Endorser{&fakeEndorser{name: "p0", resp: resp}}, ord)
	if _, err := c.Submit("cc", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := ord.txs[0].ChannelID; got != "channel1" {
		t.Fatalf("tx channel = %q, want resolved channel1", got)
	}
	// Endorsers resolving to different channels is a mismatch.
	resp2 := respWith(rwset.ReadWriteSet{})
	resp2.ChannelID = "channel2"
	c2 := New(testSigner(t), "", []Endorser{
		&fakeEndorser{name: "p0", resp: resp},
		&fakeEndorser{name: "p1", resp: resp2},
	}, ord)
	if _, err := c2.Submit("cc", []byte("x")); err == nil {
		t.Fatal("diverging resolved channels accepted")
	}
}
