package crdt

import (
	"encoding/json"
	"sort"

	"fabriccrdt/internal/lamport"
)

// Type names of the set datatypes.
const (
	TypeGSet  = "g-set"
	TypeORSet = "or-set"
)

// GSet is a grow-only set of strings.
type GSet struct {
	members map[string]struct{}
}

var _ CRDT = (*GSet)(nil)

// NewGSet returns an empty grow-only set.
func NewGSet() *GSet {
	return &GSet{members: make(map[string]struct{})}
}

// TypeName implements CRDT.
func (s *GSet) TypeName() string { return TypeGSet }

// Add inserts v.
func (s *GSet) Add(v string) { s.members[v] = struct{}{} }

// Contains reports membership of v.
func (s *GSet) Contains(v string) bool { _, ok := s.members[v]; return ok }

// Len returns the number of members.
func (s *GSet) Len() int { return len(s.members) }

// Value implements CRDT: the sorted member list.
func (s *GSet) Value() any { return s.Members() }

// Members returns the sorted member list.
func (s *GSet) Members() []string {
	out := make([]string, 0, len(s.members))
	//lint:sorted collected members are sorted below before anything observes them
	for m := range s.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Merge implements CRDT: set union.
func (s *GSet) Merge(other CRDT) error {
	o, err := checkType[*GSet](s, other)
	if err != nil {
		return err
	}
	//lint:sorted set union into a map is order-independent
	for m := range o.members {
		s.members[m] = struct{}{}
	}
	return nil
}

// StateJSON implements CRDT.
func (s *GSet) StateJSON() ([]byte, error) { return json.Marshal(s.Members()) }

// LoadStateJSON implements CRDT.
func (s *GSet) LoadStateJSON(data []byte) error {
	var members []string
	if err := json.Unmarshal(data, &members); err != nil {
		return err
	}
	s.members = make(map[string]struct{}, len(members))
	for _, m := range members {
		s.members[m] = struct{}{}
	}
	return nil
}

// ORSet is an observed-remove set: adds tag each element with a unique ID;
// removes delete exactly the tags observed, so a concurrent add wins over a
// remove (add-wins).
type ORSet struct {
	clock *lamport.Clock
	// adds maps element -> live tags; tombs holds removed tags.
	adds  map[string]map[string]struct{}
	tombs map[string]struct{}
}

var _ CRDT = (*ORSet)(nil)

// NewORSet returns an empty observed-remove set. Call Bind before local
// mutation to attach the replica identity used for tagging.
func NewORSet() *ORSet {
	return &ORSet{
		clock: lamport.NewClock("unbound"),
		adds:  make(map[string]map[string]struct{}),
		tombs: make(map[string]struct{}),
	}
}

// Bind sets the replica identity used to tag local adds.
func (s *ORSet) Bind(replica string) {
	c := lamport.NewClock(replica)
	c.Restore(s.clock.Counter())
	s.clock = c
}

// TypeName implements CRDT.
func (s *ORSet) TypeName() string { return TypeORSet }

// Add inserts v with a fresh tag.
func (s *ORSet) Add(v string) {
	tag := s.clock.Tick().String()
	if s.adds[v] == nil {
		s.adds[v] = make(map[string]struct{})
	}
	s.adds[v][tag] = struct{}{}
}

// Remove deletes every currently observed tag of v.
func (s *ORSet) Remove(v string) {
	//lint:sorted tombstone union is order-independent
	for tag := range s.adds[v] {
		s.tombs[tag] = struct{}{}
	}
}

// Contains reports whether v has at least one live tag.
func (s *ORSet) Contains(v string) bool {
	//lint:sorted pure any-live-tag query; no state written, result order-independent
	for tag := range s.adds[v] {
		if _, dead := s.tombs[tag]; !dead {
			return true
		}
	}
	return false
}

// Value implements CRDT: the sorted live member list.
func (s *ORSet) Value() any { return s.Members() }

// Members returns the sorted live member list.
func (s *ORSet) Members() []string {
	out := make([]string, 0, len(s.adds))
	//lint:sorted collected members are sorted below before anything observes them
	for v := range s.adds {
		if s.Contains(v) {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Merge implements CRDT: union of add-tags and tombstones.
func (s *ORSet) Merge(other CRDT) error {
	o, err := checkType[*ORSet](s, other)
	if err != nil {
		return err
	}
	//lint:sorted tag union into nested maps is order-independent
	for v, tags := range o.adds {
		if s.adds[v] == nil {
			s.adds[v] = make(map[string]struct{}, len(tags))
		}
		//lint:sorted tag union into a map is order-independent
		for tag := range tags {
			s.adds[v][tag] = struct{}{}
		}
	}
	//lint:sorted tombstone union is order-independent
	for tag := range o.tombs {
		s.tombs[tag] = struct{}{}
	}
	// Keep local tags unique after observing remote ones.
	s.witnessTags()
	return nil
}

// witnessTags advances the local clock beyond every known tag.
func (s *ORSet) witnessTags() {
	//lint:sorted Clock.Witness takes a running max; order-independent
	for _, tags := range s.adds {
		//lint:sorted Clock.Witness takes a running max; order-independent
		for tag := range tags {
			if id, err := lamport.Parse(tag); err == nil {
				s.clock.Witness(id)
			}
		}
	}
}

type orsetState struct {
	Counter uint64              `json:"counter"`
	Replica string              `json:"replica"`
	Adds    map[string][]string `json:"adds,omitempty"`
	Tombs   []string            `json:"tombs,omitempty"`
}

// StateJSON implements CRDT.
func (s *ORSet) StateJSON() ([]byte, error) {
	st := orsetState{
		Counter: s.clock.Counter(),
		Replica: s.clock.Replica(),
		Adds:    make(map[string][]string, len(s.adds)),
	}
	//lint:sorted encoding/json emits map keys sorted; per-element tag lists sorted below
	for v, tags := range s.adds {
		lst := make([]string, 0, len(tags))
		//lint:sorted collected tags are sorted below
		for tag := range tags {
			lst = append(lst, tag)
		}
		sort.Strings(lst)
		st.Adds[v] = lst
	}
	//lint:sorted collected tombstones are sorted below
	for tag := range s.tombs {
		st.Tombs = append(st.Tombs, tag)
	}
	sort.Strings(st.Tombs)
	return json.Marshal(st)
}

// LoadStateJSON implements CRDT.
func (s *ORSet) LoadStateJSON(data []byte) error {
	var st orsetState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	clock := lamport.NewClock(st.Replica)
	clock.Restore(st.Counter)
	s.clock = clock
	s.adds = make(map[string]map[string]struct{}, len(st.Adds))
	//lint:sorted rebuilding a map from a map; insertion order is invisible
	for v, tags := range st.Adds {
		m := make(map[string]struct{}, len(tags))
		for _, tag := range tags {
			m[tag] = struct{}{}
		}
		s.adds[v] = m
	}
	s.tombs = make(map[string]struct{}, len(st.Tombs))
	for _, tag := range st.Tombs {
		s.tombs[tag] = struct{}{}
	}
	return nil
}
