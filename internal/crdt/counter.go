package crdt

import (
	"encoding/json"
	"errors"
)

// Type names of the counter datatypes.
const (
	TypeGCounter  = "g-counter"
	TypePNCounter = "pn-counter"
)

// ErrNegativeIncrement reports a negative delta passed to a grow-only type.
var ErrNegativeIncrement = errors.New("crdt: grow-only counter cannot decrease")

// GCounter is a grow-only counter: each replica owns a monotonically
// increasing slot and the value is the sum over all slots (paper §2.2's
// introductory example).
type GCounter struct {
	counts map[string]uint64
}

var _ CRDT = (*GCounter)(nil)

// NewGCounter returns an empty grow-only counter.
func NewGCounter() *GCounter {
	return &GCounter{counts: make(map[string]uint64)}
}

// TypeName implements CRDT.
func (c *GCounter) TypeName() string { return TypeGCounter }

// Increment adds delta to the replica's slot. A zero delta is a no-op so
// that the state never carries empty slots (merge would not propagate them,
// breaking structural equality between converged replicas).
func (c *GCounter) Increment(replica string, delta uint64) {
	if delta == 0 {
		return
	}
	c.counts[replica] += delta
}

// Value implements CRDT: the sum of all replica slots, as uint64.
func (c *GCounter) Value() any { return c.Sum() }

// Sum returns the counter total.
func (c *GCounter) Sum() uint64 {
	var total uint64
	//lint:sorted uint64 addition is commutative; iteration order cannot change the sum
	for _, v := range c.counts {
		total += v
	}
	return total
}

// Merge implements CRDT: slot-wise maximum.
func (c *GCounter) Merge(other CRDT) error {
	o, err := checkType[*GCounter](c, other)
	if err != nil {
		return err
	}
	//lint:sorted slot-wise max is commutative; iteration order cannot change the merged state
	for r, v := range o.counts {
		if v > c.counts[r] {
			c.counts[r] = v
		}
	}
	return nil
}

// StateJSON implements CRDT.
func (c *GCounter) StateJSON() ([]byte, error) { return json.Marshal(c.counts) }

// LoadStateJSON implements CRDT.
func (c *GCounter) LoadStateJSON(data []byte) error {
	counts := make(map[string]uint64)
	if err := json.Unmarshal(data, &counts); err != nil {
		return err
	}
	c.counts = counts
	return nil
}

// PNCounter is a counter supporting increments and decrements, built from
// two G-Counters.
type PNCounter struct {
	pos *GCounter
	neg *GCounter
}

var _ CRDT = (*PNCounter)(nil)

// NewPNCounter returns an empty PN-Counter.
func NewPNCounter() *PNCounter {
	return &PNCounter{pos: NewGCounter(), neg: NewGCounter()}
}

// TypeName implements CRDT.
func (c *PNCounter) TypeName() string { return TypePNCounter }

// Increment adds delta (which may be negative) on behalf of replica.
func (c *PNCounter) Increment(replica string, delta int64) {
	if delta >= 0 {
		c.pos.Increment(replica, uint64(delta))
	} else {
		c.neg.Increment(replica, uint64(-delta))
	}
}

// Value implements CRDT: increments minus decrements, as int64.
func (c *PNCounter) Value() any { return c.Sum() }

// Sum returns the counter total.
func (c *PNCounter) Sum() int64 {
	return int64(c.pos.Sum()) - int64(c.neg.Sum())
}

// Merge implements CRDT.
func (c *PNCounter) Merge(other CRDT) error {
	o, err := checkType[*PNCounter](c, other)
	if err != nil {
		return err
	}
	if err := c.pos.Merge(o.pos); err != nil {
		return err
	}
	return c.neg.Merge(o.neg)
}

type pnState struct {
	Pos map[string]uint64 `json:"pos"`
	Neg map[string]uint64 `json:"neg"`
}

// StateJSON implements CRDT.
func (c *PNCounter) StateJSON() ([]byte, error) {
	return json.Marshal(pnState{Pos: c.pos.counts, Neg: c.neg.counts})
}

// LoadStateJSON implements CRDT.
func (c *PNCounter) LoadStateJSON(data []byte) error {
	var st pnState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	c.pos = &GCounter{counts: st.Pos}
	c.neg = &GCounter{counts: st.Neg}
	if c.pos.counts == nil {
		c.pos.counts = make(map[string]uint64)
	}
	if c.neg.counts == nil {
		c.neg.counts = make(map[string]uint64)
	}
	return nil
}
