// Package crdt implements classic state-based CRDTs — counters, sets,
// registers, maps and a graph — together with a type registry so that the
// FabricCRDT merge engine can resolve conflicts for datatypes beyond the
// JSON CRDT. The paper's conclusion names these as the planned extension
// ("we plan to extend FabricCRDT with more CRDTs, such as list, map, and
// graph CRDTs").
//
// All types satisfy Merge semantics: commutative, associative and idempotent
// joins, verified by property tests.
package crdt

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// CRDT is a state-based conflict-free replicated datatype.
type CRDT interface {
	// TypeName identifies the datatype in the registry and on the wire.
	TypeName() string
	// Merge joins other's state into the receiver. other must have the
	// same TypeName.
	Merge(other CRDT) error
	// Value returns the datatype's current plain value (the cleaned-up
	// representation committed to the world state).
	Value() any
	// StateJSON returns the full replicated state including metadata.
	StateJSON() ([]byte, error)
	// LoadStateJSON replaces the state with a previously serialized one.
	LoadStateJSON([]byte) error
}

// Registry errors.
var (
	ErrUnknownType  = errors.New("crdt: unknown datatype")
	ErrTypeMismatch = errors.New("crdt: merging different datatypes")
	ErrDuplicate    = errors.New("crdt: datatype already registered")
)

// Factory constructs an empty instance of a datatype.
type Factory func() CRDT

// Registry maps datatype names to factories. The zero value is ready to use.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns a registry preloaded with every datatype in this
// package (and the JSON CRDT handled separately by the merge engine).
func NewRegistry() *Registry {
	r := &Registry{}
	must := func(err error) {
		if err != nil {
			panic(err) // unreachable: static registrations cannot collide
		}
	}
	must(r.Register(TypeGCounter, func() CRDT { return NewGCounter() }))
	must(r.Register(TypePNCounter, func() CRDT { return NewPNCounter() }))
	must(r.Register(TypeGSet, func() CRDT { return NewGSet() }))
	must(r.Register(TypeORSet, func() CRDT { return NewORSet() }))
	must(r.Register(TypeLWWRegister, func() CRDT { return NewLWWRegister() }))
	must(r.Register(TypeLWWMap, func() CRDT { return NewLWWMap() }))
	must(r.Register(TypeGraph, func() CRDT { return NewGraph() }))
	return r
}

// Register adds a datatype factory under its name.
func (r *Registry) Register(name string, f Factory) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.factories == nil {
		r.factories = make(map[string]Factory)
	}
	if _, ok := r.factories[name]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	r.factories[name] = f
	return nil
}

// New instantiates an empty datatype by name.
func (r *Registry) New(name string) (CRDT, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownType, name)
	}
	return f(), nil
}

// Types returns the registered datatype names, sorted.
func (r *Registry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.factories))
	//lint:sorted collected names are sorted below before anything observes them
	for n := range r.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// envelope is the wire form of a CRDT state: type tag + payload.
type envelope struct {
	Type  string          `json:"type"`
	State json.RawMessage `json:"state"`
}

// Marshal serializes a CRDT with its type tag.
func Marshal(c CRDT) ([]byte, error) {
	state, err := c.StateJSON()
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{Type: c.TypeName(), State: state})
}

// Unmarshal reconstructs a CRDT from Marshal output using the registry.
func (r *Registry) Unmarshal(data []byte) (CRDT, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("crdt: decoding envelope: %w", err)
	}
	c, err := r.New(env.Type)
	if err != nil {
		return nil, err
	}
	if err := c.LoadStateJSON(env.State); err != nil {
		return nil, err
	}
	return c, nil
}

// checkType returns other as T when type names line up.
func checkType[T CRDT](self CRDT, other CRDT) (T, error) {
	var zero T
	t, ok := other.(T)
	if !ok || self.TypeName() != other.TypeName() {
		return zero, fmt.Errorf("%w: %s vs %s", ErrTypeMismatch, self.TypeName(), other.TypeName())
	}
	return t, nil
}
