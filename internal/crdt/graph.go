package crdt

import (
	"encoding/json"
	"sort"
)

// TypeGraph is the type name of the add-wins graph datatype.
const TypeGraph = "aw-graph"

// Graph is an add-wins directed graph built from two OR-Sets (vertices and
// edges). An edge is visible only while both endpoints are visible, which
// preserves the graph invariant under concurrent vertex removal.
type Graph struct {
	vertices *ORSet
	edges    *ORSet // encoded "src->dst"
}

var _ CRDT = (*Graph)(nil)

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{vertices: NewORSet(), edges: NewORSet()}
}

// Bind sets the replica identity used to tag local mutations.
func (g *Graph) Bind(replica string) {
	g.vertices.Bind(replica + "/v")
	g.edges.Bind(replica + "/e")
}

// TypeName implements CRDT.
func (g *Graph) TypeName() string { return TypeGraph }

// AddVertex inserts vertex v.
func (g *Graph) AddVertex(v string) { g.vertices.Add(v) }

// RemoveVertex removes vertex v (observed-remove semantics).
func (g *Graph) RemoveVertex(v string) { g.vertices.Remove(v) }

// AddEdge inserts the directed edge src→dst; both endpoints are added too,
// so the edge is never dangling.
func (g *Graph) AddEdge(src, dst string) {
	g.vertices.Add(src)
	g.vertices.Add(dst)
	g.edges.Add(edgeKey(src, dst))
}

// RemoveEdge removes the directed edge src→dst.
func (g *Graph) RemoveEdge(src, dst string) { g.edges.Remove(edgeKey(src, dst)) }

// HasVertex reports whether v is visible.
func (g *Graph) HasVertex(v string) bool { return g.vertices.Contains(v) }

// HasEdge reports whether src→dst is visible: the edge tag must be live and
// both endpoints visible.
func (g *Graph) HasEdge(src, dst string) bool {
	return g.edges.Contains(edgeKey(src, dst)) &&
		g.vertices.Contains(src) && g.vertices.Contains(dst)
}

// Edge is a visible directed edge.
type Edge struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
}

// Vertices returns the sorted visible vertices.
func (g *Graph) Vertices() []string { return g.vertices.Members() }

// Edges returns the visible edges sorted by (src, dst).
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, key := range g.edges.Members() {
		src, dst, ok := splitEdgeKey(key)
		if !ok {
			continue
		}
		if g.vertices.Contains(src) && g.vertices.Contains(dst) {
			out = append(out, Edge{Src: src, Dst: dst})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Value implements CRDT.
func (g *Graph) Value() any {
	return map[string]any{"vertices": g.Vertices(), "edges": g.Edges()}
}

// Merge implements CRDT.
func (g *Graph) Merge(other CRDT) error {
	o, err := checkType[*Graph](g, other)
	if err != nil {
		return err
	}
	if err := g.vertices.Merge(o.vertices); err != nil {
		return err
	}
	return g.edges.Merge(o.edges)
}

type graphState struct {
	Vertices json.RawMessage `json:"vertices"`
	Edges    json.RawMessage `json:"edges"`
}

// StateJSON implements CRDT.
func (g *Graph) StateJSON() ([]byte, error) {
	vs, err := g.vertices.StateJSON()
	if err != nil {
		return nil, err
	}
	es, err := g.edges.StateJSON()
	if err != nil {
		return nil, err
	}
	return json.Marshal(graphState{Vertices: vs, Edges: es})
}

// LoadStateJSON implements CRDT.
func (g *Graph) LoadStateJSON(data []byte) error {
	var st graphState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	vertices, edges := NewORSet(), NewORSet()
	if err := vertices.LoadStateJSON(st.Vertices); err != nil {
		return err
	}
	if err := edges.LoadStateJSON(st.Edges); err != nil {
		return err
	}
	g.vertices, g.edges = vertices, edges
	return nil
}

const edgeSep = "\x1f" // unit separator: cannot appear in vertex names

func edgeKey(src, dst string) string { return src + edgeSep + dst }

func splitEdgeKey(key string) (src, dst string, ok bool) {
	for i := 0; i+len(edgeSep) <= len(key); i++ {
		if key[i:i+len(edgeSep)] == edgeSep {
			return key[:i], key[i+len(edgeSep):], true
		}
	}
	return "", "", false
}
