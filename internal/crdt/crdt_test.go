package crdt

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGCounterBasics(t *testing.T) {
	c := NewGCounter()
	c.Increment("a", 3)
	c.Increment("b", 4)
	c.Increment("a", 1)
	if got := c.Sum(); got != 8 {
		t.Fatalf("Sum = %d, want 8", got)
	}
}

func TestGCounterMergeIsMax(t *testing.T) {
	a, b := NewGCounter(), NewGCounter()
	a.Increment("r1", 5)
	b.Increment("r1", 3)
	b.Increment("r2", 7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Sum(); got != 12 {
		t.Fatalf("Sum after merge = %d, want 12 (max(5,3)+7)", got)
	}
}

func TestPNCounter(t *testing.T) {
	c := NewPNCounter()
	c.Increment("a", 10)
	c.Increment("b", -4)
	if got := c.Sum(); got != 6 {
		t.Fatalf("Sum = %d, want 6", got)
	}
}

func TestGSetUnion(t *testing.T) {
	a, b := NewGSet(), NewGSet()
	a.Add("x")
	b.Add("y")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Members(), []string{"x", "y"}) {
		t.Fatalf("members = %v", a.Members())
	}
	if !a.Contains("x") || a.Contains("z") {
		t.Fatal("membership wrong")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestORSetAddWins(t *testing.T) {
	a, b := NewORSet(), NewORSet()
	a.Bind("a")
	b.Bind("b")
	a.Add("item")
	// Replicate a's add to b; b removes it; concurrently a re-adds.
	st, err := a.StateJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadStateJSON(st); err != nil {
		t.Fatal(err)
	}
	b.Bind("b")
	b.Remove("item")
	a.Add("item") // concurrent with the remove: new tag
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains("item") {
		t.Fatal("concurrent add must win over remove")
	}
}

func TestORSetRemoveObserved(t *testing.T) {
	s := NewORSet()
	s.Bind("r")
	s.Add("x")
	s.Remove("x")
	if s.Contains("x") {
		t.Fatal("observed remove must delete the element")
	}
	if got := s.Members(); len(got) != 0 {
		t.Fatalf("members = %v, want empty", got)
	}
}

func TestLWWRegister(t *testing.T) {
	a, b := NewLWWRegister(), NewLWWRegister()
	a.Bind("a")
	b.Bind("b")
	a.Set("first")
	b.Merge(a)
	b.Set("second") // later Lamport stamp
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if v, ok := a.Get(); !ok || v != "second" {
		t.Fatalf("Get = %q, %v; want second", v, ok)
	}
}

func TestLWWMapSetDeleteMerge(t *testing.T) {
	a, b := NewLWWMap(), NewLWWMap()
	a.Bind("a")
	b.Bind("b")
	a.Set("k", "v1")
	st, _ := a.StateJSON()
	if err := b.LoadStateJSON(st); err != nil {
		t.Fatal(err)
	}
	b.Bind("b")
	b.Delete("k") // later stamp: delete wins
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get("k"); ok {
		t.Fatal("later delete must win")
	}
	a.Set("k", "v2")
	if v, ok := a.Get("k"); !ok || v != "v2" {
		t.Fatalf("Get after re-set = %q, %v", v, ok)
	}
	if !reflect.DeepEqual(a.Keys(), []string{"k"}) {
		t.Fatalf("Keys = %v", a.Keys())
	}
}

func TestGraphEdgesRequireVertices(t *testing.T) {
	g := NewGraph()
	g.Bind("r")
	g.AddEdge("a", "b")
	if !g.HasEdge("a", "b") {
		t.Fatal("edge missing after AddEdge")
	}
	g.RemoveVertex("b")
	if g.HasEdge("a", "b") {
		t.Fatal("edge must hide when endpoint removed")
	}
	if g.HasVertex("b") {
		t.Fatal("vertex b must be removed")
	}
	if !g.HasVertex("a") {
		t.Fatal("vertex a must survive")
	}
}

func TestGraphMerge(t *testing.T) {
	a, b := NewGraph(), NewGraph()
	a.Bind("a")
	b.Bind("b")
	a.AddEdge("x", "y")
	b.AddEdge("y", "z")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Edges()) != 2 || len(a.Vertices()) != 3 {
		t.Fatalf("edges=%v vertices=%v", a.Edges(), a.Vertices())
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	r := NewRegistry()
	for _, name := range r.Types() {
		c, err := r.New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		data, err := Marshal(c)
		if err != nil {
			t.Fatalf("Marshal(%s): %v", name, err)
		}
		back, err := r.Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal(%s): %v", name, err)
		}
		if back.TypeName() != name {
			t.Fatalf("round trip type = %s, want %s", back.TypeName(), name)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.New("nope"); err == nil {
		t.Fatal("unknown type must error")
	}
	if err := r.Register(TypeGCounter, func() CRDT { return NewGCounter() }); err == nil {
		t.Fatal("duplicate registration must error")
	}
	if _, err := r.Unmarshal([]byte("{")); err == nil {
		t.Fatal("bad envelope must error")
	}
	if _, err := r.Unmarshal([]byte(`{"type":"nope","state":"{}"}`)); err == nil {
		t.Fatal("unknown envelope type must error")
	}
}

func TestMergeTypeMismatch(t *testing.T) {
	c := NewGCounter()
	if err := c.Merge(NewGSet()); err == nil {
		t.Fatal("cross-type merge must error")
	}
}

// buildGCounter derives a counter from a seed for property tests.
func buildGCounter(seed int64) *GCounter {
	rng := rand.New(rand.NewSource(seed))
	c := NewGCounter()
	for i := 0; i < rng.Intn(8); i++ {
		c.Increment("r"+string(rune('0'+rng.Intn(4))), uint64(rng.Intn(100)))
	}
	return c
}

func buildORSet(seed int64, replica string) *ORSet {
	rng := rand.New(rand.NewSource(seed))
	s := NewORSet()
	s.Bind(replica)
	for i := 0; i < rng.Intn(10); i++ {
		v := "v" + string(rune('a'+rng.Intn(6)))
		if rng.Intn(3) == 0 {
			s.Remove(v)
		} else {
			s.Add(v)
		}
	}
	return s
}

func cloneViaState(t *testing.T, c CRDT, fresh CRDT) CRDT {
	t.Helper()
	st, err := c.StateJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadStateJSON(st); err != nil {
		t.Fatal(err)
	}
	return fresh
}

// Property: G-Counter merge is commutative, associative, idempotent.
func TestGCounterMergeProperties(t *testing.T) {
	f := func(s1, s2, s3 int64) bool {
		// Commutativity: a⊔b == b⊔a.
		a1 := buildGCounter(s1)
		b1 := buildGCounter(s2)
		if err := a1.Merge(b1); err != nil {
			return false
		}
		a2 := buildGCounter(s2)
		b2 := buildGCounter(s1)
		if err := a2.Merge(b2); err != nil {
			return false
		}
		if !reflect.DeepEqual(a1.counts, a2.counts) {
			return false
		}
		// Idempotence: a⊔a == a.
		c := buildGCounter(s1)
		cc := buildGCounter(s1)
		if err := c.Merge(cc); err != nil {
			return false
		}
		if !reflect.DeepEqual(c.counts, buildGCounter(s1).counts) {
			return false
		}
		// Associativity: (a⊔b)⊔c == a⊔(b⊔c).
		x := buildGCounter(s1)
		_ = x.Merge(buildGCounter(s2))
		_ = x.Merge(buildGCounter(s3))
		y := buildGCounter(s2)
		_ = y.Merge(buildGCounter(s3))
		z := buildGCounter(s1)
		_ = z.Merge(y)
		return reflect.DeepEqual(x.counts, z.counts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: OR-Set merge is commutative and idempotent on visible members.
func TestORSetMergeProperties(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a1 := buildORSet(s1, "a")
		b1 := buildORSet(s2, "b")
		if err := a1.Merge(b1); err != nil {
			return false
		}
		a2 := buildORSet(s2, "b")
		b2 := buildORSet(s1, "a")
		if err := a2.Merge(b2); err != nil {
			return false
		}
		if !reflect.DeepEqual(a1.Members(), a2.Members()) {
			return false
		}
		// Idempotence.
		c := buildORSet(s1, "a")
		before := c.Members()
		cc := buildORSet(s1, "a")
		if err := c.Merge(cc); err != nil {
			return false
		}
		return reflect.DeepEqual(before, c.Members())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: state round trip preserves value for every registered type.
func TestStateRoundTripProperty(t *testing.T) {
	r := NewRegistry()
	f := func(seed int64) bool {
		c := buildORSet(seed, "r")
		data, err := Marshal(c)
		if err != nil {
			return false
		}
		back, err := r.Unmarshal(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(c.Members(), back.(*ORSet).Members())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitEdgeKey(t *testing.T) {
	src, dst, ok := splitEdgeKey(edgeKey("a", "b"))
	if !ok || src != "a" || dst != "b" {
		t.Fatalf("splitEdgeKey = %q, %q, %v", src, dst, ok)
	}
	if _, _, ok := splitEdgeKey("no-separator"); ok {
		t.Fatal("malformed key must not split")
	}
}

func BenchmarkORSetAdd(b *testing.B) {
	s := NewORSet()
	s.Bind("r")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add("member")
	}
}

func BenchmarkGCounterMerge(b *testing.B) {
	a := buildGCounter(1)
	c := buildGCounter(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := a.Merge(c); err != nil {
			b.Fatal(err)
		}
	}
}
