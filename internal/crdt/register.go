package crdt

import (
	"encoding/json"
	"sort"

	"fabriccrdt/internal/lamport"
)

// Type names of the register datatypes.
const (
	TypeLWWRegister = "lww-register"
	TypeLWWMap      = "lww-map"
)

// LWWRegister is a last-writer-wins register ordered by Lamport timestamp.
type LWWRegister struct {
	clock *lamport.Clock
	stamp lamport.ID
	value string
}

var _ CRDT = (*LWWRegister)(nil)

// NewLWWRegister returns an empty register.
func NewLWWRegister() *LWWRegister {
	return &LWWRegister{clock: lamport.NewClock("unbound")}
}

// Bind sets the replica identity used to stamp local writes.
func (r *LWWRegister) Bind(replica string) {
	c := lamport.NewClock(replica)
	c.Restore(r.clock.Counter())
	r.clock = c
}

// TypeName implements CRDT.
func (r *LWWRegister) TypeName() string { return TypeLWWRegister }

// Set writes v with a fresh timestamp.
func (r *LWWRegister) Set(v string) {
	r.stamp = r.clock.Tick()
	r.value = v
}

// Get returns the current value and whether the register was ever written.
func (r *LWWRegister) Get() (string, bool) { return r.value, !r.stamp.IsZero() }

// Value implements CRDT.
func (r *LWWRegister) Value() any { return r.value }

// Merge implements CRDT: the greater timestamp wins.
func (r *LWWRegister) Merge(other CRDT) error {
	o, err := checkType[*LWWRegister](r, other)
	if err != nil {
		return err
	}
	if r.stamp.Less(o.stamp) {
		r.stamp, r.value = o.stamp, o.value
	}
	r.clock.Witness(o.stamp)
	return nil
}

type lwwRegState struct {
	Counter uint64     `json:"counter"`
	Replica string     `json:"replica"`
	Stamp   lamport.ID `json:"stamp"`
	Value   string     `json:"value"`
}

// StateJSON implements CRDT.
func (r *LWWRegister) StateJSON() ([]byte, error) {
	return json.Marshal(lwwRegState{
		Counter: r.clock.Counter(),
		Replica: r.clock.Replica(),
		Stamp:   r.stamp,
		Value:   r.value,
	})
}

// LoadStateJSON implements CRDT.
func (r *LWWRegister) LoadStateJSON(data []byte) error {
	var st lwwRegState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	clock := lamport.NewClock(st.Replica)
	clock.Restore(st.Counter)
	r.clock = clock
	r.stamp = st.Stamp
	r.value = st.Value
	return nil
}

// LWWMap is a map of string keys to last-writer-wins values with
// last-writer-wins deletion.
type LWWMap struct {
	clock   *lamport.Clock
	entries map[string]lwwEntry
}

type lwwEntry struct {
	Stamp   lamport.ID `json:"stamp"`
	Value   string     `json:"value"`
	Deleted bool       `json:"deleted,omitempty"`
}

var _ CRDT = (*LWWMap)(nil)

// NewLWWMap returns an empty map.
func NewLWWMap() *LWWMap {
	return &LWWMap{
		clock:   lamport.NewClock("unbound"),
		entries: make(map[string]lwwEntry),
	}
}

// Bind sets the replica identity used to stamp local writes.
func (m *LWWMap) Bind(replica string) {
	c := lamport.NewClock(replica)
	c.Restore(m.clock.Counter())
	m.clock = c
}

// TypeName implements CRDT.
func (m *LWWMap) TypeName() string { return TypeLWWMap }

// Set writes key=value with a fresh timestamp.
func (m *LWWMap) Set(key, value string) {
	m.entries[key] = lwwEntry{Stamp: m.clock.Tick(), Value: value}
}

// Delete tombstones key with a fresh timestamp.
func (m *LWWMap) Delete(key string) {
	m.entries[key] = lwwEntry{Stamp: m.clock.Tick(), Deleted: true}
}

// Get returns the live value of key.
func (m *LWWMap) Get(key string) (string, bool) {
	e, ok := m.entries[key]
	if !ok || e.Deleted {
		return "", false
	}
	return e.Value, true
}

// Value implements CRDT: a plain map of the live entries.
func (m *LWWMap) Value() any {
	out := make(map[string]string)
	//lint:sorted map-to-map projection; insertion order is invisible
	for k, e := range m.entries {
		if !e.Deleted {
			out[k] = e.Value
		}
	}
	return out
}

// Keys returns the sorted live keys.
func (m *LWWMap) Keys() []string {
	out := make([]string, 0, len(m.entries))
	//lint:sorted collected keys are sorted below before anything observes them
	for k, e := range m.entries {
		if !e.Deleted {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Merge implements CRDT: per-key greater timestamp wins.
func (m *LWWMap) Merge(other CRDT) error {
	o, err := checkType[*LWWMap](m, other)
	if err != nil {
		return err
	}
	//lint:sorted per-key LWW merge is commutative; Witness takes a running max
	for k, oe := range o.entries {
		cur, ok := m.entries[k]
		if !ok || cur.Stamp.Less(oe.Stamp) {
			m.entries[k] = oe
		}
		m.clock.Witness(oe.Stamp)
	}
	return nil
}

type lwwMapState struct {
	Counter uint64              `json:"counter"`
	Replica string              `json:"replica"`
	Entries map[string]lwwEntry `json:"entries,omitempty"`
}

// StateJSON implements CRDT.
func (m *LWWMap) StateJSON() ([]byte, error) {
	return json.Marshal(lwwMapState{
		Counter: m.clock.Counter(),
		Replica: m.clock.Replica(),
		Entries: m.entries,
	})
}

// LoadStateJSON implements CRDT.
func (m *LWWMap) LoadStateJSON(data []byte) error {
	var st lwwMapState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	clock := lamport.NewClock(st.Replica)
	clock.Restore(st.Counter)
	m.clock = clock
	m.entries = st.Entries
	if m.entries == nil {
		m.entries = make(map[string]lwwEntry)
	}
	return nil
}
