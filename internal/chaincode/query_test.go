package chaincode

import (
	"reflect"
	"testing"

	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

func TestCompositeKeyRoundTrip(t *testing.T) {
	key, err := CreateCompositeKey("reading", []string{"dev1", "2024-01"})
	if err != nil {
		t.Fatal(err)
	}
	objectType, attrs, err := SplitCompositeKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if objectType != "reading" || !reflect.DeepEqual(attrs, []string{"dev1", "2024-01"}) {
		t.Fatalf("split = %q, %v", objectType, attrs)
	}
}

func TestCompositeKeyNoAttributes(t *testing.T) {
	key, err := CreateCompositeKey("marker", nil)
	if err != nil {
		t.Fatal(err)
	}
	objectType, attrs, err := SplitCompositeKey(key)
	if err != nil || objectType != "marker" || len(attrs) != 0 {
		t.Fatalf("split = %q, %v, %v", objectType, attrs, err)
	}
}

func TestCompositeKeyErrors(t *testing.T) {
	if _, err := CreateCompositeKey("", nil); err == nil {
		t.Error("empty object type accepted")
	}
	if _, err := CreateCompositeKey("t", []string{"has\x00sep"}); err == nil {
		t.Error("separator in attribute accepted")
	}
	if _, _, err := SplitCompositeKey("plain-key"); err == nil {
		t.Error("non-composite key split")
	}
	if _, _, err := SplitCompositeKey("\x00unterminated"); err == nil {
		t.Error("unterminated composite key split")
	}
}

func TestGetByPartialCompositeKey(t *testing.T) {
	db := statedb.New()
	batch := statedb.NewUpdateBatch()
	put := func(objectType string, attrs []string, value string) {
		key, err := CreateCompositeKey(objectType, attrs)
		if err != nil {
			t.Fatal(err)
		}
		batch.Put(key, []byte(value), rwset.Version{BlockNum: 1})
	}
	put("reading", []string{"dev1", "a"}, "r1")
	put("reading", []string{"dev1", "b"}, "r2")
	put("reading", []string{"dev2", "a"}, "r3")
	put("shipment", []string{"dev1"}, "s1")
	batch.Put("plain", []byte("p"), rwset.Version{BlockNum: 1})
	db.Apply(batch, rwset.Version{BlockNum: 1})

	stub := NewSimStub("tx", nil, db)
	kvs, err := stub.GetByPartialCompositeKey("reading", []string{"dev1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 {
		t.Fatalf("matches = %d, want 2: %v", len(kvs), kvs)
	}
	all, err := stub.GetByPartialCompositeKey("reading", nil)
	if err != nil || len(all) != 3 {
		t.Fatalf("all readings = %d, %v", len(all), err)
	}
	if _, err := stub.GetByPartialCompositeKey("", nil); err == nil {
		t.Fatal("empty object type accepted")
	}
}

func TestGetQueryResult(t *testing.T) {
	db := statedb.New()
	batch := statedb.NewUpdateBatch()
	batch.Put("d1", []byte(`{"deviceID":"x","zone":"a","n":1}`), rwset.Version{BlockNum: 1})
	batch.Put("d2", []byte(`{"deviceID":"y","zone":"a"}`), rwset.Version{BlockNum: 1})
	batch.Put("d3", []byte(`{"deviceID":"x","zone":"b"}`), rwset.Version{BlockNum: 1})
	batch.Put("raw", []byte("not json"), rwset.Version{BlockNum: 1})
	db.Apply(batch, rwset.Version{BlockNum: 1})
	stub := NewSimStub("tx", nil, db)

	kvs, err := stub.GetQueryResult(`{"selector":{"deviceID":"x"}}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Key != "d1" || kvs[1].Key != "d3" {
		t.Fatalf("matches = %v", kvs)
	}
	kvs, err = stub.GetQueryResult(`{"selector":{"deviceID":"x","zone":"a"}}`)
	if err != nil || len(kvs) != 1 || kvs[0].Key != "d1" {
		t.Fatalf("conjunction matches = %v, %v", kvs, err)
	}
	kvs, err = stub.GetQueryResult(`{"selector":{"n":1}}`)
	if err != nil || len(kvs) != 1 {
		t.Fatalf("numeric match = %v, %v", kvs, err)
	}
	if _, err := stub.GetQueryResult(`{"selector":{}}`); err == nil {
		t.Fatal("empty selector accepted")
	}
	if _, err := stub.GetQueryResult(`{bad`); err == nil {
		t.Fatal("bad selector JSON accepted")
	}
}

func TestGetQueryResultNestedMatch(t *testing.T) {
	db := statedb.New()
	batch := statedb.NewUpdateBatch()
	batch.Put("k1", []byte(`{"meta":{"org":"Org1","tier":"gold"},"tags":["a","b"]}`), rwset.Version{BlockNum: 1})
	batch.Put("k2", []byte(`{"meta":{"org":"Org2","tier":"gold"}}`), rwset.Version{BlockNum: 1})
	db.Apply(batch, rwset.Version{BlockNum: 1})
	stub := NewSimStub("tx", nil, db)

	kvs, err := stub.GetQueryResult(`{"selector":{"meta":{"org":"Org1","tier":"gold"}}}`)
	if err != nil || len(kvs) != 1 || kvs[0].Key != "k1" {
		t.Fatalf("nested match = %v, %v", kvs, err)
	}
	kvs, err = stub.GetQueryResult(`{"selector":{"tags":["a","b"]}}`)
	if err != nil || len(kvs) != 1 {
		t.Fatalf("array match = %v, %v", kvs, err)
	}
	kvs, err = stub.GetQueryResult(`{"selector":{"tags":["b","a"]}}`)
	if err != nil || len(kvs) != 0 {
		t.Fatalf("array order must matter: %v, %v", kvs, err)
	}
}
