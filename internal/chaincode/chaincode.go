// Package chaincode implements the chaincode programming model and shim:
// the interface smart contracts implement, and the stub through which they
// read and write ledger state during proposal simulation (paper §2.1).
//
// FabricCRDT's single shim extension is PutCRDT (paper §5.2): "for
// submitting the key-value pairs to the ledger, the developer should use the
// CRDT-specific putCRDT command … this command only informs the peer that
// this value is a CRDT and does not interact with the CRDT in any way."
package chaincode

import (
	"errors"
	"fmt"

	"fabriccrdt/internal/crdt"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// Chaincode is a smart contract. Invoke runs during the endorsement phase
// against a read-only view of the world state; its writes are collected into
// the proposal's write set. A returned error fails the proposal.
type Chaincode interface {
	Invoke(stub Stub) error
}

// Func adapts a function to the Chaincode interface.
type Func func(stub Stub) error

// Invoke implements Chaincode.
func (f Func) Invoke(stub Stub) error { return f(stub) }

// KV is a key/value pair returned by range queries.
type KV struct {
	Key   string
	Value []byte
}

// Stub is the shim API available to a chaincode during simulation.
type Stub interface {
	// TxID returns the transaction ID of the proposal being simulated.
	TxID() string
	// Args returns the invocation arguments.
	Args() [][]byte
	// Function splits Args into a function name and string parameters.
	Function() (string, []string)
	// GetState reads a key, recording it (with its committed version) in
	// the read set. Reads observe the transaction's own pending writes.
	GetState(key string) ([]byte, error)
	// PutState stages a standard write.
	PutState(key string, value []byte) error
	// PutCRDT stages a CRDT-flagged write: the value must be a JSON object
	// (a delta document) that the committer will merge via the JSON CRDT.
	PutCRDT(key string, value []byte) error
	// PutTypedCRDT stages a classic-CRDT write (counter, set, register,
	// graph — the paper's future-work datatypes): the committer joins the
	// submitted state into the key's accumulated state. State-based CRDT
	// contract: concurrent contributions must use distinct replica slots
	// or tags (bind the datatype to the transaction ID for one-shot
	// deltas).
	PutTypedCRDT(key string, c crdt.CRDT) error
	// DelState stages a deletion.
	DelState(key string) error
	// GetRange returns committed keys in [start, end) without recording
	// reads (phantom protection is out of scope, as in Fabric v1.4's
	// default validation).
	GetRange(start, end string) ([]KV, error)
}

// Simulation errors.
var (
	ErrEmptyKey = errors.New("chaincode: empty key")
	ErrNilStub  = errors.New("chaincode: nil stub")
)

// SimStub is the concrete Stub used during endorsement: it reads the peer's
// committed world state and accumulates the read/write set.
type SimStub struct {
	txID    string
	args    [][]byte
	db      *statedb.DB
	builder *rwset.Builder
}

var _ Stub = (*SimStub)(nil)

// NewSimStub returns a stub simulating a proposal with the given arguments
// against db.
func NewSimStub(txID string, args [][]byte, db *statedb.DB) *SimStub {
	return &SimStub{
		txID:    txID,
		args:    args,
		db:      db,
		builder: rwset.NewBuilder(),
	}
}

// TxID implements Stub.
func (s *SimStub) TxID() string { return s.txID }

// Args implements Stub.
func (s *SimStub) Args() [][]byte { return s.args }

// Function implements Stub.
func (s *SimStub) Function() (string, []string) {
	if len(s.args) == 0 {
		return "", nil
	}
	params := make([]string, len(s.args)-1)
	for i, a := range s.args[1:] {
		params[i] = string(a)
	}
	return string(s.args[0]), params
}

// GetState implements Stub. A missing key returns (nil, nil) and records a
// read at the zero version, exactly what MVCC validation later compares.
func (s *SimStub) GetState(key string) ([]byte, error) {
	if key == "" {
		return nil, ErrEmptyKey
	}
	// Read-your-own-writes within the simulation.
	if w, ok := s.builder.PendingWrite(key); ok {
		if w.IsDelete {
			return nil, nil
		}
		return w.Value, nil
	}
	vv, ok := s.db.Get(key)
	if !ok {
		s.builder.AddRead(key, rwset.Version{})
		return nil, nil
	}
	s.builder.AddRead(key, vv.Version)
	return vv.Value, nil
}

// PutState implements Stub.
func (s *SimStub) PutState(key string, value []byte) error {
	if key == "" {
		return ErrEmptyKey
	}
	s.builder.AddWrite(rwset.Write{Key: key, Value: value})
	return nil
}

// PutCRDT implements Stub.
func (s *SimStub) PutCRDT(key string, value []byte) error {
	if key == "" {
		return ErrEmptyKey
	}
	s.builder.AddWrite(rwset.Write{Key: key, Value: value, IsCRDT: true})
	return nil
}

// PutTypedCRDT implements Stub.
func (s *SimStub) PutTypedCRDT(key string, c crdt.CRDT) error {
	if key == "" {
		return ErrEmptyKey
	}
	state, err := c.StateJSON()
	if err != nil {
		return fmt.Errorf("chaincode: serializing %s state: %w", c.TypeName(), err)
	}
	s.builder.AddWrite(rwset.Write{Key: key, Value: state, IsCRDT: true, CRDTType: c.TypeName()})
	return nil
}

// DelState implements Stub.
func (s *SimStub) DelState(key string) error {
	if key == "" {
		return ErrEmptyKey
	}
	s.builder.AddWrite(rwset.Write{Key: key, IsDelete: true})
	return nil
}

// GetRange implements Stub.
func (s *SimStub) GetRange(start, end string) ([]KV, error) {
	kvs := s.db.GetRange(start, end)
	out := make([]KV, len(kvs))
	for i, kv := range kvs {
		out[i] = KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

// Result returns the accumulated read/write set.
func (s *SimStub) Result() rwset.ReadWriteSet { return s.builder.Build() }

// Registry maps installed chaincode names to implementations. The zero
// value is ready to use.
type Registry struct {
	chaincodes map[string]Chaincode
}

// NewRegistry returns an empty chaincode registry.
func NewRegistry() *Registry {
	return &Registry{chaincodes: make(map[string]Chaincode)}
}

// Install registers a chaincode under name, replacing any previous version
// (Fabric chaincode upgrade).
func (r *Registry) Install(name string, cc Chaincode) {
	if r.chaincodes == nil {
		r.chaincodes = make(map[string]Chaincode)
	}
	r.chaincodes[name] = cc
}

// Get returns the chaincode registered under name.
func (r *Registry) Get(name string) (Chaincode, error) {
	cc, ok := r.chaincodes[name]
	if !ok {
		return nil, fmt.Errorf("chaincode: %q not installed", name)
	}
	return cc, nil
}
