package chaincode

import (
	"bytes"
	"testing"

	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

func seededDB() *statedb.DB {
	db := statedb.New()
	b := statedb.NewUpdateBatch()
	b.Put("existing", []byte("committed"), rwset.Version{BlockNum: 4, TxNum: 2})
	db.Apply(b, rwset.Version{BlockNum: 4})
	return db
}

func TestGetStateRecordsRead(t *testing.T) {
	stub := NewSimStub("tx1", nil, seededDB())
	v, err := stub.GetState("existing")
	if err != nil || string(v) != "committed" {
		t.Fatalf("GetState = %q, %v", v, err)
	}
	rw := stub.Result()
	if len(rw.Reads) != 1 || rw.Reads[0].Version != (rwset.Version{BlockNum: 4, TxNum: 2}) {
		t.Fatalf("reads = %+v", rw.Reads)
	}
}

func TestGetStateMissingKeyRecordsZeroVersion(t *testing.T) {
	stub := NewSimStub("tx1", nil, seededDB())
	v, err := stub.GetState("missing")
	if err != nil || v != nil {
		t.Fatalf("GetState(missing) = %q, %v", v, err)
	}
	rw := stub.Result()
	if len(rw.Reads) != 1 || !rw.Reads[0].Version.IsZero() {
		t.Fatalf("reads = %+v, want zero version", rw.Reads)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	stub := NewSimStub("tx1", nil, seededDB())
	if err := stub.PutState("k", []byte("pending")); err != nil {
		t.Fatal(err)
	}
	v, err := stub.GetState("k")
	if err != nil || string(v) != "pending" {
		t.Fatalf("GetState after PutState = %q, %v", v, err)
	}
	// The read of a self-written key must NOT appear in the read set.
	rw := stub.Result()
	if len(rw.Reads) != 0 {
		t.Fatalf("reads = %+v, want none", rw.Reads)
	}
}

func TestReadAfterOwnDelete(t *testing.T) {
	stub := NewSimStub("tx1", nil, seededDB())
	if err := stub.DelState("existing"); err != nil {
		t.Fatal(err)
	}
	v, err := stub.GetState("existing")
	if err != nil || v != nil {
		t.Fatalf("GetState after DelState = %q, %v", v, err)
	}
}

func TestPutCRDTFlagsWrite(t *testing.T) {
	stub := NewSimStub("tx1", nil, seededDB())
	if err := stub.PutCRDT("doc", []byte(`{"a":[1]}`)); err != nil {
		t.Fatal(err)
	}
	if err := stub.PutState("plain", []byte("v")); err != nil {
		t.Fatal(err)
	}
	rw := stub.Result()
	if len(rw.Writes) != 2 {
		t.Fatalf("writes = %+v", rw.Writes)
	}
	if !rw.Writes[0].IsCRDT || rw.Writes[0].Key != "doc" {
		t.Fatalf("CRDT write = %+v", rw.Writes[0])
	}
	if rw.Writes[1].IsCRDT {
		t.Fatalf("plain write flagged CRDT: %+v", rw.Writes[1])
	}
	if !rw.HasCRDTWrites() {
		t.Fatal("HasCRDTWrites = false")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	stub := NewSimStub("tx1", nil, seededDB())
	if _, err := stub.GetState(""); err == nil {
		t.Error("GetState empty key accepted")
	}
	if err := stub.PutState("", nil); err == nil {
		t.Error("PutState empty key accepted")
	}
	if err := stub.PutCRDT("", nil); err == nil {
		t.Error("PutCRDT empty key accepted")
	}
	if err := stub.DelState(""); err == nil {
		t.Error("DelState empty key accepted")
	}
}

func TestFunctionSplitsArgs(t *testing.T) {
	stub := NewSimStub("tx1", [][]byte{[]byte("record"), []byte("dev-1"), []byte("21")}, seededDB())
	fn, params := stub.Function()
	if fn != "record" || len(params) != 2 || params[0] != "dev-1" || params[1] != "21" {
		t.Fatalf("Function = %q, %v", fn, params)
	}
	if stub.TxID() != "tx1" {
		t.Fatalf("TxID = %q", stub.TxID())
	}
	if len(stub.Args()) != 3 {
		t.Fatalf("Args = %v", stub.Args())
	}
}

func TestFunctionEmptyArgs(t *testing.T) {
	stub := NewSimStub("tx1", nil, seededDB())
	fn, params := stub.Function()
	if fn != "" || params != nil {
		t.Fatalf("Function on empty args = %q, %v", fn, params)
	}
}

func TestGetRange(t *testing.T) {
	db := statedb.New()
	b := statedb.NewUpdateBatch()
	for _, k := range []string{"dev1", "dev2", "dev3"} {
		b.Put(k, []byte(k), rwset.Version{BlockNum: 1})
	}
	db.Apply(b, rwset.Version{BlockNum: 1})
	stub := NewSimStub("tx1", nil, db)
	kvs, err := stub.GetRange("dev1", "dev3")
	if err != nil || len(kvs) != 2 {
		t.Fatalf("GetRange = %v, %v", kvs, err)
	}
	if kvs[0].Key != "dev1" || !bytes.Equal(kvs[1].Value, []byte("dev2")) {
		t.Fatalf("GetRange contents = %v", kvs)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	invoked := false
	r.Install("cc1", Func(func(stub Stub) error {
		invoked = true
		return nil
	}))
	cc, err := r.Get("cc1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Invoke(NewSimStub("t", nil, statedb.New())); err != nil {
		t.Fatal(err)
	}
	if !invoked {
		t.Fatal("chaincode not invoked")
	}
	if _, err := r.Get("nope"); err == nil {
		t.Fatal("missing chaincode must error")
	}
}
