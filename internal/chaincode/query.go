package chaincode

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Composite keys and rich queries complete the Fabric v1.4 shim surface:
// chaincodes index objects under structured keys and query JSON documents
// with CouchDB-style selectors.

// compositeKeyNamespace prefixes composite keys so they sort apart from
// simple keys, as in Fabric.
const compositeKeyNamespace = "\x00"

// minUnicodeRune is the separator terminating each composite key attribute.
const compositeKeySep = "\x00"

// ErrBadCompositeKey reports malformed composite key input.
var ErrBadCompositeKey = errors.New("chaincode: malformed composite key")

// CreateCompositeKey builds a composite key from an object type and
// attributes, e.g. ("reading", ["dev1", "2024"]). Attributes must not
// contain the U+0000 separator.
func CreateCompositeKey(objectType string, attributes []string) (string, error) {
	if objectType == "" {
		return "", fmt.Errorf("%w: empty object type", ErrBadCompositeKey)
	}
	parts := append([]string{objectType}, attributes...)
	for _, p := range parts {
		if strings.Contains(p, compositeKeySep) {
			return "", fmt.Errorf("%w: component %q contains U+0000", ErrBadCompositeKey, p)
		}
	}
	var b strings.Builder
	b.WriteString(compositeKeyNamespace)
	for _, p := range parts {
		b.WriteString(p)
		b.WriteString(compositeKeySep)
	}
	return b.String(), nil
}

// SplitCompositeKey decomposes a composite key into its object type and
// attributes.
func SplitCompositeKey(key string) (string, []string, error) {
	if !strings.HasPrefix(key, compositeKeyNamespace) {
		return "", nil, fmt.Errorf("%w: missing namespace prefix", ErrBadCompositeKey)
	}
	trimmed := strings.TrimPrefix(key, compositeKeyNamespace)
	parts := strings.Split(trimmed, compositeKeySep)
	if len(parts) < 2 || parts[len(parts)-1] != "" {
		return "", nil, fmt.Errorf("%w: %q", ErrBadCompositeKey, key)
	}
	parts = parts[:len(parts)-1]
	return parts[0], parts[1:], nil
}

// GetByPartialCompositeKey returns all committed keys matching the object
// type and attribute prefix, in sorted order. Like GetRange, results are
// not recorded in the read set (Fabric v1.4 does not phantom-protect range
// reads under standard validation).
func (s *SimStub) GetByPartialCompositeKey(objectType string, attributes []string) ([]KV, error) {
	prefix, err := CreateCompositeKey(objectType, attributes)
	if err != nil {
		return nil, err
	}
	// The prefix ends with the separator, so [prefix, prefix+0xFF) covers
	// exactly the keys extending it.
	return s.GetRange(prefix, prefix+"\xff")
}

// Selector is a CouchDB-style equality selector over JSON values: every
// field listed must equal the given value. It stands in for the subset of
// Mango queries chaincodes typically use against CouchDB world state.
type Selector struct {
	Selector map[string]any `json:"selector"`
}

// ErrBadSelector reports an unusable query selector.
var ErrBadSelector = errors.New("chaincode: malformed query selector")

// GetQueryResult runs a rich query over the committed world state: it
// returns every key whose value is a JSON object matching the selector.
// Results are not recorded in the read set (as in Fabric, rich queries are
// not integrity-protected by MVCC validation).
func (s *SimStub) GetQueryResult(selectorJSON string) ([]KV, error) {
	var sel Selector
	if err := json.Unmarshal([]byte(selectorJSON), &sel); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSelector, err)
	}
	if len(sel.Selector) == 0 {
		return nil, fmt.Errorf("%w: empty selector", ErrBadSelector)
	}
	all, err := s.GetRange("", "")
	if err != nil {
		return nil, err
	}
	var out []KV
	for _, kv := range all {
		var doc map[string]any
		if err := json.Unmarshal(kv.Value, &doc); err != nil {
			continue // non-JSON value: cannot match
		}
		if matchSelector(doc, sel.Selector) {
			out = append(out, kv)
		}
	}
	return out, nil
}

// matchSelector reports whether doc satisfies every selector field.
// Values compare by JSON equality; nested objects in the selector must
// match recursively.
func matchSelector(doc, selector map[string]any) bool {
	for field, want := range selector {
		got, ok := doc[field]
		if !ok {
			return false
		}
		if !jsonEqual(got, want) {
			return false
		}
	}
	return true
}

func jsonEqual(a, b any) bool {
	switch ta := a.(type) {
	case map[string]any:
		tb, ok := b.(map[string]any)
		if !ok || len(ta) != len(tb) {
			return false
		}
		for k, va := range ta {
			vb, ok := tb[k]
			if !ok || !jsonEqual(va, vb) {
				return false
			}
		}
		return true
	case []any:
		tb, ok := b.([]any)
		if !ok || len(ta) != len(tb) {
			return false
		}
		for i := range ta {
			if !jsonEqual(ta[i], tb[i]) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}
