package core

import (
	"fmt"
	"reflect"
	"testing"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// mixedBlock builds a block spreading CRDT writes over several keys, with
// multi-key transactions, bad deltas, typed-CRDT writes and a doc/typed
// route conflict — every classification the merge engine distinguishes.
func mixedBlock(keys, txs int) *ledger.Block {
	var list []*ledger.Transaction
	for i := 0; i < txs; i++ {
		k1 := fmt.Sprintf("dev%d", i%keys)
		k2 := fmt.Sprintf("dev%d", (i+1)%keys)
		writes := []rwset.Write{
			{Key: k1, Value: []byte(fmt.Sprintf(`{"r":[{"t":%d}]}`, i)), IsCRDT: true},
			{Key: k2, Value: []byte(fmt.Sprintf(`{"s":[{"u":%d}]}`, i)), IsCRDT: true},
		}
		list = append(list, &ledger.Transaction{
			ID:    fmt.Sprintf("tx%d", i),
			RWSet: rwset.ReadWriteSet{Writes: writes},
		})
	}
	// A bad delta on a shared key after a valid write to another key.
	list = append(list, &ledger.Transaction{
		ID: "bad",
		RWSet: rwset.ReadWriteSet{Writes: []rwset.Write{
			{Key: "dev0", Value: []byte(`{"r":[{"t":999}]}`), IsCRDT: true},
			{Key: "dev1", Value: []byte(`not json`), IsCRDT: true},
		}},
	})
	// Typed CRDT writes on their own key.
	for i := 0; i < 4; i++ {
		list = append(list, &ledger.Transaction{
			ID: fmt.Sprintf("cnt%d", i),
			RWSet: rwset.ReadWriteSet{Writes: []rwset.Write{
				{Key: "hits", Value: []byte(fmt.Sprintf(`{"replica%d":%d}`, i, i+1)), IsCRDT: true, CRDTType: "g-counter"},
			}},
		})
	}
	// Route conflict: "hits" was typed first, a JSON write to it must fail.
	list = append(list, &ledger.Transaction{
		ID: "conflict",
		RWSet: rwset.ReadWriteSet{Writes: []rwset.Write{
			{Key: "hits", Value: []byte(`{"a":["x"]}`), IsCRDT: true},
		}},
	})
	return &ledger.Block{Header: ledger.BlockHeader{Number: 1}, Transactions: list}
}

// TestMergeWorkersEquivalence: the merge must be byte-identical at every
// worker count, across two consecutive blocks (exercising cross-block
// seeding through the persisted states).
func TestMergeWorkersEquivalence(t *testing.T) {
	type outcome struct {
		codes  []ledger.ValidationCode
		values map[string][]byte
		res    Result
	}
	run := func(workers int) []outcome {
		db := statedb.New()
		e := NewEngine(db, Options{Workers: workers})
		var out []outcome
		for blk := uint64(1); blk <= 2; blk++ {
			block := mixedBlock(5, 40)
			block.Header.Number = blk
			codes := make([]ledger.ValidationCode, len(block.Transactions))
			res, err := e.MergeBlock(block, codes)
			if err != nil {
				t.Fatal(err)
			}
			values := make(map[string][]byte)
			for _, tx := range block.Transactions {
				for wi, w := range tx.RWSet.Writes {
					values[fmt.Sprintf("%s/%d", tx.ID, wi)] = w.Value
				}
			}
			batch := statedb.NewUpdateBatch()
			StageDocStates(batch, res)
			db.Apply(batch, rwset.Version{BlockNum: blk})
			out = append(out, outcome{codes: codes, values: values, res: res})
		}
		return out
	}
	baseline := run(1)
	for _, workers := range []int{0, 2, 8} {
		got := run(workers)
		for blk := range baseline {
			if !reflect.DeepEqual(baseline[blk].codes, got[blk].codes) {
				t.Errorf("workers=%d block %d: codes = %v, want %v", workers, blk+1, got[blk].codes, baseline[blk].codes)
			}
			if !reflect.DeepEqual(baseline[blk].values, got[blk].values) {
				t.Errorf("workers=%d block %d: rewritten write sets differ", workers, blk+1)
			}
			if !reflect.DeepEqual(baseline[blk].res, got[blk].res) {
				t.Errorf("workers=%d block %d: results differ:\n got %+v\nwant %+v", workers, blk+1, got[blk].res, baseline[blk].res)
			}
		}
	}
	// Sanity: the workload exercised failures and both merge routes.
	count := make(map[ledger.ValidationCode]int)
	for _, c := range baseline[0].codes {
		count[c]++
	}
	if count[ledger.CodeInvalidCRDT] != 2 || count[ledger.CodeCRDTMerged] == 0 {
		t.Fatalf("workload degenerate, code mix = %v", count)
	}
	if baseline[0].res.TypedStates["hits"] == nil {
		t.Fatal("typed state not persisted")
	}
}

// TestMergeWorkersHardErrorDeterministic: with several corrupt persisted
// documents, every worker count must surface the error of the earliest
// affected write in block order.
func TestMergeWorkersHardErrorDeterministic(t *testing.T) {
	errOf := func(workers int) string {
		db := statedb.New()
		batch := statedb.NewUpdateBatch()
		batch.PutMeta(MetaPrefix+"k1", []byte("corrupt-1"))
		batch.PutMeta(MetaPrefix+"k2", []byte("corrupt-2"))
		db.Apply(batch, rwset.Version{BlockNum: 1})
		e := NewEngine(db, Options{Workers: workers})
		block := blockOf(
			crdtTx("t1", "k2", `{"a":["x"]}`),
			crdtTx("t2", "k1", `{"a":["y"]}`),
		)
		_, err := e.MergeBlock(block, make([]ledger.ValidationCode, 2))
		if err == nil {
			t.Fatalf("workers=%d: corrupt state must error", workers)
		}
		return err.Error()
	}
	want := errOf(1)
	for _, workers := range []int{2, 8} {
		if got := errOf(workers); got != want {
			t.Errorf("workers=%d error = %q, want %q", workers, got, want)
		}
	}
}
