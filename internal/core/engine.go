// Package core implements FabricCRDT's contribution: the commit-time merge
// engine that replaces MVCC validation for CRDT-flagged transactions
// (paper §5, Algorithms 1 and 2).
//
// Within a block, every CRDT-flagged write to the same key is merged into
// one JSON CRDT document; the converged document then replaces the value in
// every one of those transactions' write sets, so all of them commit and no
// update is lost. Non-CRDT transactions are untouched and go through stock
// MVCC validation.
//
// Cross-block continuity: each ledger key's full JSON CRDT document (with
// operation metadata) is persisted in the state database's metadata space
// and reloaded to seed the merge of later blocks, so deltas merge against
// the key's complete history (DESIGN.md §3 records this clarification of
// the paper's delta semantics).
//
// The merge is organized as independent per-key groups: all CRDT writes to
// one key, in block order, form one group, and distinct groups share no
// state. Options.Workers merges groups concurrently; because the per-key
// write order never changes, results are byte-identical at every worker
// count (DESIGN.md §5).
package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"fabriccrdt/internal/crdt"
	"fabriccrdt/internal/jsoncrdt"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/parallel"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// MetaPrefix namespaces persisted CRDT documents in the state database's
// metadata space.
const MetaPrefix = "crdt/"

// MergeReplica is the replica identifier every peer's merge engine stamps
// operations with. It must be identical on all peers: peers observe blocks
// in the same order, so equal inputs + equal replica = equal operation IDs
// = byte-identical converged documents (paper §5.2: "every peer observes
// the transactions in a block in the same order; we exploit this property").
const MergeReplica = "fabriccrdt"

// Options tune the engine.
type Options struct {
	// SerializeOncePerKey replaces Algorithm 1's literal second pass —
	// which re-serializes the converged document into every transaction's
	// write set (lines 16–22, O(txs × doc size) per block) — with a
	// serialize-once-per-key cache. Off by default for paper fidelity;
	// the ablation benchmark (DESIGN.md A1) quantifies the difference.
	SerializeOncePerKey bool
	// FreshDocPerBlock is the paper-literal Algorithm 1 behaviour: every
	// block starts from InitEmptyCRDT, so only the block's own deltas are
	// merged and nothing is persisted across blocks. The committed world
	// state then holds only the LAST block's converged readings — updates
	// from earlier blocks survive solely in the blockchain history. Off
	// by default: the library seeds each block's documents from the
	// persisted state so "no update loss" holds across blocks too
	// (DESIGN.md §3). The paper's evaluation is reproduced with this ON,
	// which is what yields Figure 3's block-size-dependent merge cost.
	FreshDocPerBlock bool
	// Workers bounds how many independent key-groups merge concurrently
	// (0 or 1 = serial). Per-key write order is block order regardless,
	// so merge results are byte-identical at every setting.
	Workers int
}

// Engine merges the CRDT transactions of blocks for one peer.
type Engine struct {
	db       *statedb.DB
	opts     Options
	registry *crdt.Registry
}

// NewEngine returns a merge engine reading and persisting CRDT document
// state through db.
func NewEngine(db *statedb.DB, opts Options) *Engine {
	return &Engine{db: db, opts: opts, registry: crdt.NewRegistry()}
}

// Registry exposes the datatype registry so deployments can register
// custom CRDTs before committing blocks that use them.
func (e *Engine) Registry() *crdt.Registry { return e.registry }

// Result summarizes one block's merge.
type Result struct {
	// MergedTxCount is the number of transactions committed via the CRDT
	// path.
	MergedTxCount int
	// MergedKeys lists the distinct ledger keys whose documents were
	// extended, in first-touch order.
	MergedKeys []string
	// DocStates holds the serialized post-merge JSON CRDT document per
	// key, to be written to the metadata space by the commit batch.
	DocStates map[string][]byte
	// TypedStates holds the serialized post-merge classic-CRDT state per
	// key (the future-work datatypes).
	TypedStates map[string][]byte
}

// mergeOp is one CRDT-flagged write scheduled into a key-group: the write
// plus its position in the block (for validation codes and deterministic
// ordering).
type mergeOp struct {
	txIdx int
	w     *rwset.Write
	// ok records whether the write merged cleanly (set by runGroup).
	ok bool
}

// keyGroup is the unit of merge parallelism: every CRDT write to one key,
// in block order. Groups share no mutable state, so they run concurrently
// without synchronization; per-op outputs land in disjoint slots.
type keyGroup struct {
	key string
	ops []*mergeOp

	// Outputs of the merge pass.
	doc   *jsoncrdt.Doc
	typed *typedState
	err   error // hard failure (corrupt persisted state), not a bad delta

	// Outputs of the finish pass (serialization).
	docState   []byte
	typedState []byte
	finishErr  error
}

// MergeBlock implements Algorithm 1 (ValidateMergeBlock). codes[i] must be
// CodeNotValidated for transactions still in play and a failure code for
// transactions that already failed endorsement validation; the engine sets
// codes[i] = CodeCRDTMerged for every transaction it commits via the merge
// path (the paper's SkipMVCCValidation flag) and CodeInvalidCRDT for CRDT
// transactions carrying unparseable values. Write-set values of merged
// transactions are rewritten in place to the converged documents.
//
// A transaction is merged only if every one of its CRDT writes merges
// cleanly; a bad delta fails the transaction (CodeInvalidCRDT) while its
// other writes still extend their keys' documents, exactly as its earlier
// writes already did — one transaction's failure never rolls back a key
// group, in any interleaving.
//
// The caller runs stock MVCC validation afterwards for the remaining
// transactions (Algorithm 1 line 15) and commits both groups in one batch.
func (e *Engine) MergeBlock(block *ledger.Block, codes []ledger.ValidationCode) (Result, error) {
	return e.MergeCandidates(block, codes, CRDTCandidates(block, codes), 0)
}

// CRDTCandidates lists (ascending) the transactions eligible for the merge
// path: still undecided and carrying at least one CRDT-flagged write.
func CRDTCandidates(block *ledger.Block, codes []ledger.ValidationCode) []int {
	var candidates []int
	for i, tx := range block.Transactions {
		if codes[i] != ledger.CodeNotValidated {
			continue // failed endorsement validation; never merged
		}
		if !tx.RWSet.HasCRDTWrites() {
			continue // non-CRDT transaction: left for MVCC validation
		}
		candidates = append(candidates, i)
	}
	return candidates
}

// MergeCandidates is MergeBlock over an explicit candidate set (ascending
// transaction indices, as from CRDTCandidates or a txgraph plan). The
// engine reads and writes codes ONLY at candidate indices, so the parallel
// finalize stage can run the merge concurrently with MVCC validation of the
// remaining transactions over the same codes slice without a data race.
// workers overrides Options.Workers for this call when > 0 (the finalize
// stage's own worker knob); per-key write order is block order regardless,
// so results are byte-identical at every setting.
func (e *Engine) MergeCandidates(block *ledger.Block, codes []ledger.ValidationCode, candidates []int, workers int) (Result, error) {
	if workers <= 0 {
		workers = e.opts.Workers
	}
	groups, flat := classify(block, candidates)

	// Merge pass: each group replays its key's writes in block order.
	e.forEachGroup(workers, groups, e.runGroup)
	if err := firstMergeError(flat); err != nil {
		return Result{}, err
	}

	// Validation codes: a candidate is merged iff all its writes merged.
	res := Result{
		DocStates:   make(map[string][]byte),
		TypedStates: make(map[string][]byte),
	}
	txFailed := make(map[int]bool)
	for _, item := range flat {
		if !item.op.ok {
			txFailed[item.op.txIdx] = true
		}
	}
	for _, txIdx := range candidates {
		if txFailed[txIdx] {
			codes[txIdx] = ledger.CodeInvalidCRDT
			continue
		}
		codes[txIdx] = ledger.CodeCRDTMerged
		res.MergedTxCount++
	}

	// MergedKeys in first-successful-touch block order.
	seen := make(map[string]struct{}, len(groups))
	for _, item := range flat {
		if !item.op.ok {
			continue
		}
		if _, ok := seen[item.g.key]; ok {
			continue
		}
		seen[item.g.key] = struct{}{}
		res.MergedKeys = append(res.MergedKeys, item.g.key)
	}

	// Finish pass (Algorithm 1 lines 16–22): rewrite every merged
	// transaction's CRDT write values with the converged documents,
	// metadata stripped, and serialize the states to persist. The paper's
	// literal algorithm converts the document anew for every transaction;
	// SerializeOncePerKey caches it.
	e.forEachGroup(workers, groups, func(g *keyGroup) { e.finishGroup(g, codes) })
	for _, g := range groups {
		if g.finishErr != nil {
			return Result{}, g.finishErr
		}
	}

	for _, g := range groups {
		if g.typedState != nil {
			// Always persisted, even in fresh-per-block mode — a
			// state-based join is cheap and counters are meaningless
			// without continuity.
			res.TypedStates[g.key] = g.typedState
		}
		if g.docState != nil {
			res.DocStates[g.key] = g.docState
		}
	}
	return res, nil
}

// flatOp is one scheduled write in block order, used to derive
// deterministic, worker-count-independent orderings.
type flatOp struct {
	g  *keyGroup
	op *mergeOp
}

// classify walks the candidate transactions in block order and groups
// their CRDT writes by key. It is the serial stage of the pipeline: cheap
// bookkeeping only, no parsing or merging.
func classify(block *ledger.Block, candidates []int) ([]*keyGroup, []flatOp) {
	byKey := make(map[string]*keyGroup)
	var groups []*keyGroup
	var flat []flatOp
	for _, i := range candidates {
		tx := block.Transactions[i]
		for wi := range tx.RWSet.Writes {
			w := &tx.RWSet.Writes[wi]
			if !w.IsCRDT {
				continue
			}
			g, ok := byKey[w.Key]
			if !ok {
				g = &keyGroup{key: w.Key}
				byKey[w.Key] = g
				groups = append(groups, g)
			}
			op := &mergeOp{txIdx: i, w: w}
			g.ops = append(g.ops, op)
			flat = append(flat, flatOp{g: g, op: op})
		}
	}
	return groups, flat
}

// forEachGroup runs fn over every group, spreading groups over workers
// goroutines when > 1. Groups are independent, so the schedule cannot
// affect results.
func (e *Engine) forEachGroup(workers int, groups []*keyGroup, fn func(*keyGroup)) {
	parallel.ForEach(workers, groups, fn)
}

// runGroup merges one key's writes in block order. Bad deltas mark the op
// failed and the group continues; hard failures (corrupt persisted state)
// stop the group.
func (e *Engine) runGroup(g *keyGroup) {
	docs := make(map[string]*jsoncrdt.Doc, 1)
	typed := make(map[string]*typedState, 1)
	for _, op := range g.ops {
		err := e.mergeWrite(docs, typed, op.w)
		switch {
		case err == nil:
			op.ok = true
		case errors.Is(err, errInvalidDelta):
			// Bad delta: the op (and so its transaction) fails, later
			// writes to this key still merge.
		default:
			g.err = err // corrupt persisted state: peer-side, hard failure
			return
		}
	}
	g.doc = docs[g.key]
	g.typed = typed[g.key]
}

// firstMergeError returns the hard error of the earliest (block-order)
// write whose group failed, so the surfaced error does not depend on the
// worker schedule.
func firstMergeError(flat []flatOp) error {
	for _, item := range flat {
		if item.g.err != nil {
			return item.g.err
		}
	}
	return nil
}

// finishGroup serializes one group's converged value into every merged
// transaction's write set and marshals the post-merge states to persist.
func (e *Engine) finishGroup(g *keyGroup, codes []ledger.ValidationCode) {
	var cached []byte
	for _, op := range g.ops {
		if codes[op.txIdx] != ledger.CodeCRDTMerged {
			continue
		}
		converged := cached
		if converged == nil {
			var err error
			switch {
			case g.doc != nil:
				converged, err = json.Marshal(g.doc.ToJSON())
			case g.typed != nil:
				converged, err = cleanTypedValue(g.typed)
			default:
				err = fmt.Errorf("core: merged write for key %q has no document", g.key)
			}
			if err != nil {
				g.finishErr = fmt.Errorf("core: serializing converged value for %q: %w", g.key, err)
				return
			}
			if e.opts.SerializeOncePerKey {
				cached = converged
			}
		}
		op.w.Value = converged
	}
	if g.typed != nil {
		state, err := crdt.Marshal(g.typed.acc)
		if err != nil {
			g.finishErr = fmt.Errorf("core: persisting %s state for %q: %w", g.typed.typeName, g.key, err)
			return
		}
		g.typedState = state
	}
	// Persist the post-merge JSON CRDT document for cross-block seeding
	// (skipped in the paper-literal fresh-per-block mode).
	if g.doc != nil && !e.opts.FreshDocPerBlock {
		state, err := g.doc.MarshalBinary()
		if err != nil {
			g.finishErr = fmt.Errorf("core: persisting document for %q: %w", g.key, err)
			return
		}
		g.docState = state
	}
}

// errInvalidDelta marks merge failures attributable to the transaction's
// data (unparseable delta, type conflicts); the transaction fails with
// CodeInvalidCRDT while the block commit proceeds.
var errInvalidDelta = errors.New("core: invalid CRDT delta")

// mergeWrite routes one CRDT-flagged write to the JSON CRDT or the typed
// classic-CRDT merge path. The maps are group-local: they only ever hold
// the group's own key, so route conflicts (doc vs typed) are detected
// exactly as they were when one block-wide map existed.
func (e *Engine) mergeWrite(docs map[string]*jsoncrdt.Doc, typed map[string]*typedState, w *rwset.Write) error {
	if w.CRDTType == "" {
		if _, isTyped := typed[w.Key]; isTyped {
			return fmt.Errorf("%w: key %q already merged as a typed CRDT in this block", errInvalidDelta, w.Key)
		}
		doc, err := e.docForKey(docs, w.Key)
		if err != nil {
			return err // corrupt persisted state: peer-side, hard failure
		}
		var delta any
		if err := json.Unmarshal(w.Value, &delta); err != nil {
			return fmt.Errorf("%w: %v", errInvalidDelta, err)
		}
		if err := doc.MergeJSON(delta); err != nil {
			return fmt.Errorf("%w: %v", errInvalidDelta, err)
		}
		return nil
	}
	if _, isDoc := docs[w.Key]; isDoc {
		return fmt.Errorf("%w: key %q already merged as a JSON CRDT in this block", errInvalidDelta, w.Key)
	}
	st, err := e.typedForKey(typed, w.Key, w.CRDTType)
	switch {
	case errors.Is(err, crdt.ErrTypeMismatch), errors.Is(err, crdt.ErrUnknownType):
		return fmt.Errorf("%w: %v", errInvalidDelta, err)
	case err != nil:
		return err // corrupt persisted state: hard failure
	}
	if err := e.mergeTypedDelta(st, w.Value); err != nil {
		return fmt.Errorf("%w: %v", errInvalidDelta, err)
	}
	return nil
}

// docForKey returns the block-local document for key, seeding it from the
// persisted state of earlier blocks (InitEmptyCRDT in Algorithm 1, extended
// with cross-block continuity).
func (e *Engine) docForKey(docs map[string]*jsoncrdt.Doc, key string) (*jsoncrdt.Doc, error) {
	if doc, ok := docs[key]; ok {
		return doc, nil
	}
	doc := jsoncrdt.NewDoc(MergeReplica)
	if !e.opts.FreshDocPerBlock {
		if persisted := e.db.GetMeta(MetaPrefix + key); persisted != nil {
			if err := doc.UnmarshalBinary(persisted); err != nil {
				return nil, fmt.Errorf("core: loading persisted document for %q: %w", key, err)
			}
		}
	}
	docs[key] = doc
	return doc, nil
}

// StageDocStates writes the merged document and typed-CRDT states into a
// commit batch's metadata space.
func StageDocStates(batch *statedb.UpdateBatch, res Result) {
	//lint:sorted map-to-map staging; UpdateBatch is keyed, insertion order invisible
	for key, state := range res.DocStates {
		batch.PutMeta(MetaPrefix+key, state)
	}
	//lint:sorted map-to-map staging; UpdateBatch is keyed, insertion order invisible
	for key, state := range res.TypedStates {
		batch.PutMeta(TypedMetaPrefix+key, state)
	}
}

// LoadDoc returns the persisted CRDT document for a ledger key, or nil when
// the key has never been CRDT-written. Read-side helpers (clients, examples)
// use it to inspect merge metadata.
func LoadDoc(db *statedb.DB, key string) (*jsoncrdt.Doc, error) {
	persisted := db.GetMeta(MetaPrefix + key)
	if persisted == nil {
		return nil, nil
	}
	doc := jsoncrdt.NewDoc(MergeReplica)
	if err := doc.UnmarshalBinary(persisted); err != nil {
		return nil, fmt.Errorf("core: loading persisted document for %q: %w", key, err)
	}
	return doc, nil
}
