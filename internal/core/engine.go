// Package core implements FabricCRDT's contribution: the commit-time merge
// engine that replaces MVCC validation for CRDT-flagged transactions
// (paper §5, Algorithms 1 and 2).
//
// Within a block, every CRDT-flagged write to the same key is merged into
// one JSON CRDT document; the converged document then replaces the value in
// every one of those transactions' write sets, so all of them commit and no
// update is lost. Non-CRDT transactions are untouched and go through stock
// MVCC validation.
//
// Cross-block continuity: each ledger key's full JSON CRDT document (with
// operation metadata) is persisted in the state database's metadata space
// and reloaded to seed the merge of later blocks, so deltas merge against
// the key's complete history (DESIGN.md §3 records this clarification of
// the paper's delta semantics).
package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"fabriccrdt/internal/crdt"
	"fabriccrdt/internal/jsoncrdt"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// MetaPrefix namespaces persisted CRDT documents in the state database's
// metadata space.
const MetaPrefix = "crdt/"

// MergeReplica is the replica identifier every peer's merge engine stamps
// operations with. It must be identical on all peers: peers observe blocks
// in the same order, so equal inputs + equal replica = equal operation IDs
// = byte-identical converged documents (paper §5.2: "every peer observes
// the transactions in a block in the same order; we exploit this property").
const MergeReplica = "fabriccrdt"

// Options tune the engine.
type Options struct {
	// SerializeOncePerKey replaces Algorithm 1's literal second pass —
	// which re-serializes the converged document into every transaction's
	// write set (lines 16–22, O(txs × doc size) per block) — with a
	// serialize-once-per-key cache. Off by default for paper fidelity;
	// the ablation benchmark (DESIGN.md A1) quantifies the difference.
	SerializeOncePerKey bool
	// FreshDocPerBlock is the paper-literal Algorithm 1 behaviour: every
	// block starts from InitEmptyCRDT, so only the block's own deltas are
	// merged and nothing is persisted across blocks. The committed world
	// state then holds only the LAST block's converged readings — updates
	// from earlier blocks survive solely in the blockchain history. Off
	// by default: the library seeds each block's documents from the
	// persisted state so "no update loss" holds across blocks too
	// (DESIGN.md §3). The paper's evaluation is reproduced with this ON,
	// which is what yields Figure 3's block-size-dependent merge cost.
	FreshDocPerBlock bool
}

// Engine merges the CRDT transactions of blocks for one peer.
type Engine struct {
	db       *statedb.DB
	opts     Options
	registry *crdt.Registry
}

// NewEngine returns a merge engine reading and persisting CRDT document
// state through db.
func NewEngine(db *statedb.DB, opts Options) *Engine {
	return &Engine{db: db, opts: opts, registry: crdt.NewRegistry()}
}

// Registry exposes the datatype registry so deployments can register
// custom CRDTs before committing blocks that use them.
func (e *Engine) Registry() *crdt.Registry { return e.registry }

// Result summarizes one block's merge.
type Result struct {
	// MergedTxCount is the number of transactions committed via the CRDT
	// path.
	MergedTxCount int
	// MergedKeys lists the distinct ledger keys whose documents were
	// extended, in first-touch order.
	MergedKeys []string
	// DocStates holds the serialized post-merge JSON CRDT document per
	// key, to be written to the metadata space by the commit batch.
	DocStates map[string][]byte
	// TypedStates holds the serialized post-merge classic-CRDT state per
	// key (the future-work datatypes).
	TypedStates map[string][]byte
}

// MergeBlock implements Algorithm 1 (ValidateMergeBlock). codes[i] must be
// CodeNotValidated for transactions still in play and a failure code for
// transactions that already failed endorsement validation; the engine sets
// codes[i] = CodeCRDTMerged for every transaction it commits via the merge
// path (the paper's SkipMVCCValidation flag) and CodeInvalidCRDT for CRDT
// transactions carrying unparseable values. Write-set values of merged
// transactions are rewritten in place to the converged documents.
//
// The caller runs stock MVCC validation afterwards for the remaining
// transactions (Algorithm 1 line 15) and commits both groups in one batch.
func (e *Engine) MergeBlock(block *ledger.Block, codes []ledger.ValidationCode) (Result, error) {
	res := Result{
		DocStates:   make(map[string][]byte),
		TypedStates: make(map[string][]byte),
	}
	docs := make(map[string]*jsoncrdt.Doc)
	typed := make(map[string]*typedState)
	seen := make(map[string]struct{})

	// First pass (Algorithm 1 lines 3–14): merge every CRDT-flagged value
	// into its key's document — or, for typed writes, join it into the
	// key's classic-CRDT state — in block order.
	for i, tx := range block.Transactions {
		if codes[i] != ledger.CodeNotValidated {
			continue // failed endorsement validation; never merged
		}
		if !tx.RWSet.HasCRDTWrites() {
			continue // non-CRDT transaction: left for MVCC validation
		}
		merged := true
		for wi := range tx.RWSet.Writes {
			w := &tx.RWSet.Writes[wi]
			if !w.IsCRDT {
				continue
			}
			err := e.mergeWrite(docs, typed, w)
			switch {
			case errors.Is(err, errInvalidDelta):
				codes[i] = ledger.CodeInvalidCRDT
				merged = false
			case err != nil:
				return Result{}, err
			}
			if !merged {
				break
			}
			if _, ok := seen[w.Key]; !ok {
				seen[w.Key] = struct{}{}
				res.MergedKeys = append(res.MergedKeys, w.Key)
			}
		}
		if merged {
			codes[i] = ledger.CodeCRDTMerged
			res.MergedTxCount++
		}
	}

	// Second pass (Algorithm 1 lines 16–22): rewrite every merged
	// transaction's CRDT write values with the converged documents,
	// metadata stripped. The paper's literal algorithm converts the
	// document anew for every transaction; SerializeOncePerKey caches it.
	cache := make(map[string][]byte)
	for i, tx := range block.Transactions {
		if codes[i] != ledger.CodeCRDTMerged {
			continue
		}
		for wi := range tx.RWSet.Writes {
			w := &tx.RWSet.Writes[wi]
			if !w.IsCRDT {
				continue
			}
			var converged []byte
			if e.opts.SerializeOncePerKey {
				if cached, ok := cache[w.Key]; ok {
					converged = cached
				}
			}
			if converged == nil {
				var err error
				switch {
				case docs[w.Key] != nil:
					converged, err = json.Marshal(docs[w.Key].ToJSON())
				case typed[w.Key] != nil:
					converged, err = cleanTypedValue(typed[w.Key])
				default:
					err = fmt.Errorf("core: merged write for key %q has no document", w.Key)
				}
				if err != nil {
					return Result{}, fmt.Errorf("core: serializing converged value for %q: %w", w.Key, err)
				}
				if e.opts.SerializeOncePerKey {
					cache[w.Key] = converged
				}
			}
			w.Value = converged
		}
	}

	// Persist the post-merge classic-CRDT states: always, even in
	// fresh-per-block mode — a state-based join is cheap and counters are
	// meaningless without continuity.
	for key, st := range typed {
		state, err := crdt.Marshal(st.acc)
		if err != nil {
			return Result{}, fmt.Errorf("core: persisting %s state for %q: %w", st.typeName, key, err)
		}
		res.TypedStates[key] = state
	}

	// Persist the post-merge JSON CRDT documents for cross-block seeding
	// (skipped in the paper-literal fresh-per-block mode).
	if e.opts.FreshDocPerBlock {
		return res, nil
	}
	for key, doc := range docs {
		state, err := doc.MarshalBinary()
		if err != nil {
			return Result{}, fmt.Errorf("core: persisting document for %q: %w", key, err)
		}
		res.DocStates[key] = state
	}
	return res, nil
}

// errInvalidDelta marks merge failures attributable to the transaction's
// data (unparseable delta, type conflicts); the transaction fails with
// CodeInvalidCRDT while the block commit proceeds.
var errInvalidDelta = errors.New("core: invalid CRDT delta")

// mergeWrite routes one CRDT-flagged write to the JSON CRDT or the typed
// classic-CRDT merge path.
func (e *Engine) mergeWrite(docs map[string]*jsoncrdt.Doc, typed map[string]*typedState, w *rwset.Write) error {
	if w.CRDTType == "" {
		if _, isTyped := typed[w.Key]; isTyped {
			return fmt.Errorf("%w: key %q already merged as a typed CRDT in this block", errInvalidDelta, w.Key)
		}
		doc, err := e.docForKey(docs, w.Key)
		if err != nil {
			return err // corrupt persisted state: peer-side, hard failure
		}
		var delta any
		if err := json.Unmarshal(w.Value, &delta); err != nil {
			return fmt.Errorf("%w: %v", errInvalidDelta, err)
		}
		if err := doc.MergeJSON(delta); err != nil {
			return fmt.Errorf("%w: %v", errInvalidDelta, err)
		}
		return nil
	}
	if _, isDoc := docs[w.Key]; isDoc {
		return fmt.Errorf("%w: key %q already merged as a JSON CRDT in this block", errInvalidDelta, w.Key)
	}
	st, err := e.typedForKey(typed, w.Key, w.CRDTType)
	switch {
	case errors.Is(err, crdt.ErrTypeMismatch), errors.Is(err, crdt.ErrUnknownType):
		return fmt.Errorf("%w: %v", errInvalidDelta, err)
	case err != nil:
		return err // corrupt persisted state: hard failure
	}
	if err := e.mergeTypedDelta(st, w.Value); err != nil {
		return fmt.Errorf("%w: %v", errInvalidDelta, err)
	}
	return nil
}

// docForKey returns the block-local document for key, seeding it from the
// persisted state of earlier blocks (InitEmptyCRDT in Algorithm 1, extended
// with cross-block continuity).
func (e *Engine) docForKey(docs map[string]*jsoncrdt.Doc, key string) (*jsoncrdt.Doc, error) {
	if doc, ok := docs[key]; ok {
		return doc, nil
	}
	doc := jsoncrdt.NewDoc(MergeReplica)
	if !e.opts.FreshDocPerBlock {
		if persisted := e.db.GetMeta(MetaPrefix + key); persisted != nil {
			if err := doc.UnmarshalBinary(persisted); err != nil {
				return nil, fmt.Errorf("core: loading persisted document for %q: %w", key, err)
			}
		}
	}
	docs[key] = doc
	return doc, nil
}

// StageDocStates writes the merged document and typed-CRDT states into a
// commit batch's metadata space.
func StageDocStates(batch *statedb.UpdateBatch, res Result) {
	for key, state := range res.DocStates {
		batch.PutMeta(MetaPrefix+key, state)
	}
	for key, state := range res.TypedStates {
		batch.PutMeta(TypedMetaPrefix+key, state)
	}
}

// LoadDoc returns the persisted CRDT document for a ledger key, or nil when
// the key has never been CRDT-written. Read-side helpers (clients, examples)
// use it to inspect merge metadata.
func LoadDoc(db *statedb.DB, key string) (*jsoncrdt.Doc, error) {
	persisted := db.GetMeta(MetaPrefix + key)
	if persisted == nil {
		return nil, nil
	}
	doc := jsoncrdt.NewDoc(MergeReplica)
	if err := doc.UnmarshalBinary(persisted); err != nil {
		return nil, fmt.Errorf("core: loading persisted document for %q: %w", key, err)
	}
	return doc, nil
}
