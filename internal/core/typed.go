package core

import (
	"encoding/json"
	"fmt"

	"fabriccrdt/internal/crdt"
	"fabriccrdt/internal/statedb"
)

// TypedMetaPrefix namespaces persisted classic-CRDT states in the state
// database's metadata space, separate from JSON CRDT documents.
const TypedMetaPrefix = "crdtt/"

// typedState tracks one key's accumulated classic-CRDT state during a
// block merge.
type typedState struct {
	typeName string
	acc      crdt.CRDT
}

// typedForKey returns the block-local accumulated state for key, seeding it
// from the persisted state of earlier blocks. Unlike JSON CRDT documents,
// typed states are seeded even in FreshDocPerBlock mode: a state-based join
// is cheap, and counters/sets are meaningless without continuity.
func (e *Engine) typedForKey(states map[string]*typedState, key, typeName string) (*typedState, error) {
	if st, ok := states[key]; ok {
		if st.typeName != typeName {
			return nil, fmt.Errorf("%w: key %q written as %s and %s in one block",
				crdt.ErrTypeMismatch, key, st.typeName, typeName)
		}
		return st, nil
	}
	var acc crdt.CRDT
	if persisted := e.db.GetMeta(TypedMetaPrefix + key); persisted != nil {
		loaded, err := e.registry.Unmarshal(persisted)
		if err != nil {
			return nil, fmt.Errorf("core: loading persisted %s state for %q: %w", typeName, key, err)
		}
		if loaded.TypeName() != typeName {
			return nil, fmt.Errorf("%w: key %q persisted as %s, written as %s",
				crdt.ErrTypeMismatch, key, loaded.TypeName(), typeName)
		}
		acc = loaded
	} else {
		fresh, err := e.registry.New(typeName)
		if err != nil {
			return nil, err
		}
		acc = fresh
	}
	st := &typedState{typeName: typeName, acc: acc}
	states[key] = st
	return st, nil
}

// mergeTypedDelta joins one submitted state into the key's accumulator.
// A failure to parse or join is a per-transaction problem (the caller marks
// the transaction CodeInvalidCRDT), not an engine failure.
func (e *Engine) mergeTypedDelta(st *typedState, value []byte) error {
	delta, err := e.registry.New(st.typeName)
	if err != nil {
		return err
	}
	if err := delta.LoadStateJSON(value); err != nil {
		return fmt.Errorf("core: parsing %s delta: %w", st.typeName, err)
	}
	return st.acc.Merge(delta)
}

// LoadTypedCRDT returns the persisted classic-CRDT state behind a ledger
// key, or nil when the key was never written as a typed CRDT.
func LoadTypedCRDT(db *statedb.DB, key string) (crdt.CRDT, error) {
	persisted := db.GetMeta(TypedMetaPrefix + key)
	if persisted == nil {
		return nil, nil
	}
	return crdt.NewRegistry().Unmarshal(persisted)
}

// cleanTypedValue is the world-state representation of a typed CRDT: the
// datatype's plain value, JSON-encoded (a counter commits as a number, a
// set as a sorted array, ...).
func cleanTypedValue(st *typedState) ([]byte, error) {
	data, err := json.Marshal(st.acc.Value())
	if err != nil {
		return nil, fmt.Errorf("core: serializing %s value: %w", st.typeName, err)
	}
	return data, nil
}
