package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// crdtTx builds a transaction with one CRDT write of value to key.
func crdtTx(id, key, value string) *ledger.Transaction {
	return &ledger.Transaction{
		ID: id,
		RWSet: rwset.ReadWriteSet{
			Reads:  []rwset.Read{{Key: key}},
			Writes: []rwset.Write{{Key: key, Value: []byte(value), IsCRDT: true}},
		},
	}
}

func plainTx(id, key, value string) *ledger.Transaction {
	return &ledger.Transaction{
		ID: id,
		RWSet: rwset.ReadWriteSet{
			Writes: []rwset.Write{{Key: key, Value: []byte(value)}},
		},
	}
}

func blockOf(txs ...*ledger.Transaction) *ledger.Block {
	return &ledger.Block{
		Header:       ledger.BlockHeader{Number: 1},
		Transactions: txs,
	}
}

func decodeJSON(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var v map[string]any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("invalid JSON %q: %v", data, err)
	}
	return v
}

// TestPaperListing1and2 is the end-to-end golden test of the paper's §5.1
// example: two CRDT transactions writing to key "Device1" merge so that BOTH
// write sets carry the identical converged two-reading document.
func TestPaperListing1and2(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	tx1 := crdtTx("t1", "Device1", `{"tempReadings":[{"temperature":"15"}]}`)
	tx2 := crdtTx("t2", "Device1", `{"tempReadings":[{"temperature":"20"}]}`)
	block := blockOf(tx1, tx2)
	codes := make([]ledger.ValidationCode, 2)
	res, err := e.MergeBlock(block, codes)
	if err != nil {
		t.Fatal(err)
	}
	if res.MergedTxCount != 2 {
		t.Fatalf("merged = %d, want 2", res.MergedTxCount)
	}
	if codes[0] != ledger.CodeCRDTMerged || codes[1] != ledger.CodeCRDTMerged {
		t.Fatalf("codes = %v", codes)
	}
	want := decodeJSON(t, []byte(`{"tempReadings":[{"temperature":"15"},{"temperature":"20"}]}`))
	got1 := decodeJSON(t, tx1.RWSet.Writes[0].Value)
	got2 := decodeJSON(t, tx2.RWSet.Writes[0].Value)
	if !reflect.DeepEqual(got1, want) {
		t.Fatalf("tx1 write = %v, want %v", got1, want)
	}
	if !reflect.DeepEqual(got1, got2) {
		t.Fatalf("write sets differ: %v vs %v (Listing 2: identical)", got1, got2)
	}
	if len(res.MergedKeys) != 1 || res.MergedKeys[0] != "Device1" {
		t.Fatalf("merged keys = %v", res.MergedKeys)
	}
	if res.DocStates["Device1"] == nil {
		t.Fatal("document state not persisted")
	}
}

func TestCrossBlockSeeding(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})

	// Block 1: one reading.
	b1 := blockOf(crdtTx("t1", "dev", `{"r":[{"t":"15"}]}`))
	codes := make([]ledger.ValidationCode, 1)
	res1, err := e.MergeBlock(b1, codes)
	if err != nil {
		t.Fatal(err)
	}
	batch := statedb.NewUpdateBatch()
	StageDocStates(batch, res1)
	db.Apply(batch, rwset.Version{BlockNum: 1})

	// Block 2: a second reading must merge AFTER the persisted first.
	tx2 := crdtTx("t2", "dev", `{"r":[{"t":"20"}]}`)
	b2 := blockOf(tx2)
	codes2 := make([]ledger.ValidationCode, 1)
	if _, err := e.MergeBlock(b2, codes2); err != nil {
		t.Fatal(err)
	}
	got := decodeJSON(t, tx2.RWSet.Writes[0].Value)
	want := decodeJSON(t, []byte(`{"r":[{"t":"15"},{"t":"20"}]}`))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-block merge = %v, want %v (no update loss)", got, want)
	}
}

func TestNonCRDTTransactionsUntouched(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	plain := plainTx("p1", "k", "value")
	block := blockOf(plain, crdtTx("c1", "doc", `{"a":["x"]}`))
	codes := make([]ledger.ValidationCode, 2)
	res, err := e.MergeBlock(block, codes)
	if err != nil {
		t.Fatal(err)
	}
	if codes[0] != ledger.CodeNotValidated {
		t.Fatalf("plain tx code = %v, want NotValidated (left for MVCC)", codes[0])
	}
	if codes[1] != ledger.CodeCRDTMerged {
		t.Fatalf("crdt tx code = %v", codes[1])
	}
	if string(plain.RWSet.Writes[0].Value) != "value" {
		t.Fatal("plain write mutated")
	}
	if res.MergedTxCount != 1 {
		t.Fatalf("merged = %d", res.MergedTxCount)
	}
}

func TestPreFailedTransactionsNeverMerge(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	bad := crdtTx("bad", "doc", `{"a":["evil"]}`)
	good := crdtTx("good", "doc", `{"a":["ok"]}`)
	block := blockOf(bad, good)
	codes := []ledger.ValidationCode{ledger.CodeEndorsementFailure, ledger.CodeNotValidated}
	if _, err := e.MergeBlock(block, codes); err != nil {
		t.Fatal(err)
	}
	if codes[0] != ledger.CodeEndorsementFailure {
		t.Fatalf("failed tx code overwritten: %v", codes[0])
	}
	got := decodeJSON(t, good.RWSet.Writes[0].Value)
	if !reflect.DeepEqual(got["a"], []any{"ok"}) {
		t.Fatalf("converged doc includes rejected update: %v", got)
	}
	// The rejected transaction's write set must not be rewritten.
	if string(bad.RWSet.Writes[0].Value) != `{"a":["evil"]}` {
		t.Fatalf("rejected tx write mutated: %s", bad.RWSet.Writes[0].Value)
	}
}

func TestInvalidCRDTValueFailsTx(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	cases := []string{
		`not json`,
		`"scalar"`,
		`[1,2,3]`,
	}
	for _, bad := range cases {
		tx := crdtTx("t", "k", bad)
		codes := make([]ledger.ValidationCode, 1)
		if _, err := e.MergeBlock(blockOf(tx), codes); err != nil {
			t.Fatalf("MergeBlock(%q) hard error: %v", bad, err)
		}
		if codes[0] != ledger.CodeInvalidCRDT {
			t.Errorf("code for %q = %v, want InvalidCRDT", bad, codes[0])
		}
	}
}

func TestMixedWritesInOneTransaction(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	tx := &ledger.Transaction{
		ID: "mixed",
		RWSet: rwset.ReadWriteSet{
			Writes: []rwset.Write{
				{Key: "plain", Value: []byte("raw")},
				{Key: "doc", Value: []byte(`{"l":["v"]}`), IsCRDT: true},
			},
		},
	}
	codes := make([]ledger.ValidationCode, 1)
	if _, err := e.MergeBlock(blockOf(tx), codes); err != nil {
		t.Fatal(err)
	}
	if codes[0] != ledger.CodeCRDTMerged {
		t.Fatalf("code = %v", codes[0])
	}
	if string(tx.RWSet.Writes[0].Value) != "raw" {
		t.Fatal("non-CRDT write of CRDT tx mutated")
	}
	got := decodeJSON(t, tx.RWSet.Writes[1].Value)
	if !reflect.DeepEqual(got["l"], []any{"v"}) {
		t.Fatalf("CRDT write = %v", got)
	}
}

func TestDeterministicAcrossEngines(t *testing.T) {
	// Two peers (two engines over distinct DBs) must produce
	// byte-identical documents for the same block sequence.
	mkBlock := func() *ledger.Block {
		return blockOf(
			crdtTx("t1", "dev", `{"r":[{"t":"1"}],"id":"dev-a"}`),
			crdtTx("t2", "dev", `{"r":[{"t":"2"}]}`),
			crdtTx("t3", "dev2", `{"x":["y"]}`),
		)
	}
	run := func() (map[string][]byte, [][]byte) {
		db := statedb.New()
		e := NewEngine(db, Options{})
		block := mkBlock()
		codes := make([]ledger.ValidationCode, 3)
		res, err := e.MergeBlock(block, codes)
		if err != nil {
			t.Fatal(err)
		}
		var values [][]byte
		for _, tx := range block.Transactions {
			values = append(values, tx.RWSet.Writes[0].Value)
		}
		return res.DocStates, values
	}
	s1, v1 := run()
	s2, v2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("doc states differ across peers")
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatal("rewritten write sets differ across peers")
	}
}

func TestSerializeOncePerKeyEquivalence(t *testing.T) {
	// The ablation option must not change results, only cost.
	mkBlock := func() *ledger.Block {
		txs := make([]*ledger.Transaction, 20)
		for i := range txs {
			txs[i] = crdtTx("t", "dev", `{"r":[{"t":"x"}]}`)
			txs[i].ID = txs[i].ID + string(rune('a'+i))
		}
		return blockOf(txs...)
	}
	run := func(once bool) [][]byte {
		db := statedb.New()
		e := NewEngine(db, Options{SerializeOncePerKey: once})
		block := mkBlock()
		codes := make([]ledger.ValidationCode, len(block.Transactions))
		if _, err := e.MergeBlock(block, codes); err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		for _, tx := range block.Transactions {
			out = append(out, tx.RWSet.Writes[0].Value)
		}
		return out
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("SerializeOncePerKey changed merge results")
	}
}

func TestLoadDoc(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	res, err := e.MergeBlock(blockOf(crdtTx("t1", "dev", `{"r":["a"]}`)), make([]ledger.ValidationCode, 1))
	if err != nil {
		t.Fatal(err)
	}
	batch := statedb.NewUpdateBatch()
	StageDocStates(batch, res)
	db.Apply(batch, rwset.Version{BlockNum: 1})

	doc, err := LoadDoc(db, "dev")
	if err != nil || doc == nil {
		t.Fatalf("LoadDoc = %v, %v", doc, err)
	}
	if got := doc.ToJSON(); !reflect.DeepEqual(got["r"], []any{"a"}) {
		t.Fatalf("loaded doc = %v", got)
	}
	missing, err := LoadDoc(db, "never-written")
	if err != nil || missing != nil {
		t.Fatalf("LoadDoc(missing) = %v, %v", missing, err)
	}
}

func TestCorruptPersistedStateSurfacesError(t *testing.T) {
	db := statedb.New()
	batch := statedb.NewUpdateBatch()
	batch.PutMeta(MetaPrefix+"dev", []byte("corrupt"))
	db.Apply(batch, rwset.Version{BlockNum: 1})
	e := NewEngine(db, Options{})
	_, err := e.MergeBlock(blockOf(crdtTx("t", "dev", `{"a":["x"]}`)), make([]ledger.ValidationCode, 1))
	if err == nil {
		t.Fatal("corrupt persisted document must surface an error")
	}
	if _, err := LoadDoc(db, "dev"); err == nil {
		t.Fatal("LoadDoc over corrupt state must error")
	}
}

// TestNoUpdateLossManyConflictingTxs is the paper's "no update loss"
// requirement at block scale: N transactions all appending to the same key
// in one block; the converged document contains all N readings in order.
func TestNoUpdateLossManyConflictingTxs(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	const n = 200
	txs := make([]*ledger.Transaction, n)
	for i := range txs {
		v, err := json.Marshal(map[string]any{"r": []any{map[string]any{"t": float64(i)}}})
		if err != nil {
			t.Fatal(err)
		}
		txs[i] = crdtTx("t"+string(rune(i)), "dev", string(v))
		txs[i].ID = "tx-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i%20))
	}
	codes := make([]ledger.ValidationCode, n)
	if _, err := e.MergeBlock(blockOf(txs...), codes); err != nil {
		t.Fatal(err)
	}
	got := decodeJSON(t, txs[n-1].RWSet.Writes[0].Value)
	readings := got["r"].([]any)
	if len(readings) != n {
		t.Fatalf("readings = %d, want %d (no update loss)", len(readings), n)
	}
	for i, r := range readings {
		if r.(map[string]any)["t"] != float64(i) {
			t.Fatalf("readings[%d] = %v (block order violated)", i, r)
		}
	}
}

func BenchmarkMergeBlock(b *testing.B) {
	for _, blockSize := range []int{25, 100, 400} {
		b.Run(benchName(blockSize), func(b *testing.B) {
			db := statedb.New()
			e := NewEngine(db, Options{})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				txs := make([]*ledger.Transaction, blockSize)
				for j := range txs {
					txs[j] = crdtTx("t", "dev", `{"r":[{"t":"21"}]}`)
				}
				codes := make([]ledger.ValidationCode, blockSize)
				if _, err := e.MergeBlock(blockOf(txs...), codes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(n int) string {
	return "blockSize=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
