package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"fabriccrdt/internal/crdt"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// typedTx builds a transaction writing one typed-CRDT delta.
func typedTx(t *testing.T, id, key string, c crdt.CRDT) *ledger.Transaction {
	t.Helper()
	state, err := c.StateJSON()
	if err != nil {
		t.Fatal(err)
	}
	return &ledger.Transaction{
		ID: id,
		RWSet: rwset.ReadWriteSet{
			Writes: []rwset.Write{{Key: key, Value: state, IsCRDT: true, CRDTType: c.TypeName()}},
		},
	}
}

// counterDelta builds a one-shot G-Counter increment bound to the tx ID.
func counterDelta(txID string, n uint64) *crdt.GCounter {
	c := crdt.NewGCounter()
	c.Increment(txID, n)
	return c
}

func commitMerge(t *testing.T, db *statedb.DB, e *Engine, blockNum uint64, txs ...*ledger.Transaction) []ledger.ValidationCode {
	t.Helper()
	block := &ledger.Block{Header: ledger.BlockHeader{Number: blockNum}, Transactions: txs}
	codes := make([]ledger.ValidationCode, len(txs))
	res, err := e.MergeBlock(block, codes)
	if err != nil {
		t.Fatal(err)
	}
	batch := statedb.NewUpdateBatch()
	for i, tx := range txs {
		if codes[i].Committed() {
			for _, w := range tx.RWSet.Writes {
				batch.Put(w.Key, w.Value, rwset.Version{BlockNum: blockNum, TxNum: uint64(i)})
			}
		}
	}
	StageDocStates(batch, res)
	db.Apply(batch, rwset.Version{BlockNum: blockNum})
	return codes
}

// TestTypedCounterMergesConflictingIncrements is the paper's §2.2
// grow-only-counter example running through the merge engine: three
// conflicting increments in one block all commit and sum.
func TestTypedCounterMergesConflictingIncrements(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	codes := commitMerge(t, db, e, 1,
		typedTx(t, "t1", "votes", counterDelta("t1", 3)),
		typedTx(t, "t2", "votes", counterDelta("t2", 4)),
		typedTx(t, "t3", "votes", counterDelta("t3", 5)),
	)
	for i, code := range codes {
		if code != ledger.CodeCRDTMerged {
			t.Fatalf("tx%d code = %v", i+1, code)
		}
	}
	vv, ok := db.Get("votes")
	if !ok {
		t.Fatal("votes not committed")
	}
	var total float64
	if err := json.Unmarshal(vv.Value, &total); err != nil {
		t.Fatal(err)
	}
	if total != 12 {
		t.Fatalf("counter = %v, want 12 (3+4+5, no lost increments)", total)
	}
}

func TestTypedCounterAccumulatesAcrossBlocks(t *testing.T) {
	db := statedb.New()
	// Even in the paper-literal fresh mode, typed state persists.
	e := NewEngine(db, Options{FreshDocPerBlock: true})
	commitMerge(t, db, e, 1, typedTx(t, "t1", "votes", counterDelta("t1", 10)))
	commitMerge(t, db, e, 2, typedTx(t, "t2", "votes", counterDelta("t2", 5)))
	vv, _ := db.Get("votes")
	var total float64
	if err := json.Unmarshal(vv.Value, &total); err != nil {
		t.Fatal(err)
	}
	if total != 15 {
		t.Fatalf("counter = %v, want 15 across blocks", total)
	}
	// The persisted state is inspectable.
	c, err := LoadTypedCRDT(db, "votes")
	if err != nil || c == nil {
		t.Fatalf("LoadTypedCRDT = %v, %v", c, err)
	}
	if c.(*crdt.GCounter).Sum() != 15 {
		t.Fatalf("loaded sum = %d", c.(*crdt.GCounter).Sum())
	}
}

func TestTypedORSetMerge(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	mkSet := func(txID string, add ...string) *crdt.ORSet {
		s := crdt.NewORSet()
		s.Bind(txID)
		for _, v := range add {
			s.Add(v)
		}
		return s
	}
	codes := commitMerge(t, db, e, 1,
		typedTx(t, "t1", "participants", mkSet("t1", "alice", "bob")),
		typedTx(t, "t2", "participants", mkSet("t2", "carol")),
	)
	if codes[0] != ledger.CodeCRDTMerged || codes[1] != ledger.CodeCRDTMerged {
		t.Fatalf("codes = %v", codes)
	}
	vv, _ := db.Get("participants")
	var members []string
	if err := json.Unmarshal(vv.Value, &members); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(members, []string{"alice", "bob", "carol"}) {
		t.Fatalf("members = %v", members)
	}
}

func TestTypedUnknownTypeFailsTx(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	tx := &ledger.Transaction{
		ID: "t1",
		RWSet: rwset.ReadWriteSet{
			Writes: []rwset.Write{{Key: "k", Value: []byte("{}"), IsCRDT: true, CRDTType: "no-such-type"}},
		},
	}
	codes := commitMerge(t, db, e, 1, tx)
	if codes[0] != ledger.CodeInvalidCRDT {
		t.Fatalf("code = %v, want INVALID_CRDT_VALUE", codes[0])
	}
}

func TestTypedBadStateFailsTx(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	tx := &ledger.Transaction{
		ID: "t1",
		RWSet: rwset.ReadWriteSet{
			Writes: []rwset.Write{{Key: "k", Value: []byte("not json"), IsCRDT: true, CRDTType: crdt.TypeGCounter}},
		},
	}
	codes := commitMerge(t, db, e, 1, tx)
	if codes[0] != ledger.CodeInvalidCRDT {
		t.Fatalf("code = %v", codes[0])
	}
}

func TestTypedTypeConflictWithinBlockFailsLaterTx(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	codes := commitMerge(t, db, e, 1,
		typedTx(t, "t1", "k", counterDelta("t1", 1)),
		typedTx(t, "t2", "k", func() *crdt.GSet { s := crdt.NewGSet(); s.Add("x"); return s }()),
	)
	if codes[0] != ledger.CodeCRDTMerged {
		t.Fatalf("first tx = %v", codes[0])
	}
	if codes[1] != ledger.CodeInvalidCRDT {
		t.Fatalf("conflicting-type tx = %v, want INVALID_CRDT_VALUE", codes[1])
	}
}

func TestTypedVsJSONConflictFailsLaterTx(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	jsonTx := crdtTx("tj", "k", `{"a":["x"]}`)
	typed := typedTx(t, "tt", "k", counterDelta("tt", 1))
	codes := commitMerge(t, db, e, 1, jsonTx, typed)
	if codes[0] != ledger.CodeCRDTMerged {
		t.Fatalf("json tx = %v", codes[0])
	}
	if codes[1] != ledger.CodeInvalidCRDT {
		t.Fatalf("typed-over-json tx = %v", codes[1])
	}
}

func TestTypedPersistedTypeMismatchFailsTx(t *testing.T) {
	db := statedb.New()
	e := NewEngine(db, Options{})
	commitMerge(t, db, e, 1, typedTx(t, "t1", "k", counterDelta("t1", 1)))
	// Next block writes the same key as a different datatype.
	set := crdt.NewGSet()
	set.Add("x")
	codes := commitMerge(t, db, e, 2, typedTx(t, "t2", "k", set))
	if codes[0] != ledger.CodeInvalidCRDT {
		t.Fatalf("code = %v, want INVALID_CRDT_VALUE", codes[0])
	}
}

func TestTypedCorruptPersistedStateIsHardError(t *testing.T) {
	db := statedb.New()
	batch := statedb.NewUpdateBatch()
	batch.PutMeta(TypedMetaPrefix+"k", []byte("corrupt"))
	db.Apply(batch, rwset.Version{BlockNum: 1})
	e := NewEngine(db, Options{})
	block := &ledger.Block{
		Header:       ledger.BlockHeader{Number: 2},
		Transactions: []*ledger.Transaction{typedTx(t, "t1", "k", counterDelta("t1", 1))},
	}
	if _, err := e.MergeBlock(block, make([]ledger.ValidationCode, 1)); err == nil {
		t.Fatal("corrupt persisted typed state must be a hard error")
	}
}

func TestLoadTypedCRDTMissing(t *testing.T) {
	db := statedb.New()
	c, err := LoadTypedCRDT(db, "never")
	if err != nil || c != nil {
		t.Fatalf("LoadTypedCRDT(missing) = %v, %v", c, err)
	}
}

// TestFreshModeShadowsEarlierBlocks pins the paper-literal anomaly that
// DESIGN.md §3 documents: with InitEmptyCRDT per block (FreshDocPerBlock),
// a later block's converged document OVERWRITES the world-state value, so
// earlier blocks' JSON CRDT updates survive only in the chain history. The
// library's default mode preserves them.
func TestFreshModeShadowsEarlierBlocks(t *testing.T) {
	readings := func(db *statedb.DB) int {
		vv, ok := db.Get("dev")
		if !ok {
			t.Fatal("dev missing")
		}
		var doc map[string]any
		if err := json.Unmarshal(vv.Value, &doc); err != nil {
			t.Fatal(err)
		}
		list, _ := doc["r"].([]any)
		return len(list)
	}
	run := func(fresh bool) int {
		db := statedb.New()
		e := NewEngine(db, Options{FreshDocPerBlock: fresh})
		commitMerge(t, db, e, 1, crdtTx("t1", "dev", `{"r":["a"]}`))
		commitMerge(t, db, e, 2, crdtTx("t2", "dev", `{"r":["b"]}`))
		return readings(db)
	}
	if got := run(true); got != 1 {
		t.Fatalf("fresh mode readings = %d, want 1 (block 2 shadows block 1)", got)
	}
	if got := run(false); got != 2 {
		t.Fatalf("seeded mode readings = %d, want 2 (no update loss)", got)
	}
}
