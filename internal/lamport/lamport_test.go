package lamport

import (
	"testing"
	"testing/quick"
)

func TestTickMonotonic(t *testing.T) {
	c := NewClock("p0")
	prev := c.Tick()
	for i := 0; i < 100; i++ {
		next := c.Tick()
		if !prev.Less(next) {
			t.Fatalf("tick %d not monotonic: %v !< %v", i, prev, next)
		}
		prev = next
	}
}

func TestWitnessAdvances(t *testing.T) {
	c := NewClock("p0")
	c.Tick()
	c.Witness(ID{Counter: 41, Replica: "p1"})
	got := c.Tick()
	if got.Counter != 42 {
		t.Fatalf("tick after witness(41) = %d, want 42", got.Counter)
	}
	// Witnessing an older ID must not regress the clock.
	c.Witness(ID{Counter: 3, Replica: "p9"})
	if got := c.Tick(); got.Counter != 43 {
		t.Fatalf("tick after stale witness = %d, want 43", got.Counter)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	cases := []struct {
		a, b ID
		want int
	}{
		{ID{1, "a"}, ID{2, "a"}, -1},
		{ID{2, "a"}, ID{1, "a"}, 1},
		{ID{1, "a"}, ID{1, "b"}, -1},
		{ID{1, "b"}, ID{1, "a"}, 1},
		{ID{1, "a"}, ID{1, "a"}, 0},
	}
	for _, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestMax(t *testing.T) {
	a, b := ID{1, "z"}, ID{2, "a"}
	if got := Max(a, b); got != b {
		t.Fatalf("Max = %v, want %v", got, b)
	}
	if got := Max(b, a); got != b {
		t.Fatalf("Max reversed = %v, want %v", got, b)
	}
}

func TestParseRoundTrip(t *testing.T) {
	ids := []ID{
		{Counter: 1, Replica: "p0"},
		{Counter: 18446744073709551615, Replica: "peer-with-dashes"},
		{Counter: 7, Replica: "org1.peer0"},
	}
	for _, id := range ids {
		got, err := Parse(id.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", id.String(), err)
		}
		if got != id {
			t.Fatalf("round trip %v -> %v", id, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "@", "@p0", "x@p0", "-1@p0", "12", "1.5@p0"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestTextMarshalRoundTrip(t *testing.T) {
	id := ID{Counter: 9, Replica: "p1"}
	b, err := id.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back ID
	if err := back.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("text round trip %v -> %v", id, back)
	}
}

func TestUnmarshalTextError(t *testing.T) {
	var id ID
	if err := id.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("want error for bogus text")
	}
}

func TestZero(t *testing.T) {
	var id ID
	if !id.IsZero() {
		t.Fatal("zero value must report IsZero")
	}
	if (ID{Counter: 1}).IsZero() || (ID{Replica: "p"}).IsZero() {
		t.Fatal("non-zero values must not report IsZero")
	}
}

// Property: Compare is antisymmetric and string order agrees with Compare on
// equal-counter IDs.
func TestCompareProperties(t *testing.T) {
	f := func(c1, c2 uint64, r1, r2 string) bool {
		a := ID{Counter: c1, Replica: r1}
		b := ID{Counter: c2, Replica: r2}
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		if Compare(a, a) != 0 || Compare(b, b) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: parse(string(id)) == id for all ids with '@'-free replicas.
func TestParseRoundTripProperty(t *testing.T) {
	f := func(counter uint64, replicaSeed uint8) bool {
		replica := "replica-" + string(rune('a'+replicaSeed%26))
		id := ID{Counter: counter, Replica: replica}
		back, err := Parse(id.String())
		return err == nil && back == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTick(b *testing.B) {
	c := NewClock("p0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Tick()
	}
}

func BenchmarkIDString(b *testing.B) {
	id := ID{Counter: 123456, Replica: "org1.peer0"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = id.String()
	}
}
