// Package lamport implements Lamport logical clocks and the globally unique,
// totally ordered operation identifiers built from them.
//
// FabricCRDT (Middleware '19, §5.2) assigns every JSON CRDT mutation an
// identifier drawn from a Lamport clock so that all peers — which observe the
// transactions of a block in the same order — derive identical identifiers
// and therefore identical merged documents.
package lamport

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ID is a Lamport timestamp: a (counter, replica) pair totally ordered first
// by counter and then by replica identifier. The zero value is "no ID".
type ID struct {
	// Counter is the logical-clock value at which the ID was issued.
	Counter uint64
	// Replica identifies the issuing replica. It must not contain '@'.
	Replica string
}

// IsZero reports whether id is the zero (absent) identifier.
func (id ID) IsZero() bool { return id.Counter == 0 && id.Replica == "" }

// Less reports whether id is ordered strictly before other.
func (id ID) Less(other ID) bool { return Compare(id, other) < 0 }

// Compare returns -1, 0 or +1 ordering a relative to b.
func Compare(a, b ID) int {
	switch {
	case a.Counter < b.Counter:
		return -1
	case a.Counter > b.Counter:
		return 1
	}
	return strings.Compare(a.Replica, b.Replica)
}

// Max returns the larger of a and b in the total order.
func Max(a, b ID) ID {
	if a.Less(b) {
		return b
	}
	return a
}

// String renders the ID as "counter@replica", the textual form used as a map
// key inside JSON CRDT documents.
func (id ID) String() string {
	return strconv.FormatUint(id.Counter, 10) + "@" + id.Replica
}

// ErrBadID reports a malformed textual identifier.
var ErrBadID = errors.New("lamport: malformed id")

// Parse parses the "counter@replica" form produced by ID.String.
func Parse(s string) (ID, error) {
	at := strings.IndexByte(s, '@')
	if at <= 0 {
		return ID{}, fmt.Errorf("%w: %q", ErrBadID, s)
	}
	n, err := strconv.ParseUint(s[:at], 10, 64)
	if err != nil {
		return ID{}, fmt.Errorf("%w: %q: %v", ErrBadID, s, err)
	}
	return ID{Counter: n, Replica: s[at+1:]}, nil
}

// MarshalText implements encoding.TextMarshaler.
func (id ID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *ID) UnmarshalText(b []byte) error {
	parsed, err := Parse(string(b))
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// Clock is a Lamport logical clock bound to one replica. The zero value is
// unusable; construct with NewClock. Clock is not safe for concurrent use.
type Clock struct {
	replica string
	counter uint64
}

// NewClock returns a clock for the given replica identifier.
func NewClock(replica string) *Clock {
	return &Clock{replica: replica}
}

// Replica returns the replica identifier the clock stamps IDs with.
func (c *Clock) Replica() string { return c.replica }

// Tick advances the clock and returns a fresh identifier.
func (c *Clock) Tick() ID {
	c.counter++
	return ID{Counter: c.counter, Replica: c.replica}
}

// Now returns the identifier of the most recent tick without advancing.
func (c *Clock) Now() ID {
	return ID{Counter: c.counter, Replica: c.replica}
}

// Counter returns the current counter value.
func (c *Clock) Counter() uint64 { return c.counter }

// Witness folds an observed remote identifier into the clock so that
// subsequent ticks are ordered after it (Lamport's receive rule).
func (c *Clock) Witness(id ID) {
	if id.Counter > c.counter {
		c.counter = id.Counter
	}
}

// Restore resets the counter, used when reloading persisted documents.
func (c *Clock) Restore(counter uint64) { c.counter = counter }
