package statedb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"fabriccrdt/internal/rwset"
)

// lsmBackend is the log-structured persistent backend: state lives in an
// in-memory memtable plus immutable sorted run files, so — unlike the
// log+map disk backend — neither open cost nor resident memory scales
// with the keyspace. Only the manifest, each run's footer/index/filter
// and the memtable are resident; data blocks are fetched on demand
// through a byte-budgeted LRU cache.
//
// On-disk layout inside the data directory:
//
//	wal.log        batch records appended since the last flush (same
//	               framed batch encoding as the disk backend's state.log)
//	run-NNNNNN.run immutable sorted runs (see lsm_run.go)
//	MANIFEST       one framed record naming the live runs plus the
//	               flushed height and live-key count
//
// Writes append to the WAL and the memtable; when the memtable outgrows
// MemtableBytes it is flushed: sorted into a new run (temp + fsync +
// rename), the manifest is atomically rewritten to include it, and the
// WAL is truncated. When the run count exceeds CompactRuns a background
// goroutine k-way merges every current run into one (newest value per
// key wins, tombstones dropped) and swaps the manifest.
//
// Crash discipline mirrors the disk backend: one Apply appends exactly
// one WAL frame, so a crash leaves at most a torn tail, truncated on
// open. Runs and the manifest are fsynced before the rename installing
// them, so a manifest-listed run is always intact; a run without a
// manifest reference is an orphan from a crash mid-flush, removed on
// open (its batches are still in the WAL). A stale WAL — crash between
// manifest install and WAL truncate — replays idempotently: re-applying
// a batch already in a run reproduces the same values and the same
// live-key count.
//
// Durability ordering vs the block log: Options.BeforeCompact runs
// before a flush or compaction installs a manifest (the point where
// state becomes durable), so the durable state can never get ahead of
// the durable chain.
type lsmBackend struct {
	dir  string
	opts LSMOptions

	mu       sync.RWMutex
	mem      map[string]runEntry // memtable, keyed by internal key
	memBytes int64
	runs     []*runReader // oldest first
	height   rwset.Version
	liveKeys int64 // live data keys, maintained incrementally (KeyCount is O(1))
	wal      *os.File
	walSize  int64
	nextSeq  uint64
	closed   bool
	// walBroken disables WAL appends after a failed one (the file may end
	// in a torn frame); flushes are disabled too, since flushing batches
	// the WAL never saw would let a later crash roll durable state back
	// below a run the manifest already references.
	walBroken bool
	// flushBroken stops retrying a failed flush on every block.
	flushBroken bool
	// compactBroken stops launching compactions after one failed.
	compactBroken bool
	compacting    bool
	// gen is bumped by Reset so an in-flight compaction from the old
	// contents abandons itself instead of installing stale runs.
	gen       uint64
	compactWG sync.WaitGroup

	// flushedHeight/flushedLiveKeys are what the manifest records: the
	// state as of the last flush (the WAL replays the rest on open).
	flushedHeight   rwset.Version
	flushedLiveKeys int64

	cache *blockCache

	// errMu guards applyErr separately from mu: reads holding only the
	// RLock must still be able to record block I/O errors.
	errMu    sync.Mutex
	applyErr error

	// I/O accounting surfaced via Stats (mu held for writes).
	appends     int64
	fsyncs      int64
	flushes     int64
	compactions int64
}

// LSMOptions tunes an LSM backend.
type LSMOptions struct {
	// MemtableBytes flushes the memtable to a sorted run once its resident
	// size exceeds this; <= 0 selects the 4 MiB default.
	MemtableBytes int64
	// CacheBytes budgets the decoded-block LRU cache; <= 0 selects the
	// 32 MiB default.
	CacheBytes int64
	// BlockBytes bounds one data block's payload within a run; <= 0
	// selects the 16 KiB default.
	BlockBytes int
	// CompactRuns launches a background full merge when the run count
	// exceeds this; <= 0 selects the default of 4.
	CompactRuns int
	// SyncEveryApply fsyncs the WAL after every batch (same trade-off as
	// DiskOptions.SyncEveryApply).
	SyncEveryApply bool
	// BeforeCompact, when set, runs right before a flush or compaction
	// installs a manifest — the point where state becomes durable. The
	// channel runtime uses it to fsync the peer's block store first. An
	// error aborts the flush/compaction; the WAL stays authoritative.
	BeforeCompact func() error
}

const (
	walFileName      = "wal.log"
	manifestFileName = "MANIFEST"

	defaultMemtableBytes = 4 << 20
	defaultCacheBytes    = 32 << 20
	defaultBlockBytes    = 16 << 10
	defaultCompactRuns   = 4

	manifestVersion = 1
)

func (o LSMOptions) normalized() LSMOptions {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = defaultMemtableBytes
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = defaultCacheBytes
	}
	if o.BlockBytes <= 0 {
		o.BlockBytes = defaultBlockBytes
	}
	if o.CompactRuns <= 0 {
		o.CompactRuns = defaultCompactRuns
	}
	return o
}

// Internal keys give data and metadata one shared sorted keyspace inside
// memtables and runs: a one-byte namespace prefix, 'd' or 'm'.
func dataKey(key string) string { return "d" + key }
func metaKey(key string) string { return "m" + key }

// dataKeyEnd maps a Range end bound to internal-key space; the empty end
// ("to the last key") becomes "e", which every data key sorts below.
func dataKeyEnd(end string) string {
	if end == "" {
		return "e"
	}
	return "d" + end
}

// OpenLSM opens (creating if needed) an LSM backend rooted at dir. The
// returned backend satisfies Durable.
func OpenLSM(dir string, opts LSMOptions) (Backend, error) {
	return openLSM(dir, opts)
}

// NewLSM returns a world state persisted under dir on the LSM backend
// with default options.
func NewLSM(dir string) (*DB, error) {
	return NewLSMWithOptions(dir, LSMOptions{})
}

// NewLSMWithOptions is NewLSM with explicit LSMOptions.
func NewLSMWithOptions(dir string, opts LSMOptions) (*DB, error) {
	b, err := openLSM(dir, opts)
	if err != nil {
		return nil, err
	}
	return NewWithBackend(b), nil
}

func openLSM(dir string, opts LSMOptions) (*lsmBackend, error) {
	if dir == "" {
		return nil, errors.New("statedb: LSM backend requires a data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statedb: creating data dir: %w", err)
	}
	// Refuse a directory holding a log+snapshot (disk backend) store:
	// opening it as LSM would silently present an empty state while the
	// real one sits in files this backend never reads.
	for _, name := range []string{logFileName, snapFileName} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return nil, fmt.Errorf("statedb: %s holds a disk-backend store (%s exists); refusing to open it as LSM", dir, name)
		}
	}
	b := &lsmBackend{
		dir:  dir,
		opts: opts.normalized(),
		mem:  make(map[string]runEntry),
	}
	b.cache = newBlockCache(b.opts.CacheBytes)
	if err := b.loadManifest(); err != nil {
		return nil, err
	}
	if err := b.removeOrphans(); err != nil {
		b.closeRuns()
		return nil, err
	}
	if err := b.openAndReplayWAL(); err != nil {
		b.closeRuns()
		return nil, err
	}
	return b, nil
}

func (b *lsmBackend) closeRuns() {
	for _, r := range b.runs {
		r.close()
	}
}

// loadManifest reads MANIFEST and opens every run it lists. A missing
// manifest means a fresh (or never-flushed) store; a corrupt one — or a
// missing/corrupt listed run — is refused, since runs and manifests are
// fsynced before installation and a legitimate crash cannot damage them.
func (b *lsmBackend) loadManifest() error {
	path := filepath.Join(b.dir, manifestFileName)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		b.nextSeq = 1
		return nil
	}
	if err != nil {
		return fmt.Errorf("statedb: reading manifest: %w", err)
	}
	var payloads [][]byte
	good, err := scanFrames(bytes.NewReader(raw), func(p []byte) error {
		payloads = append(payloads, p)
		return nil
	})
	if err != nil || good != int64(len(raw)) || len(payloads) != 1 {
		return fmt.Errorf("statedb: corrupt manifest %s", path)
	}
	height, liveKeys, seqs, err := decodeManifest(payloads[0])
	if err != nil {
		return fmt.Errorf("statedb: corrupt manifest %s: %w", path, err)
	}
	for _, seq := range seqs {
		r, err := openRun(filepath.Join(b.dir, runFileName(seq)), seq)
		if err != nil {
			b.closeRuns()
			return err
		}
		b.runs = append(b.runs, r)
		if seq >= b.nextSeq {
			b.nextSeq = seq + 1
		}
	}
	if b.nextSeq == 0 {
		b.nextSeq = 1
	}
	b.height, b.liveKeys = height, liveKeys
	b.flushedHeight, b.flushedLiveKeys = height, liveKeys
	return nil
}

// removeOrphans deletes leftover temp files and run files the manifest
// does not reference — debris from a crash between writing a run and
// installing the manifest (the WAL still holds those batches) or from an
// abandoned compaction.
func (b *lsmBackend) removeOrphans() error {
	listed := make(map[uint64]bool, len(b.runs))
	for _, r := range b.runs {
		listed[r.seq] = true
	}
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return fmt.Errorf("statedb: listing data dir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
		case strings.HasPrefix(name, "run-") && strings.HasSuffix(name, ".run"):
			seq, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "run-"), ".run"), 10, 64)
			if perr != nil || listed[seq] {
				continue
			}
			if seq >= b.nextSeq {
				b.nextSeq = seq + 1 // never reuse an orphan's sequence
			}
		default:
			continue
		}
		if err := os.Remove(filepath.Join(b.dir, name)); err != nil {
			return fmt.Errorf("statedb: removing orphan %s: %w", name, err)
		}
	}
	return nil
}

// openAndReplayWAL opens wal.log for append, replays every intact frame
// into the memtable and truncates a torn or corrupt tail — exactly the
// disk backend's log discipline.
func (b *lsmBackend) openAndReplayWAL() error {
	path := filepath.Join(b.dir, walFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("statedb: opening WAL: %w", err)
	}
	good, err := scanFrames(bufio.NewReader(f), func(payload []byte) error {
		updates, meta, height, derr := decodeBatch(payload)
		if derr != nil {
			return fmt.Errorf("record decode: %w", derr)
		}
		b.applyBatchLocked(updates, meta, height)
		return nil
	})
	if err != nil {
		if terr := f.Truncate(good); terr != nil {
			f.Close()
			return fmt.Errorf("statedb: truncating corrupt WAL tail: %w", terr)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("statedb: seeking WAL: %w", err)
	}
	b.wal = f
	b.walSize = good
	return nil
}

// Manifest payload encoding (framed like every other statedb record):
//
//	u8  manifest format version (1)
//	u64 flushed height.BlockNum, u64 height.TxNum
//	u64 live data-key count as of that height
//	u32 run count, then u64 sequence per run, oldest first (ascending)

func encodeManifest(height rwset.Version, liveKeys int64, seqs []uint64) []byte {
	buf := make([]byte, 0, 1+16+8+4+8*len(seqs))
	buf = append(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint64(buf, height.BlockNum)
	buf = binary.LittleEndian.AppendUint64(buf, height.TxNum)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(liveKeys))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(seqs)))
	for _, s := range seqs {
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	return buf
}

func decodeManifest(buf []byte) (rwset.Version, int64, []uint64, error) {
	d := &decoder{buf: buf}
	var height rwset.Version
	ver := d.u8()
	if d.err == nil && ver != manifestVersion {
		return height, 0, nil, fmt.Errorf("unsupported manifest version %d", ver)
	}
	height.BlockNum = d.u64()
	height.TxNum = d.u64()
	liveKeys := int64(d.u64())
	n := d.u32()
	if d.err == nil && int64(n)*8 > int64(len(buf)) {
		return rwset.Version{}, 0, nil, fmt.Errorf("manifest claims %d runs in %d bytes", n, len(buf))
	}
	seqs := make([]uint64, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		s := d.u64()
		if d.err == nil && len(seqs) > 0 && s <= seqs[len(seqs)-1] {
			return rwset.Version{}, 0, nil, errors.New("manifest run sequences are not ascending")
		}
		seqs = append(seqs, s)
	}
	if d.err != nil {
		return rwset.Version{}, 0, nil, d.err
	}
	if len(d.buf) != d.off {
		return rwset.Version{}, 0, nil, fmt.Errorf("manifest has %d trailing bytes", len(d.buf)-d.off)
	}
	return height, liveKeys, seqs, nil
}

// writeManifestLocked atomically replaces MANIFEST (temp + fsync +
// rename) with the given run list and flush point (mu held).
func (b *lsmBackend) writeManifestLocked(height rwset.Version, liveKeys int64, seqs []uint64) error {
	frame := frameRecord(encodeManifest(height, liveKeys, seqs))
	tmp := filepath.Join(b.dir, manifestFileName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("statedb: creating manifest temp: %w", err)
	}
	_, err = f.Write(frame)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statedb: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(b.dir, manifestFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statedb: installing manifest: %w", err)
	}
	b.fsyncs++
	return nil
}

// loadBlock fetches one data block through the LRU cache.
func (b *lsmBackend) loadBlock(r *runReader, i int) ([]runEntry, error) {
	off := r.index[i].off
	if entries, ok := b.cache.get(r.seq, off); ok {
		return entries, nil
	}
	entries, err := r.readBlock(i)
	if err != nil {
		return nil, err
	}
	b.cache.put(r.seq, off, entries)
	return entries, nil
}

// lookupLocked finds the newest record for an internal key: memtable
// first, then runs newest to oldest, each consulted only when its bloom
// filter cannot rule the key out. The bool reports whether any record —
// live or tombstone — exists. Read errors are recorded (fail-stop
// surface via Err/Close) and report "absent".
func (b *lsmBackend) lookupLocked(ikey string) (runEntry, bool) {
	if e, ok := b.mem[ikey]; ok {
		return e, true
	}
	h := bloomKeyHash(ikey)
	for i := len(b.runs) - 1; i >= 0; i-- {
		r := b.runs[i]
		if !r.filter.mayContain(h) {
			continue
		}
		e, ok, err := r.get(ikey, b.loadBlock)
		if err != nil {
			b.recordErr(err)
			return runEntry{}, false
		}
		if ok {
			return e, true
		}
	}
	return runEntry{}, false
}

func (b *lsmBackend) Get(key string) (VersionedValue, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.lookupLocked(dataKey(key))
	if !ok || e.tombstone {
		return VersionedValue{}, false
	}
	return VersionedValue{Value: e.value, Version: e.version}, true
}

func (b *lsmBackend) GetMeta(key string) []byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.lookupLocked(metaKey(key))
	if !ok || e.tombstone {
		return nil
	}
	return e.value
}

// memPut inserts or replaces one memtable entry, keeping byte accounting.
func (b *lsmBackend) memPut(e runEntry) {
	if old, ok := b.mem[e.ikey]; ok {
		b.memBytes -= int64(runEntrySize(old))
	}
	b.mem[e.ikey] = e
	b.memBytes += int64(runEntrySize(e))
}

// applyBatchLocked applies one batch to the memtable, maintaining the
// live-key count by probing for each key's prior existence (memtable,
// then bloom-filtered runs). Re-applying a batch already flushed into a
// run is idempotent — the probe sees the flushed record, so the count
// does not drift; that is what makes a stale WAL harmless. Called with
// mu held (or during open, before the backend is shared).
func (b *lsmBackend) applyBatchLocked(updates map[string]Update, meta map[string][]byte, height rwset.Version) {
	for key, u := range updates {
		ik := dataKey(key)
		prev, found := b.lookupLocked(ik)
		existed := found && !prev.tombstone
		if u.IsDelete {
			if existed {
				b.liveKeys--
			}
			b.memPut(runEntry{ikey: ik, tombstone: true, version: u.Version})
			continue
		}
		if !existed {
			b.liveKeys++
		}
		b.memPut(runEntry{ikey: ik, value: u.Value, version: u.Version})
	}
	for key, v := range meta {
		b.memPut(runEntry{ikey: metaKey(key), value: v})
	}
	b.height = height
}

// Apply durably appends the batch to the WAL, applies it to the memtable
// and flushes/compacts as thresholds demand. Failure semantics mirror
// the disk backend: errors are recorded (Err/Close), the in-memory
// update still happens, and the broken path is fail-stopped.
func (b *lsmBackend) Apply(updates map[string]Update, meta map[string][]byte, height rwset.Version) {
	payload := encodeBatch(updates, meta, height)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.closed:
		b.recordErr(ErrClosed)
	case b.walBroken:
		// Write path disabled by an earlier failed append.
	default:
		if len(payload) > maxRecordBytes {
			b.walBroken = true
			b.recordErr(fmt.Errorf("statedb: batch record of %d bytes exceeds the %d-byte record limit", len(payload), maxRecordBytes))
			break
		}
		n, err := b.wal.Write(frameRecord(payload))
		b.walSize += int64(n)
		if err != nil {
			b.walBroken = true
			b.recordErr(fmt.Errorf("statedb: appending to WAL: %w", err))
		} else {
			b.appends++
			if b.opts.SyncEveryApply {
				if err := b.wal.Sync(); err != nil {
					b.walBroken = true
					b.recordErr(err)
				} else {
					b.fsyncs++
				}
			}
		}
	}
	b.applyBatchLocked(updates, meta, height)
	if !b.closed && !b.walBroken && !b.flushBroken && b.memBytes > b.opts.MemtableBytes {
		if err := b.flushLocked(); err != nil {
			b.flushBroken = true
			b.recordErr(err)
		}
	}
	b.maybeCompactLocked()
}

// sortedMemEntries snapshots the memtable as a sorted entry slice.
func sortedMemEntries(mem map[string]runEntry) []runEntry {
	entries := make([]runEntry, 0, len(mem))
	for _, e := range mem {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ikey < entries[j].ikey })
	return entries
}

// flushLocked writes the memtable as a new sorted run, installs a
// manifest referencing it and truncates the WAL (mu held). Order
// matters: run fsync+rename, BeforeCompact hook, manifest install (the
// durability point), WAL truncate. A crash anywhere leaves either the
// old manifest + full WAL (the run is an orphan) or the new manifest +
// stale WAL (replayed idempotently).
func (b *lsmBackend) flushLocked() error {
	if len(b.mem) == 0 {
		return nil
	}
	seq := b.nextSeq
	path := filepath.Join(b.dir, runFileName(seq))
	if err := writeRun(path, sortedMemEntries(b.mem), b.opts.BlockBytes); err != nil {
		return err
	}
	b.fsyncs++ // writeRun's temp-file Sync
	fail := func(err error) error {
		os.Remove(path)
		return err
	}
	if b.opts.BeforeCompact != nil {
		if err := b.opts.BeforeCompact(); err != nil {
			return fail(fmt.Errorf("statedb: pre-flush hook: %w", err))
		}
	}
	r, err := openRun(path, seq)
	if err != nil {
		return fail(err)
	}
	seqs := make([]uint64, 0, len(b.runs)+1)
	for _, old := range b.runs {
		seqs = append(seqs, old.seq)
	}
	seqs = append(seqs, seq)
	if err := b.writeManifestLocked(b.height, b.liveKeys, seqs); err != nil {
		r.close()
		return fail(err)
	}
	b.nextSeq++
	b.runs = append(b.runs, r)
	b.flushedHeight, b.flushedLiveKeys = b.height, b.liveKeys
	b.mem = make(map[string]runEntry)
	b.memBytes = 0
	b.flushes++
	// The flushed batches are durable in the run; empty the WAL. If the
	// truncate fails the WAL goes stale permanently, so fail-stop both
	// log paths: appends (torn state) and flushes (a later flush-without-
	// WAL-coverage could make state diverge from any applied prefix).
	if err := b.wal.Truncate(0); err != nil {
		b.walBroken, b.flushBroken = true, true
		b.recordErr(fmt.Errorf("statedb: truncating WAL after flush: %w", err))
	} else if _, err := b.wal.Seek(0, io.SeekStart); err != nil {
		b.walBroken, b.flushBroken = true, true
		b.recordErr(fmt.Errorf("statedb: rewinding WAL after flush: %w", err))
	} else {
		b.walSize = 0
		// An emptied WAL has no torn tail: the append path is clean again.
		b.walBroken = false
	}
	return nil
}

// maybeCompactLocked launches one background compaction when the run
// count exceeds the threshold (mu held). The goroutine merges a captured
// snapshot of the current runs — immutable files, read without the lock —
// and installs the result under the lock, abandoning itself if a Reset
// or Close superseded it.
func (b *lsmBackend) maybeCompactLocked() {
	if b.compacting || b.closed || b.compactBroken || len(b.runs) <= b.opts.CompactRuns {
		return
	}
	b.compacting = true
	captured := append([]*runReader(nil), b.runs...)
	seq := b.nextSeq
	b.nextSeq++
	gen := b.gen
	b.compactWG.Add(1)
	go b.compactRuns(captured, seq, gen)
}

// mergeRunsToFile k-way merges the captured runs (newest wins) into one
// run at path, dropping tombstones — the captured set is the complete
// run list at launch, so nothing older can resurface. Reads bypass the
// block cache: a sequential merge would only evict hot blocks.
func (b *lsmBackend) mergeRunsToFile(runs []*runReader, path string) error {
	rawLoad := func(r *runReader, i int) ([]runEntry, error) { return r.readBlock(i) }
	sources := make([]entrySource, 0, len(runs))
	for i := len(runs) - 1; i >= 0; i-- { // newest first
		it, err := newRunIter(runs[i], "", "", rawLoad)
		if err != nil {
			return err
		}
		sources = append(sources, it)
	}
	var merged []runEntry
	err := mergeSources(sources, func(e runEntry) error {
		if !e.tombstone {
			merged = append(merged, e)
		}
		return nil
	})
	if err != nil {
		return err
	}
	return writeRun(path, merged, b.opts.BlockBytes)
}

// compactRuns is the background compaction body.
func (b *lsmBackend) compactRuns(captured []*runReader, seq uint64, gen uint64) {
	defer b.compactWG.Done()
	path := filepath.Join(b.dir, runFileName(seq))
	mergeErr := b.mergeRunsToFile(captured, path)

	b.mu.Lock()
	defer b.mu.Unlock()
	b.compacting = false
	if b.closed || b.gen != gen {
		os.Remove(path) // Reset/Close superseded this work
		return
	}
	abort := func(err error) {
		os.Remove(path)
		b.compactBroken = true
		b.recordErr(err)
	}
	if mergeErr != nil {
		abort(mergeErr)
		return
	}
	merged, err := openRun(path, seq)
	if err != nil {
		abort(err)
		return
	}
	if b.opts.BeforeCompact != nil {
		if err := b.opts.BeforeCompact(); err != nil {
			merged.close()
			abort(fmt.Errorf("statedb: pre-compaction hook: %w", err))
			return
		}
	}
	// Runs flushed since launch sit after the captured prefix; keep them.
	remaining := b.runs[len(captured):]
	seqs := make([]uint64, 0, 1+len(remaining))
	seqs = append(seqs, seq)
	for _, r := range remaining {
		seqs = append(seqs, r.seq)
	}
	if err := b.writeManifestLocked(b.flushedHeight, b.flushedLiveKeys, seqs); err != nil {
		merged.close()
		abort(err)
		return
	}
	b.fsyncs++ // the merged run's temp-file Sync in writeRun
	b.runs = append([]*runReader{merged}, remaining...)
	oldSeqs := make(map[uint64]bool, len(captured))
	for _, r := range captured {
		oldSeqs[r.seq] = true
		if err := r.close(); err != nil {
			b.recordErr(err)
		}
		if err := os.Remove(filepath.Join(b.dir, runFileName(r.seq))); err != nil {
			b.recordErr(err)
		}
	}
	b.cache.purge(oldSeqs)
	b.compactions++
}

// memRangeLocked snapshots memtable entries in [istart, iend) sorted by
// internal key, tombstones included (they shadow older run entries).
func (b *lsmBackend) memRangeLocked(istart, iend string) []runEntry {
	entries := make([]runEntry, 0)
	for ik, e := range b.mem {
		if ik >= istart && ik < iend {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ikey < entries[j].ikey })
	return entries
}

// Range k-way merges the memtable and every run over [start, end),
// newest record per key winning and tombstones dropped — ordered
// iteration without materializing the keyspace. The RLock is held for
// the whole scan, giving the whole-batch atomicity the Backend contract
// requires; installs (flush/compaction swaps) briefly wait on it.
func (b *lsmBackend) Range(start, end string) []KV {
	out := make([]KV, 0)
	if end != "" && end <= start {
		return out
	}
	istart, iend := dataKey(start), dataKeyEnd(end)
	b.mu.RLock()
	defer b.mu.RUnlock()
	sources := make([]entrySource, 0, len(b.runs)+1)
	sources = append(sources, newSliceIter(b.memRangeLocked(istart, iend)))
	for i := len(b.runs) - 1; i >= 0; i-- { // newest first
		it, err := newRunIter(b.runs[i], istart, iend, b.loadBlock)
		if err != nil {
			b.recordErr(err)
			return make([]KV, 0)
		}
		sources = append(sources, it)
	}
	err := mergeSources(sources, func(e runEntry) error {
		if e.tombstone {
			return nil
		}
		out = append(out, KV{Key: e.ikey[1:], VersionedValue: VersionedValue{Value: e.value, Version: e.version}})
		return nil
	})
	if err != nil {
		// A torn scan must not masquerade as a result (fail-stop surface
		// via Err/Close).
		b.recordErr(err)
		return make([]KV, 0)
	}
	return out
}

func (b *lsmBackend) KeyCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return int(b.liveKeys)
}

// PersistedHeight returns the height of the last batch that reached the
// store (zero for a fresh store).
func (b *lsmBackend) PersistedHeight() rwset.Version {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.height
}

// Stats reports WAL size and lifetime I/O counts, plus the LSM-specific
// run/flush/cache figures.
func (b *lsmBackend) Stats() Stats {
	hits, misses, _ := b.cache.counters()
	b.mu.RLock()
	defer b.mu.RUnlock()
	return Stats{
		LogBytes:    b.walSize,
		Appends:     b.appends,
		Fsyncs:      b.fsyncs,
		Compactions: b.compactions,
		Flushes:     b.flushes,
		Runs:        int64(len(b.runs)),
		CacheHits:   hits,
		CacheMisses: misses,
	}
}

func (b *lsmBackend) recordErr(err error) {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	if b.applyErr == nil {
		b.applyErr = err
	}
}

// Err returns the first error any operation recorded, if any — the
// fail-stop surface shared with the disk backend.
func (b *lsmBackend) Err() error {
	b.errMu.Lock()
	defer b.errMu.Unlock()
	return b.applyErr
}

// Reset drops all contents, in memory and on disk. It first waits out
// any in-flight compaction (bumping gen so the compaction abandons its
// result). On-disk order is crash-safe: truncate the WAL (the store
// falls back to the flushed state), remove the manifest (now empty),
// then the runs (orphans either way).
func (b *lsmBackend) Reset() {
	b.mu.Lock()
	b.gen++
	b.mu.Unlock()
	b.compactWG.Wait()

	b.mu.Lock()
	defer b.mu.Unlock()
	b.mem = make(map[string]runEntry)
	b.memBytes = 0
	b.height = rwset.Version{}
	b.liveKeys = 0
	b.flushedHeight = rwset.Version{}
	b.flushedLiveKeys = 0
	b.cache.purgeAll()
	if b.closed {
		return
	}
	broken := false
	if err := b.wal.Truncate(0); err != nil {
		broken = true
		b.recordErr(err)
	} else if _, err := b.wal.Seek(0, io.SeekStart); err != nil {
		broken = true
		b.recordErr(err)
	}
	b.walSize = 0
	if err := os.Remove(filepath.Join(b.dir, manifestFileName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		b.recordErr(err)
	}
	for _, r := range b.runs {
		r.close()
		if err := os.Remove(filepath.Join(b.dir, runFileName(r.seq))); err != nil {
			b.recordErr(err)
		}
	}
	b.runs = nil
	if !broken {
		// An emptied WAL has no torn tail: every write path is clean again
		// (the first error stays recorded for Err/Close).
		b.walBroken = false
		b.flushBroken = false
		b.compactBroken = false
	} else {
		b.walBroken = true
	}
}

// Close waits out any in-flight compaction, fsyncs and closes the WAL
// and run files, and returns the first recorded error.
func (b *lsmBackend) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return b.Err()
	}
	b.closed = true
	b.mu.Unlock()
	b.compactWG.Wait()

	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.wal.Sync(); err != nil {
		b.recordErr(err)
	} else {
		b.fsyncs++
	}
	if err := b.wal.Close(); err != nil {
		b.recordErr(err)
	}
	for _, r := range b.runs {
		if err := r.close(); err != nil {
			b.recordErr(err)
		}
	}
	return b.Err()
}
