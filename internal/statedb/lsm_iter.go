package statedb

import "sort"

// entrySource is one sorted stream of runEntries feeding the k-way merge:
// a memtable snapshot (sliceIter) or one run file (runIter).
type entrySource interface {
	// peek returns the current entry without consuming it; false when the
	// source is exhausted.
	peek() (runEntry, bool)
	// advance consumes the current entry. It reports block read/decode
	// errors (only runIter can fail).
	advance() error
}

// sliceIter iterates an already-sorted in-memory entry slice.
type sliceIter struct {
	entries []runEntry
	pos     int
}

func newSliceIter(entries []runEntry) *sliceIter { return &sliceIter{entries: entries} }

func (it *sliceIter) peek() (runEntry, bool) {
	if it.pos >= len(it.entries) {
		return runEntry{}, false
	}
	return it.entries[it.pos], true
}

func (it *sliceIter) advance() error { it.pos++; return nil }

// runIter iterates one run file's entries in [start, end) (end "" =
// unbounded), loading one block at a time through the cache hook — the
// whole run is never resident.
type runIter struct {
	r        *runReader
	load     func(*runReader, int) ([]runEntry, error)
	end      string
	blockIdx int
	block    []runEntry
	pos      int
	done     bool
}

// newRunIter positions an iterator at the first entry >= start.
func newRunIter(r *runReader, start, end string, load func(*runReader, int) ([]runEntry, error)) (*runIter, error) {
	it := &runIter{r: r, load: load, end: end}
	it.blockIdx = r.blockFor(start)
	if it.blockIdx < 0 {
		it.blockIdx = 0 // start sorts before the first block's first key
	}
	if it.blockIdx >= len(r.index) {
		it.done = true
		return it, nil
	}
	if err := it.loadCurrent(); err != nil {
		return nil, err
	}
	it.pos = sort.Search(len(it.block), func(i int) bool { return it.block[i].ikey >= start })
	if it.pos >= len(it.block) {
		// start lies past this block's last entry. The next block's first
		// key must exceed start (blockFor picked the last block whose first
		// key is <= start), so its position 0 is the answer.
		it.blockIdx++
		if it.blockIdx >= len(r.index) {
			it.done = true
			return it, nil
		}
		if err := it.loadCurrent(); err != nil {
			return nil, err
		}
	}
	if it.end != "" && it.pos < len(it.block) && it.block[it.pos].ikey >= it.end {
		it.done = true
	}
	return it, nil
}

func (it *runIter) loadCurrent() error {
	block, err := it.load(it.r, it.blockIdx)
	if err != nil {
		return err
	}
	it.block = block
	it.pos = 0
	return nil
}

func (it *runIter) peek() (runEntry, bool) {
	if it.done {
		return runEntry{}, false
	}
	if it.pos < len(it.block) {
		return it.block[it.pos], true
	}
	return runEntry{}, false
}

func (it *runIter) advance() error {
	if it.done {
		return nil
	}
	it.pos++
	if it.pos >= len(it.block) {
		it.blockIdx++
		if it.blockIdx >= len(it.r.index) {
			it.done = true
			return nil
		}
		if it.end != "" && it.r.index[it.blockIdx].firstKey >= it.end {
			it.done = true // the whole next block is past the bound
			return nil
		}
		if err := it.loadCurrent(); err != nil {
			it.done = true
			return err
		}
	}
	if it.end != "" && it.pos < len(it.block) && it.block[it.pos].ikey >= it.end {
		it.done = true
	}
	return nil
}

// mergeSources k-way merges sorted sources ordered newest-first: for each
// distinct key the entry from the lowest-indexed source that holds it wins
// (newer shadows older), and every source holding the key is advanced.
// Tombstones are passed through — callers decide whether to drop them
// (Range does; compaction of a full run set does too).
func mergeSources(sources []entrySource, emit func(runEntry) error) error {
	for {
		best := -1
		var bestKey string
		for i, src := range sources {
			e, ok := src.peek()
			if !ok {
				continue
			}
			if best == -1 || e.ikey < bestKey {
				best, bestKey = i, e.ikey
			}
		}
		if best == -1 {
			return nil
		}
		var winner runEntry
		taken := false
		for _, src := range sources {
			e, ok := src.peek()
			if !ok || e.ikey != bestKey {
				continue
			}
			if !taken {
				winner, taken = e, true
			}
			if err := src.advance(); err != nil {
				return err
			}
		}
		if err := emit(winner); err != nil {
			return err
		}
	}
}
