package statedb

import (
	"sort"
	"sync"

	"fabriccrdt/internal/rwset"
)

// shardedBackend spreads keys over N independently locked shards so
// endorsement-phase reads of one key stop contending with commit-phase
// writes of another. A commit groups updates by shard and holds every
// touched shard's lock for the whole batch, so scans and commits never
// interleave into a torn snapshot.
type shardedBackend struct {
	shards []*shard
}

type shard struct {
	mu   sync.RWMutex
	data map[string]VersionedValue
	meta map[string][]byte
}

func newShardedBackend(n int) *shardedBackend {
	if n < 2 {
		n = 2
	}
	b := &shardedBackend{shards: make([]*shard, n)}
	for i := range b.shards {
		b.shards[i] = &shard{
			data: make(map[string]VersionedValue),
			meta: make(map[string][]byte),
		}
	}
	return b
}

// fnv32a is FNV-1a inlined over the string to keep key hashing
// allocation-free on the read hot path (hash/fnv's interface escapes).
func fnv32a(key string) uint32 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

func (b *shardedBackend) shardIdx(key string) int {
	return int(fnv32a(key) % uint32(len(b.shards)))
}

func (b *shardedBackend) shardFor(key string) *shard {
	return b.shards[b.shardIdx(key)]
}

func (b *shardedBackend) Get(key string) (VersionedValue, bool) {
	s := b.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	vv, ok := s.data[key]
	return vv, ok
}

func (b *shardedBackend) GetMeta(key string) []byte {
	s := b.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.meta[key]
}

// Apply groups the batch by shard, then holds every touched shard's write
// lock — acquired in ascending shard order, matching Range's acquisition
// order so the two cannot deadlock — for the whole batch. Releasing shards
// one at a time would let a concurrent Range observe a torn cross-key
// snapshot that MVCC validation can never catch (range reads are not
// recorded into read sets).
func (b *shardedBackend) Apply(updates map[string]Update, meta map[string][]byte, _ rwset.Version) {
	type group struct {
		updates map[string]Update
		meta    map[string][]byte
	}
	groups := make(map[int]*group)
	grp := func(idx int) *group {
		g, ok := groups[idx]
		if !ok {
			g = &group{}
			groups[idx] = g
		}
		return g
	}
	for key, u := range updates {
		g := grp(b.shardIdx(key))
		if g.updates == nil {
			g.updates = make(map[string]Update)
		}
		g.updates[key] = u
	}
	for key, v := range meta {
		g := grp(b.shardIdx(key))
		if g.meta == nil {
			g.meta = make(map[string][]byte)
		}
		g.meta[key] = v
	}
	touched := make([]int, 0, len(groups))
	for idx := range groups {
		touched = append(touched, idx)
	}
	sort.Ints(touched)
	for _, idx := range touched {
		b.shards[idx].mu.Lock()
	}
	defer func() {
		for _, idx := range touched {
			b.shards[idx].mu.Unlock()
		}
	}()
	for _, idx := range touched {
		s, g := b.shards[idx], groups[idx]
		for key, u := range g.updates {
			if u.IsDelete {
				delete(s.data, key)
				continue
			}
			s.data[key] = VersionedValue{Value: u.Value, Version: u.Version}
		}
		for key, v := range g.meta {
			s.meta[key] = v
		}
	}
}

// Range holds every shard's read lock for the duration of the scan: range
// reads are not recorded into read sets (and so are invisible to MVCC
// validation), so a shard-at-a-time walk could surface a cross-key state
// that never existed. Point reads don't need this — each key's version is
// MVCC-checked at commit.
func (b *shardedBackend) Range(start, end string) []KV {
	for _, s := range b.shards {
		s.mu.RLock()
	}
	defer func() {
		for _, s := range b.shards {
			s.mu.RUnlock()
		}
	}()
	// Non-nil even when empty: every backend returns the same shape for an
	// empty scan (pinned by TestRangeConformance).
	out := make([]KV, 0)
	for _, s := range b.shards {
		for k, vv := range s.data {
			if k >= start && (end == "" || k < end) {
				out = append(out, KV{Key: k, VersionedValue: vv})
			}
		}
	}
	sortKVs(out)
	return out
}

func (b *shardedBackend) KeyCount() int {
	total := 0
	for _, s := range b.shards {
		s.mu.RLock()
		total += len(s.data)
		s.mu.RUnlock()
	}
	return total
}

func (b *shardedBackend) Reset() {
	for _, s := range b.shards {
		s.mu.Lock()
		s.data = make(map[string]VersionedValue)
		s.meta = make(map[string][]byte)
		s.mu.Unlock()
	}
}
