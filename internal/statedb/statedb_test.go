package statedb

import (
	"bytes"
	"sync"
	"testing"

	"fabriccrdt/internal/rwset"
)

func TestPutGet(t *testing.T) {
	db := New()
	batch := NewUpdateBatch()
	batch.Put("k", []byte("v"), rwset.Version{BlockNum: 1, TxNum: 0})
	db.Apply(batch, rwset.Version{BlockNum: 1})
	vv, ok := db.Get("k")
	if !ok || string(vv.Value) != "v" {
		t.Fatalf("Get = %+v, %v", vv, ok)
	}
	if vv.Version != (rwset.Version{BlockNum: 1, TxNum: 0}) {
		t.Fatalf("version = %v", vv.Version)
	}
}

func TestVersionOfMissingKeyIsZero(t *testing.T) {
	db := New()
	if v := db.Version("missing"); !v.IsZero() {
		t.Fatalf("version of missing key = %v, want zero", v)
	}
}

func TestDelete(t *testing.T) {
	db := New()
	b1 := NewUpdateBatch()
	b1.Put("k", []byte("v"), rwset.Version{BlockNum: 1})
	db.Apply(b1, rwset.Version{BlockNum: 1})
	b2 := NewUpdateBatch()
	b2.Delete("k", rwset.Version{BlockNum: 2})
	db.Apply(b2, rwset.Version{BlockNum: 2})
	if _, ok := db.Get("k"); ok {
		t.Fatal("key still present after delete")
	}
	if db.KeyCount() != 0 {
		t.Fatalf("KeyCount = %d", db.KeyCount())
	}
}

func TestHeightAdvances(t *testing.T) {
	db := New()
	if !db.Height().IsZero() {
		t.Fatal("fresh DB height must be zero")
	}
	db.Apply(NewUpdateBatch(), rwset.Version{BlockNum: 5})
	if db.Height() != (rwset.Version{BlockNum: 5}) {
		t.Fatalf("height = %v", db.Height())
	}
}

func TestBatchLastUpdateWins(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	b.Put("k", []byte("v1"), rwset.Version{BlockNum: 1, TxNum: 0})
	b.Put("k", []byte("v2"), rwset.Version{BlockNum: 1, TxNum: 3})
	if b.Len() != 1 {
		t.Fatalf("batch len = %d, want 1", b.Len())
	}
	db.Apply(b, rwset.Version{BlockNum: 1})
	vv, _ := db.Get("k")
	if string(vv.Value) != "v2" || vv.Version.TxNum != 3 {
		t.Fatalf("got %+v", vv)
	}
}

func TestMeta(t *testing.T) {
	db := New()
	if db.GetMeta("crdt/k") != nil {
		t.Fatal("missing meta must be nil")
	}
	b := NewUpdateBatch()
	b.PutMeta("crdt/k", []byte("docstate"))
	db.Apply(b, rwset.Version{BlockNum: 1})
	if !bytes.Equal(db.GetMeta("crdt/k"), []byte("docstate")) {
		t.Fatal("meta round trip failed")
	}
}

func TestGetRange(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	for _, k := range []string{"a", "b", "c", "d"} {
		b.Put(k, []byte(k), rwset.Version{BlockNum: 1})
	}
	db.Apply(b, rwset.Version{BlockNum: 1})
	kvs := db.GetRange("b", "d")
	if len(kvs) != 2 || kvs[0].Key != "b" || kvs[1].Key != "c" {
		t.Fatalf("range [b,d) = %+v", kvs)
	}
	all := db.GetRange("", "")
	if len(all) != 4 || all[0].Key != "a" || all[3].Key != "d" {
		t.Fatalf("full range = %+v", all)
	}
}

func TestReset(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	b.Put("k", []byte("v"), rwset.Version{BlockNum: 1})
	b.PutMeta("m", []byte("x"))
	db.Apply(b, rwset.Version{BlockNum: 1})
	db.Reset()
	if db.KeyCount() != 0 || db.GetMeta("m") != nil || !db.Height().IsZero() {
		t.Fatal("reset did not clear state")
	}
}

func TestConcurrentReadsDuringCommit(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := NewUpdateBatch()
				b.Put("k", []byte{byte(worker)}, rwset.Version{BlockNum: uint64(i)})
				db.Apply(b, rwset.Version{BlockNum: uint64(i)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.Get("k")
				db.Version("k")
				db.Height()
			}
		}()
	}
	wg.Wait()
}

func BenchmarkApplySmallBatch(b *testing.B) {
	db := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		batch := NewUpdateBatch()
		batch.Put("device-1", []byte(`{"t":21}`), rwset.Version{BlockNum: uint64(i)})
		db.Apply(batch, rwset.Version{BlockNum: uint64(i)})
	}
}
