package statedb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"sort"

	"fabriccrdt/internal/rwset"
)

// Sorted-run file format (the LSM backend's immutable on-disk unit):
//
//	[data block frame]...[filter frame][index frame][44-byte footer]
//
// Data blocks, the filter and the index are framed exactly like every
// other statedb record ([4B length][4B CRC32C][payload], see frameRecord),
// so a flipped bit anywhere is caught by a checksum. The fixed-size footer
// sits at EOF and carries its own CRC; open reads only the footer, the
// index and the filter — never the data blocks — so opening a run is O(1)
// in the number of entries.
//
// Runs are written to a temp file, fsynced and renamed into place before
// any manifest references them, so a manifest-listed run is either fully
// intact or evidence of external corruption (which open refuses, mirroring
// the disk backend's corrupt-snapshot refusal).
//
// Data block payload:
//
//	u32 entry count, then per entry:
//	    u8  flags (bit 0 = tombstone; other bits invalid)
//	    u32 key length, internal key bytes
//	    u64 version.BlockNum, u64 version.TxNum
//	    u32 value length, value bytes   (omitted for tombstones)
//
// Index payload: u32 block count, then per block
// u32 first-key length + bytes, u64 file offset, u32 framed length.
//
// Filter payload: u32 hash count (k), u64 bit count, bit bytes.

const (
	runFooterLen     = 44
	runMagic         = 0x4C534D31 // "LSM1"
	runFormatVersion = 1
)

// runEntry is one internal-keyed record inside a memtable or run. Internal
// keys carry a one-byte namespace prefix ('d' data, 'm' metadata) so both
// keyspaces share one sorted file (see dataKey/metaKey in lsm.go).
type runEntry struct {
	ikey      string
	tombstone bool
	version   rwset.Version
	value     []byte
}

// runEntrySize approximates the resident cost of one entry, used for
// memtable and block-cache accounting.
func runEntrySize(e runEntry) int {
	return len(e.ikey) + len(e.value) + 48
}

// runBlockMeta locates one data block within a run file.
type runBlockMeta struct {
	firstKey string
	off      int64
	flen     uint32
}

func runFileName(seq uint64) string { return fmt.Sprintf("run-%06d.run", seq) }

// encodeRunBlock encodes one data block payload. Entries must already be
// sorted by internal key (the writer flushes sorted memtables and merges
// sorted runs, so this holds by construction).
func encodeRunBlock(entries []runEntry) []byte {
	size := 4
	for _, e := range entries {
		size += 1 + 4 + len(e.ikey) + 16
		if !e.tombstone {
			size += 4 + len(e.value)
		}
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		var flags byte
		if e.tombstone {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = appendString(buf, e.ikey)
		buf = binary.LittleEndian.AppendUint64(buf, e.version.BlockNum)
		buf = binary.LittleEndian.AppendUint64(buf, e.version.TxNum)
		if !e.tombstone {
			buf = appendBytes(buf, e.value)
		}
	}
	return buf
}

// decodeRunBlock decodes one data block payload. It rejects unknown flag
// bits and trailing bytes, keeping the codec bijective: whatever decodes
// re-encodes to the identical bytes (pinned by FuzzRunDecode). Values are
// copied out of buf, so cached blocks never alias a read buffer.
func decodeRunBlock(buf []byte) ([]runEntry, error) {
	d := &decoder{buf: buf}
	n := d.u32()
	// A tombstone with an empty key — the smallest possible entry — still
	// takes 21 bytes, so reject implausible counts before allocating. (Any
	// input failing this would also fail the per-entry truncation checks;
	// the guard only bounds the allocation.)
	if d.err == nil && int64(n)*21 > int64(len(buf)) {
		return nil, fmt.Errorf("run block claims %d entries in %d bytes", n, len(buf))
	}
	entries := make([]runEntry, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		flags := d.u8()
		if d.err == nil && flags&^byte(1) != 0 {
			return nil, fmt.Errorf("run block entry has unknown flags %#x", flags)
		}
		e := runEntry{ikey: d.str(), tombstone: flags&1 != 0}
		e.version.BlockNum = d.u64()
		e.version.TxNum = d.u64()
		if !e.tombstone {
			e.value = d.bytes()
		}
		entries = append(entries, e)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("run block has %d trailing bytes", len(d.buf)-d.off)
	}
	return entries, nil
}

// bloomFilter is a classic split-hash bloom filter: k probe positions
// derived from one 64-bit FNV-1a hash via double hashing. ~10 bits and 7
// probes per key give a ~1% false-positive rate.
type bloomFilter struct {
	k    uint32
	m    uint64 // bit count
	bits []byte
}

func bloomKeyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

func buildBloom(hashes []uint64) bloomFilter {
	m := uint64(len(hashes)) * 10
	if m < 64 {
		m = 64
	}
	bl := bloomFilter{k: 7, m: m, bits: make([]byte, (m+7)/8)}
	for _, h := range hashes {
		bl.set(h)
	}
	return bl
}

func (bl bloomFilter) probe(h uint64, i uint32) uint64 {
	h1 := h & 0xFFFFFFFF
	h2 := (h >> 32) | 1 // odd, so probes cycle through distinct positions
	return (h1 + uint64(i)*h2) % bl.m
}

func (bl bloomFilter) set(h uint64) {
	for i := uint32(0); i < bl.k; i++ {
		p := bl.probe(h, i)
		bl.bits[p/8] |= 1 << (p % 8)
	}
}

func (bl bloomFilter) mayContain(h uint64) bool {
	for i := uint32(0); i < bl.k; i++ {
		p := bl.probe(h, i)
		if bl.bits[p/8]&(1<<(p%8)) == 0 {
			return false
		}
	}
	return true
}

func encodeBloom(bl bloomFilter) []byte {
	buf := make([]byte, 0, 12+len(bl.bits))
	buf = binary.LittleEndian.AppendUint32(buf, bl.k)
	buf = binary.LittleEndian.AppendUint64(buf, bl.m)
	return append(buf, bl.bits...)
}

func decodeBloom(buf []byte) (bloomFilter, error) {
	if len(buf) < 12 {
		return bloomFilter{}, fmt.Errorf("bloom filter record of %d bytes is too short", len(buf))
	}
	bl := bloomFilter{
		k: binary.LittleEndian.Uint32(buf[0:4]),
		m: binary.LittleEndian.Uint64(buf[4:12]),
	}
	if bl.k == 0 || bl.m == 0 || uint64(len(buf)-12) != (bl.m+7)/8 {
		return bloomFilter{}, fmt.Errorf("bloom filter dimensions k=%d m=%d do not match %d bit bytes", bl.k, bl.m, len(buf)-12)
	}
	bl.bits = buf[12:]
	return bl, nil
}

func encodeRunIndex(index []runBlockMeta) []byte {
	size := 4
	for _, m := range index {
		size += 4 + len(m.firstKey) + 8 + 4
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(index)))
	for _, m := range index {
		buf = appendString(buf, m.firstKey)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.off))
		buf = binary.LittleEndian.AppendUint32(buf, m.flen)
	}
	return buf
}

// decodeRunIndex decodes the block index, validating that every block lies
// wholly inside [0, dataEnd) and that first keys ascend — a corrupt index
// must be caught at open, not surface as silently wrong binary searches.
func decodeRunIndex(buf []byte, dataEnd int64) ([]runBlockMeta, error) {
	d := &decoder{buf: buf}
	n := d.u32()
	if d.err == nil && int64(n)*16 > int64(len(buf)) {
		return nil, fmt.Errorf("run index claims %d blocks in %d bytes", n, len(buf))
	}
	index := make([]runBlockMeta, 0, n)
	var prevEnd int64
	for i := uint32(0); i < n && d.err == nil; i++ {
		m := runBlockMeta{firstKey: d.str()}
		m.off = int64(d.u64())
		m.flen = d.u32()
		if d.err != nil {
			break
		}
		if m.off != prevEnd || m.flen <= frameHeaderLen || m.off+int64(m.flen) > dataEnd {
			return nil, fmt.Errorf("run index block %d spans [%d,+%d) outside the data region", i, m.off, m.flen)
		}
		if len(index) > 0 && m.firstKey <= index[len(index)-1].firstKey {
			return nil, fmt.Errorf("run index block %d first key is not ascending", i)
		}
		prevEnd = m.off + int64(m.flen)
		index = append(index, m)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("run index has %d trailing bytes", len(d.buf)-d.off)
	}
	if prevEnd != dataEnd {
		return nil, fmt.Errorf("run index covers %d of %d data bytes", prevEnd, dataEnd)
	}
	return index, nil
}

func encodeRunFooter(entryCount uint64, indexOff int64, indexLen uint32, filterOff int64, filterLen uint32) []byte {
	buf := make([]byte, runFooterLen)
	binary.LittleEndian.PutUint32(buf[0:4], runMagic)
	buf[4] = runFormatVersion
	binary.LittleEndian.PutUint64(buf[8:16], entryCount)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(indexOff))
	binary.LittleEndian.PutUint32(buf[24:28], indexLen)
	binary.LittleEndian.PutUint64(buf[28:36], uint64(filterOff))
	binary.LittleEndian.PutUint32(buf[36:40], filterLen)
	binary.LittleEndian.PutUint32(buf[40:44], crc32.Checksum(buf[:40], crcTable))
	return buf
}

// writeRun writes entries (sorted by internal key) as one run file via a
// temp file + fsync + rename, so the run either exists completely or not
// at all. blockBytes bounds each data block's payload size.
func writeRun(path string, entries []runEntry, blockBytes int) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("statedb: creating run temp: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}

	hashes := make([]uint64, len(entries))
	for i, e := range entries {
		hashes[i] = bloomKeyHash(e.ikey)
	}

	var off int64
	var index []runBlockMeta
	for start := 0; start < len(entries); {
		end, size := start, 0
		for end < len(entries) && (end == start || size < blockBytes) {
			size += runEntrySize(entries[end])
			end++
		}
		frame := frameRecord(encodeRunBlock(entries[start:end]))
		index = append(index, runBlockMeta{firstKey: entries[start].ikey, off: off, flen: uint32(len(frame))})
		if _, err := w.Write(frame); err != nil {
			return fail(fmt.Errorf("statedb: writing run block: %w", err))
		}
		off += int64(len(frame))
		start = end
	}

	filterFrame := frameRecord(encodeBloom(buildBloom(hashes)))
	filterOff := off
	if _, err := w.Write(filterFrame); err != nil {
		return fail(fmt.Errorf("statedb: writing run filter: %w", err))
	}
	off += int64(len(filterFrame))

	indexFrame := frameRecord(encodeRunIndex(index))
	indexOff := off
	if _, err := w.Write(indexFrame); err != nil {
		return fail(fmt.Errorf("statedb: writing run index: %w", err))
	}

	footer := encodeRunFooter(uint64(len(entries)), indexOff, uint32(len(indexFrame)), filterOff, uint32(len(filterFrame)))
	if _, err := w.Write(footer); err != nil {
		return fail(fmt.Errorf("statedb: writing run footer: %w", err))
	}
	if err := w.Flush(); err != nil {
		return fail(fmt.Errorf("statedb: flushing run: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("statedb: syncing run: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statedb: closing run temp: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statedb: installing run: %w", err)
	}
	return nil
}

// runReader serves reads from one immutable run file. Only the footer, the
// block index and the bloom filter are resident; data blocks are fetched
// with ReadAt (and usually served from the LSM's block cache), so open
// cost and memory are independent of the entry count.
type runReader struct {
	seq        uint64
	f          *os.File
	entryCount uint64
	index      []runBlockMeta
	filter     bloomFilter
}

// openRun opens a run file and loads its footer, index and filter. Any
// inconsistency is an error: manifest-listed runs were fsynced before the
// manifest referenced them, so a legitimate crash cannot corrupt one.
func openRun(path string, seq uint64) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("statedb: opening run: %w", err)
	}
	r, err := loadRun(f, seq)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("statedb: corrupt run %s: %w", path, err)
	}
	return r, nil
}

func loadRun(f *os.File, seq uint64) (*runReader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < runFooterLen {
		return nil, fmt.Errorf("file of %d bytes is smaller than the footer", size)
	}
	footer := make([]byte, runFooterLen)
	if _, err := f.ReadAt(footer, size-runFooterLen); err != nil {
		return nil, fmt.Errorf("reading footer: %w", err)
	}
	if got := crc32.Checksum(footer[:40], crcTable); got != binary.LittleEndian.Uint32(footer[40:44]) {
		return nil, fmt.Errorf("footer CRC mismatch")
	}
	if magic := binary.LittleEndian.Uint32(footer[0:4]); magic != runMagic {
		return nil, fmt.Errorf("bad magic %#x", magic)
	}
	if footer[4] != runFormatVersion {
		return nil, fmt.Errorf("unsupported run format version %d", footer[4])
	}
	entryCount := binary.LittleEndian.Uint64(footer[8:16])
	indexOff := int64(binary.LittleEndian.Uint64(footer[16:24]))
	indexLen := binary.LittleEndian.Uint32(footer[24:28])
	filterOff := int64(binary.LittleEndian.Uint64(footer[28:36]))
	filterLen := binary.LittleEndian.Uint32(footer[36:40])
	if filterOff < 0 || indexOff != filterOff+int64(filterLen) || indexOff+int64(indexLen)+runFooterLen != size {
		return nil, fmt.Errorf("footer regions do not tile the file")
	}

	filterPayload, err := readFrameAt(f, filterOff, filterLen)
	if err != nil {
		return nil, fmt.Errorf("filter: %w", err)
	}
	filter, err := decodeBloom(filterPayload)
	if err != nil {
		return nil, err
	}
	indexPayload, err := readFrameAt(f, indexOff, indexLen)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	index, err := decodeRunIndex(indexPayload, filterOff)
	if err != nil {
		return nil, err
	}
	return &runReader{seq: seq, f: f, entryCount: entryCount, index: index, filter: filter}, nil
}

// readFrameAt reads one framed record of known framed length at off,
// verifying the length prefix and checksum.
func readFrameAt(f *os.File, off int64, flen uint32) ([]byte, error) {
	if flen <= frameHeaderLen {
		return nil, fmt.Errorf("framed length %d is too short", flen)
	}
	buf := make([]byte, flen)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("reading frame at %d: %w", off, err)
	}
	length := binary.LittleEndian.Uint32(buf[0:4])
	if length != flen-frameHeaderLen {
		return nil, fmt.Errorf("frame at %d declares %d payload bytes, expected %d", off, length, flen-frameHeaderLen)
	}
	payload := buf[frameHeaderLen:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, fmt.Errorf("frame CRC mismatch at %d", off)
	}
	return payload, nil
}

func (r *runReader) close() error { return r.f.Close() }

// readBlock fetches and decodes data block i straight from the file
// (callers go through the LSM block cache; this is the miss path).
func (r *runReader) readBlock(i int) ([]runEntry, error) {
	m := r.index[i]
	payload, err := readFrameAt(r.f, m.off, m.flen)
	if err != nil {
		return nil, fmt.Errorf("statedb: run %d block %d: %w", r.seq, i, err)
	}
	entries, err := decodeRunBlock(payload)
	if err != nil {
		return nil, fmt.Errorf("statedb: run %d block %d: %w", r.seq, i, err)
	}
	return entries, nil
}

// blockFor returns the index of the block that could contain ikey, or -1
// when ikey sorts before the first block.
func (r *runReader) blockFor(ikey string) int {
	return sort.Search(len(r.index), func(j int) bool { return r.index[j].firstKey > ikey }) - 1
}

// get returns the entry stored for ikey, using load to fetch blocks (the
// cache hook). The bool reports whether a record — live or tombstone —
// exists in this run.
func (r *runReader) get(ikey string, load func(*runReader, int) ([]runEntry, error)) (runEntry, bool, error) {
	i := r.blockFor(ikey)
	if i < 0 {
		return runEntry{}, false, nil
	}
	block, err := load(r, i)
	if err != nil {
		return runEntry{}, false, err
	}
	j := sort.Search(len(block), func(k int) bool { return block[k].ikey >= ikey })
	if j < len(block) && block[j].ikey == ikey {
		return block[j], true, nil
	}
	return runEntry{}, false, nil
}
