// Package statedb implements the world state database: a versioned
// key-value store standing in for the CouchDB instance each Fabric peer
// runs. Executing all valid transactions from the genesis block forward
// yields the current contents (paper §2.1); every value carries the
// (block, tx) version MVCC validation compares against.
//
// A separate metadata space holds FabricCRDT's persisted JSON CRDT document
// states, keeping CRDT bookkeeping invisible to chaincode reads.
package statedb

import (
	"sort"
	"sync"

	"fabriccrdt/internal/rwset"
)

// VersionedValue is a stored value with its commit version.
type VersionedValue struct {
	Value   []byte
	Version rwset.Version
}

// DB is one peer's world state. It is safe for concurrent use: endorsement
// reads proceed while block commits write.
type DB struct {
	mu   sync.RWMutex
	data map[string]VersionedValue
	meta map[string][]byte
	// height is the version of the last committed block.
	height rwset.Version
}

// New returns an empty world state.
func New() *DB {
	return &DB{
		data: make(map[string]VersionedValue),
		meta: make(map[string][]byte),
	}
}

// Get returns the value stored at key.
func (db *DB) Get(key string) (VersionedValue, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	vv, ok := db.data[key]
	return vv, ok
}

// Version returns the commit version of key, or the zero Version when the
// key is absent — precisely what a chaincode read records into the read set.
func (db *DB) Version(key string) rwset.Version {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.data[key].Version
}

// Height returns the version of the most recent commit.
func (db *DB) Height() rwset.Version {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.height
}

// KeyCount returns the number of live keys.
func (db *DB) KeyCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.data)
}

// Update is one key mutation within a batch.
type Update struct {
	Value    []byte
	IsDelete bool
	Version  rwset.Version
}

// UpdateBatch is an ordered set of key mutations produced by validating one
// block. Later updates of the same key overwrite earlier ones, mirroring
// Fabric's commit of the last valid write per key.
type UpdateBatch struct {
	updates map[string]Update
	metaPut map[string][]byte
}

// NewUpdateBatch returns an empty batch.
func NewUpdateBatch() *UpdateBatch {
	return &UpdateBatch{
		updates: make(map[string]Update),
		metaPut: make(map[string][]byte),
	}
}

// Put stages a value write.
func (b *UpdateBatch) Put(key string, value []byte, version rwset.Version) {
	b.updates[key] = Update{Value: value, Version: version}
}

// Delete stages a key deletion.
func (b *UpdateBatch) Delete(key string, version rwset.Version) {
	b.updates[key] = Update{IsDelete: true, Version: version}
}

// PutMeta stages a metadata write (e.g. a persisted CRDT document).
func (b *UpdateBatch) PutMeta(key string, value []byte) {
	b.metaPut[key] = value
}

// Len returns the number of staged key mutations.
func (b *UpdateBatch) Len() int { return len(b.updates) }

// Apply commits the batch atomically, advancing the DB height.
func (db *DB) Apply(batch *UpdateBatch, height rwset.Version) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for key, u := range batch.updates {
		if u.IsDelete {
			delete(db.data, key)
			continue
		}
		db.data[key] = VersionedValue{Value: u.Value, Version: u.Version}
	}
	for key, v := range batch.metaPut {
		db.meta[key] = v
	}
	db.height = height
}

// GetMeta returns a metadata value (nil when absent).
func (db *DB) GetMeta(key string) []byte {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.meta[key]
}

// KV is a key with its stored value, returned by range scans.
type KV struct {
	Key string
	VersionedValue
}

// GetRange returns all keys in [start, end) in sorted order; an empty end
// means "to the last key". It stands in for CouchDB range queries used by
// chaincodes.
func (db *DB) GetRange(start, end string) []KV {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]string, 0, len(db.data))
	for k := range db.data {
		if k >= start && (end == "" || k < end) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]KV, len(keys))
	for i, k := range keys {
		out[i] = KV{Key: k, VersionedValue: db.data[k]}
	}
	return out
}

// Reset drops all contents; used when a peer rebuilds state by replaying
// the blockchain.
func (db *DB) Reset() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.data = make(map[string]VersionedValue)
	db.meta = make(map[string][]byte)
	db.height = rwset.Version{}
}
