// Package statedb implements the world state database: a versioned
// key-value store standing in for the CouchDB instance each Fabric peer
// runs. Executing all valid transactions from the genesis block forward
// yields the current contents (paper §2.1); every value carries the
// (block, tx) version MVCC validation compares against.
//
// A separate metadata space holds FabricCRDT's persisted JSON CRDT document
// states, keeping CRDT bookkeeping invisible to chaincode reads.
//
// Storage lives behind the Backend interface: New returns the trivial
// single-lock map backend, NewSharded a backend with per-shard locks so
// endorsement reads stop contending with commit writes, and NewDisk a
// persistent backend — an append-only CRC-framed record log plus periodic
// snapshot compaction — whose contents and last-committed block height
// survive restarts, so a reopened peer resumes from where it stopped
// instead of replaying the chain (DESIGN.md §4). NewLSM is the second
// persistent backend: a log-structured store (memtable + sorted runs +
// bloom filters + block cache, docs/STATEDB.md) whose open cost and
// resident memory do not scale with the keyspace, for state larger than
// RAM.
//
// Even durable, the world state is only a cache: the ledger's durable
// block store (internal/blockstore, on by default beside a disk-backed
// state) is the recovery root it can always be rebuilt from (DESIGN.md
// §8, docs/PERSISTENCE.md).
package statedb

import (
	"sort"
	"sync"

	"fabriccrdt/internal/rwset"
)

// VersionedValue is a stored value with its commit version.
type VersionedValue struct {
	Value   []byte
	Version rwset.Version
}

// DB is one peer's world state. It is safe for concurrent use: endorsement
// reads proceed while block commits write.
type DB struct {
	backend Backend

	// height is the version of the last committed block, tracked here so
	// every backend gets it for free.
	heightMu sync.RWMutex
	height   rwset.Version
}

// New returns an empty world state on the trivial single-lock backend.
func New() *DB {
	return &DB{backend: newMapBackend()}
}

// NewSharded returns an empty world state on a backend with the given
// number of independently locked shards (values < 2 fall back to 2).
func NewSharded(shards int) *DB {
	return &DB{backend: newShardedBackend(shards)}
}

// NewWithBackend returns a world state over a caller-provided backend.
// If the backend is Durable, the DB starts at its persisted height, so a
// reopened store reports the height of the last durably committed block.
func NewWithBackend(b Backend) *DB {
	db := &DB{backend: b}
	if d, ok := b.(Durable); ok {
		db.height = d.PersistedHeight()
	}
	return db
}

// Close releases a durable backend (no-op for in-memory backends),
// returning any write error the backend had deferred.
func (db *DB) Close() error {
	if d, ok := db.backend.(Durable); ok {
		return d.Close()
	}
	return nil
}

// Get returns the value stored at key.
func (db *DB) Get(key string) (VersionedValue, bool) {
	return db.backend.Get(key)
}

// Version returns the commit version of key, or the zero Version when the
// key is absent — precisely what a chaincode read records into the read set.
func (db *DB) Version(key string) rwset.Version {
	vv, _ := db.backend.Get(key)
	return vv.Version
}

// Height returns the version of the most recent commit.
func (db *DB) Height() rwset.Version {
	db.heightMu.RLock()
	defer db.heightMu.RUnlock()
	return db.height
}

// KeyCount returns the number of live keys.
func (db *DB) KeyCount() int {
	return db.backend.KeyCount()
}

// Stats is a durable backend's I/O accounting, scraped into the obs
// metrics endpoint: current log size plus lifetime append/fsync/compaction
// counts. The LSM backend additionally reports flush counts, the live run
// count and block-cache hit/miss totals (zero for the disk backend, which
// has no runs or cache).
type Stats struct {
	LogBytes    int64
	Appends     int64
	Fsyncs      int64
	Compactions int64
	Flushes     int64
	Runs        int64
	CacheHits   int64
	CacheMisses int64
}

// Stats reports the backend's I/O accounting; false for backends without
// one (the in-memory backends).
func (db *DB) Stats() (Stats, bool) {
	if s, ok := db.backend.(interface{ Stats() Stats }); ok {
		return s.Stats(), true
	}
	return Stats{}, false
}

// Update is one key mutation within a batch.
type Update struct {
	Value    []byte
	IsDelete bool
	Version  rwset.Version
}

// UpdateBatch is an ordered set of key mutations produced by validating one
// block. Later updates of the same key overwrite earlier ones, mirroring
// Fabric's commit of the last valid write per key.
type UpdateBatch struct {
	updates map[string]Update
	metaPut map[string][]byte
}

// NewUpdateBatch returns an empty batch.
func NewUpdateBatch() *UpdateBatch {
	return &UpdateBatch{
		updates: make(map[string]Update),
		metaPut: make(map[string][]byte),
	}
}

// Put stages a value write.
func (b *UpdateBatch) Put(key string, value []byte, version rwset.Version) {
	b.updates[key] = Update{Value: value, Version: version}
}

// Delete stages a key deletion.
func (b *UpdateBatch) Delete(key string, version rwset.Version) {
	b.updates[key] = Update{IsDelete: true, Version: version}
}

// PutMeta stages a metadata write (e.g. a persisted CRDT document).
func (b *UpdateBatch) PutMeta(key string, value []byte) {
	b.metaPut[key] = value
}

// Len returns the number of staged key mutations.
func (b *UpdateBatch) Len() int { return len(b.updates) }

// Apply commits the batch, advancing the DB height. Durable backends also
// persist the height, making it the restart-resume point.
func (db *DB) Apply(batch *UpdateBatch, height rwset.Version) {
	db.backend.Apply(batch.updates, batch.metaPut, height)
	db.heightMu.Lock()
	db.height = height
	db.heightMu.Unlock()
}

// GetMeta returns a metadata value (nil when absent).
func (db *DB) GetMeta(key string) []byte {
	return db.backend.GetMeta(key)
}

// KV is a key with its stored value, returned by range scans.
type KV struct {
	Key string
	VersionedValue
}

// GetRange returns all keys in [start, end) in sorted order; an empty end
// means "to the last key". It stands in for CouchDB range queries used by
// chaincodes.
func (db *DB) GetRange(start, end string) []KV {
	return db.backend.Range(start, end)
}

// Reset drops all contents; used when a peer rebuilds state by replaying
// the blockchain.
func (db *DB) Reset() {
	db.backend.Reset()
	db.heightMu.Lock()
	db.height = rwset.Version{}
	db.heightMu.Unlock()
}

// sortKVs orders range-scan results by key.
func sortKVs(kvs []KV) {
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
}
