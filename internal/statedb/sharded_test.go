package statedb

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"fabriccrdt/internal/rwset"
)

// TestShardedMatchesTrivialBackend drives both backends through the same
// randomized batch sequence and requires identical observable state.
func TestShardedMatchesTrivialBackend(t *testing.T) {
	trivial := New()
	sharded := NewSharded(8)
	rng := rand.New(rand.NewSource(7))
	for blk := uint64(1); blk <= 50; blk++ {
		batch := NewUpdateBatch()
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(40))
			switch rng.Intn(3) {
			case 0:
				batch.Delete(key, rwset.Version{BlockNum: blk})
			case 1:
				batch.Put(key, []byte(fmt.Sprintf("v%d-%d", blk, i)), rwset.Version{BlockNum: blk, TxNum: uint64(i)})
			case 2:
				batch.PutMeta("crdt/"+key, []byte(fmt.Sprintf("m%d", blk)))
			}
		}
		trivial.Apply(batch, rwset.Version{BlockNum: blk})
		sharded.Apply(batch, rwset.Version{BlockNum: blk})
	}
	if a, b := trivial.GetRange("", ""), sharded.GetRange("", ""); !reflect.DeepEqual(a, b) {
		t.Fatalf("full range diverged:\ntrivial %v\nsharded %v", a, b)
	}
	if a, b := trivial.GetRange("k1", "k3"), sharded.GetRange("k1", "k3"); !reflect.DeepEqual(a, b) {
		t.Fatalf("sub range diverged:\ntrivial %v\nsharded %v", a, b)
	}
	if trivial.KeyCount() != sharded.KeyCount() {
		t.Fatalf("key counts diverged: %d vs %d", trivial.KeyCount(), sharded.KeyCount())
	}
	if trivial.Height() != sharded.Height() {
		t.Fatalf("heights diverged")
	}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("k%d", i)
		av, aok := trivial.Get(key)
		bv, bok := sharded.Get(key)
		if aok != bok || !bytes.Equal(av.Value, bv.Value) || av.Version != bv.Version {
			t.Errorf("Get(%q) diverged: %+v/%v vs %+v/%v", key, av, aok, bv, bok)
		}
		if !bytes.Equal(trivial.GetMeta("crdt/"+key), sharded.GetMeta("crdt/"+key)) {
			t.Errorf("GetMeta(%q) diverged", key)
		}
	}
}

func TestShardedReset(t *testing.T) {
	db := NewSharded(4)
	batch := NewUpdateBatch()
	batch.Put("k", []byte("v"), rwset.Version{BlockNum: 1})
	batch.PutMeta("m", []byte("x"))
	db.Apply(batch, rwset.Version{BlockNum: 1})
	db.Reset()
	if db.KeyCount() != 0 || db.GetMeta("m") != nil || !db.Height().IsZero() {
		t.Fatal("reset did not clear state")
	}
}

func TestShardedTinyShardCountFallsBack(t *testing.T) {
	for _, n := range []int{-1, 0, 1} {
		db := NewSharded(n)
		batch := NewUpdateBatch()
		batch.Put("k", []byte("v"), rwset.Version{BlockNum: 1})
		db.Apply(batch, rwset.Version{BlockNum: 1})
		if _, ok := db.Get("k"); !ok {
			t.Fatalf("NewSharded(%d) unusable", n)
		}
	}
}

// TestShardedConcurrentReadsDuringCommit mirrors the trivial backend's
// concurrency test: reads must never race with batch applies.
func TestShardedConcurrentReadsDuringCommit(t *testing.T) {
	db := NewSharded(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := NewUpdateBatch()
				for k := 0; k < 8; k++ {
					b.Put(fmt.Sprintf("k%d", k), []byte{byte(worker)}, rwset.Version{BlockNum: uint64(i)})
				}
				db.Apply(b, rwset.Version{BlockNum: uint64(i)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.Get("k1")
				db.Version("k2")
				db.Height()
				db.GetRange("", "")
				db.KeyCount()
			}
		}()
	}
	wg.Wait()
}

// TestShardedRangeSeesNoTornCommit hammers Apply (every batch rewrites all
// keys to one tag) against concurrent full-range scans: every scan must see
// all keys carrying the same tag — never a half-applied batch.
func TestShardedRangeSeesNoTornCommit(t *testing.T) {
	db := NewSharded(8)
	const keys = 32
	seed := NewUpdateBatch()
	for k := 0; k < keys; k++ {
		seed.Put(fmt.Sprintf("k%02d", k), []byte("tag0"), rwset.Version{BlockNum: 1})
	}
	db.Apply(seed, rwset.Version{BlockNum: 1})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for blk := uint64(2); blk < 300; blk++ {
			batch := NewUpdateBatch()
			tag := []byte(fmt.Sprintf("tag%d", blk))
			for k := 0; k < keys; k++ {
				batch.Put(fmt.Sprintf("k%02d", k), tag, rwset.Version{BlockNum: blk})
			}
			db.Apply(batch, rwset.Version{BlockNum: blk})
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		kvs := db.GetRange("", "")
		if len(kvs) != keys {
			t.Fatalf("scan saw %d keys, want %d", len(kvs), keys)
		}
		for _, kv := range kvs[1:] {
			if !bytes.Equal(kv.Value, kvs[0].Value) {
				t.Fatalf("torn scan: %s=%s but %s=%s", kvs[0].Key, kvs[0].Value, kv.Key, kv.Value)
			}
		}
	}
}

func BenchmarkBackendContention(b *testing.B) {
	for _, backend := range []struct {
		name string
		db   *DB
	}{
		{"trivial", New()},
		{"sharded-16", NewSharded(16)},
	} {
		b.Run(backend.name, func(b *testing.B) {
			db := backend.db
			seed := NewUpdateBatch()
			for i := 0; i < 1024; i++ {
				seed.Put(fmt.Sprintf("k%d", i), []byte("v"), rwset.Version{BlockNum: 1})
			}
			db.Apply(seed, rwset.Version{BlockNum: 1})
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					if i%16 == 0 {
						batch := NewUpdateBatch()
						batch.Put(fmt.Sprintf("k%d", i%1024), []byte("w"), rwset.Version{BlockNum: 2})
						db.Apply(batch, rwset.Version{BlockNum: 2})
						continue
					}
					db.Get(fmt.Sprintf("k%d", (i*31)%1024))
				}
			})
		})
	}
}
