package statedb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"fabriccrdt/internal/rwset"
)

// diskBackend is the persistent backend: an append-only record log plus a
// periodically rewritten snapshot, with the full state mirrored in memory
// (the "index") so reads never touch the disk.
//
// On-disk layout inside the data directory:
//
//	state.snap   one batch record holding the whole compacted state
//	state.log    batch records appended since the last compaction
//
// Both files are sequences of framed records:
//
//	[4B little-endian payload length][4B CRC32-Castagnoli of payload][payload]
//
// and each payload is one batch record (see encodeBatch): the commit
// height followed by the block's key mutations and metadata writes. One
// Apply appends exactly one frame, so a crash can only ever produce a
// torn *tail*; Open truncates a torn or CRC-corrupt tail back to the last
// intact frame instead of failing. Opening replays the snapshot, then the
// log, rebuilding the in-memory maps and the persisted height.
//
// Compaction: when the log grows past DiskOptions.CompactAfterBytes the
// whole in-memory state is written to state.snap (via a temp file +
// rename, so a crash mid-compaction leaves the previous snapshot valid)
// and the log is truncated.
type diskBackend struct {
	dir  string
	opts DiskOptions

	mu      sync.RWMutex
	data    map[string]VersionedValue
	meta    map[string][]byte
	height  rwset.Version
	log     *os.File
	logSize int64
	closed  bool
	// logBroken disables the write path after a failed append: the file
	// may end in a torn frame, and anything written after it would be
	// silently dropped by the next open's tail truncation.
	logBroken bool
	// compactBroken stops retrying a failed compaction on every block.
	compactBroken bool
	applyErr      error
	// I/O accounting surfaced via Stats (mu held for writes).
	appends     int64
	fsyncs      int64
	compactions int64
}

// Stats reports the backend's current log size and lifetime
// append/fsync/compaction counts.
func (b *diskBackend) Stats() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return Stats{
		LogBytes:    b.logSize,
		Appends:     b.appends,
		Fsyncs:      b.fsyncs,
		Compactions: b.compactions,
	}
}

// DiskOptions tunes a disk backend.
type DiskOptions struct {
	// CompactAfterBytes rewrites the snapshot and truncates the log once
	// the log exceeds this size; <= 0 selects the 8 MiB default.
	CompactAfterBytes int64
	// SyncEveryApply fsyncs the log after every batch. Off (the default),
	// batches reach the OS page cache on Apply and the disk on Close or
	// compaction: a process crash loses nothing, a host power loss may
	// lose the most recent batches (never corrupting earlier ones).
	SyncEveryApply bool
	// BeforeCompact, when set, runs right before a compaction makes the
	// whole state durable (snapshot fsync + rename). The channel runtime
	// uses it to fsync the peer's block store first, so a power loss
	// around compaction cannot leave the durable state ahead of the block
	// log. An error aborts the compaction; the log stays authoritative.
	BeforeCompact func() error
}

const defaultCompactAfterBytes = 8 << 20

func (o DiskOptions) normalized() DiskOptions {
	if o.CompactAfterBytes <= 0 {
		o.CompactAfterBytes = defaultCompactAfterBytes
	}
	return o
}

const (
	snapFileName = "state.snap"
	logFileName  = "state.log"

	frameHeaderLen = 8
	recordVersion  = 1

	// maxRecordBytes bounds a single record so a corrupt length prefix
	// cannot trigger a multi-gigabyte allocation on open.
	maxRecordBytes = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports use of a closed disk backend.
var ErrClosed = errors.New("statedb: disk backend is closed")

// OpenDisk opens (creating if needed) a persistent backend rooted at dir.
// The returned backend satisfies Durable.
func OpenDisk(dir string, opts DiskOptions) (Backend, error) {
	return openDisk(dir, opts)
}

func openDisk(dir string, opts DiskOptions) (*diskBackend, error) {
	if dir == "" {
		return nil, errors.New("statedb: disk backend requires a data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statedb: creating data dir: %w", err)
	}
	// Refuse a directory holding an LSM store: opening it as the
	// log+snapshot backend would silently present an empty state while the
	// real one sits in files this backend never reads.
	for _, name := range []string{manifestFileName, walFileName} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return nil, fmt.Errorf("statedb: %s holds an LSM store (%s exists); refusing to open it as the disk backend", dir, name)
		}
	}
	b := &diskBackend{
		dir:  dir,
		opts: opts.normalized(),
		data: make(map[string]VersionedValue),
		meta: make(map[string][]byte),
	}
	if err := b.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := b.openAndReplayLog(); err != nil {
		return nil, err
	}
	return b, nil
}

// NewDisk returns a world state persisted under dir with default options.
// Reopening the same directory restores the state and the height of the
// last committed block.
func NewDisk(dir string) (*DB, error) {
	return NewDiskWithOptions(dir, DiskOptions{})
}

// NewDiskWithOptions is NewDisk with explicit DiskOptions.
func NewDiskWithOptions(dir string, opts DiskOptions) (*DB, error) {
	b, err := openDisk(dir, opts)
	if err != nil {
		return nil, err
	}
	return NewWithBackend(b), nil
}

// loadSnapshot replays state.snap if present. A snapshot is written
// atomically (temp file + rename) so it is either absent or fully intact;
// a corrupt snapshot is reported as an error rather than silently dropped,
// since losing it would silently lose compacted history.
func (b *diskBackend) loadSnapshot() error {
	path := filepath.Join(b.dir, snapFileName)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("statedb: opening snapshot: %w", err)
	}
	defer f.Close()
	_, err = b.replayRecords(bufio.NewReader(f))
	if err != nil {
		return fmt.Errorf("statedb: corrupt snapshot %s: %w", path, err)
	}
	return nil
}

// openAndReplayLog opens state.log for append, replays every intact frame
// into memory and truncates anything after the last intact frame (the torn
// or corrupt tail a crash mid-Apply leaves behind).
func (b *diskBackend) openAndReplayLog() error {
	path := filepath.Join(b.dir, logFileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("statedb: opening log: %w", err)
	}
	// Replay through a buffered reader (the log holds one small frame per
	// block); the absolute Seek below re-positions the raw handle for
	// appending, so the buffer never goes stale.
	good, err := b.replayRecords(bufio.NewReader(f))
	if err != nil {
		// The tail after offset `good` is torn or corrupt: drop it.
		if terr := f.Truncate(good); terr != nil {
			f.Close()
			return fmt.Errorf("statedb: truncating corrupt log tail: %w", terr)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("statedb: seeking log: %w", err)
	}
	b.log = f
	b.logSize = good
	return nil
}

// replayRecords applies every intact framed record from r into the
// in-memory maps, returning the offset just past the last intact frame.
// The error (if any) describes why reading stopped early; io.EOF at a
// frame boundary is clean termination and returns a nil error.
func (b *diskBackend) replayRecords(r io.Reader) (int64, error) {
	return scanFrames(r, func(payload []byte) error {
		updates, meta, height, err := decodeBatch(payload)
		if err != nil {
			return fmt.Errorf("record decode: %w", err)
		}
		applyToMaps(b.data, b.meta, updates, meta)
		b.height = height
		return nil
	})
}

// scanFrames reads a stream of framed records ([4B length][4B CRC32C]
// [payload]) from r, calling apply for each intact payload, and returns
// the offset just past the last intact frame. io.EOF at a frame boundary
// is clean termination (nil error); a torn or corrupt tail — or an apply
// rejection — stops the scan with a descriptive error. Shared by the disk
// backend's log/snapshot replay and the LSM backend's WAL replay.
func scanFrames(r io.Reader, apply func(payload []byte) error) (int64, error) {
	var off int64
	var header [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return off, nil // clean end
			}
			return off, fmt.Errorf("torn frame header at offset %d", off)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > maxRecordBytes {
			return off, fmt.Errorf("implausible record length %d at offset %d", length, off)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, fmt.Errorf("torn record payload at offset %d", off)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return off, fmt.Errorf("record CRC mismatch at offset %d", off)
		}
		if err := apply(payload); err != nil {
			return off, fmt.Errorf("%w at offset %d", err, off)
		}
		off += frameHeaderLen + int64(length)
	}
}

// frameRecord wraps one payload in the statedb frame: [4B little-endian
// length][4B CRC32-Castagnoli][payload].
func frameRecord(payload []byte) []byte {
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeaderLen:], payload)
	return frame
}

func (b *diskBackend) Get(key string) (VersionedValue, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	vv, ok := b.data[key]
	return vv, ok
}

func (b *diskBackend) GetMeta(key string) []byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.meta[key]
}

func (b *diskBackend) Range(start, end string) []KV {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return rangeOverMap(b.data, start, end)
}

func (b *diskBackend) KeyCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.data)
}

// PersistedHeight returns the height of the last batch that reached the
// store (zero for a fresh store).
func (b *diskBackend) PersistedHeight() rwset.Version {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.height
}

// Err returns the first write error Apply encountered, if any. The Backend
// interface keeps Apply error-free (in-memory backends cannot fail), so
// the disk backend records failures and surfaces them here and on Close.
func (b *diskBackend) Err() error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.applyErr
}

// Apply durably appends the batch to the log, then applies it to the
// in-memory maps and compacts if the log has outgrown the threshold. A
// write failure is recorded (see Err) and the in-memory update still
// happens, keeping the running peer consistent; the store is simply no
// longer ahead of memory.
//
// The write path is fail-stop: after the first failed append (which may
// have left a torn frame mid-file), no further frames are written — a
// frame appended after a torn one would be silently discarded by the next
// open's tail truncation anyway, so continuing would only fake
// durability. The recorded error keeps surfacing via Err and Close.
func (b *diskBackend) Apply(updates map[string]Update, meta map[string][]byte, height rwset.Version) {
	payload := encodeBatch(updates, meta, height)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.closed:
		b.recordErr(ErrClosed)
	case b.logBroken:
		// Write path disabled by an earlier failed append.
	default:
		if err := b.appendFrame(payload); err != nil {
			b.logBroken = true
			b.recordErr(err)
		} else if b.opts.SyncEveryApply {
			if err := b.log.Sync(); err != nil {
				b.logBroken = true
				b.recordErr(err)
			} else {
				b.fsyncs++
			}
		}
	}
	applyToMaps(b.data, b.meta, updates, meta)
	b.height = height
	if !b.logBroken && !b.closed && !b.compactBroken && b.logSize > b.opts.CompactAfterBytes {
		if err := b.compactLocked(); err != nil {
			// Compaction failures leave the log authoritative; don't retry
			// every block (each attempt costs an O(state) encode).
			b.compactBroken = true
			b.recordErr(err)
		}
	}
}

func (b *diskBackend) recordErr(err error) {
	if b.applyErr == nil {
		b.applyErr = err
	}
}

// appendFrame writes one framed record to the log (mu held). A payload
// larger than maxRecordBytes is refused: its frame would be rejected (or,
// past 4 GiB, length-wrapped into corruption) on replay.
func (b *diskBackend) appendFrame(payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("statedb: batch record of %d bytes exceeds the %d-byte record limit", len(payload), maxRecordBytes)
	}
	n, err := b.log.Write(frameRecord(payload))
	b.logSize += int64(n)
	if err != nil {
		return fmt.Errorf("statedb: appending to log: %w", err)
	}
	b.appends++
	return nil
}

// compactLocked writes the whole in-memory state as one snapshot record to
// a temp file, atomically renames it over state.snap, and truncates the
// log (mu held). A crash at any point leaves either the old snapshot + old
// log or the new snapshot + (possibly still full, harmlessly replayed) log.
func (b *diskBackend) compactLocked() error {
	if b.opts.BeforeCompact != nil {
		if err := b.opts.BeforeCompact(); err != nil {
			return fmt.Errorf("statedb: pre-compaction hook: %w", err)
		}
	}
	payload := encodeSnapshot(b.data, b.meta, b.height)
	if len(payload) > maxRecordBytes {
		// Writing this snapshot would produce a frame replay rejects (or,
		// past 4 GiB, a wrapped length corrupting the file). Keep the old
		// snapshot + full log, which still reproduce the state.
		return fmt.Errorf("statedb: state snapshot of %d bytes exceeds the %d-byte record limit; compaction skipped", len(payload), maxRecordBytes)
	}

	tmp := filepath.Join(b.dir, snapFileName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("statedb: creating snapshot temp: %w", err)
	}
	frame := make([]byte, frameHeaderLen)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	if _, err := f.Write(frame); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statedb: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(b.dir, snapFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("statedb: installing snapshot: %w", err)
	}
	if err := b.log.Truncate(0); err != nil {
		return fmt.Errorf("statedb: truncating log after compaction: %w", err)
	}
	if _, err := b.log.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("statedb: rewinding log after compaction: %w", err)
	}
	b.logSize = 0
	b.compactions++
	b.fsyncs++ // the snapshot temp file's Sync above
	return nil
}

// Reset drops all contents, in memory and on disk.
func (b *diskBackend) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.data = make(map[string]VersionedValue)
	b.meta = make(map[string][]byte)
	b.height = rwset.Version{}
	if b.closed {
		return
	}
	if err := os.Remove(filepath.Join(b.dir, snapFileName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		b.recordErr(err)
	}
	if err := b.log.Truncate(0); err != nil {
		b.logBroken = true
		b.recordErr(err)
	} else if _, err := b.log.Seek(0, io.SeekStart); err != nil {
		b.logBroken = true
		b.recordErr(err)
	} else {
		// An emptied log has no torn tail: the write path is clean again
		// (the first error stays recorded for Err/Close).
		b.logBroken = false
		b.compactBroken = false
	}
	b.logSize = 0
}

// Close fsyncs and closes the log, returning the first error any Apply
// encountered (write failures would otherwise be invisible to callers).
func (b *diskBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return b.applyErr
	}
	b.closed = true
	if err := b.log.Sync(); err != nil {
		b.recordErr(err)
	} else {
		b.fsyncs++
	}
	if err := b.log.Close(); err != nil {
		b.recordErr(err)
	}
	return b.applyErr
}

// Batch record encoding (little-endian, length-prefixed strings/bytes):
//
//	u8  record format version (1)
//	u64 height.BlockNum, u64 height.TxNum
//	u32 update count, then per update:
//	    u32 key length, key bytes,
//	    u8  flags (bit 0 = delete),
//	    u64 version.BlockNum, u64 version.TxNum,
//	    u32 value length, value bytes   (omitted for deletes)
//	u32 meta count, then per entry:
//	    u32 key length, key bytes, u32 value length, value bytes
//
// Updates are written in map order: replay order within one batch is
// irrelevant because UpdateBatch already collapsed per-key writes.

func encodeBatch(updates map[string]Update, meta map[string][]byte, height rwset.Version) []byte {
	size := 1 + 16 + 4 + 4
	for k, u := range updates {
		size += 4 + len(k) + 1 + 16
		if !u.IsDelete {
			size += 4 + len(u.Value)
		}
	}
	for k, v := range meta {
		size += 4 + len(k) + 4 + len(v)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, recordVersion)
	buf = binary.LittleEndian.AppendUint64(buf, height.BlockNum)
	buf = binary.LittleEndian.AppendUint64(buf, height.TxNum)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(updates)))
	for k, u := range updates {
		buf = appendString(buf, k)
		var flags byte
		if u.IsDelete {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint64(buf, u.Version.BlockNum)
		buf = binary.LittleEndian.AppendUint64(buf, u.Version.TxNum)
		if !u.IsDelete {
			buf = appendBytes(buf, u.Value)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	for k, v := range meta {
		buf = appendString(buf, k)
		buf = appendBytes(buf, v)
	}
	return buf
}

// encodeSnapshot writes the whole state as one batch record (all puts, no
// deletes), straight from the live maps — the snapshot is a batch that
// replays into the full state, so open needs no separate snapshot decoder.
func encodeSnapshot(data map[string]VersionedValue, meta map[string][]byte, height rwset.Version) []byte {
	size := 1 + 16 + 4 + 4
	for k, vv := range data {
		size += 4 + len(k) + 1 + 16 + 4 + len(vv.Value)
	}
	for k, v := range meta {
		size += 4 + len(k) + 4 + len(v)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, recordVersion)
	buf = binary.LittleEndian.AppendUint64(buf, height.BlockNum)
	buf = binary.LittleEndian.AppendUint64(buf, height.TxNum)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(data)))
	for k, vv := range data {
		buf = appendString(buf, k)
		buf = append(buf, 0) // flags: a live value, never a delete
		buf = binary.LittleEndian.AppendUint64(buf, vv.Version.BlockNum)
		buf = binary.LittleEndian.AppendUint64(buf, vv.Version.TxNum)
		buf = appendBytes(buf, vv.Value)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	for k, v := range meta {
		buf = appendString(buf, k)
		buf = appendBytes(buf, v)
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendBytes(buf []byte, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// errTruncatedRecord reports a record shorter than its own structure
// claims — distinct from a torn frame, which the CRC already caught; this
// guards against decoding bugs and hand-corrupted files.
var errTruncatedRecord = errors.New("truncated batch record")

func decodeBatch(buf []byte) (map[string]Update, map[string][]byte, rwset.Version, error) {
	var height rwset.Version
	d := &decoder{buf: buf}
	ver := d.u8()
	if d.err == nil && ver != recordVersion {
		return nil, nil, height, fmt.Errorf("unsupported record version %d", ver)
	}
	height.BlockNum = d.u64()
	height.TxNum = d.u64()
	nUpdates := d.u32()
	updates := make(map[string]Update, nUpdates)
	for i := uint32(0); i < nUpdates && d.err == nil; i++ {
		key := d.str()
		flags := d.u8()
		u := Update{IsDelete: flags&1 != 0}
		u.Version.BlockNum = d.u64()
		u.Version.TxNum = d.u64()
		if !u.IsDelete {
			u.Value = d.bytes()
		}
		updates[key] = u
	}
	nMeta := d.u32()
	meta := make(map[string][]byte, nMeta)
	for i := uint32(0); i < nMeta && d.err == nil; i++ {
		key := d.str()
		meta[key] = d.bytes()
	}
	if d.err != nil {
		return nil, nil, rwset.Version{}, d.err
	}
	if len(d.buf) != d.off {
		return nil, nil, rwset.Version{}, fmt.Errorf("batch record has %d trailing bytes", len(d.buf)-d.off)
	}
	return updates, meta, height, nil
}

// decoder is a cursor over a batch record; the first structural failure
// sticks in err and zero values flow from then on.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) || n < 0 {
		d.err = errTruncatedRecord
		return nil
	}
	out := d.buf[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() string { return string(d.take(int(d.u32()))) }

func (d *decoder) bytes() []byte {
	b := d.take(int(d.u32()))
	if b == nil {
		return nil
	}
	// Copy out of the record buffer: stored values must not alias the
	// (reusable) decode input.
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
