package statedb

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fabriccrdt/internal/rwset"
)

// validRunBlockBytes encodes one well-formed data block for seeding.
func validRunBlockBytes() []byte {
	return encodeRunBlock([]runEntry{
		{ikey: "dalpha", value: []byte(`{"doc":1}`), version: rwset.Version{BlockNum: 3, TxNum: 1}},
		{ikey: "dbeta", tombstone: true, version: rwset.Version{BlockNum: 4, TxNum: 0}},
		{ikey: "dgamma", value: []byte{}, version: rwset.Version{BlockNum: 5, TxNum: 9}},
		{ikey: "mcrdt/alpha", value: []byte{0x00, 0xFF, 0x10}, version: rwset.Version{}},
	})
}

// FuzzRunDecode holds the sorted-run block decoder to its contract on
// arbitrary input: error, never panic, never allocate beyond a plausible
// entry count — and whatever decodes re-encodes to the identical bytes
// (the codec is bijective on valid blocks, so cached blocks and
// compaction rewrites can never drift from the on-disk form). Mirrors
// internal/wire's FuzzReadFrame; the committed corpus lives under
// testdata/fuzz/FuzzRunDecode.
func FuzzRunDecode(f *testing.F) {
	valid := validRunBlockBytes()
	f.Add(valid)
	f.Add(valid[:3])            // truncated inside the entry count
	f.Add(valid[:4])            // count only, no entries
	f.Add(valid[:9])            // truncated inside the first entry header
	f.Add(valid[:len(valid)-1]) // truncated inside the last value
	f.Add([]byte{})             // empty input
	f.Add(encodeRunBlock(nil))  // a legitimate empty block

	badFlags := append([]byte(nil), valid...)
	badFlags[4] |= 0x80 // unknown flag bit on the first entry
	f.Add(badFlags)

	trailing := append(append([]byte(nil), valid...), 0xEE, 0xEE)
	f.Add(trailing)

	hugeCount := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hugeCount[0:4], 0xFFFFFFFF)
	f.Add(hugeCount)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := decodeRunBlock(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeRunBlock(entries), data) {
			t.Fatalf("decode/encode round trip diverged on %x", data)
		}
	})
}

// TestRunBlockRejections pins each rejection path deterministically (the
// fuzz corpus exercises them too, but these run on every plain `go test`).
func TestRunBlockRejections(t *testing.T) {
	valid := validRunBlockBytes()
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"TruncatedCount", func(b []byte) []byte { return b[:3] }},
		{"TruncatedEntryHeader", func(b []byte) []byte { return b[:9] }},
		{"TruncatedValue", func(b []byte) []byte { return b[:len(b)-1] }},
		{"UnknownFlags", func(b []byte) []byte { b[4] |= 0x80; return b }},
		{"TrailingJunk", func(b []byte) []byte { return append(b, 0xEE) }},
		{"ImplausibleCount", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[0:4], 0xFFFFFFFF)
			return b
		}},
		{"CountBeyondEntries", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[0:4], 5) // file has 4
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			if _, err := decodeRunBlock(data); err == nil {
				t.Fatal("corrupt run block decoded")
			}
		})
	}

	// The valid block itself decodes, bijectively.
	entries, err := decodeRunBlock(valid)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[1].ikey != "dbeta" || !entries[1].tombstone {
		t.Fatalf("valid block mangled: %+v", entries)
	}
	if !bytes.Equal(encodeRunBlock(entries), valid) {
		t.Fatal("valid block does not round-trip")
	}
	// An empty block is valid and round-trips too.
	if got, err := decodeRunBlock(encodeRunBlock(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty block = %v, %v", got, err)
	}
}
