package statedb

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"fabriccrdt/internal/rwset"
)

// tinyLSMOptions forces frequent flushes, small blocks and early
// compaction so short tests exercise every moving part.
func tinyLSMOptions() LSMOptions {
	return LSMOptions{MemtableBytes: 1 << 10, BlockBytes: 256, CacheBytes: 1 << 20, CompactRuns: 2}
}

// lsmOf unwraps the backend for white-box assertions.
func lsmOf(t *testing.T, db *DB) *lsmBackend {
	t.Helper()
	b, ok := db.backend.(*lsmBackend)
	if !ok {
		t.Fatalf("backend is %T, not *lsmBackend", db.backend)
	}
	return b
}

// waitCompactions blocks until any in-flight background compaction has
// finished (applies must have stopped).
func waitCompactions(db *DB) {
	db.backend.(*lsmBackend).compactWG.Wait()
}

func TestLSMMatchesTrivialBackend(t *testing.T) {
	trivial := New()
	lsm, err := NewLSMWithOptions(t.TempDir(), tinyLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer lsm.Close()
	applyRandomBatches(t, 7, 50, trivial, lsm)
	waitCompactions(lsm)
	requireSameState(t, trivial, lsm)
	if a, b := trivial.GetRange("k1", "k3"), lsm.GetRange("k1", "k3"); !reflect.DeepEqual(a, b) {
		t.Fatalf("sub range diverged:\ntrivial %v\nlsm %v", a, b)
	}
	if err := lsm.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestLSMReopenRestoresState(t *testing.T) {
	dir := t.TempDir()
	trivial := New()
	lsm, err := NewLSMWithOptions(dir, tinyLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 11, 30, trivial, lsm)
	waitCompactions(lsm)
	if err := lsm.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	reopened, err := NewLSMWithOptions(dir, tinyLSMOptions())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	requireSameState(t, trivial, reopened)
	if got := reopened.Height(); got != (rwset.Version{BlockNum: 30}) {
		t.Fatalf("reopened height = %v, want 30:0", got)
	}
	// The reopened store keeps accepting and persisting batches.
	applyRandomBatches(t, 13, 5, trivial, reopened)
	waitCompactions(reopened)
	requireSameState(t, trivial, reopened)
}

func TestLSMReopenWithDefaultsRestoresState(t *testing.T) {
	// Everything still in the WAL (no flush ever fired): reopen replays it.
	dir := t.TempDir()
	trivial := New()
	lsm, err := NewLSM(dir)
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 19, 20, trivial, lsm)
	if err := lsm.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestFileName)); !os.IsNotExist(err) {
		t.Fatalf("manifest exists before any flush (err=%v)", err)
	}
	reopened, err := NewLSM(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	requireSameState(t, trivial, reopened)
}

func TestLSMEmptyDirRejected(t *testing.T) {
	if _, err := NewLSM(""); err == nil {
		t.Fatal("NewLSM(\"\") succeeded")
	}
	if _, err := OpenLSM("", LSMOptions{}); err == nil {
		t.Fatal("OpenLSM(\"\") succeeded")
	}
}

// TestLSMCompactionMergesRuns drives enough flushes to trigger background
// compaction and checks the merged store still matches the reference,
// also across a reopen.
func TestLSMCompactionMergesRuns(t *testing.T) {
	dir := t.TempDir()
	trivial := New()
	lsm, err := NewLSMWithOptions(dir, tinyLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 23, 80, trivial, lsm)
	waitCompactions(lsm)
	stats, ok := lsm.Stats()
	if !ok {
		t.Fatal("LSM backend reports no stats")
	}
	if stats.Flushes == 0 {
		t.Fatal("tiny memtable never flushed")
	}
	if stats.Compactions == 0 {
		t.Fatal("run count never triggered a compaction")
	}
	requireSameState(t, trivial, lsm)
	if err := lsm.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewLSMWithOptions(dir, tinyLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	requireSameState(t, trivial, reopened)
}

// TestLSMOpenDoesNotRebuildIndex pins the tentpole property: opening an
// LSM directory keeps only run footers/filters and the (empty) memtable
// resident — no full key index, no prefetched blocks — yet Get and Range
// serve correctly through a cache smaller than the dataset.
func TestLSMOpenDoesNotRebuildIndex(t *testing.T) {
	dir := t.TempDir()
	trivial := New()
	// MemtableBytes 1 → every Apply flushes, so the WAL is empty at close
	// and reopen replays nothing into the memtable.
	opts := LSMOptions{MemtableBytes: 1, BlockBytes: 512, CacheBytes: 16 << 10, CompactRuns: 8}
	lsm, err := NewLSMWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 500
	for blk := uint64(1); blk <= 10; blk++ {
		batch := NewUpdateBatch()
		tb := NewUpdateBatch()
		for i := 0; i < keys/10; i++ {
			k := fmt.Sprintf("key%04d", int(blk-1)*keys/10+i)
			v := []byte(fmt.Sprintf("value-%s-%032d", k, i))
			batch.Put(k, v, rwset.Version{BlockNum: blk, TxNum: uint64(i)})
			tb.Put(k, v, rwset.Version{BlockNum: blk, TxNum: uint64(i)})
		}
		lsm.Apply(batch, rwset.Version{BlockNum: blk})
		trivial.Apply(tb, rwset.Version{BlockNum: blk})
	}
	waitCompactions(lsm)
	if err := lsm.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := NewLSMWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	b := lsmOf(t, reopened)
	if got := len(b.mem); got != 0 {
		t.Fatalf("reopen left %d memtable entries resident (WAL was empty)", got)
	}
	if _, _, used := b.cache.counters(); used != 0 {
		t.Fatalf("reopen prefetched %d bytes of data blocks into the cache", used)
	}
	if got := reopened.KeyCount(); got != keys {
		t.Fatalf("KeyCount = %d, want %d (manifest-persisted count)", got, keys)
	}

	// Reads are served correctly through the small cache...
	for _, i := range []int{0, 123, 250, 499} {
		k := fmt.Sprintf("key%04d", i)
		want, _ := trivial.Get(k)
		got, ok := reopened.Get(k)
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("Get(%q) = %v/%v, want %v", k, got, ok, want)
		}
	}
	if a, b2 := trivial.GetRange("key0100", "key0150"), reopened.GetRange("key0100", "key0150"); !reflect.DeepEqual(a, b2) {
		t.Fatalf("sub range diverged after reopen")
	}
	if !reflect.DeepEqual(trivial.GetRange("", ""), reopened.GetRange("", "")) {
		t.Fatalf("full range diverged after reopen")
	}
	// ...and the cache never exceeds its budget.
	if _, _, used := b.cache.counters(); used > opts.CacheBytes {
		t.Fatalf("cache grew to %d bytes, budget %d", used, opts.CacheBytes)
	}
	// The full scans above re-read blocks the point reads already pulled
	// in: the cache must have produced hits.
	if stats, _ := reopened.Stats(); stats.CacheHits == 0 {
		t.Fatal("block cache recorded no hits")
	}
}

func TestLSMReset(t *testing.T) {
	dir := t.TempDir()
	db, err := NewLSMWithOptions(dir, tinyLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 29, 40, db)
	db.Reset()
	if db.KeyCount() != 0 || !db.Height().IsZero() {
		t.Fatal("reset did not clear state")
	}
	if got := db.GetRange("", ""); len(got) != 0 {
		t.Fatalf("reset left %d keys", len(got))
	}
	// The reset store accepts new writes.
	applyRandomBatches(t, 31, 5, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reset must be durable: a reopen continues from the post-reset state.
	trivial := New()
	applyRandomBatches(t, 31, 5, trivial)
	reopened, err := NewLSMWithOptions(dir, tinyLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	requireSameState(t, trivial, reopened)
}

func TestLSMSyncEveryApply(t *testing.T) {
	opts := tinyLSMOptions()
	opts.SyncEveryApply = true
	db, err := NewLSMWithOptions(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 31, 5, db)
	if stats, _ := db.Stats(); stats.Fsyncs == 0 {
		t.Fatal("SyncEveryApply recorded no fsyncs")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLSMApplyAfterCloseSurfacesError(t *testing.T) {
	db, err := NewLSM(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	batch := NewUpdateBatch()
	batch.Put("k", []byte("v"), rwset.Version{BlockNum: 1})
	db.Apply(batch, rwset.Version{BlockNum: 1})
	if err := db.Close(); err == nil {
		t.Fatal("Apply after Close left no deferred error")
	}
}

// TestLSMBeforeCompactHook checks the durability-ordering hook runs
// before flushes make state durable, and that a failing hook aborts the
// flush while the WAL stays authoritative.
func TestLSMBeforeCompactHook(t *testing.T) {
	dir := t.TempDir()
	calls := 0
	opts := tinyLSMOptions()
	opts.BeforeCompact = func() error { calls++; return nil }
	db, err := NewLSMWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 37, 30, db)
	waitCompactions(db)
	stats, _ := db.Stats()
	if calls == 0 || int64(calls) < stats.Flushes+stats.Compactions {
		t.Fatalf("hook ran %d times for %d flushes + %d compactions", calls, stats.Flushes, stats.Compactions)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// A failing hook: flushes abort, the WAL keeps everything, and a
	// reopen (hook healthy again) recovers the full state.
	dir2 := t.TempDir()
	trivial := New()
	opts2 := tinyLSMOptions()
	opts2.BeforeCompact = func() error { return fmt.Errorf("block log unavailable") }
	db2, err := NewLSMWithOptions(dir2, opts2)
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 41, 20, db2, trivial)
	waitCompactions(db2)
	if lsmOf(t, db2).Err() == nil {
		t.Fatal("failing hook left no recorded error")
	}
	db2.Close() // surfaces the hook error; state is still all in the WAL
	reopened, err := NewLSMWithOptions(dir2, tinyLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	requireSameState(t, trivial, reopened)
}

// TestLSMRejectsForeignStoreDirs pins the cross-backend guards: pointing
// one persistent backend at the other's directory must refuse, not
// present an empty state.
func TestLSMRejectsForeignStoreDirs(t *testing.T) {
	diskDir := t.TempDir()
	disk, err := NewDisk(diskDir)
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 43, 3, disk)
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLSM(diskDir); err == nil {
		t.Fatal("LSM opened a disk-backend directory")
	}

	lsmDir := t.TempDir()
	lsm, err := NewLSM(lsmDir)
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 43, 3, lsm)
	if err := lsm.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDisk(lsmDir); err == nil {
		t.Fatal("disk backend opened an LSM directory")
	}
}

// TestLSMConcurrentReadsDuringCommit mirrors the other backends'
// concurrency tests: reads must never race with applies, flushes or
// background compactions.
func TestLSMConcurrentReadsDuringCommit(t *testing.T) {
	db, err := NewLSMWithOptions(t.TempDir(), tinyLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b := NewUpdateBatch()
				for k := 0; k < 8; k++ {
					b.Put(fmt.Sprintf("k%d", k), []byte{byte(worker)}, rwset.Version{BlockNum: uint64(i)})
				}
				db.Apply(b, rwset.Version{BlockNum: uint64(i)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				db.Get("k1")
				db.Version("k2")
				db.Height()
				db.GetRange("", "")
				db.KeyCount()
				db.GetMeta("crdt/k1")
			}
		}()
	}
	wg.Wait()
	waitCompactions(db)
	if err := db.Close(); err != nil {
		t.Fatalf("close after concurrent use: %v", err)
	}
}

// TestRunFileRoundTrip writes a run, reopens it and reads every entry
// back via point lookups and an unbounded iterator.
func TestRunFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	entries := make([]runEntry, 0, 100)
	for i := 0; i < 100; i++ {
		e := runEntry{
			ikey:    fmt.Sprintf("dkey%03d", i),
			version: rwset.Version{BlockNum: uint64(i), TxNum: 1},
		}
		if i%7 == 0 {
			e.tombstone = true
		} else {
			e.value = []byte(fmt.Sprintf("value-%03d", i))
		}
		entries = append(entries, e)
	}
	path := filepath.Join(dir, runFileName(1))
	if err := writeRun(path, entries, 128); err != nil {
		t.Fatal(err)
	}
	r, err := openRun(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if r.entryCount != 100 {
		t.Fatalf("entryCount = %d", r.entryCount)
	}
	if len(r.index) < 2 {
		t.Fatalf("tiny block size produced only %d blocks", len(r.index))
	}
	rawLoad := func(rr *runReader, i int) ([]runEntry, error) { return rr.readBlock(i) }
	for _, want := range entries {
		got, ok, err := r.get(want.ikey, rawLoad)
		if err != nil || !ok {
			t.Fatalf("get(%q) = %v, %v", want.ikey, ok, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("get(%q) = %+v, want %+v", want.ikey, got, want)
		}
		if !r.filter.mayContain(bloomKeyHash(want.ikey)) {
			t.Fatalf("bloom filter rejects present key %q", want.ikey)
		}
	}
	if _, ok, _ := r.get("dkey9999", rawLoad); ok {
		t.Fatal("get found an absent key")
	}
	it, err := newRunIter(r, "", "", rawLoad)
	if err != nil {
		t.Fatal(err)
	}
	var scanned []runEntry
	for {
		e, ok := it.peek()
		if !ok {
			break
		}
		scanned = append(scanned, e)
		if err := it.advance(); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(scanned, entries) {
		t.Fatalf("iterator scanned %d entries, want %d (or order diverged)", len(scanned), len(entries))
	}
	// Bounded iteration, including bounds landing between blocks.
	it2, err := newRunIter(r, "dkey010", "dkey020", rawLoad)
	if err != nil {
		t.Fatal(err)
	}
	var bounded []string
	for {
		e, ok := it2.peek()
		if !ok {
			break
		}
		bounded = append(bounded, e.ikey)
		if err := it2.advance(); err != nil {
			t.Fatal(err)
		}
	}
	if len(bounded) != 10 || bounded[0] != "dkey010" || bounded[9] != "dkey019" {
		t.Fatalf("bounded scan = %v", bounded)
	}
}

// TestBlockCacheLRU pins the cache's byte budget, eviction order and
// purge behavior.
func TestBlockCacheLRU(t *testing.T) {
	entryOf := func(seq uint64, n int) []runEntry {
		return []runEntry{{ikey: fmt.Sprintf("k%d", seq), value: make([]byte, n)}}
	}
	c := newBlockCache(400)
	c.put(1, 0, entryOf(1, 50)) // ~100 bytes
	c.put(2, 0, entryOf(2, 50)) // ~100 bytes
	c.put(3, 0, entryOf(3, 50)) // ~100 bytes
	if _, ok := c.get(1, 0); !ok {
		t.Fatal("entry 1 evicted under budget")
	}
	// Entry 2 is now least-recently used; this insert must evict it.
	c.put(4, 0, entryOf(4, 150)) // ~200 bytes, pushes used past 400
	if _, ok := c.get(2, 0); ok {
		t.Fatal("LRU eviction spared the least-recently-used entry")
	}
	if _, ok := c.get(1, 0); !ok {
		t.Fatal("recently used entry evicted")
	}
	// An over-budget block is never inserted.
	c.put(5, 0, entryOf(5, 1000))
	if _, ok := c.get(5, 0); ok {
		t.Fatal("cache admitted a block larger than its whole budget")
	}
	c.purge(map[uint64]bool{1: true})
	if _, ok := c.get(1, 0); ok {
		t.Fatal("purge left entry 1")
	}
	hits, misses, used := c.counters()
	if hits == 0 || misses == 0 || used < 0 {
		t.Fatalf("counters = %d/%d/%d", hits, misses, used)
	}
	c.purgeAll()
	if _, _, used := c.counters(); used != 0 {
		t.Fatalf("purgeAll left %d bytes", used)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	height := rwset.Version{BlockNum: 42, TxNum: 7}
	seqs := []uint64{3, 9, 12}
	h, live, got, err := decodeManifest(encodeManifest(height, 1234, seqs))
	if err != nil {
		t.Fatal(err)
	}
	if h != height || live != 1234 || !reflect.DeepEqual(got, seqs) {
		t.Fatalf("round trip = %v/%d/%v", h, live, got)
	}
	bad := map[string][]byte{
		"empty":          {},
		"bad-version":    append([]byte{9}, encodeManifest(height, 1, seqs)[1:]...),
		"trailing-junk":  append(encodeManifest(height, 1, seqs), 0xEE),
		"non-ascending":  encodeManifest(height, 1, []uint64{5, 5}),
		"truncated-seqs": encodeManifest(height, 1, seqs)[:20],
	}
	for name, buf := range bad {
		if _, _, _, err := decodeManifest(buf); err == nil {
			t.Errorf("%s: decodeManifest accepted corrupt manifest", name)
		}
	}
}
