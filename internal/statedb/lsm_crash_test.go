package statedb

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fabriccrdt/internal/rwset"
)

// The LSM crash matrix. Two regimes, mirroring the disk backend's
// discipline (torn log tails recover, corrupt snapshots refuse):
//
//   - States a crash CAN produce — torn/corrupt WAL tails, orphan runs
//     (flushed but never referenced by a manifest, in any state of
//     damage), leftover .tmp files, a stale WAL after a manifest swap —
//     must reopen to a consistent pre-crash prefix.
//   - States a crash CANNOT produce — damage to a manifest-listed run or
//     to the manifest itself (both fsynced before their rename installed
//     them) — must refuse to open rather than serve silently wrong data.

// buildFlushedLSM creates an LSM store with several flushed runs and a
// reference DB holding the same state, and returns the directory.
func buildFlushedLSM(t *testing.T, blocks int) (string, *DB) {
	t.Helper()
	dir := t.TempDir()
	trivial := New()
	db, err := NewLSMWithOptions(dir, tinyLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 53, blocks, trivial, db)
	waitCompactions(db)
	if stats, _ := db.Stats(); stats.Flushes == 0 {
		t.Fatal("fixture never flushed")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, trivial
}

// listedRunPaths returns the manifest-referenced run files.
func listedRunPaths(t *testing.T, dir string) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, manifestFileName))
	if err != nil {
		t.Fatal(err)
	}
	var payload []byte
	if _, err := scanFrames(bytes.NewReader(raw), func(p []byte) error { payload = p; return nil }); err != nil {
		t.Fatal(err)
	}
	_, _, seqs, err := decodeManifest(payload)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(seqs))
	for i, s := range seqs {
		paths[i] = filepath.Join(dir, runFileName(s))
	}
	return paths
}

// TestLSMCrashWALTail: a crash mid-Apply leaves a torn or corrupt WAL
// tail; reopen must keep every earlier batch and accept new ones.
func TestLSMCrashWALTail(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"torn-frame": func(wal []byte) []byte {
			return append(wal, []byte{0x99, 0x00, 0x00, 0x00, 0x12}...)
		},
		"bad-crc": func(wal []byte) []byte {
			tail := append([]byte(nil), wal...)
			tail[len(tail)-1] ^= 0xff
			return tail
		},
		"garbage": func(wal []byte) []byte {
			return append(wal, bytes.Repeat([]byte{0xab}, 37)...)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			// A large memtable keeps all batches in the WAL, so the damage
			// lands on real data, not an empty file.
			dir := t.TempDir()
			good := New()
			db, err := NewLSMWithOptions(dir, LSMOptions{MemtableBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			applyRandomBatches(t, 17, 10, good, db)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			walPath := filepath.Join(dir, walFileName)
			wal, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, corrupt(wal), 0o644); err != nil {
				t.Fatal(err)
			}
			reopened, err := NewLSMWithOptions(dir, LSMOptions{MemtableBytes: 1 << 20})
			if err != nil {
				t.Fatalf("reopen after %s: %v", name, err)
			}
			defer reopened.Close()
			if name == "bad-crc" {
				// The final intact batch is gone with the flipped bit.
				if h := reopened.Height().BlockNum; h != 9 {
					t.Fatalf("height after dropping corrupt tail = %d, want 9", h)
				}
			} else {
				requireSameState(t, good, reopened)
			}
			// The truncated WAL accepts new batches and survives a clean
			// reopen.
			batch := NewUpdateBatch()
			batch.Put("post", []byte("crash"), rwset.Version{BlockNum: 11})
			reopened.Apply(batch, rwset.Version{BlockNum: 11})
			if err := reopened.Close(); err != nil {
				t.Fatalf("close after recovery: %v", err)
			}
			again, err := NewLSM(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer again.Close()
			if vv, ok := again.Get("post"); !ok || string(vv.Value) != "crash" {
				t.Fatal("post-recovery batch lost")
			}
		})
	}
}

// TestLSMCrashOrphanRun: a crash between a run's rename and the manifest
// install leaves an orphan run whose batches are still in the WAL. The
// orphan — whole, torn, or reduced to a temp file — must be swept and
// the state recovered from the WAL, regardless of damage.
func TestLSMCrashOrphanRun(t *testing.T) {
	mutations := map[string]func(t *testing.T, dir, orphan string){
		"complete": func(t *testing.T, dir, orphan string) {},
		"truncated-tail": func(t *testing.T, dir, orphan string) {
			raw, err := os.ReadFile(orphan)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(orphan, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"missing-footer": func(t *testing.T, dir, orphan string) {
			raw, err := os.ReadFile(orphan)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(orphan, raw[:len(raw)-runFooterLen], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"still-a-tempfile": func(t *testing.T, dir, orphan string) {
			if err := os.Rename(orphan, orphan+".tmp"); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			good := New()
			// No flush during the run: everything stays in the WAL.
			db, err := NewLSMWithOptions(dir, LSMOptions{MemtableBytes: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			applyRandomBatches(t, 59, 10, good, db)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			// Fabricate the orphan: a run holding garbage-but-valid data at
			// a sequence no manifest references (there is no manifest at
			// all), as if the crash hit right after the rename.
			orphan := filepath.Join(dir, runFileName(7))
			if err := writeRun(orphan, []runEntry{{ikey: dataKey("zzz-orphan"), value: []byte("lost")}}, 256); err != nil {
				t.Fatal(err)
			}
			mutate(t, dir, orphan)

			reopened, err := NewLSMWithOptions(dir, tinyLSMOptions())
			if err != nil {
				t.Fatalf("reopen with %s orphan: %v", name, err)
			}
			defer reopened.Close()
			requireSameState(t, good, reopened)
			if _, ok := reopened.Get("zzz-orphan"); ok {
				t.Fatal("orphan run's contents leaked into the state")
			}
			// The orphan file itself is gone.
			leftovers, err := filepath.Glob(filepath.Join(dir, "run-*"))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range leftovers {
				if strings.Contains(f, runFileName(7)) {
					t.Fatalf("orphan %s survived reopen", f)
				}
			}
		})
	}
}

// TestLSMCrashStaleWAL: a crash between the manifest install and the WAL
// truncate leaves every flushed batch duplicated in the WAL. Replay must
// be idempotent — same state, same key count — and keep accepting writes.
func TestLSMCrashStaleWAL(t *testing.T) {
	dir := t.TempDir()
	good := New()
	// Phase 1: batches accumulate in the WAL (no flush).
	db, err := NewLSMWithOptions(dir, LSMOptions{MemtableBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 61, 10, good, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	staleWAL, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(staleWAL) == 0 {
		t.Fatal("fixture WAL is empty")
	}
	// Phase 2: reopen with a tiny memtable and apply one more batch —
	// the replayed memtable tips over and everything (blocks 1..11) is
	// flushed into a run, truncating the WAL.
	db2, err := NewLSMWithOptions(dir, tinyLSMOptions())
	if err != nil {
		t.Fatal(err)
	}
	trigger := map[string]Update{"flush-trigger": {Value: bytes.Repeat([]byte{0x42}, 64), Version: rwset.Version{BlockNum: 11}}}
	h11 := rwset.Version{BlockNum: 11}
	batch := NewUpdateBatch()
	batch.Put("flush-trigger", trigger["flush-trigger"].Value, trigger["flush-trigger"].Version)
	db2.Apply(batch, h11)
	good.Apply(batch, h11)
	waitCompactions(db2)
	if stats, _ := db2.Stats(); stats.Flushes == 0 {
		t.Fatal("phase 2 never flushed")
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the flush installed the manifest but the WAL
	// truncate never happened, so the WAL still holds every flushed
	// batch — blocks 1..10 from phase 1 plus the trigger batch.
	staleWAL = append(staleWAL, frameRecord(encodeBatch(trigger, nil, h11))...)
	if err := os.WriteFile(filepath.Join(dir, walFileName), staleWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewLSMWithOptions(dir, tinyLSMOptions())
	if err != nil {
		t.Fatalf("reopen with stale WAL: %v", err)
	}
	defer reopened.Close()
	// Idempotent replay: same state, same height, and no key-count drift
	// from the re-applied duplicates.
	requireSameState(t, good, reopened)
	if got, want := reopened.KeyCount(), len(reopened.GetRange("", "")); got != want {
		t.Fatalf("KeyCount %d != live keys %d after idempotent replay", got, want)
	}
	applyRandomBatches(t, 71, 3, reopened)
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLSMCrashListedRunDamage: damage to a manifest-listed run cannot
// come from a crash (runs are fsynced before the manifest names them), so
// every such cell refuses to open with a descriptive error instead of
// serving a silently wrong state.
func TestLSMCrashListedRunDamage(t *testing.T) {
	cells := map[string]func(t *testing.T, run string){
		"missing-run": func(t *testing.T, run string) {
			if err := os.Remove(run); err != nil {
				t.Fatal(err)
			}
		},
		"truncated-tail": func(t *testing.T, run string) {
			raw, _ := os.ReadFile(run)
			if err := os.WriteFile(run, raw[:len(raw)-1], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"corrupt-footer": func(t *testing.T, run string) {
			raw, _ := os.ReadFile(run)
			raw[len(raw)-1] ^= 0xff
			if err := os.WriteFile(run, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"stale-footer-regions": func(t *testing.T, run string) {
			// Shift the whole file by appending bytes after the footer: the
			// regions no longer tile the file.
			raw, _ := os.ReadFile(run)
			if err := os.WriteFile(run, append(raw, 0xAA, 0xBB), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"corrupt-filter-or-index": func(t *testing.T, run string) {
			// Flip a bit just before the footer — inside the index frame
			// (or, for a tiny run, the filter frame); the frame CRC must
			// catch it either way.
			raw, _ := os.ReadFile(run)
			raw[len(raw)-runFooterLen-1] ^= 0xff
			if err := os.WriteFile(run, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty-run": func(t *testing.T, run string) {
			if err := os.WriteFile(run, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, damage := range cells {
		t.Run(name, func(t *testing.T) {
			dir, _ := buildFlushedLSM(t, 40)
			runs := listedRunPaths(t, dir)
			if len(runs) == 0 {
				t.Fatal("fixture has no listed runs")
			}
			damage(t, runs[len(runs)-1])
			if _, err := NewLSMWithOptions(dir, tinyLSMOptions()); err == nil {
				t.Fatalf("%s: open served a store with a damaged listed run", name)
			}
		})
	}
}

// TestLSMCrashManifestDamage: like listed runs, the manifest is installed
// by fsync + rename, so a torn or corrupt manifest means external damage:
// refuse. A leftover MANIFEST.tmp from a crash mid-install is debris and
// must be swept while the previous manifest keeps working.
func TestLSMCrashManifestDamage(t *testing.T) {
	t.Run("corrupt-manifest-refuses", func(t *testing.T) {
		dir, _ := buildFlushedLSM(t, 40)
		path := filepath.Join(dir, manifestFileName)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := NewLSMWithOptions(dir, tinyLSMOptions()); err == nil {
			t.Fatal("open accepted a corrupt manifest")
		}
	})
	t.Run("manifest-tmp-swept", func(t *testing.T) {
		dir, good := buildFlushedLSM(t, 40)
		tmp := filepath.Join(dir, manifestFileName+".tmp")
		if err := os.WriteFile(tmp, []byte("torn manifest write"), 0o644); err != nil {
			t.Fatal(err)
		}
		reopened, err := NewLSMWithOptions(dir, tinyLSMOptions())
		if err != nil {
			t.Fatalf("reopen with manifest temp debris: %v", err)
		}
		defer reopened.Close()
		requireSameState(t, good, reopened)
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Fatal("manifest temp debris survived reopen")
		}
	})
}
