package statedb

import (
	"reflect"
	"testing"

	"fabriccrdt/internal/rwset"
)

// TestRangeConformance pins the Range contract every backend must agree
// on, including the degenerate inputs that historically diverged (the
// sharded backend returned a nil slice for empty scans):
//
//   - [start, end) sorted ascending
//   - empty end means "to the last key"
//   - start == end is an empty scan
//   - start > end is an empty scan, not a panic or a wrap-around
//   - the result is always non-nil, even when empty
func TestRangeConformance(t *testing.T) {
	type backendCase struct {
		name string
		db   *DB
	}
	newBackends := func(t *testing.T) []backendCase {
		t.Helper()
		disk, err := NewDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { disk.Close() })
		// Tiny thresholds so LSM range scans really merge memtable + runs.
		lsm, err := NewLSMWithOptions(t.TempDir(), tinyLSMOptions())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lsm.Close() })
		return []backendCase{
			{"memory", New()},
			{"sharded", NewSharded(4)},
			{"disk", disk},
			{"lsm", lsm},
		}
	}

	seedKeys := []string{"a", "b", "c", "m", "x", "z"}
	seed := func(dbs []backendCase) {
		for blk, k := range seedKeys {
			batch := NewUpdateBatch()
			batch.Put(k, []byte("v-"+k), rwset.Version{BlockNum: uint64(blk + 1)})
			for _, bc := range dbs {
				bc.db.Apply(batch, rwset.Version{BlockNum: uint64(blk + 1)})
			}
		}
	}

	keysOf := func(kvs []KV) []string {
		keys := make([]string, len(kvs))
		for i, kv := range kvs {
			keys[i] = kv.Key
		}
		return keys
	}

	cases := []struct {
		name       string
		start, end string
		wantKeys   []string
	}{
		{"full-scan", "", "", []string{"a", "b", "c", "m", "x", "z"}},
		{"empty-end-means-to-last-key", "m", "", []string{"m", "x", "z"}},
		{"empty-end-from-last-key", "z", "", []string{"z"}},
		{"bounded", "b", "x", []string{"b", "c", "m"}},
		{"start-equals-end", "m", "m", []string{}},
		{"start-after-end", "x", "b", []string{}},
		{"both-past-keyspace", "zz", "zzz", []string{}},
		{"start-past-keyspace-empty-end", "zz", "", []string{}},
		{"end-before-keyspace", "", "a", []string{}},
	}

	t.Run("populated", func(t *testing.T) {
		dbs := newBackends(t)
		seed(dbs)
		for _, tc := range cases {
			for _, bc := range dbs {
				got := bc.db.GetRange(tc.start, tc.end)
				if got == nil {
					t.Errorf("%s/%s: Range returned nil, want non-nil empty slice", tc.name, bc.name)
					continue
				}
				if !reflect.DeepEqual(keysOf(got), tc.wantKeys) {
					t.Errorf("%s/%s: keys = %v, want %v", tc.name, bc.name, keysOf(got), tc.wantKeys)
				}
			}
			// And all backends agree byte-for-byte, not just on keys.
			want := dbs[0].db.GetRange(tc.start, tc.end)
			for _, bc := range dbs[1:] {
				if got := bc.db.GetRange(tc.start, tc.end); !reflect.DeepEqual(want, got) {
					t.Errorf("%s: %s diverged from memory:\nwant %v\ngot  %v", tc.name, bc.name, want, got)
				}
			}
		}
	})

	t.Run("empty-store", func(t *testing.T) {
		dbs := newBackends(t)
		for _, bounds := range [][2]string{{"", ""}, {"a", ""}, {"a", "a"}, {"b", "a"}} {
			for _, bc := range dbs {
				got := bc.db.GetRange(bounds[0], bounds[1])
				if got == nil || len(got) != 0 {
					t.Errorf("empty store %s: Range(%q, %q) = %v, want non-nil empty", bc.name, bounds[0], bounds[1], got)
				}
			}
		}
	})

	// Deletes must not resurface under any bound shape (the LSM merges
	// tombstones across memtable and runs here).
	t.Run("after-deletes", func(t *testing.T) {
		dbs := newBackends(t)
		seed(dbs)
		del := NewUpdateBatch()
		del.Delete("c", rwset.Version{BlockNum: 10})
		del.Delete("z", rwset.Version{BlockNum: 10})
		for _, bc := range dbs {
			bc.db.Apply(del, rwset.Version{BlockNum: 10})
		}
		want := []string{"a", "b", "m", "x"}
		for _, bc := range dbs {
			if got := keysOf(bc.db.GetRange("", "")); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: keys after delete = %v, want %v", bc.name, got, want)
			}
			if got := bc.db.GetRange("c", "d"); len(got) != 0 || got == nil {
				t.Errorf("%s: deleted key still ranges: %v", bc.name, got)
			}
			if got := bc.db.GetRange("z", ""); len(got) != 0 || got == nil {
				t.Errorf("%s: deleted last key still ranges under empty end: %v", bc.name, got)
			}
		}
	})

	// A reopen must not change any answer for the durable backends.
	t.Run("after-reopen", func(t *testing.T) {
		diskDir, lsmDir := t.TempDir(), t.TempDir()
		disk, err := NewDisk(diskDir)
		if err != nil {
			t.Fatal(err)
		}
		lsm, err := NewLSMWithOptions(lsmDir, tinyLSMOptions())
		if err != nil {
			t.Fatal(err)
		}
		mem := New()
		dbs := []backendCase{{"memory", mem}, {"disk", disk}, {"lsm", lsm}}
		seed(dbs)
		waitCompactions(lsm)
		if err := disk.Close(); err != nil {
			t.Fatal(err)
		}
		if err := lsm.Close(); err != nil {
			t.Fatal(err)
		}
		if disk, err = NewDisk(diskDir); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { disk.Close() })
		if lsm, err = NewLSMWithOptions(lsmDir, tinyLSMOptions()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lsm.Close() })
		for _, tc := range cases {
			want := mem.GetRange(tc.start, tc.end)
			for _, bc := range []backendCase{{"disk", disk}, {"lsm", lsm}} {
				got := bc.db.GetRange(tc.start, tc.end)
				if got == nil || !reflect.DeepEqual(want, got) {
					t.Errorf("%s/%s after reopen:\nwant %v\ngot  %v", tc.name, bc.name, want, got)
				}
			}
		}
	})

	// The conformance harness also cross-checks randomized bounds so new
	// backends cannot pass on the handpicked cases alone.
	t.Run("randomized-bounds", func(t *testing.T) {
		dbs := newBackends(t)
		seed(dbs)
		bounds := []string{"", "a", "a0", "b", "c", "m", "mm", "x", "z", "z0", "zz"}
		for _, s := range bounds {
			for _, e := range bounds {
				want := dbs[0].db.GetRange(s, e)
				if want == nil {
					t.Fatalf("memory backend returned nil for Range(%q, %q)", s, e)
				}
				for _, bc := range dbs[1:] {
					if got := bc.db.GetRange(s, e); !reflect.DeepEqual(want, got) {
						t.Errorf("Range(%q, %q) on %s diverged:\nwant %v\ngot  %v", s, e, bc.name, want, got)
					}
				}
			}
		}
	})
}
