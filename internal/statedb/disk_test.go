package statedb

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"fabriccrdt/internal/rwset"
)

// applyRandomBatches drives identical randomized batch sequences into every
// given DB (the cross-backend parity harness).
func applyRandomBatches(t *testing.T, seed int64, blocks int, dbs ...*DB) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for blk := uint64(1); blk <= uint64(blocks); blk++ {
		batch := NewUpdateBatch()
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(40))
			switch rng.Intn(3) {
			case 0:
				batch.Delete(key, rwset.Version{BlockNum: blk})
			case 1:
				batch.Put(key, []byte(fmt.Sprintf("v%d-%d", blk, i)), rwset.Version{BlockNum: blk, TxNum: uint64(i)})
			case 2:
				batch.PutMeta("crdt/"+key, []byte(fmt.Sprintf("m%d", blk)))
			}
		}
		for _, db := range dbs {
			db.Apply(batch, rwset.Version{BlockNum: blk})
		}
	}
}

// requireSameState fails unless both DBs expose identical data, metadata
// and height.
func requireSameState(t *testing.T, want, got *DB) {
	t.Helper()
	if a, b := want.GetRange("", ""), got.GetRange("", ""); !reflect.DeepEqual(a, b) {
		t.Fatalf("full range diverged:\nwant %v\ngot  %v", a, b)
	}
	if want.KeyCount() != got.KeyCount() {
		t.Fatalf("key counts diverged: %d vs %d", want.KeyCount(), got.KeyCount())
	}
	if want.Height() != got.Height() {
		t.Fatalf("heights diverged: %v vs %v", want.Height(), got.Height())
	}
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("crdt/k%d", i)
		if !bytes.Equal(want.GetMeta(key), got.GetMeta(key)) {
			t.Fatalf("GetMeta(%q) diverged", key)
		}
	}
}

func TestDiskMatchesTrivialBackend(t *testing.T) {
	trivial := New()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	applyRandomBatches(t, 7, 50, trivial, disk)
	requireSameState(t, trivial, disk)
	if a, b := trivial.GetRange("k1", "k3"), disk.GetRange("k1", "k3"); !reflect.DeepEqual(a, b) {
		t.Fatalf("sub range diverged:\ntrivial %v\ndisk %v", a, b)
	}
}

func TestDiskReopenRestoresState(t *testing.T) {
	dir := t.TempDir()
	trivial := New()
	disk, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 11, 30, trivial, disk)
	if err := disk.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	reopened, err := NewDisk(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	requireSameState(t, trivial, reopened)
	if got := reopened.Height(); got != (rwset.Version{BlockNum: 30}) {
		t.Fatalf("reopened height = %v, want 30:0", got)
	}
	// The reopened store keeps accepting and persisting batches.
	applyRandomBatches(t, 13, 5, trivial, reopened)
	requireSameState(t, trivial, reopened)
}

func TestDiskEmptyDirRejected(t *testing.T) {
	if _, err := NewDisk(""); err == nil {
		t.Fatal("NewDisk(\"\") succeeded")
	}
	if _, err := OpenDisk("", DiskOptions{}); err == nil {
		t.Fatal("OpenDisk(\"\") succeeded")
	}
}

// TestDiskCorruptTailTruncated simulates a crash mid-Apply: a torn or
// CRC-corrupt log tail must be truncated on open, keeping every earlier
// batch, rather than panicking or refusing to open.
func TestDiskCorruptTailTruncated(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"torn-frame": func(log []byte) []byte {
			return append(log, []byte{0x99, 0x00, 0x00, 0x00, 0x12}...) // header + partial payload
		},
		"bad-crc": func(log []byte) []byte {
			tail := append([]byte(nil), log...)
			tail[len(tail)-1] ^= 0xff // flip a bit inside the last record's payload
			return tail
		},
		"garbage": func(log []byte) []byte {
			return append(log, bytes.Repeat([]byte{0xab}, 37)...)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			good := New()
			disk, err := NewDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			applyRandomBatches(t, 17, 10, good, disk)
			if err := disk.Close(); err != nil {
				t.Fatal(err)
			}
			logPath := filepath.Join(dir, "state.log")
			log, err := os.ReadFile(logPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(logPath, corrupt(log), 0o644); err != nil {
				t.Fatal(err)
			}
			reopened, err := NewDisk(dir)
			if err != nil {
				t.Fatalf("reopen after %s: %v", name, err)
			}
			defer reopened.Close()
			if name == "bad-crc" {
				// The last intact batch is gone; replay the good DB minus
				// its final batch is awkward, so just require a sane height
				// strictly below the corrupted batch's.
				if h := reopened.Height().BlockNum; h != 9 {
					t.Fatalf("height after dropping corrupt tail = %d, want 9", h)
				}
			} else {
				requireSameState(t, good, reopened)
			}
			// The truncated log must accept new batches and survive another
			// clean reopen.
			batch := NewUpdateBatch()
			batch.Put("post", []byte("crash"), rwset.Version{BlockNum: 11})
			reopened.Apply(batch, rwset.Version{BlockNum: 11})
			if err := reopened.Close(); err != nil {
				t.Fatalf("close after recovery: %v", err)
			}
			again, err := NewDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer again.Close()
			if vv, ok := again.Get("post"); !ok || string(vv.Value) != "crash" {
				t.Fatal("post-recovery batch lost")
			}
		})
	}
}

// TestDiskCompaction forces frequent compaction and checks the snapshot +
// truncated log still reproduce the reference state across a reopen.
func TestDiskCompaction(t *testing.T) {
	dir := t.TempDir()
	trivial := New()
	disk, err := NewDiskWithOptions(dir, DiskOptions{CompactAfterBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 23, 60, trivial, disk)
	if _, err := os.Stat(filepath.Join(dir, "state.snap")); err != nil {
		t.Fatalf("no snapshot written despite tiny compaction threshold: %v", err)
	}
	logInfo, err := os.Stat(filepath.Join(dir, "state.log"))
	if err != nil {
		t.Fatal(err)
	}
	if logInfo.Size() > 4096 {
		t.Fatalf("log size %d after compaction, want it truncated small", logInfo.Size())
	}
	requireSameState(t, trivial, disk)
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	requireSameState(t, trivial, reopened)
}

func TestDiskReset(t *testing.T) {
	dir := t.TempDir()
	db, err := NewDiskWithOptions(dir, DiskOptions{CompactAfterBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 29, 20, db)
	db.Reset()
	if db.KeyCount() != 0 || !db.Height().IsZero() {
		t.Fatal("reset did not clear state")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reset must be durable too: a reopen sees an empty store.
	reopened, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.KeyCount() != 0 || !reopened.Height().IsZero() {
		t.Fatal("reset did not clear the on-disk state")
	}
}

func TestDiskSyncEveryApply(t *testing.T) {
	db, err := NewDiskWithOptions(t.TempDir(), DiskOptions{SyncEveryApply: true})
	if err != nil {
		t.Fatal(err)
	}
	applyRandomBatches(t, 31, 5, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskApplyAfterCloseSurfacesError(t *testing.T) {
	dir := t.TempDir()
	db, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	batch := NewUpdateBatch()
	batch.Put("k", []byte("v"), rwset.Version{BlockNum: 1})
	db.Apply(batch, rwset.Version{BlockNum: 1})
	if err := db.Close(); err == nil {
		t.Fatal("Apply after Close left no deferred error")
	}
}

// TestDiskConcurrentReadsDuringCommit mirrors the other backends'
// concurrency tests: reads must never race with batch applies.
func TestDiskConcurrentReadsDuringCommit(t *testing.T) {
	db, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b := NewUpdateBatch()
				for k := 0; k < 8; k++ {
					b.Put(fmt.Sprintf("k%d", k), []byte{byte(worker)}, rwset.Version{BlockNum: uint64(i)})
				}
				db.Apply(b, rwset.Version{BlockNum: uint64(i)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				db.Get("k1")
				db.Version("k2")
				db.Height()
				db.GetRange("", "")
				db.KeyCount()
			}
		}()
	}
	wg.Wait()
}

func TestBatchRecordRoundTrip(t *testing.T) {
	updates := map[string]Update{
		"alive":   {Value: []byte("v1"), Version: rwset.Version{BlockNum: 3, TxNum: 2}},
		"gone":    {IsDelete: true, Version: rwset.Version{BlockNum: 3, TxNum: 4}},
		"empty":   {Value: nil, Version: rwset.Version{BlockNum: 3, TxNum: 5}},
		"bin\x00": {Value: []byte{0, 1, 2, 255}, Version: rwset.Version{BlockNum: 1, TxNum: 0}},
	}
	meta := map[string][]byte{"crdt/alive": []byte(`{"doc":1}`), "crdt/zero": {}}
	height := rwset.Version{BlockNum: 3, TxNum: 9}
	gotU, gotM, gotH, err := decodeBatch(encodeBatch(updates, meta, height))
	if err != nil {
		t.Fatal(err)
	}
	if gotH != height {
		t.Fatalf("height = %v, want %v", gotH, height)
	}
	if len(gotU) != len(updates) {
		t.Fatalf("updates = %v", gotU)
	}
	for k, want := range updates {
		got := gotU[k]
		if got.IsDelete != want.IsDelete || got.Version != want.Version || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("update %q = %+v, want %+v", k, got, want)
		}
	}
	for k, want := range meta {
		if !bytes.Equal(gotM[k], want) {
			t.Fatalf("meta %q = %q, want %q", k, gotM[k], want)
		}
	}
}

func TestBatchRecordRejectsCorruptStructure(t *testing.T) {
	good := encodeBatch(map[string]Update{"k": {Value: []byte("v"), Version: rwset.Version{BlockNum: 1}}},
		map[string][]byte{"m": []byte("x")}, rwset.Version{BlockNum: 1})
	cases := map[string][]byte{
		"empty":         {},
		"bad-version":   append([]byte{42}, good[1:]...),
		"truncated":     good[:len(good)-3],
		"trailing-junk": append(append([]byte(nil), good...), 1, 2, 3),
	}
	for name, buf := range cases {
		if _, _, _, err := decodeBatch(buf); err == nil {
			t.Errorf("%s: decodeBatch accepted corrupt record", name)
		}
	}
}
