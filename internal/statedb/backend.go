package statedb

import "sync"

// Backend is the storage engine behind a DB. Implementations must be safe
// for concurrent use: endorsement-phase reads run while block commits write.
//
// Apply must commit the whole batch before any of it becomes visible to
// Range: range reads are not recorded into read sets, so MVCC validation
// cannot catch a torn scan. Point reads (Get/GetMeta) may observe a batch
// partially — each key's version is re-checked by MVCC validation at
// commit, so per-key atomicity suffices there.
type Backend interface {
	// Get returns the value stored at key.
	Get(key string) (VersionedValue, bool)
	// GetMeta returns a metadata value (nil when absent).
	GetMeta(key string) []byte
	// Apply commits a set of key mutations and metadata writes.
	Apply(updates map[string]Update, meta map[string][]byte)
	// Range returns all keys in [start, end) in sorted order; an empty end
	// means "to the last key".
	Range(start, end string) []KV
	// KeyCount returns the number of live keys.
	KeyCount() int
	// Reset drops all contents.
	Reset()
}

// mapBackend is the trivial backend: one map pair behind one global RWMutex.
// It is the default and the reference implementation the sharded backend is
// tested against.
type mapBackend struct {
	mu   sync.RWMutex
	data map[string]VersionedValue
	meta map[string][]byte
}

func newMapBackend() *mapBackend {
	return &mapBackend{
		data: make(map[string]VersionedValue),
		meta: make(map[string][]byte),
	}
}

func (b *mapBackend) Get(key string) (VersionedValue, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	vv, ok := b.data[key]
	return vv, ok
}

func (b *mapBackend) GetMeta(key string) []byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.meta[key]
}

func (b *mapBackend) Apply(updates map[string]Update, meta map[string][]byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for key, u := range updates {
		if u.IsDelete {
			delete(b.data, key)
			continue
		}
		b.data[key] = VersionedValue{Value: u.Value, Version: u.Version}
	}
	for key, v := range meta {
		b.meta[key] = v
	}
}

func (b *mapBackend) Range(start, end string) []KV {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]KV, 0, len(b.data))
	for k, vv := range b.data {
		if k >= start && (end == "" || k < end) {
			out = append(out, KV{Key: k, VersionedValue: vv})
		}
	}
	sortKVs(out)
	return out
}

func (b *mapBackend) KeyCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.data)
}

func (b *mapBackend) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.data = make(map[string]VersionedValue)
	b.meta = make(map[string][]byte)
}
