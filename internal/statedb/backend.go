package statedb

import (
	"sync"

	"fabriccrdt/internal/rwset"
)

// Backend is the storage engine behind a DB. Implementations must be safe
// for concurrent use: endorsement-phase reads run while block commits write.
//
// Apply must commit the whole batch before any of it becomes visible to
// Range: range reads are not recorded into read sets, so MVCC validation
// cannot catch a torn scan. Point reads (Get/GetMeta) may observe a batch
// partially — each key's version is re-checked by MVCC validation at
// commit, so per-key atomicity suffices there.
//
// The built-in implementations are the single-lock mapBackend (New), the
// per-shard-locked shardedBackend (NewSharded) and the persistent
// diskBackend (NewDisk / OpenDisk). Durable backends additionally satisfy
// the Durable interface.
type Backend interface {
	// Get returns the value stored at key.
	Get(key string) (VersionedValue, bool)
	// GetMeta returns a metadata value (nil when absent).
	GetMeta(key string) []byte
	// Apply commits a set of key mutations and metadata writes produced by
	// one block, together with that block's commit height. In-memory
	// backends may ignore the height (DB tracks it for them); durable
	// backends persist it so a restarted peer knows where to resume.
	Apply(updates map[string]Update, meta map[string][]byte, height rwset.Version)
	// Range returns all keys in [start, end) in sorted order; an empty end
	// means "to the last key".
	Range(start, end string) []KV
	// KeyCount returns the number of live keys.
	KeyCount() int
	// Reset drops all contents.
	Reset()
}

// Durable is implemented by backends whose contents survive process
// restarts. NewWithBackend seeds the DB's height from PersistedHeight, so
// a reopened DB reports the height of the last durably committed block;
// DB.Close forwards to Close.
type Durable interface {
	Backend
	// PersistedHeight returns the height recorded by the last Apply that
	// reached the store (zero for a fresh store).
	PersistedHeight() rwset.Version
	// Close flushes and releases the store. The backend must not be used
	// afterwards.
	Close() error
}

// mapBackend is the trivial backend: one map pair behind one global RWMutex.
// It is the default and the reference implementation the sharded and disk
// backends are tested against.
type mapBackend struct {
	mu   sync.RWMutex
	data map[string]VersionedValue
	meta map[string][]byte
}

func newMapBackend() *mapBackend {
	return &mapBackend{
		data: make(map[string]VersionedValue),
		meta: make(map[string][]byte),
	}
}

func (b *mapBackend) Get(key string) (VersionedValue, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	vv, ok := b.data[key]
	return vv, ok
}

func (b *mapBackend) GetMeta(key string) []byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.meta[key]
}

func (b *mapBackend) Apply(updates map[string]Update, meta map[string][]byte, _ rwset.Version) {
	b.mu.Lock()
	defer b.mu.Unlock()
	applyToMaps(b.data, b.meta, updates, meta)
}

// applyToMaps applies one batch to a data/meta map pair — the shared
// in-memory commit step of the map and disk backends.
func applyToMaps(data map[string]VersionedValue, metaDst map[string][]byte, updates map[string]Update, meta map[string][]byte) {
	for key, u := range updates {
		if u.IsDelete {
			delete(data, key)
			continue
		}
		data[key] = VersionedValue{Value: u.Value, Version: u.Version}
	}
	for key, v := range meta {
		metaDst[key] = v
	}
}

func (b *mapBackend) Range(start, end string) []KV {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return rangeOverMap(b.data, start, end)
}

// rangeOverMap collects [start, end) from a data map in sorted order.
func rangeOverMap(data map[string]VersionedValue, start, end string) []KV {
	out := make([]KV, 0, len(data))
	for k, vv := range data {
		if k >= start && (end == "" || k < end) {
			out = append(out, KV{Key: k, VersionedValue: vv})
		}
	}
	sortKVs(out)
	return out
}

func (b *mapBackend) KeyCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.data)
}

func (b *mapBackend) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.data = make(map[string]VersionedValue)
	b.meta = make(map[string][]byte)
}
