package statedb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fabriccrdt/internal/rwset"
)

// TestBackendTortureEquivalence drives all four backends — memory,
// sharded, disk, LSM — through one randomized op stream: puts, deletes,
// metadata writes, range scans (including degenerate bounds), mid-stream
// reopens of the durable backends, and thresholds tiny enough that disk
// compaction, LSM flushes and LSM background compaction all fire during
// the run. Every backend must stay byte-identical to the map reference
// at every observation point. Run under -race this doubles as the
// concurrency-free interleaving check for flush/compaction state swaps.
func TestBackendTortureEquivalence(t *testing.T) {
	for _, seed := range []int64{101, 202, 303} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			tortureRun(t, seed)
		})
	}
}

// tortureHarness owns the four backends plus the directories the durable
// two reopen from.
type tortureHarness struct {
	ref     *DB // map backend: the executable spec
	sharded *DB
	disk    *DB
	lsm     *DB
	diskDir string
	lsmDir  string
}

func (h *tortureHarness) all() []*DB { return []*DB{h.ref, h.sharded, h.disk, h.lsm} }

func (h *tortureHarness) names() []string { return []string{"ref", "sharded", "disk", "lsm"} }

func tortureDiskOptions() DiskOptions {
	return DiskOptions{CompactAfterBytes: 1 << 10}
}

func newTortureHarness(t *testing.T) *tortureHarness {
	t.Helper()
	h := &tortureHarness{
		ref:     New(),
		sharded: NewSharded(4),
		diskDir: t.TempDir(),
		lsmDir:  t.TempDir(),
	}
	var err error
	if h.disk, err = NewDiskWithOptions(h.diskDir, tortureDiskOptions()); err != nil {
		t.Fatal(err)
	}
	if h.lsm, err = NewLSMWithOptions(h.lsmDir, tinyLSMOptions()); err != nil {
		t.Fatal(err)
	}
	return h
}

func tortureRun(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	h := newTortureHarness(t)
	defer func() {
		waitCompactions(h.lsm)
		for i, db := range h.all() {
			if err := db.Close(); err != nil {
				t.Errorf("close %s: %v", h.names()[i], err)
			}
		}
	}()

	key := func() string { return fmt.Sprintf("k%03d", rng.Intn(120)) }
	blk := uint64(0)

	applyBatch := func() {
		blk++
		batch := NewUpdateBatch()
		n := 1 + rng.Intn(25)
		for i := 0; i < n; i++ {
			switch rng.Intn(5) {
			case 0:
				batch.Delete(key(), rwset.Version{BlockNum: blk, TxNum: uint64(i)})
			case 4:
				batch.PutMeta("crdt/"+key(), []byte(fmt.Sprintf("m%d-%d", blk, i)))
			default:
				// Values vary in size so LSM blocks split at assorted points.
				batch.Put(key(), []byte(fmt.Sprintf("v%d-%d-%0*d", blk, i, rng.Intn(60), 0)), rwset.Version{BlockNum: blk, TxNum: uint64(i)})
			}
		}
		for _, db := range h.all() {
			db.Apply(batch, rwset.Version{BlockNum: blk})
		}
	}

	compareRanges := func(start, end string) {
		want := h.ref.GetRange(start, end)
		for i, db := range h.all()[1:] {
			got := db.GetRange(start, end)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("block %d: Range(%q, %q) diverged on %s:\nwant %v\ngot  %v",
					blk, start, end, h.names()[i+1], want, got)
			}
		}
	}

	observe := func() {
		compareRanges("", "")
		a, b := key(), key()
		compareRanges(a, b) // arbitrary bounds: may be empty, inverted, equal
		compareRanges(a, "")
		compareRanges(a, a)
		for i, db := range h.all()[1:] {
			if got, want := db.KeyCount(), h.ref.KeyCount(); got != want {
				t.Fatalf("block %d: KeyCount on %s = %d, want %d", blk, h.names()[i+1], got, want)
			}
			k := key()
			wantV, wantOK := h.ref.Get(k)
			gotV, gotOK := db.Get(k)
			if wantOK != gotOK || !reflect.DeepEqual(wantV, gotV) {
				t.Fatalf("block %d: Get(%q) on %s diverged", blk, k, h.names()[i+1])
			}
			mk := "crdt/" + key()
			if !reflect.DeepEqual(h.ref.GetMeta(mk), db.GetMeta(mk)) {
				t.Fatalf("block %d: GetMeta(%q) on %s diverged", blk, mk, h.names()[i+1])
			}
		}
	}

	reopenDurable := func() {
		waitCompactions(h.lsm)
		if err := h.disk.Close(); err != nil {
			t.Fatalf("block %d: close disk: %v", blk, err)
		}
		if err := h.lsm.Close(); err != nil {
			t.Fatalf("block %d: close lsm: %v", blk, err)
		}
		var err error
		if h.disk, err = NewDiskWithOptions(h.diskDir, tortureDiskOptions()); err != nil {
			t.Fatalf("block %d: reopen disk: %v", blk, err)
		}
		if h.lsm, err = NewLSMWithOptions(h.lsmDir, tinyLSMOptions()); err != nil {
			t.Fatalf("block %d: reopen lsm: %v", blk, err)
		}
		for i, db := range []*DB{h.disk, h.lsm} {
			if got, want := db.Height(), (rwset.Version{BlockNum: blk}); got != want {
				t.Fatalf("block %d: reopened %s height = %v", blk, []string{"disk", "lsm"}[i], got)
			}
		}
	}

	for step := 0; step < 160; step++ {
		switch r := rng.Intn(10); {
		case r < 6:
			applyBatch()
		case r < 8:
			observe()
		case r < 9:
			reopenDurable()
			observe()
		default:
			// A burst of batches without observation, so flushes and
			// compactions interleave between checks.
			for i := 0; i < 5; i++ {
				applyBatch()
			}
		}
	}
	observe()
	reopenDurable()
	observe()
	for _, db := range h.all()[1:] {
		requireSameState(t, h.ref, db)
	}
}
