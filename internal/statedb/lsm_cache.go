package statedb

import (
	"container/list"
	"sync"
)

// blockCache is a byte-budgeted LRU over decoded run blocks, keyed by
// (run sequence, block offset). It exists so hot CRDT documents — re-read
// and re-merged block after block — skip both the disk read and the frame
// decode on repeated access. It has its own mutex: reads holding the LSM
// backend's RLock still need to move entries to the LRU front.
type blockCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	elems  map[blockCacheKey]*list.Element
	hits   int64
	misses int64
}

type blockCacheKey struct {
	seq uint64
	off int64
}

type blockCacheEntry struct {
	key     blockCacheKey
	entries []runEntry
	size    int64
}

func newBlockCache(budget int64) *blockCache {
	return &blockCache{
		budget: budget,
		ll:     list.New(),
		elems:  make(map[blockCacheKey]*list.Element),
	}
}

func (c *blockCache) get(seq uint64, off int64) ([]runEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.elems[blockCacheKey{seq: seq, off: off}]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*blockCacheEntry).entries, true
}

func (c *blockCache) put(seq uint64, off int64, entries []runEntry) {
	var size int64
	for _, e := range entries {
		size += int64(runEntrySize(e))
	}
	if size > c.budget {
		return // a block larger than the whole budget would just thrash
	}
	key := blockCacheKey{seq: seq, off: off}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.elems[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*blockCacheEntry).entries = entries
		return
	}
	c.elems[key] = c.ll.PushFront(&blockCacheEntry{key: key, entries: entries, size: size})
	c.used += size
	for c.used > c.budget {
		el := c.ll.Back()
		if el == nil {
			break
		}
		c.evict(el)
	}
}

func (c *blockCache) evict(el *list.Element) {
	ent := el.Value.(*blockCacheEntry)
	c.ll.Remove(el)
	delete(c.elems, ent.key)
	c.used -= ent.size
}

// purge drops every cached block belonging to the given run sequences —
// called when compaction deletes the underlying files.
func (c *blockCache) purge(seqs map[uint64]bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if seqs[el.Value.(*blockCacheEntry).key.seq] {
			c.evict(el)
		}
	}
}

// purgeAll drops everything (Reset).
func (c *blockCache) purgeAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.elems = make(map[blockCacheKey]*list.Element)
	c.used = 0
}

// counters returns lifetime hit/miss counts and current resident bytes.
func (c *blockCache) counters() (hits, misses, used int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.used
}
