package channel

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"fabriccrdt/internal/statedb"
)

// State backend names for CommitterConfig.Backend.
const (
	// BackendMemory is the trivial single-lock in-memory map.
	BackendMemory = "memory"
	// BackendSharded is the in-memory backend with per-shard locks
	// (StateShards many).
	BackendSharded = "sharded"
	// BackendDisk is the persistent append-only-log backend; requires
	// DataDir. A peer reopening the same DataDir resumes every channel
	// from its last committed block instead of replaying the chain.
	BackendDisk = "disk"
	// BackendLSM is the log-structured persistent backend (memtable +
	// sorted runs + bloom filters + block cache, docs/STATEDB.md);
	// requires DataDir. Unlike BackendDisk it never rebuilds a full
	// in-memory index — open cost and resident memory stay independent of
	// the keyspace, so world state can outgrow RAM.
	BackendLSM = "lsm"
)

// Block-body persistence modes for CommitterConfig.PersistBlocks.
const (
	// PersistBlocksAuto (the zero value) persists block bodies whenever
	// the backend is durable (BackendDisk or BackendLSM) — the ledger is
	// the recovery root — and skips them on in-memory backends, which have
	// nowhere durable to put them. A durable store that already holds
	// committed state but no block log (created before block persistence,
	// or with it off) is adopted as-is: it keeps resuming checkpoint-only
	// rather than being refused.
	PersistBlocksAuto = ""
	// PersistBlocksOn requires the durable block store; it is only valid
	// with BackendDisk or BackendLSM, and a store whose committed bodies
	// are missing is refused rather than adopted.
	PersistBlocksOn = "on"
	// PersistBlocksOff keeps the state-checkpoint-only durability of the
	// disk backend: a restarted peer resumes committing but cannot serve
	// pre-restart blocks or rebuild its world state from the chain.
	PersistBlocksOff = "off"
)

// CommitterConfig tunes the staged commit pipeline and the world-state
// backend behind it (DESIGN.md §4, §5). One configuration applies to every
// channel a peer joins; each channel gets its own backend instance (and,
// for the disk backend, its own subdirectory under DataDir).
type CommitterConfig struct {
	// Workers bounds the endorsement-validation worker pool and, unless
	// EngineOptions.Workers overrides it, the merge engine's key-group
	// parallelism — per channel. 1 = serial. 0 = adaptive: the peer derives
	// the count from runtime.NumCPU() divided across its active channels
	// (AdaptiveWorkers). Validation codes, world state and persisted CRDT
	// documents are identical at every setting.
	Workers int
	// FinalizeWorkers bounds the parallelism INSIDE the serialized finalize
	// stage: with a value > 1 the committer builds each block's transaction
	// dependency schedule (internal/txgraph) and validates non-conflicting
	// transactions concurrently — MVCC wavefronts and the CRDT merge run
	// side by side over up to this many goroutines — while dedup and the
	// final batch/append stay ordered (DESIGN.md §9). 1 = the legacy fully
	// serial finalize. 0 = inherit the resolved Workers. Validation codes,
	// world state, persisted CRDT documents and block hashes are identical
	// at every setting.
	FinalizeWorkers int
	// Pipeline is the async commit pipeline depth per (peer, channel)
	// deliver loop: how many delivered blocks may sit decoded and
	// endorsement-validated ahead of the serialized finalize stage
	// (dedup/merge/mvcc/apply/append). 0 = synchronous (each block fully
	// commits before the next is touched); N >= 1 overlaps the stateless
	// prepare work of blocks N+1..N+depth with the current block's commit
	// (DESIGN.md §7). Commit outcomes are byte-identical at every depth;
	// only wall-clock behavior changes. Ignored by direct CommitBlockOn
	// calls — it configures deliver-loop drivers (fabricnet, and any
	// embedder of Peer.CommitPipeline).
	Pipeline int
	// StateShards selects the sharded statedb backend with that many
	// independently locked shards; 0 or 1 keeps the trivial single-lock
	// map backend. Ignored unless Backend is "" or BackendSharded.
	StateShards int
	// Backend names the statedb backend: BackendMemory, BackendSharded,
	// BackendDisk or BackendLSM. Empty keeps the historical behavior
	// (sharded when StateShards > 1, memory otherwise). Unknown names fail
	// construction.
	Backend string
	// DataDir is the durable backends' data directory (required for
	// BackendDisk and BackendLSM, unused otherwise). Each peer needs its
	// own directory; fabricnet derives per-peer subdirectories
	// automatically. Each channel persists under DataDir/<channel-ID>.
	DataDir string
	// StateCacheBytes bounds the LSM backend's block cache (BackendLSM
	// only; 0 = the statedb default, currently 32 MiB). The cache holds
	// decoded run blocks for point reads and range scans; sizing it below
	// the hot set trades read latency for resident memory
	// (docs/STATEDB.md).
	StateCacheBytes int64
	// PersistBlocks controls the durable block store
	// (internal/blockstore): committed block bodies, validation codes
	// included, appended under DataDir/<channel-ID>/blocks in the finalize
	// stage just before the state apply — making the ledger, not the state
	// snapshot, the recovery root. A restarted peer can then serve its
	// full history to lagging peers (Peer.SyncFrom) and rebuild its world
	// state from block 0 (Peer.RebuildState). Values: PersistBlocksAuto
	// (the default: on with BackendDisk, off otherwise), PersistBlocksOn
	// (BackendDisk required) and PersistBlocksOff (state checkpoint only —
	// the pre-block-store behaviour). See DESIGN.md §8 and
	// docs/PERSISTENCE.md.
	PersistBlocks string
	// SyncEveryApply makes the durable backends fsync their state log
	// (BackendDisk) or write-ahead log (BackendLSM) — and the block store,
	// when PersistBlocks is on — after every committed block, closing the
	// power-loss durability window at the cost of fsyncs per block
	// (DESIGN.md §4). Durable backends only. This is the configuration
	// where the async commit pipeline pays off even on a single core:
	// block N's fsync wait is hidden behind block N+1's decode +
	// endorsement validation (DESIGN.md §7).
	SyncEveryApply bool
}

// durableBackend reports whether the configured state backend persists to
// DataDir (and so has somewhere for the block store to live beside it).
func (c CommitterConfig) durableBackend() bool {
	return c.Backend == BackendDisk || c.Backend == BackendLSM
}

// blockPersistence resolves the PersistBlocks knob against the selected
// backend.
func (c CommitterConfig) blockPersistence() (bool, error) {
	switch c.PersistBlocks {
	case PersistBlocksAuto:
		return c.durableBackend(), nil
	case PersistBlocksOn:
		if !c.durableBackend() {
			return false, fmt.Errorf("PersistBlocks %q requires the %s or %s backend (got %q): block bodies persist beside the state store", PersistBlocksOn, BackendDisk, BackendLSM, c.Backend)
		}
		return true, nil
	case PersistBlocksOff:
		return false, nil
	default:
		return false, fmt.Errorf("unknown PersistBlocks %q (want %q, %q or %q)", c.PersistBlocks, PersistBlocksAuto, PersistBlocksOn, PersistBlocksOff)
	}
}

// AdaptiveWorkers is the commit-pipeline worker count used when
// CommitterConfig.Workers is 0: the host's CPUs divided evenly across the
// peer's active channels, never below 1. N channels committing in parallel
// then share the machine instead of each assuming it owns every core
// (DESIGN.md §6).
func AdaptiveWorkers(activeChannels int) int {
	if activeChannels < 1 {
		activeChannels = 1
	}
	w := runtime.NumCPU() / activeChannels
	if w < 1 {
		return 1
	}
	return w
}

// rejectLegacyStore refuses a data directory holding a store in the
// pre-multi-channel layout (state files directly under DataDir, not under
// a per-channel subdirectory). Opening past it would silently start every
// channel fresh — abandoning the committed state AND the durable
// duplicate-screening markers — so, like a damaged checkpoint, it is an
// error rather than a quiet restart. The record format itself is
// unchanged: moving the old store into DataDir/<its-channel-ID>/ migrates
// it.
func rejectLegacyStore(dataDir string) error {
	for _, name := range []string{"state.log", "state.snap"} {
		if _, err := os.Stat(filepath.Join(dataDir, name)); err == nil {
			return fmt.Errorf("found a pre-multi-channel store (%s) directly under %s: this version keeps each channel under %s/<channel-ID>; move the old store into its channel's subdirectory (e.g. %s) or use a fresh directory",
				name, dataDir, dataDir, filepath.Join(dataDir, DefaultChannel))
		}
	}
	return nil
}

// newStateDB builds one channel's world state as named by the committer
// configuration. The disk backend stores each channel under its own
// DataDir/<channel-ID> subdirectory so channels never share a log.
// beforeCompact (may be nil) is handed to the disk backend so it can
// fsync the channel's block store before making a state snapshot durable.
func newStateDB(channelID string, c CommitterConfig, beforeCompact func() error) (*statedb.DB, error) {
	switch c.Backend {
	case "":
		if c.StateShards > 1 {
			return statedb.NewSharded(c.StateShards), nil
		}
		return statedb.New(), nil
	case BackendMemory:
		return statedb.New(), nil
	case BackendSharded:
		return statedb.NewSharded(c.StateShards), nil
	case BackendDisk:
		if c.DataDir == "" {
			return nil, errors.New("disk state backend requires CommitterConfig.DataDir")
		}
		if err := rejectLegacyStore(c.DataDir); err != nil {
			return nil, err
		}
		return statedb.NewDiskWithOptions(filepath.Join(c.DataDir, channelID),
			statedb.DiskOptions{SyncEveryApply: c.SyncEveryApply, BeforeCompact: beforeCompact})
	case BackendLSM:
		if c.DataDir == "" {
			return nil, errors.New("lsm state backend requires CommitterConfig.DataDir")
		}
		if err := rejectLegacyStore(c.DataDir); err != nil {
			return nil, err
		}
		return statedb.NewLSMWithOptions(filepath.Join(c.DataDir, channelID),
			statedb.LSMOptions{
				CacheBytes:     c.StateCacheBytes,
				SyncEveryApply: c.SyncEveryApply,
				BeforeCompact:  beforeCompact,
			})
	default:
		return nil, fmt.Errorf("unknown state backend %q (want %s, %s, %s or %s)",
			c.Backend, BackendMemory, BackendSharded, BackendDisk, BackendLSM)
	}
}
