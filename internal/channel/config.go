package channel

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"fabriccrdt/internal/statedb"
)

// State backend names for CommitterConfig.Backend.
const (
	// BackendMemory is the trivial single-lock in-memory map.
	BackendMemory = "memory"
	// BackendSharded is the in-memory backend with per-shard locks
	// (StateShards many).
	BackendSharded = "sharded"
	// BackendDisk is the persistent append-only-log backend; requires
	// DataDir. A peer reopening the same DataDir resumes every channel
	// from its last committed block instead of replaying the chain.
	BackendDisk = "disk"
)

// CommitterConfig tunes the staged commit pipeline and the world-state
// backend behind it (DESIGN.md §4, §5). One configuration applies to every
// channel a peer joins; each channel gets its own backend instance (and,
// for the disk backend, its own subdirectory under DataDir).
type CommitterConfig struct {
	// Workers bounds the endorsement-validation worker pool and, unless
	// EngineOptions.Workers overrides it, the merge engine's key-group
	// parallelism — per channel. 1 = serial. 0 = adaptive: the peer derives
	// the count from runtime.NumCPU() divided across its active channels
	// (AdaptiveWorkers). Validation codes, world state and persisted CRDT
	// documents are identical at every setting.
	Workers int
	// Pipeline is the async commit pipeline depth per (peer, channel)
	// deliver loop: how many delivered blocks may sit decoded and
	// endorsement-validated ahead of the serialized finalize stage
	// (dedup/merge/mvcc/apply/append). 0 = synchronous (each block fully
	// commits before the next is touched); N >= 1 overlaps the stateless
	// prepare work of blocks N+1..N+depth with the current block's commit
	// (DESIGN.md §7). Commit outcomes are byte-identical at every depth;
	// only wall-clock behavior changes. Ignored by direct CommitBlockOn
	// calls — it configures deliver-loop drivers (fabricnet, and any
	// embedder of Peer.CommitPipeline).
	Pipeline int
	// StateShards selects the sharded statedb backend with that many
	// independently locked shards; 0 or 1 keeps the trivial single-lock
	// map backend. Ignored unless Backend is "" or BackendSharded.
	StateShards int
	// Backend names the statedb backend: BackendMemory, BackendSharded or
	// BackendDisk. Empty keeps the historical behavior (sharded when
	// StateShards > 1, memory otherwise). Unknown names fail construction.
	Backend string
	// DataDir is the disk backend's data directory (required for
	// BackendDisk, unused otherwise). Each peer needs its own directory;
	// fabricnet derives per-peer subdirectories automatically. Each channel
	// persists under DataDir/<channel-ID>.
	DataDir string
	// SyncEveryApply makes the disk backend fsync its log after every
	// committed block, closing the power-loss durability window at the
	// cost of one fsync per block (DESIGN.md §4). Disk backend only.
	// This is the configuration where the async commit pipeline pays off
	// even on a single core: block N's fsync wait is hidden behind block
	// N+1's decode + endorsement validation (DESIGN.md §7).
	SyncEveryApply bool
}

// AdaptiveWorkers is the commit-pipeline worker count used when
// CommitterConfig.Workers is 0: the host's CPUs divided evenly across the
// peer's active channels, never below 1. N channels committing in parallel
// then share the machine instead of each assuming it owns every core
// (DESIGN.md §6).
func AdaptiveWorkers(activeChannels int) int {
	if activeChannels < 1 {
		activeChannels = 1
	}
	w := runtime.NumCPU() / activeChannels
	if w < 1 {
		return 1
	}
	return w
}

// rejectLegacyStore refuses a data directory holding a store in the
// pre-multi-channel layout (state files directly under DataDir, not under
// a per-channel subdirectory). Opening past it would silently start every
// channel fresh — abandoning the committed state AND the durable
// duplicate-screening markers — so, like a damaged checkpoint, it is an
// error rather than a quiet restart. The record format itself is
// unchanged: moving the old store into DataDir/<its-channel-ID>/ migrates
// it.
func rejectLegacyStore(dataDir string) error {
	for _, name := range []string{"state.log", "state.snap"} {
		if _, err := os.Stat(filepath.Join(dataDir, name)); err == nil {
			return fmt.Errorf("found a pre-multi-channel store (%s) directly under %s: this version keeps each channel under %s/<channel-ID>; move the old store into its channel's subdirectory (e.g. %s) or use a fresh directory",
				name, dataDir, dataDir, filepath.Join(dataDir, DefaultChannel))
		}
	}
	return nil
}

// newStateDB builds one channel's world state as named by the committer
// configuration. The disk backend stores each channel under its own
// DataDir/<channel-ID> subdirectory so channels never share a log.
func newStateDB(channelID string, c CommitterConfig) (*statedb.DB, error) {
	switch c.Backend {
	case "":
		if c.StateShards > 1 {
			return statedb.NewSharded(c.StateShards), nil
		}
		return statedb.New(), nil
	case BackendMemory:
		return statedb.New(), nil
	case BackendSharded:
		return statedb.NewSharded(c.StateShards), nil
	case BackendDisk:
		if c.DataDir == "" {
			return nil, errors.New("disk state backend requires CommitterConfig.DataDir")
		}
		if err := rejectLegacyStore(c.DataDir); err != nil {
			return nil, err
		}
		return statedb.NewDiskWithOptions(filepath.Join(c.DataDir, channelID),
			statedb.DiskOptions{SyncEveryApply: c.SyncEveryApply})
	default:
		return nil, fmt.Errorf("unknown state backend %q (want %s, %s or %s)",
			c.Backend, BackendMemory, BackendSharded, BackendDisk)
	}
}
