package channel

import (
	"errors"
	"fmt"
	"sync"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/orderer"
)

// ErrUnknownChannel reports a channel ID the registry (or a peer) does not
// know.
var ErrUnknownChannel = errors.New("channel: unknown channel")

// ValidateIDs checks a channel ID list: it must be non-empty, every name
// must be non-empty and filesystem-safe (disk backends use the ID as a
// directory name), and names must not repeat.
func ValidateIDs(ids []string) error {
	if len(ids) == 0 {
		return errors.New("channel: no channels configured")
	}
	seen := make(map[string]struct{}, len(ids))
	for _, id := range ids {
		if err := validateID(id); err != nil {
			return err
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("channel: duplicate channel name %q", id)
		}
		seen[id] = struct{}{}
	}
	return nil
}

// validateID checks one channel name. The character set is restricted to
// what is safe as a directory name on every platform: letters, digits,
// '.', '-' and '_', not starting with '.'.
func validateID(id string) error {
	if id == "" {
		return errors.New("channel: empty channel name")
	}
	if id[0] == '.' {
		return fmt.Errorf("channel: channel name %q must not start with '.'", id)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
		default:
			return fmt.Errorf("channel: channel name %q contains %q (allowed: letters, digits, '.', '-', '_')", id, r)
		}
	}
	return nil
}

// Registry is the network-side channel manager: the validated channel ID
// set in a stable order (the first ID is the default channel) and, once
// started, one ordering service per channel. Channels order and deliver
// independently — the registry holds no cross-channel state beyond the
// name set itself.
type Registry struct {
	ids []string

	mu       sync.Mutex
	services map[string]*orderer.Service
	stopped  bool
}

// NewRegistry returns a registry over the given channel IDs, validating
// them (non-empty, filesystem-safe, no duplicates).
func NewRegistry(ids ...string) (*Registry, error) {
	if err := ValidateIDs(ids); err != nil {
		return nil, err
	}
	r := &Registry{
		ids:      append([]string(nil), ids...),
		services: make(map[string]*orderer.Service, len(ids)),
	}
	return r, nil
}

// IDs returns the channel IDs in registration order.
func (r *Registry) IDs() []string { return append([]string(nil), r.ids...) }

// Default returns the first registered channel — what single-channel
// convenience APIs bind to.
func (r *Registry) Default() string { return r.ids[0] }

// Has reports whether the channel is registered.
func (r *Registry) Has(id string) bool {
	for _, known := range r.ids {
		if known == id {
			return true
		}
	}
	return false
}

// StartService launches the channel's ordering service, chaining blocks
// after the (number, header hash) resume point — the channel genesis for a
// fresh network, or the durable checkpoint when peers were rebuilt over an
// existing data directory. Starting an unknown or already-started channel
// is an error.
func (r *Registry) StartService(id string, cfg orderer.Config, afterNumber uint64, afterHash []byte) (*orderer.Service, error) {
	if !r.Has(id) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownChannel, id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return nil, errors.New("channel: registry stopped")
	}
	if _, up := r.services[id]; up {
		return nil, fmt.Errorf("channel: ordering service for %q already started", id)
	}
	svc := orderer.NewServiceAt(cfg, afterNumber, afterHash)
	r.services[id] = svc
	return svc, nil
}

// Service returns the channel's running ordering service.
func (r *Registry) Service(id string) (*orderer.Service, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	svc, ok := r.services[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q (or its ordering service is not started)", ErrUnknownChannel, id)
	}
	return svc, nil
}

// Subscribe registers a deliver channel on one channel's ordering service.
func (r *Registry) Subscribe(id string) (<-chan *ledger.Block, error) {
	svc, err := r.Service(id)
	if err != nil {
		return nil, err
	}
	return svc.Subscribe(), nil
}

// StopAll stops every started ordering service: pending transactions are
// flushed and deliver channels closed. Channels stop independently; a
// stopped registry accepts no further StartService.
func (r *Registry) StopAll() {
	r.mu.Lock()
	r.stopped = true
	services := make([]*orderer.Service, 0, len(r.services))
	//lint:sorted per-channel services stop independently; stop order is invisible
	for _, svc := range r.services {
		services = append(services, svc)
	}
	r.mu.Unlock()
	for _, svc := range services {
		svc.Stop()
	}
}
