// Package channel implements the multi-channel runtime: Fabric's unit of
// sharding, where each channel is an independent ledger with its own
// ordering service, block numbering, world state and commit pipeline
// (Androulaki et al., "Hyperledger Fabric: A Distributed Operating System
// for Permissioned Blockchains"). Two layers live here:
//
//   - Runtime is the peer-side per-channel committer state — statedb
//     backend, hash chain (genesis or checkpoint-resumed), MVCC validator,
//     CRDT merge engine, duplicate screening and the commit mutex. A peer
//     owns one Runtime per joined channel; runtimes share nothing, so N
//     channels commit fully in parallel.
//   - Registry is the network-side channel manager — the validated,
//     ordered channel ID set and one ordering service per channel
//     (registry.go).
//
// Disk-backed runtimes persist under DataDir/<channel-ID> — the state
// store directly in it, the block store (CommitterConfig.PersistBlocks,
// on by default with the disk backend) under its blocks/ subdirectory —
// so one DataDir knob captures a whole peer and every channel resumes
// independently at its own height after a restart (DESIGN.md §6, §8;
// docs/PERSISTENCE.md has the full layout and recovery matrix).
package channel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"fabriccrdt/internal/blockstore"
	"fabriccrdt/internal/core"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/mvcc"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

// DefaultChannel is the channel ID used when a configuration names none —
// the paper's single evaluation channel.
const DefaultChannel = "channel1"

// MetaCheckpoint is the statedb metadata key holding the last committed
// block's chain checkpoint. It lives in the metadata space (like persisted
// CRDT documents under "crdt/") and is written atomically with the block's
// own state writes, so a durable backend always records a height and a
// checkpoint from the same block.
const MetaCheckpoint = "sys/checkpoint"

// MetaTxSeen is the statedb metadata key marking a transaction ID as seen
// on this channel, making duplicate screening survive restarts (real
// Fabric consults its persisted block index for this). The marker is
// per-channel state: the same ID on two channels is two transactions.
func MetaTxSeen(txID string) string { return "sys/tx/" + txID }

// chainCheckpoint is the persisted (number, header hash) of the last
// committed block — what a restarted channel's chain and the rebuilt
// ordering service chain onto.
type chainCheckpoint struct {
	Number uint64 `json:"number"`
	Hash   []byte `json:"hash"`
}

// Runtime is one channel's complete commit-side state on one peer. All of
// it is channel-private: block numbering, duplicate screening, MVCC
// version space, merged CRDT documents and crash-restart resume are
// independent per channel, which is what lets channels commit in parallel
// with zero coordination.
//
// Commits on a Runtime are serialized by its commit mutex (Lock/Unlock) —
// mirroring Fabric's one commit pipeline per channel — while reads
// (endorsement simulation) stay concurrent. The dedup set accessors
// (WasCommitted, MarkCommitted, ResetCommitted) must be called with the
// commit mutex held.
type Runtime struct {
	id    string
	db    *statedb.DB
	chain *ledger.Chain
	// blocks is the durable block store (nil when block persistence is
	// off): every committed block's body, appended in finalize just before
	// the state apply.
	blocks    *blockstore.Store
	validator *mvcc.Validator
	engine    *core.Engine

	// cc is the channel-local chaincode registry (chaincode.go):
	// installation is per channel, so cross-channel invokes are rejected.
	cc ccRegistry

	mu           sync.Mutex
	committedIDs map[string]struct{}
}

// NewRuntime opens one channel's world state, block store and chain. It
// fails when the configured state backend or block persistence setting is
// invalid, or a store cannot be opened (the durable backends need a usable
// DataDir; the channel's stores live under DataDir/<id>).
//
// With a durable backend (disk or lsm), a runtime constructed over a
// previously used directory resumes from the persisted state: Height reports the last
// durably committed block, and the chain restarts from the recorded
// checkpoint instead of genesis — backed by the block store when block
// persistence is on, so the pre-restart history stays servable. Opening
// cross-checks the block log against the state checkpoint and replays any
// blocks the log durably holds beyond it (a crash window the append-first
// commit order makes possible; DESIGN.md §8).
func NewRuntime(id string, committer CommitterConfig, engineOpts core.Options) (*Runtime, error) {
	persist, err := committer.blockPersistence()
	if err != nil {
		return nil, fmt.Errorf("channel %s: %w", id, err)
	}
	// persist implies a durable backend (disk or lsm): enforce its
	// preconditions (the ones newStateDB would catch) BEFORE any store is
	// opened, so a refused configuration creates nothing on disk — notably
	// no empty blocks/ directory inside a legacy-layout datadir, which
	// would dead-end the legacy migration hint on the rerun.
	if persist {
		if committer.DataDir == "" {
			return nil, fmt.Errorf("channel %s: %s state backend requires CommitterConfig.DataDir", id, committer.Backend)
		}
		if err := rejectLegacyStore(committer.DataDir); err != nil {
			return nil, fmt.Errorf("channel %s: %w", id, err)
		}
	}
	// A channel directory holding committed state but no block log
	// predates block persistence (the upgrade path) or was deliberately
	// created without it. Decide what to do from filesystem probes BEFORE
	// opening anything, so a refused attempt leaves no empty store
	// behind: Auto adopts the store's existing checkpoint-only shape —
	// the documented "rerun with the same -datadir resumes" workflow
	// keeps working across the upgrade — while an explicit PersistBlocksOn
	// is refused, because the already-committed bodies cannot be
	// re-derived.
	if persist && !blockstore.Exists(filepath.Join(committer.DataDir, id, "blocks")) &&
		stateHasCommits(filepath.Join(committer.DataDir, id)) {
		if committer.PersistBlocks == PersistBlocksAuto {
			persist = false
		} else {
			return nil, fmt.Errorf("channel %s: the store under %s has committed state but no block log: it predates block persistence, so the committed bodies cannot be re-derived; reopen with PersistBlocksOff (or the default Auto mode, which adopts the store as-is), or re-sync from a peer holding the history", id, filepath.Join(committer.DataDir, id))
		}
	}
	rt := &Runtime{
		id:           id,
		committedIDs: make(map[string]struct{}),
	}
	// The block store opens first so the state backend can be handed a
	// pre-compaction hook over it: the state must never become durable
	// beyond the block log (DESIGN.md §8).
	var beforeCompact func() error
	if persist {
		bs, err := blockstore.Open(filepath.Join(committer.DataDir, id, "blocks"),
			blockstore.Options{SyncEveryAppend: committer.SyncEveryApply})
		if err != nil {
			return nil, fmt.Errorf("channel %s: %w", id, err)
		}
		rt.blocks = bs
		beforeCompact = bs.Sync
	}
	db, err := newStateDB(id, committer, beforeCompact)
	if err != nil {
		if rt.blocks != nil {
			rt.blocks.Close()
		}
		return nil, fmt.Errorf("channel %s: %w", id, err)
	}
	rt.db = db
	rt.validator = mvcc.New(db)
	rt.engine = core.NewEngine(db, engineOpts)
	chain, err := rt.recoverChain()
	if err != nil {
		rt.Close()
		return nil, fmt.Errorf("channel %s: %w", id, err)
	}
	rt.chain = chain
	return rt, nil
}

// stateHasCommits reports whether a durable channel directory holds a
// state store with at least one committed batch, without opening it. For
// the disk backend: a non-empty state.log (one frame per committed block)
// or a compacted snapshot (only ever written after commits). For the LSM
// backend: a non-empty wal.log or a MANIFEST (only ever written by a
// flush, which only follows commits).
func stateHasCommits(chDir string) bool {
	for _, name := range []string{"state.log", "wal.log"} {
		if info, err := os.Stat(filepath.Join(chDir, name)); err == nil && info.Size() > 0 {
			return true
		}
	}
	for _, name := range []string{"state.snap", "MANIFEST"} {
		if _, err := os.Stat(filepath.Join(chDir, name)); err == nil {
			return true
		}
	}
	return false
}

// recoverChain derives the channel's chain from the durable state and,
// when block persistence is on, reconciles the block log with the state
// checkpoint: a log durably ahead of the checkpoint (the crash window the
// append-block-then-apply-state commit order leaves open) is replayed into
// the state; a log behind it means committed bodies are missing and is
// refused. The recovery root is the ledger — the world state is a
// rebuildable cache of it (DESIGN.md §8, docs/PERSISTENCE.md).
func (rt *Runtime) recoverChain() (*ledger.Chain, error) {
	// A durable state that already committed blocks carries a chain
	// checkpoint (last block number + header hash): resume the chain from
	// it, so newly delivered blocks are hash-verified against the recorded
	// history instead of restarting at genesis. A store with height but no
	// matching checkpoint is damaged — refuse it rather than start a
	// genesis chain whose fast-forward would silently swallow new blocks
	// numbered at or below the stale height.
	h := rt.db.Height().BlockNum
	var cpHash []byte
	if h > 0 {
		num, hash, ok := LoadCheckpoint(rt.db)
		if !ok || num != h {
			return nil, fmt.Errorf("durable state at height %d has no matching chain checkpoint (found %d): store is damaged or from an incompatible version", h, num)
		}
		cpHash = hash
	}
	genesisChain := ledger.NewChain(rt.id)
	if rt.blocks == nil {
		if h > 0 {
			return ledger.NewChainCheckpointed(h, cpHash), nil
		}
		return genesisChain, nil
	}

	bh := rt.blocks.Height()
	if bh == 0 {
		if h > 0 {
			return nil, fmt.Errorf("durable state at height %d has an empty block log: the store predates block persistence or lost its blocks/ directory; reopen with PersistBlocksOff to keep the checkpoint-only behaviour, or re-sync from a peer holding the history", h)
		}
		// Fresh store: persist the (deterministic) genesis block so the
		// durable history starts at block 0 like the in-memory chain.
		genesis, err := genesisChain.Get(0)
		if err != nil {
			return nil, err
		}
		if err := rt.blocks.Append(genesis); err != nil {
			return nil, err
		}
		return genesisChain, nil
	}
	if bh <= h {
		return nil, fmt.Errorf("block log holds blocks [0, %d) but the state checkpoint is at block %d: durably committed block bodies are missing (truncated or foreign block log); restore the log, re-sync from a peer, or reopen with PersistBlocksOff", bh, h)
	}

	// The stored genesis must be this channel's — a cheap guard against a
	// block log copied in from another channel or network.
	storedGenesis, err := rt.blocks.Get(0)
	if err != nil {
		return nil, err
	}
	wantGenesis, err := genesisChain.Get(0)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(storedGenesis.HeaderHash(), wantGenesis.HeaderHash()) {
		return nil, fmt.Errorf("block log genesis does not match channel %s: the block store belongs to a different channel or network", rt.id)
	}
	if h == 0 && bh == 1 {
		// Restarted before any commit: only the genesis is stored and the
		// fresh in-memory chain already covers it.
		return genesisChain, nil
	}

	// Cross-check the checkpoint block against the log, then replay the
	// gap: blocks the log committed durably before the crash cut off the
	// state apply. Each replayed block must chain onto its predecessor —
	// a log that diverges from the recorded checkpoint is foreign.
	prevHash := wantGenesis.HeaderHash()
	if h > 0 {
		cp, err := rt.blocks.Get(h)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(cp.HeaderHash(), cpHash) {
			return nil, fmt.Errorf("block %d in the block log does not match the state's chain checkpoint: the block store and state store are from different histories", h)
		}
		prevHash = cpHash
	}
	for n := h + 1; n < bh; n++ {
		b, err := rt.blocks.Get(n)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(b.Header.PrevHash, prevHash) {
			return nil, fmt.Errorf("block %d in the block log does not chain onto block %d: the block log is corrupt or foreign", n, n-1)
		}
		prevHash = b.HeaderHash()
		if err := rt.ReplayOwnedBlock(b); err != nil {
			return nil, fmt.Errorf("replaying block %d from the block log: %w", n, err)
		}
	}
	return ledger.NewChainCheckpointedWithSource(bh-1, prevHash, rt.blocks), nil
}

// ReplayBlock re-applies one committed block — carrying its commit-time
// validation codes — to the channel's world state: the recovery primitive
// behind Peer.RebuildState and the block-log gap replay above. CRDT
// outcomes (CRDT_MERGED and INVALID_CRDT) are re-derived by re-running the
// merge engine, which reconstructs the rewritten write sets and persisted
// document states; everything else applies exactly the recorded codes, so
// replaying the chain from block 0 reproduces the live state byte for
// byte (DESIGN.md §5 determinism, now across restarts too).
//
// The caller must hold the commit mutex, or have exclusive use of the
// runtime as during construction.
func (rt *Runtime) ReplayBlock(stored *ledger.Block) error {
	if stored.Header.Number == 0 {
		return nil // the genesis block carries no state
	}
	// Replay on a working copy: the merge engine rewrites write sets, and
	// the caller's block must stay pristine.
	raw, err := stored.Marshal()
	if err != nil {
		return err
	}
	view, err := ledger.UnmarshalBlock(raw)
	if err != nil {
		return err
	}
	return rt.replayBlock(stored, view)
}

// ReplayOwnedBlock is ReplayBlock for a block the caller owns outright —
// a fresh private decode from the block store that nothing else
// references. The merge rewrites the block's write sets in place instead
// of paying a serialization round-trip for a defensive copy, which is
// what keeps full-chain replays at one JSON decode per block.
func (rt *Runtime) ReplayOwnedBlock(stored *ledger.Block) error {
	if stored.Header.Number == 0 {
		return nil
	}
	return rt.replayBlock(stored, stored)
}

// replayBlock applies one committed block's recorded outcomes, merging
// CRDT transactions on view (which may be stored itself for owned
// blocks).
func (rt *Runtime) replayBlock(stored, view *ledger.Block) error {
	codes := make([]ledger.ValidationCode, len(view.Transactions))
	copy(codes, stored.Metadata.ValidationCodes)
	// Re-derive the CRDT outcomes so the engine re-merges them — including
	// INVALID_CRDT transactions, whose intact deltas still extended their
	// keys' documents at live commit (a failed transaction never rolls
	// back a key group; DESIGN.md §5) and must do so again on replay.
	for i := range codes {
		if codes[i] == ledger.CodeCRDTMerged || codes[i] == ledger.CodeInvalidCRDT {
			codes[i] = ledger.CodeNotValidated
		}
	}
	// With no re-derived codes (a stock-Fabric history) every transaction
	// is already decided and the merge is a no-op.
	mergeRes, err := rt.engine.MergeBlock(view, codes)
	if err != nil {
		return err
	}
	batch, err := rt.StageCommit(view, stored, mergeRes, stored.Metadata.ValidationCodes)
	if err != nil {
		return err
	}
	rt.db.Apply(batch, rwset.Version{BlockNum: view.Header.Number})
	for _, tx := range view.Transactions {
		rt.MarkCommitted(tx.ID)
	}
	return nil
}

// StageCommit assembles one block's atomic commit batch: the validated
// write sets, the merged CRDT document states, the durable
// duplicate-screening markers and the chain checkpoint. It is THE
// definition of what a commit durably writes — the live finalize stage
// and the replay path both build their batch here, so the two can never
// drift apart (the byte-identical-replay guarantee depends on that).
// codes are the authoritative validation codes deciding which write sets
// commit; stored is the pristine block whose header the checkpoint
// records.
func (rt *Runtime) StageCommit(view, stored *ledger.Block, mergeRes core.Result, codes []ledger.ValidationCode) (*statedb.UpdateBatch, error) {
	batch := mvcc.BuildCommitBatch(view.Header.Number, view.Transactions, codes)
	core.StageDocStates(batch, mergeRes)
	StageTxSeen(batch, view.Transactions)
	if err := StageCheckpoint(batch, stored); err != nil {
		return nil, err
	}
	return batch, nil
}

// ID returns the channel ID.
func (rt *Runtime) ID() string { return rt.id }

// DB returns the channel's world state.
func (rt *Runtime) DB() *statedb.DB { return rt.db }

// Chain returns the channel's blockchain.
func (rt *Runtime) Chain() *ledger.Chain { return rt.chain }

// Blocks returns the channel's durable block store, or nil when block
// persistence is off. When non-nil it covers the contiguous range
// [0, Chain().Height()) — the full history, across restarts.
func (rt *Runtime) Blocks() *blockstore.Store { return rt.blocks }

// Validator returns the channel's MVCC validator.
func (rt *Runtime) Validator() *mvcc.Validator { return rt.validator }

// Engine returns the channel's CRDT merge engine.
func (rt *Runtime) Engine() *core.Engine { return rt.engine }

// Height returns the number of the last block whose writes reached this
// channel's world state — with the disk backend, the last durably
// committed block, which survives restarts.
func (rt *Runtime) Height() uint64 { return rt.db.Height().BlockNum }

// Close releases the channel's block store and state backend (a no-op for
// in-memory backends). With the disk backend it flushes the logs and
// surfaces the first deferred write error; the runtime must not commit
// afterwards. The block store closes (and syncs) first: a power loss
// mid-Close must never leave the state durable beyond the block log.
func (rt *Runtime) Close() error {
	var err error
	if rt.blocks != nil {
		err = rt.blocks.Close()
	}
	if rt.db != nil {
		if derr := rt.db.Close(); err == nil {
			err = derr
		}
	}
	return err
}

// Lock acquires the channel's commit mutex: commits on one channel are
// serialized, commits on different channels never contend.
func (rt *Runtime) Lock() { rt.mu.Lock() }

// Unlock releases the channel's commit mutex.
func (rt *Runtime) Unlock() { rt.mu.Unlock() }

// WasCommitted reports whether the transaction ID was already committed on
// this channel — in this process (in-memory set) or before a restart
// (durable seen-transaction marker). Call with the commit mutex held.
func (rt *Runtime) WasCommitted(txID string) bool {
	if _, ok := rt.committedIDs[txID]; ok {
		return true
	}
	return rt.db.GetMeta(MetaTxSeen(txID)) != nil
}

// MarkCommitted registers a transaction ID in the channel's in-memory
// duplicate-screening set. Call with the commit mutex held.
func (rt *Runtime) MarkCommitted(txID string) {
	rt.committedIDs[txID] = struct{}{}
}

// ResetCommitted clears the in-memory duplicate-screening set (state
// rebuild replays the chain and re-registers every ID). Call with the
// commit mutex held.
func (rt *Runtime) ResetCommitted() {
	rt.committedIDs = make(map[string]struct{})
}

// StageTxSeen adds every transaction ID of the block to its commit batch,
// durably extending the channel's duplicate-screening set in the same
// atomic apply as the block's writes.
func StageTxSeen(batch *statedb.UpdateBatch, txs []*ledger.Transaction) {
	for _, tx := range txs {
		batch.PutMeta(MetaTxSeen(tx.ID), []byte{1})
	}
}

// StageCheckpoint adds the block's chain checkpoint to its commit batch.
func StageCheckpoint(batch *statedb.UpdateBatch, b *ledger.Block) error {
	data, err := json.Marshal(chainCheckpoint{Number: b.Header.Number, Hash: b.HeaderHash()})
	if err != nil {
		return err
	}
	batch.PutMeta(MetaCheckpoint, data)
	return nil
}

// LoadCheckpoint reads the persisted chain checkpoint, if any.
func LoadCheckpoint(db *statedb.DB) (number uint64, hash []byte, ok bool) {
	raw := db.GetMeta(MetaCheckpoint)
	if raw == nil {
		return 0, nil, false
	}
	var cp chainCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return 0, nil, false
	}
	return cp.Number, cp.Hash, true
}
