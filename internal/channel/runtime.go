// Package channel implements the multi-channel runtime: Fabric's unit of
// sharding, where each channel is an independent ledger with its own
// ordering service, block numbering, world state and commit pipeline
// (Androulaki et al., "Hyperledger Fabric: A Distributed Operating System
// for Permissioned Blockchains"). Two layers live here:
//
//   - Runtime is the peer-side per-channel committer state — statedb
//     backend, hash chain (genesis or checkpoint-resumed), MVCC validator,
//     CRDT merge engine, duplicate screening and the commit mutex. A peer
//     owns one Runtime per joined channel; runtimes share nothing, so N
//     channels commit fully in parallel.
//   - Registry is the network-side channel manager — the validated,
//     ordered channel ID set and one ordering service per channel
//     (registry.go).
//
// Disk-backed runtimes persist under DataDir/<channel-ID>, so one DataDir
// knob captures a whole peer and every channel resumes independently at
// its own height after a restart (DESIGN.md §6).
package channel

import (
	"encoding/json"
	"fmt"
	"sync"

	"fabriccrdt/internal/core"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/mvcc"
	"fabriccrdt/internal/statedb"
)

// DefaultChannel is the channel ID used when a configuration names none —
// the paper's single evaluation channel.
const DefaultChannel = "channel1"

// MetaCheckpoint is the statedb metadata key holding the last committed
// block's chain checkpoint. It lives in the metadata space (like persisted
// CRDT documents under "crdt/") and is written atomically with the block's
// own state writes, so a durable backend always records a height and a
// checkpoint from the same block.
const MetaCheckpoint = "sys/checkpoint"

// MetaTxSeen is the statedb metadata key marking a transaction ID as seen
// on this channel, making duplicate screening survive restarts (real
// Fabric consults its persisted block index for this). The marker is
// per-channel state: the same ID on two channels is two transactions.
func MetaTxSeen(txID string) string { return "sys/tx/" + txID }

// chainCheckpoint is the persisted (number, header hash) of the last
// committed block — what a restarted channel's chain and the rebuilt
// ordering service chain onto.
type chainCheckpoint struct {
	Number uint64 `json:"number"`
	Hash   []byte `json:"hash"`
}

// Runtime is one channel's complete commit-side state on one peer. All of
// it is channel-private: block numbering, duplicate screening, MVCC
// version space, merged CRDT documents and crash-restart resume are
// independent per channel, which is what lets channels commit in parallel
// with zero coordination.
//
// Commits on a Runtime are serialized by its commit mutex (Lock/Unlock) —
// mirroring Fabric's one commit pipeline per channel — while reads
// (endorsement simulation) stay concurrent. The dedup set accessors
// (WasCommitted, MarkCommitted, ResetCommitted) must be called with the
// commit mutex held.
type Runtime struct {
	id        string
	db        *statedb.DB
	chain     *ledger.Chain
	validator *mvcc.Validator
	engine    *core.Engine

	mu           sync.Mutex
	committedIDs map[string]struct{}
}

// NewRuntime opens one channel's world state and chain. It fails when the
// configured state backend is unknown or cannot be opened (the disk
// backend needs a usable DataDir; the channel's store lives under
// DataDir/<id>).
//
// With the disk backend, a runtime constructed over a previously used
// directory resumes from the persisted state: Height reports the last
// durably committed block and the chain restarts from the recorded
// checkpoint instead of genesis.
func NewRuntime(id string, committer CommitterConfig, engineOpts core.Options) (*Runtime, error) {
	db, err := newStateDB(id, committer)
	if err != nil {
		return nil, fmt.Errorf("channel %s: %w", id, err)
	}
	// A durable state that already committed blocks carries a chain
	// checkpoint (last block number + header hash): resume the chain from
	// it, so newly delivered blocks are hash-verified against the recorded
	// history instead of restarting at genesis. A store with height but no
	// matching checkpoint is damaged — refuse it rather than start a
	// genesis chain whose fast-forward would silently swallow new blocks
	// numbered at or below the stale height.
	chain := ledger.NewChain(id)
	if h := db.Height().BlockNum; h > 0 {
		num, hash, ok := LoadCheckpoint(db)
		if !ok || num != h {
			db.Close()
			return nil, fmt.Errorf("channel %s: durable state at height %d has no matching chain checkpoint (found %d): store is damaged or from an incompatible version", id, h, num)
		}
		chain = ledger.NewChainCheckpointed(num, hash)
	}
	return &Runtime{
		id:           id,
		db:           db,
		chain:        chain,
		validator:    mvcc.New(db),
		engine:       core.NewEngine(db, engineOpts),
		committedIDs: make(map[string]struct{}),
	}, nil
}

// ID returns the channel ID.
func (rt *Runtime) ID() string { return rt.id }

// DB returns the channel's world state.
func (rt *Runtime) DB() *statedb.DB { return rt.db }

// Chain returns the channel's blockchain.
func (rt *Runtime) Chain() *ledger.Chain { return rt.chain }

// Validator returns the channel's MVCC validator.
func (rt *Runtime) Validator() *mvcc.Validator { return rt.validator }

// Engine returns the channel's CRDT merge engine.
func (rt *Runtime) Engine() *core.Engine { return rt.engine }

// Height returns the number of the last block whose writes reached this
// channel's world state — with the disk backend, the last durably
// committed block, which survives restarts.
func (rt *Runtime) Height() uint64 { return rt.db.Height().BlockNum }

// Close releases the channel's state backend (a no-op for in-memory
// backends). With the disk backend it flushes the log and surfaces any
// deferred write error; the runtime must not commit afterwards.
func (rt *Runtime) Close() error { return rt.db.Close() }

// Lock acquires the channel's commit mutex: commits on one channel are
// serialized, commits on different channels never contend.
func (rt *Runtime) Lock() { rt.mu.Lock() }

// Unlock releases the channel's commit mutex.
func (rt *Runtime) Unlock() { rt.mu.Unlock() }

// WasCommitted reports whether the transaction ID was already committed on
// this channel — in this process (in-memory set) or before a restart
// (durable seen-transaction marker). Call with the commit mutex held.
func (rt *Runtime) WasCommitted(txID string) bool {
	if _, ok := rt.committedIDs[txID]; ok {
		return true
	}
	return rt.db.GetMeta(MetaTxSeen(txID)) != nil
}

// MarkCommitted registers a transaction ID in the channel's in-memory
// duplicate-screening set. Call with the commit mutex held.
func (rt *Runtime) MarkCommitted(txID string) {
	rt.committedIDs[txID] = struct{}{}
}

// ResetCommitted clears the in-memory duplicate-screening set (state
// rebuild replays the chain and re-registers every ID). Call with the
// commit mutex held.
func (rt *Runtime) ResetCommitted() {
	rt.committedIDs = make(map[string]struct{})
}

// StageTxSeen adds every transaction ID of the block to its commit batch,
// durably extending the channel's duplicate-screening set in the same
// atomic apply as the block's writes.
func StageTxSeen(batch *statedb.UpdateBatch, txs []*ledger.Transaction) {
	for _, tx := range txs {
		batch.PutMeta(MetaTxSeen(tx.ID), []byte{1})
	}
}

// StageCheckpoint adds the block's chain checkpoint to its commit batch.
func StageCheckpoint(batch *statedb.UpdateBatch, b *ledger.Block) error {
	data, err := json.Marshal(chainCheckpoint{Number: b.Header.Number, Hash: b.HeaderHash()})
	if err != nil {
		return err
	}
	batch.PutMeta(MetaCheckpoint, data)
	return nil
}

// LoadCheckpoint reads the persisted chain checkpoint, if any.
func LoadCheckpoint(db *statedb.DB) (number uint64, hash []byte, ok bool) {
	raw := db.GetMeta(MetaCheckpoint)
	if raw == nil {
		return 0, nil, false
	}
	var cp chainCheckpoint
	if err := json.Unmarshal(raw, &cp); err != nil {
		return 0, nil, false
	}
	return cp.Number, cp.Hash, true
}
