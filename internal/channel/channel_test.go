package channel

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"fabriccrdt/internal/core"
	"fabriccrdt/internal/orderer"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/statedb"
)

func TestValidateIDs(t *testing.T) {
	for name, ids := range map[string][]string{
		"empty-list":     {},
		"empty-name":     {"ch1", ""},
		"duplicate":      {"ch1", "ch2", "ch1"},
		"path-separator": {"ch/1"},
		"parent-dir":     {".."},
		"dot-prefix":     {".ch1"},
		"space":          {"ch 1"},
	} {
		if err := ValidateIDs(ids); err == nil {
			t.Errorf("%s: ValidateIDs(%q) accepted", name, ids)
		}
	}
	if err := ValidateIDs([]string{"channel1", "Ch-2", "ch_3.shard"}); err != nil {
		t.Fatalf("valid IDs rejected: %v", err)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	if _, err := NewRegistry(); err == nil {
		t.Fatal("empty registry accepted")
	}
	if _, err := NewRegistry("a", "a"); err == nil {
		t.Fatal("duplicate channels accepted")
	}
	r, err := NewRegistry("ch1", "ch2")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Default(); got != "ch1" {
		t.Fatalf("Default() = %q, want ch1", got)
	}
	if !r.Has("ch2") || r.Has("ch3") {
		t.Fatal("Has misreports membership")
	}
	if _, err := r.Service("ch1"); err == nil {
		t.Fatal("Service resolved before StartService")
	}
	if _, err := r.StartService("ch3", orderer.DefaultConfig(10), 0, nil); err == nil {
		t.Fatal("StartService accepted an unknown channel")
	}
	for _, id := range r.IDs() {
		if _, err := r.StartService(id, orderer.DefaultConfig(10), 0, nil); err != nil {
			t.Fatalf("StartService(%s): %v", id, err)
		}
	}
	if _, err := r.StartService("ch1", orderer.DefaultConfig(10), 0, nil); err == nil {
		t.Fatal("double StartService accepted")
	}
	s1, err := r.Service("ch1")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Service("ch2")
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("channels share an ordering service")
	}
	deliver, err := r.Subscribe("ch2")
	if err != nil {
		t.Fatal(err)
	}
	r.StopAll()
	if _, open := <-deliver; open {
		t.Fatal("StopAll did not close deliver channels")
	}
	// A stopped registry accepts no further StartService: a late service
	// would order blocks no committer goroutine drains.
	r2, err := NewRegistry("late")
	if err != nil {
		t.Fatal(err)
	}
	r2.StopAll()
	if _, err := r2.StartService("late", orderer.DefaultConfig(10), 0, nil); err == nil {
		t.Fatal("StartService accepted after StopAll")
	}
}

func TestNewRuntimeRejectsBadBackendConfig(t *testing.T) {
	for name, committer := range map[string]CommitterConfig{
		"unknown-backend":       {Backend: "couchdb"},
		"disk-no-datadir":       {Backend: BackendDisk},
		"lsm-no-datadir":        {Backend: BackendLSM},
		"misspelled-entry":      {Backend: "Memory"},
		"misspelled-lsm":        {Backend: "LSM"},
		"blocks-on-memory":      {Backend: BackendMemory, PersistBlocks: PersistBlocksOn},
		"blocks-on-no-backend":  {PersistBlocks: PersistBlocksOn},
		"blocks-unknown-mode":   {Backend: BackendDisk, DataDir: t.TempDir(), PersistBlocks: "bogus"},
		"blocks-misspelled-off": {Backend: BackendDisk, DataDir: t.TempDir(), PersistBlocks: "Off"},
	} {
		if _, err := NewRuntime("ch1", committer, core.Options{}); err == nil {
			t.Errorf("%s: NewRuntime accepted %+v", name, committer)
		}
	}
	for _, committer := range []CommitterConfig{
		{},
		{Backend: BackendMemory},
		{Backend: BackendSharded, StateShards: 4},
		{StateShards: 8},
		{Backend: BackendDisk, DataDir: t.TempDir()},
		{Backend: BackendDisk, DataDir: t.TempDir(), PersistBlocks: PersistBlocksOn},
		{Backend: BackendDisk, DataDir: t.TempDir(), PersistBlocks: PersistBlocksOff},
		{Backend: BackendLSM, DataDir: t.TempDir()},
		{Backend: BackendLSM, DataDir: t.TempDir(), PersistBlocks: PersistBlocksOn},
		{Backend: BackendLSM, DataDir: t.TempDir(), PersistBlocks: PersistBlocksOff},
		{Backend: BackendLSM, DataDir: t.TempDir(), StateCacheBytes: 1 << 20},
		{Backend: BackendMemory, PersistBlocks: PersistBlocksOff},
	} {
		rt, err := NewRuntime("ch1", committer, core.Options{})
		if err != nil {
			t.Errorf("NewRuntime(%+v): %v", committer, err)
			continue
		}
		rt.Close()
	}
}

// TestDiskRuntimePerChannelLayout pins the on-disk contract: each channel
// persists under its own DataDir/<channel-ID> subdirectory — the state
// store directly inside, the block store (on by default with the disk
// backend) under its blocks/ subdirectory — so channels on one peer never
// share a log.
func TestDiskRuntimePerChannelLayout(t *testing.T) {
	dir := t.TempDir()
	committer := CommitterConfig{Backend: BackendDisk, DataDir: dir}
	for _, id := range []string{"ch1", "ch2"} {
		rt, err := NewRuntime(id, committer, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rt.Blocks() == nil {
			t.Fatalf("channel %s: block persistence is not on by default with the disk backend", id)
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(dir, id)); err != nil {
			t.Fatalf("channel %s has no %s subdirectory: %v", id, filepath.Join(dir, id), err)
		}
		if _, err := os.Stat(filepath.Join(dir, id, "blocks", "blocks.log")); err != nil {
			t.Fatalf("channel %s has no block log: %v", id, err)
		}
	}
	// PersistBlocksOff keeps the block store out of the layout.
	committer.PersistBlocks = PersistBlocksOff
	rt, err := NewRuntime("ch3", committer, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Blocks() != nil {
		t.Fatal("PersistBlocksOff still opened a block store")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ch3", "blocks")); !os.IsNotExist(err) {
		t.Fatalf("PersistBlocksOff still created a blocks/ directory: %v", err)
	}
}

// TestNewRuntimeRejectsLegacyStore: a data directory in the
// pre-multi-channel layout (state files directly under DataDir) must be
// refused with a migration hint, not silently abandoned by opening a
// fresh per-channel subdirectory beside it.
func TestNewRuntimeRejectsLegacyStore(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "state.log"), []byte{}, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := NewRuntime("ch1", CommitterConfig{Backend: BackendDisk, DataDir: dir}, core.Options{})
	if err == nil {
		t.Fatal("NewRuntime opened beside a legacy store")
	}
	if !strings.Contains(err.Error(), "pre-multi-channel") {
		t.Fatalf("unhelpful legacy-store error: %v", err)
	}
}

// TestNewRuntimeRejectsDamagedStore: a durable store with height but no
// chain checkpoint (damage, or a store from an incompatible version) must
// refuse to open — a genesis chain over a non-zero height would make
// fast-forward silently swallow every new block up to that height.
func TestNewRuntimeRejectsDamagedStore(t *testing.T) {
	dir := t.TempDir()
	db, err := statedb.NewDisk(filepath.Join(dir, "ch1"))
	if err != nil {
		t.Fatal(err)
	}
	batch := statedb.NewUpdateBatch()
	batch.Put("k", []byte("v"), rwset.Version{BlockNum: 3})
	db.Apply(batch, rwset.Version{BlockNum: 3})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = NewRuntime("ch1", CommitterConfig{Backend: BackendDisk, DataDir: dir}, core.Options{})
	if err == nil {
		t.Fatal("NewRuntime accepted a durable store with height but no checkpoint")
	}
	if !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("unhelpful damage error: %v", err)
	}
}

// TestRuntimeDedupIsChannelLocal: the duplicate-screening set (in-memory
// and durable markers) belongs to one runtime; the same ID on another
// channel is a different transaction.
func TestRuntimeDedupIsChannelLocal(t *testing.T) {
	dir := t.TempDir()
	committer := CommitterConfig{Backend: BackendDisk, DataDir: dir}
	rt1, err := NewRuntime("ch1", committer, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt1.Close()
	rt2, err := NewRuntime("ch2", committer, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()

	rt1.Lock()
	rt1.MarkCommitted("tx-shared")
	seen1 := rt1.WasCommitted("tx-shared")
	rt1.Unlock()
	rt2.Lock()
	seen2 := rt2.WasCommitted("tx-shared")
	rt2.Unlock()
	if !seen1 || seen2 {
		t.Fatalf("dedup leaked across channels: ch1=%v ch2=%v", seen1, seen2)
	}

	// Durable markers are channel-local too.
	batch := statedb.NewUpdateBatch()
	batch.PutMeta(MetaTxSeen("tx-durable"), []byte{1})
	rt1.DB().Apply(batch, rwset.Version{BlockNum: 1})
	rt1.Lock()
	d1 := rt1.WasCommitted("tx-durable")
	rt1.Unlock()
	rt2.Lock()
	d2 := rt2.WasCommitted("tx-durable")
	rt2.Unlock()
	if !d1 || d2 {
		t.Fatalf("durable dedup leaked across channels: ch1=%v ch2=%v", d1, d2)
	}
}

func TestAdaptiveWorkers(t *testing.T) {
	cpus := runtime.NumCPU()
	if got := AdaptiveWorkers(1); got != cpus {
		t.Fatalf("AdaptiveWorkers(1) = %d, want NumCPU = %d", got, cpus)
	}
	want := cpus / 2
	if want < 1 {
		want = 1
	}
	if got := AdaptiveWorkers(2); got != want {
		t.Fatalf("AdaptiveWorkers(2) = %d, want %d", got, want)
	}
	// More channels than CPUs still leaves every channel one worker.
	if got := AdaptiveWorkers(16 * cpus); got != 1 {
		t.Fatalf("AdaptiveWorkers(%d) = %d, want 1", 16*cpus, got)
	}
	if got := AdaptiveWorkers(0); got < 1 {
		t.Fatalf("AdaptiveWorkers(0) = %d, want >= 1", got)
	}
}
