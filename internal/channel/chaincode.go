package channel

import (
	"sync"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/endorse"
)

// InstalledChaincode pairs a chaincode with the endorsement policy its
// transactions must satisfy on this channel.
type InstalledChaincode struct {
	Chaincode chaincode.Chaincode
	Policy    *endorse.Policy
}

// ccRegistry is a Runtime's channel-local chaincode registry. Installation
// is per channel (as in Fabric, where chaincode is deployed to a channel):
// an invoke or an endorsement check on a channel where the chaincode is not
// installed fails, so a transaction endorsed against one channel's
// chaincode can never validate on another channel just because the peer
// happens to run both. Its own lock (not the commit mutex) keeps installs
// safe against concurrent endorsement and commits.
type ccRegistry struct {
	mu         sync.RWMutex
	chaincodes map[string]InstalledChaincode
}

// InstallChaincode installs a chaincode on this channel, replacing any
// previous version under the same name.
func (rt *Runtime) InstallChaincode(name string, cc chaincode.Chaincode, policy *endorse.Policy) {
	rt.cc.mu.Lock()
	defer rt.cc.mu.Unlock()
	if rt.cc.chaincodes == nil {
		rt.cc.chaincodes = make(map[string]InstalledChaincode)
	}
	rt.cc.chaincodes[name] = InstalledChaincode{Chaincode: cc, Policy: policy}
}

// Chaincode returns the chaincode installed on this channel under name.
func (rt *Runtime) Chaincode(name string) (InstalledChaincode, bool) {
	rt.cc.mu.RLock()
	defer rt.cc.mu.RUnlock()
	entry, ok := rt.cc.chaincodes[name]
	return entry, ok
}
