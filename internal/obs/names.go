package obs

// This file is the single catalog of registry metric names. Every name
// must match ^fabriccrdt_[a-z0-9_]+$ and be declared exactly once, no
// .go file outside internal/obs may contain a "fabriccrdt_..." string
// literal (call sites reference these constants; the obs tests exercise
// the registry with literals), and every constant here must be
// referenced somewhere — all enforced by the metricnames analyzer
// (internal/lint), which runs as part of `make lint`. See
// docs/OBSERVABILITY.md for the full catalog with types and labels.
const (
	// Commit path (per-peer registries; labels peer, channel).
	MetricCommitStageSeconds  = "fabriccrdt_commit_stage_seconds"   // histogram{peer,channel,stage}
	MetricPeerBlockHeight     = "fabriccrdt_peer_block_height"      // gauge{peer,channel}
	MetricPeerBlocksCommitted = "fabriccrdt_peer_blocks_total"      // counter{peer,channel}
	MetricPeerTxsCommitted    = "fabriccrdt_peer_txs_total"         // counter{peer,channel,result}
	MetricPeerEventQueueDepth = "fabriccrdt_peer_event_queue_depth" // gauge{peer}
	MetricPeerEventListeners  = "fabriccrdt_peer_event_listeners"   // gauge{peer}

	// Finalize scheduler (mirrors of peer metrics.Counters; label peer).
	MetricSchedBlocks     = "fabriccrdt_sched_blocks_total"         // counter{peer}
	MetricSchedTxs        = "fabriccrdt_sched_txs_total"            // counter{peer}
	MetricSchedGroups     = "fabriccrdt_sched_groups_total"         // counter{peer}
	MetricSchedConflicted = "fabriccrdt_sched_conflicted_txs_total" // counter{peer}
	MetricSchedEdges      = "fabriccrdt_sched_edges_total"          // counter{peer}
	MetricSchedWaves      = "fabriccrdt_sched_mvcc_waves_total"     // counter{peer}

	// State and block stores (per-peer registries; labels peer, channel).
	MetricStatedbKeys        = "fabriccrdt_statedb_keys"               // gauge{peer,channel}
	MetricStatedbLogBytes    = "fabriccrdt_statedb_log_bytes"          // gauge{peer,channel}
	MetricStatedbAppends     = "fabriccrdt_statedb_appends_total"      // counter{peer,channel}
	MetricStatedbFsyncs      = "fabriccrdt_statedb_fsyncs_total"       // counter{peer,channel}
	MetricStatedbCompactions = "fabriccrdt_statedb_compactions_total"  // counter{peer,channel}
	MetricStatedbFlushes     = "fabriccrdt_statedb_flushes_total"      // counter{peer,channel} (LSM)
	MetricStatedbRuns        = "fabriccrdt_statedb_runs"               // gauge{peer,channel} (LSM)
	MetricStatedbCacheHits   = "fabriccrdt_statedb_cache_hits_total"   // counter{peer,channel} (LSM)
	MetricStatedbCacheMisses = "fabriccrdt_statedb_cache_misses_total" // counter{peer,channel} (LSM)
	MetricBlockstoreHeight   = "fabriccrdt_blockstore_height"          // gauge{peer,channel}
	MetricBlockstoreLogBytes = "fabriccrdt_blockstore_log_bytes"       // gauge{peer,channel}
	MetricBlockstoreAppends  = "fabriccrdt_blockstore_appends_total"   // counter{peer,channel}
	MetricBlockstoreFsyncs   = "fabriccrdt_blockstore_fsyncs_total"    // counter{peer,channel}

	// Unbounded handoff queues (scrape-time depth gauges).
	MetricOrdererQueueDepth  = "fabriccrdt_orderer_fanout_queue_depth" // gauge{channel}
	MetricHistoryLagBlocks   = "fabriccrdt_history_lag_blocks"         // gauge{channel}
	MetricHistoryStreams     = "fabriccrdt_history_streams"            // gauge{channel}
	MetricWireCallQueueDepth = "fabriccrdt_wire_call_queue_depth"      // gauge (client side)

	// Wire transport (process-global Default registry).
	MetricWireFrames      = "fabriccrdt_wire_frames_total"       // counter{side,dir}
	MetricWireBytes       = "fabriccrdt_wire_bytes_total"        // counter{side,dir}
	MetricWireFrameErrors = "fabriccrdt_wire_frame_errors_total" // counter{side}
	MetricWireReconnects  = "fabriccrdt_wire_reconnects_total"   // counter
	MetricDeliverRetries  = "fabriccrdt_deliver_retries_total"   // counter
	MetricTransportCalls  = "fabriccrdt_transport_calls_total"   // counter{op}
)
