package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded hop of a traced transaction: which process did
// what, when, and for how long. Spans from different processes are joined
// by TraceID after the fact; clocks are only compared within one process.
type Span struct {
	TraceID string            `json:"trace"`
	Name    string            `json:"name"`
	Process string            `json:"process"`
	Start   time.Time         `json:"start"`
	Dur     time.Duration     `json:"dur"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Tracer collects spans for one process. Recording is append-under-mutex;
// tracing is meant for diagnosis runs (-trace-out), not steady state, so
// the tracer favors simplicity over a lock-free ring.
type Tracer struct {
	process string

	mu    sync.Mutex
	spans []Span
}

// NewTracer returns a tracer stamping spans with the given process label
// (e.g. "peer/Org1.peer0").
func NewTracer(process string) *Tracer {
	return &Tracer{process: process}
}

// Record appends a span running from start to now. Attrs are "key",
// "value" pairs. Nil-safe and a no-op for an empty trace ID, so call
// sites don't need their own guards.
func (t *Tracer) Record(traceID, name string, start time.Time, attrs ...string) {
	if t == nil || traceID == "" {
		return
	}
	sp := Span{
		TraceID: traceID,
		Name:    name,
		Process: t.process,
		Start:   start,
		Dur:     time.Since(start),
	}
	if len(attrs) > 0 {
		sp.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			sp.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Spans returns a copy of everything recorded so far.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto, speedscope all load it).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the recorded spans as Chrome trace-event JSON:
// one complete ("X") event per span with the trace ID as its category and
// in its args, plus a process_name metadata event so viewers label the
// lane with the tracer's process string.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	pid := os.Getpid()
	events := make([]chromeEvent, 0, len(spans)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]string{"name": t.process},
	})
	for _, sp := range spans {
		args := map[string]string{"trace": sp.TraceID, "process": sp.Process}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  sp.TraceID,
			Ph:   "X",
			Ts:   float64(sp.Start.UnixNano()) / 1e3,
			Dur:  float64(sp.Dur.Nanoseconds()) / 1e3,
			Pid:  pid,
			Tid:  1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteFile dumps the Chrome trace-event JSON to path (the -trace-out
// shutdown path).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: creating trace file: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: closing trace file: %w", err)
	}
	return nil
}

// ParseChromeTrace reads a file written by WriteChromeTrace back into
// spans (trace-propagation tests join files from several processes).
// Metadata events are skipped; the span Process comes from the event args.
func ParseChromeTrace(data []byte) ([]Span, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: parsing chrome trace: %w", err)
	}
	var spans []Span
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		sp := Span{
			TraceID: ev.Cat,
			Name:    ev.Name,
			Start:   time.Unix(0, int64(ev.Ts*1e3)),
			Dur:     time.Duration(ev.Dur * 1e3),
		}
		if ev.Args != nil {
			sp.Process = ev.Args["process"]
			sp.Attrs = ev.Args
		}
		spans = append(spans, sp)
	}
	return spans, nil
}

// defaultTracer is the process-global tracer; nil means tracing is off
// and every Trace call is a single atomic load.
var defaultTracer atomic.Pointer[Tracer]

// EnableTracing installs a process-global tracer labeled with process and
// returns it. Call once at startup when -trace-out is set.
func EnableTracing(process string) *Tracer {
	t := NewTracer(process)
	defaultTracer.Store(t)
	return t
}

// SetDefaultTracer installs (or, with nil, removes) the process-global
// tracer — the test hook for in-process trace assertions.
func SetDefaultTracer(t *Tracer) { defaultTracer.Store(t) }

// TracingEnabled reports whether a process-global tracer is installed.
// Instrumented paths gate on this so disabled tracing costs one atomic
// load.
func TracingEnabled() bool { return defaultTracer.Load() != nil }

// Trace records a span on the process-global tracer; a no-op when tracing
// is disabled or traceID is empty.
func Trace(traceID, name string, start time.Time, attrs ...string) {
	defaultTracer.Load().Record(traceID, name, start, attrs...)
}

// NewTraceID mints a 16-hex-character random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; fall back to a fixed marker
		// rather than plumbing an error through every Prepare call.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
