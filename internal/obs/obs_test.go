package obs

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fabriccrdt_wire_frames_total", "side", "client", "dir", "in")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) in any key order returns the same series.
	if c2 := r.Counter("fabriccrdt_wire_frames_total", "dir", "in", "side", "client"); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("fabriccrdt_peer_block_height", "peer", "p0")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if v, ok := r.Value("fabriccrdt_peer_block_height", "peer", "p0"); !ok || v != 5 {
		t.Fatalf("Value = %v, %v; want 5, true", v, ok)
	}
	if _, ok := r.Value("fabriccrdt_peer_block_height", "peer", "other"); ok {
		t.Fatal("Value found an unregistered series")
	}
	r.Counter("fabriccrdt_wire_frames_total", "side", "server", "dir", "in").Add(10)
	if total, ok := r.Total("fabriccrdt_wire_frames_total"); !ok || total != 15 {
		t.Fatalf("Total = %v, %v; want 15, true", total, ok)
	}
}

func TestNilMetricHandlesAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

func TestBadNamesAndKindsPanic(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("bad prefix", func() { r.Counter("http_requests_total") })
	mustPanic("bad chars", func() { r.Counter("fabriccrdt_Bad-Name") })
	mustPanic("odd labels", func() { r.Counter("fabriccrdt_x_total", "only-key") })
	r.Counter("fabriccrdt_x_total")
	mustPanic("kind clash", func() { r.Gauge("fabriccrdt_x_total") })
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fabriccrdt_commit_stage_seconds", "stage", "merge")
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got, want := h.Sum(), 90*2*time.Millisecond+10*80*time.Millisecond; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if got := h.Max(); got != 80*time.Millisecond {
		t.Fatalf("max = %v, want 80ms", got)
	}
	// 2ms falls in the (1ms, 2.5ms] bucket; p50 must land there.
	if p50 := h.Quantile(0.50); p50 < time.Millisecond || p50 > 2500*time.Microsecond {
		t.Fatalf("p50 = %v, want within (1ms, 2.5ms]", p50)
	}
	// p95 crosses into the 80ms observations' (50ms, 100ms] bucket.
	if p95 := h.Quantile(0.95); p95 < 50*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v, want within (50ms, 100ms]", p95)
	}
	if h.Quantile(1) > 100*time.Millisecond {
		t.Fatalf("p100 = %v beyond top populated bucket", h.Quantile(1))
	}
}

func TestRenderMergesAndValidates(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter("fabriccrdt_wire_frames_total", "side", "client").Add(3)
	b.Counter("fabriccrdt_wire_frames_total", "side", "server").Add(4)
	a.GaugeFunc("fabriccrdt_peer_event_queue_depth", func() float64 { return 2 }, "peer", "p0")
	h := b.Histogram("fabriccrdt_commit_stage_seconds", "stage", "apply")
	h.Observe(3 * time.Millisecond)
	var buf bytes.Buffer
	if err := Render(&buf, a, b, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE fabriccrdt_wire_frames_total counter",
		`fabriccrdt_wire_frames_total{side="client"} 3`,
		`fabriccrdt_wire_frames_total{side="server"} 4`,
		`fabriccrdt_peer_event_queue_depth{peer="p0"} 2`,
		"# TYPE fabriccrdt_commit_stage_seconds histogram",
		`fabriccrdt_commit_stage_seconds_bucket{stage="apply",le="+Inf"} 1`,
		`fabriccrdt_commit_stage_seconds_count{stage="apply"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The family typed once even though two registries contribute series.
	if strings.Count(out, "# TYPE fabriccrdt_wire_frames_total") != 1 {
		t.Fatalf("family typed more than once:\n%s", out)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("render output fails validation: %v\n%s", err, out)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	for _, tc := range []struct{ name, text string }{
		{"no type", "fabriccrdt_x_total 3\n"},
		{"garbage line", "# TYPE fabriccrdt_x_total counter\nfabriccrdt_x_total{ 3\n"},
		{"bad value", "# TYPE fabriccrdt_x_total counter\nfabriccrdt_x_total three\n"},
		{"double type", "# TYPE fabriccrdt_x_total counter\n# TYPE fabriccrdt_x_total gauge\n"},
	} {
		if err := ValidateExposition([]byte(tc.text)); err == nil {
			t.Errorf("%s: validation accepted malformed text", tc.name)
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("fabriccrdt_wire_frames_total", "side", "client").Inc()
	s := NewServer(r, Default())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 {
		t.Fatalf("/metrics -> %d: %s", code, body)
	} else if err := ValidateExposition([]byte(body)); err != nil {
		t.Fatalf("/metrics malformed: %v", err)
	} else if !strings.Contains(body, "fabriccrdt_wire_frames_total") {
		t.Fatalf("/metrics missing registered counter:\n%s", body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz -> %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady -> %d, want 503", code)
	}
	s.SetReady()
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz after SetReady -> %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline -> %d", code)
	}
}

func TestTracerChromeRoundTrip(t *testing.T) {
	tr := NewTracer("peer/p0")
	start := time.Now().Add(-5 * time.Millisecond)
	tr.Record("abc123", "peer.commit", start, "block", "7")
	tr.Record("", "dropped", start) // empty trace ID: not recorded
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("round-tripped %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.TraceID != "abc123" || sp.Name != "peer.commit" || sp.Process != "peer/p0" {
		t.Fatalf("bad span: %+v", sp)
	}
	if sp.Attrs["block"] != "7" {
		t.Fatalf("attrs lost: %+v", sp.Attrs)
	}
	if sp.Dur < 4*time.Millisecond {
		t.Fatalf("duration %v lost precision", sp.Dur)
	}
}

func TestGlobalTracerGating(t *testing.T) {
	SetDefaultTracer(nil)
	t.Cleanup(func() { SetDefaultTracer(nil) })
	Trace("id", "noop", time.Now()) // must not panic when disabled
	if TracingEnabled() {
		t.Fatal("tracing reported enabled with no tracer")
	}
	tr := EnableTracing("test")
	if !TracingEnabled() {
		t.Fatal("tracing reported disabled after EnableTracing")
	}
	Trace("id", "op", time.Now())
	if got := tr.Spans(); len(got) != 1 || got[0].Name != "op" {
		t.Fatalf("global span not recorded: %+v", got)
	}
	if id := NewTraceID(); len(id) != 16 {
		t.Fatalf("trace ID %q, want 16 hex chars", id)
	}
}

func TestWarnQueueDepthRateLimited(t *testing.T) {
	var buf bytes.Buffer
	old := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(&buf, nil)))
	t.Cleanup(func() { slog.SetDefault(old) })
	SetQueueWarnDepth(10)
	t.Cleanup(func() { SetQueueWarnDepth(DefaultQueueWarnDepth) })

	WarnQueueDepth("orderer_fanout", "channel1", 5) // below: silent
	if buf.Len() != 0 {
		t.Fatalf("warned below high-water mark: %s", buf.String())
	}
	WarnQueueDepth("orderer_fanout", "channel1", 50)
	WarnQueueDepth("orderer_fanout", "channel1", 60) // rate-limited
	if got := strings.Count(buf.String(), "high-water"); got != 1 {
		t.Fatalf("got %d warnings, want 1 (rate-limited): %s", got, buf.String())
	}
	WarnQueueDepth("wire_call", "127.0.0.1:9", 50) // different queue: warns
	if got := strings.Count(buf.String(), "high-water"); got != 2 {
		t.Fatalf("got %d warnings, want 2: %s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "queue=orderer_fanout") ||
		!strings.Contains(buf.String(), "label=channel1") {
		t.Fatalf("warning missing structured fields: %s", buf.String())
	}
}
