package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Server is the operations endpoint every fabricnet role exposes behind
// -metrics-addr:
//
//	/metrics        merged Prometheus exposition of the given registries
//	/debug/pprof/*  the standard Go profiling handlers
//	/healthz        200 while the process is up
//	/readyz         503 until SetReady — for a peer, until every channel
//	                has resumed to its durable checkpoint and the wire
//	                listener is up
type Server struct {
	regs  []*Registry
	ready atomic.Bool

	srv *http.Server
	lis net.Listener
}

// NewServer builds an operations server over the given registries (nil
// entries are skipped at render time).
func NewServer(regs ...*Registry) *Server {
	s := &Server{regs: regs}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			http.Error(w, "starting", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := Render(w, s.regs...); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// SetReady flips /readyz to 200.
func (s *Server) SetReady() { s.ready.Store(true) }

// Listen binds addr (":0" picks a free port) and serves in the
// background, returning the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	s.lis = lis
	go s.srv.Serve(lis) //nolint:errcheck // Serve returns on Close
	return lis.Addr(), nil
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s.lis == nil {
		return nil
	}
	return s.srv.Close()
}
