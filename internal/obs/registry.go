// Package obs is the telemetry layer: a dependency-free metrics registry
// (atomic counters, gauges, callback metrics and bounded-bucket duration
// histograms) rendered in Prometheus text exposition format, an HTTP
// operations server (/metrics, /debug/pprof/*, /healthz, /readyz), a
// lightweight cross-process transaction tracer dumping Chrome trace-event
// JSON, and rate-limited high-water warnings for unbounded handoff queues.
//
// The package imports nothing from the rest of the module, so every layer
// (wire, transport, orderer, peer, client, fabricnet, cmd) may instrument
// itself through it without cycles. Metric series are registered once
// (typically at construction) and then updated with atomics only — the
// hot path never takes the registry lock. Gauges that mirror live state
// (queue depths, chain heights, store sizes) are registered as callback
// metrics and evaluated at scrape time, so an unscraped process pays
// nothing for them.
//
// Every metric name must match ^fabriccrdt_[a-z0-9_]+$ and be declared in
// names.go (enforced by the metricnames analyzer in internal/lint, which
// runs under `make lint`).
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// nameRE is the contract every registered metric name must satisfy; the
// registry panics on violations because a bad name is a programming error,
// not a runtime condition.
var nameRE = regexp.MustCompile(`^fabriccrdt_[a-z0-9_]+$`)

// labelNameRE validates label names (Prometheus label identifier syntax,
// restricted to lowercase like the metric names).
var labelNameRE = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)

// kind is the exposition type of a metric family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing value. The zero method set is
// safe on a nil receiver, so optional instrumentation can stay unwired.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta; negative deltas are ignored (counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// series is one (name, labels) time series.
type series struct {
	labels string // rendered `key="value",...` signature, "" for none

	ctr *Counter
	gge *Gauge
	fn  func() float64 // callback metric (counter or gauge kind)
	his *Histogram
}

// value returns the series' scalar value (histograms report their
// observation count).
func (s *series) value() float64 {
	switch {
	case s.ctr != nil:
		return float64(s.ctr.Value())
	case s.gge != nil:
		return float64(s.gge.Value())
	case s.fn != nil:
		return s.fn()
	case s.his != nil:
		return float64(s.his.Count())
	default:
		return 0
	}
}

// family is all series sharing one metric name.
type family struct {
	name   string
	kind   kind
	series map[string]*series
}

// Registry holds metric families. Registration takes the registry lock;
// updates on the returned Counter/Gauge/Histogram handles are lock-free.
// A process typically has one Default registry for process-scoped metrics
// (wire traffic, transport calls) plus one registry per long-lived
// component (a peer, a fabricnet network) so tests and multi-peer
// processes keep their series apart; Render merges any set of registries
// into one exposition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-global registry (see Default).
var defaultRegistry = NewRegistry()

// Default returns the process-global registry, home of process-scoped
// metrics like wire frame counters.
func Default() *Registry { return defaultRegistry }

// labelSignature renders variadic "key", "value" pairs into the canonical
// sorted `key="value"` list used as the series key and in the exposition.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q (want key, value pairs)", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !labelNameRE.MatchString(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register returns the series for (name, labels), creating family and
// series as needed. Existing series are returned as-is except callback
// metrics, whose function is replaced (so a recreated component re-binds
// the gauge to its live instance).
func (r *Registry) register(name string, k kind, labels []string) *series {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: metric name %q does not match %s", name, nameRE))
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: k, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, k))
	}
	s := f.series[sig]
	if s == nil {
		s = &series{labels: sig}
		f.series[sig] = s
	}
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.register(name, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ctr == nil {
		if s.fn != nil || s.gge != nil || s.his != nil {
			panic(fmt.Sprintf("obs: series %s{%s} already registered with a different shape", name, s.labels))
		}
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.register(name, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gge == nil {
		if s.fn != nil || s.ctr != nil || s.his != nil {
			panic(fmt.Sprintf("obs: series %s{%s} already registered with a different shape", name, s.labels))
		}
		s.gge = &Gauge{}
	}
	return s.gge
}

// GaugeFunc registers a gauge series whose value is computed by fn at
// scrape time — the idiom for live state (queue depths, heights, store
// sizes): the instrumented hot path pays nothing. Re-registering the same
// series replaces the callback, so a recreated component re-binds it.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	s := r.register(name, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ctr != nil || s.gge != nil || s.his != nil {
		panic(fmt.Sprintf("obs: series %s{%s} already registered with a different shape", name, s.labels))
	}
	s.fn = fn
}

// CounterFunc registers a counter series computed by fn at scrape time —
// for mirroring an existing monotonic count without double bookkeeping.
// Like GaugeFunc, re-registration replaces the callback.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...string) {
	s := r.register(name, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ctr != nil || s.gge != nil || s.his != nil {
		panic(fmt.Sprintf("obs: series %s{%s} already registered with a different shape", name, s.labels))
	}
	s.fn = fn
}

// Histogram registers (or returns the existing) duration histogram series
// over the default exponential bucket bounds.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	s := r.register(name, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.his == nil {
		if s.fn != nil || s.ctr != nil || s.gge != nil {
			panic(fmt.Sprintf("obs: series %s{%s} already registered with a different shape", name, s.labels))
		}
		s.his = newHistogram()
	}
	return s.his
}

// Value returns the current value of one series, reported with the exact
// label set it was registered under. Histogram series report their
// observation count. The second result is false for unknown series.
func (r *Registry) Value(name string, labels ...string) (float64, bool) {
	sig := labelSignature(labels)
	r.mu.Lock()
	f := r.families[name]
	var s *series
	if f != nil {
		s = f.series[sig]
	}
	r.mu.Unlock()
	if s == nil {
		return 0, false
	}
	return s.value(), true
}

// Total sums all series of a family — the whole-process view of a counter
// sharded by labels. False when the family is unknown.
func (r *Registry) Total(name string) (float64, bool) {
	r.mu.Lock()
	f := r.families[name]
	var ss []*series
	if f != nil {
		for _, s := range f.series {
			ss = append(ss, s)
		}
	}
	r.mu.Unlock()
	if f == nil {
		return 0, false
	}
	var sum float64
	for _, s := range ss {
		sum += s.value()
	}
	return sum, true
}

// histBounds are the shared histogram bucket upper bounds in seconds:
// 1µs to 10s in a 1-2.5-5 decade ladder, wide enough for sub-microsecond
// dedup stages and multi-second end-to-end latencies alike. A +Inf bucket
// is implicit.
var histBounds = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket duration histogram: atomic per-bucket
// counts plus sum/count/max, observable concurrently without locks.
// Quantiles are estimated by linear interpolation inside the bucket that
// crosses the requested rank — exact enough for p50/p95/p99 dashboards at
// 22 buckets per decade ladder.
type Histogram struct {
	counts   []atomic.Int64 // len(histBounds)+1; last is +Inf
	count    atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(histBounds)+1)}
}

// Observe records one duration. Nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	sec := d.Seconds()
	i := sort.SearchFloat64s(histBounds, sec)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	for {
		old := h.maxNanos.Load()
		if int64(d) <= old || h.maxNanos.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNanos.Load())
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.maxNanos.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution, interpolating linearly within the crossing bucket. The
// top (+Inf) bucket reports the observed max. Zero observations report 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(histBounds) {
				return h.Max()
			}
			lo := 0.0
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := histBounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return time.Duration((lo + (hi-lo)*frac) * float64(time.Second))
		}
		cum += n
	}
	return h.Max()
}
