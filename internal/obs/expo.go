package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// snapshotSeries is one rendered-ready series: its label signature and
// either a scalar value or a histogram snapshot.
type snapshotSeries struct {
	labels string
	value  float64

	hist      bool
	buckets   []int64 // cumulative, one per histBounds entry, then +Inf
	histSum   float64
	histCount int64
}

// snapshotFamily is a family captured under the registry lock.
type snapshotFamily struct {
	name   string
	kind   kind
	series []snapshotSeries
}

// snapshot captures every family of the registry. Callback metrics are
// evaluated outside the lock, so a GaugeFunc may itself take other locks.
func (r *Registry) snapshot() []snapshotFamily {
	type pending struct {
		fam int
		ser int
		fn  func() float64
	}
	r.mu.Lock()
	fams := make([]snapshotFamily, 0, len(r.families))
	var deferred []pending
	for _, f := range r.families {
		sf := snapshotFamily{name: f.name, kind: f.kind}
		for _, s := range f.series {
			ss := snapshotSeries{labels: s.labels}
			switch {
			case s.fn != nil:
				deferred = append(deferred, pending{fam: len(fams), ser: len(sf.series), fn: s.fn})
			case s.his != nil:
				ss.hist = true
				ss.buckets = make([]int64, len(s.his.counts))
				var cum int64
				for i := range s.his.counts {
					cum += s.his.counts[i].Load()
					ss.buckets[i] = cum
				}
				ss.histSum = s.his.Sum().Seconds()
				ss.histCount = s.his.Count()
			default:
				ss.value = s.value()
			}
			sf.series = append(sf.series, ss)
		}
		fams = append(fams, sf)
	}
	r.mu.Unlock()
	for _, p := range deferred {
		fams[p.fam].series[p.ser].value = p.fn()
	}
	return fams
}

// Render writes the merged exposition of the given registries in
// Prometheus text format: families sorted by name (a family appearing in
// several registries is emitted once, its series concatenated), series
// sorted by label signature. Registries sharing a family name must agree
// on its kind.
func Render(w io.Writer, regs ...*Registry) error {
	merged := make(map[string]*snapshotFamily)
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, f := range r.snapshot() {
			f := f
			m := merged[f.name]
			if m == nil {
				merged[f.name] = &f
				continue
			}
			if m.kind != f.kind {
				return fmt.Errorf("obs: metric %q rendered as both %s and %s", f.name, m.kind, f.kind)
			}
			m.series = append(m.series, f.series...)
		}
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, name := range names {
		f := merged[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			if !s.hist {
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(s.labels), formatValue(s.value))
				continue
			}
			for i, cum := range s.buckets {
				le := "+Inf"
				if i < len(histBounds) {
					le = formatValue(histBounds[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, braced(withLE(s.labels, le)), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, braced(s.labels), formatValue(s.histSum))
			fmt.Fprintf(bw, "%s_count%s %d\n", f.name, braced(s.labels), s.histCount)
		}
	}
	return bw.Flush()
}

// braced wraps a non-empty label signature in { }.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// withLE appends the histogram bucket bound to a label signature.
func withLE(labels, le string) string {
	bound := `le="` + le + `"`
	if labels == "" {
		return bound
	}
	return labels + "," + bound
}

// formatValue renders a sample value: integers without a fractional part,
// everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// expoLineRE matches one exposition sample line: a metric name, an
// optional label set, and a value.
var expoLineRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// ValidateExposition checks text for well-formed Prometheus exposition:
// every non-comment line must be a sample with a parseable value, every
// sample must be preceded by a # TYPE line for its family, and no family
// may be typed twice. It is the checker behind `make smoke-multiproc`'s
// scrape assertion, and obs' own tests run Render output through it.
func ValidateExposition(text []byte) error {
	typed := make(map[string]string)
	sc := bufio.NewScanner(bytes.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if prev, dup := typed[name]; dup {
					return fmt.Errorf("line %d: metric %q typed twice (%s, %s)", lineNo, name, prev, typ)
				}
				typed[name] = typ
			}
			continue
		}
		if !expoLineRE.MatchString(line) {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		if !hasType(typed, name) {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE line", lineNo, name)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("line %d: unparseable value %q", lineNo, val)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("scanning exposition: %w", err)
	}
	return nil
}

// hasType reports whether name (or its histogram/summary base name) has a
// TYPE declaration.
func hasType(typed map[string]string, name string) bool {
	if _, ok := typed[name]; ok {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t := typed[base]; t == "histogram" || t == "summary" {
				return true
			}
		}
	}
	return false
}
