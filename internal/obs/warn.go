package obs

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Queue high-water warnings: the unbounded handoff queues (orderer
// fan-out, peer event listeners, wire call queues, History cursors) trade
// backpressure for isolation — a stuck consumer must not stall the
// producer — which means a stuck consumer grows memory silently. Push
// paths report their depth here; past the high-water mark one structured
// slog warning per (queue, label) is emitted per warnEvery, so a wedged
// consumer is named in the log without flooding it.

// warnEvery rate-limits repeated warnings for the same queue.
const warnEvery = 10 * time.Second

// DefaultQueueWarnDepth is the initial high-water mark.
const DefaultQueueWarnDepth = 4096

var queueWarnDepth atomic.Int64

func init() { queueWarnDepth.Store(DefaultQueueWarnDepth) }

// SetQueueWarnDepth sets the high-water mark above which WarnQueueDepth
// logs; zero or negative disables the warnings.
func SetQueueWarnDepth(n int) { queueWarnDepth.Store(int64(n)) }

// QueueWarnDepth returns the current high-water mark.
func QueueWarnDepth() int { return int(queueWarnDepth.Load()) }

var (
	warnMu   sync.Mutex
	warnLast map[string]time.Time
)

// WarnQueueDepth reports the current depth of an unbounded handoff queue.
// Below the high-water mark it is one atomic load and a compare — cheap
// enough for every push. Above it, it emits a rate-limited slog warning.
func WarnQueueDepth(queue, label string, depth int) {
	hw := queueWarnDepth.Load()
	if hw <= 0 || int64(depth) <= hw {
		return
	}
	key := queue + "\x00" + label
	now := time.Now()
	warnMu.Lock()
	if warnLast == nil {
		warnLast = make(map[string]time.Time)
	}
	last, seen := warnLast[key]
	if seen && now.Sub(last) < warnEvery {
		warnMu.Unlock()
		return
	}
	warnLast[key] = now
	warnMu.Unlock()
	slog.Warn("handoff queue over high-water mark",
		"queue", queue, "label", label, "depth", depth, "highWater", hw)
}
