package experiments

import (
	"fmt"
	"io"
)

// PaperSeries holds the numbers a figure of the original publication
// reports (read from the corrected arXiv:2310.15988 revision), so runs can
// be compared side by side with `fabriccrdt-bench -compare`.
type PaperSeries struct {
	// Labels are the x-axis points, matching the Figure rows.
	Labels []string
	// CRDTTput / FabricTput are successful-tx throughputs (tx/s).
	CRDTTput   []float64
	FabricTput []float64
	// CRDTLat / FabricLat are average successful-tx latencies (s).
	CRDTLat   []float64
	FabricLat []float64
	// CRDTSuccess / FabricSuccess are successful-tx counts.
	CRDTSuccess   []int
	FabricSuccess []int
}

// PaperData maps figure IDs to the published numbers.
var PaperData = map[string]PaperSeries{
	"fig3": {
		Labels:        []string{"25", "50", "100", "200", "300", "400", "600", "800", "1000"},
		CRDTTput:      []float64{267, 246, 217, 106, 58, 41.5, 20, 19, 20},
		FabricTput:    []float64{0.6, 0.7, 0.4, 0.9, 1.4, 1.4, 1.1, 1.5, 1.1},
		CRDTLat:       []float64{2.8, 4.8, 8.3, 34, 75, 111, 257, 265, 264},
		FabricLat:     []float64{3.4, 7.7, 3.1, 2.3, 1, 1, 1.5, 4.3, 1},
		CRDTSuccess:   []int{10000, 10000, 10000, 10000, 10000, 10000, 10000, 10000, 10000},
		FabricSuccess: []int{20, 21, 12, 30, 47, 49, 38, 9, 36},
	},
	"fig4": {
		Labels:        []string{"1-1", "3-1", "3-3", "5-1", "5-3", "5-5"},
		CRDTTput:      []float64{264, 205, 157, 189, 135, 106},
		FabricTput:    []float64{0.4, 0.3, 6.1, 2.2, 0.4, 0.3},
		CRDTLat:       []float64{2.7, 12, 20, 17, 32, 43},
		FabricLat:     []float64{5.3, 4, 7.1, 8.4, 14.3, 9.6},
		CRDTSuccess:   []int{10000, 10000, 10000, 10000, 10000, 10000},
		FabricSuccess: []int{11, 10, 6, 12, 15, 5},
	},
	"fig5": {
		Labels:        []string{"2-2", "3-3", "4-4", "5-5", "6-6"},
		CRDTTput:      []float64{219, 198, 152, 120, 100},
		FabricTput:    []float64{1.2, 0.2, 0.9, 0.5, 0.3},
		CRDTLat:       []float64{7, 10, 18, 28, 38},
		FabricLat:     []float64{2.2, 4.9, 1.8, 5, 3.6},
		CRDTSuccess:   []int{10000, 10000, 10000, 10000, 10000},
		FabricSuccess: []int{34, 8, 25, 9, 11},
	},
	"fig6": {
		Labels:        []string{"100", "200", "300", "400", "500"},
		CRDTTput:      []float64{100, 200, 241, 264, 250},
		FabricTput:    []float64{0.2, 1.1, 0.7, 0.2, 2.9},
		CRDTLat:       []float64{0.2, 0.3, 5.5, 7.8, 12},
		FabricLat:     []float64{6.2, 3.8, 3.1, 5.7, 7.9},
		CRDTSuccess:   []int{10000, 10000, 10000, 10000, 10000},
		FabricSuccess: []int{25, 34, 14, 6, 4},
	},
	"fig7": {
		Labels:        []string{"0%", "20%", "40%", "60%", "80%"},
		CRDTTput:      []float64{240, 240, 234, 240, 215},
		FabricTput:    []float64{222.6, 229.3, 160, 110.2, 52.4},
		CRDTLat:       []float64{6, 5.8, 6.2, 5.3, 10.3},
		FabricLat:     []float64{7.64, 2.26, 6.18, 4.49, 10.22},
		CRDTSuccess:   []int{10000, 10000, 10000, 10000, 10000},
		FabricSuccess: []int{10000, 8065, 5973, 4051, 2085},
	},
}

// PrintComparison renders a measured figure next to the paper's numbers.
func PrintComparison(w io.Writer, fig Figure) {
	paper, ok := PaperData[fig.ID]
	if !ok {
		Print(w, fig)
		return
	}
	fmt.Fprintf(w, "\n%s — %s (measured vs. paper)\n", fig.ID, fig.Title)
	fmt.Fprintf(w, "%-10s | %27s | %27s\n", "", "FabricCRDT (ours / paper)", "Fabric (ours / paper)")
	fmt.Fprintf(w, "%-10s | %13s %13s | %13s %13s\n", fig.XAxis, "tput tx/s", "avg lat s", "tput tx/s", "successes")
	for i, r := range fig.Rows {
		if i >= len(paper.Labels) || r.Label != paper.Labels[i] {
			// Row sets out of sync (custom sweep): fall back to plain print.
			Print(w, fig)
			return
		}
		fmt.Fprintf(w, "%-10s | %6.1f/%-6.1f %6.2f/%-6.2f | %6.1f/%-6.1f %6d/%-6d\n",
			r.Label,
			r.CRDT.Throughput, paper.CRDTTput[i],
			r.CRDT.AvgLatency.Seconds(), paper.CRDTLat[i],
			r.Fabric.Throughput, paper.FabricTput[i],
			r.Fabric.Successful, paper.FabricSuccess[i])
	}
}
