package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"fabriccrdt/internal/simnet"
)

// smokeOptions shrinks runs so the whole suite stays fast; shape assertions
// hold at this scale too.
func smokeOptions() Options {
	return Options{
		TotalTx:  600,
		Parallel: 8,
		Latency: &simnet.LatencyModel{
			Endorse:          5 * time.Millisecond,
			Ordering:         10 * time.Millisecond,
			CommitPerBlock:   10 * time.Millisecond,
			CommitPerTx:      200 * time.Microsecond,
			StateReadPerKey:  100 * time.Microsecond,
			StateWritePerKey: 200 * time.Microsecond,
			CPUScale:         10,
		},
	}
}

func TestBlockSizeShape(t *testing.T) {
	fig, err := BlockSize(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 9 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		if r.CRDT.Successful != 600 {
			t.Fatalf("FabricCRDT at %s committed %d/600", r.Label, r.CRDT.Successful)
		}
		if r.Fabric.Successful >= 600/2 {
			t.Fatalf("Fabric at %s committed %d — conflicts not biting", r.Label, r.Fabric.Successful)
		}
		if r.CRDT.Throughput <= r.Fabric.Throughput {
			t.Fatalf("at %s: CRDT %.1f <= Fabric %.1f (winner flipped)",
				r.Label, r.CRDT.Throughput, r.Fabric.Throughput)
		}
	}
	// Monotone-ish decline: first row beats last row clearly.
	first, last := fig.Rows[0].CRDT.Throughput, fig.Rows[len(fig.Rows)-1].CRDT.Throughput
	if first <= last {
		t.Fatalf("no decline: %.1f -> %.1f", first, last)
	}
}

func TestReadWriteKeysShape(t *testing.T) {
	fig, err := ReadWriteKeys(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 6 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// 1-1 must beat 5-5 for FabricCRDT (more merging work per tx).
	if fig.Rows[0].CRDT.Throughput <= fig.Rows[5].CRDT.Throughput {
		t.Fatalf("rw-set growth did not reduce throughput: %.1f vs %.1f",
			fig.Rows[0].CRDT.Throughput, fig.Rows[5].CRDT.Throughput)
	}
	for _, r := range fig.Rows {
		if r.CRDT.Successful != 600 {
			t.Fatalf("FabricCRDT at %s committed %d/600", r.Label, r.CRDT.Successful)
		}
	}
}

func TestConflictPctShape(t *testing.T) {
	fig, err := ConflictPct(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fig.Rows {
		if r.CRDT.Successful != 600 {
			t.Fatalf("FabricCRDT at %s committed %d/600", r.Label, r.CRDT.Successful)
		}
	}
	// Fabric successes decline as conflict percentage rises.
	prev := fig.Rows[0].Fabric.Successful
	if prev != 600 {
		t.Fatalf("Fabric at 0%% conflicts committed %d/600", prev)
	}
	last := fig.Rows[len(fig.Rows)-1].Fabric.Successful
	if last >= prev {
		t.Fatalf("Fabric successes did not decline: %d -> %d", prev, last)
	}
}

func TestArrivalRateShape(t *testing.T) {
	opts := smokeOptions()
	fig, err := ArrivalRate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 5 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, r := range fig.Rows {
		if r.CRDT.Successful != opts.TotalTx {
			t.Fatalf("FabricCRDT at rate %s committed %d", r.Label, r.CRDT.Successful)
		}
	}
	// Throughput grows from rate 100 to 200 (unsaturated region).
	if fig.Rows[1].CRDT.Throughput <= fig.Rows[0].CRDT.Throughput {
		t.Fatalf("throughput flat in unsaturated region: %.1f vs %.1f",
			fig.Rows[0].CRDT.Throughput, fig.Rows[1].CRDT.Throughput)
	}
}

func TestComplexityShape(t *testing.T) {
	fig, err := Complexity(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fig.Rows[0].CRDT.Throughput <= fig.Rows[len(fig.Rows)-1].CRDT.Throughput {
		t.Fatalf("complexity growth did not reduce throughput: %.1f vs %.1f",
			fig.Rows[0].CRDT.Throughput, fig.Rows[len(fig.Rows)-1].CRDT.Throughput)
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "blocksize", "rwkeys", "complexity", "arrival", "conflict", "FIG3"} {
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%q): %v", id, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestPrintRendersAllSections(t *testing.T) {
	fig := Figure{ID: "figX", Title: "test", XAxis: "x", Rows: []Row{{Label: "a"}}}
	var buf bytes.Buffer
	Print(&buf, fig)
	out := buf.String()
	for _, frag := range []string{"FIGX", "(a) successful transactions throughput", "(b) average latency", "(c) number of successful", "FabricCRDT", "Fabric"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestProgressWriter(t *testing.T) {
	opts := smokeOptions()
	opts.TotalTx = 200
	var buf bytes.Buffer
	opts.Progress = &buf
	if _, err := ConflictPct(opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FabricCRDT") {
		t.Fatal("no progress lines written")
	}
}

func TestPrintComparisonRendersPaperNumbers(t *testing.T) {
	opts := smokeOptions()
	opts.TotalTx = 200
	fig, err := ConflictPct(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintComparison(&buf, fig)
	out := buf.String()
	for _, frag := range []string{"measured vs. paper", "0%", "80%", "/"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("comparison output missing %q:\n%s", frag, out)
		}
	}
	// Unknown figure IDs fall back to the plain printer.
	buf.Reset()
	PrintComparison(&buf, Figure{ID: "custom", Title: "t", XAxis: "x", Rows: []Row{{Label: "a"}}})
	if !strings.Contains(buf.String(), "(a) successful transactions throughput") {
		t.Fatal("fallback print missing")
	}
	// Mismatched sweep labels also fall back.
	buf.Reset()
	PrintComparison(&buf, Figure{ID: "fig3", Title: "t", XAxis: "x", Rows: []Row{{Label: "999"}}})
	if !strings.Contains(buf.String(), "(a) successful transactions throughput") {
		t.Fatal("label-mismatch fallback missing")
	}
}

func TestPaperDataComplete(t *testing.T) {
	for id, series := range PaperData {
		n := len(series.Labels)
		if n == 0 {
			t.Fatalf("%s: empty labels", id)
		}
		for name, l := range map[string]int{
			"CRDTTput": len(series.CRDTTput), "FabricTput": len(series.FabricTput),
			"CRDTLat": len(series.CRDTLat), "FabricLat": len(series.FabricLat),
			"CRDTSuccess": len(series.CRDTSuccess), "FabricSuccess": len(series.FabricSuccess),
		} {
			if l != n {
				t.Errorf("%s: %s has %d entries, want %d", id, name, l, n)
			}
		}
	}
}
