// Package experiments defines one runnable experiment per figure of the
// paper's evaluation (§7, Figures 3–7), each sweeping the same parameter the
// paper sweeps with everything else pinned to the configuration tables
// (Tables 1–5), and prints the three sub-figure metrics: successful-tx
// throughput, average latency of successful txs, and successful-tx count.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"fabriccrdt/internal/core"
	"fabriccrdt/internal/metrics"
	"fabriccrdt/internal/simnet"
	"fabriccrdt/internal/workload"
)

// The paper's fixed comparison configuration after the block-size sweep
// (§7.3): "we fix the block size to 25 transactions/block for FabricCRDT,
// and to 400 transactions/block for Fabric".
const (
	CRDTBlockSize   = 25
	FabricBlockSize = 400
	// PaperRate is the default submission rate (Tables 1–3, 5).
	PaperRate = 300
	// PaperTotalTx is the per-experiment transaction count (§7.2).
	PaperTotalTx = 10000
)

// Options control an experiment run.
type Options struct {
	// TotalTx scales the workload; 0 means the paper's 10,000.
	TotalTx int
	// Parallel bounds concurrent cells; 0 means 4.
	Parallel int
	// Progress receives per-cell completion lines when non-nil.
	Progress io.Writer
	// Latency overrides the calibrated model when non-nil.
	Latency *simnet.LatencyModel
}

func (o Options) withDefaults() Options {
	if o.TotalTx <= 0 {
		o.TotalTx = PaperTotalTx
	}
	if o.Parallel <= 0 {
		o.Parallel = 4
	}
	return o
}

// Row is one x-axis point of a figure: both systems' summaries.
type Row struct {
	Label  string
	CRDT   metrics.Summary
	Fabric metrics.Summary
}

// Figure is a complete reproduced figure.
type Figure struct {
	ID    string
	Title string
	XAxis string
	Rows  []Row
}

// cell describes one simulation to run.
type cell struct {
	row    int
	isCRDT bool
	cfg    simnet.Config
}

// runCells executes cells with bounded parallelism and fills rows.
func runCells(opts Options, rows []Row, cells []cell) error {
	sem := make(chan struct{}, opts.Parallel)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, c := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(c cell) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := simnet.Run(c.cfg)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if c.isCRDT {
				rows[c.row].CRDT = res.Summary
			} else {
				rows[c.row].Fabric = res.Summary
			}
			if opts.Progress != nil {
				system := "Fabric    "
				if c.isCRDT {
					system = "FabricCRDT"
				}
				fmt.Fprintf(opts.Progress, "  %s %-14s %s (wall %v)\n",
					system, rows[c.row].Label, res.Summary, res.Wall.Round(time.Millisecond))
			}
		}(c)
	}
	wg.Wait()
	return firstErr
}

// baseConfig returns the shared simulation configuration. The merge engine
// runs in the paper-literal fresh-document-per-block mode (Algorithm 1's
// InitEmptyCRDT), which is what gives Figure 3 its block-size-dependent
// merge cost; the Seeding ablation flips this.
func baseConfig(opts Options, mode simnet.Mode, blockSize int, rate float64, wl workload.IoTParams) simnet.Config {
	return simnet.Config{
		Mode:      mode,
		BlockSize: blockSize,
		Rate:      rate,
		TotalTx:   opts.TotalTx,
		Workload:  wl,
		Latency:   opts.Latency,
		Engine:    core.Options{FreshDocPerBlock: true},
	}
}

// BlockSize reproduces Figure 3: both systems swept over the maximum number
// of transactions per block, all transactions conflicting (Table 1).
func BlockSize(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	sizes := []int{25, 50, 100, 200, 300, 400, 600, 800, 1000}
	wl := workload.IoTParams{ReadKeys: 1, WriteKeys: 1, JSONKeys: 2, ConflictPct: 100}
	fig := Figure{
		ID:    "fig3",
		Title: "Effect of block size (Figure 3; Table 1: 300 tx/s, 1 read + 1 write key, 2-key JSON, 100% conflicting)",
		XAxis: "max transactions per block",
		Rows:  make([]Row, len(sizes)),
	}
	var cells []cell
	for i, size := range sizes {
		fig.Rows[i].Label = fmt.Sprintf("%d", size)
		cells = append(cells,
			cell{row: i, isCRDT: true, cfg: baseConfig(opts, simnet.ModeFabricCRDT, size, PaperRate, wl)},
			cell{row: i, isCRDT: false, cfg: baseConfig(opts, simnet.ModeFabric, size, PaperRate, wl)},
		)
	}
	return fig, runCells(opts, fig.Rows, cells)
}

// ReadWriteKeys reproduces Figure 4: the read/write-set size sweep
// (Table 2), FabricCRDT at 25 txs/block vs Fabric at 400.
func ReadWriteKeys(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	points := []struct{ r, w int }{{1, 1}, {3, 1}, {3, 3}, {5, 1}, {5, 3}, {5, 5}}
	fig := Figure{
		ID:    "fig4",
		Title: "Effect of read/write-set size (Figure 4; Table 2: 300 tx/s, 2-key JSON, 100% conflicting)",
		XAxis: "read keys — write keys",
		Rows:  make([]Row, len(points)),
	}
	var cells []cell
	for i, p := range points {
		fig.Rows[i].Label = fmt.Sprintf("%d-%d", p.r, p.w)
		wl := workload.IoTParams{ReadKeys: p.r, WriteKeys: p.w, JSONKeys: 2, ConflictPct: 100}
		cells = append(cells,
			cell{row: i, isCRDT: true, cfg: baseConfig(opts, simnet.ModeFabricCRDT, CRDTBlockSize, PaperRate, wl)},
			cell{row: i, isCRDT: false, cfg: baseConfig(opts, simnet.ModeFabric, FabricBlockSize, PaperRate, wl)},
		)
	}
	return fig, runCells(opts, fig.Rows, cells)
}

// Complexity reproduces Figure 5: JSON object complexity (keys × nesting
// depth, Table 3 and Listing 4), 1 read + 1 write key.
func Complexity(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	points := []int{2, 3, 4, 5, 6} // k-k complexity
	fig := Figure{
		ID:    "fig5",
		Title: "Effect of JSON complexity (Figure 5; Table 3: 300 tx/s, 1 read + 1 write key, 100% conflicting)",
		XAxis: "JSON keys — nesting depth",
		Rows:  make([]Row, len(points)),
	}
	var cells []cell
	for i, k := range points {
		fig.Rows[i].Label = fmt.Sprintf("%d-%d", k, k)
		wl := workload.IoTParams{ReadKeys: 1, WriteKeys: 1, JSONKeys: k, NestingDepth: k, ConflictPct: 100}
		cells = append(cells,
			cell{row: i, isCRDT: true, cfg: baseConfig(opts, simnet.ModeFabricCRDT, CRDTBlockSize, PaperRate, wl)},
			cell{row: i, isCRDT: false, cfg: baseConfig(opts, simnet.ModeFabric, FabricBlockSize, PaperRate, wl)},
		)
	}
	return fig, runCells(opts, fig.Rows, cells)
}

// ArrivalRate reproduces Figure 6: the transaction arrival-rate sweep
// (Table 4).
func ArrivalRate(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	rates := []float64{100, 200, 300, 400, 500}
	wl := workload.IoTParams{ReadKeys: 1, WriteKeys: 1, JSONKeys: 2, ConflictPct: 100}
	fig := Figure{
		ID:    "fig6",
		Title: "Effect of arrival rate (Figure 6; Table 4: 1 read + 1 write key, 2-key JSON, 100% conflicting)",
		XAxis: "transaction arrival rate (tx/s)",
		Rows:  make([]Row, len(rates)),
	}
	var cells []cell
	for i, rate := range rates {
		fig.Rows[i].Label = fmt.Sprintf("%.0f", rate)
		cells = append(cells,
			cell{row: i, isCRDT: true, cfg: baseConfig(opts, simnet.ModeFabricCRDT, CRDTBlockSize, rate, wl)},
			cell{row: i, isCRDT: false, cfg: baseConfig(opts, simnet.ModeFabric, FabricBlockSize, rate, wl)},
		)
	}
	return fig, runCells(opts, fig.Rows, cells)
}

// ConflictPct reproduces Figure 7: the percentage of conflicting
// transactions in the workload (Table 5).
func ConflictPct(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	pcts := []int{0, 20, 40, 60, 80}
	fig := Figure{
		ID:    "fig7",
		Title: "Effect of conflicting-transaction percentage (Figure 7; Table 5: 300 tx/s, 1 read + 1 write key, 2-key JSON)",
		XAxis: "% conflicting transactions",
		Rows:  make([]Row, len(pcts)),
	}
	var cells []cell
	for i, pct := range pcts {
		fig.Rows[i].Label = fmt.Sprintf("%d%%", pct)
		wl := workload.IoTParams{ReadKeys: 1, WriteKeys: 1, JSONKeys: 2, ConflictPct: pct, Seed: 42}
		cells = append(cells,
			cell{row: i, isCRDT: true, cfg: baseConfig(opts, simnet.ModeFabricCRDT, CRDTBlockSize, PaperRate, wl)},
			cell{row: i, isCRDT: false, cfg: baseConfig(opts, simnet.ModeFabric, FabricBlockSize, PaperRate, wl)},
		)
	}
	return fig, runCells(opts, fig.Rows, cells)
}

// All runs every figure in order.
func All(opts Options) ([]Figure, error) {
	runners := []func(Options) (Figure, error){
		BlockSize, ReadWriteKeys, Complexity, ArrivalRate, ConflictPct,
	}
	figs := make([]Figure, 0, len(runners))
	for _, run := range runners {
		fig, err := run(opts)
		if err != nil {
			return nil, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// ByID returns the named experiment runner.
func ByID(id string) (func(Options) (Figure, error), error) {
	switch strings.ToLower(id) {
	case "fig3", "blocksize":
		return BlockSize, nil
	case "fig4", "rwkeys":
		return ReadWriteKeys, nil
	case "fig5", "complexity":
		return Complexity, nil
	case "fig6", "arrival":
		return ArrivalRate, nil
	case "fig7", "conflict":
		return ConflictPct, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (want fig3..fig7 or blocksize/rwkeys/complexity/arrival/conflict)", id)
	}
}

// Print renders a figure as the paper's three sub-tables.
func Print(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "\n%s — %s\n", strings.ToUpper(fig.ID), fig.Title)
	line := strings.Repeat("-", 74)
	fmt.Fprintln(w, line)
	fmt.Fprintf(w, "(a) successful transactions throughput (tx/s) by %s\n", fig.XAxis)
	fmt.Fprintf(w, "%-16s %14s %14s\n", fig.XAxis, "FabricCRDT", "Fabric")
	for _, r := range fig.Rows {
		fmt.Fprintf(w, "%-16s %14.1f %14.1f\n", r.Label, r.CRDT.Throughput, r.Fabric.Throughput)
	}
	fmt.Fprintln(w, line)
	fmt.Fprintln(w, "(b) average latency of successful transactions (s)")
	fmt.Fprintf(w, "%-16s %14s %14s\n", fig.XAxis, "FabricCRDT", "Fabric")
	for _, r := range fig.Rows {
		fmt.Fprintf(w, "%-16s %14.2f %14.2f\n", r.Label, r.CRDT.AvgLatency.Seconds(), r.Fabric.AvgLatency.Seconds())
	}
	fmt.Fprintln(w, line)
	fmt.Fprintln(w, "(c) number of successful transactions")
	fmt.Fprintf(w, "%-16s %14s %14s\n", fig.XAxis, "FabricCRDT", "Fabric")
	for _, r := range fig.Rows {
		fmt.Fprintf(w, "%-16s %14d %14d\n", r.Label, r.CRDT.Successful, r.Fabric.Successful)
	}
	fmt.Fprintln(w, line)
}
