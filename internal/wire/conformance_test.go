package wire_test

import (
	"testing"

	"fabriccrdt/internal/transport"
	"fabriccrdt/internal/transport/conformance"
	"fabriccrdt/internal/wire"
)

// TestWireConformance runs the full transport contract — same suite as the
// in-process transport — across a real loopback TCP connection: every
// block, proposal and envelope is framed, checksummed and sequence-checked
// on the way through.
func TestWireConformance(t *testing.T) {
	conformance.Run(t, func(t testing.TB, node *transport.Node) transport.Transport {
		srv := wire.NewServer(node, node.NodeInfo)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c, err := wire.Dial(addr.String(), wire.ClientConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	})
}
