// Package wire is the framed-TCP implementation of transport.Transport: the
// four FabricCRDT streams (Deliver, Broadcast, Endorse, Submit) multiplexed
// over one TCP connection as length-prefixed, CRC-checked, version-tagged
// JSON frames — the same framing discipline as the durable block store
// (internal/blockstore), lifted onto a socket. Serve exposes a
// transport.Transport (usually a *transport.Node) on a listener; Dial
// returns a client Transport that lazily connects, multiplexes concurrent
// calls by stream id, verifies per-stream sequence numbers, and reports
// every medium failure as a retryable transport.Error so deliver loops
// reconnect with backoff instead of wedging.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the wire protocol version carried by every frame. A receiver
// rejects any other value — no negotiation, both ends of a deployment ship
// together.
const Version = 1

// Frame layout, mirroring the block store's record discipline:
//
//	[4B LE frame length][4B LE CRC-32C][1B version][1B type][8B LE stream][8B LE seq][body]
//
// The frame length counts everything after the CRC (version byte through
// body); the CRC-32C (Castagnoli) covers those same bytes. The 18 fixed
// bytes after the CRC are the frame header; the body is frame-type-specific
// JSON.
const (
	// prefixLen is the length prefix + checksum preceding every frame.
	prefixLen = 8
	// headerLen is the fixed header covered by the length and CRC.
	headerLen = 1 + 1 + 8 + 8
	// MaxFrameBytes caps a frame's declared length BEFORE any allocation —
	// a corrupt or hostile length prefix must not balloon memory. 64 MiB
	// comfortably clears any block the cutter produces.
	MaxFrameBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameType discriminates the multiplexed traffic on a connection.
type frameType uint8

const (
	// ftHello is sent by the server immediately after accept; its body is
	// the endpoint's transport.Info.
	ftHello frameType = iota + 1
	// ftOpenDeliver opens a block stream (body: deliverOpen). The server
	// answers with ftMsg frames carrying blocks, seq 1,2,3,… then ftEnd on
	// clean shutdown or ftErr on failure.
	ftOpenDeliver
	// ftBroadcast, ftEndorse and ftSubmit are unary requests (bodies: the
	// transaction, proposal, transaction); the server answers each with a
	// single ftMsg (the result) or ftErr on the same stream id.
	ftBroadcast
	ftEndorse
	ftSubmit
	// ftMsg carries a response or stream element.
	ftMsg
	// ftEnd closes a deliver stream cleanly (io.EOF to the consumer).
	ftEnd
	// ftErr fails a stream or request (body: wireError).
	ftErr
	// ftCancel asks the server to tear down a deliver stream (no body).
	ftCancel
)

// frame is one decoded frame.
type frame struct {
	Type   frameType
	Stream uint64
	Seq    uint64
	Body   []byte
}

// deliverOpen is the ftOpenDeliver body.
type deliverOpen struct {
	Channel string `json:"channel"`
	From    uint64 `json:"from"`
}

// wireError is the ftErr body: a transport failure serialized across the
// socket, preserving the retryable/fatal distinction.
type wireError struct {
	Op        string `json:"op"`
	Retryable bool   `json:"retryable"`
	Msg       string `json:"msg"`
}

// writeFrame encodes and writes one frame. Callers serialize writes per
// connection (a torn interleaved frame is unrecoverable for the reader).
func writeFrame(w io.Writer, f frame) error {
	n := headerLen + len(f.Body)
	if n > MaxFrameBytes {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	buf := make([]byte, prefixLen+n)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	buf[8] = Version
	buf[9] = byte(f.Type)
	binary.LittleEndian.PutUint64(buf[10:18], f.Stream)
	binary.LittleEndian.PutUint64(buf[18:26], f.Seq)
	copy(buf[26:], f.Body)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[8:], crcTable))
	_, err := w.Write(buf)
	return err
}

// readFrame reads and verifies one frame. Any malformed input — truncation,
// a length prefix beyond MaxFrameBytes or below the header size, a checksum
// mismatch, a version mismatch — returns an error; readFrame never panics
// and never allocates more than the declared (capped) length. The fuzz
// harness (frame_fuzz_test.go) holds it to that.
func readFrame(r io.Reader) (frame, error) {
	var prefix [prefixLen]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return frame{}, err // io.EOF at a frame boundary = clean close
	}
	n := binary.LittleEndian.Uint32(prefix[0:4])
	if n > MaxFrameBytes {
		return frame{}, fmt.Errorf("wire: frame length %d exceeds limit %d", n, MaxFrameBytes)
	}
	if n < headerLen {
		return frame{}, fmt.Errorf("wire: frame length %d below header size %d", n, headerLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, fmt.Errorf("wire: truncated frame: %w", err)
	}
	if got, want := crc32.Checksum(buf, crcTable), binary.LittleEndian.Uint32(prefix[4:8]); got != want {
		return frame{}, fmt.Errorf("wire: frame checksum mismatch: computed %08x, recorded %08x", got, want)
	}
	if buf[0] != Version {
		return frame{}, fmt.Errorf("wire: protocol version %d, want %d", buf[0], Version)
	}
	return frame{
		Type:   frameType(buf[1]),
		Stream: binary.LittleEndian.Uint64(buf[2:10]),
		Seq:    binary.LittleEndian.Uint64(buf[10:18]),
		Body:   buf[18:],
	}, nil
}

// marshalBody JSON-encodes a frame body, failing loudly rather than
// shipping a half-built frame.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: encoding %T: %w", v, err)
	}
	return b, nil
}

// unmarshalBody decodes a frame body.
func unmarshalBody(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("wire: decoding %T: %w", v, err)
	}
	return nil
}
