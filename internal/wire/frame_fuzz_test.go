package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// validFrameBytes encodes one well-formed frame for seeding.
func validFrameBytes(t frameType, stream, seq uint64, body []byte) []byte {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{Type: t, Stream: stream, Seq: seq, Body: body}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame holds the decoder to its contract on arbitrary input:
// error, never panic, never allocate beyond the declared (capped) length.
// The seed corpus (testdata/fuzz/FuzzReadFrame plus the f.Add cases below)
// covers every rejection path: truncation at each boundary, checksum
// mismatch, version mismatch, and length prefixes below the header size or
// beyond MaxFrameBytes.
func FuzzReadFrame(f *testing.F) {
	valid := validFrameBytes(ftMsg, 3, 7, []byte(`{"header":{"number":4}}`))
	f.Add(valid)
	f.Add(valid[:3])                           // truncated inside the length prefix
	f.Add(valid[:prefixLen])                   // truncated before the header
	f.Add(valid[:prefixLen+5])                 // truncated inside the header
	f.Add(valid[:len(valid)-1])                // truncated inside the body
	f.Add([]byte{})                            // empty input
	f.Add(validFrameBytes(ftHello, 0, 0, nil)) // empty body

	badCRC := append([]byte(nil), valid...)
	badCRC[6] ^= 0xFF
	f.Add(badCRC)

	badVersion := append([]byte(nil), valid...)
	badVersion[prefixLen] = 0x7F
	binary.LittleEndian.PutUint32(badVersion[4:8], crc32.Checksum(badVersion[prefixLen:], crcTable))
	f.Add(badVersion)

	oversized := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(oversized[0:4], MaxFrameBytes+1)
	f.Add(oversized)

	undersized := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(undersized[0:4], headerLen-1)
	f.Add(undersized)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode to the identical wire bytes — the
		// codec is bijective on valid frames.
		var buf bytes.Buffer
		if werr := writeFrame(&buf, got); werr != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", werr)
		}
		consumed := prefixLen + headerLen + len(got.Body)
		if !bytes.Equal(buf.Bytes(), data[:consumed]) {
			t.Fatalf("decode/encode round trip diverged:\n in: %x\nout: %x", data[:consumed], buf.Bytes())
		}
	})
}

// TestReadFrameRejections pins each rejection path deterministically (the
// fuzz corpus exercises them too, but these run on every plain `go test`).
func TestReadFrameRejections(t *testing.T) {
	valid := validFrameBytes(ftMsg, 1, 1, []byte(`{}`))

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"TruncatedPrefix", func(b []byte) []byte { return b[:5] }},
		{"TruncatedHeader", func(b []byte) []byte { return b[:prefixLen+3] }},
		{"TruncatedBody", func(b []byte) []byte { return b[:len(b)-1] }},
		{"BadChecksum", func(b []byte) []byte { b[prefixLen] ^= 0x01; return b }},
		{"BadVersion", func(b []byte) []byte {
			b[prefixLen] = 99
			binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(b[prefixLen:], crcTable))
			return b
		}},
		{"OversizedLength", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[0:4], MaxFrameBytes+1)
			return b
		}},
		{"UndersizedLength", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[0:4], headerLen-1)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), valid...))
			if _, err := readFrame(bytes.NewReader(data)); err == nil {
				t.Fatal("corrupt frame decoded")
			}
		})
	}

	// Clean EOF at a frame boundary is NOT an error wrapped as corruption —
	// it's how a closed connection reads.
	if _, err := readFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty reader: got %v, want io.EOF", err)
	}

	// And the valid frame itself decodes.
	got, err := readFrame(bytes.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != ftMsg || got.Stream != 1 || got.Seq != 1 || string(got.Body) != `{}` {
		t.Fatalf("valid frame mangled: %+v", got)
	}
}
