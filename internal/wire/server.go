package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/peer"
	"fabriccrdt/internal/transport"
)

// Server exposes a transport.Transport (usually a *transport.Node) on a TCP
// listener. Each accepted connection is greeted with a Hello frame carrying
// the endpoint's Info, then serves multiplexed streams: deliver sessions
// stream blocks with per-stream sequence numbers; unary requests (broadcast,
// endorse, submit) each get one response frame. Every handler runs in its
// own goroutine, writes serialized per connection — one slow stream applies
// TCP backpressure to its connection only, never to the transport behind
// the server (whose History cursors absorb lag without queues).
type Server struct {
	tr   transport.Transport
	info transport.Info
	// WriteTimeout bounds each frame write (default 10s): a peer that
	// stops reading eventually sheds its connection instead of pinning
	// server goroutines forever.
	WriteTimeout time.Duration

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps tr for serving. Info is handed to every connecting client.
func NewServer(tr transport.Transport, info transport.Info) *Server {
	return &Server{tr: tr, info: info, WriteTimeout: 10 * time.Second, conns: make(map[net.Conn]struct{})}
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address. Serving proceeds in the background until Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return nil, transport.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(lis)
	}()
	return lis.Addr(), nil
}

func (s *Server) acceptLoop(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener and severs every connection; in-flight handlers
// drain. The wrapped transport belongs to the caller and is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// serverConn is the per-connection state: the write lock serializing frames
// and the open deliver sessions (for ftCancel and teardown).
type serverConn struct {
	srv  *Server
	conn net.Conn

	writeMu sync.Mutex
	mu      sync.Mutex
	streams map[uint64]transport.BlockStream
}

func (s *Server) serveConn(conn net.Conn) {
	sc := &serverConn{srv: s, conn: conn, streams: make(map[uint64]transport.BlockStream)}
	var handlers sync.WaitGroup
	// Teardown order matters (defers run LIFO): first sever the connection
	// and close every deliver session — handlers may be blocked in a stream
	// Recv or a conn write — THEN wait for them to drain.
	defer handlers.Wait()
	defer func() {
		conn.Close()
		sc.mu.Lock()
		for _, st := range sc.streams {
			st.Close()
		}
		sc.mu.Unlock()
	}()
	hello, err := marshalBody(s.info)
	if err != nil {
		return
	}
	if sc.write(frame{Type: ftHello, Body: hello}) != nil {
		return
	}
	for {
		f, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				frameErrsServer.Inc()
			}
			return // disconnect or garbage: drop the connection
		}
		framesServerIn.Inc()
		bytesServerIn.Add(frameBytes(f))
		switch f.Type {
		case ftOpenDeliver:
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				sc.handleDeliver(f)
			}()
		case ftCancel:
			sc.mu.Lock()
			st, ok := sc.streams[f.Stream]
			delete(sc.streams, f.Stream)
			sc.mu.Unlock()
			if ok {
				st.Close()
			}
		case ftBroadcast, ftEndorse, ftSubmit:
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				sc.handleUnary(f)
			}()
		default:
			// Unknown frame type: protocol violation, drop the connection.
			return
		}
	}
}

// write sends one frame under the connection write lock and deadline.
func (sc *serverConn) write(f frame) error {
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	if t := sc.srv.WriteTimeout; t > 0 {
		sc.conn.SetWriteDeadline(time.Now().Add(t))
	}
	if err := writeFrame(sc.conn, f); err != nil {
		frameErrsServer.Inc()
		return err
	}
	framesServerOut.Inc()
	bytesServerOut.Add(frameBytes(f))
	return nil
}

// writeErr fails a stream, preserving the retryable/fatal split across the
// socket.
func (sc *serverConn) writeErr(stream uint64, op string, err error) {
	we := wireError{Op: op, Retryable: transport.Retryable(err), Msg: err.Error()}
	body, merr := marshalBody(we)
	if merr != nil {
		return
	}
	sc.write(frame{Type: ftErr, Stream: stream, Body: body})
}

// handleDeliver opens the block stream and pumps it to the client, stamping
// seq 1,2,3,… — the client verifies contiguity.
func (sc *serverConn) handleDeliver(f frame) {
	var open deliverOpen
	if err := unmarshalBody(f.Body, &open); err != nil {
		sc.writeErr(f.Stream, "deliver", err)
		return
	}
	st, err := sc.srv.tr.Deliver(open.Channel, open.From)
	if err != nil {
		sc.writeErr(f.Stream, "deliver", err)
		return
	}
	sc.mu.Lock()
	sc.streams[f.Stream] = st
	sc.mu.Unlock()
	defer func() {
		sc.mu.Lock()
		delete(sc.streams, f.Stream)
		sc.mu.Unlock()
		st.Close()
	}()
	var seq uint64
	for {
		b, err := st.Recv()
		if err != nil {
			if errors.Is(err, io.EOF) {
				sc.write(frame{Type: ftEnd, Stream: f.Stream})
			} else {
				sc.writeErr(f.Stream, "deliver", err)
			}
			return
		}
		body, err := b.Marshal()
		if err != nil {
			sc.writeErr(f.Stream, "deliver", err)
			return
		}
		seq++
		if sc.write(frame{Type: ftMsg, Stream: f.Stream, Seq: seq, Body: body}) != nil {
			return // connection gone; teardown closes the stream
		}
	}
}

// handleUnary dispatches one request frame and writes its single response.
func (sc *serverConn) handleUnary(f frame) {
	var (
		body []byte
		err  error
		op   string
	)
	switch f.Type {
	case ftBroadcast:
		op = "broadcast"
		var tx *ledger.Transaction
		if tx, err = ledger.UnmarshalTransaction(f.Body); err == nil {
			err = sc.srv.tr.Broadcast(tx)
		}
	case ftEndorse:
		op = "endorse"
		var prop peer.Proposal
		if err = unmarshalBody(f.Body, &prop); err == nil {
			var resp peer.ProposalResponse
			if resp, err = sc.srv.tr.Endorse(prop); err == nil {
				body, err = marshalBody(resp)
			}
		}
	case ftSubmit:
		op = "submit"
		var tx *ledger.Transaction
		if tx, err = ledger.UnmarshalTransaction(f.Body); err == nil {
			var ev peer.CommitEvent
			if ev, err = sc.srv.tr.Submit(tx); err == nil {
				body, err = marshalBody(ev)
			}
		}
	}
	if err != nil {
		sc.writeErr(f.Stream, op, err)
		return
	}
	sc.write(frame{Type: ftMsg, Stream: f.Stream, Seq: 1, Body: body})
}
