package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/obs"
	"fabriccrdt/internal/peer"
	"fabriccrdt/internal/transport"
)

// ClientConfig tunes a wire client's connection handling.
type ClientConfig struct {
	// DialTimeout bounds each dial attempt (default 3s).
	DialTimeout time.Duration
	// DialRetries is how many times a lazy reconnect re-dials, with
	// exponential backoff from DialBackoff, before the call fails
	// retryable (default 3 retries from 25ms).
	DialRetries int
	DialBackoff time.Duration
	// CallTimeout bounds each unary request (default 30s).
	CallTimeout time.Duration
	// WriteTimeout bounds each frame write (default 10s).
	WriteTimeout time.Duration
}

func (c *ClientConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.DialRetries <= 0 {
		c.DialRetries = 3
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = 25 * time.Millisecond
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
}

// Client is the dialing side of the wire transport: one TCP connection per
// endpoint, all four streams multiplexed over it by client-assigned stream
// ids. When the connection dies, every in-flight call and stream fails with
// a RETRYABLE transport.Error, and the next call re-dials with exponential
// backoff — the deliver loop's reconnect discipline composes on top. Client
// implements transport.Transport.
type Client struct {
	addr string
	cfg  ClientConfig

	mu      sync.Mutex
	conn    net.Conn             // nil when disconnected
	writeMu *sync.Mutex          // per-connection write lock
	calls   map[uint64]*wireCall // in-flight, routed by the read loop
	nextID  uint64
	info    transport.Info
	closed  bool
	// everConnected distinguishes a reconnect from the first dial in the
	// reconnect counter.
	everConnected bool
}

// wireCall is one in-flight request or open stream: the read loop pushes
// frames, the caller pops them. The queue is unbounded so a slow deliver
// consumer never stalls the read loop (and with it every other stream on
// the connection) — lag costs this client memory, nothing else.
type wireCall struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []frame
	err    error // terminal: connection torn down
	closed bool
}

func newWireCall() *wireCall {
	c := &wireCall{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (w *wireCall) push(f frame) {
	w.mu.Lock()
	w.queue = append(w.queue, f)
	depth := len(w.queue)
	w.cond.Broadcast()
	w.mu.Unlock()
	obs.WarnQueueDepth("wire_call", "", depth)
}

func (w *wireCall) fail(err error) {
	w.mu.Lock()
	w.err = err
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *wireCall) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

// pop waits for the next frame. A deadline of zero waits forever.
func (w *wireCall) pop(deadline time.Time) (frame, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var timer *time.Timer
	if !deadline.IsZero() {
		timer = time.AfterFunc(time.Until(deadline), w.cond.Broadcast)
		defer timer.Stop()
	}
	for {
		if len(w.queue) > 0 {
			f := w.queue[0]
			w.queue = w.queue[1:]
			return f, nil
		}
		if w.closed {
			return frame{}, transport.ErrClosed
		}
		if w.err != nil {
			return frame{}, w.err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return frame{}, transport.Errorf("call", false, "wire: call timed out")
		}
		w.cond.Wait()
	}
}

// Dial connects to a wire server and reads its Hello. The returned client
// lazily reconnects after failures.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := &Client{addr: addr, cfg: cfg, calls: make(map[uint64]*wireCall)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	trackClient(c)
	return c, nil
}

// Info returns the server's handshake metadata (name, MSP id, channels).
func (c *Client) Info() transport.Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.info
}

// connectLocked dials once and completes the Hello handshake. c.mu held.
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return transport.Errorf("dial", true, "wire: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(c.cfg.DialTimeout))
	hello, err := readFrame(conn)
	if err != nil || hello.Type != ftHello {
		conn.Close()
		return transport.Errorf("dial", true, "wire: bad hello from %s: %v", c.addr, err)
	}
	var info transport.Info
	if err := unmarshalBody(hello.Body, &info); err != nil {
		conn.Close()
		return transport.Errorf("dial", true, "wire: bad hello body from %s: %v", c.addr, err)
	}
	conn.SetReadDeadline(time.Time{})
	framesClientIn.Inc()
	bytesClientIn.Add(frameBytes(hello))
	if c.everConnected {
		reconnects.Inc()
	}
	c.everConnected = true
	c.conn = conn
	c.writeMu = &sync.Mutex{}
	c.info = info
	go c.readLoop(conn)
	return nil
}

// ensure returns the live connection and its write lock, reconnecting with
// exponential backoff when the previous connection died.
func (c *Client) ensure() (net.Conn, *sync.Mutex, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, nil, transport.ErrClosed
	}
	if c.conn != nil {
		return c.conn, c.writeMu, nil
	}
	backoff := c.cfg.DialBackoff
	var err error
	for attempt := 0; attempt <= c.cfg.DialRetries; attempt++ {
		if attempt > 0 {
			c.mu.Unlock()
			time.Sleep(backoff)
			backoff *= 2
			c.mu.Lock()
			if c.closed {
				return nil, nil, transport.ErrClosed
			}
			if c.conn != nil { // another caller reconnected while we slept
				return c.conn, c.writeMu, nil
			}
		}
		if err = c.connectLocked(); err == nil {
			return c.conn, c.writeMu, nil
		}
	}
	return nil, nil, err
}

// readLoop routes incoming frames to their calls until the connection dies,
// then fails every in-flight call retryably.
func (c *Client) readLoop(conn net.Conn) {
	for {
		f, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				frameErrsClient.Inc()
			}
			c.teardown(conn, err)
			return
		}
		framesClientIn.Inc()
		bytesClientIn.Add(frameBytes(f))
		c.mu.Lock()
		call := c.calls[f.Stream]
		c.mu.Unlock()
		if call != nil {
			call.push(f)
		}
	}
}

// teardown clears a dead connection and fails its in-flight calls.
func (c *Client) teardown(conn net.Conn, cause error) {
	conn.Close()
	c.mu.Lock()
	if c.conn != conn { // already replaced
		c.mu.Unlock()
		return
	}
	c.conn = nil
	calls := c.calls
	c.calls = make(map[uint64]*wireCall)
	c.mu.Unlock()
	err := transport.Errorf("conn", true, "wire: connection to %s lost: %v", c.addr, cause)
	if c.isClosed() {
		err = &transport.Error{Op: "conn", Retryable: false, Err: transport.ErrClosed}
	}
	for _, call := range calls {
		call.fail(err)
	}
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// register allocates a stream id on the given connection.
func (c *Client) register(conn net.Conn) (uint64, *wireCall, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != conn { // torn down between ensure and register
		return 0, nil, false
	}
	c.nextID++
	id := c.nextID
	call := newWireCall()
	c.calls[id] = call
	return id, call, true
}

func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.calls, id)
	c.mu.Unlock()
}

// send writes one frame under the connection's write lock.
func (c *Client) send(conn net.Conn, writeMu *sync.Mutex, f frame) error {
	writeMu.Lock()
	defer writeMu.Unlock()
	conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	if err := writeFrame(conn, f); err != nil {
		frameErrsClient.Inc()
		return transport.Errorf("conn", true, "wire: writing to %s: %v", c.addr, err)
	}
	framesClientOut.Inc()
	bytesClientOut.Add(frameBytes(f))
	return nil
}

// unary performs one request/response exchange.
func (c *Client) unary(ft frameType, op string, body []byte) ([]byte, error) {
	conn, writeMu, err := c.ensure()
	if err != nil {
		return nil, err
	}
	id, call, ok := c.register(conn)
	if !ok {
		return nil, transport.Errorf(op, true, "wire: connection to %s lost", c.addr)
	}
	defer c.unregister(id)
	if err := c.send(conn, writeMu, frame{Type: ft, Stream: id, Body: body}); err != nil {
		return nil, err
	}
	f, err := call.pop(time.Now().Add(c.cfg.CallTimeout))
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case ftMsg:
		return f.Body, nil
	case ftErr:
		return nil, decodeWireError(op, f.Body)
	default:
		return nil, transport.Errorf(op, false, "wire: unexpected frame type %d in response", f.Type)
	}
}

// decodeWireError rebuilds the server-side transport error, preserving its
// retryable/fatal classification.
func decodeWireError(op string, body []byte) error {
	var we wireError
	if err := unmarshalBody(body, &we); err != nil {
		return transport.Errorf(op, false, "wire: undecodable error frame: %v", err)
	}
	if we.Op == "" {
		we.Op = op
	}
	return transport.Errorf(we.Op, we.Retryable, "%s", we.Msg)
}

// Deliver opens a block stream over the wire. The returned stream verifies
// per-stream sequence contiguity: a skipped or repeated wire frame is a
// medium failure and surfaces as a retryable error.
func (c *Client) Deliver(channelID string, from uint64) (transport.BlockStream, error) {
	conn, writeMu, err := c.ensure()
	if err != nil {
		return nil, err
	}
	body, err := marshalBody(deliverOpen{Channel: channelID, From: from})
	if err != nil {
		return nil, err
	}
	id, call, ok := c.register(conn)
	if !ok {
		return nil, transport.Errorf("deliver", true, "wire: connection to %s lost", c.addr)
	}
	if err := c.send(conn, writeMu, frame{Type: ftOpenDeliver, Stream: id, Body: body}); err != nil {
		c.unregister(id)
		return nil, err
	}
	return &clientStream{c: c, conn: conn, writeMu: writeMu, id: id, call: call}, nil
}

// Broadcast submits one envelope for ordering.
func (c *Client) Broadcast(tx *ledger.Transaction) error {
	body, err := tx.Marshal()
	if err != nil {
		return fmt.Errorf("wire: encoding transaction: %w", err)
	}
	_, err = c.unary(ftBroadcast, "broadcast", body)
	return err
}

// Endorse simulates a proposal on the remote peer.
func (c *Client) Endorse(prop peer.Proposal) (peer.ProposalResponse, error) {
	body, err := marshalBody(prop)
	if err != nil {
		return peer.ProposalResponse{}, err
	}
	respBody, err := c.unary(ftEndorse, "endorse", body)
	if err != nil {
		return peer.ProposalResponse{}, err
	}
	var resp peer.ProposalResponse
	if err := unmarshalBody(respBody, &resp); err != nil {
		return peer.ProposalResponse{}, err
	}
	return resp, nil
}

// Submit runs the full gateway lifecycle on the remote endpoint.
func (c *Client) Submit(tx *ledger.Transaction) (peer.CommitEvent, error) {
	body, err := tx.Marshal()
	if err != nil {
		return peer.CommitEvent{}, fmt.Errorf("wire: encoding transaction: %w", err)
	}
	respBody, err := c.unary(ftSubmit, "submit", body)
	if err != nil {
		return peer.CommitEvent{}, err
	}
	var ev peer.CommitEvent
	if err := unmarshalBody(respBody, &ev); err != nil {
		return peer.CommitEvent{}, err
	}
	return ev, nil
}

// Close severs the connection and fails all in-flight calls with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	untrackClient(c)
	if conn != nil {
		c.teardown(conn, transport.ErrClosed)
	}
	return nil
}

// queueDepth is the total number of frames parked in this client's
// in-flight call queues — the scrape-time gauge input.
func (c *Client) queueDepth() int {
	c.mu.Lock()
	calls := make([]*wireCall, 0, len(c.calls))
	for _, w := range c.calls {
		calls = append(calls, w)
	}
	c.mu.Unlock()
	total := 0
	for _, w := range calls {
		w.mu.Lock()
		total += len(w.queue)
		w.mu.Unlock()
	}
	return total
}

// clientStream is one open wire deliver session.
type clientStream struct {
	c       *Client
	conn    net.Conn
	writeMu *sync.Mutex
	id      uint64
	call    *wireCall

	seq    uint64 // last verified wire sequence number
	closed bool
	mu     sync.Mutex
}

// Recv returns the next block, verifying wire-level sequence contiguity.
// One goroutine consumes a stream (the BlockStream contract); Close from
// another goroutine unblocks it.
func (s *clientStream) Recv() (*ledger.Block, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, io.EOF
	}
	f, err := s.call.pop(time.Time{})
	if err != nil {
		if errors.Is(err, transport.ErrClosed) {
			return nil, io.EOF
		}
		return nil, err
	}
	switch f.Type {
	case ftMsg:
		if f.Seq != s.seq+1 {
			return nil, transport.Errorf("deliver", true,
				"wire: stream sequence gap: frame seq %d, expected %d", f.Seq, s.seq+1)
		}
		s.seq = f.Seq
		b, err := ledger.UnmarshalBlock(f.Body)
		if err != nil {
			return nil, transport.Errorf("deliver", true, "wire: undecodable block frame: %v", err)
		}
		return b, nil
	case ftEnd:
		return nil, io.EOF
	case ftErr:
		return nil, decodeWireError("deliver", f.Body)
	default:
		return nil, transport.Errorf("deliver", false, "wire: unexpected frame type %d on deliver stream", f.Type)
	}
}

// Close cancels the session server-side (best effort) and releases it.
func (s *clientStream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.c.unregister(s.id)
	s.call.close()
	s.c.send(s.conn, s.writeMu, frame{Type: ftCancel, Stream: s.id})
	return nil
}

// Compile-time interface check.
var _ transport.Transport = (*Client)(nil)
