package wire

import (
	"sync"

	"fabriccrdt/internal/obs"
)

// Wire traffic counters on the process-global Default registry: a process
// may host many clients and servers, but frames and bytes on the wire are
// a per-process property. All increments sit on paths that already paid
// for a syscall, so the atomic adds are noise.
var (
	framesClientOut = obs.Default().Counter(obs.MetricWireFrames, "side", "client", "dir", "out")
	framesClientIn  = obs.Default().Counter(obs.MetricWireFrames, "side", "client", "dir", "in")
	framesServerOut = obs.Default().Counter(obs.MetricWireFrames, "side", "server", "dir", "out")
	framesServerIn  = obs.Default().Counter(obs.MetricWireFrames, "side", "server", "dir", "in")

	bytesClientOut = obs.Default().Counter(obs.MetricWireBytes, "side", "client", "dir", "out")
	bytesClientIn  = obs.Default().Counter(obs.MetricWireBytes, "side", "client", "dir", "in")
	bytesServerOut = obs.Default().Counter(obs.MetricWireBytes, "side", "server", "dir", "out")
	bytesServerIn  = obs.Default().Counter(obs.MetricWireBytes, "side", "server", "dir", "in")

	frameErrsClient = obs.Default().Counter(obs.MetricWireFrameErrors, "side", "client")
	frameErrsServer = obs.Default().Counter(obs.MetricWireFrameErrors, "side", "server")
	reconnects      = obs.Default().Counter(obs.MetricWireReconnects)
)

// frameBytes is a frame's full on-the-wire size: length prefix + CRC,
// fixed header, body.
func frameBytes(f frame) int64 {
	return int64(prefixLen + headerLen + len(f.Body))
}

// liveClients tracks every open Client so one scrape-time gauge can report
// the total frames parked in their unbounded per-call queues — the wire
// layer's only unbounded buffers.
var (
	liveClientsMu sync.Mutex
	liveClients   = make(map[*Client]struct{})
)

func init() {
	obs.Default().GaugeFunc(obs.MetricWireCallQueueDepth, func() float64 {
		liveClientsMu.Lock()
		clients := make([]*Client, 0, len(liveClients))
		for c := range liveClients {
			clients = append(clients, c)
		}
		liveClientsMu.Unlock()
		total := 0
		for _, c := range clients {
			total += c.queueDepth()
		}
		return float64(total)
	})
}

func trackClient(c *Client) {
	liveClientsMu.Lock()
	liveClients[c] = struct{}{}
	liveClientsMu.Unlock()
}

func untrackClient(c *Client) {
	liveClientsMu.Lock()
	delete(liveClients, c)
	liveClientsMu.Unlock()
}
