package transport_test

import (
	"testing"

	"fabriccrdt/internal/transport"
	"fabriccrdt/internal/transport/conformance"
)

// TestInProcessConformance runs the full transport contract against the
// in-process implementation: the Node IS the transport.
func TestInProcessConformance(t *testing.T) {
	conformance.Run(t, func(t testing.TB, node *transport.Node) transport.Transport {
		return node
	})
}
