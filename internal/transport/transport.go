// Package transport abstracts the four streams every FabricCRDT network is
// built from — Deliver (orderer → peer block stream), Broadcast (client →
// orderer transaction submission), Endorse (client → peer proposal
// simulation) and Submit (client → gateway full-lifecycle submission) —
// behind one interface with two implementations: the in-process Node (the
// goroutine-and-channel plumbing fabricnet always had, now behind the
// interface) and the framed-TCP wire transport (internal/wire), so orderer,
// peer and gateway can run as separate OS processes (the Fabric
// architecture's deliver/broadcast service split, Androulaki et al.).
//
// The package also carries the pieces both implementations share:
//
//   - History (history.go): one channel's retained block sequence plus live
//     tail — the server side of every Deliver stream, giving each consumer
//     an unbounded cursor instead of a bounded queue (the orderer fan-out
//     deadlock of DESIGN.md §7 is structurally impossible here).
//   - Gateway (node.go): the Submit server half — broadcast an endorsed
//     envelope, wait for the local peer's commit event.
//   - Chaos (chaos.go): fault-injecting middleware wrapping any Transport —
//     delayed, duplicated, dropped, reordered and tampered blocks plus
//     mid-stream disconnects — used by the conformance suite and the
//     fault-injection integration tests.
//   - DeliverToPeer (deliver.go): the committer-side deliver loop — resume
//     at height+1, detect gaps, reconnect with exponential backoff on
//     retryable transport errors, die on fatal commit errors.
//
// Error discipline: everything the medium can heal — a severed connection,
// a lost frame, a sequence gap — is wrapped retryable (Retryable reports
// it) and makes deliver loops reconnect; everything the application decided
// — an endorsement rejection, a hash-chain violation, a commit failure — is
// fatal and must surface to the caller.
package transport

import (
	"errors"
	"fmt"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/peer"
)

// Transport is the four-stream surface between FabricCRDT roles. A given
// endpoint implements the streams its role serves — an ordering node
// serves Deliver and Broadcast, a peer node serves Deliver (its committed
// history), Endorse and Submit — and returns ErrUnsupported for the rest.
//
// Implementations must be safe for concurrent use: clients endorse, submit
// and consume deliver streams from many goroutines at once.
type Transport interface {
	// Deliver opens one channel's block stream starting at block number
	// from (blocks numbered >= from, in order, no gaps). The stream follows
	// the live tail; Recv returns io.EOF only when the serving side shuts
	// down cleanly. Delivery is at-least-once across reconnects: a consumer
	// re-opening at from <= its height sees committed history again and is
	// expected to fast-forward it (peer.CommitBlockOn does). Open failures
	// (unknown channel, from below the retained base) may surface here or
	// on the stream's FIRST Recv — a streaming transport only learns them
	// a round-trip later; consumers must treat both the same.
	Deliver(channelID string, from uint64) (BlockStream, error)

	// Broadcast submits one endorsed transaction envelope for ordering on
	// the channel the envelope names. It returns once the envelope is
	// accepted into the total order — not when it commits.
	Broadcast(tx *ledger.Transaction) error

	// Endorse simulates a proposal on the serving peer and returns its
	// signed read/write set (the execution phase).
	Endorse(prop peer.Proposal) (peer.ProposalResponse, error)

	// Submit hands an endorsed envelope to a gateway, which broadcasts it
	// and waits for the commit event of the peer it fronts — the full
	// submit-and-wait lifecycle as one request/response exchange.
	Submit(tx *ledger.Transaction) (peer.CommitEvent, error)

	// Close releases the transport. In-flight and subsequent calls fail.
	Close() error
}

// BlockStream is one open Deliver stream.
type BlockStream interface {
	// Recv blocks until the next block is available. It returns io.EOF on
	// clean shutdown of the serving side, a retryable *Error when the
	// medium failed mid-stream (sequence gap, severed connection), and any
	// other error for protocol violations.
	Recv() (*ledger.Block, error)
	// Close releases the stream; a blocked Recv returns.
	Close() error
}

// Transport-level sentinel errors.
var (
	// ErrUnsupported reports a stream the serving endpoint does not
	// implement (e.g. Endorse on an ordering node). Never retryable.
	ErrUnsupported = errors.New("transport: stream not supported by this endpoint")
	// ErrClosed reports use of a transport after Close.
	ErrClosed = errors.New("transport: closed")
)

// Error is a transport-layer failure. Retryable failures are the medium's
// fault (connection severed, frame lost, sequence gap) and heal by
// reconnecting; non-retryable ones are protocol or application decisions
// that reconnecting cannot change.
type Error struct {
	// Op names the failing operation ("deliver", "broadcast", ...).
	Op string
	// Retryable reports whether reconnecting may succeed.
	Retryable bool
	// Err is the cause.
	Err error
}

// Error formats the failure.
func (e *Error) Error() string {
	kind := "fatal"
	if e.Retryable {
		kind = "retryable"
	}
	return fmt.Sprintf("transport: %s (%s): %v", e.Op, kind, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Errorf builds a transport Error.
func Errorf(op string, retryable bool, format string, args ...any) *Error {
	return &Error{Op: op, Retryable: retryable, Err: fmt.Errorf(format, args...)}
}

// Retryable reports whether err is a transport error that reconnecting may
// heal. Commit errors, endorsement rejections and ErrUnsupported are never
// retryable; severed connections, lost frames and sequence gaps are.
func Retryable(err error) bool {
	var te *Error
	return errors.As(err, &te) && te.Retryable
}
