// Package conformance is the behavioral contract every transport.Transport
// implementation must satisfy, expressed as a reusable test suite: ordering,
// at-least-once delivery with fast-forward dedup, freedom from producer
// backpressure, clean shutdown, error propagation (with the retryable/fatal
// split preserved end to end), and survival of the Chaos fault catalogue —
// dropped, duplicated, reordered and tampered blocks plus mid-stream
// disconnects — driven through a real committing peer.
//
// A transport registers by calling Run with a Factory that turns a server
// assembly (*transport.Node) into the client-side Transport under test: the
// in-process factory returns the node itself; the wire factory serves the
// node on a loopback listener and dials it. Both run the exact same
// contracts (internal/transport and internal/wire do, under -race, via
// `make test-wire`).
package conformance

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/orderer"
	"fabriccrdt/internal/peer"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/transport"
)

// Factory builds the client-side view of a server assembly. Implementations
// register cleanup on t (closing listeners, connections) — the suite closes
// only what it creates itself.
type Factory func(t testing.TB, node *transport.Node) transport.Transport

// channel is the suite's single test channel.
const channel = "ch1"

// Run exercises every transport contract against the factory's transport.
func Run(t *testing.T, factory Factory) {
	t.Run("DeliverOrdering", func(t *testing.T) { testDeliverOrdering(t, factory) })
	t.Run("DeliverResume", func(t *testing.T) { testDeliverResume(t, factory) })
	t.Run("DeliverWaitsForTail", func(t *testing.T) { testDeliverWaitsForTail(t, factory) })
	t.Run("SlowConsumerNoBackpressure", func(t *testing.T) { testSlowConsumer(t, factory) })
	t.Run("CleanShutdown", func(t *testing.T) { testCleanShutdown(t, factory) })
	t.Run("StreamCloseIsLocal", func(t *testing.T) { testStreamCloseIsLocal(t, factory) })
	t.Run("DeliverBelowBaseFatal", func(t *testing.T) { testDeliverBelowBase(t, factory) })
	t.Run("UnknownChannelFatal", func(t *testing.T) { testUnknownChannel(t, factory) })
	t.Run("UnsupportedStreams", func(t *testing.T) { testUnsupported(t, factory) })
	t.Run("BroadcastRoutesByChannel", func(t *testing.T) { testBroadcastRouting(t, factory) })
	t.Run("RetryabilityCrossesTransport", func(t *testing.T) { testRetryability(t, factory) })
	t.Run("EndorseRoundTrip", func(t *testing.T) { testEndorseRoundTrip(t, factory) })
	t.Run("SubmitRoundTrip", func(t *testing.T) { testSubmitRoundTrip(t, factory) })
	t.Run("ChaosDrop", func(t *testing.T) {
		testChaosHeals(t, factory, transport.ChaosConfig{DropNth: 3, MaxFaults: 3})
	})
	t.Run("ChaosDuplicate", func(t *testing.T) {
		testChaosHeals(t, factory, transport.ChaosConfig{DuplicateNth: 2, MaxFaults: 4})
	})
	t.Run("ChaosReorder", func(t *testing.T) {
		testChaosHeals(t, factory, transport.ChaosConfig{ReorderNth: 4, MaxFaults: 2})
	})
	t.Run("ChaosDisconnect", func(t *testing.T) {
		testChaosHeals(t, factory, transport.ChaosConfig{DisconnectEvery: 5, MaxFaults: 2})
	})
	t.Run("ChaosDelayedEverything", func(t *testing.T) {
		testChaosHeals(t, factory, transport.ChaosConfig{
			Delay: time.Millisecond, DropNth: 5, DuplicateNth: 3, DisconnectEvery: 7, MaxFaults: 5,
		})
	})
	t.Run("ChaosTamperIsFatal", func(t *testing.T) { testChaosTamperFatal(t, factory) })
}

// blocks assembles n hash-chained blocks (numbers 1..n) after channel
// genesis, each carrying one placeholder transaction — the committer marks
// them invalid (no endorsements) and the chain still advances, which is all
// the transport layer's contracts need.
func blocks(t testing.TB, n int) []*ledger.Block {
	t.Helper()
	chain := ledger.NewChain(channel)
	num, hash := chain.LastRef()
	a := orderer.NewAssemblerAt(num, hash)
	out := make([]*ledger.Block, 0, n)
	for i := 0; i < n; i++ {
		b, err := a.Assemble(orderer.Batch{
			Transactions: []*ledger.Transaction{{ID: fmt.Sprintf("tx%d", i+1), ChannelID: channel}},
			Reason:       orderer.CutMaxMessages,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// historyNode is a Node serving one in-memory history on the test channel.
func historyNode(h *transport.History) *transport.Node {
	return &transport.Node{
		NodeInfo:  transport.Info{Name: "conformance", Channels: []string{channel}},
		Histories: map[string]*transport.History{channel: h},
	}
}

// recvN reads n blocks or fails.
func recvN(t *testing.T, s transport.BlockStream, n int, wantFirst uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		b, err := s.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := wantFirst + uint64(i); b.Header.Number != want {
			t.Fatalf("recv %d: block %d, want %d", i, b.Header.Number, want)
		}
	}
}

func testDeliverOrdering(t *testing.T, factory Factory) {
	h := transport.NewHistory(1)
	tr := factory(t, historyNode(h))
	defer tr.Close()
	for _, b := range blocks(t, 8) {
		if err := h.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tr.Deliver(channel, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recvN(t, s, 8, 1)
}

func testDeliverResume(t *testing.T, factory Factory) {
	h := transport.NewHistory(1)
	tr := factory(t, historyNode(h))
	defer tr.Close()
	for _, b := range blocks(t, 6) {
		h.Append(b)
	}
	// At-least-once: a consumer that already holds 1..4 reopens at 5 and
	// gets exactly the tail; reopening at 2 replays committed history.
	s, err := tr.Deliver(channel, 5)
	if err != nil {
		t.Fatal(err)
	}
	recvN(t, s, 2, 5)
	s.Close()
	s, err = tr.Deliver(channel, 2)
	if err != nil {
		t.Fatal(err)
	}
	recvN(t, s, 5, 2)
	s.Close()
}

func testDeliverWaitsForTail(t *testing.T, factory Factory) {
	h := transport.NewHistory(1)
	tr := factory(t, historyNode(h))
	defer tr.Close()
	bs := blocks(t, 3)
	h.Append(bs[0])
	// Open beyond the tail: Recv must wait for the producer, not error.
	s, err := tr.Deliver(channel, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := make(chan error, 1)
	go func() {
		_, err := s.Recv()
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("recv returned before tail reached block 2: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	h.Append(bs[1])
	if err := <-got; err != nil {
		t.Fatalf("recv after append: %v", err)
	}
}

func testSlowConsumer(t *testing.T, factory Factory) {
	h := transport.NewHistory(1)
	tr := factory(t, historyNode(h))
	defer tr.Close()
	// One consumer opens a stream and never reads.
	stuck, err := tr.Deliver(channel, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()
	// The producer appends a pile of blocks: Append must never block on the
	// stuck consumer (the PR 4 fan-out deadlock, re-proven at the transport
	// boundary), and a second, live consumer must see everything.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, b := range blocks(t, 64) {
			h.Append(b)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("producer blocked behind a never-reading consumer")
	}
	live, err := tr.Deliver(channel, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	recvN(t, live, 64, 1)
}

func testCleanShutdown(t *testing.T, factory Factory) {
	h := transport.NewHistory(1)
	tr := factory(t, historyNode(h))
	defer tr.Close()
	for _, b := range blocks(t, 4) {
		h.Append(b)
	}
	s, err := tr.Deliver(channel, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recvN(t, s, 2, 1)
	// Closing the history mid-stream: the consumer still drains every
	// published block, THEN sees clean EOF — never an error.
	h.Close()
	recvN(t, s, 2, 3)
	if _, err := s.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("after shutdown: got %v, want io.EOF", err)
	}
}

func testStreamCloseIsLocal(t *testing.T, factory Factory) {
	h := transport.NewHistory(1)
	tr := factory(t, historyNode(h))
	defer tr.Close()
	for _, b := range blocks(t, 3) {
		h.Append(b)
	}
	a, err := tr.Deliver(channel, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Deliver(channel, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	recvN(t, a, 1, 1)
	// Closing one stream must unblock its reader and leave the other
	// stream (and the shared connection, for wire) fully usable.
	waiting := make(chan error, 1)
	go func() {
		for {
			if _, err := a.Recv(); err != nil {
				waiting <- err
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-waiting:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("closed stream recv: got %v, want io.EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock recv")
	}
	recvN(t, b, 3, 1)
}

// openErr opens a deliver stream and returns its open failure, wherever the
// transport reports it — at Deliver, or on the first Recv (the contract
// allows both; a streaming transport learns open failures a round-trip
// late).
func openErr(t *testing.T, tr transport.Transport, channelID string, from uint64) error {
	t.Helper()
	s, err := tr.Deliver(channelID, from)
	if err != nil {
		return err
	}
	defer s.Close()
	_, err = s.Recv()
	return err
}

func testDeliverBelowBase(t *testing.T, factory Factory) {
	h := transport.NewHistory(5) // history truncated below block 5
	tr := factory(t, historyNode(h))
	defer tr.Close()
	err := openErr(t, tr, channel, 1)
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatal("deliver below retained base succeeded")
	}
	if transport.Retryable(err) {
		t.Fatalf("below-base error must be fatal, got retryable: %v", err)
	}
}

func testUnknownChannel(t *testing.T, factory Factory) {
	h := transport.NewHistory(1)
	tr := factory(t, historyNode(h))
	defer tr.Close()
	err := openErr(t, tr, "nope", 1)
	if err == nil || errors.Is(err, io.EOF) || transport.Retryable(err) {
		t.Fatalf("unknown channel must fail fatally, got %v", err)
	}
}

func testUnsupported(t *testing.T, factory Factory) {
	// A bare ordering-style node: no endorser, no submitter.
	h := transport.NewHistory(1)
	tr := factory(t, historyNode(h))
	defer tr.Close()
	if _, err := tr.Endorse(peer.Proposal{TxID: "t"}); err == nil {
		t.Fatal("endorse on non-endorsing node succeeded")
	} else if transport.Retryable(err) {
		t.Fatalf("unsupported endorse must be fatal, got retryable: %v", err)
	}
	if _, err := tr.Submit(&ledger.Transaction{ID: "t", ChannelID: channel}); err == nil {
		t.Fatal("submit on non-gateway node succeeded")
	} else if transport.Retryable(err) {
		t.Fatalf("unsupported submit must be fatal, got retryable: %v", err)
	}
}

// recordingBroadcaster captures broadcast envelopes.
type recordingBroadcaster struct {
	got chan *ledger.Transaction
	err error
}

func (r *recordingBroadcaster) Broadcast(tx *ledger.Transaction) error {
	if r.err != nil {
		return r.err
	}
	r.got <- tx
	return nil
}

func testBroadcastRouting(t *testing.T, factory Factory) {
	rb := &recordingBroadcaster{got: make(chan *ledger.Transaction, 1)}
	node := &transport.Node{
		NodeInfo:   transport.Info{Name: "orderer", Channels: []string{channel}},
		Broadcasts: map[string]transport.Broadcaster{channel: rb},
	}
	tr := factory(t, node)
	defer tr.Close()
	tx := &ledger.Transaction{ID: "tx-route", ChannelID: channel, Chaincode: "iot", Args: [][]byte{[]byte("a")}}
	if err := tr.Broadcast(tx); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-rb.got:
		if got.ID != tx.ID || got.ChannelID != channel || got.Chaincode != "iot" {
			t.Fatalf("broadcast arrived mangled: %+v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("broadcast never reached the ordering service")
	}
	if err := tr.Broadcast(&ledger.Transaction{ID: "x", ChannelID: "nope"}); err == nil || transport.Retryable(err) {
		t.Fatalf("unknown-channel broadcast must fail fatally, got %v", err)
	}
}

func testRetryability(t *testing.T, factory Factory) {
	// A server-side RETRYABLE failure must still look retryable after
	// crossing the transport — the deliver loop's reconnect decision
	// depends on it.
	rb := &recordingBroadcaster{err: transport.Errorf("broadcast", true, "orderer draining, come back")}
	node := &transport.Node{
		NodeInfo:   transport.Info{Name: "orderer", Channels: []string{channel}},
		Broadcasts: map[string]transport.Broadcaster{channel: rb},
	}
	tr := factory(t, node)
	defer tr.Close()
	err := tr.Broadcast(&ledger.Transaction{ID: "x", ChannelID: channel})
	if err == nil {
		t.Fatal("broadcast succeeded against a draining orderer")
	}
	if !transport.Retryable(err) {
		t.Fatalf("server-side retryable error arrived fatal: %v", err)
	}
}

// echoEndorser proves proposal/response fields survive the round trip.
type echoEndorser struct{}

func (echoEndorser) Endorse(prop peer.Proposal) (peer.ProposalResponse, error) {
	if prop.Chaincode == "boom" {
		return peer.ProposalResponse{}, errors.New("chaincode exploded")
	}
	return peer.ProposalResponse{
		Endorser:  append([]byte("by:"), prop.Creator...),
		ChannelID: prop.ChannelID,
		Signature: []byte(prop.TxID),
		RWSet: rwset.ReadWriteSet{
			Writes: []rwset.Write{{Key: prop.Chaincode, Value: []byte("simulated"), IsCRDT: true}},
		},
	}, nil
}

func testEndorseRoundTrip(t *testing.T, factory Factory) {
	node := &transport.Node{
		NodeInfo: transport.Info{Name: "Org1.peer0", MSPID: "Org1"},
		Endorser: echoEndorser{},
	}
	tr := factory(t, node)
	defer tr.Close()
	resp, err := tr.Endorse(peer.Proposal{
		TxID: "tx9", ChannelID: channel, Chaincode: "iot",
		Args: [][]byte{[]byte("get"), []byte("dev1")}, Creator: []byte("alice"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Endorser) != "by:alice" || string(resp.Signature) != "tx9" || resp.ChannelID != channel {
		t.Fatalf("endorse response mangled: %+v", resp)
	}
	if len(resp.RWSet.Writes) != 1 || resp.RWSet.Writes[0].Key != "iot" || !resp.RWSet.Writes[0].IsCRDT {
		t.Fatalf("read/write set mangled in transit: %+v", resp.RWSet)
	}
	if _, err := tr.Endorse(peer.Proposal{TxID: "t", Chaincode: "boom"}); err == nil {
		t.Fatal("endorsement rejection vanished in transit")
	} else if transport.Retryable(err) {
		t.Fatalf("endorsement rejection must be fatal, got retryable: %v", err)
	}
}

// fakeGateway completes submissions instantly.
type fakeGateway struct{}

func (fakeGateway) Submit(tx *ledger.Transaction) (peer.CommitEvent, error) {
	return peer.CommitEvent{TxID: tx.ID, ChannelID: tx.ChannelID, BlockNum: 7, Code: ledger.CodeValid}, nil
}

func testSubmitRoundTrip(t *testing.T, factory Factory) {
	node := &transport.Node{
		NodeInfo:  transport.Info{Name: "gw", MSPID: "Org1"},
		Submitter: fakeGateway{},
	}
	tr := factory(t, node)
	defer tr.Close()
	ev, err := tr.Submit(&ledger.Transaction{ID: "tx42", ChannelID: channel})
	if err != nil {
		t.Fatal(err)
	}
	if ev.TxID != "tx42" || ev.ChannelID != channel || ev.BlockNum != 7 || ev.Code != ledger.CodeValid {
		t.Fatalf("commit event mangled: %+v", ev)
	}
}

// newCommittingPeer builds a real peer joined to the test channel.
func newCommittingPeer(t testing.TB) *peer.Peer {
	t.Helper()
	ca, err := cryptoid.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	msp := cryptoid.NewMSP()
	msp.AddOrg("Org1", ca.PublicKey())
	signer, err := ca.Issue("Org1.peer0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := peer.New(peer.Config{Name: "Org1.peer0", MSPID: "Org1", Channels: []string{channel}}, signer, msp)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testChaosHeals drives a real committing peer through a chaos-wrapped
// transport and requires it to reach the full height with NO fatal error —
// drop and reorder force sequence-gap reconnects, duplicate exercises
// fast-forward dedup, disconnect exercises mid-stream reconnect.
func testChaosHeals(t *testing.T, factory Factory, cfg transport.ChaosConfig) {
	const n = 16
	h := transport.NewHistory(1)
	tr := factory(t, historyNode(h))
	defer tr.Close()
	chaos := transport.NewChaos(tr, cfg)
	for _, b := range blocks(t, n) {
		h.Append(b)
	}
	h.Close()
	p := newCommittingPeer(t)
	err := transport.DeliverToPeer(chaos, p, transport.DeliverConfig{
		ChannelID:  channel,
		Backoff:    time.Millisecond,
		MaxRetries: 100,
	}, nil)
	if err != nil {
		t.Fatalf("deliver loop died under chaos %+v: %v", cfg, err)
	}
	if chaos.Faults() == 0 {
		t.Fatalf("chaos %+v injected no faults — the contract proved nothing", cfg)
	}
	height, err := p.HeightOn(channel)
	if err != nil {
		t.Fatal(err)
	}
	if height != n {
		t.Fatalf("peer height %d after chaos %+v, want %d", height, cfg, n)
	}
}

// testChaosTamperFatal proves the OTHER half of the error discipline: a
// corrupted block is an application rejection (hash-chain violation), and
// the deliver loop must die on it, not reconnect-loop forever.
func testChaosTamperFatal(t *testing.T, factory Factory) {
	h := transport.NewHistory(1)
	tr := factory(t, historyNode(h))
	defer tr.Close()
	chaos := transport.NewChaos(tr, transport.ChaosConfig{TamperNth: 4, MaxFaults: 1})
	for _, b := range blocks(t, 8) {
		h.Append(b)
	}
	h.Close()
	p := newCommittingPeer(t)
	err := transport.DeliverToPeer(chaos, p, transport.DeliverConfig{
		ChannelID:  channel,
		Backoff:    time.Millisecond,
		MaxRetries: 100,
	}, nil)
	if err == nil {
		t.Fatal("tampered block committed — hash-chain verification lost in transit")
	}
	if transport.Retryable(err) {
		t.Fatalf("tampered block must be a FATAL error, got retryable: %v", err)
	}
	if height, _ := p.HeightOn(channel); height != 3 {
		t.Fatalf("peer height %d after tampered block 4, want 3", height)
	}
}
