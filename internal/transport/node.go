package transport

import (
	"fmt"
	"sync"
	"time"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/obs"
	"fabriccrdt/internal/peer"
)

// Broadcaster is the ordering surface a node or gateway forwards envelopes
// to — satisfied by *orderer.Service and by any Transport.
type Broadcaster interface {
	Broadcast(tx *ledger.Transaction) error
}

// Info describes a serving endpoint — the handshake metadata the wire
// transport exchanges at connection open, and what a client needs to use a
// remote peer as an endorser (identity for policy checks).
type Info struct {
	// Name is the serving node's name (a peer name like "Org1.peer0", or
	// an orderer's label).
	Name string `json:"name"`
	// MSPID is the serving peer's organization; empty for ordering nodes.
	MSPID string `json:"mspID"`
	// Channels lists the channels the node serves, default first.
	Channels []string `json:"channels"`
}

// Node is the in-process implementation of Transport: the server side of
// one process's role, assembled from the streams that role serves. A nil
// field means the stream is unsupported (ErrUnsupported) — an ordering
// node sets Histories + Broadcasts, a peer node sets Histories (its chain
// history), Endorser and Gateway.
//
// Calling a Node's methods IS the in-process transport — the same
// goroutine-and-channel plumbing fabricnet always used, now behind the
// interface the wire transport also implements, so the conformance suite
// (internal/transport/conformance) runs identically against both.
type Node struct {
	// NodeInfo is the endpoint metadata served to wire handshakes.
	NodeInfo Info
	// Histories serves Deliver: one History per channel.
	Histories map[string]*History
	// Broadcasts serves Broadcast, routed by the envelope's channel.
	Broadcasts map[string]Broadcaster
	// Endorser serves Endorse.
	Endorser interface {
		Endorse(prop peer.Proposal) (peer.ProposalResponse, error)
	}
	// Submitter serves Submit (a *Gateway in real assemblies).
	Submitter interface {
		Submit(tx *ledger.Transaction) (peer.CommitEvent, error)
	}

	mu     sync.Mutex
	closed bool
}

// Info returns the endpoint metadata.
func (n *Node) Info() Info { return n.NodeInfo }

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// Deliver opens a block stream from the channel's history.
func (n *Node) Deliver(channelID string, from uint64) (BlockStream, error) {
	callsDeliver.Inc()
	if n.isClosed() {
		return nil, ErrClosed
	}
	h, ok := n.Histories[channelID]
	if !ok {
		if n.Histories == nil {
			return nil, ErrUnsupported
		}
		return nil, Errorf("deliver", false, "unknown channel %q", channelID)
	}
	return h.Stream(from)
}

// Broadcast forwards the envelope to its channel's ordering service.
func (n *Node) Broadcast(tx *ledger.Transaction) error {
	callsBroadcast.Inc()
	if n.isClosed() {
		return ErrClosed
	}
	b, ok := n.Broadcasts[tx.ChannelID]
	if !ok {
		if n.Broadcasts == nil {
			return ErrUnsupported
		}
		return Errorf("broadcast", false, "unknown channel %q", tx.ChannelID)
	}
	return b.Broadcast(tx)
}

// Endorse simulates the proposal on the serving peer.
func (n *Node) Endorse(prop peer.Proposal) (peer.ProposalResponse, error) {
	callsEndorse.Inc()
	if n.isClosed() {
		return peer.ProposalResponse{}, ErrClosed
	}
	if n.Endorser == nil {
		return peer.ProposalResponse{}, ErrUnsupported
	}
	return n.Endorser.Endorse(prop)
}

// Submit runs the gateway lifecycle: broadcast, wait for the commit event.
func (n *Node) Submit(tx *ledger.Transaction) (peer.CommitEvent, error) {
	callsSubmit.Inc()
	if n.isClosed() {
		return peer.CommitEvent{}, ErrClosed
	}
	if n.Submitter == nil {
		return peer.CommitEvent{}, ErrUnsupported
	}
	return n.Submitter.Submit(tx)
}

// Close marks the node closed; subsequent calls fail. The histories,
// services and peers behind it belong to their creators and are not
// touched.
func (n *Node) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	return nil
}

// Gateway is the server half of the Submit stream: it fronts one peer,
// broadcasting endorsed envelopes to the ordering service and completing
// each submission with the commit event the peer emits — Fabric's gateway
// service collapsed to its essence. One Gateway consumes one event
// subscription on its peer regardless of how many submissions are in
// flight.
type Gateway struct {
	peer    *peer.Peer
	orderer Broadcaster
	timeout time.Duration

	mu      sync.Mutex
	waiters map[string]chan peer.CommitEvent
	done    chan struct{}
}

// NewGateway starts a gateway fronting p, broadcasting through b, failing
// submissions that see no commit event within timeout. The gateway's event
// listener ends when the peer closes its event streams (peer.CloseEvents).
func NewGateway(p *peer.Peer, b Broadcaster, timeout time.Duration) *Gateway {
	g := &Gateway{
		peer:    p,
		orderer: b,
		timeout: timeout,
		waiters: make(map[string]chan peer.CommitEvent),
		done:    make(chan struct{}),
	}
	events := p.Events()
	go func() {
		defer close(g.done)
		for ev := range events {
			g.mu.Lock()
			ch, ok := g.waiters[ev.TxID]
			if ok {
				delete(g.waiters, ev.TxID)
			}
			g.mu.Unlock()
			if ok {
				ch <- ev
			}
		}
	}()
	return g
}

// Submit broadcasts the envelope and blocks until the fronted peer commits
// it (any validation code — the code is the caller's answer) or the
// gateway timeout passes.
func (g *Gateway) Submit(tx *ledger.Transaction) (peer.CommitEvent, error) {
	start := time.Now()
	wait := make(chan peer.CommitEvent, 1)
	g.mu.Lock()
	g.waiters[tx.ID] = wait
	g.mu.Unlock()
	release := func() {
		g.mu.Lock()
		delete(g.waiters, tx.ID)
		g.mu.Unlock()
	}
	if err := g.orderer.Broadcast(tx); err != nil {
		release()
		return peer.CommitEvent{}, fmt.Errorf("gateway %s: broadcasting %s: %w", g.peer.Name(), tx.ID, err)
	}
	select {
	case ev := <-wait:
		// Recorded on the peer's process clock, after the peer's commit
		// span (which starts at finalize entry) — so in the trace view the
		// gateway.submit span encloses the peer.commit span of its block.
		obs.Trace(tx.TraceID, "gateway.submit", start,
			"peer", g.peer.Name(), "txID", tx.ID, "channel", tx.ChannelID,
			"code", ev.Code.String())
		return ev, nil
	case <-g.done:
		release()
		return peer.CommitEvent{}, Errorf("submit", true, "gateway %s: peer event stream closed before %s committed", g.peer.Name(), tx.ID)
	case <-time.After(g.timeout):
		release()
		return peer.CommitEvent{}, Errorf("submit", false, "gateway %s: timed out waiting for commit of %s", g.peer.Name(), tx.ID)
	}
}
