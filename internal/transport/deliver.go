package transport

import (
	"errors"
	"fmt"
	"io"
	"time"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/peer"
)

// DeliverConfig tunes one peer×channel deliver loop.
type DeliverConfig struct {
	// ChannelID is the channel to follow.
	ChannelID string
	// Depth is the commit pipeline depth (peer.CommitPipeline): 0 commits
	// synchronously, >=1 prepares ahead.
	Depth int
	// Backoff is the first reconnect delay; it doubles per consecutive
	// failure up to MaxBackoff. Defaults: 10ms up to 640ms.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// MaxRetries bounds CONSECUTIVE retryable failures (a session that
	// commits a block resets the count); 0 means retry until Stop. Fatal
	// errors ignore it entirely.
	MaxRetries int
	// OnRetry, when set, observes each healed (retried) transport error —
	// fabricnet records these separately from fatal errors.
	OnRetry func(err error)
}

// DeliverToPeer runs one channel's deliver loop against p until the serving
// side shuts down cleanly (nil), stop closes (nil), or a fatal error occurs.
// Each session resumes at the peer's height+1; re-delivered blocks (numbers
// <= height, from at-least-once transports or Chaos duplication) flow into
// the commit pipeline, whose fast-forward path hash-verifies and skips them.
// A sequence gap (a number beyond the next expected) aborts the session as
// retryable — reconnecting re-opens at exactly the missing block. Retryable
// transport failures reconnect with exponential backoff; commit errors and
// other application decisions are fatal and surface to the caller.
func DeliverToPeer(tr Transport, p *peer.Peer, cfg DeliverConfig, stop <-chan struct{}) error {
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 64 * cfg.Backoff
	}
	backoff := cfg.Backoff
	retries := 0
	retry := func(err error) error {
		retries++
		if cfg.MaxRetries > 0 && retries > cfg.MaxRetries {
			return fmt.Errorf("deliver %s/%s: giving up after %d consecutive retries: %w",
				p.Name(), cfg.ChannelID, cfg.MaxRetries, err)
		}
		deliverRetries.Inc()
		if cfg.OnRetry != nil {
			cfg.OnRetry(err)
		}
		select {
		case <-stop:
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > cfg.MaxBackoff {
			backoff = cfg.MaxBackoff
		}
		return nil
	}
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		height, err := p.HeightOn(cfg.ChannelID)
		if err != nil {
			return fmt.Errorf("deliver %s/%s: %w", p.Name(), cfg.ChannelID, err)
		}
		stream, err := tr.Deliver(cfg.ChannelID, height+1)
		if err != nil {
			if Retryable(err) {
				if giveUp := retry(err); giveUp != nil {
					return giveUp
				}
				continue
			}
			return err
		}
		progressed, err := deliverSession(stream, p, cfg, stop)
		if progressed {
			retries = 0
			backoff = cfg.Backoff
		}
		if err == nil {
			return nil
		}
		if Retryable(err) {
			if giveUp := retry(err); giveUp != nil {
				return giveUp
			}
			continue
		}
		return err
	}
}

// deliverSession pumps one open stream into a fresh commit pipeline. It
// returns (progressed, err): progressed reports whether any block advanced
// the chain; err is nil on clean end (EOF or stop), retryable on a medium
// failure or sequence gap, fatal otherwise (commit errors included).
func deliverSession(stream BlockStream, p *peer.Peer, cfg DeliverConfig, stop <-chan struct{}) (bool, error) {
	// Unblock a waiting Recv when the caller stops us mid-session.
	sessionDone := make(chan struct{})
	defer close(sessionDone)
	go func() {
		select {
		case <-stop:
			stream.Close()
		case <-sessionDone:
		}
	}()
	defer stream.Close()

	feed := make(chan *ledger.Block)
	pipeDone := make(chan error, 1)
	go func() {
		pipeDone <- p.CommitPipeline(cfg.ChannelID, feed, cfg.Depth)
	}()

	height, err := p.HeightOn(cfg.ChannelID)
	if err != nil {
		close(feed)
		<-pipeDone
		return false, err
	}
	start := height + 1
	expected := start
	var sessionErr error
pump:
	for {
		b, err := stream.Recv()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				sessionErr = err
			}
			break
		}
		if num := b.Header.Number; num > expected {
			sessionErr = Errorf("deliver", true,
				"sequence gap on %s: got block %d, expected %d", cfg.ChannelID, num, expected)
			break
		} else if num == expected {
			expected++
		}
		// num <= expected: feed it through — the pipeline's fast-forward
		// path hash-verifies and skips already-committed numbers.
		select {
		case feed <- b:
		case <-stop:
			break pump
		}
	}
	// CommitPipeline drains the feed after poisoning on error, so this close
	// is never stuck and its error (the FIRST commit failure) is complete.
	close(feed)
	perr := <-pipeDone
	endHeight, _ := p.HeightOn(cfg.ChannelID)
	progressed := endHeight+1 > start
	if perr != nil {
		// The application rejected a block: fatal, reconnecting cannot help.
		return progressed, perr
	}
	return progressed, sessionErr
}
