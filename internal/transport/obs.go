package transport

import "fabriccrdt/internal/obs"

// Process-global counters on the Default registry: one process may host
// many Nodes and deliver loops, but the call volume is a per-process
// property, so the counters live beside the wire transport's rather than
// on any one Node.
var (
	callsDeliver   = obs.Default().Counter(obs.MetricTransportCalls, "op", "deliver")
	callsBroadcast = obs.Default().Counter(obs.MetricTransportCalls, "op", "broadcast")
	callsEndorse   = obs.Default().Counter(obs.MetricTransportCalls, "op", "endorse")
	callsSubmit    = obs.Default().Counter(obs.MetricTransportCalls, "op", "submit")
	deliverRetries = obs.Default().Counter(obs.MetricDeliverRetries)
)
