package transport

import (
	"sync"
	"time"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/peer"
)

// ChaosConfig scripts the faults a Chaos middleware injects into the
// Deliver stream. Faults are deterministic — keyed to the running count of
// blocks received through the middleware, across all its streams — so a
// test run injects the same faults every time. Zero fields inject nothing.
type ChaosConfig struct {
	// DropNth silently drops every Nth received block — the consumer sees
	// a sequence gap and must reconnect.
	DropNth int
	// DuplicateNth delivers every Nth received block twice — at-least-once
	// delivery; the consumer's fast-forward dedup absorbs it.
	DuplicateNth int
	// ReorderNth swaps every Nth received block with its successor — the
	// consumer sees a future block first (a gap) and must reconnect.
	ReorderNth int
	// TamperNth corrupts every Nth received block's data hash (on a
	// private copy). Framing and sequencing stay valid, so this models a
	// lying or broken source — the peer's hash-chain verification must
	// reject it FATALLY, never reconnect-loop on it.
	TamperNth int
	// DisconnectEvery severs the stream (a retryable error, after closing
	// the inner stream) after every N received blocks — the mid-stream
	// disconnect the deliver loop must heal by reconnecting.
	DisconnectEvery int
	// MaxFaults bounds the total faults injected (0 = unlimited); tests
	// use it to guarantee convergence.
	MaxFaults int
	// Delay sleeps this long before delivering each block (latency
	// injection).
	Delay time.Duration
}

// Chaos is fault-injecting middleware over any Transport: it perturbs the
// Deliver stream per its config and passes the unary streams through
// untouched. It is how the conformance suite proves a consumer loop
// survives a hostile medium on BOTH transports, and how fabricnet's
// fault-injection tests sever a live peer's block stream mid-flight
// (fabricnet.Config.TransportWrap).
type Chaos struct {
	inner Transport
	cfg   ChaosConfig

	mu     sync.Mutex
	recv   int // blocks received through the middleware, all streams
	faults int // faults injected so far
}

// NewChaos wraps inner with the scripted fault injection.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	return &Chaos{inner: inner, cfg: cfg}
}

// Faults returns how many faults have been injected.
func (c *Chaos) Faults() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faults
}

// chaosFault is the per-block fault decision.
type chaosFault int

const (
	faultNone chaosFault = iota
	faultDrop
	faultDuplicate
	faultReorder
	faultTamper
	faultDisconnect
)

// decide counts one received block and picks its fault, respecting the
// fault budget. Disconnects take precedence (they are the coarsest), then
// drop, duplicate, reorder, tamper.
func (c *Chaos) decide() chaosFault {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recv++
	if c.cfg.MaxFaults > 0 && c.faults >= c.cfg.MaxFaults {
		return faultNone
	}
	nth := func(n int) bool { return n > 0 && c.recv%n == 0 }
	var f chaosFault
	switch {
	case nth(c.cfg.DisconnectEvery):
		f = faultDisconnect
	case nth(c.cfg.DropNth):
		f = faultDrop
	case nth(c.cfg.DuplicateNth):
		f = faultDuplicate
	case nth(c.cfg.ReorderNth):
		f = faultReorder
	case nth(c.cfg.TamperNth):
		f = faultTamper
	default:
		return faultNone
	}
	c.faults++
	return f
}

// Deliver opens the inner stream wrapped with fault injection.
func (c *Chaos) Deliver(channelID string, from uint64) (BlockStream, error) {
	s, err := c.inner.Deliver(channelID, from)
	if err != nil {
		return nil, err
	}
	return &chaosStream{c: c, inner: s}, nil
}

// Broadcast passes through.
func (c *Chaos) Broadcast(tx *ledger.Transaction) error { return c.inner.Broadcast(tx) }

// Endorse passes through.
func (c *Chaos) Endorse(prop peer.Proposal) (peer.ProposalResponse, error) {
	return c.inner.Endorse(prop)
}

// Submit passes through.
func (c *Chaos) Submit(tx *ledger.Transaction) (peer.CommitEvent, error) {
	return c.inner.Submit(tx)
}

// Close closes the inner transport.
func (c *Chaos) Close() error { return c.inner.Close() }

// chaosStream injects the scripted faults into one Deliver stream.
type chaosStream struct {
	c     *Chaos
	inner BlockStream

	mu sync.Mutex
	// queued holds a block to deliver before reading the inner stream
	// again (the duplicate's second copy, or the held-back half of a
	// reorder).
	queued *ledger.Block
	// deferred is an inner-stream error to surface after queued drains (a
	// reorder lookahead that hit the stream end).
	deferred error
}

// Recv applies the fault schedule to the inner stream.
func (s *chaosStream) Recv() (*ledger.Block, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queued != nil {
		b := s.queued
		s.queued = nil
		return b, nil
	}
	if s.deferred != nil {
		err := s.deferred
		s.deferred = nil
		return nil, err
	}
	for {
		b, err := s.inner.Recv()
		if err != nil {
			return nil, err
		}
		if s.c.cfg.Delay > 0 {
			time.Sleep(s.c.cfg.Delay)
		}
		switch s.c.decide() {
		case faultDrop:
			continue
		case faultDuplicate:
			s.queued = b
			return b, nil
		case faultReorder:
			next, err := s.inner.Recv()
			if err != nil {
				// Stream ended under the lookahead: deliver the held block
				// now, surface the end on the next Recv.
				s.deferred = err
				return b, nil
			}
			s.queued = b
			return next, nil
		case faultTamper:
			return tamperBlock(b), nil
		case faultDisconnect:
			s.inner.Close()
			return nil, Errorf("deliver", true, "chaos: connection severed mid-stream")
		default:
			return b, nil
		}
	}
}

// Close closes the inner stream.
func (s *chaosStream) Close() error { return s.inner.Close() }

// tamperBlock corrupts a PRIVATE copy of the block's data hash — the
// original may be shared with other consumers of an in-process history.
func tamperBlock(b *ledger.Block) *ledger.Block {
	raw, err := b.Marshal()
	if err != nil {
		return b
	}
	copied, err := ledger.UnmarshalBlock(raw)
	if err != nil {
		return b
	}
	if len(copied.Header.DataHash) > 0 {
		copied.Header.DataHash[0] ^= 0xFF
	} else {
		copied.Header.DataHash = []byte{0xFF}
	}
	return copied
}

// Compile-time interface checks.
var (
	_ Transport = (*Chaos)(nil)
	_ Transport = (*Node)(nil)
)
