package transport

import (
	"fmt"
	"io"
	"sync"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/obs"
)

// History is one channel's retained block sequence plus its live tail —
// the server side of every Deliver stream. Producers append (or advance)
// exactly once per committed block; each consumer streams through its own
// cursor, so a slow or stuck consumer lags behind without ever applying
// backpressure to the producer or to other consumers (the unbounded
// per-subscriber handoff discipline of DESIGN.md §7, expressed as a shared
// log + cursors instead of per-subscriber queues).
//
// Two backings exist:
//
//   - NewHistory(base): in-memory — Append retains every block. The
//     ordering node uses this; its process lifetime bounds the memory.
//   - NewSourceHistory(src): backed by a ledger.BlockSource (a peer's
//     chain over its durable block store) — blocks are fetched on demand
//     and Advance publishes each newly committed height. A restarted peer
//     therefore serves its FULL history over the wire (SyncFrom's source
//     path) without holding it in memory twice.
type History struct {
	mu   sync.Mutex
	cond *sync.Cond

	// base is the number of the first block this history can serve.
	base uint64
	// next is the number the next published block will carry; blocks in
	// [base, next) are readable.
	next uint64
	// mem holds the retained blocks (mem[i] is block base+i) for the
	// in-memory backing; nil when src serves reads.
	mem []*ledger.Block
	src ledger.BlockSource

	// streams tracks open cursors so scrape-time gauges can report how
	// many consumers follow this history and how far the slowest lags.
	streams map[*historyStream]struct{}
	// label names the history (its channel ID) in queue high-water
	// warnings; set by SetLabel.
	label string

	closed bool
}

// NewHistory returns an empty in-memory history whose first block will be
// numbered base (base = checkpoint+1 on a resumed channel, 1 on a fresh
// one — the genesis block is constructed locally by every peer, never
// delivered).
func NewHistory(base uint64) *History {
	h := &History{base: base, next: base}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// NewSourceHistory returns a history serving blocks [1, src.Height()) from
// the given source — a peer's chain backed by its durable block store.
// Advance (or Append) publishes later blocks as they commit; reads always
// go through the source, which must cover every published number.
func NewSourceHistory(src ledger.BlockSource) *History {
	h := &History{base: 1, next: src.Height(), src: src}
	if h.next < 1 {
		h.next = 1
	}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// Append publishes the next block. It never blocks on consumers. The block
// must carry the next number in sequence; with a source backing, only the
// number is recorded (the source already holds the body by commit time).
func (h *History) Append(b *ledger.Block) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	if b.Header.Number != h.next {
		return fmt.Errorf("transport: history append out of sequence: block %d, next is %d", b.Header.Number, h.next)
	}
	if h.src == nil {
		h.mem = append(h.mem, b)
	}
	h.next++
	h.cond.Broadcast()
	obs.WarnQueueDepth("history_lag", h.label, int(h.maxLagLocked()))
	return nil
}

// SetLabel names the history (normally its channel ID) in lag high-water
// warnings. Call before serving traffic.
func (h *History) SetLabel(label string) {
	h.mu.Lock()
	h.label = label
	h.mu.Unlock()
}

// Streams returns the number of open cursors. Intended as a scrape-time
// gauge callback.
func (h *History) Streams() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.streams)
}

// MaxLag returns how many published blocks the slowest open cursor has
// not yet consumed — the history's analogue of a handoff-queue depth.
// Intended as a scrape-time gauge callback.
func (h *History) MaxLag() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.maxLagLocked()
}

func (h *History) maxLagLocked() uint64 {
	var max uint64
	for s := range h.streams {
		if !s.closed && s.cursor < h.next {
			if lag := h.next - s.cursor; lag > max {
				max = lag
			}
		}
	}
	return max
}

// Advance publishes every block below height+1 (source backing): after
// Advance(n), Stream consumers can read through block n. A no-op when the
// history already covers it.
func (h *History) Advance(height uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if height+1 > h.next {
		h.next = height + 1
		h.cond.Broadcast()
	}
}

// Height returns the number of the last published block (base-1 when
// empty).
func (h *History) Height() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next - 1
}

// Base returns the first servable block number.
func (h *History) Base() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.base
}

// Close ends the history: every stream delivers the blocks already
// published, then returns io.EOF. Further appends fail.
func (h *History) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	h.cond.Broadcast()
}

// Stream opens a cursor at block number from. Opening below the retained
// base is an error (that history is gone — a peer that far behind syncs
// from a peer's source-backed history instead); opening beyond the tail is
// fine, the stream waits for the tail to reach it.
func (h *History) Stream(from uint64) (BlockStream, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if from < h.base {
		return nil, Errorf("deliver", false, "history starts at block %d, cannot deliver from %d", h.base, from)
	}
	s := &historyStream{h: h, cursor: from}
	if h.streams == nil {
		h.streams = make(map[*historyStream]struct{})
	}
	h.streams[s] = struct{}{}
	return s, nil
}

// historyStream is one consumer's cursor into a History. Its fields are
// guarded by the history's mutex (Recv already holds it to wait on the
// tail).
type historyStream struct {
	h      *History
	cursor uint64
	closed bool
}

// Recv returns the block at the cursor, waiting for the tail when the
// cursor has caught up. io.EOF after the history closes and the cursor
// passes the last published block, or after Close on the stream itself.
func (s *historyStream) Recv() (*ledger.Block, error) {
	h := s.h
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if s.closed {
			return nil, io.EOF
		}
		if s.cursor < h.next {
			var b *ledger.Block
			if h.src != nil {
				var err error
				b, err = h.src.Get(s.cursor)
				if err != nil {
					return nil, Errorf("deliver", false, "history source: block %d: %v", s.cursor, err)
				}
			} else {
				b = h.mem[s.cursor-h.base]
			}
			s.cursor++
			return b, nil
		}
		if h.closed {
			return nil, io.EOF
		}
		h.cond.Wait()
	}
}

// Close releases the cursor; a blocked Recv returns io.EOF.
func (s *historyStream) Close() error {
	s.h.mu.Lock()
	s.closed = true
	delete(s.h.streams, s)
	s.h.cond.Broadcast()
	s.h.mu.Unlock()
	return nil
}
