package fabricnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/peer"
)

// TestLatePeerSyncsFromRunningPeer exercises the state-transfer path: a
// peer that missed the whole run catches up from another peer and arrives
// at identical state, chain and CRDT documents.
func TestLatePeerSyncsFromRunningPeer(t *testing.T) {
	n := newNet(t, 7, true)
	n.Start()
	c, err := n.NewClient("Org1", "client0", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("dev"), []byte(fmt.Sprintf("%d", i))); err != nil {
				t.Errorf("tx %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}

	source := n.Peers()[0]

	// A brand-new peer (fresh CA identity, same MSP roots) joins late.
	ca, err := cryptoid.NewCA("Org1")
	if err != nil {
		t.Fatal(err)
	}
	signer, err := ca.Issue("Org1.late")
	if err != nil {
		t.Fatal(err)
	}
	late, err := peer.New(peer.Config{
		Name: "Org1.late", MSPID: "Org1", ChannelID: "channel1", EnableCRDT: true,
	}, signer, n.msp)
	if err != nil {
		t.Fatal(err)
	}
	late.InstallChaincode("iot", iotCC(), endorse.MustParse(testPolicy))

	if err := late.SyncFrom(source); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if late.Chain().Height() != source.Chain().Height() {
		t.Fatalf("height %d vs %d", late.Chain().Height(), source.Chain().Height())
	}
	gotVV, ok := late.DB().Get("dev")
	if !ok {
		t.Fatal("late peer missing dev")
	}
	wantVV, _ := source.DB().Get("dev")
	if string(gotVV.Value) != string(wantVV.Value) || gotVV.Version != wantVV.Version {
		t.Fatal("late peer state diverged from source")
	}
	if err := late.Chain().Verify(); err != nil {
		t.Fatalf("late peer chain: %v", err)
	}
	// Re-syncing is a no-op.
	if err := late.SyncFrom(source); err != nil {
		t.Fatalf("re-sync: %v", err)
	}
}

// TestPeerRestartMidStream stops consuming on one peer's world state by
// rebuilding it mid-run, then checks it converges with the rest.
func TestPeerRestartRebuildConverges(t *testing.T) {
	n := newNet(t, 5, true)
	n.Start()
	c, err := n.NewClient("Org2", "client0", []string{"Org2"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("dev"), []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n.Stop()
	victim := n.Peers()[3]
	before, _ := victim.DB().Get("dev")
	if err := victim.RebuildState(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	after, ok := victim.DB().Get("dev")
	if !ok || string(after.Value) != string(before.Value) {
		t.Fatal("rebuild changed state")
	}
	// And it still matches every other peer.
	for _, p := range n.Peers() {
		vv, _ := p.DB().Get("dev")
		if string(vv.Value) != string(after.Value) {
			t.Fatalf("peer %s diverged after victim rebuild", p.Name())
		}
	}
}

// TestInvalidCRDTDeltaFailsOnlyThatTx injects a transaction whose CRDT
// value is not a JSON object; it must fail with INVALID_CRDT_VALUE while
// the rest of the block commits.
func TestInvalidCRDTDeltaFailsOnlyThatTx(t *testing.T) {
	n := newNet(t, 10, true)
	badCC := chaincodeWriting(`"just a string"`)
	if err := n.InstallChaincode("bad", badCC, testPolicy); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	c, err := n.NewClient("Org1", "client0", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}

	results := make(chan error, 2)
	codes := make(chan ledger.ValidationCode, 2)
	go func() {
		code, err := c.SubmitAndWait(10*time.Second, "bad", []byte("x"))
		codes <- code
		results <- err
	}()
	go func() {
		code, err := c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("dev"), []byte("21"))
		codes <- code
		results <- err
	}()
	var gotInvalid, gotMerged bool
	for i := 0; i < 2; i++ {
		code := <-codes
		<-results
		switch code {
		case ledger.CodeInvalidCRDT:
			gotInvalid = true
		case ledger.CodeCRDTMerged:
			gotMerged = true
		}
	}
	if !gotInvalid || !gotMerged {
		t.Fatalf("invalid=%v merged=%v — want one of each", gotInvalid, gotMerged)
	}
}

// chaincodeWriting returns a chaincode that writes the given raw bytes as a
// CRDT value.
func chaincodeWriting(raw string) chaincode.Chaincode {
	return chaincode.Func(func(stub chaincode.Stub) error {
		return stub.PutCRDT("poison", []byte(raw))
	})
}
