package fabricnet

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/orderer"
	"fabriccrdt/internal/peer"
)

// poisonChannel commits a forged block 1 directly on one peer's channel,
// out of band. When the orderer later delivers the real block 1, that
// peer's committer fails ("re-delivered block 1 does not match the
// committed block") — a deterministic mid-stream commit failure on one
// (peer, channel) pair while every other peer stays healthy.
func poisonChannel(t *testing.T, p *peer.Peer, channelID string) {
	t.Helper()
	chain, err := p.ChainOn(channelID)
	if err != nil {
		t.Fatal(err)
	}
	forged := &ledger.Transaction{ID: "forged-poison", ChannelID: channelID, Chaincode: "iot"}
	a := orderer.NewAssembler(chain.Last())
	block, err := a.Assemble(orderer.Batch{Transactions: []*ledger.Transaction{forged}, Reason: orderer.CutFlush})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CommitBlockOn(channelID, block); err != nil {
		t.Fatalf("committing forged block: %v", err)
	}
}

// runOrFatal fails the test if fn does not return in time — the shape of
// the deadlock regressions: before the fix these paths hung forever.
func runOrFatal(t *testing.T, d time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not return within %v (delivery wedged)", what, d)
	}
}

// TestCommitterFailureDoesNotWedgeNetwork is the deadlock regression from
// DESIGN.md §7: one peer's committer fails on the first delivered block,
// and the network keeps running. Before the fix the failed committer
// stopped reading its deliver channel; once the orderer had cut 64 more
// blocks its fan-out blocked under the service mutex and every Broadcast
// (so every submission), Flush and Stop on the channel hung. The 80
// single-transaction blocks exceed that old buffer with margin.
func TestCommitterFailureDoesNotWedgeNetwork(t *testing.T) {
	n := newNet(t, 1, true) // block size 1: one block per transaction
	victim, err := n.Peer("Org3.peer1")
	if err != nil {
		t.Fatal(err)
	}
	poisonChannel(t, victim, n.DefaultChannel())
	n.Start()

	c, err := n.NewClient("Org1", "client0", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	const total = 80
	runOrFatal(t, 60*time.Second, fmt.Sprintf("%d submissions", total), func() {
		var wg sync.WaitGroup
		for i := 0; i < total; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := c.SubmitAndWait(30*time.Second, "iot", []byte("record"), []byte("dev"), []byte(fmt.Sprintf("%d", i))); err != nil {
					t.Errorf("tx %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
	})
	runOrFatal(t, 10*time.Second, "Stop", n.Stop)

	err = n.Err()
	if err == nil {
		t.Fatal("Err() = nil, want the victim's commit failure")
	}
	if !strings.Contains(err.Error(), victim.Name()) {
		t.Fatalf("Err() = %v, want it to name %s", err, victim.Name())
	}

	// The healthy peers converged at 80 committed blocks; the victim is
	// stuck at its forged block 1 (it drained, never committed).
	for _, p := range n.Peers() {
		want := uint64(total)
		if p == victim {
			want = 1
		}
		if got := p.Height(); got != want {
			t.Errorf("peer %s height = %d, want %d", p.Name(), got, want)
		}
	}
}

// TestChannelFaultIsolationOnFailure: a commit failure on one channel of
// one peer must not disturb the other channel anywhere — per-channel fault
// isolation of the delivery pipelines. Run with -race in CI.
func TestChannelFaultIsolationOnFailure(t *testing.T) {
	n := newMultiNet(t, 1, peer.CommitterConfig{Pipeline: 2}, "ch1", "ch2")
	victim, err := n.Peer("Org3.peer1")
	if err != nil {
		t.Fatal(err)
	}
	poisonChannel(t, victim, "ch1")
	n.Start()

	const perChannel = 20
	var wg sync.WaitGroup
	for _, chID := range []string{"ch1", "ch2"} {
		c, err := n.NewClientOn(chID, "Org1", "client-"+chID, []string{"Org1"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perChannel; i++ {
			wg.Add(1)
			go func(chID string, i int) {
				defer wg.Done()
				if _, err := c.SubmitAndWait(30*time.Second, "iot", []byte("record"), []byte("dev-"+chID), []byte(fmt.Sprintf("%d", i))); err != nil {
					t.Errorf("%s tx %d: %v", chID, i, err)
				}
			}(chID, i)
		}
	}
	runOrFatal(t, 60*time.Second, "submissions", wg.Wait)
	runOrFatal(t, 10*time.Second, "Stop", n.Stop)

	err = n.Err()
	if err == nil {
		t.Fatal("Err() = nil, want the ch1 commit failure")
	}
	if !strings.Contains(err.Error(), "ch1") || !strings.Contains(err.Error(), victim.Name()) {
		t.Fatalf("Err() = %v, want it to name ch1 and %s", err, victim.Name())
	}

	// ch2 converged everywhere — including on the victim.
	ref, _ := n.Peers()[0].DBOn("ch2")
	want, ok := ref.Get("dev-ch2")
	if !ok {
		t.Fatal("dev-ch2 missing on reference peer")
	}
	for _, p := range n.Peers() {
		h, err := p.HeightOn("ch2")
		if err != nil {
			t.Fatal(err)
		}
		if h != perChannel {
			t.Errorf("peer %s ch2 height = %d, want %d", p.Name(), h, perChannel)
		}
		db, err := p.DBOn("ch2")
		if err != nil {
			t.Fatal(err)
		}
		got, ok := db.Get("dev-ch2")
		if !ok || string(got.Value) != string(want.Value) {
			t.Errorf("peer %s ch2 state diverged", p.Name())
		}
		chain, err := p.ChainOn("ch2")
		if err != nil {
			t.Fatal(err)
		}
		if err := chain.Verify(); err != nil {
			t.Errorf("peer %s ch2 chain: %v", p.Name(), err)
		}
		// ch1 on the victim is stuck at the forged block; elsewhere fine.
		h1, _ := p.HeightOn("ch1")
		if p == victim {
			if h1 != 1 {
				t.Errorf("victim ch1 height = %d, want 1 (stuck at forged block)", h1)
			}
		} else if h1 != perChannel {
			t.Errorf("peer %s ch1 height = %d, want %d", p.Name(), h1, perChannel)
		}
	}
}

// TestPipelinedNetworkConverges runs the standard conflicting workload
// through a network with a depth-2 commit pipeline on every (peer,
// channel) pair: everything commits, all peers converge, no errors — the
// end-to-end check that pipelining changes scheduling, not outcomes.
func TestPipelinedNetworkConverges(t *testing.T) {
	cfg := PaperConfig(10, true)
	cfg.Orderer.BatchTimeout = 100 * time.Millisecond
	cfg.Committer = peer.CommitterConfig{Workers: 2, Pipeline: 2}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallChaincode("iot", iotCC(), testPolicy); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	c, err := n.NewClient("Org1", "client0", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("dev1"), []byte(fmt.Sprintf("%d", i))); err != nil {
				t.Errorf("tx %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
	ref := n.Peers()[0]
	want, ok := ref.DB().Get("dev1")
	if !ok {
		t.Fatal("dev1 missing")
	}
	for _, p := range n.Peers()[1:] {
		got, ok := p.DB().Get("dev1")
		if !ok || string(got.Value) != string(want.Value) {
			t.Fatalf("peer %s diverged under pipelining", p.Name())
		}
		if p.Chain().Height() != ref.Chain().Height() {
			t.Fatalf("peer %s height %d vs %d", p.Name(), p.Chain().Height(), ref.Chain().Height())
		}
	}
	// The pipelined run actually overlapped prepare work with commits.
	var sawOverlap bool
	for _, s := range ref.CommitTimings() {
		if s.Stage == peer.StageOverlap && s.Count > 0 {
			sawOverlap = true
		}
	}
	if !sawOverlap {
		t.Log("no overlap observations recorded (slow host or no back-to-back blocks) — scheduling-dependent, not an error")
	}
}
