// Observability tests for the assembled network: the registries a metrics
// server would merge, and span accounting under transport chaos.
package fabricnet

import (
	"bytes"
	"testing"
	"time"

	"fabriccrdt/internal/obs"
	"fabriccrdt/internal/peer"
	"fabriccrdt/internal/transport"
)

// TestNetworkRegistriesRenderValidExposition asserts the in-process
// network's merged registries (what -metrics-addr serves) render a valid
// Prometheus exposition containing the commit-path histograms and
// queue-depth gauges after a run.
func TestNetworkRegistriesRenderValidExposition(t *testing.T) {
	cfg := PaperConfig(5, true)
	cfg.Orderer.BatchTimeout = 50 * time.Millisecond
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallChaincode("iot", iotCC(), testPolicy); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	submitAll(t, n, 10)

	var buf bytes.Buffer
	if err := obs.Render(&buf, n.Registries()...); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("merged registries render malformed exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		obs.MetricCommitStageSeconds + "_bucket",
		obs.MetricPeerBlockHeight,
		obs.MetricPeerBlocksCommitted,
		obs.MetricOrdererQueueDepth,
		obs.MetricHistoryLagBlocks,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// waitHeightsEqual polls until every peer reports the same height on its
// default channel (the chaos-afflicted peer catching up after a heal).
func waitHeightsEqual(t *testing.T, peers []*peer.Peer, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		heights := make([]uint64, len(peers))
		for i, p := range peers {
			h, err := p.HeightOn(p.Channels()[0])
			if err != nil {
				t.Fatal(err)
			}
			heights[i] = h
		}
		equal := heights[0] > 0
		for _, h := range heights[1:] {
			equal = equal && h == heights[0]
		}
		if equal {
			return
		}
		if time.Now().After(deadline) {
			for _, p := range peers {
				h, _ := p.HeightOn(p.Channels()[0])
				t.Logf("peer %s at height %d", p.Name(), h)
			}
			t.Fatal("peers did not converge to a common height")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosDoesNotCorruptSpanAccounting is the ISSUE 8 conformance case:
// duplicated and dropped frames on one peer's deliver stream must not
// duplicate or lose commit spans. Re-delivered blocks fast-forward without
// re-committing (and without re-emitting spans), so every (trace, peer)
// pair records EXACTLY one peer.commit span even under faults.
func TestChaosDoesNotCorruptSpanAccounting(t *testing.T) {
	tracer := obs.NewTracer("fabricnet-test")
	obs.SetDefaultTracer(tracer)
	defer obs.SetDefaultTracer(nil)

	cfg := PaperConfig(5, true)
	cfg.Orderer.BatchTimeout = 50 * time.Millisecond
	var chaos *transport.Chaos
	cfg.TransportWrap = func(peerName, channelID string, tr transport.Transport) transport.Transport {
		if peerName != "Org3.peer1" {
			return tr
		}
		// Drop an EARLY block (the gap a later block exposes, forcing a
		// reconnect + redelivery) and duplicate others; capped so the last
		// blocks flow clean and the run converges.
		chaos = transport.NewChaos(tr, transport.ChaosConfig{DuplicateNth: 2, DropNth: 3, MaxFaults: 3})
		return chaos
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallChaincode("iot", iotCC(), testPolicy); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	const txs = 25
	submitAll(t, n, txs)
	// SubmitAndWait only proves the gateway peer committed; give the
	// chaos-afflicted peer time to heal its stream and catch up to the
	// common height before stopping.
	waitHeightsEqual(t, n.Peers(), 10*time.Second)
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatalf("healed chaos faults must not fail the run: %v", err)
	}
	if chaos == nil || chaos.Faults() == 0 {
		t.Fatal("chaos injected no faults — nothing was proven")
	}
	assertConverged(t, n.Peers())

	// Every transaction minted a trace; every peer must have recorded
	// exactly one commit span for it — a duplicate-delivered block that
	// re-emitted spans would show 2, a dropped-and-lost one 0.
	type key struct{ trace, peer string }
	commits := make(map[key]int)
	traces := make(map[string]bool)
	for _, sp := range tracer.Spans() {
		switch sp.Name {
		case "client.prepare":
			traces[sp.TraceID] = true
		case "peer.commit":
			commits[key{sp.TraceID, sp.Attrs["peer"]}]++
		}
	}
	if len(traces) != txs {
		t.Fatalf("got %d distinct traces, want %d", len(traces), txs)
	}
	for id := range traces {
		for _, p := range n.Peers() {
			if got := commits[key{id, p.Name()}]; got != 1 {
				t.Fatalf("trace %s on peer %s: %d commit spans, want exactly 1 (faults=%d)",
					id, p.Name(), got, chaos.Faults())
			}
		}
	}
}
