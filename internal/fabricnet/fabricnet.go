// Package fabricnet assembles complete in-process networks — organizations
// with CAs, peers, and one ordering service per channel — in the paper's
// topology (§7.2: three organizations, two peers each, one orderer, one
// channel) and wires the live delivery pipeline: each channel's orderer
// deliver channels feed one committer pipeline per (peer, channel) pair
// (peer.CommitPipeline — optionally preparing blocks ahead of the
// serialized commit stage, Config.Committer.Pipeline).
//
// Channels are the unit of sharding (Config.Channels): every channel has
// its own ordering service, block numbering, and per-peer commit runtime,
// so N channels order and commit fully in parallel with zero cross-channel
// coordination (DESIGN.md §6). The default remains the paper's single
// "channel1".
//
// The deliver loops need no restart special-casing: a peer whose world
// state already covers a delivered block (its channel height at or above
// the block number — a disk-backed peer rebuilt over its data directory)
// fast-forwards it inside CommitBlockOn instead of re-validating it.
//
// Since the wire-transport refactor, delivery flows through the
// transport.Transport interface: each channel's orderer subscription feeds
// one transport.History, the network's transport.Node serves Deliver and
// Broadcast from those histories and services, and every (peer, channel)
// pair runs transport.DeliverToPeer against it — the SAME loop a remote
// peer process runs against a wire client. Config.TransportWrap interposes
// middleware (transport.Chaos in the fault-injection tests) between the
// loop and the node. Transport failures the loop heals by reconnecting are
// recorded separately (TransportRetries); only fatal errors — commit
// failures, subscription failures, close failures — reach Err.
package fabricnet

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/channel"
	"fabriccrdt/internal/client"
	"fabriccrdt/internal/core"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/obs"
	"fabriccrdt/internal/orderer"
	"fabriccrdt/internal/peer"
	"fabriccrdt/internal/transport"
)

// OrgConfig describes one organization.
type OrgConfig struct {
	MSPID string
	Peers int
}

// Config describes a network.
type Config struct {
	// ChannelID is the single-channel convenience knob; ignored when
	// Channels is set.
	ChannelID string
	// Channels lists every channel the network runs — each gets its own
	// ordering service and, on every peer, its own commit pipeline and
	// state backend. The first entry is the default channel that
	// single-channel APIs (Orderer, NewClient) bind to. Names must be
	// unique and non-empty; empty falls back to [ChannelID].
	Channels []string
	Orgs     []OrgConfig
	Orderer  orderer.Config
	// EnableCRDT makes every peer a FabricCRDT peer; off = stock Fabric.
	EnableCRDT bool
	// EngineOptions tunes the merge engine on every peer.
	EngineOptions core.Options
	// Committer tunes every peer's staged commit pipeline (validation
	// worker pool, statedb backend selection and sharding). With a durable
	// Backend (peer.BackendDisk or peer.BackendLSM), Committer.DataDir is
	// the shared root directory; each peer persists under
	// DataDir/<peer-name> (and each
	// channel under DataDir/<peer-name>/<channel-ID>), so rebuilding a
	// network over the same root restores every peer's world state and
	// per-channel resume heights.
	Committer peer.CommitterConfig
	// TransportWrap, when set, interposes middleware between each
	// (peer, channel) deliver loop and the network's transport — the
	// fault-injection tests wrap transport.Chaos here to sever, drop,
	// duplicate and corrupt a live peer's block stream.
	TransportWrap func(peerName, channelID string, tr transport.Transport) transport.Transport
	// DeliverMaxRetries bounds each deliver loop's CONSECUTIVE healed
	// reconnects before it gives up fatally; 0 retries until the channel
	// shuts down cleanly.
	DeliverMaxRetries int
}

// channelIDs resolves the configured channel list; a config naming no
// channel at all gets the single default channel (matching peer.New).
func (c Config) channelIDs() []string {
	if len(c.Channels) > 0 {
		return c.Channels
	}
	if c.ChannelID != "" {
		return []string{c.ChannelID}
	}
	return []string{channel.DefaultChannel}
}

// PaperConfig returns the paper's fixed evaluation topology (§7.2) with the
// given block size: 3 organizations × 2 peers, one channel.
func PaperConfig(maxBlockTxs int, enableCRDT bool) Config {
	return Config{
		ChannelID: channel.DefaultChannel,
		Orgs: []OrgConfig{
			{MSPID: "Org1", Peers: 2},
			{MSPID: "Org2", Peers: 2},
			{MSPID: "Org3", Peers: 2},
		},
		Orderer:    orderer.DefaultConfig(maxBlockTxs),
		EnableCRDT: enableCRDT,
	}
}

// Network is a running in-process Fabric/FabricCRDT network.
type Network struct {
	cfg       Config
	cas       map[string]*cryptoid.CA
	msp       *cryptoid.MSP
	peers     []*peer.Peer
	channels  *channel.Registry
	histories map[string]*transport.History
	node      *transport.Node
	reg       *obs.Registry

	mu      sync.Mutex
	started bool
	stopped bool
	feedWg  sync.WaitGroup // orderer-subscription → History feeders
	wg      sync.WaitGroup // deliver loops
	errMu   sync.Mutex
	errs    []error
	retries []error // transport failures healed by reconnecting
}

// New builds the network: CAs, peer identities, peers, and one ordering
// service per channel.
func New(cfg Config) (*Network, error) {
	registry, err := channel.NewRegistry(cfg.channelIDs()...)
	if err != nil {
		return nil, fmt.Errorf("fabricnet: %w", err)
	}
	if len(cfg.Orgs) == 0 {
		return nil, errors.New("fabricnet: no organizations")
	}
	n := &Network{
		cfg:       cfg,
		cas:       make(map[string]*cryptoid.CA, len(cfg.Orgs)),
		msp:       cryptoid.NewMSP(),
		channels:  registry,
		histories: make(map[string]*transport.History),
		reg:       obs.NewRegistry(),
	}
	for _, org := range cfg.Orgs {
		ca, err := cryptoid.NewCA(org.MSPID)
		if err != nil {
			return nil, fmt.Errorf("fabricnet: creating CA for %s: %w", org.MSPID, err)
		}
		n.cas[org.MSPID] = ca
		n.msp.AddOrg(org.MSPID, ca.PublicKey())
	}
	for _, org := range cfg.Orgs {
		for i := 0; i < org.Peers; i++ {
			name := fmt.Sprintf("%s.peer%d", org.MSPID, i)
			signer, err := n.cas[org.MSPID].Issue(name)
			if err != nil {
				return nil, fmt.Errorf("fabricnet: issuing identity for %s: %w", name, err)
			}
			committer := cfg.Committer
			durable := committer.Backend == peer.BackendDisk || committer.Backend == peer.BackendLSM
			if durable && committer.DataDir != "" {
				// Each peer owns a private store under the shared root —
				// one DataDir knob configures the whole network.
				committer.DataDir = filepath.Join(cfg.Committer.DataDir, name)
			}
			p, err := peer.New(peer.Config{
				Name:          name,
				MSPID:         org.MSPID,
				Channels:      registry.IDs(),
				EnableCRDT:    cfg.EnableCRDT,
				EngineOptions: cfg.EngineOptions,
				Committer:     committer,
			}, signer, n.msp)
			if err != nil {
				n.closePeers()
				return nil, fmt.Errorf("fabricnet: %w", err)
			}
			n.peers = append(n.peers, p)
		}
	}
	// Each channel's ordering service chains onto the peers' common resume
	// point for that channel: the genesis block for a fresh network, or the
	// durable chain checkpoint when every peer was rebuilt over an existing
	// data directory. Peers resuming one channel at different heights
	// cannot be reconciled here (the orderer holds no history to catch
	// stragglers up with), so that is an error. Channels resume
	// independently — one channel checkpointed at block 40 and another at
	// block 7 is the normal shape of a sharded network.
	for _, id := range registry.IDs() {
		refChain, err := n.peers[0].ChainOn(id)
		if err != nil {
			n.closePeers()
			return nil, fmt.Errorf("fabricnet: %w", err)
		}
		lastNum, lastHash := refChain.LastRef()
		for _, p := range n.peers[1:] {
			c, err := p.ChainOn(id)
			if err != nil {
				n.closePeers()
				return nil, fmt.Errorf("fabricnet: %w", err)
			}
			num, hash := c.LastRef()
			if num != lastNum || !bytes.Equal(hash, lastHash) {
				n.closePeers()
				return nil, fmt.Errorf("fabricnet: peers resume channel %s from diverging histories (%s at block %d hash %x, %s at block %d hash %x): remove the data directory or sync the stores",
					id, n.peers[0].Name(), lastNum, lastHash, p.Name(), num, hash)
			}
		}
		if _, err := registry.StartService(id, cfg.Orderer, lastNum, lastHash); err != nil {
			n.closePeers()
			return nil, fmt.Errorf("fabricnet: %w", err)
		}
		// The channel's retained history begins at the first block the
		// orderer will produce; everything below is already inside every
		// peer's resume point.
		n.histories[id] = transport.NewHistory(lastNum + 1)
	}
	broadcasts := make(map[string]transport.Broadcaster, len(registry.IDs()))
	for _, id := range registry.IDs() {
		svc, err := registry.Service(id)
		if err != nil {
			n.closePeers()
			return nil, fmt.Errorf("fabricnet: %w", err)
		}
		broadcasts[id] = svc
		// Delivery-plane gauges: the orderer fan-out queues and the History
		// cursors are the network's only unbounded buffers; both are read
		// live at scrape time (zero cost on the commit path).
		svc.SetLabel(id)
		h := n.histories[id]
		h.SetLabel(id)
		n.reg.GaugeFunc(obs.MetricOrdererQueueDepth,
			func() float64 { return float64(svc.QueueDepth()) }, "channel", id)
		n.reg.GaugeFunc(obs.MetricHistoryLagBlocks,
			func() float64 { return float64(h.MaxLag()) }, "channel", id)
		n.reg.GaugeFunc(obs.MetricHistoryStreams,
			func() float64 { return float64(h.Streams()) }, "channel", id)
	}
	n.node = &transport.Node{
		NodeInfo:   transport.Info{Name: "fabricnet", Channels: registry.IDs()},
		Histories:  n.histories,
		Broadcasts: broadcasts,
	}
	return n, nil
}

// Node returns the network's in-process transport endpoint: Deliver served
// from the per-channel histories, Broadcast routed to the per-channel
// ordering services. Tests serve it over a wire.Server to put the whole
// network behind real sockets.
func (n *Network) Node() *transport.Node { return n.node }

// Metrics returns the network's own registry (delivery-plane gauges). Most
// callers want Registries, the full exposition set.
func (n *Network) Metrics() *obs.Registry { return n.reg }

// Registries returns every registry an exposition of this network should
// merge: the process-global Default registry (wire/transport counters),
// the network's delivery-plane gauges, and each peer's commit-path
// registry. Hand the slice to obs.Render or obs.NewServer.
func (n *Network) Registries() []*obs.Registry {
	regs := []*obs.Registry{obs.Default(), n.reg}
	for _, p := range n.peers {
		regs = append(regs, p.Metrics())
	}
	return regs
}

// Peers returns all peers (ordered by organization, then index).
func (n *Network) Peers() []*peer.Peer { return n.peers }

// MSP returns the network's shared membership provider — tests and external
// processes joining the network's trust domain register their org roots
// here.
func (n *Network) MSP() *cryptoid.MSP { return n.msp }

// Peer returns the named peer.
func (n *Network) Peer(name string) (*peer.Peer, error) {
	for _, p := range n.peers {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fabricnet: unknown peer %q", name)
}

// AnchorPeer returns one peer per organization (the .peer0 of each).
func (n *Network) AnchorPeer(mspID string) (*peer.Peer, error) {
	return n.Peer(mspID + ".peer0")
}

// Channels returns the network's channel IDs in configuration order; the
// first is the default channel.
func (n *Network) Channels() []string { return n.channels.IDs() }

// DefaultChannel returns the channel single-channel APIs bind to.
func (n *Network) DefaultChannel() string { return n.channels.Default() }

// Orderer returns the default channel's ordering service.
func (n *Network) Orderer() *orderer.Service {
	svc, err := n.channels.Service(n.channels.Default())
	if err != nil {
		// The default channel's service is started in New; this is
		// unreachable on a constructed network.
		panic("fabricnet: default channel has no ordering service: " + err.Error())
	}
	return svc
}

// OrdererOn returns one channel's ordering service.
func (n *Network) OrdererOn(channelID string) (*orderer.Service, error) {
	return n.channels.Service(channelID)
}

// InstallChaincode installs a chaincode on every peer with the given
// endorsement policy expression; it is invocable on every channel.
func (n *Network) InstallChaincode(name string, cc chaincode.Chaincode, policyExpr string) error {
	policy, err := endorse.Parse(policyExpr)
	if err != nil {
		return fmt.Errorf("fabricnet: installing %q: %w", name, err)
	}
	for _, p := range n.peers {
		p.InstallChaincode(name, cc, policy)
	}
	return nil
}

// InstallChaincodeOn installs a chaincode on ONE channel of every peer:
// proposals and commits naming it on any other channel are rejected
// (ErrUnknownChaincode at endorsement, CodeEndorsementFailure at commit).
func (n *Network) InstallChaincodeOn(channelID, name string, cc chaincode.Chaincode, policyExpr string) error {
	policy, err := endorse.Parse(policyExpr)
	if err != nil {
		return fmt.Errorf("fabricnet: installing %q: %w", name, err)
	}
	for _, p := range n.peers {
		if err := p.InstallChaincodeOn(channelID, name, cc, policy); err != nil {
			return fmt.Errorf("fabricnet: installing %q: %w", name, err)
		}
	}
	return nil
}

// Start launches the delivery plane: one History feeder per channel (the
// orderer subscription drained into the channel's retained history — the
// orderer never sees a slow peer) and one transport.DeliverToPeer loop per
// (peer, channel) pair running against the network's Node, each with its
// own commit pipeline — channels deliver and commit independently, so a
// slow channel never stalls the others. Committer.Pipeline sets each
// pipeline's depth: 0 commits each block synchronously; N >= 1 decodes and
// endorsement-validates up to N delivered blocks ahead of the serialized
// commit stage (DESIGN.md §7).
//
// Failure discipline (the Err/TransportRetries split): a transport failure
// — severed stream, sequence gap, lost frame — is healed by the loop
// itself, which reconnects with backoff and resumes at the peer's height
// (re-delivered blocks fast-forward inside CommitBlockOn); each healed
// failure is recorded under TransportRetries. A COMMIT failure is an
// application decision: it ends that pair's loop, is recorded under Err,
// and the channel's history keeps flowing for everyone else, so an
// abandoned consumer never applies backpressure to delivery (the PR 4
// fan-out discipline, now enforced structurally by History cursors).
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	for _, id := range n.channels.IDs() {
		sub, err := n.channels.Subscribe(id)
		if err != nil {
			n.recordError(fmt.Errorf("channel %s: subscribing feeder: %w", id, err))
			n.histories[id].Close()
			continue
		}
		n.feedWg.Add(1)
		go func(id string, h *transport.History, sub <-chan *ledger.Block) {
			defer n.feedWg.Done()
			defer h.Close()
			for b := range sub {
				if err := h.Append(b); err != nil {
					n.recordError(fmt.Errorf("channel %s: feeding history: %w", id, err))
					return
				}
			}
		}(id, n.histories[id], sub)
		for _, p := range n.peers {
			var tr transport.Transport = n.node
			if n.cfg.TransportWrap != nil {
				tr = n.cfg.TransportWrap(p.Name(), id, tr)
			}
			dcfg := transport.DeliverConfig{
				ChannelID:  id,
				Depth:      n.cfg.Committer.Pipeline,
				MaxRetries: n.cfg.DeliverMaxRetries,
			}
			n.wg.Add(1)
			go func(p *peer.Peer, id string, tr transport.Transport, dcfg transport.DeliverConfig) {
				defer n.wg.Done()
				dcfg.OnRetry = func(err error) {
					n.recordRetry(fmt.Errorf("peer %s: channel %s: %w", p.Name(), id, err))
				}
				if err := transport.DeliverToPeer(tr, p, dcfg, nil); err != nil {
					n.recordError(fmt.Errorf("peer %s: channel %s: %w", p.Name(), id, err))
				}
			}(p, id, tr, dcfg)
		}
	}
}

func (n *Network) recordError(err error) {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	n.errs = append(n.errs, err)
}

func (n *Network) recordRetry(err error) {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	n.retries = append(n.retries, err)
}

// Err aggregates every FATAL failure — commit errors on any (peer, channel)
// pair, subscription failures, backend close errors — with errors.Join; nil
// when the run was clean. errors.Is/As see through the join, and the
// message lists every cause one per line. Transport failures that deliver
// loops healed by reconnecting are NOT here (a healed medium is not a
// failed run) — see TransportRetries.
func (n *Network) Err() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return errors.Join(n.errs...)
}

// TransportRetries returns every transport failure the deliver loops healed
// by reconnecting — severed streams, sequence gaps — in occurrence order.
// Diagnostics, not failures: a run with retries and a nil Err committed
// everything.
func (n *Network) TransportRetries() []error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return append([]error(nil), n.retries...)
}

// Stop flushes every channel's orderer, lets the feeders drain into the
// histories and close them, waits for every deliver loop to finish the
// retained tail, then closes peer event streams and releases peer state
// backends (flushing disk-backed world states).
func (n *Network) Stop() {
	n.mu.Lock()
	if !n.started || n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	n.channels.StopAll()
	n.feedWg.Wait()
	n.wg.Wait()
	for _, p := range n.peers {
		p.CloseEvents()
	}
	n.closePeers()
}

// closePeers releases every peer's state backends, recording the first
// failure (a disk backend surfaces deferred write errors on close).
func (n *Network) closePeers() {
	for _, p := range n.peers {
		if err := p.Close(); err != nil {
			n.recordError(fmt.Errorf("peer %s: closing state backend: %w", p.Name(), err))
		}
	}
}

// NewClient issues a fresh client identity bound to the default channel.
// See NewClientOn.
func (n *Network) NewClient(mspID, name string, endorserOrgs []string) (*client.Client, error) {
	return n.NewClientOn(n.channels.Default(), mspID, name, endorserOrgs)
}

// NewClientOn issues a fresh client identity from the organization's CA,
// bound to one channel, and wires it to endorsers satisfying the given
// policy organizations. The client's commit listener is attached to the
// organization's anchor peer (which filters events to the bound channel).
func (n *Network) NewClientOn(channelID, mspID, name string, endorserOrgs []string) (*client.Client, error) {
	c, anchor, err := n.newClient(channelID, mspID, name, endorserOrgs)
	if err != nil {
		return nil, err
	}
	c.StartCommitListener(anchor.Events())
	return c, nil
}

// newClient builds a channel-bound client without attaching its commit
// listener, returning the organization's anchor peer for the caller to
// wire events from.
func (n *Network) newClient(channelID, mspID, name string, endorserOrgs []string) (*client.Client, *peer.Peer, error) {
	svc, err := n.channels.Service(channelID)
	if err != nil {
		return nil, nil, fmt.Errorf("fabricnet: %w", err)
	}
	ca, ok := n.cas[mspID]
	if !ok {
		return nil, nil, fmt.Errorf("fabricnet: unknown org %q", mspID)
	}
	signer, err := ca.Issue(name)
	if err != nil {
		return nil, nil, err
	}
	var endorsers []client.Endorser
	for _, org := range endorserOrgs {
		p, err := n.AnchorPeer(org)
		if err != nil {
			return nil, nil, err
		}
		endorsers = append(endorsers, p)
	}
	anchor, err := n.AnchorPeer(mspID)
	if err != nil {
		return nil, nil, err
	}
	return client.New(signer, channelID, endorsers, svc), anchor, nil
}

// NewMultiClient issues one client per listed channel (all channels when
// none are named) under a shared identity name and returns them bundled as
// a multi-channel client with per-channel and round-robin submission.
//
// The bundle shares ONE event subscription on the organization's anchor
// peer: a dispatcher goroutine routes each commit event to the client
// bound to its channel, so a peer's event fan-out stays one enqueue per
// multi-client instead of one per (client, channel).
func (n *Network) NewMultiClient(mspID, name string, endorserOrgs []string, channelIDs ...string) (*client.MultiClient, error) {
	if len(channelIDs) == 0 {
		channelIDs = n.channels.IDs()
	}
	clients := make([]*client.Client, 0, len(channelIDs))
	routes := make(map[string]chan peer.CommitEvent, len(channelIDs))
	var anchor *peer.Peer
	for _, id := range channelIDs {
		c, a, err := n.newClient(id, mspID, fmt.Sprintf("%s@%s", name, id), endorserOrgs)
		if err != nil {
			return nil, err
		}
		in := make(chan peer.CommitEvent, 1024)
		c.StartCommitListener(in)
		routes[id] = in
		clients = append(clients, c)
		anchor = a
	}
	events := anchor.Events()
	go func() {
		for ev := range events {
			if in, ok := routes[ev.ChannelID]; ok {
				in <- ev
			}
		}
		for _, in := range routes {
			close(in)
		}
	}()
	return client.NewMultiClient(clients...)
}
