// Package fabricnet assembles complete in-process networks — organizations
// with CAs, peers, an ordering service and one channel — in the paper's
// topology (§7.2: three organizations, two peers each, one orderer, one
// channel) and wires the live delivery pipeline: orderer deliver channels
// feed each peer's committer goroutine.
//
// The deliver loop needs no restart special-casing: a peer whose world
// state already covers a delivered block (Peer.Height at or above the
// block number — a disk-backed peer rebuilt over its data directory)
// fast-forwards it inside CommitBlock instead of re-validating it.
package fabricnet

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/client"
	"fabriccrdt/internal/core"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/orderer"
	"fabriccrdt/internal/peer"
)

// OrgConfig describes one organization.
type OrgConfig struct {
	MSPID string
	Peers int
}

// Config describes a network.
type Config struct {
	ChannelID string
	Orgs      []OrgConfig
	Orderer   orderer.Config
	// EnableCRDT makes every peer a FabricCRDT peer; off = stock Fabric.
	EnableCRDT bool
	// EngineOptions tunes the merge engine on every peer.
	EngineOptions core.Options
	// Committer tunes every peer's staged commit pipeline (validation
	// worker pool, statedb backend selection and sharding). With
	// Backend == peer.BackendDisk, Committer.DataDir is the shared root
	// directory; each peer persists under DataDir/<peer-name>, so
	// rebuilding a network over the same root restores every peer's world
	// state and resume height.
	Committer peer.CommitterConfig
}

// PaperConfig returns the paper's fixed evaluation topology (§7.2) with the
// given block size: 3 organizations × 2 peers, one channel.
func PaperConfig(maxBlockTxs int, enableCRDT bool) Config {
	return Config{
		ChannelID: "channel1",
		Orgs: []OrgConfig{
			{MSPID: "Org1", Peers: 2},
			{MSPID: "Org2", Peers: 2},
			{MSPID: "Org3", Peers: 2},
		},
		Orderer:    orderer.DefaultConfig(maxBlockTxs),
		EnableCRDT: enableCRDT,
	}
}

// Network is a running in-process Fabric/FabricCRDT network.
type Network struct {
	cfg     Config
	cas     map[string]*cryptoid.CA
	msp     *cryptoid.MSP
	peers   []*peer.Peer
	orderer *orderer.Service

	mu      sync.Mutex
	started bool
	stopped bool
	wg      sync.WaitGroup
	errMu   sync.Mutex
	charge  []error
}

// New builds the network: CAs, peer identities, peers, orderer.
func New(cfg Config) (*Network, error) {
	if cfg.ChannelID == "" {
		return nil, errors.New("fabricnet: empty channel ID")
	}
	if len(cfg.Orgs) == 0 {
		return nil, errors.New("fabricnet: no organizations")
	}
	n := &Network{
		cfg: cfg,
		cas: make(map[string]*cryptoid.CA, len(cfg.Orgs)),
		msp: cryptoid.NewMSP(),
	}
	for _, org := range cfg.Orgs {
		ca, err := cryptoid.NewCA(org.MSPID)
		if err != nil {
			return nil, fmt.Errorf("fabricnet: creating CA for %s: %w", org.MSPID, err)
		}
		n.cas[org.MSPID] = ca
		n.msp.AddOrg(org.MSPID, ca.PublicKey())
	}
	for _, org := range cfg.Orgs {
		for i := 0; i < org.Peers; i++ {
			name := fmt.Sprintf("%s.peer%d", org.MSPID, i)
			signer, err := n.cas[org.MSPID].Issue(name)
			if err != nil {
				return nil, fmt.Errorf("fabricnet: issuing identity for %s: %w", name, err)
			}
			committer := cfg.Committer
			if committer.Backend == peer.BackendDisk && committer.DataDir != "" {
				// Each peer owns a private store under the shared root —
				// one DataDir knob configures the whole network.
				committer.DataDir = filepath.Join(cfg.Committer.DataDir, name)
			}
			p, err := peer.New(peer.Config{
				Name:          name,
				MSPID:         org.MSPID,
				ChannelID:     cfg.ChannelID,
				EnableCRDT:    cfg.EnableCRDT,
				EngineOptions: cfg.EngineOptions,
				Committer:     committer,
			}, signer, n.msp)
			if err != nil {
				n.closePeers()
				return nil, fmt.Errorf("fabricnet: %w", err)
			}
			n.peers = append(n.peers, p)
		}
	}
	// The ordering service chains onto the peers' common resume point: the
	// genesis block for a fresh network, or the durable chain checkpoint
	// when every peer was rebuilt over an existing data directory. Peers
	// resuming at different heights cannot be reconciled here (the orderer
	// holds no history to catch stragglers up with), so that is an error.
	lastNum, lastHash := n.peers[0].Chain().LastRef()
	for _, p := range n.peers[1:] {
		num, hash := p.Chain().LastRef()
		if num != lastNum || !bytes.Equal(hash, lastHash) {
			n.closePeers()
			return nil, fmt.Errorf("fabricnet: peers resume from diverging histories (%s at block %d hash %x, %s at block %d hash %x): remove the data directory or sync the stores",
				n.peers[0].Name(), lastNum, lastHash, p.Name(), num, hash)
		}
	}
	n.orderer = orderer.NewServiceAt(cfg.Orderer, lastNum, lastHash)
	return n, nil
}

// Peers returns all peers (ordered by organization, then index).
func (n *Network) Peers() []*peer.Peer { return n.peers }

// Peer returns the named peer.
func (n *Network) Peer(name string) (*peer.Peer, error) {
	for _, p := range n.peers {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fabricnet: unknown peer %q", name)
}

// AnchorPeer returns one peer per organization (the .peer0 of each).
func (n *Network) AnchorPeer(mspID string) (*peer.Peer, error) {
	return n.Peer(mspID + ".peer0")
}

// Orderer returns the ordering service.
func (n *Network) Orderer() *orderer.Service { return n.orderer }

// InstallChaincode installs a chaincode on every peer with the given
// endorsement policy expression.
func (n *Network) InstallChaincode(name string, cc chaincode.Chaincode, policyExpr string) error {
	policy, err := endorse.Parse(policyExpr)
	if err != nil {
		return fmt.Errorf("fabricnet: installing %q: %w", name, err)
	}
	for _, p := range n.peers {
		p.InstallChaincode(name, cc, policy)
	}
	return nil
}

// Start subscribes every peer to the ordering service and launches its
// committer goroutine.
func (n *Network) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return
	}
	n.started = true
	for _, p := range n.peers {
		deliver := n.orderer.Subscribe()
		n.wg.Add(1)
		go func(p *peer.Peer, deliver <-chan *ledger.Block) {
			defer n.wg.Done()
			for block := range deliver {
				if _, err := p.CommitBlock(block); err != nil {
					n.recordError(fmt.Errorf("peer %s: %w", p.Name(), err))
					return
				}
			}
		}(p, deliver)
	}
}

func (n *Network) recordError(err error) {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	n.charge = append(n.charge, err)
}

// Err returns the first committer error, if any.
func (n *Network) Err() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	if len(n.charge) == 0 {
		return nil
	}
	return n.charge[0]
}

// Stop flushes the orderer, waits for all peers to drain their deliver
// channels, closes peer event streams and releases peer state backends
// (flushing disk-backed world states).
func (n *Network) Stop() {
	n.mu.Lock()
	if !n.started || n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	n.orderer.Stop()
	n.wg.Wait()
	for _, p := range n.peers {
		p.CloseEvents()
	}
	n.closePeers()
}

// closePeers releases every peer's state backend, recording the first
// failure (a disk backend surfaces deferred write errors on close).
func (n *Network) closePeers() {
	for _, p := range n.peers {
		if err := p.Close(); err != nil {
			n.recordError(fmt.Errorf("peer %s: closing state backend: %w", p.Name(), err))
		}
	}
}

// NewClient issues a fresh client identity from the organization's CA and
// wires it to endorsers satisfying the given policy organizations. The
// client's commit listener is attached to the organization's anchor peer.
func (n *Network) NewClient(mspID, name string, endorserOrgs []string) (*client.Client, error) {
	ca, ok := n.cas[mspID]
	if !ok {
		return nil, fmt.Errorf("fabricnet: unknown org %q", mspID)
	}
	signer, err := ca.Issue(name)
	if err != nil {
		return nil, err
	}
	var endorsers []client.Endorser
	for _, org := range endorserOrgs {
		p, err := n.AnchorPeer(org)
		if err != nil {
			return nil, err
		}
		endorsers = append(endorsers, p)
	}
	c := client.New(signer, n.cfg.ChannelID, endorsers, n.orderer)
	anchor, err := n.AnchorPeer(mspID)
	if err != nil {
		return nil, err
	}
	c.StartCommitListener(anchor.Events())
	return c, nil
}
