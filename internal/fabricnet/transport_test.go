package fabricnet

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fabriccrdt/internal/peer"
	"fabriccrdt/internal/transport"
)

// submitAll drives total conflicting readings through one Org1 client and
// fails the test on any submission error.
func submitAll(t *testing.T, n *Network, total int) {
	t.Helper()
	c, err := n.NewClient("Org1", "client0", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.SubmitAndWait(20*time.Second, "iot", []byte("record"), []byte("dev1"), []byte(fmt.Sprintf("%d", i)))
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tx %d failed: %v", i, err)
		}
	}
}

// assertConverged checks every listed peer holds byte-identical world state
// and equal height on the default channel.
func assertConverged(t *testing.T, peers []*peer.Peer) {
	t.Helper()
	ref := peers[0]
	refState := ref.DB().GetRange("", "")
	refHeight, err := ref.HeightOn(ref.Channels()[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peers[1:] {
		h, err := p.HeightOn(p.Channels()[0])
		if err != nil {
			t.Fatal(err)
		}
		if h != refHeight {
			t.Fatalf("peer %s height %d, %s height %d", p.Name(), h, ref.Name(), refHeight)
		}
		if !reflect.DeepEqual(p.DB().GetRange("", ""), refState) {
			t.Fatalf("peer %s world state diverged from %s", p.Name(), ref.Name())
		}
	}
}

// TestDeliverLoopHealsSeveredStream is the Err-split regression (ISSUE 7
// satellite): severing one peer's block stream mid-delivery must NOT wedge
// or fail the network — the deliver loop reconnects, resumes at its height,
// fast-forwards any re-delivered blocks, and the healed failures land in
// TransportRetries while Err stays nil.
func TestDeliverLoopHealsSeveredStream(t *testing.T) {
	cfg := PaperConfig(10, true)
	cfg.Orderer.BatchTimeout = 50 * time.Millisecond
	var chaos *transport.Chaos
	cfg.TransportWrap = func(peerName, channelID string, tr transport.Transport) transport.Transport {
		if peerName != "Org3.peer1" {
			return tr
		}
		chaos = transport.NewChaos(tr, transport.ChaosConfig{DisconnectEvery: 2, MaxFaults: 3})
		return chaos
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallChaincode("iot", iotCC(), testPolicy); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	submitAll(t, n, 30)
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatalf("healed transport faults must not fail the run: %v", err)
	}
	if chaos == nil || chaos.Faults() == 0 {
		t.Fatal("chaos injected no faults — nothing was proven")
	}
	retries := n.TransportRetries()
	if len(retries) == 0 {
		t.Fatal("severed streams healed but no retries recorded")
	}
	for _, r := range retries {
		if !strings.Contains(r.Error(), "Org3.peer1") {
			t.Fatalf("retry attributed to the wrong peer: %v", r)
		}
	}
	assertConverged(t, n.Peers())
}

// TestCommitErrorIsFatalNotRetried is the other half of the split: a
// corrupted block is an application rejection — the afflicted peer's loop
// must die and surface in Err (not reconnect-loop), while every other peer
// and the network's shutdown are untouched.
func TestCommitErrorIsFatalNotRetried(t *testing.T) {
	cfg := PaperConfig(10, true)
	cfg.Orderer.BatchTimeout = 50 * time.Millisecond
	cfg.TransportWrap = func(peerName, channelID string, tr transport.Transport) transport.Transport {
		if peerName != "Org3.peer1" {
			return tr
		}
		return transport.NewChaos(tr, transport.ChaosConfig{TamperNth: 2, MaxFaults: 1})
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallChaincode("iot", iotCC(), testPolicy); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	submitAll(t, n, 30)
	// Stop completing at all proves the poisoned pair wedged nothing.
	n.Stop()
	err = n.Err()
	if err == nil {
		t.Fatal("tampered block committed without error")
	}
	if !strings.Contains(err.Error(), "Org3.peer1") {
		t.Fatalf("fatal error not attributed to the tampered peer: %v", err)
	}
	if transport.Retryable(err) {
		t.Fatalf("commit error classified retryable: %v", err)
	}
	// The other five peers are unharmed and converged.
	var healthy []*peer.Peer
	for _, p := range n.Peers() {
		if p.Name() != "Org3.peer1" {
			healthy = append(healthy, p)
		}
	}
	assertConverged(t, healthy)
	// The tampered peer stopped short: it rejected the corrupt block and
	// never committed past it.
	bad, err := n.Peer("Org3.peer1")
	if err != nil {
		t.Fatal(err)
	}
	badH, err := bad.HeightOn(n.DefaultChannel())
	if err != nil {
		t.Fatal(err)
	}
	goodH, err := healthy[0].HeightOn(n.DefaultChannel())
	if err != nil {
		t.Fatal(err)
	}
	if badH >= goodH {
		t.Fatalf("tampered peer height %d not behind healthy height %d", badH, goodH)
	}
}
