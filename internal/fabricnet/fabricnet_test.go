package fabricnet

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/orderer"
)

// iotCC is the paper's evaluation chaincode: read the device document,
// append a reading, write it back as a CRDT delta.
func iotCC() chaincode.Chaincode {
	return chaincode.Func(func(stub chaincode.Stub) error {
		_, params := stub.Function()
		device, reading := params[0], params[1]
		if _, err := stub.GetState(device); err != nil {
			return err
		}
		delta, err := json.Marshal(map[string]any{
			"tempReadings": []any{map[string]any{"temperature": reading}},
		})
		if err != nil {
			return err
		}
		return stub.PutCRDT(device, delta)
	})
}

const testPolicy = "OR('Org1.member','Org2.member','Org3.member')"

func newNet(t *testing.T, blockSize int, enableCRDT bool) *Network {
	t.Helper()
	cfg := PaperConfig(blockSize, enableCRDT)
	cfg.Orderer.BatchTimeout = 100 * time.Millisecond
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallChaincode("iot", iotCC(), testPolicy); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNetworkTopology(t *testing.T) {
	n := newNet(t, 25, true)
	if len(n.Peers()) != 6 {
		t.Fatalf("peers = %d, want 6 (3 orgs x 2)", len(n.Peers()))
	}
	if _, err := n.Peer("Org2.peer1"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Peer("nope"); err == nil {
		t.Fatal("unknown peer resolved")
	}
	if _, err := n.AnchorPeer("Org3"); err != nil {
		t.Fatal(err)
	}
	if n.Orderer() == nil {
		t.Fatal("orderer missing")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{ChannelID: "ch"}); err == nil {
		t.Fatal("config without orgs accepted")
	}
}

func TestInstallChaincodeBadPolicy(t *testing.T) {
	n := newNet(t, 25, true)
	if err := n.InstallChaincode("x", iotCC(), "AND("); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestFabricCRDTCommitsAllConflicting is the live-mode core claim: every
// conflicting transaction commits, and all six peers converge to the same
// document containing all updates.
func TestFabricCRDTCommitsAllConflicting(t *testing.T) {
	n := newNet(t, 10, true)
	n.Start()
	defer n.Stop()

	c, err := n.NewClient("Org1", "client0", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	var wg sync.WaitGroup
	errs := make([]error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("dev1"), []byte(fmt.Sprintf("%d", i)))
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tx %d failed: %v", i, err)
		}
	}
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}

	// All peers converge to identical state with all 40 readings.
	var want []byte
	for _, p := range n.Peers() {
		vv, ok := p.DB().Get("dev1")
		if !ok {
			t.Fatalf("peer %s missing dev1", p.Name())
		}
		if want == nil {
			want = vv.Value
			var doc map[string]any
			if err := json.Unmarshal(vv.Value, &doc); err != nil {
				t.Fatal(err)
			}
			if readings := doc["tempReadings"].([]any); len(readings) != total {
				t.Fatalf("readings = %d, want %d (no update loss)", len(readings), total)
			}
			continue
		}
		if string(vv.Value) != string(want) {
			t.Fatalf("peer %s diverged", p.Name())
		}
	}
	// Every peer's chain verifies.
	for _, p := range n.Peers() {
		if err := p.Chain().Verify(); err != nil {
			t.Fatalf("peer %s chain: %v", p.Name(), err)
		}
	}
}

// TestStockFabricFailsConflicting drives the same conflicting workload
// through a stock Fabric network: most transactions fail with MVCC
// conflicts (paper Figure 3(c): a handful of successes out of thousands).
func TestStockFabricFailsConflicting(t *testing.T) {
	n := newNet(t, 10, false)
	n.Start()
	defer n.Stop()

	c, err := n.NewClient("Org1", "client0", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	var wg sync.WaitGroup
	codes := make([]ledger.ValidationCode, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _ := c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("dev1"), []byte(fmt.Sprintf("%d", i)))
			codes[i] = code
		}(i)
	}
	wg.Wait()
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
	valid, conflicted := 0, 0
	for _, code := range codes {
		switch code {
		case ledger.CodeValid:
			valid++
		case ledger.CodeMVCCConflict:
			conflicted++
		}
	}
	if valid == 0 {
		t.Fatal("no transaction committed at all")
	}
	if conflicted == 0 {
		t.Fatal("no MVCC conflicts under an all-conflicting workload")
	}
	if valid+conflicted != total {
		t.Fatalf("valid %d + conflicted %d != %d", valid, conflicted, total)
	}
	t.Logf("stock fabric: %d valid, %d MVCC conflicts", valid, conflicted)
}

// TestMixedCRDTAndPlainTransactions commits CRDT and non-CRDT transactions
// through the same blocks (paper Figure 2).
func TestMixedCRDTAndPlainTransactions(t *testing.T) {
	n := newNet(t, 10, true)
	plainCC := chaincode.Func(func(stub chaincode.Stub) error {
		_, params := stub.Function()
		return stub.PutState("plain/"+params[0], []byte(params[1]))
	})
	if err := n.InstallChaincode("plain", plainCC, testPolicy); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()

	c, err := n.NewClient("Org2", "client0", []string{"Org2"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				_, errs[i] = c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("devM"), []byte("21"))
			} else {
				_, errs[i] = c.SubmitAndWait(10*time.Second, "plain", []byte("put"), []byte(fmt.Sprintf("k%d", i)), []byte("v"))
			}
		}(i)
	}
	wg.Wait()
	n.Stop()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	p := n.Peers()[0]
	if _, ok := p.DB().Get("devM"); !ok {
		t.Fatal("CRDT key missing")
	}
	if _, ok := p.DB().Get("plain/k1"); !ok {
		t.Fatal("plain key missing")
	}
}

// TestMultiOrgEndorsement uses an AND policy across two orgs.
func TestMultiOrgEndorsement(t *testing.T) {
	n := newNet(t, 5, true)
	if err := n.InstallChaincode("iot2", iotCC(), "AND('Org1.member','Org2.member')"); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	c, err := n.NewClient("Org1", "client0", []string{"Org1", "Org2"})
	if err != nil {
		t.Fatal(err)
	}
	code, err := c.SubmitAndWait(10*time.Second, "iot2", []byte("record"), []byte("devA"), []byte("17"))
	if err != nil {
		t.Fatal(err)
	}
	if code != ledger.CodeCRDTMerged {
		t.Fatalf("code = %v", code)
	}

	// Under-endorsed: only Org1 signs, policy demands both.
	c2, err := n.NewClient("Org1", "client1", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	code, err = c2.SubmitAndWait(10*time.Second, "iot2", []byte("record"), []byte("devA"), []byte("18"))
	if err == nil {
		t.Fatal("under-endorsed tx committed")
	}
	if code != ledger.CodeEndorsementFailure {
		t.Fatalf("code = %v, want ENDORSEMENT_POLICY_FAILURE", code)
	}
}

// TestDeliveryConvergenceAcrossPeers checks that all peers commit the same
// blocks in the same order even under concurrent submission from several
// clients in different orgs.
func TestDeliveryConvergenceAcrossPeers(t *testing.T) {
	n := newNet(t, 7, true)
	n.Start()
	defer n.Stop()
	var wg sync.WaitGroup
	for orgIdx, org := range []string{"Org1", "Org2", "Org3"} {
		c, err := n.NewClient(org, fmt.Sprintf("client-%s", org), []string{org})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c interface {
			SubmitAndWait(time.Duration, string, ...[]byte) (ledger.ValidationCode, error)
		}, base int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("shared"), []byte(fmt.Sprintf("%d", base+i))); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(c, orgIdx*100)
	}
	wg.Wait()
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
	ref := n.Peers()[0]
	refBlocks := ref.Chain().Blocks()
	for _, p := range n.Peers()[1:] {
		blocks := p.Chain().Blocks()
		if len(blocks) != len(refBlocks) {
			t.Fatalf("peer %s height %d vs %d", p.Name(), len(blocks), len(refBlocks))
		}
		vvRef, _ := ref.DB().Get("shared")
		vvP, ok := p.DB().Get("shared")
		if !ok || !reflect.DeepEqual(vvRef, vvP) {
			t.Fatalf("peer %s state diverged", p.Name())
		}
	}
}

// TestOrdererTimeoutPathDelivers covers the low-rate path where blocks are
// cut by timeout rather than size.
func TestOrdererTimeoutPathDelivers(t *testing.T) {
	cfg := PaperConfig(1000, true)
	cfg.Orderer.BatchTimeout = 50 * time.Millisecond
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallChaincode("iot", iotCC(), testPolicy); err != nil {
		t.Fatal(err)
	}
	n.Start()
	defer n.Stop()
	c, err := n.NewClient("Org1", "client0", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("d"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("committed in %v — timeout cut cannot have happened", elapsed)
	}
	b, err := n.Peers()[0].Chain().Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Metadata.CutReason != string(orderer.CutTimeout) {
		t.Fatalf("cut reason = %q, want timeout", b.Metadata.CutReason)
	}
}
